// Package typeutil holds small go/types helpers shared by the
// whole-program pimlint analyzers.
//
// Its main job is identity across the driver's package boundary: each
// target package is typechecked from source while its dependencies load
// from compiler export data, so one struct field is represented by
// distinct *types.Var objects in different packages' type information.
// The analyzers therefore key fields by a stable string —
// "pkgpath.TypeName.FieldName" — built here.
package typeutil

import "go/types"

// Deref returns the pointee type for pointers and t unchanged
// otherwise.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// FieldKey returns the stable "pkgpath.TypeName.FieldName" key for a
// field selection, resolving promoted fields to the struct that
// actually declares them. ok is false for non-field selections and for
// fields of unnamed struct types.
func FieldKey(s *types.Selection) (string, bool) {
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return "", false
	}
	t := s.Recv()
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		st, ok := Deref(t).Underlying().(*types.Struct)
		if !ok {
			return "", false
		}
		t = st.Field(i).Type()
	}
	return NamedFieldKey(t, v.Name())
}

// NamedFieldKey builds the stable key for fieldName of the named struct
// type t (pointers are dereferenced). ok is false when t is not a named
// type with a package.
func NamedFieldKey(t types.Type, fieldName string) (string, bool) {
	named, ok := Deref(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fieldName, true
}
