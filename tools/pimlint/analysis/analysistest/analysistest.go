// Package analysistest runs a pimlint analyzer over a testdata package
// and checks its diagnostics against `// want` comments, mirroring the
// upstream golang.org/x/tools analysistest contract:
//
//	m := map[int]int{}
//	for k := range m { // want `range over map`
//	}
//
// Each `want` carries one or more double-quoted or backquoted regular
// expressions; every expectation must be matched by a diagnostic on
// the same line, and every diagnostic must be claimed by an
// expectation. Test packages live under testdata/src/<name> and are
// typechecked from source (std imports resolve through the source
// importer, so no build cache or network is required).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/tools/pimlint/analysis"
)

// Run analyzes the package in dir (typically
// filepath.Join("testdata", "src", name)), giving it the import path
// pkgPath — analyzers that scope themselves by package path (the
// determinism checks) see that path. It reports every mismatch between
// diagnostics and `// want` expectations as a test error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: analyzer %s: %v", a.Name, err)
	}
	if a.End != nil {
		if err := a.End(func(d analysis.Diagnostic) { diags = append(diags, d) }); err != nil {
			t.Fatalf("analysistest: analyzer %s End: %v", a.Name, err)
		}
	}

	wants, err := collectWants(fset, files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	check(t, fset, a, diags, wants)
}

// RunPackages analyzes several testdata packages in one invocation —
// the whole-program variant of Run. root is the testdata source root
// (typically filepath.Join("testdata", "src")); each entry of pkgPaths
// is both an import path and a directory relative to root, listed in
// dependency order so later packages may import earlier ones. `want`
// expectations are collected from every package's files, and the
// analyzer's End hook (if any) runs after all packages have been seen.
//
// Analyzers built by a New(cfg) constructor accumulate state in their
// closure: build a fresh analyzer per RunPackages call.
func RunPackages(t *testing.T, root string, a *analysis.Analyzer, pkgPaths []string) {
	t.Helper()
	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	std := importer.ForCompiler(fset, "source", nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p := checked[path]; p != nil {
			return p, nil
		}
		return std.Import(path)
	})

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	var allFiles []*ast.File
	for _, pkgPath := range pkgPaths {
		dir := filepath.Join(root, filepath.FromSlash(pkgPath))
		files, err := parseDir(fset, dir)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
			Scopes:     make(map[ast.Node]*types.Scope),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(pkgPath, fset, files, info)
		if err != nil {
			t.Fatalf("analysistest: typecheck %s: %v", dir, err)
		}
		checked[pkgPath] = pkg
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    report,
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("analysistest: analyzer %s: %s: %v", a.Name, pkgPath, err)
		}
		allFiles = append(allFiles, files...)
	}
	if a.End != nil {
		if err := a.End(report); err != nil {
			t.Fatalf("analysistest: analyzer %s End: %v", a.Name, err)
		}
	}

	wants, err := collectWants(fset, allFiles)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	check(t, fset, a, diags, wants)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// expectation is one `want` regexp anchored to a file line.
type expectation struct {
	posn token.Position // file:line of the comment
	re   *regexp.Regexp
	met  bool
}

var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				patterns := wantRe.FindAllString(text[i+len("want "):], -1)
				if len(patterns) == 0 {
					return nil, fmt.Errorf("%s: want comment with no quoted pattern", posn)
				}
				for _, p := range patterns {
					var pat string
					if p[0] == '`' {
						pat = p[1 : len(p)-1]
					} else {
						var err error
						if pat, err = strconv.Unquote(p); err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %v", posn, p, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
					}
					wants = append(wants, &expectation{posn: posn, re: re})
				}
			}
		}
	}
	return wants, nil
}

func check(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, diags []analysis.Diagnostic, wants []*expectation) {
	t.Helper()
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if w.met || w.posn.Filename != posn.Filename || w.posn.Line != posn.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic from %s: %s", posn, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.posn, w.re)
		}
	}
}
