// Package analysis defines the analyzer interface of the pimlint suite.
//
// It is a self-contained re-statement of the core vocabulary of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so the
// suite builds offline with only the standard library. The subset is
// API-compatible by construction: an analyzer written against this
// package ports to the upstream framework by changing one import path.
// Facts, requires-graphs and suggested fixes are deliberately out of
// scope; the pimlint analyzers are all single-package and fact-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)

	// End, when set, runs once after Run has been applied to every
	// package of the invocation. It is the pimlint extension for
	// whole-program checks (call-graph reachability, cross-package
	// liveness): Run accumulates per-package facts into the analyzer's
	// closure and End reports the global diagnostics. Analyzers with an
	// End hook must also set WholeProgram.
	End func(report func(Diagnostic)) error

	// WholeProgram marks an analyzer whose verdicts are only meaningful
	// when every target package has been seen in one invocation. The
	// standalone driver runs these normally; the per-unit vet driver
	// (go vet -vettool) skips them, since a compilation unit never sees
	// the rest of the program.
	WholeProgram bool
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one package to an analyzer and collects its
// diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional
	Message  string
}

// Validate checks the analyzer set for driver use: non-empty unique
// names and a Run function each.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		switch {
		case a == nil:
			return fmt.Errorf("analysis: nil analyzer")
		case a.Name == "":
			return fmt.Errorf("analysis: analyzer with empty name")
		case a.Run == nil:
			return fmt.Errorf("analysis: analyzer %s has no Run", a.Name)
		case a.End != nil && !a.WholeProgram:
			return fmt.Errorf("analysis: analyzer %s has an End hook but is not marked WholeProgram", a.Name)
		case seen[a.Name]:
			return fmt.Errorf("analysis: duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
