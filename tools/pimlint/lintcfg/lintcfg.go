// Package lintcfg loads the pimlint configuration: which packages are
// held to the determinism rules, which types are nil-safe handles, and
// which names the cycle-width check exempts.
//
// The configuration lives in pimlint.yaml at the repository root. Only
// a small YAML subset is needed (string scalars and string lists), so
// the file is parsed with a dependency-free reader rather than a full
// YAML library; see Parse for the accepted grammar. Compiled-in
// defaults mirror the repository's own pimlint.yaml, so the analyzers
// behave identically when the file is absent (e.g. under `go vet
// -vettool` invoked from another directory).
package lintcfg

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Config is the parsed pimlint configuration.
type Config struct {
	// DeterministicPackages lists the import paths (exact or trailing
	// "/..." prefix patterns) whose code must be schedule- and
	// host-independent: no map-order dependence, no wall clock, no
	// global randomness, no environment reads.
	DeterministicPackages []string

	// NilHandleTypes lists "importpath.TypeName" entries whose exported
	// pointer-receiver methods must begin with a nil-receiver guard (the
	// simulator's disabled-handle convention).
	NilHandleTypes []string

	// CycleExempt lists identifier names the cyclesafe analyzer skips:
	// bounded durations that are counted in cycles but are not cycle
	// timestamps or accumulating counters (e.g. a config field holding
	// "extra cycles per retry").
	CycleExempt []string

	// HotPathRoots lists the entry points of the per-cycle hot path in
	// types.Func FullName form, e.g.
	// "(*repro/internal/memctrl.Controller).Tick". The hotalloc
	// analyzer computes the functions reachable from these roots.
	HotPathRoots []string

	// HotPathPackages lists the import paths whose functions, when
	// reachable from a hot-path root, must not contain
	// allocation-causing constructs (composite literals that escape,
	// make/new, fmt calls, string concatenation, closures, interface
	// boxing, map literals).
	HotPathPackages []string

	// TelemetryPackages lists the packages declaring the metric handle
	// types (Counter, Gauge, Histogram) the telemlive analyzer tracks
	// for registration/write liveness.
	TelemetryPackages []string

	// ConfigPackages lists the packages declaring the simulator's
	// configuration structs; cfglive requires every exported field of
	// those structs to be read by code outside the declaring package.
	ConfigPackages []string

	// ConfigExempt lists "TypeName.Field" entries cfglive excuses:
	// knobs that are intentionally declared ahead of their consumer or
	// consumed only by generated artifacts.
	ConfigExempt []string

	// ConcurrencyPackages lists the import paths held to the
	// concurrency disciplines (lockorder, goorphan): the service layer,
	// its persistence, and the campaign harness, where mutex-guarded
	// types, worker pools and fsync'd journals interact.
	ConcurrencyPackages []string

	// WorkerRoots lists the service entry points — HTTP handlers and
	// worker-loop bodies — in types.Func FullName form. ctxflow
	// requires every blocking channel operation reachable from them to
	// be cancellable (a ctx.Done()/close-signal select arm).
	WorkerRoots []string

	// DetflowPackages lists the import paths the detflow taint analyzer
	// covers: packages whose values may flow into result digests,
	// journal records or figure-feeding telemetry, so nondeterminism
	// (wall clock, unseeded rand, map order, scheduler reads) must not
	// reach the DetflowSinks without an audited //pimlint:nondet.
	DetflowPackages []string

	// DetflowSinks lists the determinism-critical sinks in types.Func
	// FullName form: digest inputs, result encoders, journal/store
	// writes, and the telemetry counters that feed figure outputs.
	DetflowSinks []string

	// LifecyclePackages lists the import paths (service and campaign
	// code) where every os.File / time.Timer / time.Ticker /
	// http.Response.Body / context.CancelFunc must be released on all
	// paths or carry //pimlint:lifecycle.
	LifecyclePackages []string

	// DurabilityPackages lists the import paths on the durability
	// paths: errsink forbids discarding errors from fsync / Close /
	// Write / journal append there outside //pimlint:besteffort sites.
	DurabilityPackages []string
}

// Default returns the compiled-in configuration, kept in sync with the
// repository's pimlint.yaml.
func Default() *Config {
	return &Config{
		DeterministicPackages: []string{
			"repro/internal/sim",
			"repro/internal/memctrl",
			"repro/internal/dram",
			"repro/internal/noc",
			"repro/internal/sched",
			"repro/internal/gpu",
			"repro/internal/pim",
			"repro/internal/faults",
		},
		NilHandleTypes: []string{
			"repro/internal/telemetry.Counter",
			"repro/internal/telemetry.Gauge",
			"repro/internal/telemetry.Histogram",
			"repro/internal/telemetry.Registry",
			"repro/internal/telemetry.Collector",
			"repro/internal/telemetry.Sampler",
			"repro/internal/telemetry.Manifest",
			"repro/internal/faults.Injector",
			"repro/internal/experiments.Journal",
		},
		CycleExempt: []string{
			"DRAMRetryCycles",
			"NoCStallCycles",
		},
		HotPathRoots: []string{
			"(*repro/internal/memctrl.Controller).Tick",
			"(*repro/internal/dram.Channel).Tick",
			"(*repro/internal/noc.Network).Tick",
			"(*repro/internal/sim.System).step",
		},
		HotPathPackages: []string{
			"repro/internal/sim",
			"repro/internal/memctrl",
			"repro/internal/dram",
			"repro/internal/noc",
			"repro/internal/sched",
			"repro/internal/core",
		},
		TelemetryPackages: []string{
			"repro/internal/telemetry",
		},
		ConfigPackages: []string{
			"repro/internal/config",
		},
		// Knobs consumed only through derived accessors inside the
		// config package (AccessBytes, RFPerBank, SliceBytes); cfglive
		// counts only reads outside the declaring package.
		ConfigExempt: []string{
			"Memory.BusWidthB",
			"PIM.RFSize",
			"Cache.TotalBytes",
		},
		ConcurrencyPackages: []string{
			"repro/internal/serve",
			"repro/internal/serve/store",
			"repro/internal/serve/loadgen",
			"repro/internal/journal",
			"repro/internal/experiments",
			"repro/internal/telemetry",
			"repro/cmd/pimserve",
		},
		WorkerRoots: []string{
			"(*repro/internal/serve.Server).handleSimulate",
			"(*repro/internal/serve.Server).handleJob",
			"(*repro/internal/serve.Server).handleStream",
			"(*repro/internal/serve.Server).handleCancel",
			"(*repro/internal/serve.Server).worker",
			"(*repro/internal/serve.Server).warmLoad",
			"repro/internal/serve/loadgen.Run",
			"(*repro/internal/experiments.Runner).forEachPairCtx",
		},
		DetflowPackages: []string{
			"repro/internal/sim",
			"repro/internal/memctrl",
			"repro/internal/dram",
			"repro/internal/noc",
			"repro/internal/sched",
			"repro/internal/gpu",
			"repro/internal/pim",
			"repro/internal/faults",
			"repro/internal/config",
			"repro/internal/serve",
			"repro/internal/serve/store",
			"repro/internal/serve/loadgen",
			"repro/internal/journal",
			"repro/internal/experiments",
			"repro/internal/telemetry",
			"repro/cmd/pimrun",
			"repro/cmd/pimsweep",
			"repro/cmd/pimcampaign",
			"repro/cmd/pimserve",
		},
		DetflowSinks: []string{
			"(repro/internal/serve.Canonical).Digest",
			"repro/internal/telemetry.HashConfig",
			"repro/internal/telemetry.WriteJSONL",
			"repro/internal/telemetry.WriteFileAtomic",
			"repro/internal/journal.WriteFileAtomic",
			"repro/internal/journal.Rewrite",
			"(*repro/internal/journal.Appender).Append",
			"(*repro/internal/serve/store.Store).Put",
			"(*repro/internal/telemetry.Counter).Add",
			"(*repro/internal/telemetry.Gauge).Set",
			"(*repro/internal/telemetry.Gauge).Add",
			"(*repro/internal/telemetry.Histogram).Observe",
		},
		LifecyclePackages: []string{
			"repro/internal/serve",
			"repro/internal/serve/store",
			"repro/internal/serve/loadgen",
			"repro/internal/journal",
			"repro/internal/experiments",
			"repro/internal/telemetry",
			"repro/cmd/pimserve",
			"repro/cmd/pimcampaign",
			"repro/cmd/pimsweep",
			"repro/cmd/pimrun",
			"repro/cmd/pimload",
		},
		DurabilityPackages: []string{
			"repro/internal/journal",
			"repro/internal/serve/store",
			"repro/internal/serve",
			"repro/internal/experiments",
			"repro/internal/telemetry",
		},
	}
}

// FileName is the configuration file searched for by Find.
const FileName = "pimlint.yaml"

// Find walks from dir toward the filesystem root looking for
// pimlint.yaml and returns the parsed file, or Default when no file is
// found. A file that exists but does not parse is an error: a broken
// config must not silently weaken the lint.
func Find(dir string) (*Config, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		path := filepath.Join(dir, FileName)
		if data, err := os.ReadFile(path); err == nil {
			cfg, err := Parse(string(data))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return cfg, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return Default(), nil
		}
		dir = parent
	}
}

// Parse reads the pimlint.yaml grammar: top-level "key:" headers each
// followed by "- item" list entries. Blank lines and "#" comments are
// ignored. Unknown keys are errors so typos fail loudly.
func Parse(text string) (*Config, error) {
	cfg := &Config{}
	var cur *[]string
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if item, ok := strings.CutPrefix(trimmed, "- "); ok {
			if cur == nil {
				return nil, fmt.Errorf("line %d: list item outside a key", ln+1)
			}
			item = strings.Trim(strings.TrimSpace(item), `"'`)
			if item == "" {
				return nil, fmt.Errorf("line %d: empty list item", ln+1)
			}
			*cur = append(*cur, item)
			continue
		}
		key, rest, ok := strings.Cut(trimmed, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: expected \"key:\" or \"- item\", got %q", ln+1, trimmed)
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("line %d: key %q: only list values are supported", ln+1, key)
		}
		switch strings.TrimSpace(key) {
		case "deterministic_packages":
			cur = &cfg.DeterministicPackages
		case "nilhandle_types":
			cur = &cfg.NilHandleTypes
		case "cyclesafe_exempt":
			cur = &cfg.CycleExempt
		case "hotpath_roots":
			cur = &cfg.HotPathRoots
		case "hotpath_packages":
			cur = &cfg.HotPathPackages
		case "telemetry_packages":
			cur = &cfg.TelemetryPackages
		case "config_packages":
			cur = &cfg.ConfigPackages
		case "config_exempt":
			cur = &cfg.ConfigExempt
		case "concurrency_packages":
			cur = &cfg.ConcurrencyPackages
		case "worker_roots":
			cur = &cfg.WorkerRoots
		case "detflow_packages":
			cur = &cfg.DetflowPackages
		case "detflow_sinks":
			cur = &cfg.DetflowSinks
		case "lifecycle_packages":
			cur = &cfg.LifecyclePackages
		case "durability_packages":
			cur = &cfg.DurabilityPackages
		default:
			return nil, fmt.Errorf("line %d: unknown key %q", ln+1, key)
		}
	}
	return cfg, nil
}

// Deterministic reports whether the package at importPath is covered by
// the determinism rules. An entry matches exactly or, when it ends in
// "/...", as a path prefix.
func (c *Config) Deterministic(importPath string) bool {
	return containsPath(c.DeterministicPackages, importPath)
}

// NilHandle reports whether pkgPath.typeName is a registered nil-safe
// handle type.
func (c *Config) NilHandle(pkgPath, typeName string) bool {
	want := pkgPath + "." + typeName
	for _, t := range c.NilHandleTypes {
		if t == want {
			return true
		}
	}
	return false
}

// CycleExempted reports whether the named identifier is excused from
// the cyclesafe width rule.
func (c *Config) CycleExempted(name string) bool {
	for _, n := range c.CycleExempt {
		if n == name {
			return true
		}
	}
	return false
}

// HotPackage reports whether the package at importPath is held to the
// hot-path allocation rules when reachable from a root.
func (c *Config) HotPackage(importPath string) bool {
	return containsPath(c.HotPathPackages, importPath)
}

// TelemetryPackage reports whether importPath declares the tracked
// metric handle types.
func (c *Config) TelemetryPackage(importPath string) bool {
	return containsPath(c.TelemetryPackages, importPath)
}

// ConfigPackage reports whether importPath declares configuration
// structs subject to the cfglive field-liveness rule.
func (c *Config) ConfigPackage(importPath string) bool {
	return containsPath(c.ConfigPackages, importPath)
}

// ConfigExempted reports whether TypeName.Field is excused from
// cfglive.
func (c *Config) ConfigExempted(typeName, field string) bool {
	want := typeName + "." + field
	for _, e := range c.ConfigExempt {
		if e == want {
			return true
		}
	}
	return false
}

// ConcurrencyPackage reports whether the package at importPath is held
// to the concurrency disciplines (lockorder, goorphan).
func (c *Config) ConcurrencyPackage(importPath string) bool {
	return containsPath(c.ConcurrencyPackages, importPath)
}

// DetflowPackage reports whether the package at importPath is covered
// by the detflow taint analysis.
func (c *Config) DetflowPackage(importPath string) bool {
	return containsPath(c.DetflowPackages, importPath)
}

// DetflowSink reports whether the function with the given types.Func
// FullName is a configured determinism sink, returning a short display
// name (the FullName with the package path's directory prefix
// dropped).
func (c *Config) DetflowSink(fullName string) (string, bool) {
	for _, s := range c.DetflowSinks {
		if s == fullName {
			return shortFuncName(s), true
		}
	}
	return "", false
}

// LifecyclePackage reports whether the package at importPath is held
// to the resource-lifecycle rules.
func (c *Config) LifecyclePackage(importPath string) bool {
	return containsPath(c.LifecyclePackages, importPath)
}

// DurabilityPackage reports whether the package at importPath is on a
// durability path subject to the errsink rules.
func (c *Config) DurabilityPackage(importPath string) bool {
	return containsPath(c.DurabilityPackages, importPath)
}

// shortFuncName compresses a types.Func FullName for diagnostics:
// "(*repro/internal/journal.Appender).Append" -> "(*journal.Appender).Append".
func shortFuncName(full string) string {
	out := full
	for {
		i := strings.LastIndex(out, "/")
		if i < 0 {
			return out
		}
		j := strings.LastIndexAny(out[:i], "(* \t")
		out = out[:j+1] + out[i+1:]
	}
}

// containsPath matches importPath against exact entries or trailing
// "/..." prefix patterns, the same grammar Deterministic uses.
func containsPath(list []string, importPath string) bool {
	for _, p := range list {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
				return true
			}
		} else if importPath == p {
			return true
		}
	}
	return false
}
