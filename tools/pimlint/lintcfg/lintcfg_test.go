package lintcfg

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParse(t *testing.T) {
	cfg, err := Parse(`
# comment
deterministic_packages:
  - repro/internal/sim
  - "repro/internal/dram"   # quoted entries are unwrapped
nilhandle_types:
  - repro/internal/telemetry.Counter
cyclesafe_exempt:
  - DRAMRetryCycles
concurrency_packages:
  - repro/internal/serve
  - repro/internal/journal
worker_roots:
  - "(*repro/internal/serve.Server).worker"   # FullNames stay quoted
`)
	if err != nil {
		t.Fatal(err)
	}
	want := &Config{
		DeterministicPackages: []string{"repro/internal/sim", "repro/internal/dram"},
		NilHandleTypes:        []string{"repro/internal/telemetry.Counter"},
		CycleExempt:           []string{"DRAMRetryCycles"},
		ConcurrencyPackages:   []string{"repro/internal/serve", "repro/internal/journal"},
		WorkerRoots:           []string{"(*repro/internal/serve.Server).worker"},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("parse:\n got %+v\nwant %+v", cfg, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown key", "typo_key:\n  - x\n"},
		{"item outside key", "- stray\n"},
		{"scalar value", "deterministic_packages: inline\n"},
		{"empty item", "cyclesafe_exempt:\n  - \"\"\n"},
		{"bare text", "not yaml at all\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: Parse accepted %q", c.name, c.text)
		}
	}
}

func TestDeterministicMatching(t *testing.T) {
	cfg := &Config{DeterministicPackages: []string{"repro/internal/sim", "repro/internal/noc/..."}}
	for path, want := range map[string]bool{
		"repro/internal/sim":        true,
		"repro/internal/simulator":  false, // exact entries do not prefix-match
		"repro/internal/noc":        true,
		"repro/internal/noc/router": true,  // "/..." covers subpackages
		"repro/internal/nocturnal":  false, // but not sibling names
		"repro/internal/dram":       false,
	} {
		if got := cfg.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestConcurrencyPackageMatching(t *testing.T) {
	cfg := &Config{ConcurrencyPackages: []string{"repro/internal/serve/...", "repro/internal/journal"}}
	for path, want := range map[string]bool{
		"repro/internal/serve":         true,
		"repro/internal/serve/store":   true, // "/..." covers subpackages
		"repro/internal/journal":       true,
		"repro/internal/journalreader": false, // exact entries do not prefix-match
		"repro/internal/sim":           false,
	} {
		if got := cfg.ConcurrencyPackage(path); got != want {
			t.Errorf("ConcurrencyPackage(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestNilHandleAndExempt(t *testing.T) {
	cfg := &Config{
		NilHandleTypes: []string{"repro/internal/telemetry.Counter"},
		CycleExempt:    []string{"DRAMRetryCycles"},
	}
	if !cfg.NilHandle("repro/internal/telemetry", "Counter") {
		t.Error("registered handle type not matched")
	}
	if cfg.NilHandle("repro/internal/telemetry", "Gauge") {
		t.Error("unregistered type matched")
	}
	if cfg.NilHandle("other/pkg", "Counter") {
		t.Error("type name matched across packages")
	}
	if !cfg.CycleExempted("DRAMRetryCycles") || cfg.CycleExempted("gpuCycle") {
		t.Error("cycle exemption mismatch")
	}
}

// TestFind walks upward to the repo root's pimlint.yaml; from a temp
// dir outside the repo it falls back to the compiled-in defaults, and
// both must agree (the file and Default() are documented as mirrors).
func TestFind(t *testing.T) {
	fromRepo, err := Find(".")
	if err != nil {
		t.Fatal(err)
	}
	fromNowhere, err := Find(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromNowhere, Default()) {
		t.Fatal("Find outside the repo should return Default()")
	}
	if !reflect.DeepEqual(fromRepo, Default()) {
		t.Fatalf("pimlint.yaml has drifted from lintcfg.Default():\n file %+v\n code %+v", fromRepo, Default())
	}
}

// TestRepoConfigMatchesDefault parses the repository's pimlint.yaml
// directly and requires it to be byte-for-byte equivalent to the
// compiled-in defaults: the two are documented as mirrors, and a drift
// means `go vet -vettool` runs (which may not see the file) and
// `make lint` runs enforce different rules.
func TestRepoConfigMatchesDefault(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", FileName))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, Default()) {
		t.Fatalf("pimlint.yaml has drifted from lintcfg.Default():\n file %+v\n code %+v", parsed, Default())
	}
}

func TestFindRejectsBrokenFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte("bogus_key:\n  - x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Find(dir); err == nil {
		t.Fatal("broken config silently accepted")
	}
}
