package lintcfg

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParse(t *testing.T) {
	cfg, err := Parse(`
# comment
deterministic_packages:
  - repro/internal/sim
  - "repro/internal/dram"   # quoted entries are unwrapped
nilhandle_types:
  - repro/internal/telemetry.Counter
cyclesafe_exempt:
  - DRAMRetryCycles
concurrency_packages:
  - repro/internal/serve
  - repro/internal/journal
worker_roots:
  - "(*repro/internal/serve.Server).worker"   # FullNames stay quoted
detflow_packages:
  - repro/internal/experiments
detflow_sinks:
  - "(repro/internal/serve.Canonical).Digest"
lifecycle_packages:
  - repro/internal/serve/...
durability_packages:
  - repro/internal/journal
`)
	if err != nil {
		t.Fatal(err)
	}
	want := &Config{
		DeterministicPackages: []string{"repro/internal/sim", "repro/internal/dram"},
		NilHandleTypes:        []string{"repro/internal/telemetry.Counter"},
		CycleExempt:           []string{"DRAMRetryCycles"},
		ConcurrencyPackages:   []string{"repro/internal/serve", "repro/internal/journal"},
		WorkerRoots:           []string{"(*repro/internal/serve.Server).worker"},
		DetflowPackages:       []string{"repro/internal/experiments"},
		DetflowSinks:          []string{"(repro/internal/serve.Canonical).Digest"},
		LifecyclePackages:     []string{"repro/internal/serve/..."},
		DurabilityPackages:    []string{"repro/internal/journal"},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("parse:\n got %+v\nwant %+v", cfg, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown key", "typo_key:\n  - x\n"},
		{"item outside key", "- stray\n"},
		{"scalar value", "deterministic_packages: inline\n"},
		{"empty item", "cyclesafe_exempt:\n  - \"\"\n"},
		{"bare text", "not yaml at all\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: Parse accepted %q", c.name, c.text)
		}
	}
}

func TestDeterministicMatching(t *testing.T) {
	cfg := &Config{DeterministicPackages: []string{"repro/internal/sim", "repro/internal/noc/..."}}
	for path, want := range map[string]bool{
		"repro/internal/sim":        true,
		"repro/internal/simulator":  false, // exact entries do not prefix-match
		"repro/internal/noc":        true,
		"repro/internal/noc/router": true,  // "/..." covers subpackages
		"repro/internal/nocturnal":  false, // but not sibling names
		"repro/internal/dram":       false,
	} {
		if got := cfg.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestConcurrencyPackageMatching(t *testing.T) {
	cfg := &Config{ConcurrencyPackages: []string{"repro/internal/serve/...", "repro/internal/journal"}}
	for path, want := range map[string]bool{
		"repro/internal/serve":         true,
		"repro/internal/serve/store":   true, // "/..." covers subpackages
		"repro/internal/journal":       true,
		"repro/internal/journalreader": false, // exact entries do not prefix-match
		"repro/internal/sim":           false,
	} {
		if got := cfg.ConcurrencyPackage(path); got != want {
			t.Errorf("ConcurrencyPackage(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestNilHandleAndExempt(t *testing.T) {
	cfg := &Config{
		NilHandleTypes: []string{"repro/internal/telemetry.Counter"},
		CycleExempt:    []string{"DRAMRetryCycles"},
	}
	if !cfg.NilHandle("repro/internal/telemetry", "Counter") {
		t.Error("registered handle type not matched")
	}
	if cfg.NilHandle("repro/internal/telemetry", "Gauge") {
		t.Error("unregistered type matched")
	}
	if cfg.NilHandle("other/pkg", "Counter") {
		t.Error("type name matched across packages")
	}
	if !cfg.CycleExempted("DRAMRetryCycles") || cfg.CycleExempted("gpuCycle") {
		t.Error("cycle exemption mismatch")
	}
}

// TestDataflowKeys covers the PR 10 keys: package matching for the
// three new analyzers and sink lookup with short-name display.
func TestDataflowKeys(t *testing.T) {
	cfg := &Config{
		DetflowPackages:    []string{"repro/internal/experiments", "repro/cmd/..."},
		DetflowSinks:       []string{"(*repro/internal/journal.Appender).Append", "repro/internal/telemetry.HashConfig"},
		LifecyclePackages:  []string{"repro/internal/serve/..."},
		DurabilityPackages: []string{"repro/internal/journal"},
	}
	for path, want := range map[string]bool{
		"repro/internal/experiments": true,
		"repro/cmd/pimrun":           true,  // "/..." covers subpackages
		"repro/internal/sim":         false, // not listed
	} {
		if got := cfg.DetflowPackage(path); got != want {
			t.Errorf("DetflowPackage(%q) = %v, want %v", path, got, want)
		}
	}
	if !cfg.LifecyclePackage("repro/internal/serve/store") || cfg.LifecyclePackage("repro/internal/journal") {
		t.Error("lifecycle package matching mismatch")
	}
	if !cfg.DurabilityPackage("repro/internal/journal") || cfg.DurabilityPackage("repro/internal/serve") {
		t.Error("durability package matching mismatch")
	}

	// Sinks match by FullName and report a compressed display name.
	name, ok := cfg.DetflowSink("(*repro/internal/journal.Appender).Append")
	if !ok || name != "(*journal.Appender).Append" {
		t.Errorf("DetflowSink(Append) = %q, %v", name, ok)
	}
	name, ok = cfg.DetflowSink("repro/internal/telemetry.HashConfig")
	if !ok || name != "telemetry.HashConfig" {
		t.Errorf("DetflowSink(HashConfig) = %q, %v", name, ok)
	}
	if _, ok := cfg.DetflowSink("repro/internal/telemetry.WriteJSONL"); ok {
		t.Error("unlisted sink matched")
	}
}

// TestDefaultHasDataflowEntries pins the analyzers' live coverage: the
// digest and journal sinks, the daemons, and the durability core must
// stay configured or the new analyzers silently stop checking them.
func TestDefaultHasDataflowEntries(t *testing.T) {
	cfg := Default()
	if !cfg.DetflowPackage("repro/internal/experiments") || !cfg.DetflowPackage("repro/cmd/pimserve") {
		t.Error("default detflow_packages lost campaign/daemon coverage")
	}
	if _, ok := cfg.DetflowSink("(repro/internal/serve.Canonical).Digest"); !ok {
		t.Error("default detflow_sinks lost the request digest")
	}
	if !cfg.LifecyclePackage("repro/internal/serve/loadgen") {
		t.Error("default lifecycle_packages lost the load generator")
	}
	if !cfg.DurabilityPackage("repro/internal/journal") || !cfg.DurabilityPackage("repro/internal/serve/store") {
		t.Error("default durability_packages lost the persistence core")
	}
}

// TestFind walks upward to the repo root's pimlint.yaml; from a temp
// dir outside the repo it falls back to the compiled-in defaults, and
// both must agree (the file and Default() are documented as mirrors).
func TestFind(t *testing.T) {
	fromRepo, err := Find(".")
	if err != nil {
		t.Fatal(err)
	}
	fromNowhere, err := Find(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromNowhere, Default()) {
		t.Fatal("Find outside the repo should return Default()")
	}
	if !reflect.DeepEqual(fromRepo, Default()) {
		t.Fatalf("pimlint.yaml has drifted from lintcfg.Default():\n file %+v\n code %+v", fromRepo, Default())
	}
}

// TestRepoConfigMatchesDefault parses the repository's pimlint.yaml
// directly and requires it to be byte-for-byte equivalent to the
// compiled-in defaults: the two are documented as mirrors, and a drift
// means `go vet -vettool` runs (which may not see the file) and
// `make lint` runs enforce different rules.
func TestRepoConfigMatchesDefault(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", FileName))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, Default()) {
		t.Fatalf("pimlint.yaml has drifted from lintcfg.Default():\n file %+v\n code %+v", parsed, Default())
	}
}

func TestFindRejectsBrokenFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte("bogus_key:\n  - x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Find(dir); err == nil {
		t.Fatal("broken config silently accepted")
	}
}
