// Package dataflow implements the taint engine under the pimlint flow
// analyzers (detflow, errsink): a self-contained def-use analysis over
// go/ast + go/types, built like tools/pimlint/callgraph — no x/tools,
// string-keyed function identity, conservative where the language gets
// hard.
//
// # Model
//
// Values carry label sets (Labels). Two namespaces share one set:
//
//   - source labels ("s:wall clock") are global facts — the value was
//     derived from a configured nondeterminism or error source;
//   - parameter labels ("p:0", "p:r") are local to one function's
//     analysis and exist so the function can be summarized for its
//     callers: a parameter label surviving to a return or a sink
//     argument becomes part of the Summary.
//
// Each function is analyzed flow-insensitively: the assignment-shaped
// statements of its body (assignments, var specs, range clauses,
// composite-literal field writes) are iterated to a fixpoint, labels
// only ever growing. Field and package-variable writes whose
// right-hand side carries source labels feed a global store keyed by
// the stable "pkgpath.TypeName.field" / "pkgpath.var" identity
// (tools/pimlint/typeutil), so taint crosses package boundaries even
// between functions that never call each other. Interprocedural flow
// through calls uses memoized per-function summaries; Solve iterates
// global rounds (clearing the memo each time) until the field store
// and the summaries stop growing.
//
// # Precision choices
//
// Three deliberate asymmetries keep the engine useful on real code:
//
//   - A struct composite literal does not label the composed object
//     with its field values' labels; the writes go to the field keys
//     instead. Otherwise one tainted field (a run manifest) would
//     taint every struct it rides in, and every field read of that
//     struct after it.
//   - A field read picks up the field key's labels plus the labels of
//     the object it is read from — but field writes never taint the
//     parent object, so clean fields of a struct with one tainted
//     field stay clean.
//   - At sink arguments only, the argument's static type is also
//     walked for globally tainted field keys (containment): passing a
//     whole struct whose Manifest field carries wall clock into a
//     journal write is a finding even though the struct object itself
//     is unlabeled.
//
// Calls to functions outside the analyzed set conservatively forward
// the union of their argument (and receiver) labels to the result;
// among builtins only append forwards taint. Sanitizer calls (sort.*)
// mask the map-iteration-order label from the sorted object.
package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/tools/pimlint/typeutil"
)

const (
	sourcePrefix = "s:"
	paramPrefix  = "p:"
	// RecvLabel is the parameter label seeded on a method receiver.
	RecvLabel = paramPrefix + "r"
)

// SourceLabel builds the label carried by values derived from the
// described source.
func SourceLabel(desc string) string { return sourcePrefix + desc }

// ParamLabel builds the label seeded on the i'th flattened parameter.
func ParamLabel(i int) string { return paramPrefix + strconv.Itoa(i) }

// Labels is a set of taint labels.
type Labels map[string]struct{}

func (l Labels) add(label string) bool {
	if _, ok := l[label]; ok {
		return false
	}
	l[label] = struct{}{}
	return true
}

func (l Labels) union(o Labels) bool {
	grew := false
	for label := range o {
		if l.add(label) {
			grew = true
		}
	}
	return grew
}

// Sources returns the source descriptions in l (prefix stripped),
// sorted.
func (l Labels) Sources() []string {
	var out []string
	for label := range l {
		if strings.HasPrefix(label, sourcePrefix) {
			out = append(out, label[len(sourcePrefix):])
		}
	}
	sort.Strings(out)
	return out
}

// params returns the parameter labels in l, sorted.
func (l Labels) params() []string {
	var out []string
	for label := range l {
		if strings.HasPrefix(label, paramPrefix) {
			out = append(out, label)
		}
	}
	sort.Strings(out)
	return out
}

// Fn is one declared function with a body, keyed by its types.Func
// FullName like the callgraph.
type Fn struct {
	Name string
	Decl *ast.FuncDecl
	Pkg  *types.Package
	Info *types.Info
}

// Summary is a function's caller-visible behavior: the labels its
// returns carry (parameter labels meaning "flows from that argument",
// source labels meaning "produces this taint"), and the parameters
// that reach a sink inside it — which makes the function itself a
// derived sink at its call sites.
type Summary struct {
	Ret  Labels
	Sink map[string]string // parameter label -> sink name reached
}

// Hit is one sink call receiving tainted data.
type Hit struct {
	Pos  token.Pos
	Fn   *Fn
	Sink string
	// Sources describes what reached the sink, sorted; at least one
	// entry. Containment hits read "<source> via field <key>".
	Sources []string
}

// Config wires an analyzer's source/sink vocabulary into the engine.
// Any callback may be nil.
type Config struct {
	// Source classifies a resolved call as an intrinsic taint source;
	// the call's result carries the returned description.
	Source func(fn *types.Func, call *ast.CallExpr, info *types.Info) (string, bool)
	// SourceArg marks calls that taint the object behind pointer
	// argument arg instead of their result (runtime.ReadMemStats).
	SourceArg func(fullName string) (arg int, desc string, ok bool)
	// MapRange, when non-empty, makes ranging over a map taint the
	// iteration variables with this source description.
	MapRange string
	// Sanitize returns the index of an argument whose map-iteration
	// labels the call strips (sort.Strings and friends), -1 otherwise.
	Sanitize func(fullName string) int
	// Sink names the configured sinks by types.Func FullName.
	Sink func(fullName string) (string, bool)
	// SkipCall suppresses an annotated sink call: no hit is recorded
	// and the call does not contribute to the enclosing function's
	// sink summary, so an audited laundering point stops propagation.
	SkipCall func(posn token.Position) bool
}

// Interp runs the analysis over a set of functions.
type Interp struct {
	cfg   Config
	fset  *token.FileSet
	fns   map[string]*Fn
	order []string

	fields     map[string]Labels // global field/pkg-var key -> source labels
	fieldsGrew bool

	memo        map[string]*result
	stack       map[string]bool
	hits        map[token.Pos]*Hit
	containMemo map[string][2]string
}

type result struct {
	fn         *Fn
	obj        map[types.Object]Labels
	fieldLocal map[string]Labels
	sanitized  map[types.Object]bool
	sum        *Summary
}

// New builds an interpreter; add functions with AddFunc, then Solve.
func New(fset *token.FileSet, cfg Config) *Interp {
	return &Interp{
		cfg:    cfg,
		fset:   fset,
		fns:    make(map[string]*Fn),
		fields: make(map[string]Labels),
	}
}

// AddFunc registers a function body for analysis. Redeclarations of a
// name keep the first body.
func (in *Interp) AddFunc(fn *Fn) {
	if fn == nil || fn.Decl == nil || fn.Decl.Body == nil {
		return
	}
	if _, ok := in.fns[fn.Name]; ok {
		return
	}
	in.fns[fn.Name] = fn
	in.order = append(in.order, fn.Name)
}

// Solve iterates global rounds until the field store and the function
// summaries stabilize (bounded). After it returns, Hits and Summary
// expose the final round's results.
func (in *Interp) Solve() {
	sort.Strings(in.order)
	prevSize := -1
	for round := 0; round < 12; round++ {
		in.memo = make(map[string]*result)
		in.stack = make(map[string]bool)
		in.hits = make(map[token.Pos]*Hit)
		in.containMemo = make(map[string][2]string)
		in.fieldsGrew = false
		for _, name := range in.order {
			in.analyze(name)
		}
		size := 0
		for _, r := range in.memo {
			size += len(r.sum.Ret) + len(r.sum.Sink)
		}
		if !in.fieldsGrew && size == prevSize {
			break
		}
		prevSize = size
	}
}

// Hits returns the sink hits of the final round in position order.
func (in *Interp) Hits() []*Hit {
	out := make([]*Hit, 0, len(in.hits))
	for _, h := range in.hits {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := in.fset.Position(out[i].Pos), in.fset.Position(out[j].Pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// Summary returns the final-round summary for the named function, nil
// when unknown.
func (in *Interp) Summary(name string) *Summary {
	if r := in.memo[name]; r != nil {
		return r.sum
	}
	return nil
}

func (in *Interp) analyze(name string) *result {
	if r, ok := in.memo[name]; ok {
		return r
	}
	fn := in.fns[name]
	if fn == nil || in.stack[name] {
		return nil
	}
	in.stack[name] = true
	defer delete(in.stack, name)

	r := &result{
		fn:         fn,
		obj:        make(map[types.Object]Labels),
		fieldLocal: make(map[string]Labels),
		sanitized:  make(map[types.Object]bool),
		sum:        &Summary{Ret: make(Labels), Sink: make(map[string]string)},
	}
	in.seedParams(r)
	for iter := 0; iter < 32; iter++ {
		if !in.step(r) {
			break
		}
	}
	in.collectReturns(r)
	// Memoize before the sink pass so recursive summary lookups
	// terminate; mutually recursive sink facts settle across Solve
	// rounds.
	in.memo[name] = r
	in.collectSinks(r)
	return r
}

func (in *Interp) seedParams(r *result) {
	d := r.fn.Decl
	info := r.fn.Info
	if d.Recv != nil {
		for _, f := range d.Recv.List {
			for _, n := range f.Names {
				if o := info.Defs[n]; o != nil {
					r.obj[o] = Labels{RecvLabel: {}}
				}
			}
		}
	}
	i := 0
	if d.Type.Params != nil {
		for _, f := range d.Type.Params.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			for _, n := range f.Names {
				if o := info.Defs[n]; o != nil {
					r.obj[o] = Labels{ParamLabel(i): {}}
				}
				i++
			}
		}
	}
}

// step applies every assignment-shaped transfer function once and
// reports whether any label set grew.
func (in *Interp) step(r *result) bool {
	grew := false
	merge := func(ok bool) {
		if ok {
			grew = true
		}
	}
	ast.Inspect(r.fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				lbl := in.expr(r, n.Rhs[0])
				for _, l := range n.Lhs {
					merge(in.assign(r, l, lbl))
				}
			} else {
				for i := range n.Lhs {
					if i < len(n.Rhs) {
						merge(in.assign(r, n.Lhs[i], in.expr(r, n.Rhs[i])))
					}
				}
			}
		case *ast.ValueSpec:
			for i, nm := range n.Names {
				var lbl Labels
				if len(n.Values) == len(n.Names) {
					lbl = in.expr(r, n.Values[i])
				} else if len(n.Values) == 1 {
					lbl = in.expr(r, n.Values[0])
				}
				merge(in.assign(r, nm, lbl))
			}
		case *ast.RangeStmt:
			lbl := in.expr(r, n.X)
			if in.cfg.MapRange != "" {
				if t := r.fn.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						lbl.add(SourceLabel(in.cfg.MapRange))
					}
				}
			}
			if n.Key != nil {
				merge(in.assign(r, n.Key, lbl))
			}
			if n.Value != nil {
				merge(in.assign(r, n.Value, lbl))
			}
		case *ast.CompositeLit:
			merge(in.compositeWrites(r, n))
		case *ast.CallExpr:
			merge(in.callEffects(r, n))
		}
		return true
	})
	return grew
}

// compositeWrites records struct composite literal fields into the
// field store (local view always, global store for source labels).
func (in *Interp) compositeWrites(r *result, cl *ast.CompositeLit) bool {
	t := r.fn.Info.TypeOf(cl)
	if t == nil {
		return false
	}
	st, ok := typeutil.Deref(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	grew := false
	for i, elt := range cl.Elts {
		var fieldName string
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			fieldName, val = id.Name, kv.Value
		} else {
			if i >= st.NumFields() {
				break
			}
			fieldName, val = st.Field(i).Name(), elt
		}
		lbl := in.expr(r, val)
		if len(lbl) == 0 {
			continue
		}
		key, ok := typeutil.NamedFieldKey(t, fieldName)
		if !ok {
			continue
		}
		if in.writeFieldKey(r, key, lbl) {
			grew = true
		}
	}
	return grew
}

// callEffects applies a call's side effects on objects: SourceArg
// taints the pointee, Sanitize masks map-order labels.
func (in *Interp) callEffects(r *result, call *ast.CallExpr) bool {
	fn, ok := Callee(r.fn.Info, call)
	if !ok {
		return false
	}
	name := fn.FullName()
	grew := false
	if in.cfg.SourceArg != nil {
		if idx, desc, ok := in.cfg.SourceArg(name); ok && idx < len(call.Args) {
			if o := rootObj(r.fn.Info, call.Args[idx]); o != nil {
				if mergeObj(r, o, Labels{SourceLabel(desc): {}}) {
					grew = true
				}
			}
		}
	}
	if in.cfg.Sanitize != nil {
		if idx := in.cfg.Sanitize(name); idx >= 0 && idx < len(call.Args) {
			if o := rootObj(r.fn.Info, call.Args[idx]); o != nil && !r.sanitized[o] {
				r.sanitized[o] = true
				grew = true
			}
		}
	}
	return grew
}

func (in *Interp) assign(r *result, lhs ast.Expr, lbl Labels) bool {
	if len(lbl) == 0 {
		return false
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return false
		}
		obj := r.fn.Info.Defs[l]
		if obj == nil {
			obj = r.fn.Info.Uses[l]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if key, ok := pkgVarKey(v); ok {
			return in.writeFieldKey(r, key, lbl)
		}
		return mergeObj(r, v, lbl)
	case *ast.SelectorExpr:
		if s, ok := r.fn.Info.Selections[l]; ok {
			if key, ok := typeutil.FieldKey(s); ok {
				return in.writeFieldKey(r, key, lbl)
			}
			return false
		}
		if v, ok := r.fn.Info.Uses[l.Sel].(*types.Var); ok {
			if key, ok := pkgVarKey(v); ok {
				return in.writeFieldKey(r, key, lbl)
			}
		}
		return false
	case *ast.IndexExpr:
		// Element write taints the container.
		if o := rootObj(r.fn.Info, l.X); o != nil {
			return mergeObj(r, o, lbl)
		}
		if sel, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok {
			return in.assign(r, sel, lbl)
		}
		return false
	case *ast.StarExpr:
		if o := rootObj(r.fn.Info, l.X); o != nil {
			return mergeObj(r, o, lbl)
		}
		return false
	}
	return false
}

func (in *Interp) writeFieldKey(r *result, key string, lbl Labels) bool {
	loc := r.fieldLocal[key]
	if loc == nil {
		loc = make(Labels)
		r.fieldLocal[key] = loc
	}
	grew := loc.union(lbl)
	for label := range lbl {
		if !strings.HasPrefix(label, sourcePrefix) {
			continue
		}
		g := in.fields[key]
		if g == nil {
			g = make(Labels)
			in.fields[key] = g
		}
		if g.add(label) {
			in.fieldsGrew = true
			grew = true
		}
	}
	return grew
}

// expr computes the labels of an expression (always a fresh set).
func (in *Interp) expr(r *result, e ast.Expr) Labels {
	out := make(Labels)
	in.exprInto(r, e, out)
	return out
}

func (in *Interp) exprInto(r *result, e ast.Expr, out Labels) {
	switch e := e.(type) {
	case *ast.Ident:
		in.identInto(r, e, out)
	case *ast.SelectorExpr:
		in.selectorInto(r, e, out)
	case *ast.CallExpr:
		out.union(in.callResult(r, e))
	case *ast.BinaryExpr:
		in.exprInto(r, e.X, out)
		in.exprInto(r, e.Y, out)
	case *ast.UnaryExpr:
		in.exprInto(r, e.X, out)
	case *ast.StarExpr:
		in.exprInto(r, e.X, out)
	case *ast.ParenExpr:
		in.exprInto(r, e.X, out)
	case *ast.TypeAssertExpr:
		in.exprInto(r, e.X, out)
	case *ast.IndexExpr:
		in.exprInto(r, e.X, out)
	case *ast.IndexListExpr:
		in.exprInto(r, e.X, out)
	case *ast.SliceExpr:
		in.exprInto(r, e.X, out)
	case *ast.CompositeLit:
		// Struct composites write their field keys (compositeWrites);
		// only non-struct composites (slices, arrays, maps) label the
		// composed value itself.
		if t := r.fn.Info.TypeOf(e); t != nil {
			if _, isStruct := typeutil.Deref(t).Underlying().(*types.Struct); isStruct {
				return
			}
		}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				in.exprInto(r, kv.Value, out)
			} else {
				in.exprInto(r, elt, out)
			}
		}
	case *ast.FuncLit:
		in.funcLitInto(r, e, out)
	}
}

func (in *Interp) identInto(r *result, id *ast.Ident, out Labels) {
	obj := r.fn.Info.Uses[id]
	if obj == nil {
		obj = r.fn.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if key, ok := pkgVarKey(v); ok {
		out.union(in.fields[key])
		out.union(r.fieldLocal[key])
		return
	}
	lbl := r.obj[obj]
	if len(lbl) == 0 {
		return
	}
	if r.sanitized[obj] && in.cfg.MapRange != "" {
		masked := SourceLabel(in.cfg.MapRange)
		for label := range lbl {
			if label != masked {
				out.add(label)
			}
		}
		return
	}
	out.union(lbl)
}

func (in *Interp) selectorInto(r *result, sel *ast.SelectorExpr, out Labels) {
	if s, ok := r.fn.Info.Selections[sel]; ok {
		if key, ok := typeutil.FieldKey(s); ok {
			out.union(in.fields[key])
			out.union(r.fieldLocal[key])
		}
		// A read through a tainted object is tainted; field writes do
		// not taint the parent, so this stays precise.
		in.exprInto(r, sel.X, out)
		return
	}
	if v, ok := r.fn.Info.Uses[sel.Sel].(*types.Var); ok {
		if key, ok := pkgVarKey(v); ok {
			out.union(in.fields[key])
			out.union(r.fieldLocal[key])
		}
	}
}

// funcLitInto labels a closure value with everything it captures: the
// labels of referenced outer objects and field keys. A closure handed
// to a journal-rewrite sink carries the data it will encode.
func (in *Interp) funcLitInto(r *result, lit *ast.FuncLit, out Labels) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := r.fn.Info.Uses[n]
			if obj == nil {
				return true
			}
			if _, tracked := r.obj[obj]; tracked {
				in.identInto(r, n, out)
			} else if v, ok := obj.(*types.Var); ok {
				if _, isPkg := pkgVarKey(v); isPkg {
					in.identInto(r, n, out)
				}
			}
		case *ast.SelectorExpr:
			if s, ok := r.fn.Info.Selections[n]; ok {
				if key, ok := typeutil.FieldKey(s); ok {
					out.union(in.fields[key])
					out.union(r.fieldLocal[key])
				}
			}
		}
		return true
	})
}

func (in *Interp) callResult(r *result, call *ast.CallExpr) Labels {
	out := make(Labels)
	argUnion := func() {
		for _, a := range call.Args {
			in.exprInto(r, a, out)
		}
		if recv := recvExpr(r.fn.Info, call); recv != nil {
			in.exprInto(r, recv, out)
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := r.fn.Info.Uses[id].(*types.Builtin); ok {
			// append forwards taint; the other builtins produce
			// clean values (len of a map is deterministic).
			if b.Name() == "append" {
				for _, a := range call.Args {
					in.exprInto(r, a, out)
				}
			}
			return out
		}
	}
	fn, ok := Callee(r.fn.Info, call)
	if !ok {
		// Conversion, func value or closure call: forward argument
		// taint.
		argUnion()
		return out
	}
	if in.cfg.Source != nil {
		if desc, ok := in.cfg.Source(fn, call, r.fn.Info); ok {
			out.add(SourceLabel(desc))
			argUnion()
			return out
		}
	}
	if s := in.analyze(fn.FullName()); s != nil {
		args := argsOf(r.fn.Info, call)
		sig, _ := fn.Type().(*types.Signature)
		for label := range s.sum.Ret {
			if strings.HasPrefix(label, sourcePrefix) {
				out.add(label)
				continue
			}
			for _, a := range args.forLabel(label, sig) {
				in.exprInto(r, a, out)
			}
		}
		return out
	}
	// External function: conservatively forward the argument taint.
	argUnion()
	return out
}

func (in *Interp) collectReturns(r *result) {
	d := r.fn.Decl
	var named []types.Object
	if d.Type.Results != nil {
		for _, f := range d.Type.Results.List {
			for _, nm := range f.Names {
				if o := r.fn.Info.Defs[nm]; o != nil {
					named = append(named, o)
				}
			}
		}
	}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are not ours
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for _, o := range named {
				r.sum.Ret.union(r.obj[o])
			}
			return true
		}
		for _, res := range ret.Results {
			in.exprInto(r, res, r.sum.Ret)
		}
		return true
	})
}

func (in *Interp) collectSinks(r *result) {
	ast.Inspect(r.fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := Callee(r.fn.Info, call)
		if !ok {
			return true
		}
		name := fn.FullName()
		var sinkName string
		var derived map[string]string
		if in.cfg.Sink != nil {
			if s, ok := in.cfg.Sink(name); ok {
				sinkName = s
			}
		}
		if sinkName == "" {
			if s := in.analyze(name); s != nil && len(s.sum.Sink) > 0 {
				derived = s.sum.Sink
			}
		}
		if sinkName == "" && derived == nil {
			return true
		}
		if in.cfg.SkipCall != nil && in.cfg.SkipCall(in.fset.Position(call.Pos())) {
			return true // audited laundering point
		}
		args := argsOf(r.fn.Info, call)
		sig, _ := fn.Type().(*types.Signature)
		// Containment (static-type walk for tainted field keys) applies
		// only at the configured sink itself: there the passed value's
		// type is what gets encoded/hashed. At derived-sink calls the
		// summary already models the value flow, and the caller's
		// receiver/argument types (a whole Runner, a Server) would make
		// every method call a finding.
		intrinsic := sinkName != ""
		check := func(e ast.Expr, sink string) {
			lbl := in.expr(r, e)
			srcs := lbl.Sources()
			if len(srcs) == 0 && intrinsic {
				if key, desc, ok := in.contains(r.fn.Info.TypeOf(e)); ok {
					srcs = []string{fmt.Sprintf("%s via field %s", desc, key)}
				} else if lit, ok := ast.Unparen(e).(*ast.FuncLit); ok {
					// A closure handed to a sink (journal.Rewrite's
					// records callback) writes what it references.
					if key, desc, ok := in.closureContains(r, lit); ok {
						srcs = []string{fmt.Sprintf("%s via field %s", desc, key)}
					}
				}
			}
			if len(srcs) > 0 {
				in.addHit(r, call.Pos(), sink, srcs)
			}
			for _, pl := range lbl.params() {
				if _, ok := r.sum.Sink[pl]; !ok {
					r.sum.Sink[pl] = sink
				}
			}
		}
		if sinkName != "" {
			if args.recv != nil {
				check(args.recv, sinkName)
			}
			for _, a := range args.args {
				check(a, sinkName)
			}
			return true
		}
		labels := make([]string, 0, len(derived))
		for pl := range derived {
			labels = append(labels, pl)
		}
		sort.Strings(labels)
		for _, pl := range labels {
			for _, e := range args.forLabel(pl, sig) {
				check(e, derived[pl])
			}
		}
		return true
	})
}

func (in *Interp) addHit(r *result, pos token.Pos, sink string, srcs []string) {
	h := in.hits[pos]
	if h == nil {
		h = &Hit{Pos: pos, Fn: r.fn, Sink: sink}
		in.hits[pos] = h
	}
	seen := make(map[string]bool, len(h.Sources))
	for _, s := range h.Sources {
		seen[s] = true
	}
	for _, s := range srcs {
		if !seen[s] {
			h.Sources = append(h.Sources, s)
			seen[s] = true
		}
	}
	sort.Strings(h.Sources)
}

// closureContains containment-checks everything a function literal
// references: the static types of the locals and field selections its
// body reads are what it can hand to the sink it was passed to.
func (in *Interp) closureContains(r *result, lit *ast.FuncLit) (string, string, bool) {
	var key, desc string
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := r.fn.Info.Uses[n].(*types.Var); ok {
				if k, d, ok := in.contains(v.Type()); ok {
					key, desc, found = k, d, true
				}
			}
		case *ast.SelectorExpr:
			if s, ok := r.fn.Info.Selections[n]; ok && s.Kind() == types.FieldVal {
				if k, d, ok := in.contains(s.Type()); ok {
					key, desc, found = k, d, true
				}
			}
		}
		return !found
	})
	return key, desc, found
}

// contains walks t's structure for a globally tainted field key,
// returning the key and one source description.
func (in *Interp) contains(t types.Type) (string, string, bool) {
	return in.containsRec(t, make(map[string]bool), 0)
}

func (in *Interp) containsRec(t types.Type, seen map[string]bool, depth int) (string, string, bool) {
	if t == nil || depth > 12 {
		return "", "", false
	}
	switch u := t.(type) {
	case *types.Pointer:
		return in.containsRec(u.Elem(), seen, depth+1)
	case *types.Slice:
		return in.containsRec(u.Elem(), seen, depth+1)
	case *types.Array:
		return in.containsRec(u.Elem(), seen, depth+1)
	case *types.Map:
		return in.containsRec(u.Elem(), seen, depth+1)
	}
	named, _ := types.Unalias(t).(*types.Named)
	if named == nil || named.Obj().Pkg() == nil {
		return "", "", false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if seen[key] {
		return "", "", false
	}
	seen[key] = true
	if c, ok := in.containMemo[key]; ok {
		return c[0], c[1], c[0] != ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		fkey := key + "." + st.Field(i).Name()
		if srcs := in.fields[fkey].Sources(); len(srcs) > 0 {
			in.containMemo[key] = [2]string{fkey, srcs[0]}
			return fkey, srcs[0], true
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		if fk, d, ok := in.containsRec(st.Field(i).Type(), seen, depth+1); ok {
			in.containMemo[key] = [2]string{fk, d}
			return fk, d, true
		}
	}
	in.containMemo[key] = [2]string{"", ""}
	return "", "", false
}

// callArgs pairs a call's receiver and arguments with parameter
// labels.
type callArgs struct {
	recv ast.Expr
	args []ast.Expr
}

func argsOf(info *types.Info, call *ast.CallExpr) callArgs {
	ca := callArgs{args: call.Args}
	ca.recv = recvExpr(info, call)
	return ca
}

func recvExpr(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

func (ca callArgs) forLabel(label string, sig *types.Signature) []ast.Expr {
	if label == RecvLabel {
		if ca.recv != nil {
			return []ast.Expr{ca.recv}
		}
		return nil
	}
	idx, err := strconv.Atoi(strings.TrimPrefix(label, paramPrefix))
	if err != nil {
		return nil
	}
	if sig != nil && sig.Variadic() && idx == sig.Params().Len()-1 {
		if idx < len(ca.args) {
			return ca.args[idx:]
		}
		return nil
	}
	if idx < len(ca.args) {
		return []ast.Expr{ca.args[idx]}
	}
	return nil
}

// Callee resolves a call to its static *types.Func (package function,
// method, or qualified name); func values and conversions fail.
func Callee(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := info.Uses[f].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := info.Uses[f.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

func mergeObj(r *result, o types.Object, lbl Labels) bool {
	cur := r.obj[o]
	if cur == nil {
		cur = make(Labels)
		r.obj[o] = cur
	}
	return cur.union(lbl)
}

func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// pkgVarKey returns the stable identity of a package-level variable.
func pkgVarKey(v *types.Var) (string, bool) {
	if v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	return v.Pkg().Path() + "." + v.Name(), true
}
