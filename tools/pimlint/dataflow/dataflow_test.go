package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/tools/pimlint/dataflow"
)

// A dependency-free program exercising the engine's core moves:
// intrinsic source, identity function, global field store, derived
// sink, and a clean control.
const src = `package p

func nondet() int { return 0 }

func sink(v int) {}

func id(v int) int { return v }

type box struct{ n int }

var global box

func setGlobal() { global.n = nondet() }

func useGlobal() { sink(global.n) }

func direct() { sink(id(nondet())) }

func wrap(v int) { sink(v) }

func callsWrap() { wrap(nondet()) }

func clean(v int) { sink(v) }

func stamped() int { return nondet() }
`

func buildInterp(t *testing.T) (*dataflow.Interp, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	in := dataflow.New(fset, dataflow.Config{
		Source: func(fn *types.Func, call *ast.CallExpr, ti *types.Info) (string, bool) {
			if fn.Name() == "nondet" {
				return "test nondet", true
			}
			return "", false
		},
		Sink: func(fullName string) (string, bool) {
			if fullName == "p.sink" {
				return "p.sink", true
			}
			return "", false
		},
	})
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn := info.Defs[fd.Name].(*types.Func)
		in.AddFunc(&dataflow.Fn{Name: fn.FullName(), Decl: fd, Pkg: pkg, Info: info})
	}
	in.Solve()
	return in, fset
}

func TestHits(t *testing.T) {
	in, fset := buildInterp(t)

	hitFuncs := map[string][]string{}
	for _, h := range in.Hits() {
		hitFuncs[h.Fn.Name] = h.Sources
		if h.Sink != "p.sink" {
			t.Errorf("hit in %s names sink %q, want p.sink", h.Fn.Name, h.Sink)
		}
		if posn := fset.Position(h.Pos); !posn.IsValid() {
			t.Errorf("hit in %s has an invalid position", h.Fn.Name)
		}
	}
	// Taint reaches the sink through the global field store
	// (setGlobal/useGlobal never call each other), through the
	// identity function's summary (direct), and through the derived
	// sink wrap (the hit lands at callsWrap's call site).
	for _, want := range []string{"p.useGlobal", "p.direct", "p.callsWrap"} {
		srcs, ok := hitFuncs[want]
		if !ok {
			t.Errorf("no hit in %s; hits: %v", want, hitFuncs)
			continue
		}
		if len(srcs) != 1 || srcs[0] != "test nondet" {
			t.Errorf("%s sources = %v, want [test nondet]", want, srcs)
		}
	}
	// The parameter-only flows stay quiet: wrap's own sink call and
	// the clean control carry no source labels.
	for _, quiet := range []string{"p.wrap", "p.clean", "p.setGlobal"} {
		if _, ok := hitFuncs[quiet]; ok {
			t.Errorf("unexpected hit in %s", quiet)
		}
	}
}

func TestSummaries(t *testing.T) {
	in, _ := buildInterp(t)

	// stamped returns the intrinsic source's value, so its own
	// summary produces the taint for callers.
	if sum := in.Summary("p.stamped"); sum == nil || len(sum.Ret.Sources()) != 1 {
		t.Errorf("p.stamped summary = %+v, want one source label on Ret", sum)
	}
	// id forwards its parameter to its return.
	sum := in.Summary("p.id")
	if sum == nil {
		t.Fatal("no summary for p.id")
	}
	if _, ok := sum.Ret[dataflow.ParamLabel(0)]; !ok {
		t.Errorf("p.id Ret = %v, want the param 0 label", sum.Ret)
	}
	// wrap sinks its parameter, making it a derived sink.
	sum = in.Summary("p.wrap")
	if sum == nil {
		t.Fatal("no summary for p.wrap")
	}
	if got := sum.Sink[dataflow.ParamLabel(0)]; got != "p.sink" {
		t.Errorf("p.wrap Sink[p:0] = %q, want p.sink", got)
	}
}
