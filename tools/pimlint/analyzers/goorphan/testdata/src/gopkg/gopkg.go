package gopkg

import "sync"

type P struct {
	wg sync.WaitGroup
	n  int
}

// Tracked signals the WaitGroup directly from the literal's body.
func (p *P) Tracked() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.n++
	}()
	p.wg.Wait()
}

// TrackedNamed launches a named method whose body signals the group.
func (p *P) TrackedNamed() {
	p.wg.Add(1)
	go p.loop()
	p.wg.Wait()
}

func (p *P) loop() {
	defer p.wg.Done()
}

// TrackedTransitive reaches Done through a callee of the literal.
func (p *P) TrackedTransitive() {
	p.wg.Add(1)
	go func() {
		p.loop()
	}()
	p.wg.Wait()
}

func (p *P) Orphan() {
	go func() { // want `not visibly tracked`
		p.n++
	}()
}

func (p *P) OrphanNamed() {
	go p.leak() // want `not visibly tracked`
}

func (p *P) leak() {}

// Detached carries the escape hatch with a reason: no finding.
func (p *P) Detached() {
	//pimlint:detached — process-lifetime ticker owned by the fixture; nothing ever waits for it
	go p.leak()
}

func (p *P) DetachedBare() {
	go p.leak() // want "needs a justification" //pimlint:detached
}
