package goorphan_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/goorphan"
	"repro/tools/pimlint/lintcfg"
)

// TestGoorphan covers tracked goroutines (Done in the literal, in a
// named callee, and transitively through a callee of the literal),
// untracked literals and named launches flagged, and the
// //pimlint:detached hatch (justified suppresses, bare is a finding).
func TestGoorphan(t *testing.T) {
	cfg := &lintcfg.Config{ConcurrencyPackages: []string{"gopkg"}}
	analysistest.Run(t, filepath.Join("testdata", "src", "gopkg"), goorphan.New(cfg), "gopkg")
}
