// Package goorphan requires every goroutine launched in the
// concurrency packages to be visibly tracked.
//
// The serve-smoke gate checks at runtime that shutdown leaks no
// goroutines; goorphan makes the discipline behind that check a
// compile-time property: a `go` statement in service code must launch
// work that signals a sync.WaitGroup — a call to (*sync.WaitGroup).Done
// somewhere in the goroutine's body or in a function it (transitively)
// calls — so some owner can Wait for it. A goroutine that is
// intentionally detached (a process-lifetime acceptor loop, for
// example) carries //pimlint:detached with a mandatory justification.
//
// The check is syntactic+reachability, not a proof: it verifies the
// Done signal exists on some path, and pairing the Add/Wait correctly
// remains a review concern. What it rules out is the silent orphan —
// a goroutine no WaitGroup ever hears about, which is exactly the kind
// the chaos and smoke gates can only catch when the scheduler
// cooperates.
package goorphan

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/annot"
	"repro/tools/pimlint/callgraph"
	"repro/tools/pimlint/lintcfg"
)

// Annotation marks a goroutine as intentionally detached.
const Annotation = "pimlint:detached"

// doneName is the WaitGroup signal the analyzer looks for.
const doneName = "(*sync.WaitGroup).Done"

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	g := &goorphan{
		cfg:   cfg,
		annot: annot.NewSet(Annotation),
	}
	g.builder = callgraph.NewBuilder(nil)
	return &analysis.Analyzer{
		Name: "goorphan",
		Doc: "require goroutines in service code to be WaitGroup-tracked or justified-detached\n\n" +
			"Every `go` statement in the concurrency packages must launch work " +
			"that calls (*sync.WaitGroup).Done on some path, so an owner can " +
			"Wait for it at shutdown; annotate intentionally detached " +
			"goroutines with //pimlint:detached <why>.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			g.addPackage(pass)
			return nil, nil
		},
		End: g.finish,
	}
}

type goorphan struct {
	cfg     *lintcfg.Config
	builder *callgraph.Builder
	fset    *token.FileSet
	annot   *annot.Set
	gos     []goSite
}

// goSite is one `go` statement in a concurrency package: either a
// launched literal (lit != nil) or a named callee.
type goSite struct {
	pos     token.Pos
	lit     *ast.FuncLit
	callees []string // resolved call targets to search for Done
	done    bool     // literal body calls Done directly
}

func (g *goorphan) addPackage(pass *analysis.Pass) {
	g.fset = pass.Fset
	for _, file := range pass.Files {
		g.annot.AddFile(pass.Fset, file)
	}
	g.builder.AddPackage(pass.Fset, pass.Pkg, pass.Files, pass.TypesInfo)
	if !g.cfg.ConcurrencyPackage(pass.Pkg.Path()) {
		return
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			site := goSite{pos: gs.Pos()}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				site.lit = lit
				// Search the literal's body for a direct Done call and
				// collect named callees for the transitive search.
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name := calleeName(info, call); name != "" {
						if name == doneName {
							site.done = true
						} else {
							site.callees = append(site.callees, name)
						}
					}
					return true
				})
			} else if name := calleeName(info, gs.Call); name != "" {
				site.callees = []string{name}
			}
			g.gos = append(g.gos, site)
			return true
		})
	}
}

func (g *goorphan) finish(report func(analysis.Diagnostic)) error {
	graph := g.builder.Finish()

	// tracked reports whether any function reachable from name calls
	// (*sync.WaitGroup).Done.
	memo := make(map[string]bool)
	tracked := func(name string) bool {
		if done, ok := memo[name]; ok {
			return done
		}
		done := false
		for _, root := range graph.Lookup(name) {
			for _, n := range graph.Reachable([]*callgraph.Node{root}, nil) {
				for _, callee := range n.CallNames() {
					if callee == doneName {
						done = true
					}
				}
			}
		}
		memo[name] = done
		return done
	}

	sort.Slice(g.gos, func(i, j int) bool { return g.gos[i].pos < g.gos[j].pos })
	for _, site := range g.gos {
		if g.annot.Covers(g.fset.Position(site.pos)) {
			continue
		}
		ok := site.done
		for _, name := range site.callees {
			if ok {
				break
			}
			ok = tracked(name)
		}
		if !ok {
			report(analysis.Diagnostic{Pos: site.pos, Message: fmt.Sprintf(
				"goroutine is not visibly tracked: no (*sync.WaitGroup).Done on any path from the "+
					"launched function; track it or annotate //%s <why>", Annotation)})
		}
	}

	for _, e := range g.annot.Bare() {
		report(analysis.Diagnostic{Pos: e.Pos, Message: fmt.Sprintf(
			"//%s needs a justification on the annotation line", Annotation)})
	}
	return nil
}

// calleeName resolves a call to a types.Func FullName ("" when the
// callee is a function value or builtin).
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.FullName()
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn.FullName()
			}
			return ""
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.FullName()
		}
	}
	return ""
}
