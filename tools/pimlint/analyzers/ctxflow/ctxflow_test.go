package ctxflow_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/ctxflow"
	"repro/tools/pimlint/lintcfg"
)

// TestCtxflow covers the per-function rules from one root: bare sends
// and receives flagged, a select without a cancellation arm flagged,
// Done()/struct{}-channel/default arms and range-over-channel accepted,
// goroutine bodies checked as part of the launcher, functions not
// reachable from the root ignored, and the escape hatch (justified
// suppresses, bare is a finding).
func TestCtxflow(t *testing.T) {
	cfg := &lintcfg.Config{
		ConcurrencyPackages: []string{"ctxpkg"},
		WorkerRoots:         []string{"ctxpkg.Worker"},
	}
	analysistest.Run(t, filepath.Join("testdata", "src", "ctxpkg"), ctxflow.New(cfg), "ctxpkg")
}

// TestCtxflowCrossPackage roots the walk in one package and expects
// the finding in another: reachability is whole-program.
func TestCtxflowCrossPackage(t *testing.T) {
	cfg := &lintcfg.Config{
		ConcurrencyPackages: []string{"ctxroot", "ctxdep"},
		WorkerRoots:         []string{"ctxroot.Run"},
	}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), ctxflow.New(cfg),
		[]string{"ctxdep", "ctxroot"})
}
