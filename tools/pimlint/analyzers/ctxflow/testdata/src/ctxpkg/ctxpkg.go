package ctxpkg

// canceler is shaped like context.Context's cancellation side without
// importing it: ctxflow keys on the Done() call, not the named type.
type canceler struct{ done chan int }

func (c *canceler) Done() <-chan int { return c.done }

type Pool struct {
	work chan int
	quit chan struct{}
}

// Worker is the configured root; everything below is reachable from it.
func Worker(c *canceler, p *Pool) {
	p.bare()
	p.selects(c)
	p.drain()
	p.spawn()
	p.buffered()
	p.bareAnnot()
}

func (p *Pool) bare() {
	<-p.work    // want `not cancellable`
	p.work <- 1 // want `not cancellable`
}

func (p *Pool) selects(c *canceler) {
	select { // want `no cancellation arm`
	case v := <-p.work:
		_ = v
	}
	select {
	case p.work <- 1:
	case <-c.Done():
	}
	select {
	case <-p.work:
	case <-p.quit:
	}
	select {
	case p.work <- 2:
	default:
	}
}

// drain ranges over the channel: the close-drain idiom is accepted.
func (p *Pool) drain() {
	for v := range p.work {
		_ = v
	}
}

// spawn's goroutine is service code too: its body is checked as part
// of the launching function.
func (p *Pool) spawn() {
	go func() {
		<-p.work // want `not cancellable`
	}()
}

func (p *Pool) buffered() {
	//pimlint:ctxflow — p.work is buffered and this fixture's only producer; the send cannot block
	p.work <- 3
}

func (p *Pool) bareAnnot() {
	p.work <- 4 // want "needs a justification" //pimlint:ctxflow
}

// unreached is not called from any root: ctxflow does not look at it.
func unreached(p *Pool) {
	<-p.work
}
