package ctxroot

import "ctxdep"

// Run is the configured root: the finding lands in ctxdep, proving the
// reachability crosses packages.
func Run(q *ctxdep.Queue) {
	for {
		_ = q.Next()
	}
}
