package ctxdep

type Queue struct{ C chan int }

// Next blocks with no cancellation arm; ctxroot.Run reaches it across
// the package boundary.
func (q *Queue) Next() int {
	return <-q.C // want `not cancellable`
}
