// Package ctxflow requires every blocking channel operation reachable
// from a service root to be cancellable.
//
// The pimserve daemon's shutdown contract is that no handler or worker
// can hang: every wait must race a cancellation signal. The chaos gate
// can only probe that probabilistically; ctxflow makes it a static
// property. From the configured worker_roots (HTTP handlers and
// worker-loop bodies, in types.Func FullName form) it computes the
// reachable functions via the whole-program call graph, and inside the
// ones belonging to the concurrency packages it checks each channel
// operation:
//
//   - a send or receive that is an arm of a select is fine when the
//     select also has a default arm (non-blocking poll) or a
//     cancellation arm — a receive from a Done() call (context.Context
//     and friends) or from a struct{} channel (the close-to-signal
//     idiom: job done, server drain, entry fulfilled);
//   - ranging over a channel is accepted: the range ends when the
//     producer closes the channel, which is the drain discipline the
//     worker pools use;
//   - any other send or receive blocks unconditionally and is flagged,
//     as is a select none of whose arms can cancel it.
//
// Goroutine bodies launched by reachable functions are checked as part
// of them: a worker's spawned helper is service code too.
//
// The escape hatch is //pimlint:ctxflow on the flagged line or the
// line above, with a mandatory justification (e.g. a send that is
// provably non-blocking because the channel is buffered and used
// once).
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/annot"
	"repro/tools/pimlint/callgraph"
	"repro/tools/pimlint/lintcfg"
)

// Annotation suppresses a ctxflow diagnostic with a justification.
const Annotation = "pimlint:ctxflow"

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	c := &ctxflow{
		cfg:   cfg,
		annot: annot.NewSet(Annotation),
	}
	c.builder = callgraph.NewBuilder(nil)
	return &analysis.Analyzer{
		Name: "ctxflow",
		Doc: "require blocking channel operations reachable from service roots to be cancellable\n\n" +
			"Every send/receive reachable from the configured worker_roots must " +
			"sit in a select with a ctx.Done()/close-signal arm or a default, " +
			"or range over a close-drained channel, so shutdown and client " +
			"disconnects can never hang a handler or worker. Suppress a " +
			"provably non-blocking operation with //pimlint:ctxflow <why>.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			c.fset = pass.Fset
			for _, file := range pass.Files {
				c.annot.AddFile(pass.Fset, file)
			}
			c.builder.AddPackage(pass.Fset, pass.Pkg, pass.Files, pass.TypesInfo)
			return nil, nil
		},
		End: c.finish,
	}
}

type ctxflow struct {
	cfg     *lintcfg.Config
	builder *callgraph.Builder
	fset    *token.FileSet
	annot   *annot.Set
}

func (c *ctxflow) finish(report func(analysis.Diagnostic)) error {
	graph := c.builder.Finish()
	var roots []*callgraph.Node
	for _, id := range c.cfg.WorkerRoots {
		roots = append(roots, graph.Lookup(id)...)
	}
	if len(roots) == 0 {
		// Nothing rooted in the analyzed set (partial invocation or a
		// tree without a service layer).
		return nil
	}
	reached := graph.Reachable(roots, nil)

	var nodes []*callgraph.Node
	for _, n := range reached {
		if n.Decl == nil || n.Pkg == nil || !c.cfg.ConcurrencyPackage(n.Pkg.Path()) {
			continue
		}
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })

	diag := func(pos token.Pos, format string, args ...any) {
		if c.annot.Covers(c.fset.Position(pos)) {
			return
		}
		report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, n := range nodes {
		c.checkFunc(n, diag)
	}

	for _, e := range c.annot.Bare() {
		report(analysis.Diagnostic{Pos: e.Pos, Message: fmt.Sprintf(
			"//%s needs a justification on the annotation line", Annotation)})
	}
	return nil
}

// checkFunc walks one reachable function's body (literals included)
// and flags non-cancellable blocking channel operations.
func (c *ctxflow) checkFunc(n *callgraph.Node, diag func(token.Pos, string, ...any)) {
	info := n.Info

	// Pass 1: classify selects and remember their comm operations so
	// the general walk does not re-flag them.
	okComms := make(map[ast.Node]bool) // SendStmt / recv UnaryExpr inside any select
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectStmt)
		if !ok {
			return true
		}
		cancellable := false
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				cancellable = true // default arm: non-blocking poll
				continue
			}
			if recv := commRecv(cc.Comm); recv != nil {
				okComms[recv] = true
				if isCancelSignal(info, recv.X) {
					cancellable = true
				}
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				okComms[send] = true
			}
		}
		if !cancellable {
			diag(sel.Pos(), "select reachable from a worker root has no cancellation arm "+
				"(ctx.Done()/close-signal receive) and no default; shutdown can hang here")
		}
		return true
	})

	// Pass 2: bare sends and receives outside selects.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.SendStmt:
			if !okComms[x] {
				diag(x.Pos(), "blocking channel send reachable from a worker root is not cancellable; "+
					"wrap it in a select with a ctx.Done()/close-signal arm")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !okComms[x] {
				diag(x.Pos(), "blocking channel receive reachable from a worker root is not cancellable; "+
					"wrap it in a select with a ctx.Done()/close-signal arm")
			}
		}
		return true
	})
}

// commRecv extracts the receive operation of a select comm statement:
// `<-ch`, `v := <-ch`, or `v, ok := <-ch`.
func commRecv(comm ast.Stmt) *ast.UnaryExpr {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(expr).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u
	}
	return nil
}

// isCancelSignal reports whether receiving from expr counts as a
// cancellation arm: a Done() method call (context.Context and
// anything shaped like it) or a struct{}-element channel, the
// close-to-signal idiom.
func isCancelSignal(info *types.Info, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}
