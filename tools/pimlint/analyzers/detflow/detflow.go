// Package detflow is the flow-aware determinism analyzer: where
// detmap/detclock ban nondeterministic *sites* in the deterministic
// core, detflow tracks nondeterministic *values* — wall clock,
// unseeded global rand, map iteration order, goroutine-scheduling-
// dependent reads — through locals, struct fields, package variables
// and call returns (tools/pimlint/dataflow), and reports them only
// when they reach a determinism-critical sink: config digest inputs,
// result encoders, journal/store writes, or the telemetry counters
// that feed figure outputs (detflow_sinks in pimlint.yaml).
//
// Two flows count as reaching a sink: the argument value itself
// carries a taint label, or the argument's static type contains a
// struct field that some covered code assigns tainted data to
// (containment) — passing a whole run manifest to a journal write is a
// finding even though the manifest pointer is a clean value.
//
// The escape hatch is //pimlint:nondet on the sink call's line or the
// line above, with a mandatory justification naming why the laundering
// point is audited (e.g. telemetry.Manifest wall-time fields are
// provenance, excluded from result digests). An annotated call is also
// pruned from the caller-visible summary, so wrappers around an
// audited sink do not re-report at every call site.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/annot"
	"repro/tools/pimlint/dataflow"
	"repro/tools/pimlint/lintcfg"
)

// Annotation suppresses a detflow diagnostic with a justification.
const Annotation = "pimlint:nondet"

// seededRandConstructors are the math/rand (v1 and v2) names that
// build explicitly seeded generators; every other exported function of
// those packages draws from the unseedable global stream.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	d := &detflow{
		cfg:   cfg,
		annot: annot.NewSet(Annotation),
	}
	return &analysis.Analyzer{
		Name: "detflow",
		Doc: "flag nondeterministic values flowing into determinism-critical sinks\n\n" +
			"Taint-tracks wall clock, unseeded global rand, map iteration order and " +
			"goroutine-scheduling-dependent reads through locals, fields and call " +
			"summaries, and reports them when they reach a configured sink (digest " +
			"inputs, result encoders, journal/store writes, figure-feeding telemetry). " +
			"Suppress an audited laundering point with //pimlint:nondet <justification>.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			d.addPackage(pass)
			return nil, nil
		},
		End: d.finish,
	}
}

type detflow struct {
	cfg    *lintcfg.Config
	fset   *token.FileSet
	annot  *annot.Set
	interp *dataflow.Interp
}

func (d *detflow) addPackage(pass *analysis.Pass) {
	if !d.cfg.DetflowPackage(pass.Pkg.Path()) {
		return
	}
	if d.interp == nil {
		d.fset = pass.Fset
		d.interp = dataflow.New(pass.Fset, dataflow.Config{
			Source:   classifySource,
			MapRange: "map iteration order",
			SourceArg: func(fullName string) (int, string, bool) {
				if fullName == "runtime.ReadMemStats" {
					return 0, "runtime memory stats", true
				}
				return 0, "", false
			},
			Sanitize: func(fullName string) int {
				if strings.HasPrefix(fullName, "sort.") ||
					strings.HasPrefix(fullName, "slices.Sort") {
					return 0
				}
				return -1
			},
			Sink: d.cfg.DetflowSink,
			SkipCall: func(posn token.Position) bool {
				return d.annot.Covers(posn)
			},
		})
	}
	for _, file := range pass.Files {
		d.annot.AddFile(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			d.interp.AddFunc(&dataflow.Fn{
				Name: fn.FullName(),
				Decl: fd,
				Pkg:  pass.Pkg,
				Info: pass.TypesInfo,
			})
		}
	}
}

func (d *detflow) finish(report func(analysis.Diagnostic)) error {
	if d.interp == nil {
		return nil
	}
	d.interp.Solve()
	for _, h := range d.interp.Hits() {
		report(analysis.Diagnostic{
			Pos:      h.Pos,
			Category: "detflow",
			Message: fmt.Sprintf(
				"nondeterministic value (%s) flows into determinism sink %s; make the input deterministic or annotate the audited laundering point with //%s <justification>",
				strings.Join(h.Sources, "; "), h.Sink, Annotation),
		})
	}
	for _, e := range d.annot.Bare() {
		report(analysis.Diagnostic{
			Pos:      e.Pos,
			Category: "detflow",
			Message:  fmt.Sprintf("//%s needs a justification on the annotation line", Annotation),
		})
	}
	return nil
}

// classifySource recognizes the intrinsic nondeterminism sources.
func classifySource(fn *types.Func, _ *ast.CallExpr, _ *types.Info) (string, bool) {
	switch fn.FullName() {
	case "time.Now", "time.Since", "time.Until":
		return "wall clock", true
	case "os.Getenv", "os.LookupEnv", "os.Environ", "os.Hostname", "os.Getpid":
		return "environment read", true
	case "runtime.NumGoroutine", "runtime.NumCgoCall":
		return "goroutine-scheduling-dependent read", true
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
		// Methods on *rand.Rand are seeded by construction; only the
		// package-level global-stream functions are nondeterministic.
		if fn.Type().(*types.Signature).Recv() == nil && !seededRandConstructors[fn.Name()] {
			return "unseeded global rand", true
		}
	}
	return "", false
}
