package taintsink

import (
	"strconv"

	"taintsrc"
)

// Emit is the configured sink in this package.
func Emit(parts ...string) {}

// Cross-package taint through taintsrc.Stamp's summary.
func Use() {
	Emit(strconv.FormatInt(taintsrc.Stamp(), 10)) // want `wall clock`
}

// Cross-package containment: the field was tainted in taintsrc.
func Hold() {
	r := taintsrc.NewRec()
	_ = r
	Emit(strconv.FormatInt(r.T, 10)) // want `wall clock`
}

// Deterministic cross-package flow stays quiet.
func Quiet() {
	Emit(strconv.FormatInt(taintsrc.Clean(), 10))
}
