package detflowtest

import (
	"math/rand"
	"sort"
	"strconv"
	"time"
)

// Digest and Record are the configured sinks, standing in for the
// repo's digest/encoder functions.
func Digest(parts ...string) string {
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}

func Record(v any) {}

// Direct source-to-sink flow through a local.
func Direct() string {
	t := time.Now().UnixNano()
	return Digest(strconv.FormatInt(t, 10)) // want `wall clock`
}

// Flow through a same-package helper's return value.
func stamp() int64 { return time.Now().UnixNano() }

func ViaReturn() string {
	return Digest(strconv.FormatInt(stamp(), 10)) // want `wall clock`
}

// Flow into a wrapper that sinks its parameter: the wrapper call is
// the finding, via its summary.
func emit(s string) { _ = Digest(s) }

func Wrapped() {
	emit(strconv.FormatInt(time.Now().UnixNano(), 10)) // want `flows into determinism sink detflowtest.Digest`
}

// Flow through a struct field written in one function and read in
// another (the global field store).
type State struct{ Seed int64 }

func (s *State) Stamp() { s.Seed = time.Now().UnixNano() }

func (s *State) Use() string {
	return Digest(strconv.FormatInt(s.Seed, 10)) // want `wall clock`
}

// Containment: a whole struct with a tainted field passed to a sink.
type Rec struct{ T int64 }

func NewRec() Rec { return Rec{T: time.Now().UnixNano()} }

func Store(r Rec) {
	Record(r) // want `wall clock via field detflowtest\.Rec\.T`
}

// Unseeded global rand is a source; an explicitly seeded generator is
// not.
func GlobalRand() string {
	return Digest(strconv.Itoa(rand.Int())) // want `unseeded global rand`
}

func SeededRand() string {
	r := rand.New(rand.NewSource(7))
	return Digest(strconv.Itoa(r.Intn(10)))
}

// Map iteration order taints the ranged keys; sorting launders it.
func Keys(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return Digest(keys...) // want `map iteration order`
}

func SortedKeys(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return Digest(keys...)
}

// A justified annotation suppresses the finding at the call site.
func Audited() string {
	t := time.Now().UnixNano()
	//pimlint:nondet — wall time is provenance here, nothing downstream digests it
	return Digest(strconv.FormatInt(t, 10))
}

// A deterministic flow is quiet.
func Clean(seed int64) string {
	return Digest(strconv.FormatInt(seed, 10))
}

// A bare marker is a finding in its own right.
var _ = 0 /*pimlint:nondet*/ // want `needs a justification`
