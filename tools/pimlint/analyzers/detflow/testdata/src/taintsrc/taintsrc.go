package taintsrc

import "time"

// Stamp returns a wall-clock-derived value; the taint must cross the
// package boundary through the call summary.
func Stamp() int64 { return time.Now().UnixNano() }

// Rec carries taint in a field, written here and containment-checked
// in the consuming package.
type Rec struct{ T int64 }

func NewRec() Rec { return Rec{T: time.Now().UnixNano()} }

// Clean is a deterministic cross-package return.
func Clean() int64 { return 42 }
