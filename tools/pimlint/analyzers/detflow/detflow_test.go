package detflow_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/detflow"
	"repro/tools/pimlint/lintcfg"
)

func singleCfg() *lintcfg.Config {
	return &lintcfg.Config{
		DetflowPackages: []string{"detflowtest"},
		DetflowSinks:    []string{"detflowtest.Digest", "detflowtest.Record"},
	}
}

func TestDetflow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "detflowtest"), detflow.New(singleCfg()), "detflowtest")
}

func TestDetflowCrossPackage(t *testing.T) {
	cfg := &lintcfg.Config{
		DetflowPackages: []string{"taintsrc", "taintsink"},
		DetflowSinks:    []string{"taintsink.Emit"},
	}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), detflow.New(cfg), []string{"taintsrc", "taintsink"})
}
