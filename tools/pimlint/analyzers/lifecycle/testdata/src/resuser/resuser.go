package resuser

import "resmaker"

// Leak across the constructor/consumer package split: the creation is
// here, the constructor's body is in resmaker.
func UseLeak(path string) error {
	f, err := resmaker.OpenLog(path) // want `handle from resmaker\.OpenLog is never released`
	if err != nil {
		return err
	}
	_, _ = f.WriteString("entry")
	return nil
}

// Releasing through the sibling package's releaser summary is clean.
func UseOK(path string) error {
	f, err := resmaker.OpenLog(path)
	if err != nil {
		return err
	}
	_, _ = f.WriteString("entry")
	return resmaker.CloseLog(f)
}
