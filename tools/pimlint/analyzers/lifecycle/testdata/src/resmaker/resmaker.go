package resmaker

import "os"

// OpenLog is a constructor: its callers inherit the release
// obligation through the producer summary.
func OpenLog(path string) (*os.File, error) {
	return os.Create(path)
}

// CloseLog is a releaser: passing a file to it counts as the release.
func CloseLog(f *os.File) error {
	return f.Close()
}
