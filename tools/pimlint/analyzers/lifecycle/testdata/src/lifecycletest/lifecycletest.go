package lifecycletest

import (
	"context"
	"errors"
	"os"
	"time"
)

// Opened and never released on any path.
func Leak(path string) error {
	f, err := os.Open(path) // want `handle from os.Open is never released`
	if err != nil {
		return err
	}
	buf := make([]byte, 8)
	_, _ = f.Read(buf)
	return nil
}

// A deferred Close releases on every path.
func DeferClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 8)
	_, rerr := f.Read(buf)
	return rerr
}

// A return between creation and the release leaks on that path; the
// constructor's own error-path return is exempt.
func EarlyReturn(path string, skip bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if skip {
		return errors.New("skipped") // want `return leaks the handle created by os.Open`
	}
	return f.Close()
}

// Blanking the releasable result makes it unreleasable forever.
func DiscardCancel(ctx context.Context) context.Context {
	ctx2, _ := context.WithCancel(ctx) // want `cancel func result of context.WithCancel is discarded at creation`
	return ctx2
}

func CancelOK(ctx context.Context) {
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	<-ctx2.Done()
}

// Tickers must be stopped.
func TickerLeak(d time.Duration) {
	t := time.NewTicker(d) // want `timer from time.NewTicker is never released \(Stop\)`
	<-t.C
}

func TickerOK(d time.Duration) {
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
}

// Returning the resource moves ownership: no finding, and the
// function becomes a constructor for its callers.
func openLog(path string) (*os.File, error) {
	return os.Create(path)
}

// A caller of the derived constructor still owes the release.
func UseProducerLeak(path string) error {
	f, err := openLog(path) // want `handle from lifecycletest\.openLog is never released`
	if err != nil {
		return err
	}
	_, _ = f.WriteString("x")
	return nil
}

// Releasing through a helper that closes its parameter counts.
func closeIt(f *os.File) error { return f.Close() }

func UseReleaser(path string) error {
	f, err := openLog(path)
	if err != nil {
		return err
	}
	_, _ = f.WriteString("x")
	return closeIt(f)
}

// Storing into a struct moves ownership out of this function.
type holder struct{ f *os.File }

func (h *holder) open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// A justified annotation accepts a process-lifetime resource.
func Forever(d time.Duration) {
	//pimlint:lifecycle — heartbeat ticker lives for the whole process
	t := time.NewTicker(d)
	go func() {
		for range t.C {
		}
	}()
}

// A bare marker is a finding in its own right.
var _ = 0 /*pimlint:lifecycle*/ // want `needs a justification`
