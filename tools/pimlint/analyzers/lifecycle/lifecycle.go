// Package lifecycle audits resource lifecycles in service and
// campaign code (lifecycle_packages): every os.File, time.Timer,
// time.Ticker, http.Response.Body, net Conn/Listener and
// context.CancelFunc created there must be released — closed, stopped
// or cancelled — on all paths, or carry an audited annotation.
//
// For each creation site (an assignment from a known constructor) the
// analyzer classifies every use of the resulting variable:
//
//   - releases: the release method called directly or under defer
//     (including inside a deferred function literal), a cancel func
//     invoked, or the variable passed to a function whose own body
//     releases that parameter (releaser summaries, computed
//     transitively across packages);
//   - escapes: returned, stored into a field, global, composite, map
//     or channel, aliased to another variable, address taken, or
//     passed to a non-releasing function — ownership moved, the
//     analyzer stops tracking;
//   - neutral uses: reads, method calls (Write, Name, Reset), nil
//     comparisons — these neither release nor excuse.
//
// Functions that return a resource they created become constructors
// for their callers (producer summaries), so a leak across a
// constructor/consumer package split is still one finding at the
// consumer's creation site.
//
// Findings: a resource never released on any path; a resource result
// discarded at creation (`ctx, _ := context.WithCancel(ctx)` — the
// context leaks until process exit); and a return between creation
// and the first release with nothing released on that path (early
// return), unless the return is the constructor's own error path
// (guarded by the creation's error variable).
//
// The escape hatch is //pimlint:lifecycle on the creation or the
// leaking return (with a mandatory justification, e.g. a
// process-lifetime listener).
package lifecycle

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/annot"
	"repro/tools/pimlint/dataflow"
	"repro/tools/pimlint/lintcfg"
)

// Annotation suppresses a lifecycle diagnostic with a justification.
const Annotation = "pimlint:lifecycle"

// Release kinds: how a resource is let go.
const (
	kindClose     = "Close"
	kindStop      = "Stop"
	kindCall      = "call" // context.CancelFunc: invoke the value
	kindBodyClose = "Body.Close"
)

type ctorInfo struct {
	idx  int    // which result is the resource
	kind string // how it is released
}

// intrinsicCtors are the standard-library constructors, by types.Func
// FullName.
var intrinsicCtors = map[string]ctorInfo{
	"os.Open":       {0, kindClose},
	"os.Create":     {0, kindClose},
	"os.OpenFile":   {0, kindClose},
	"os.CreateTemp": {0, kindClose},

	"time.NewTimer":  {0, kindStop},
	"time.NewTicker": {0, kindStop},

	"context.WithCancel":   {1, kindCall},
	"context.WithTimeout":  {1, kindCall},
	"context.WithDeadline": {1, kindCall},

	"net.Listen":      {0, kindClose},
	"net.Dial":        {0, kindClose},
	"net.DialTimeout": {0, kindClose},

	"net/http.Get":            {0, kindBodyClose},
	"(*net/http.Client).Do":   {0, kindBodyClose},
	"(*net/http.Client).Get":  {0, kindBodyClose},
	"(*net/http.Client).Post": {0, kindBodyClose},
}

// resourceKind classifies a static type as a releasable resource, for
// parameter tracking (releaser summaries).
func resourceKind(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "os.File":
		return kindClose
	case "time.Timer", "time.Ticker":
		return kindStop
	case "context.CancelFunc":
		return kindCall
	case "net/http.Response":
		return kindBodyClose
	case "net.Conn", "net.Listener":
		return kindClose
	}
	return ""
}

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	l := &lifecycle{
		cfg:   cfg,
		annot: annot.NewSet(Annotation),
	}
	return &analysis.Analyzer{
		Name: "lifecycle",
		Doc: "flag resources not released on all paths\n\n" +
			"In lifecycle_packages, every os.File/Timer/Ticker/Response.Body/" +
			"net conn/CancelFunc must be closed, stopped or cancelled on every " +
			"path (directly, via defer, or via a function that releases its " +
			"argument), or ownership must visibly move (return/store). " +
			"Suppress an audited exception with //pimlint:lifecycle <justification>.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			l.addPackage(pass)
			return nil, nil
		},
		End: l.finish,
	}
}

type fnRec struct {
	name string
	decl *ast.FuncDecl
	info *types.Info
}

type lifecycle struct {
	cfg   *lintcfg.Config
	fset  *token.FileSet
	annot *annot.Set
	fns   []*fnRec

	producers map[string]ctorInfo
	releasers map[string]map[int]string // fullName -> param idx -> kind released
}

func (l *lifecycle) addPackage(pass *analysis.Pass) {
	if !l.cfg.LifecyclePackage(pass.Pkg.Path()) {
		return
	}
	l.fset = pass.Fset
	for _, file := range pass.Files {
		l.annot.AddFile(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			l.fns = append(l.fns, &fnRec{name: fn.FullName(), decl: fd, info: pass.TypesInfo})
		}
	}
}

type finding struct {
	pos      token.Pos // where to report
	also     token.Pos // second position the annotation may cover
	category string
	msg      string
}

func (l *lifecycle) finish(report func(analysis.Diagnostic)) error {
	if l.fset == nil {
		return nil
	}
	// Producer and releaser summaries feed each other only through
	// additional call sites, so a few rounds reach the fixpoint; the
	// final round's findings are authoritative.
	l.producers = make(map[string]ctorInfo)
	l.releasers = make(map[string]map[int]string)
	var finds []finding
	prev := -1
	for round := 0; round < 6; round++ {
		finds = nil
		for _, fn := range l.fns {
			finds = append(finds, l.scanFunc(fn)...)
		}
		size := len(l.producers)
		for _, m := range l.releasers {
			size += len(m)
		}
		if size == prev {
			break
		}
		prev = size
	}
	for _, f := range finds {
		if l.annot.Covers(l.fset.Position(f.pos)) {
			continue
		}
		if f.also.IsValid() && l.annot.Covers(l.fset.Position(f.also)) {
			continue
		}
		report(analysis.Diagnostic{Pos: f.pos, Category: "lifecycle", Message: f.msg})
	}
	for _, a := range l.annot.Bare() {
		report(analysis.Diagnostic{
			Pos:      a.Pos,
			Category: "lifecycle",
			Message:  fmt.Sprintf("//%s needs a justification on the annotation line", Annotation),
		})
	}
	return nil
}

// creation is one tracked resource: a constructor result bound to a
// local, or a resource-typed parameter (tracked for releaser
// summaries only).
type creation struct {
	obj     types.Object
	pos     token.Pos
	kind    string
	ctor    string   // display name of the constructor
	scope   ast.Node // innermost enclosing function node
	errObj  types.Object
	isParam bool
	prmIdx  int

	released    bool
	escaped     bool
	releasePos  []token.Pos
	retIdx      int // result index the resource is returned at, -1
	retInfected bool
}

type retSite struct {
	ret   *ast.ReturnStmt
	scope ast.Node
	// guards are the if-conditions enclosing the return, for the
	// constructor-error-path exemption.
	guards []ast.Expr
}

func (l *lifecycle) scanFunc(fn *fnRec) []finding {
	info := fn.info
	creations := make(map[types.Object]*creation)
	var order []*creation
	var finds []finding

	track := func(c *creation) {
		creations[c.obj] = c
		order = append(order, c)
	}

	// Parameters of resource type are tracked so releases inside this
	// function summarize it as a releaser for its callers.
	idx := 0
	if fn.decl.Type.Params != nil {
		for _, f := range fn.decl.Type.Params.List {
			names := f.Names
			if len(names) == 0 {
				idx++
				continue
			}
			for _, nm := range names {
				o := info.Defs[nm]
				if o != nil {
					if k := resourceKind(o.Type()); k != "" {
						track(&creation{
							obj: o, pos: nm.Pos(), kind: k, ctor: "parameter",
							scope: fn.decl, isParam: true, prmIdx: idx, retIdx: -1,
						})
					}
				}
				idx++
			}
		}
	}

	// Pass 1: creations and direct-return producers, with a function
	// scope stack so closures keep their own return statements.
	var stack []ast.Node
	scopeOf := func() ast.Node {
		for i := len(stack) - 1; i >= 0; i-- {
			if _, ok := stack[i].(*ast.FuncLit); ok {
				return stack[i]
			}
		}
		return fn.decl
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			ci, ctorName, ok := l.ctorOf(call, info)
			if !ok {
				return true
			}
			if ci.idx >= len(n.Lhs) {
				return true
			}
			lhs, ok := n.Lhs[ci.idx].(*ast.Ident)
			if !ok {
				return true
			}
			if lhs.Name == "_" {
				finds = append(finds, finding{
					pos: call.Pos(), category: "lifecycle",
					msg: fmt.Sprintf(
						"%s result of %s is discarded at creation and can never be released; bind and release it or annotate //%s <justification>",
						kindNoun(ci.kind), ctorName, Annotation),
				})
				return true
			}
			obj := info.Defs[lhs]
			if obj == nil {
				obj = info.Uses[lhs]
			}
			if obj == nil || creations[obj] != nil {
				return true
			}
			c := &creation{
				obj: obj, pos: call.Pos(), kind: ci.kind, ctor: ctorName,
				scope: scopeOf(), retIdx: -1,
			}
			// The error variable bound alongside, for the
			// constructor-error-path return exemption.
			for i, le := range n.Lhs {
				if i == ci.idx {
					continue
				}
				if id, ok := le.(*ast.Ident); ok && id.Name != "_" {
					if o := info.Defs[id]; o != nil && isErrorType(o.Type()) {
						c.errObj = o
					} else if o := info.Uses[id]; o != nil && isErrorType(o.Type()) {
						c.errObj = o
					}
				}
			}
			track(c)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if ci, ctorName, ok := l.ctorOf(call, info); ok {
					finds = append(finds, finding{
						pos: call.Pos(), category: "lifecycle",
						msg: fmt.Sprintf(
							"%s result of %s is discarded at creation and can never be released; bind and release it or annotate //%s <justification>",
							ci.kind, ctorName, Annotation),
					})
				}
			}
		case *ast.ReturnStmt:
			// `return os.Open(path)` — the enclosing function is a
			// producer without ever binding the resource.
			if scopeOf() != fn.decl || len(n.Results) != 1 {
				return true
			}
			if call, ok := n.Results[0].(*ast.CallExpr); ok {
				if ci, _, ok := l.ctorOf(call, info); ok {
					l.producers[fn.name] = ci
				}
			}
		}
		return true
	})

	// Pass 2: classify every use of every tracked object, and collect
	// return sites with their guard conditions.
	var rets []retSite
	stack = stack[:0]
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if ret, ok := n.(*ast.ReturnStmt); ok {
			rs := retSite{ret: ret, scope: scopeOf()}
			for _, p := range stack {
				if ifs, ok := p.(*ast.IfStmt); ok {
					rs.guards = append(rs.guards, ifs.Cond)
				}
			}
			rets = append(rets, rs)
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		c := creations[obj]
		if c == nil {
			return true
		}
		l.classifyUse(fn, c, id, stack)
		return true
	})

	// Summaries.
	for _, c := range order {
		if c.isParam {
			if c.released {
				m := l.releasers[fn.name]
				if m == nil {
					m = make(map[int]string)
					l.releasers[fn.name] = m
				}
				m[c.prmIdx] = c.kind
			}
			continue
		}
		if c.retIdx >= 0 {
			l.producers[fn.name] = ctorInfo{idx: c.retIdx, kind: c.kind}
		}
	}

	// Findings.
	for _, c := range order {
		if c.isParam || c.escaped {
			continue
		}
		if !c.released {
			finds = append(finds, finding{
				pos: c.pos, category: "lifecycle",
				msg: fmt.Sprintf(
					"%s from %s is never released (%s) on any path; release it or annotate //%s <justification>",
					kindNoun(c.kind), c.ctor, releaseVerb(c.kind), Annotation),
			})
			continue
		}
		for _, rs := range rets {
			if rs.scope != c.scope || rs.ret.Pos() <= c.pos {
				continue
			}
			if c.errObj != nil && guardMentions(rs.guards, c.errObj, info) {
				continue // the constructor's own error path
			}
			covered := false
			for _, rp := range c.releasePos {
				if rp > c.pos && rp < rs.ret.End() {
					covered = true
					break
				}
			}
			if !covered {
				finds = append(finds, finding{
					pos: rs.ret.Pos(), also: c.pos, category: "lifecycle",
					msg: fmt.Sprintf(
						"return leaks the %s created by %s at line %d: nothing releases it on this path; release before returning or annotate //%s <justification>",
						kindNoun(c.kind), c.ctor, l.fset.Position(c.pos).Line, Annotation),
				})
			}
		}
	}
	return finds
}

// ctorOf resolves a call to a resource constructor: intrinsic or a
// producer summary.
func (l *lifecycle) ctorOf(call *ast.CallExpr, info *types.Info) (ctorInfo, string, bool) {
	fn, ok := dataflow.Callee(info, call)
	if !ok {
		return ctorInfo{}, "", false
	}
	name := fn.FullName()
	if ci, ok := intrinsicCtors[name]; ok {
		return ci, name, true
	}
	if ci, ok := l.producers[name]; ok {
		return ci, name, true
	}
	return ctorInfo{}, "", false
}

// classifyUse decides what one identifier occurrence does to the
// resource: release, escape, or neutral.
func (l *lifecycle) classifyUse(fn *fnRec, c *creation, id *ast.Ident, stack []ast.Node) {
	info := fn.info
	// stack ends with id itself; parent chain above it.
	parentAt := func(i int) ast.Node {
		if len(stack)-1-i >= 0 {
			return stack[len(stack)-1-i]
		}
		return nil
	}
	parent := parentAt(1)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return // id is the Sel side of someone else's selector
		}
		// id.<method>() — a release if it is the release method, a
		// neutral read/method call otherwise.
		if call, ok := parentAt(2).(*ast.CallExpr); ok && call.Fun == p {
			if c.kind == kindClose || c.kind == kindStop {
				if p.Sel.Name == c.kind {
					c.released = true
					c.releasePos = append(c.releasePos, call.Pos())
				}
			}
			return
		}
		if c.kind == kindBodyClose && p.Sel.Name == "Body" {
			// id.Body.Close()
			if sel2, ok := parentAt(2).(*ast.SelectorExpr); ok && sel2.Sel.Name == "Close" {
				if call, ok := parentAt(3).(*ast.CallExpr); ok && call.Fun == sel2 {
					c.released = true
					c.releasePos = append(c.releasePos, call.Pos())
					return
				}
			}
		}
		return
	case *ast.CallExpr:
		if p.Fun == id {
			if c.kind == kindCall {
				c.released = true
				c.releasePos = append(c.releasePos, p.Pos())
			}
			return
		}
		// id as an argument: released if the callee's summary says it
		// releases that parameter, otherwise ownership moves.
		for i, a := range p.Args {
			if a != id {
				continue
			}
			if callee, ok := dataflow.Callee(info, p); ok {
				if m := l.releasers[callee.FullName()]; m != nil && m[i] == c.kind {
					c.released = true
					c.releasePos = append(c.releasePos, p.Pos())
					return
				}
			}
			c.escaped = true
			return
		}
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != id {
				continue
			}
			// `_ = f` keeps ownership here; any other alias or store
			// moves it.
			if i < len(p.Lhs) {
				if lid, ok := p.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
					return
				}
			}
			c.escaped = true
			return
		}
	case *ast.ReturnStmt:
		for i, res := range p.Results {
			if res == id {
				c.escaped = true
				if !c.isParam && c.scope == fn.decl && scopeOfStack(stack, fn.decl) == fn.decl {
					c.retIdx = i
				}
			}
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			c.escaped = true
		}
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		c.escaped = true
	case *ast.IndexExpr:
		// map[f] read is neutral; m[k] = f arrives as AssignStmt RHS.
	}
}

// scopeOfStack finds the innermost function node on the stack.
func scopeOfStack(stack []ast.Node, decl ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return stack[i]
		}
	}
	return decl
}

// guardMentions reports whether any enclosing if-condition references
// the creation's error variable (the `if err != nil { return ... }`
// constructor-failure path).
func guardMentions(guards []ast.Expr, errObj types.Object, info *types.Info) bool {
	for _, g := range guards {
		found := false
		ast.Inspect(g, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == errObj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// kindNoun names the leaked thing in diagnostics.
func kindNoun(kind string) string {
	switch kind {
	case kindStop:
		return "timer"
	case kindCall:
		return "cancel func"
	case kindBodyClose:
		return "response body"
	default:
		return "handle"
	}
}

func releaseVerb(kind string) string {
	switch kind {
	case kindStop:
		return "Stop"
	case kindCall:
		return "call the cancel func"
	case kindBodyClose:
		return "Body.Close"
	default:
		return "Close"
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
