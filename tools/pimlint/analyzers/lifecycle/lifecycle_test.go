package lifecycle_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/lifecycle"
	"repro/tools/pimlint/lintcfg"
)

func TestLifecycle(t *testing.T) {
	cfg := &lintcfg.Config{LifecyclePackages: []string{"lifecycletest"}}
	analysistest.Run(t, filepath.Join("testdata", "src", "lifecycletest"), lifecycle.New(cfg), "lifecycletest")
}

func TestLifecycleCrossPackage(t *testing.T) {
	cfg := &lintcfg.Config{LifecyclePackages: []string{"resmaker", "resuser"}}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), lifecycle.New(cfg), []string{"resmaker", "resuser"})
}
