package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/lockorder"
	"repro/tools/pimlint/lintcfg"
)

// TestLockorder covers the single-package rules: direct channel
// operations and Cond.Wait under a held lock, direct and call-mediated
// re-acquisition, transitive blocking through a callee, the released /
// goroutine / default-select negatives, and both halves of the
// escape-hatch contract (justified suppresses, bare is a finding).
func TestLockorder(t *testing.T) {
	cfg := &lintcfg.Config{ConcurrencyPackages: []string{"lockpkg"}}
	analysistest.Run(t, filepath.Join("testdata", "src", "lockpkg"), lockorder.New(cfg), "lockpkg")
}

// TestLockorderCrossPackage drives the whole-program side through
// RunPackages: an AB/BA cycle whose two edges live in different
// packages, and a lock-held call into another package that blocks.
func TestLockorderCrossPackage(t *testing.T) {
	cfg := &lintcfg.Config{ConcurrencyPackages: []string{"locka", "lockb"}}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), lockorder.New(cfg),
		[]string{"locka", "lockb"})
}
