// Package lockorder builds a whole-program lock-acquisition graph over
// the concurrency packages and flags the two shapes that turn a mutex
// into a deadlock: cyclic nested acquisition, and blocking while a
// lock is held.
//
// Within every function (and every function literal, analyzed as its
// own scope) the analyzer finds lock regions: the source interval from
// a sync.Mutex/RWMutex Lock/RLock call to the matching same-lock
// Unlock, or to the end of the scope for the defer-unlock idiom. Locks
// are identified by the stable field key "pkgpath.TypeName.field"
// (package-level mutexes by "pkgpath.var", locals by a function-scoped
// name), so the same lock is one graph node no matter which method
// acquires it.
//
// Inside a region it flags, directly:
//
//   - channel sends, receives, blocking selects (no default arm) and
//     ranges over channels;
//   - calls that block by contract: (*sync.Cond).Wait,
//     (*sync.WaitGroup).Wait, (*os.File).Sync (fsync), time.Sleep;
//   - re-acquisition of the held lock (self-deadlock).
//
// and, through the callgraph (tools/pimlint/callgraph), transitively:
// a lock-held call into any function whose reachable closure contains
// one of the blocking operations above, or re-acquires the held lock.
// Nested acquisitions of other locks — direct or reached through
// calls — become edges of the lock graph; a cycle in that graph is the
// classic AB/BA deadlock and is reported once per cycle.
//
// `go` statements inside a region are skipped (the goroutine body does
// not run under the caller's lock), as are blocking operations and
// lock events inside goroutine-launching literals when summarizing a
// function for its callers. Function literals that are not launched
// with `go` are treated as part of the enclosing function: most are
// invoked synchronously (iterator callbacks) and skipping them would
// miss real holds.
//
// The escape hatch is //pimlint:lockorder on the flagged line or the
// line above, and it must carry a justification — the annotation is an
// audited claim (e.g. "fsync under the lock is the persist-before-
// fulfill contract"). Annotated call sites are also pruned from the
// analyzer's call graph, so a justified hold does not propagate into
// the lock graph.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/annot"
	"repro/tools/pimlint/callgraph"
	"repro/tools/pimlint/lintcfg"
	"repro/tools/pimlint/typeutil"
)

// Annotation suppresses a lockorder diagnostic with a justification.
const Annotation = "pimlint:lockorder"

// lockCalls maps the sync acquisition/release methods to their role.
var lockCalls = map[string]struct{ acquire, release bool }{
	"(*sync.Mutex).Lock":      {acquire: true},
	"(*sync.Mutex).Unlock":    {release: true},
	"(*sync.RWMutex).Lock":    {acquire: true},
	"(*sync.RWMutex).RLock":   {acquire: true},
	"(*sync.RWMutex).Unlock":  {release: true},
	"(*sync.RWMutex).RUnlock": {release: true},
}

// blockingCalls are functions that block by contract, keyed by
// types.Func FullName.
var blockingCalls = map[string]string{
	"(*os.File).Sync":        "fsync",
	"(*sync.Cond).Wait":      "Cond.Wait",
	"(*sync.WaitGroup).Wait": "WaitGroup.Wait",
	"time.Sleep":             "sleep",
}

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	l := &lockorder{
		cfg:   cfg,
		annot: annot.NewSet(Annotation),
		funcs: make(map[string]*funcFacts),
	}
	l.builder = callgraph.NewBuilder(l.annotated)
	return &analysis.Analyzer{
		Name: "lockorder",
		Doc: "flag lock-order cycles and blocking operations under held locks\n\n" +
			"Builds the lock-acquisition graph of the concurrency packages and " +
			"reports nested-acquisition cycles, lock-held channel operations, " +
			"and lock-held calls reaching Cond.Wait/WaitGroup.Wait/fsync/sleep. " +
			"Suppress an audited hold with //pimlint:lockorder <justification>.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			l.addPackage(pass)
			return nil, nil
		},
		End: l.finish,
	}
}

type lockorder struct {
	cfg     *lintcfg.Config
	builder *callgraph.Builder
	fset    *token.FileSet
	annot   *annot.Set
	funcs   map[string]*funcFacts
	// directs are blocking operations observed directly inside lock
	// regions, reported in End so ordering and suppression are uniform.
	directs []direct
}

// direct is one blocking operation directly inside a lock region.
type direct struct {
	pos  token.Pos
	key  string
	desc string
	pkg  string
}

// funcFacts summarizes one declared function for the whole-program
// phase. Summary fields (acquires, blocks) describe what happens on
// the caller's stack when the function is called; lock events and
// blocking operations inside goroutine-launching literals are kept out
// of them but still produce regions and direct diagnostics.
type funcFacts struct {
	name     string
	pkg      string
	acquires map[string]token.Pos // lock key -> first acquisition site
	blocks   []blockFact          // blocking ops in the body
	regions  []*region
}

type blockFact struct {
	pos  token.Pos
	desc string // e.g. "channel send", "fsync"
}

// region is one lock-held source interval and the calls made inside
// it.
type region struct {
	key   string    // lock identity
	pos   token.Pos // the Lock call
	async bool      // region lives inside a go-launched literal
	calls []heldCall
	// nested are direct acquisitions of other locks inside the region.
	nested []nestedLock
}

type heldCall struct {
	pos    token.Pos
	callee string
}

type nestedLock struct {
	pos token.Pos
	key string
}

// annotated is the callgraph skip callback: edges from annotated call
// sites are pruned, giving a justified //pimlint:lockorder the same
// reachability meaning //pimlint:coldpath has for hotalloc.
func (l *lockorder) annotated(posn token.Position) bool {
	return l.annot.Covers(posn)
}

func (l *lockorder) addPackage(pass *analysis.Pass) {
	l.fset = pass.Fset
	for _, file := range pass.Files {
		l.annot.AddFile(pass.Fset, file)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := &funcFacts{
				name:     obj.FullName(),
				pkg:      pass.Pkg.Path(),
				acquires: make(map[string]token.Pos),
			}
			l.funcs[obj.FullName()] = ff
			l.scanScope(pass.TypesInfo, fd.Body, ff, false)
		}
	}
	l.builder.AddPackage(pass.Fset, pass.Pkg, pass.Files, pass.TypesInfo)
}

// lockEvent is one Lock/Unlock call at a single literal scope.
type lockEvent struct {
	pos      token.Pos
	end      token.Pos // end of the call expression
	key      string
	release  bool
	deferred bool
}

// scanScope analyzes one function or function-literal body: it
// computes the scope's lock regions and their contents, records the
// function's blocking summary (unless async), and recurses into nested
// literals.
func (l *lockorder) scanScope(info *types.Info, body *ast.BlockStmt, ff *funcFacts, async bool) {
	var (
		events     []lockEvent
		lits       []*ast.FuncLit
		asyncLits  = make(map[*ast.FuncLit]bool)
		deferCalls = make(map[*ast.CallExpr]bool)
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, x)
			return false
		case *ast.GoStmt:
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				asyncLits[fl] = true
			}
		case *ast.DeferStmt:
			deferCalls[x.Call] = true
		case *ast.CallExpr:
			if key, role, ok := l.lockCall(info, x, ff.name); ok {
				events = append(events, lockEvent{
					pos:      x.Pos(),
					end:      x.End(),
					key:      key,
					release:  role.release,
					deferred: deferCalls[x],
				})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// Match each acquisition with the first later same-lock non-deferred
	// release; defer-unlock (or no unlock) holds to the end of the scope.
	consumed := make([]bool, len(events))
	type span struct {
		reg        *region
		start, end token.Pos
	}
	var spans []span
	for i, ev := range events {
		if ev.release {
			continue
		}
		if !async {
			if _, ok := ff.acquires[ev.key]; !ok {
				ff.acquires[ev.key] = ev.pos
			}
		}
		end := body.End()
		for j := i + 1; j < len(events); j++ {
			if events[j].release && !events[j].deferred && !consumed[j] && events[j].key == ev.key {
				end = events[j].pos
				consumed[j] = true
				break
			}
		}
		reg := &region{key: ev.key, pos: ev.pos, async: async}
		ff.regions = append(ff.regions, reg)
		spans = append(spans, span{reg: reg, start: ev.end, end: end})
	}

	// Scope-wide blocking summary and per-region contents in one walk.
	regionAt := func(pos token.Pos) *region {
		for _, s := range spans {
			if pos > s.start && pos < s.end {
				return s.reg
			}
		}
		return nil
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// The goroutine body does not run under this scope's locks,
			// and the launch itself does not block.
			return false
		case *ast.SelectStmt:
			if hasDefault(x) {
				return false // non-blocking poll
			}
			if !async {
				ff.blocks = append(ff.blocks, blockFact{pos: x.Pos(), desc: "blocking select"})
			}
			if reg := regionAt(x.Pos()); reg != nil {
				l.directs = append(l.directs, direct{pos: x.Pos(), key: reg.key, desc: "blocking select", pkg: ff.pkg})
			}
			return false
		case *ast.SendStmt:
			if !async {
				ff.blocks = append(ff.blocks, blockFact{pos: x.Pos(), desc: "channel send"})
			}
			if reg := regionAt(x.Pos()); reg != nil {
				l.directs = append(l.directs, direct{pos: x.Pos(), key: reg.key, desc: "channel send", pkg: ff.pkg})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if !async {
					ff.blocks = append(ff.blocks, blockFact{pos: x.Pos(), desc: "channel receive"})
				}
				if reg := regionAt(x.Pos()); reg != nil {
					l.directs = append(l.directs, direct{pos: x.Pos(), key: reg.key, desc: "channel receive", pkg: ff.pkg})
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if !async {
						ff.blocks = append(ff.blocks, blockFact{pos: x.Pos(), desc: "range over channel"})
					}
					if reg := regionAt(x.Pos()); reg != nil {
						l.directs = append(l.directs, direct{pos: x.Pos(), key: reg.key, desc: "range over channel", pkg: ff.pkg})
					}
				}
			}
		case *ast.CallExpr:
			reg := regionAt(x.Pos())
			if key, role, ok := l.lockCall(info, x, ff.name); ok {
				if reg != nil && role.acquire {
					reg.nested = append(reg.nested, nestedLock{pos: x.Pos(), key: key})
				}
				return true
			}
			name := calleeName(info, x)
			if name == "" {
				return true
			}
			if desc, ok := blockingCalls[name]; ok {
				if !async {
					ff.blocks = append(ff.blocks, blockFact{pos: x.Pos(), desc: desc})
				}
				if reg != nil {
					l.directs = append(l.directs, direct{pos: x.Pos(), key: reg.key, desc: desc, pkg: ff.pkg})
				}
				return true
			}
			if reg != nil {
				reg.calls = append(reg.calls, heldCall{pos: x.Pos(), callee: name})
			}
		}
		return true
	})

	for _, fl := range lits {
		l.scanScope(info, fl.Body, ff, async || asyncLits[fl])
	}
}

// lockCall reports whether the call is a sync.Mutex/RWMutex
// acquisition or release, with the lock's stable identity.
func (l *lockorder) lockCall(info *types.Info, call *ast.CallExpr, fnName string) (string, struct{ acquire, release bool }, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", struct{ acquire, release bool }{}, false
	}
	var fn *types.Func
	if s, ok := info.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	} else if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
		fn = f
	}
	if fn == nil {
		return "", struct{ acquire, release bool }{}, false
	}
	role, ok := lockCalls[fn.FullName()]
	if !ok {
		return "", struct{ acquire, release bool }{}, false
	}
	return l.lockKey(info, sel.X, fnName), role, true
}

// lockKey names the mutex behind expr: struct fields get the stable
// typeutil key, package-level variables "pkgpath.name", and locals a
// function-scoped name. Anything else falls back to the expression
// text.
func (l *lockorder) lockKey(info *types.Info, expr ast.Expr, fnName string) string {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			if key, ok := typeutil.FieldKey(s); ok {
				return key
			}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			return fnName + "." + v.Name()
		}
	}
	return types.ExprString(expr)
}

// calleeName resolves a call expression to a types.Func FullName, the
// same way the callgraph does; "" when unresolvable (function values).
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.FullName()
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn.FullName()
			}
			return ""
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.FullName()
		}
	}
	return ""
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// summary is the transitive closure of one function: every lock it may
// acquire and every way it may block, on the caller's stack.
type summary struct {
	acquires map[string]bool
	blocks   []string // "desc in fnName", first occurrence order
}

func (l *lockorder) finish(report func(analysis.Diagnostic)) error {
	graph := l.builder.Finish()

	suppress := func(pos token.Pos) bool {
		return l.annot.Covers(l.fset.Position(pos))
	}
	diag := func(pos token.Pos, format string, args ...any) {
		if suppress(pos) {
			return
		}
		report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	memo := make(map[string]*summary)
	var summarize func(name string, onstack map[string]bool) *summary
	summarize = func(name string, onstack map[string]bool) *summary {
		if s, ok := memo[name]; ok {
			return s
		}
		if onstack[name] {
			return &summary{acquires: map[string]bool{}}
		}
		onstack[name] = true
		defer delete(onstack, name)
		s := &summary{acquires: map[string]bool{}}
		if desc, ok := blockingCalls[name]; ok {
			s.blocks = append(s.blocks, desc)
		}
		if ff := l.funcs[name]; ff != nil {
			for key := range ff.acquires {
				s.acquires[key] = true
			}
			for _, b := range ff.blocks {
				s.blocks = append(s.blocks, b.desc+" in "+shortName(name))
			}
		}
		for _, node := range graph.Lookup(name) {
			for _, callee := range node.CallNames() {
				if callee == name {
					continue
				}
				cs := summarize(callee, onstack)
				for key := range cs.acquires {
					s.acquires[key] = true
				}
				if len(s.blocks) == 0 {
					s.blocks = append(s.blocks, cs.blocks...)
				}
			}
		}
		memo[name] = s
		return s
	}

	// Direct in-region blocking operations.
	for _, d := range l.directs {
		if l.cfg.ConcurrencyPackage(d.pkg) {
			diag(d.pos, "%s while holding %s; blocking under a lock risks deadlock (annotate //%s <why> if intended)",
				d.desc, shortKey(d.key), Annotation)
		}
	}

	// Region calls: transitive blocking, re-acquisition, and lock-graph
	// edges.
	edges := make(map[string]map[string]token.Pos)
	addEdge := func(from, to string, pos token.Pos) {
		m := edges[from]
		if m == nil {
			m = make(map[string]token.Pos)
			edges[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = pos
		}
	}

	var names []string
	for name := range l.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ff := l.funcs[name]
		if !l.cfg.ConcurrencyPackage(ff.pkg) {
			continue
		}
		for _, reg := range ff.regions {
			for _, nl := range reg.nested {
				if suppress(nl.pos) {
					continue
				}
				if nl.key == reg.key {
					diag(nl.pos, "%s is acquired again while already held (self-deadlock)", shortKey(reg.key))
					continue
				}
				addEdge(reg.key, nl.key, nl.pos)
			}
			for _, hc := range reg.calls {
				if suppress(hc.pos) {
					continue
				}
				s := summarize(hc.callee, map[string]bool{})
				if s.acquires[reg.key] {
					diag(hc.pos, "call to %s while holding %s can reacquire it (self-deadlock)",
						shortName(hc.callee), shortKey(reg.key))
					continue
				}
				var keys []string
				for key := range s.acquires {
					keys = append(keys, key)
				}
				sort.Strings(keys)
				for _, key := range keys {
					addEdge(reg.key, key, hc.pos)
				}
				if len(s.blocks) > 0 {
					diag(hc.pos, "call to %s while holding %s reaches a blocking operation (%s); "+
						"release the lock first or annotate //%s <why>",
						shortName(hc.callee), shortKey(reg.key), s.blocks[0], Annotation)
				}
			}
		}
	}

	// Cycle detection over the lock graph.
	reportCycles(edges, diag)

	// Bare annotations are findings: the hatch requires a reason.
	for _, e := range l.annot.Bare() {
		report(analysis.Diagnostic{Pos: e.Pos, Message: fmt.Sprintf(
			"//%s needs a justification on the annotation line", Annotation)})
	}
	return nil
}

// reportCycles finds cycles in the lock graph with a DFS and reports
// each once, anchored at the edge that closes it.
func reportCycles(edges map[string]map[string]token.Pos, diag func(token.Pos, string, ...any)) {
	var locks []string
	for from := range edges {
		locks = append(locks, from)
	}
	sort.Strings(locks)
	seen := make(map[string]bool) // canonical cycle signatures

	var path []string
	onPath := make(map[string]int)
	var dfs func(lock string)
	dfs = func(lock string) {
		onPath[lock] = len(path)
		path = append(path, lock)
		var next []string
		for to := range edges[lock] {
			next = append(next, to)
		}
		sort.Strings(next)
		for _, to := range next {
			if i, ok := onPath[to]; ok {
				cycle := append(append([]string{}, path[i:]...), to)
				sig := canonicalCycle(cycle[:len(cycle)-1])
				if !seen[sig] {
					seen[sig] = true
					short := make([]string, len(cycle))
					for j, k := range cycle {
						short[j] = shortKey(k)
					}
					diag(edges[lock][to], "lock-order cycle: %s", strings.Join(short, " -> "))
				}
				continue
			}
			if edges[to] != nil {
				dfs(to)
			}
		}
		path = path[:len(path)-1]
		delete(onPath, lock)
	}
	for _, lock := range locks {
		dfs(lock)
	}
}

// canonicalCycle rotates the cycle so its smallest lock comes first,
// giving every traversal of the same cycle one signature.
func canonicalCycle(cycle []string) string {
	if len(cycle) == 0 {
		return ""
	}
	min := 0
	for i, k := range cycle {
		if k < cycle[min] {
			min = i
		}
	}
	rot := append(append([]string{}, cycle[min:]...), cycle[:min]...)
	return strings.Join(rot, "|")
}

// shortKey trims the repository module prefix from a lock key for
// readable diagnostics.
func shortKey(key string) string {
	return strings.TrimPrefix(key, "repro/")
}

// shortName trims the module prefix inside a types.Func FullName.
func shortName(name string) string {
	return strings.ReplaceAll(name, "repro/", "")
}
