package lockpkg

import "sync"

type S struct {
	mu sync.Mutex
	c  chan int
}

func (s *S) SendHeld(v int) {
	s.mu.Lock()
	s.c <- v // want `channel send while holding`
	s.mu.Unlock()
}

func (s *S) RecvHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.c // want `channel receive while holding`
}

func (s *S) SelHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while holding`
	case v := <-s.c:
		_ = v
	}
}

func (s *S) RangeHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.c { // want `range over channel while holding`
		_ = v
	}
}

func (s *S) CondHeld(c *sync.Cond) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Wait() // want `Cond.Wait while holding`
}

func (s *S) Twice() {
	s.mu.Lock()
	s.mu.Lock() // want `acquired again while already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *S) Again() {
	s.mu.Lock()
	s.helper() // want `can reacquire it`
	s.mu.Unlock()
}

func (s *S) helper() {
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *S) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drain() // want `reaches a blocking operation`
}

func (s *S) drain() {
	for v := range s.c {
		_ = v
	}
}

// Released sends after the unlock: no lock is held at the send.
func (s *S) Released(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.c <- v
}

// Spawn launches the send in a goroutine: it does not run under the
// caller's lock.
func (s *S) Spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.c <- 1
	}()
}

// Poll uses a default arm: a non-blocking probe is fine under the lock.
func (s *S) Poll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.c:
		_ = v
	default:
	}
}

// Justified documents an audited hold: suppressed, no finding.
func (s *S) Justified(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//pimlint:lockorder — s.c is buffered to the queue bound and drained by the owner; the send cannot block
	s.c <- v
}

func (s *S) Bare(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c <- v // want "needs a justification" //pimlint:lockorder
}
