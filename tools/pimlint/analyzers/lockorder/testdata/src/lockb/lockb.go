package lockb

import (
	"sync"

	"locka"
)

var Mu sync.Mutex

// AB nests lockb.Mu inside locka.Mu; together with BA this is the
// classic AB/BA deadlock. The report is anchored at the edge that
// closes the cycle, in BA.
func AB() {
	locka.Mu.Lock()
	Mu.Lock()
	Mu.Unlock()
	locka.Mu.Unlock()
}

func BA() {
	Mu.Lock()
	defer Mu.Unlock()
	locka.Mu.Lock() // want `lock-order cycle`
	locka.Mu.Unlock()
}

// HeldWait reaches a WaitGroup.Wait through a cross-package call while
// holding lockb.Mu.
func HeldWait(wg *sync.WaitGroup) {
	Mu.Lock()
	defer Mu.Unlock()
	locka.WaitFor(wg) // want `reaches a blocking operation`
}
