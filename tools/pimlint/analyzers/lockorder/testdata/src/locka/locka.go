package locka

import "sync"

// Mu is the package-level lock the lockb fixtures nest against.
var Mu sync.Mutex

// WaitFor blocks on wg; lockb calls it while holding its own lock.
func WaitFor(wg *sync.WaitGroup) {
	wg.Wait()
}
