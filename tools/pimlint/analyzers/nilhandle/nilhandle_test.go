package nilhandle_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/nilhandle"
	"repro/tools/pimlint/lintcfg"
)

func TestNilhandle(t *testing.T) {
	cfg := &lintcfg.Config{NilHandleTypes: []string{"nilhandletest.Handle"}}
	analysistest.Run(t, filepath.Join("testdata", "src", "nilhandletest"), nilhandle.New(cfg), "nilhandletest")
}

// TestNilhandleUnregistered runs with an empty registry: nothing may be
// flagged, so every want comment would go unmet — hence the analyzer is
// pointed at a registry entry for a different package path and the
// expectation-free scoped package is reused.
func TestNilhandleUnregistered(t *testing.T) {
	cfg := &lintcfg.Config{NilHandleTypes: []string{"elsewhere.Handle"}}
	dir := filepath.Join("..", "detmap", "testdata", "src", "scoped")
	analysistest.Run(t, dir, nilhandle.New(cfg), "scoped")
}
