// Package nilhandle verifies the simulator's disabled-handle
// convention: every exported method of a registered nil-safe handle
// type (telemetry collectors, fault injectors, the campaign journal)
// must begin with a nil-receiver guard, so a run with the subsystem
// off can hold a nil handle and call through it freely.
//
// The registry lives in pimlint.yaml (nilhandle_types); a type is
// registered by its "importpath.TypeName". The accepted guard is a
// first statement of the form
//
//	if recv == nil { ... }
//
// (possibly `recv == nil || more`), whose then-branch leaves the
// function. Value-receiver exported methods on a registered type are
// also flagged: they dereference the nil pointer before the body runs,
// so no in-body guard can save them.
package nilhandle

import (
	"go/ast"
	"go/token"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/lintcfg"
)

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	return &analysis.Analyzer{
		Name: "nilhandle",
		Doc: "require nil-receiver guards on exported methods of registered handle types\n\n" +
			"The simulator disables subsystems by leaving their handle nil; " +
			"every exported method on a registered handle type must start " +
			"with `if recv == nil` so disabled paths cost one branch instead " +
			"of a crash. Register types in pimlint.yaml under nilhandle_types.",
		Run: func(pass *analysis.Pass) (any, error) {
			run(cfg, pass)
			return nil, nil
		},
	}
}

func run(cfg *lintcfg.Config, pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			typeName, pointer := receiverType(recv.Type)
			if typeName == "" || !cfg.NilHandle(pass.Pkg.Path(), typeName) {
				continue
			}
			if !pointer {
				pass.Reportf(fd.Pos(),
					"exported method %s.%s has a value receiver: calls on a nil *%s dereference before the body runs; use a pointer receiver with a nil guard",
					typeName, fd.Name.Name, typeName)
				continue
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				pass.Reportf(fd.Pos(),
					"exported method %s.%s discards its receiver: name it and guard `if recv == nil` so nil handles stay safe",
					typeName, fd.Name.Name)
				continue
			}
			if fd.Body == nil {
				continue
			}
			if !startsWithNilGuard(fd.Body, recv.Names[0].Name) {
				pass.Reportf(fd.Pos(),
					"exported method %s.%s on nil-safe handle type %s must begin with `if %s == nil` (registered in pimlint.yaml)",
					typeName, fd.Name.Name, typeName, recv.Names[0].Name)
			}
		}
	}
}

// receiverType unwraps a method receiver to its named type, reporting
// whether the receiver is a pointer. Generic receivers (IndexExpr)
// unwrap to their base name.
func receiverType(expr ast.Expr) (name string, pointer bool) {
	if star, ok := expr.(*ast.StarExpr); ok {
		name, _ = receiverType(star.X)
		return name, true
	}
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name, false
	case *ast.IndexExpr:
		return receiverType(t.X)
	case *ast.IndexListExpr:
		return receiverType(t.X)
	}
	return "", false
}

// startsWithNilGuard reports whether the first statement is an if whose
// condition checks the receiver against nil (alone or as the left arm
// of a || chain).
func startsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return true // an empty body cannot dereference the receiver
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	return condChecksNil(ifStmt.Cond, recvName)
}

func condChecksNil(cond ast.Expr, recvName string) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.LOR:
		return condChecksNil(bin.X, recvName) || condChecksNil(bin.Y, recvName)
	case token.EQL:
		return (isIdent(bin.X, recvName) && isNil(bin.Y)) ||
			(isIdent(bin.Y, recvName) && isNil(bin.X))
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
