// Package nilhandletest is analysistest fodder for the nilhandle
// analyzer. Handle is registered as a nil-safe handle type by the test
// config; Other is not.
package nilhandletest

// Handle is a registered nil-safe handle.
type Handle struct{ n int }

// Good guards first — the canonical pattern.
func (h *Handle) Good() int {
	if h == nil {
		return 0
	}
	return h.n
}

// GoodOr guards as the left arm of a || chain.
func (h *Handle) GoodOr(x int) int {
	if h == nil || x < 0 {
		return 0
	}
	return h.n + x
}

// GoodReversed writes the comparison nil-first.
func (h *Handle) GoodReversed() int {
	if nil == h {
		return 0
	}
	return h.n
}

// Reset has an empty body: nothing can dereference the receiver.
func (h *Handle) Reset() {}

// unexported methods are internal call sites that already checked.
func (h *Handle) unexportedHelper() int { return h.n }

func (h *Handle) Bad() int { // want "must begin with `if h == nil`"
	return h.n
}

func (h *Handle) BadLateGuard() int { // want "must begin with `if h == nil`"
	x := 1
	if h == nil {
		return x
	}
	return h.n + x
}

func (h Handle) Value() int { // want "has a value receiver"
	return h.n
}

func (_ *Handle) Discard() { // want "discards its receiver"
}

// Other is not registered; no guard required anywhere.
type Other struct{ n int }

func (o *Other) NoGuard() int { return o.n }
