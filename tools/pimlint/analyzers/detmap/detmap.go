// Package detmap flags `range` over map values inside the simulator's
// deterministic packages. Go randomizes map iteration order, so any map
// range in a per-cycle path can silently break the "same seed + same
// schedule = identical numbers" contract the reproduction advertises.
//
// A flagged loop has three outs:
//
//   - restructure onto an index-ordered slice (the preferred fix for
//     hot paths);
//   - make the body a commutative fold — every statement only
//     accumulates with +=, |=, ^=, *=, ++/--, or a min/max fold —
//     which the analyzer proves order-insensitive and allows;
//   - annotate the statement with a `//pimlint:ordered` comment (same
//     line or the line above) after making the iteration order
//     explicitly sorted; the annotation is an audited claim, not an
//     escape hatch, and reviewers treat it as such.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/lintcfg"
)

// Annotation marks a map range whose iteration order has been made
// deterministic by hand (e.g. keys sorted into a slice first).
const Annotation = "pimlint:ordered"

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	return &analysis.Analyzer{
		Name: "detmap",
		Doc: "flag range-over-map in deterministic simulator packages\n\n" +
			"Map iteration order is randomized; ranging over a map in a " +
			"per-cycle path makes runs schedule-dependent. Restructure to " +
			"an indexed slice, make the body a commutative fold, or sort " +
			"the keys and annotate the loop //pimlint:ordered.",
		Run: func(pass *analysis.Pass) (any, error) {
			run(cfg, pass)
			return nil, nil
		},
	}
}

func run(cfg *lintcfg.Config, pass *analysis.Pass) {
	if !cfg.Deterministic(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		annotated := annotationLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pass.Fset.Position(rng.Pos()).Line
			if annotated[line] || annotated[line-1] {
				return true
			}
			if commutativeFold(rng.Body) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map %s in deterministic package %s: iteration order is randomized; use an index-ordered slice, a commutative fold, or sort keys and annotate //%s",
				exprString(rng.X), pass.Pkg.Path(), Annotation)
			return true
		})
	}
}

// annotationLines collects the file lines carrying a //pimlint:ordered
// comment, keyed by line number, so both same-line and line-above
// placements are honored.
func annotationLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if containsAnnotation(c.Text) {
				lines[fset.Position(c.End()).Line] = true
			}
		}
	}
	return lines
}

func containsAnnotation(text string) bool {
	for i := 0; i+len(Annotation) <= len(text); i++ {
		if text[i:i+len(Annotation)] == Annotation {
			return true
		}
	}
	return false
}

// commutativeFold reports whether every statement of a loop body is an
// order-insensitive accumulation: counter bumps (x++/x--), commutative
// compound assignments (+=, |=, ^=, *=), min/max folds via the builtins
// (x = min(x, e) / x = max(x, e)), or the if-guarded min/max idiom
// (if e < x { x = e }). Any other statement — appends, sends, calls,
// non-commutative updates — makes the result depend on visit order.
func commutativeFold(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false // an empty body hides nothing, but flags nothing either way; treat as non-fold
	}
	for _, stmt := range body.List {
		if !commutativeStmt(stmt) {
			return false
		}
	}
	return true
}

func commutativeStmt(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		return commutativeAssign(s)
	case *ast.IfStmt:
		return minMaxGuard(s)
	}
	return false
}

func commutativeAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN:
		return true
	case token.ASSIGN:
		// x = min(x, e) / x = max(x, e) with the builtin min/max.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || (fn.Name != "min" && fn.Name != "max") {
			return false
		}
		for _, arg := range call.Args {
			if sameExpr(arg, s.Lhs[0]) {
				return true
			}
		}
		return false
	}
	return false
}

// minMaxGuard recognizes `if a OP b { x = y }` where OP is an ordering
// comparison and {x, y} are exactly the compared operands — the
// hand-written min/max fold.
func minMaxGuard(s *ast.IfStmt) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	l, r := asg.Lhs[0], asg.Rhs[0]
	return (sameExpr(l, cmp.X) && sameExpr(r, cmp.Y)) ||
		(sameExpr(l, cmp.Y) && sameExpr(r, cmp.X))
}

// sameExpr compares two expressions structurally for the identifier and
// selector shapes the fold patterns use.
func sameExpr(a, b ast.Expr) bool {
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(x.X, y.X) && sameExpr(x.Index, y.Index)
	}
	return false
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "expression"
}
