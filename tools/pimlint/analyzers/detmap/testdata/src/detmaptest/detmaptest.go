// Package detmaptest is analysistest fodder for the detmap analyzer:
// every flagged line carries a `want` expectation, everything else is a
// negative case the analyzer must stay silent on.
package detmaptest

func process(int) {}

// Positive cases: order-sensitive map iteration.
func flagged(m map[int]int) []int {
	for k := range m { // want `range over map m in deterministic package detmaptest`
		process(k)
	}
	var order []int
	for k, v := range m { // want `range over map m in deterministic package`
		order = append(order, k+v)
	}
	lookup := map[string][]int{}
	for _, vs := range lookup { // want `range over map lookup in deterministic package`
		order = append(order, vs...)
	}
	return order
}

// Negative cases: slices, commutative folds, annotated loops.
func silent(m map[int]int, s []int) (int, int, int, int) {
	for _, v := range s { // slices iterate in order
		process(v)
	}

	sum := 0
	for _, v := range m { // commutative fold: +=
		sum += v
	}

	count := 0
	for range m { // commutative fold: ++
		count++
	}

	var bits uint
	for k := range m { // commutative fold: |=
		bits |= uint(k)
	}
	_ = bits

	lo := 1 << 30
	for _, v := range m { // commutative fold: guarded min
		if v < lo {
			lo = v
		}
	}

	hi := 0
	for _, v := range m { // commutative fold: builtin max
		hi = max(hi, v)
	}

	//pimlint:ordered — keys are sorted by the caller's contract
	for k := range m {
		process(k)
	}
	for k := range m { //pimlint:ordered
		process(k)
	}

	return sum, count, lo, hi
}
