// Package scoped ranges over a map but is analyzed under a package path
// that is NOT registered as deterministic — the analyzer must stay
// silent, so this file carries no expectations.
package scoped

func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
