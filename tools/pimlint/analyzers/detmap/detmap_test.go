package detmap_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/detmap"
	"repro/tools/pimlint/lintcfg"
)

func TestDetmap(t *testing.T) {
	cfg := &lintcfg.Config{DeterministicPackages: []string{"detmaptest"}}
	analysistest.Run(t, filepath.Join("testdata", "src", "detmaptest"), detmap.New(cfg), "detmaptest")
}

// TestDetmapScope runs the analyzer over a package full of map ranges
// whose import path is outside the deterministic set: zero diagnostics
// expected (the testdata file carries no want comments).
func TestDetmapScope(t *testing.T) {
	cfg := &lintcfg.Config{DeterministicPackages: []string{"detmaptest"}}
	analysistest.Run(t, filepath.Join("testdata", "src", "scoped"), detmap.New(cfg), "scoped")
}

// TestDetmapPrefixPattern checks the "/..." pattern form reaches
// subpackages.
func TestDetmapPrefixPattern(t *testing.T) {
	cfg := &lintcfg.Config{DeterministicPackages: []string{"detmaptest/..."}}
	analysistest.Run(t, filepath.Join("testdata", "src", "detmaptest"), detmap.New(cfg), "detmaptest/inner")
}
