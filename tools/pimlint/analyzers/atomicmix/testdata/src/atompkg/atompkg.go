package atompkg

import "sync/atomic"

type C struct {
	n     uint64
	v     atomic.Uint64
	plain int
}

func (c *C) Inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *C) Load() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *C) Mixed() uint64 {
	return c.n // want `accessed through sync/atomic elsewhere`
}

func (c *C) MixedWrite() {
	c.n = 0 // want `accessed through sync/atomic elsewhere`
}

// init-time writes predate any concurrency: allowed.
func init() {
	var c C
	c.n = 7
	_ = c
}

// Methods is the only sanctioned way to touch an atomic.* field.
func (c *C) Methods() uint64 {
	c.v.Add(1)
	return c.v.Load()
}

// Copying the value out of an atomic.* field bypasses its atomicity.
func (c *C) Copy() uint64 {
	x := c.v // want `has an atomic type`
	return x.Load()
}

// Unshared fields stay out of both rules.
func (c *C) Plain() int {
	return c.plain
}
