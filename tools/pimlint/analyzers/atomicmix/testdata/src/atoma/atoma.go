package atoma

import "sync/atomic"

type Counter struct {
	N uint64
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.N, 1)
}
