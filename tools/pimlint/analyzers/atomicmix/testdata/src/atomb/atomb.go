package atomb

import "atoma"

// Read is the cross-package half of the mix: atoma touches Counter.N
// through sync/atomic, this plain load races with it.
func Read(c *atoma.Counter) uint64 {
	return c.N // want `accessed through sync/atomic elsewhere`
}
