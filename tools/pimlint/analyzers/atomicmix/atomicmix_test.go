package atomicmix_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/atomicmix"
)

// TestAtomicmix covers the single-package rules: plain loads and
// stores of a field also touched through sync/atomic are flagged,
// init-time writes are excused, atomic.*-typed fields may be used as
// method receivers but not copied. There is deliberately no escape
// hatch to test: a racing plain access has no sound variant.
func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "atompkg"), atomicmix.New(nil), "atompkg")
}

// TestAtomicmixCrossPackage splits the mix across packages — the
// atomic access in the declaring package, the plain one in a consumer —
// which is the case the whole-program End phase exists for.
func TestAtomicmixCrossPackage(t *testing.T) {
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), atomicmix.New(nil),
		[]string{"atoma", "atomb"})
}
