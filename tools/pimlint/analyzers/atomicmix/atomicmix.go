// Package atomicmix flags mixed atomic/plain access to struct fields.
//
// A field accessed through sync/atomic is owned by the atomic
// discipline: one plain load or store racing the atomic ones is a data
// race the race detector only reports when the schedule cooperates.
// The analyzer is whole-program because the mix is usually split
// across packages — the atomic access in the declaring package, the
// plain one in a consumer. Two rules:
//
//   - a field whose address is passed to a sync/atomic function
//     (atomic.AddUint64(&x.f, 1), atomic.LoadInt64(&x.f), ...) must
//     not be read, written, or address-taken anywhere else, except
//     inside init functions and package-level initializers (the
//     pre-concurrency window);
//   - a field of an atomic.* type (atomic.Uint64, atomic.Bool, ...)
//     may only be used as a method receiver — copying or reassigning
//     the value bypasses the atomicity it exists for. These are
//     reported per package, no reachability needed.
//
// There is deliberately no escape hatch: unlike a justified lock-held
// fsync, a racing plain access has no sound variant. Fix it by
// routing the access through sync/atomic or moving it into init.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/lintcfg"
	"repro/tools/pimlint/typeutil"
)

// New builds the analyzer against a configuration (nil uses defaults).
// The configuration is accepted for constructor symmetry; the rules
// are global and need no package scoping — mixed atomic access is a
// bug wherever it appears.
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	a := &atomicmix{
		atomicFields: make(map[string]token.Pos),
		plainUses:    make(map[string][]use),
	}
	return &analysis.Analyzer{
		Name: "atomicmix",
		Doc: "flag fields accessed both through sync/atomic and plainly\n\n" +
			"A field touched by sync/atomic functions must have every access " +
			"go through them (init-time writes excepted), and atomic.*-typed " +
			"fields may only be used as method receivers; anything else is a " +
			"data race the race detector may miss.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			a.addPackage(pass)
			return nil, nil
		},
		End: a.finish,
	}
}

type atomicmix struct {
	fset *token.FileSet
	// atomicFields maps "pkg.Type.field" to the first sync/atomic call
	// site taking the field's address.
	atomicFields map[string]token.Pos
	// plainUses maps the same keys to every other access.
	plainUses map[string][]use
}

type use struct {
	pos  token.Pos
	init bool // inside an init function or package-level initializer
}

func (a *atomicmix) addPackage(pass *analysis.Pass) {
	a.fset = pass.Fset
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				isInit := d.Name.Name == "init" && d.Recv == nil
				a.scan(pass, info, d.Body, isInit)
			case *ast.GenDecl:
				a.scan(pass, info, d, true)
			}
		}
	}
}

// scan walks one declaration collecting atomic and plain field
// accesses. Parent relationships (is this selector an atomic-call
// argument? a method receiver?) are tracked with an explicit stack.
func (a *atomicmix) scan(pass *analysis.Pass, info *types.Info, root ast.Node, isInit bool) {
	// sanctioned selectors: &x.f operands of sync/atomic calls, and
	// receivers of atomic.*-type method calls.
	sanctioned := make(map[ast.Expr]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isAtomicCall(info, x) {
				for _, arg := range x.Args {
					if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
						if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
							if key, ok := fieldKeyOf(info, sel); ok {
								if _, seen := a.atomicFields[key]; !seen {
									a.atomicFields[key] = x.Pos()
								}
								sanctioned[sel] = true
							}
						}
					}
				}
			}
		case *ast.SelectorExpr:
			// c.v.Add(1): the outer selector c.v.Add is a method value on
			// the atomic field; its X is the sanctioned receiver.
			if s, ok := info.Selections[x]; ok && s.Kind() == types.MethodVal {
				if inner, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
					sanctioned[inner] = true
				}
			}
		}
		return true
	})

	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key, ok := fieldKeyOf(info, sel)
		if !ok {
			return true
		}
		if fieldTypeIsAtomic(info, sel) {
			if !sanctioned[sel] && !isInit {
				pass.Reportf(sel.Sel.Pos(),
					"field %s has an atomic type; use its methods instead of plain access", key)
			}
			return true
		}
		if !sanctioned[sel] {
			a.plainUses[key] = append(a.plainUses[key], use{pos: sel.Sel.Pos(), init: isInit})
		}
		return true
	})
}

func (a *atomicmix) finish(report func(analysis.Diagnostic)) error {
	type finding struct {
		pos token.Pos
		key string
	}
	var findings []finding
	for key := range a.atomicFields {
		for _, u := range a.plainUses[key] {
			if u.init {
				continue
			}
			findings = append(findings, finding{pos: u.pos, key: key})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		report(analysis.Diagnostic{Pos: f.pos, Message: fmt.Sprintf(
			"field %s is accessed through sync/atomic elsewhere; this plain access races with it "+
				"(route it through sync/atomic or move it into init)", f.key)})
	}
	return nil
}

// isAtomicCall reports whether the call targets a sync/atomic
// package-level function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if _, isSel := info.Selections[sel]; isSel {
		return false // method call, not a qualified identifier
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldKeyOf returns the stable field key when sel selects a struct
// field of a named type.
func fieldKeyOf(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	return typeutil.FieldKey(s)
}

// fieldTypeIsAtomic reports whether the selected field's type is
// declared in sync/atomic (atomic.Uint64, atomic.Bool, ...).
func fieldTypeIsAtomic(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	named, ok := v.Type().(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}
