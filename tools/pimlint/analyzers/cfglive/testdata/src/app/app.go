// Package app consumes simcfg the way the simulator consumes its
// config: reading some knobs and writing others.
package app

import "simcfg"

// Run reads the live knob; the assignment to Unused is a write and
// must not count as consumption.
func Run(c *simcfg.Sim) int {
	c.Unused = 3
	return c.Used
}
