// Package cfgsolo is analyzed without any consumer package: cfglive
// must stay silent rather than declare every field dead.
package cfgsolo

// Knobs would be flagged field by field if the consumer gate were
// broken.
type Knobs struct {
	A int
	B int
}
