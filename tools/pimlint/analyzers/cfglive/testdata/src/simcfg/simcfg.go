// Package simcfg declares the config structs the cfglive tests track.
package simcfg

// Sim is the exported config struct under test.
type Sim struct {
	Used   int
	Unused int // want `never read outside its declaring package`
	Waived int

	hidden int // unexported: out of scope
}

// internalUse reads fields inside the declaring package; validation and
// hashing do this by design, so it must not count as consumption.
func internalUse(s *Sim) int { return s.Unused + s.Waived + s.hidden }
