package cfglive_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/cfglive"
	"repro/tools/pimlint/lintcfg"
)

func TestCfglive(t *testing.T) {
	cfg := &lintcfg.Config{
		ConfigPackages: []string{"simcfg"},
		ConfigExempt:   []string{"Sim.Waived"},
	}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), cfglive.New(cfg),
		[]string{"simcfg", "app"})
}

// TestCfgliveNoConsumer analyzes the config package alone: nothing
// reads any field, but without a consumer package in the run the
// analyzer must not issue verdicts.
func TestCfgliveNoConsumer(t *testing.T) {
	cfg := &lintcfg.Config{ConfigPackages: []string{"cfgsolo"}}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), cfglive.New(cfg),
		[]string{"cfgsolo"})
}
