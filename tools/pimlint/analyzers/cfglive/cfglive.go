// Package cfglive checks configuration-field liveness: every exported
// field of the simulator's exported config structs must be read by code
// outside the declaring package, or be listed in config_exempt.
//
// A config knob nobody reads is worse than dead code: sweeps vary it,
// manifests hash it, experiment matrices fan out over it — and every
// run with every value produces identical results. The failure is
// silent and expensive, so the check is whole-program and static.
//
// A read is a field selection (cfg.Memory.MemQSize) in any analyzed
// package other than the declaring one. Composite-literal keys and
// assignment targets do not count: constructing or mutating a config is
// not consuming it. Reads inside the declaring package do not count
// either — validation and hashing touch every field by design and would
// make the check vacuous.
//
// The verdict is only issued when at least one package outside the
// config layer was analyzed; linting the config package alone proves
// nothing about its consumers.
package cfglive

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/lintcfg"
	"repro/tools/pimlint/typeutil"
)

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	c := &cfglive{
		cfg:    cfg,
		fields: make(map[string]*fieldFact),
		read:   make(map[string]bool),
	}
	return &analysis.Analyzer{
		Name: "cfglive",
		Doc: "require every exported config field to be read by simulator code\n\n" +
			"A config knob no simulator code reads silently does nothing " +
			"across every sweep that varies it. Exempt intentionally " +
			"forward-declared knobs via config_exempt in pimlint.yaml.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			c.addPackage(pass)
			return nil, nil
		},
		End: func(report func(analysis.Diagnostic)) error {
			return c.finish(report)
		},
	}
}

// fieldFact is one tracked config field.
type fieldFact struct {
	owner string // declaring struct type name
	name  string
	pos   token.Pos
}

type cfglive struct {
	cfg    *lintcfg.Config
	fields map[string]*fieldFact
	read   map[string]bool

	// sawConsumer records that a package outside the config layer was
	// analyzed, making an "unread" verdict meaningful.
	sawConsumer bool
}

func (c *cfglive) addPackage(pass *analysis.Pass) {
	declaring := c.cfg.ConfigPackage(pass.Pkg.Path())
	if declaring {
		c.collectFields(pass)
		return // reads inside the declaring package do not count
	}
	c.sawConsumer = true

	info := pass.TypesInfo
	for _, file := range pass.Files {
		// Selector expressions used as assignment targets are writes,
		// not reads; collect them first so the main walk can skip them.
		assigned := make(map[ast.Expr]bool)
		ast.Inspect(file, func(node ast.Node) bool {
			if asg, ok := node.(*ast.AssignStmt); ok {
				for _, lhs := range asg.Lhs {
					assigned[ast.Unparen(lhs)] = true
				}
			}
			return true
		})
		ast.Inspect(file, func(node ast.Node) bool {
			sel, ok := node.(*ast.SelectorExpr)
			if !ok || assigned[sel] {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			if key, ok := typeutil.FieldKey(s); ok {
				c.read[key] = true
			}
			return true
		})
	}
}

// collectFields records the exported fields of every exported struct
// declared in a config package.
func (c *cfglive) collectFields(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			key := pass.Pkg.Path() + "." + tn.Name() + "." + f.Name()
			c.fields[key] = &fieldFact{owner: tn.Name(), name: f.Name(), pos: f.Pos()}
		}
	}
}

func (c *cfglive) finish(report func(analysis.Diagnostic)) error {
	if !c.sawConsumer {
		return nil
	}
	var dead []*fieldFact
	for key, fact := range c.fields {
		if c.read[key] || c.cfg.ConfigExempted(fact.owner, fact.name) {
			continue
		}
		dead = append(dead, fact)
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].pos < dead[j].pos })
	for _, f := range dead {
		report(analysis.Diagnostic{Pos: f.pos, Message: "config field " + f.owner + "." + f.name +
			" is never read outside its declaring package: the knob does nothing; wire it up, remove it, or add \"" +
			f.owner + "." + f.name + "\" to config_exempt"})
	}
	return nil
}
