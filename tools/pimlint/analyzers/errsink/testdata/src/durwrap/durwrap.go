package durwrap

import "os"

// Persist wraps write+sync; its error result carries the durability
// obligation across the package boundary.
func Persist(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// Note reports a condition without touching storage; discarding its
// error is not a durability loss.
func Note() error { return nil }
