package durcall

import (
	"os"

	"durwrap"
)

// Discarding durwrap.Persist's error silently drops a write/sync
// failure discovered through the cross-package summary.
func Save(f *os.File, data []byte) {
	durwrap.Persist(f, data) // want `error from durwrap\.Persist is unchecked on a durability path`
}

func SaveBlank(f *os.File, data []byte) {
	_ = durwrap.Persist(f, data) // want `error from durwrap\.Persist is assigned to _ on a durability path`
}

// Checking the error satisfies the obligation.
func SaveChecked(f *os.File, data []byte) error {
	return durwrap.Persist(f, data)
}

// A non-durability callee in the same dependency stays quiet.
func Quiet() {
	durwrap.Note()
}
