package errsinktest

import (
	"bufio"
	"errors"
	"fmt"
	"os"
)

// Each discard shape on a durability primitive is a finding.
func Shapes(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil { // checked: quiet
		return err
	}
	f.Sync()              // want `is unchecked on a durability path`
	_ = f.Sync()          // want `is assigned to _ on a durability path`
	n, _ := f.Write(data) // want `is assigned to _ on a durability path`
	_ = n
	return nil
}

// Close of a written file is armed; a deferred discard is a finding.
func DeferredClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `is discarded by defer on a durability path`
	_, werr := f.Write(data)
	return werr
}

// Close of a file that was never written stays quiet.
func ReadOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, rerr := f.Read(buf)
	if rerr != nil {
		return nil, rerr
	}
	return buf[:n], nil
}

// A helper whose returned error derives from a primitive propagates
// the obligation to its callers.
func flush(w *bufio.Writer) error { return w.Flush() }

func ViaHelper(w *bufio.Writer) {
	flush(w) // want `error from errsinktest\.flush is unchecked on a durability path`
}

// Non-durability errors are not the analyzer's business.
func Unrelated() {
	fmt.Println("hello")
	plain()
}

func plain() error { return errors.New("nope") }

// A justified annotation accepts the loss.
func Accepted(f *os.File) {
	//pimlint:besteffort — scratch file, caller re-derives the content on the next run
	f.Sync()
}

// A bare marker is a finding in its own right.
var _ = 0 /*pimlint:besteffort*/ // want `needs a justification`
