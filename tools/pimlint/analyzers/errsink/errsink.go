// Package errsink enforces error discipline on the durability paths:
// in the packages listed under durability_packages (the journal, the
// persistent result store, the serving layer and the campaign
// harness), an error produced by a durability primitive — fsync,
// Write/WriteString/WriteAt, bufio Flush, json Encode, os.Rename,
// os.WriteFile, or Close of a file that was written — must not be
// discarded: not dropped by calling the function as a bare statement
// or defer, and not assigned to the blank identifier.
//
// The check is flow-aware (tools/pimlint/dataflow): a repo function
// whose return value derives from a durability primitive's error (a
// journal append that propagates its Encode/Sync errors, an atomic
// write helper) is itself treated as a durability source, so
// discarding *its* error at a call site is the same finding. Ordinary
// error-free calls and non-durability errors (fmt.Println's) are
// ignored.
//
// The escape hatch is //pimlint:besteffort on the discarding line or
// the line above, with a mandatory justification naming why the write
// is best-effort (e.g. a failure reply to a client that already
// disconnected).
package errsink

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/annot"
	"repro/tools/pimlint/dataflow"
	"repro/tools/pimlint/lintcfg"
	"repro/tools/pimlint/typeutil"
)

// Annotation suppresses an errsink diagnostic with a justification.
const Annotation = "pimlint:besteffort"

const sourceDesc = "durability error"

// primitives are the error-producing durability operations, by
// types.Func FullName. (*os.File).Close joins them dynamically when
// the receiver was written — closing a read-only file is not a
// durability point, flushing written data is.
var primitives = map[string]bool{
	"(*os.File).Sync":                 true,
	"(*os.File).Write":                true,
	"(*os.File).WriteString":          true,
	"(*os.File).WriteAt":              true,
	"(*os.File).Chmod":                true,
	"(*os.File).Truncate":             true,
	"(*bufio.Writer).Flush":           true,
	"(*encoding/json.Encoder).Encode": true,
	"os.Rename":                       true,
	"os.WriteFile":                    true,
}

// writePrimitives are the operations whose receiver object (or field
// key) lands in the written set that arms (*os.File).Close.
var writePrimitives = map[string]bool{
	"(*os.File).Write":       true,
	"(*os.File).WriteString": true,
	"(*os.File).WriteAt":     true,
	"(*os.File).Truncate":    true,
	"(*os.File).Sync":        true,
}

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	e := &errsink{
		cfg:         cfg,
		annot:       annot.NewSet(Annotation),
		writtenObjs: make(map[types.Object]bool),
		writtenKeys: make(map[string]bool),
	}
	return &analysis.Analyzer{
		Name: "errsink",
		Doc: "flag discarded durability errors\n\n" +
			"On durability_packages code, errors from fsync/Write/Flush/Encode/" +
			"Rename/written-file Close — or from repo functions that propagate " +
			"them — may not be dropped (bare call, defer, or _ assignment). " +
			"Suppress an audited best-effort site with //pimlint:besteffort <justification>.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			e.addPackage(pass)
			return nil, nil
		},
		End: e.finish,
	}
}

type errsink struct {
	cfg    *lintcfg.Config
	fset   *token.FileSet
	annot  *annot.Set
	interp *dataflow.Interp
	fns    []*dataflow.Fn

	writtenObjs map[types.Object]bool
	writtenKeys map[string]bool
}

func (e *errsink) addPackage(pass *analysis.Pass) {
	if !e.cfg.DurabilityPackage(pass.Pkg.Path()) {
		return
	}
	if e.interp == nil {
		e.fset = pass.Fset
		e.interp = dataflow.New(pass.Fset, dataflow.Config{
			Source: e.classifySource,
		})
	}
	for _, file := range pass.Files {
		e.annot.AddFile(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			rec := &dataflow.Fn{
				Name: fn.FullName(),
				Decl: fd,
				Pkg:  pass.Pkg,
				Info: pass.TypesInfo,
			}
			e.interp.AddFunc(rec)
			e.fns = append(e.fns, rec)
		}
	}
}

// classifySource marks durability-primitive results as tainted, which
// is what propagates "this function's error matters" through helper
// returns.
func (e *errsink) classifySource(fn *types.Func, call *ast.CallExpr, info *types.Info) (string, bool) {
	name := fn.FullName()
	if primitives[name] {
		return sourceDesc, true
	}
	if name == "(*os.File).Close" && e.receiverWritten(call, info) {
		return sourceDesc, true
	}
	return "", false
}

func (e *errsink) receiverWritten(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return e.exprWritten(sel.X, info)
}

// exprWritten reports whether the file-valued expression is in the
// written set: a local whose object saw a write primitive, or a field
// selector whose stable key did.
func (e *errsink) exprWritten(x ast.Expr, info *types.Info) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil && e.writtenObjs[o] {
			return true
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			if key, ok := typeutil.FieldKey(s); ok && e.writtenKeys[key] {
				return true
			}
		}
	}
	return false
}

// preScan builds the written set over every registered function: the
// receivers of write primitives, by local object and by field key.
func (e *errsink) preScan() {
	for _, fn := range e.fns {
		info := fn.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := dataflow.Callee(info, call)
			if !ok || !writePrimitives[callee.FullName()] {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch x := ast.Unparen(sel.X).(type) {
			case *ast.Ident:
				if o := info.Uses[x]; o != nil {
					e.writtenObjs[o] = true
				}
			case *ast.SelectorExpr:
				if s, ok := info.Selections[x]; ok {
					if key, ok := typeutil.FieldKey(s); ok {
						e.writtenKeys[key] = true
					}
				}
			}
			return true
		})
	}
}

type finding struct {
	pos  token.Pos
	what string
	how  string
}

func (e *errsink) finish(report func(analysis.Diagnostic)) error {
	if e.interp == nil {
		return nil
	}
	e.preScan()
	e.interp.Solve()

	var finds []finding
	for _, fn := range e.fns {
		finds = append(finds, e.scanDiscards(fn)...)
	}
	for _, f := range finds {
		if e.annot.Covers(e.fset.Position(f.pos)) {
			continue
		}
		report(analysis.Diagnostic{
			Pos:      f.pos,
			Category: "errsink",
			Message: fmt.Sprintf(
				"error from %s %s on a durability path; handle it or annotate //%s <justification>",
				f.what, f.how, Annotation),
		})
	}
	for _, a := range e.annot.Bare() {
		report(analysis.Diagnostic{
			Pos:      a.Pos,
			Category: "errsink",
			Message:  fmt.Sprintf("//%s needs a justification on the annotation line", Annotation),
		})
	}
	return nil
}

// scanDiscards finds the three discard shapes in one function: a
// durability call as a bare statement, as a deferred statement, and an
// error result assigned to _.
func (e *errsink) scanDiscards(fn *dataflow.Fn) []finding {
	var finds []finding
	info := fn.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if what, ok := e.durabilityCallee(call, info); ok {
					finds = append(finds, finding{call.Pos(), what, "is unchecked"})
				}
			}
		case *ast.DeferStmt:
			if what, ok := e.durabilityCallee(n.Call, info); ok {
				finds = append(finds, finding{n.Call.Pos(), what, "is discarded by defer"})
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, ok := e.durabilityCallee(call, info)
			if !ok {
				return true
			}
			callee, _ := dataflow.Callee(info, call)
			sig, _ := callee.Type().(*types.Signature)
			if sig == nil {
				return true
			}
			for i := 0; i < sig.Results().Len() && i < len(n.Lhs); i++ {
				if !isErrorType(sig.Results().At(i).Type()) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					finds = append(finds, finding{call.Pos(), what, "is assigned to _"})
				}
			}
		}
		return true
	})
	return finds
}

// durabilityCallee reports whether the call produces a durability
// error: a primitive, an armed Close, or a repo function whose summary
// return carries the durability taint. The callee must actually
// return an error for a discard to exist.
func (e *errsink) durabilityCallee(call *ast.CallExpr, info *types.Info) (string, bool) {
	callee, ok := dataflow.Callee(info, call)
	if !ok {
		return "", false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || !hasErrorResult(sig) {
		return "", false
	}
	name := callee.FullName()
	if primitives[name] {
		return name, true
	}
	if name == "(*os.File).Close" && e.receiverWritten(call, info) {
		return "(*os.File).Close of a written file", true
	}
	if s := e.interp.Summary(name); s != nil && len(s.Ret.Sources()) > 0 {
		return name, true
	}
	return "", false
}

func hasErrorResult(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
