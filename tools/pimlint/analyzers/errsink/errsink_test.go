package errsink_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/errsink"
	"repro/tools/pimlint/lintcfg"
)

func TestErrsink(t *testing.T) {
	cfg := &lintcfg.Config{DurabilityPackages: []string{"errsinktest"}}
	analysistest.Run(t, filepath.Join("testdata", "src", "errsinktest"), errsink.New(cfg), "errsinktest")
}

func TestErrsinkCrossPackage(t *testing.T) {
	cfg := &lintcfg.Config{DurabilityPackages: []string{"durwrap", "durcall"}}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), errsink.New(cfg), []string{"durwrap", "durcall"})
}
