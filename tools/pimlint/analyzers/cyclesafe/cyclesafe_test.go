package cyclesafe_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/cyclesafe"
	"repro/tools/pimlint/lintcfg"
)

func TestCyclesafe(t *testing.T) {
	cfg := &lintcfg.Config{
		DeterministicPackages: []string{"cyclesafetest"},
		CycleExempt:           []string{"WarmupCycles"},
	}
	analysistest.Run(t, filepath.Join("testdata", "src", "cyclesafetest"), cyclesafe.New(cfg), "cyclesafetest")
}

// TestCyclesafeScope: outside the deterministic set the analyzer stays
// silent even on narrow cycle declarations.
func TestCyclesafeScope(t *testing.T) {
	cfg := &lintcfg.Config{DeterministicPackages: []string{"cyclesafetest"}}
	dir := filepath.Join("..", "detmap", "testdata", "src", "scoped")
	analysistest.Run(t, dir, cyclesafe.New(cfg), "scoped")
}
