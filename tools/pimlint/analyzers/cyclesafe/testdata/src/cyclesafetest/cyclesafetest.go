// Package cyclesafetest is analysistest fodder for the cyclesafe
// analyzer: narrow cycle declarations and narrowing conversions are
// flagged; 64-bit declarations, exempt names and non-cycle integers
// are not.
package cyclesafetest

type stats struct {
	gpuCycle     uint64 // 64-bit: fine
	doneAt       int64  // timestamp name, 64-bit: fine
	dramCycles   uint32 // want `cycle counter dramCycles declared uint32`
	tick         int32  // want `cycle counter tick declared int32`
	retryCycles  int    // want `cycle counter retryCycles declared int`
	WarmupCycles int    // exempted by the test config
	banks        uint8  // not a cycle name: fine
}

var lastCycle uint16 // want `cycle counter lastCycle declared uint16`

func narrow(nowCycle uint64, requests int64) {
	_ = uint32(nowCycle)  // want `narrowing conversion uint32\(\.\.\.\) truncates cycle value nowCycle`
	_ = int(nowCycle)     // want `narrowing conversion int\(\.\.\.\) truncates cycle value nowCycle`
	_ = int64(nowCycle)   // same width: fine
	_ = uint32(requests)  // not a cycle identifier: fine
	_ = float64(nowCycle) // not an integer target: fine
	var s stats
	_ = uint16(s.gpuCycle - uint64(s.banks)) // want `narrowing conversion uint16\(\.\.\.\) truncates cycle value gpuCycle`
	_ = lastCycle
}
