// Package cyclesafe enforces 64-bit discipline on cycle and tick
// counters inside the deterministic simulator packages.
//
// Cycle counts are unbounded monotonic quantities: a long campaign run
// exceeds 2^32 DRAM cycles in minutes, so a counter, timestamp or
// cycle field declared with a narrower integer — or a narrowing
// conversion applied to one — truncates silently and corrupts every
// statistic derived from it. The analyzer flags
//
//   - declarations (struct fields, vars, parameters, results) whose
//     name is cycle-like (ends in "cycle"/"cycles", or is one of the
//     conventional timestamp names: now, tick, doneAt, drainStart) but
//     whose type is not a 64-bit integer, and
//   - explicit conversions of a 64-bit cycle-like expression to a
//     narrower integer type.
//
// Bounded durations that are merely *denominated* in cycles (a config
// field holding "extra cycles per retry") may be exempted by name in
// pimlint.yaml under cyclesafe_exempt.
package cyclesafe

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/lintcfg"
)

var cycleSuffix = regexp.MustCompile(`(?i)cycles?$`)

// timestampNames are the conventional cycle-timestamp identifiers used
// across the simulator's hot paths.
var timestampNames = map[string]bool{
	"now":        true,
	"tick":       true,
	"doneAt":     true,
	"drainStart": true,
}

func cycleName(name string) bool {
	return cycleSuffix.MatchString(name) || timestampNames[name]
}

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	return &analysis.Analyzer{
		Name: "cyclesafe",
		Doc: "require 64-bit integers for cycle/tick counters and forbid narrowing them\n\n" +
			"Cycle counters overflow 32 bits within one long run. Declare " +
			"them uint64/int64 and never convert them to narrower integer " +
			"types; exempt bounded cycle-denominated config values by name " +
			"in pimlint.yaml under cyclesafe_exempt.",
		Run: func(pass *analysis.Pass) (any, error) {
			run(cfg, pass)
			return nil, nil
		},
	}
}

func run(cfg *lintcfg.Config, pass *analysis.Pass) {
	if !cfg.Deterministic(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.Field:
				checkNames(cfg, pass, node.Names, node.Type)
			case *ast.ValueSpec:
				checkNames(cfg, pass, node.Names, node.Type)
			case *ast.CallExpr:
				checkConversion(cfg, pass, node)
			}
			return true
		})
	}
}

// checkNames flags cycle-named declarations with a non-64-bit integer
// type. The type is resolved through go/types so aliases and named
// types (`type cycles uint32`) are seen through.
func checkNames(cfg *lintcfg.Config, pass *analysis.Pass, names []*ast.Ident, typeExpr ast.Expr) {
	if typeExpr == nil || len(names) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[typeExpr]
	if !ok {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	if is64Bit(basic) {
		return
	}
	for _, name := range names {
		if !cycleName(name.Name) || cfg.CycleExempted(name.Name) {
			continue
		}
		pass.Reportf(name.Pos(),
			"cycle counter %s declared %s: cycle/tick quantities must be uint64 or int64 (overflow within one long run); exempt bounded durations via cyclesafe_exempt in pimlint.yaml",
			name.Name, tv.Type.String())
	}
}

// checkConversion flags T(expr) where T is an integer type narrower
// than 64 bits and expr is a 64-bit integer mentioning a cycle-like
// identifier.
func checkConversion(cfg *lintcfg.Config, pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	funTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !funTV.IsType() {
		return
	}
	target, ok := funTV.Type.Underlying().(*types.Basic)
	if !ok || target.Info()&types.IsInteger == 0 || is64Bit(target) {
		return
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	argBasic, ok := argTV.Type.Underlying().(*types.Basic)
	if !ok || argBasic.Info()&types.IsInteger == 0 || !is64Bit(argBasic) {
		return
	}
	name, ok := cycleIdent(cfg, call.Args[0])
	if !ok {
		return
	}
	pass.Reportf(call.Pos(),
		"narrowing conversion %s(...) truncates cycle value %s: keep cycle arithmetic in 64 bits",
		funTV.Type.String(), name)
}

// is64Bit reports whether the basic integer kind is guaranteed 64 bits
// wide on every platform. int and uint are excluded deliberately: the
// spec only guarantees 32 bits, and cycle counters must not depend on
// the host word size.
func is64Bit(b *types.Basic) bool {
	return b.Kind() == types.Int64 || b.Kind() == types.Uint64
}

// cycleIdent reports the first non-exempt cycle-like identifier
// mentioned in expr.
func cycleIdent(cfg *lintcfg.Config, expr ast.Expr) (string, bool) {
	var found string
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if cycleName(id.Name) && !cfg.CycleExempted(id.Name) {
			found = id.Name
			return false
		}
		return true
	})
	return found, found != ""
}
