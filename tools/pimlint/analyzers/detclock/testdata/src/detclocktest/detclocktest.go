// Package detclocktest is analysistest fodder for the detclock
// analyzer: wall-clock, global-rand and env reads are flagged, the
// seeded constructors and method calls are not.
package detclocktest

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

// Positive cases.
func flagged() {
	_ = time.Now()        // want `time\.Now in deterministic package detclocktest`
	time.Sleep(1)         // want `time\.Sleep in deterministic package`
	_ = rand.Intn(8)      // want `math/rand\.Intn in deterministic package`
	_ = rand.Int63()      // want `math/rand\.Int63 in deterministic package`
	_ = randv2.Uint64()   // want `math/rand/v2\.Uint64 in deterministic package`
	_ = os.Getenv("HOME") // want `os\.Getenv in deterministic package`
}

func alsoFlagged(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since in deterministic package`
}

// Negative cases: explicitly seeded sources, methods, benign os/time API.
func silent(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are caller-seeded
	v := r.Intn(100)                    // method on an owned generator
	p := randv2.NewPCG(1, 2)
	v += int(p.Uint64() & 0xff) // method, not the global generator
	var d time.Duration = 5     // the Duration type itself is fine
	_ = d
	_ = os.PathSeparator // os constants are host-stable enough for paths
	return v
}
