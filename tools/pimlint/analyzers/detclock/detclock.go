// Package detclock forbids wall-clock, global-randomness and
// environment reads inside the simulator's deterministic packages.
//
// The simulation's only time base is the cycle counter and its only
// randomness the seeded splitmix64 streams; time.Now in a model path,
// a global math/rand draw, or an os.Getenv branch all make two runs of
// the same (config, seed) diverge by host or schedule. Wall-clock
// bookkeeping belongs in the telemetry layer (the run manifest), and
// tunables belong in Config fields, where they are hashed into the run
// fingerprint.
package detclock

import (
	"go/ast"
	"go/types"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/lintcfg"
)

// banned maps package path -> function name -> steering text. An empty
// inner map bans every package-scope function (used for the global
// math/rand API, where only the constructors are allowed).
var banned = map[string]map[string]string{
	"time": {
		"Now":   "use cycle counts; wall-clock cost belongs in telemetry.Manifest",
		"Since": "use cycle counts; wall-clock cost belongs in telemetry.Manifest",
		"Until": "use cycle counts; wall-clock cost belongs in telemetry.Manifest",
		"Sleep": "simulated time never sleeps; model latency in cycles",
		"After": "simulated time never sleeps; model latency in cycles",
		"Tick":  "simulated time never sleeps; model latency in cycles",
	},
	"os": {
		"Getenv":    "environment reads make runs host-dependent; add a Config field",
		"LookupEnv": "environment reads make runs host-dependent; add a Config field",
		"Environ":   "environment reads make runs host-dependent; add a Config field",
	},
}

// randAllowed lists the math/rand functions that do not touch the
// global generator: constructors callers must seed explicitly.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

const randSteer = "global math/rand is seeded per process, not per run; use the seeded splitmix64 streams (internal/faults) or a rand.New(rand.NewSource(seed)) owned by the run"

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	return &analysis.Analyzer{
		Name: "detclock",
		Doc: "forbid wall clock, global randomness and env reads in deterministic packages\n\n" +
			"time.Now/Since, the global math/rand functions and os.Getenv " +
			"make simulation results depend on the host instead of the " +
			"(config, seed) pair. Use cycle counters, seeded streams and " +
			"Config fields.",
		Run: func(pass *analysis.Pass) (any, error) {
			run(cfg, pass)
			return nil, nil
		},
	}
}

func run(cfg *lintcfg.Config, pass *analysis.Pass) {
	if !cfg.Deterministic(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. a Source's Int63) are caller-seeded
			}
			path := fn.Pkg().Path()
			name := fn.Name()
			switch path {
			case "math/rand", "math/rand/v2":
				if !randAllowed[name] {
					pass.Reportf(sel.Pos(), "%s.%s in deterministic package %s: %s", path, name, pass.Pkg.Path(), randSteer)
				}
			default:
				if steer, ok := banned[path][name]; ok {
					pass.Reportf(sel.Pos(), "%s.%s in deterministic package %s: %s", path, name, pass.Pkg.Path(), steer)
				}
			}
			return true
		})
	}
}
