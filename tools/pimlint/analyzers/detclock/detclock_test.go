package detclock_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/detclock"
	"repro/tools/pimlint/lintcfg"
)

func TestDetclock(t *testing.T) {
	cfg := &lintcfg.Config{DeterministicPackages: []string{"detclocktest"}}
	analysistest.Run(t, filepath.Join("testdata", "src", "detclocktest"), detclock.New(cfg), "detclocktest")
}

// TestDetclockScope analyzes an expectation-free package under an
// import path outside the deterministic set: the analyzer must bail
// before reporting anything.
func TestDetclockScope(t *testing.T) {
	cfg := &lintcfg.Config{DeterministicPackages: []string{"detclocktest"}}
	dir := filepath.Join("..", "detmap", "testdata", "src", "scoped")
	analysistest.Run(t, dir, detclock.New(cfg), "scoped")
}
