// Package telem declares the metric handles and the instrument struct
// the telemlive tests track.
package telem

// Counter is a nil-safe counter handle.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Gauge is a nil-safe gauge handle.
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// Metrics is the instrument set under test: Wired is mutated directly
// by the consumer, Copied is consumed through a copied handle, Dead is
// wired but never touched, Unwired is never wired at all.
type Metrics struct {
	Wired   *Counter
	Copied  *Counter
	Dead    *Counter // want `registered but never written`
	Unwired *Gauge   // want `never registered`
}

// New wires every counter; Unwired is deliberately left nil.
func New() *Metrics {
	return &Metrics{Wired: &Counter{}, Copied: &Counter{}, Dead: &Counter{}}
}
