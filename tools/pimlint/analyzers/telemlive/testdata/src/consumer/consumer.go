// Package consumer exercises both write patterns telemlive accepts:
// a direct mutator call on the field, and the simulator's copied-handle
// pattern where the handle is stashed in a subsystem field at wiring
// time and mutated through the copy.
package consumer

import "telem"

// Sub is a subsystem holding a copied handle.
type Sub struct{ hits *telem.Counter }

// Wire mutates one metric directly and copies another.
func (s *Sub) Wire(m *telem.Metrics) {
	m.Wired.Inc()
	s.hits = m.Copied
}

// Bump mutates through the copied handle.
func (s *Sub) Bump() { s.hits.Inc() }
