// Package telemsolo is analyzed without any consumer package: the
// fields below are neither wired nor written, but telemlive must stay
// silent because absence of consumers proves nothing.
package telemsolo

// Counter is a nil-safe counter handle.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Metrics would be flagged both ways if the consumer gate were broken.
type Metrics struct {
	A *Counter
	B *Counter
}
