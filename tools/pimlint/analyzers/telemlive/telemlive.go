// Package telemlive checks metric-handle liveness: every telemetry
// metric field must be both registered (wired to a Registry handle) and
// written (mutated by simulator code), in both directions.
//
// The telemetry layer's nil-safety convention makes metric bugs silent:
// a *Counter field that was never wired no-ops on every Inc and the run
// manifest reports a plausible-looking zero, and a field that is wired
// but never incremented exports a dead metric that dashboards chart as
// a flat line. Neither failure is visible at runtime, which is exactly
// what a whole-program static check is for.
//
// The analyzer tracks exported struct fields declared in the configured
// telemetry_packages whose type is *Counter, *Gauge or *Histogram from
// one of those packages. Across every analyzed package it records:
//
//   - registration: the field is assigned (a composite-literal value or
//     an assignment statement), wiring it to a registry handle;
//   - consumption: a mutating method — Inc, Add, Observe, Set — is
//     called on the field, or the field's handle is read by a package
//     outside the telemetry layer (the simulator's pattern: handles are
//     copied into subsystem-local fields at wiring time and mutated
//     through the copies, which a purely syntactic mutator check cannot
//     follow).
//
// After all packages are seen, fields missing either side are reported
// at their declaration. Both directions run only when at least one
// package outside the telemetry layer was analyzed; linting the
// telemetry package alone proves nothing about its consumers.
//
// Fields are keyed by "pkgpath.TypeName.FieldName" strings, not type
// objects: the declaring package is typechecked from source while its
// consumers see it through export data, so object identity does not
// survive the package boundary (see tools/pimlint/typeutil).
package telemlive

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/lintcfg"
	"repro/tools/pimlint/typeutil"
)

// mutators are the handle methods that count as writes.
var mutators = map[string]bool{
	"Inc":     true,
	"Add":     true,
	"Observe": true,
	"Set":     true,
}

// handleNames are the tracked metric handle type names.
var handleNames = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	t := &telemlive{
		cfg:        cfg,
		fields:     make(map[string]*fieldFact),
		registered: make(map[string]bool),
		written:    make(map[string]bool),
	}
	return &analysis.Analyzer{
		Name: "telemlive",
		Doc: "require telemetry metric fields to be both registered and written\n\n" +
			"A metric field that is never wired to a registry no-ops " +
			"silently under the nil-handle convention, and a wired field " +
			"that is never written exports a dead metric. Both are " +
			"whole-program liveness bugs this analyzer reports at the " +
			"field declaration.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			t.addPackage(pass)
			return nil, nil
		},
		End: func(report func(analysis.Diagnostic)) error {
			return t.finish(report)
		},
	}
}

// fieldFact is one tracked metric field.
type fieldFact struct {
	owner string // declaring struct type name
	name  string
	pos   token.Pos
}

type telemlive struct {
	cfg    *lintcfg.Config
	fields map[string]*fieldFact

	registered map[string]bool
	written    map[string]bool

	// sawConsumer records that at least one package outside the
	// telemetry layer was analyzed, making a "never written" verdict
	// meaningful.
	sawConsumer bool
}

// handleField reports whether v's type is a pointer to one of the
// tracked handle types declared in a telemetry package.
func (t *telemlive) handleField(v *types.Var) bool {
	ptr, ok := v.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return handleNames[named.Obj().Name()] && t.cfg.TelemetryPackage(named.Obj().Pkg().Path())
}

func (t *telemlive) addPackage(pass *analysis.Pass) {
	consumer := !t.cfg.TelemetryPackage(pass.Pkg.Path())
	if consumer {
		t.sawConsumer = true
	} else {
		t.collectFields(pass)
	}

	info := pass.TypesInfo
	for _, file := range pass.Files {
		// Selector expressions used as assignment targets are
		// registrations, not reads; collect them up front.
		assigned := make(map[ast.Expr]bool)
		ast.Inspect(file, func(node ast.Node) bool {
			if asg, ok := node.(*ast.AssignStmt); ok {
				for _, lhs := range asg.Lhs {
					assigned[ast.Unparen(lhs)] = true
				}
			}
			return true
		})
		ast.Inspect(file, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.CompositeLit:
				t.recordLiteral(x, info)
			case *ast.CallExpr:
				// field.Inc() / field.Add(n) / ... is a write. The method
				// selector's receiver expression is itself a field
				// selection when the call goes through a metrics struct.
				sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
				if !ok || !mutators[sel.Sel.Name] {
					return true
				}
				if s, ok := info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
					return true
				}
				recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if s, ok := info.Selections[recv]; ok && s.Kind() == types.FieldVal {
					if key, ok := typeutil.FieldKey(s); ok {
						t.written[key] = true
					}
				}
			case *ast.SelectorExpr:
				s, ok := info.Selections[x]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				v, ok := s.Obj().(*types.Var)
				if !ok || !t.handleField(v) {
					return true
				}
				key, ok := typeutil.FieldKey(s)
				if !ok {
					return true
				}
				if assigned[x] {
					// x.Field = handle wires the metric.
					t.registered[key] = true
				} else if consumer {
					// The handle escapes into simulator code — the
					// copied-handle mutation pattern.
					t.written[key] = true
				}
			}
			return true
		})
	}
}

// recordLiteral marks fields given non-nil values in a keyed struct
// literal as registered.
func (t *telemlive) recordLiteral(lit *ast.CompositeLit, info *types.Info) {
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := info.Uses[key].(*types.Var); ok && v.IsField() {
			if vtv, ok := info.Types[kv.Value]; ok && vtv.IsNil() {
				continue // Field: nil wires nothing
			}
			if k, ok := typeutil.NamedFieldKey(tv.Type, v.Name()); ok {
				t.registered[k] = true
			}
		}
	}
}

// collectFields records the metric handle fields of every exported
// struct declared in a telemetry package.
func (t *telemlive) collectFields(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || !t.handleField(f) {
				continue
			}
			key := pass.Pkg.Path() + "." + tn.Name() + "." + f.Name()
			t.fields[key] = &fieldFact{owner: tn.Name(), name: f.Name(), pos: f.Pos()}
		}
	}
}

func (t *telemlive) finish(report func(analysis.Diagnostic)) error {
	if !t.sawConsumer {
		// Only the telemetry layer itself was analyzed; its consumers
		// were out of scope, so absence of writes proves nothing.
		return nil
	}
	type verdict struct {
		fact *fieldFact
		msg  string
	}
	var out []verdict
	for key, fact := range t.fields {
		switch {
		case !t.registered[key]:
			out = append(out, verdict{fact, "metric field " + fact.owner + "." + fact.name +
				" is never registered: no registry handle is ever assigned, so every write no-ops on a nil receiver"})
		case !t.written[key]:
			out = append(out, verdict{fact, "metric field " + fact.owner + "." + fact.name +
				" is registered but never written or consumed by simulator code: it exports a dead metric"})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fact.pos < out[j].fact.pos })
	for _, v := range out {
		report(analysis.Diagnostic{Pos: v.fact.pos, Message: v.msg})
	}
	return nil
}
