package telemlive_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/telemlive"
	"repro/tools/pimlint/lintcfg"
)

func TestTelemlive(t *testing.T) {
	cfg := &lintcfg.Config{TelemetryPackages: []string{"telem"}}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), telemlive.New(cfg),
		[]string{"telem", "consumer"})
}

// TestTelemliveNoConsumer analyzes the telemetry package alone: every
// field is unwired, but without a consumer package in the run the
// analyzer must not issue verdicts.
func TestTelemliveNoConsumer(t *testing.T) {
	cfg := &lintcfg.Config{TelemetryPackages: []string{"telemsolo"}}
	analysistest.RunPackages(t, filepath.Join("testdata", "src"), telemlive.New(cfg),
		[]string{"telemsolo"})
}
