// Package coldpkg allocates freely and is analyzed with a root that
// does not resolve: hotalloc must stay silent, because with no hot set
// there is no hot path to protect.
package coldpkg

// T is an ordinary allocating type.
type T struct{ buf []int }

// Step allocates on every call.
func (t *T) Step() {
	t.buf = append(make([]int, 0, 4), 1, 2, 3)
	_ = make(map[string]int)
}
