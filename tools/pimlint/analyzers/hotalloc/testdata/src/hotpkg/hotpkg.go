// Package hotpkg exercises hotalloc: Engine.Tick is the configured
// hot-path root, reachability flows through direct calls and interface
// dispatch, and //pimlint:coldpath cuts both edges and whole functions.
package hotpkg

import "fmt"

// Policy dispatches through an interface so reachability must expand
// the call to every implementation in the analyzed set.
type Policy interface {
	Apply(n int) int
}

// Impl is Policy's only implementation.
type Impl struct{ last int }

// Apply is reached from Tick only through the interface call.
func (p *Impl) Apply(n int) int {
	m := make([]int, n) // want `make allocates`
	p.last = len(m)
	return p.last
}

// Engine owns the hot-path root.
type Engine struct {
	pol   Policy
	buf   []int
	raw   []byte
	sink  any
	cb    func()
	label string
}

// Tick is the configured hot-path root.
func (e *Engine) Tick(now int) {
	e.buf = append(e.buf, now) // self-append over a preallocated buffer: sanctioned
	other := e.buf
	e.buf = append(other, now) // want `append extends a slice other than its assignment target`
	_ = make(map[int]int)      // want `make allocates`
	_ = new(Engine)            // want `new allocates`
	m := map[int]int{}         // want `map literal allocates`
	_ = m
	s := []int{1, 2} // want `slice literal allocates`
	_ = s
	p := &Impl{}            // want `address-taken composite literal escapes to the heap`
	fmt.Println(now)        // want `fmt\.Println allocates` `boxes a non-pointer int value`
	e.label = e.label + "x" // want `string concatenation allocates`
	e.label += "y"          // want `string concatenation allocates`
	e.raw = []byte(e.label) // want `string/byte-slice conversion copies and allocates`
	e.cb = func() { _ = p } // want `function literal allocates a closure`
	e.cb = e.helper         // want `method value allocates a receiver-bound closure`
	go e.helper()           // want `goroutine launch allocates`
	e.sink = now            // want `boxes a non-pointer int value`
	e.sink = "static"       // constant: boxes to static data, no diagnostic
	e.sink = p              // pointer-shaped: no box, no diagnostic
	_ = e.pol.Apply(now)    // interface dispatch: drags Impl.Apply into the hot set
	e.audit(now)
	e.flush() //pimlint:coldpath — the pruned edge keeps flush out of the hot set
}

// flush is reachable only through the annotated call in Tick, so its
// allocations go unreported.
func (e *Engine) flush() {
	e.buf = make([]int, 0, 64)
}

//pimlint:coldpath — declaration-level opt-out covers the whole body
func (e *Engine) audit(n int) {
	_ = fmt.Sprint(n)
}

// helper is bound as a method value and launched as a goroutine above.
func (e *Engine) helper() {}

// unreached never appears on any path from Tick.
func unreached() {
	_ = make([]int, 1)
}
