package hotalloc_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/hotalloc"
	"repro/tools/pimlint/lintcfg"
)

func TestHotalloc(t *testing.T) {
	cfg := &lintcfg.Config{
		HotPathRoots:    []string{"(*hotpkg.Engine).Tick"},
		HotPathPackages: []string{"hotpkg"},
	}
	analysistest.Run(t, filepath.Join("testdata", "src", "hotpkg"), hotalloc.New(cfg), "hotpkg")
}

// TestHotallocNoRoots points the analyzer at a root that does not exist
// in the analyzed set: the allocating package must produce no findings,
// since nothing is reachable from an unresolved root.
func TestHotallocNoRoots(t *testing.T) {
	cfg := &lintcfg.Config{
		HotPathRoots:    []string{"(*absent.Engine).Tick"},
		HotPathPackages: []string{"coldpkg"},
	}
	analysistest.Run(t, filepath.Join("testdata", "src", "coldpkg"), hotalloc.New(cfg), "coldpkg")
}
