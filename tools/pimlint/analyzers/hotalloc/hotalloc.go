// Package hotalloc flags allocation-causing constructs in functions
// reachable from the simulator's per-cycle hot-path roots.
//
// The per-cycle path — System.step -> Controller.Tick -> DRAM/NoC/sched
// — executes hundreds of millions of times per campaign; a single heap
// allocation there dominates wall clock long before any profiler is
// pointed at it. This analyzer makes the zero-alloc contract static: it
// builds a conservative call graph over every analyzed package
// (tools/pimlint/callgraph), computes the set of functions reachable
// from the configured hotpath_roots, and inside reachable functions
// belonging to hotpath_packages flags:
//
//   - make and new calls, and map/slice composite literals;
//   - address-taken composite literals (&T{...});
//   - calls into fmt, string concatenation, and string<->[]byte
//     conversions;
//   - function literals, method values, and goroutine launches;
//   - implicit interface conversions of non-pointer values (boxing);
//   - append calls that extend a different slice than they assign;
//     the self-append idiom x = append(x, ...) over a preallocated
//     buffer is the sanctioned pattern, and its runtime behavior is
//     locked in by AllocsPerRun regression tests.
//
// The escape hatch is a //pimlint:coldpath comment on the construct's
// line or the line above. Annotated lines are doubly excused: their
// diagnostics are suppressed and their call edges are pruned from the
// reachability walk, so an epoch-gated sampling branch or a panic
// message does not drag its callees into the hot set. The annotation is
// an audited claim — the reviewer contract is that the annotated
// statement is provably off the per-cycle steady-state path (setup,
// teardown, a guarded failure path, or an epoch boundary).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/callgraph"
	"repro/tools/pimlint/lintcfg"
)

// Annotation marks a line as off the per-cycle path.
const Annotation = "pimlint:coldpath"

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	h := &hotalloc{
		cfg:       cfg,
		coldLines: make(map[string]map[int]bool),
	}
	h.builder = callgraph.NewBuilder(h.coldLine)
	return &analysis.Analyzer{
		Name: "hotalloc",
		Doc: "flag allocation-causing constructs reachable from hot-path roots\n\n" +
			"Functions reachable from the configured hotpath_roots form the " +
			"simulator's per-cycle hot path; allocations there dominate " +
			"campaign wall clock. Preallocate scratch buffers, hoist " +
			"closures, avoid boxing, or annotate provably cold lines " +
			"with //pimlint:coldpath.",
		WholeProgram: true,
		Run: func(pass *analysis.Pass) (any, error) {
			h.addPackage(pass)
			return nil, nil
		},
		End: func(report func(analysis.Diagnostic)) error {
			return h.finish(report)
		},
	}
}

// hotalloc accumulates per-package facts across Run calls.
type hotalloc struct {
	cfg     *lintcfg.Config
	builder *callgraph.Builder
	fset    *token.FileSet

	// coldLines maps filename -> line -> annotated; collected before
	// call edges are added so the builder's skip callback can consult
	// it.
	coldLines map[string]map[int]bool
}

// coldLine reports whether the position's line or the line above it
// carries a //pimlint:coldpath annotation.
func (h *hotalloc) coldLine(posn token.Position) bool {
	lines := h.coldLines[posn.Filename]
	return lines != nil && (lines[posn.Line] || lines[posn.Line-1])
}

func (h *hotalloc) addPackage(pass *analysis.Pass) {
	h.fset = pass.Fset
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		lines := h.coldLines[fname]
		if lines == nil {
			lines = make(map[int]bool)
			h.coldLines[fname] = lines
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, Annotation) {
					lines[pass.Fset.Position(c.End()).Line] = true
				}
			}
		}
	}
	h.builder.AddPackage(pass.Fset, pass.Pkg, pass.Files, pass.TypesInfo)
}

func (h *hotalloc) finish(report func(analysis.Diagnostic)) error {
	graph := h.builder.Finish()
	var roots []*callgraph.Node
	for _, id := range h.cfg.HotPathRoots {
		roots = append(roots, graph.Lookup(id)...)
	}
	if len(roots) == 0 {
		// No root resolved in the analyzed set: nothing is hot. This is
		// the normal case for partial invocations (linting a single
		// cold package) and for trees without a configured hot path.
		return nil
	}

	// A function whose declaration line is annotated is cold in its
	// entirety and does not extend reachability.
	reached := graph.Reachable(roots, func(n *callgraph.Node) bool {
		return n.Decl != nil && h.coldLine(h.fset.Position(n.Decl.Pos()))
	})

	// Deterministic report order: hot functions sorted by position.
	var nodes []*callgraph.Node
	for _, n := range reached {
		if n.Decl == nil || n.Pkg == nil || !h.cfg.HotPackage(n.Pkg.Path()) {
			continue
		}
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	for _, n := range nodes {
		h.checkFunc(n, report)
	}
	return nil
}

// checkFunc walks one hot function's body flagging allocation sites.
func (h *hotalloc) checkFunc(n *callgraph.Node, report func(analysis.Diagnostic)) {
	info := n.Info
	diag := func(pos token.Pos, format string, args ...any) {
		if h.coldLine(h.fset.Position(pos)) {
			return
		}
		report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(
			"%s in hot-path function %s; preallocate, hoist, or annotate //%s",
			fmt.Sprintf(format, args...), n.Func.Name(), Annotation)})
	}

	// Pre-pass: record which call has which directly enclosing
	// assignment (for the self-append idiom) and which selectors are
	// call operands (method calls, as opposed to method values).
	assignOf := make(map[*ast.CallExpr]*ast.AssignStmt)
	called := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					assignOf[call] = x
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				called[sel] = true
			}
		}
		return true
	})

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if node == nil {
			return true
		}
		// Skip subtrees rooted on cold lines entirely: an annotated
		// statement's operands are part of the audited claim.
		if h.coldLine(h.fset.Position(node.Pos())) {
			return false
		}
		switch x := node.(type) {
		case *ast.CallExpr:
			h.checkCall(x, info, assignOf, diag)
			h.checkArgBoxing(x, info, diag)
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN {
				if tv, ok := info.Types[x.Lhs[0]]; ok && isString(tv.Type) {
					diag(x.Pos(), "string concatenation allocates")
				}
			}
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Rhs {
					if lt, ok := info.Types[x.Lhs[i]]; ok {
						h.flagIfBoxed(x.Rhs[i], lt.Type, info, diag)
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					diag(x.Pos(), "map literal allocates")
				case *types.Slice:
					diag(x.Pos(), "slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					diag(cl.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && isString(tv.Type) {
					diag(x.Pos(), "string concatenation allocates")
				}
			}
		case *ast.FuncLit:
			diag(x.Pos(), "function literal allocates a closure")
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal && !called[x] {
				diag(x.Pos(), "method value allocates a receiver-bound closure")
			}
		case *ast.GoStmt:
			diag(x.Pos(), "goroutine launch allocates")
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt calls, and string/byte-slice
// conversions.
func (h *hotalloc) checkCall(call *ast.CallExpr, info *types.Info, assignOf map[*ast.CallExpr]*ast.AssignStmt, diag func(token.Pos, string, ...any)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				diag(call.Pos(), "make allocates")
			case "new":
				diag(call.Pos(), "new allocates")
			case "append":
				if !selfAppend(call, assignOf) {
					diag(call.Pos(), "append extends a slice other than its assignment target and may allocate")
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			diag(call.Pos(), "fmt.%s allocates", fn.Name())
			return
		}
	}
	// string([]byte) and []byte(string) conversions copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if at, ok := info.Types[call.Args[0]]; ok {
			to, from := tv.Type, at.Type
			if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
				diag(call.Pos(), "string/byte-slice conversion copies and allocates")
			}
		}
	}
}

// selfAppend reports whether the call is the sanctioned idiom
// x = append(x, ...): its result is directly assigned to the same
// expression it extends (compared structurally).
func selfAppend(call *ast.CallExpr, assignOf map[*ast.CallExpr]*ast.AssignStmt) bool {
	if len(call.Args) == 0 {
		return false
	}
	asg := assignOf[call]
	if asg == nil || asg.Tok != token.ASSIGN {
		return false
	}
	for i, rhs := range asg.Rhs {
		if ast.Unparen(rhs) == call && i < len(asg.Lhs) {
			return exprEqual(asg.Lhs[i], call.Args[0])
		}
	}
	return false
}

// checkArgBoxing flags call arguments implicitly converted to interface
// parameters.
func (h *hotalloc) checkArgBoxing(call *ast.CallExpr, info *types.Info, diag func(token.Pos, string, ...any)) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && call.Ellipsis.IsValid() && i == len(call.Args)-1:
			pt = params.At(params.Len() - 1).Type() // slice passed through whole
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		h.flagIfBoxed(arg, pt, info, diag)
	}
}

// flagIfBoxed reports an implicit interface conversion that boxes a
// non-pointer concrete value. Pointer-shaped values are stored in the
// interface word directly and carry no per-conversion allocation.
func (h *hotalloc) flagIfBoxed(expr ast.Expr, target types.Type, info *types.Info, diag func(token.Pos, string, ...any)) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	if tv.Value != nil {
		return // constants box to compiler-laid-out static data
	}
	src := tv.Type
	if types.IsInterface(src) {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return // pointer-shaped: no box
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	diag(expr.Pos(), "interface conversion boxes a non-pointer %s value", src.String())
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// exprEqual compares identifier/selector/index shapes structurally.
func exprEqual(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && exprEqual(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(x.X, y.X) && exprEqual(x.Index, y.Index)
	}
	return false
}
