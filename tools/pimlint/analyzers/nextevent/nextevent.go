// Package nextevent enforces the skip-ahead scheduler's type contract
// inside the deterministic simulator packages.
//
// NextEvent is the event engine's wake-time oracle: every component
// exposes `NextEvent(now uint64) uint64` and the engine jumps the
// global clock to the minimum of the returned cycles. The contract is
// only sound in 64 bits — a narrowed return type or a narrowing
// conversion applied to a returned cycle wraps silently once a long
// campaign passes 2^32 cycles, and the engine then jumps backwards or
// sleeps forever. The analyzer flags
//
//   - any NextEvent declaration (method, function, or interface
//     method) whose result is not exactly one uint64, or whose `now`
//     parameter is not uint64, and
//   - explicit conversions to an integer type narrower than 64 bits
//     whose operand mentions a NextEvent call.
package nextevent

import (
	"go/ast"
	"go/types"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/lintcfg"
)

// New builds the analyzer against a configuration (nil uses defaults).
func New(cfg *lintcfg.Config) *analysis.Analyzer {
	if cfg == nil {
		cfg = lintcfg.Default()
	}
	return &analysis.Analyzer{
		Name: "nextevent",
		Doc: "enforce the NextEvent(now uint64) uint64 scheduler contract\n\n" +
			"The event engine jumps to the minimum of the components' " +
			"NextEvent results; a narrowed signature or a narrowing " +
			"conversion on a returned cycle wraps past 2^32 cycles and " +
			"corrupts the jump target. NextEvent must take and return " +
			"uint64, and its result must stay in 64-bit arithmetic.",
		Run: func(pass *analysis.Pass) (any, error) {
			run(cfg, pass)
			return nil, nil
		},
	}
}

func run(cfg *lintcfg.Config, pass *analysis.Pass) {
	if !cfg.Deterministic(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Name.Name == "NextEvent" {
					checkSignature(pass, node.Name)
				}
			case *ast.InterfaceType:
				for _, m := range node.Methods.List {
					for _, name := range m.Names {
						if name.Name == "NextEvent" {
							checkSignature(pass, name)
						}
					}
				}
			case *ast.CallExpr:
				checkConversion(pass, node)
			}
			return true
		})
	}
}

// checkSignature resolves the declared NextEvent through go/types and
// verifies the scheduler shape: one uint64 result, uint64 now.
func checkSignature(pass *analysis.Pass, name *ast.Ident) {
	fn, ok := pass.TypesInfo.Defs[name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if res := sig.Results(); res.Len() != 1 {
		pass.Reportf(name.Pos(),
			"NextEvent must return exactly one uint64 cycle, got %d results: the event engine takes the minimum over plain cycle values",
			res.Len())
	} else if !isUint64(res.At(0).Type()) {
		pass.Reportf(name.Pos(),
			"NextEvent must return uint64, got %s: a narrower cycle wraps within one long campaign and corrupts the jump target",
			res.At(0).Type().String())
	}
	if params := sig.Params(); params.Len() >= 1 && !isUint64(params.At(0).Type()) {
		pass.Reportf(name.Pos(),
			"NextEvent must take the current cycle as uint64, got %s",
			params.At(0).Type().String())
	}
}

// checkConversion flags T(expr) where T is an integer type narrower
// than 64 bits and expr mentions a NextEvent call — the returned cycle
// must never leave 64-bit arithmetic.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	funTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !funTV.IsType() {
		return
	}
	target, ok := funTV.Type.Underlying().(*types.Basic)
	if !ok || target.Info()&types.IsInteger == 0 {
		return
	}
	if target.Kind() == types.Int64 || target.Kind() == types.Uint64 {
		return
	}
	if !mentionsNextEvent(call.Args[0]) {
		return
	}
	pass.Reportf(call.Pos(),
		"narrowing conversion %s(...) truncates a NextEvent cycle: keep event-time arithmetic in 64 bits",
		funTV.Type.String())
}

// mentionsNextEvent reports whether expr contains a call to anything
// named NextEvent.
func mentionsNextEvent(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := c.Fun.(type) {
		case *ast.Ident:
			found = f.Name == "NextEvent"
		case *ast.SelectorExpr:
			found = f.Sel.Name == "NextEvent"
		}
		return !found
	})
	return found
}

func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}
