// Package nexteventtest is analysistest fodder for the nextevent
// analyzer: off-contract NextEvent signatures and narrowing
// conversions of returned cycles are flagged; the canonical
// `NextEvent(now uint64) uint64` shape and 64-bit uses are not.
package nexteventtest

type channel struct{}

// Canonical scheduler shape: fine.
func (channel) NextEvent(now uint64) uint64 { return now + 1 }

type narrowResult struct{}

func (narrowResult) NextEvent(now uint64) uint32 { return 0 } // want `NextEvent must return uint64, got uint32`

type multiResult struct{}

func (multiResult) NextEvent(now uint64) (uint64, bool) { return now + 1, true } // want `NextEvent must return exactly one uint64 cycle, got 2 results`

type narrowNow struct{}

func (narrowNow) NextEvent(now uint32) uint64 { return uint64(now) + 1 } // want `NextEvent must take the current cycle as uint64, got uint32`

// Interface declarations carry the same contract.
type scheduler interface {
	NextEvent(now uint64) uint64 // fine
}

type badScheduler interface {
	NextEvent(now uint64) int // want `NextEvent must return uint64, got int`
}

// A named 64-bit type still satisfies the contract through underlying.
type cycle uint64

type aliased struct{}

func (aliased) NextEvent(now uint64) cycle { return cycle(now) + 1 }

func use(ch channel, now uint64) {
	next := ch.NextEvent(now)
	_ = next
	_ = int64(ch.NextEvent(now))         // same width: fine
	_ = uint32(ch.NextEvent(now))        // want `narrowing conversion uint32\(\.\.\.\) truncates a NextEvent cycle`
	_ = int(ch.NextEvent(now) - now)     // want `narrowing conversion int\(\.\.\.\) truncates a NextEvent cycle`
	_ = uint16(now)                      // no NextEvent mentioned: not this analyzer's concern
	_ = float64(ch.NextEvent(now))       // not an integer target: fine
	if uint8(ch.NextEvent(now)%8) == 0 { // want `narrowing conversion uint8\(\.\.\.\) truncates a NextEvent cycle`
		_ = next
	}
}
