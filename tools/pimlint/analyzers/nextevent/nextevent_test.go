package nextevent_test

import (
	"path/filepath"
	"testing"

	"repro/tools/pimlint/analysis/analysistest"
	"repro/tools/pimlint/analyzers/nextevent"
	"repro/tools/pimlint/lintcfg"
)

func TestNextEvent(t *testing.T) {
	cfg := &lintcfg.Config{
		DeterministicPackages: []string{"nexteventtest"},
	}
	analysistest.Run(t, filepath.Join("testdata", "src", "nexteventtest"), nextevent.New(cfg), "nexteventtest")
}

// TestNextEventScope: outside the deterministic set the analyzer stays
// silent even on off-contract signatures.
func TestNextEventScope(t *testing.T) {
	cfg := &lintcfg.Config{DeterministicPackages: []string{"nexteventtest"}}
	dir := filepath.Join("..", "detmap", "testdata", "src", "scoped")
	analysistest.Run(t, dir, nextevent.New(cfg), "scoped")
}
