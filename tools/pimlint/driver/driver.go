// Package driver loads Go packages and applies the pimlint analyzers
// to them, in two modes:
//
//   - Standalone (Load + Run): packages named by patterns are resolved
//     with `go list -export -deps`, typechecked against the compiler's
//     export data, and analyzed in dependency-closed order. This is
//     the `go run ./cmd/pimlint ./...` path and needs only the go
//     toolchain and its build cache — no network, no GOPATH layout.
//
//   - Unitchecker (VetMain): the `go vet -vettool=` protocol, where
//     the go command hands the tool one JSON .cfg per compilation
//     unit. See vet.go.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/pimlint/analysis"
)

// Package is one loaded, typechecked target package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath      string
	Dir             string
	Standard        bool
	DepOnly         bool
	Export          string
	CompiledGoFiles []string
	Error           *struct{ Err string }
}

// Load resolves patterns to packages (plus their dependency closure
// for type information) and typechecks every non-dependency match.
func Load(fset *token.FileSet, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps", "-compiled",
		"-json=ImportPath,Dir,Standard,DepOnly,Export,CompiledGoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp.ImportPath, lp.Dir, lp.CompiledGoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and checks one package from its file list. File
// names may be relative to the package directory (go list emits them
// that way for in-tree sources) or absolute (cache-generated files).
func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if !strings.HasSuffix(name, ".go") {
			continue // assembly and cgo intermediates carry no AST
		}
		if !filepath.IsAbs(name) && dir != "" {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Finding is one diagnostic with its analyzer attribution.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Posn, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package, runs the whole-program
// End hooks, and returns the findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Posn:     fset.Position(d.Pos),
						Message:  d.Message,
					})
				},
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.End == nil {
			continue
		}
		err := a.End(func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Posn:     fset.Position(d.Pos),
				Message:  d.Message,
			})
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Posn, findings[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}
