// go vet -vettool support: the unitchecker command-line protocol.
//
// When the go command drives a vet tool it expects three behaviors:
//
//	tool -V=full      print "<name> version devel ... buildID=<hex>"
//	                  (the content hash keys go's action cache)
//	tool -flags       print a JSON description of supported flags
//	tool unit.cfg     analyze one compilation unit described by a
//	                  JSON config file; print findings to stderr and
//	                  exit nonzero when there are any
//
// The .cfg carries the file list, the import map, and the paths of the
// compiler's export data for every dependency, so no package loading
// is needed — exactly the information Load derives via `go list` in
// standalone mode.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/tools/pimlint/analysis"
)

// vetConfig mirrors the JSON schema of the .cfg files the go command
// writes for vet tools (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain handles a `go vet -vettool` invocation if the command line
// is one, returning true when it consumed the invocation (the caller
// should not continue into standalone mode). It exits the process
// itself on analysis completion, matching the protocol.
//
// Whole-program analyzers (hotalloc/telemlive/cfglive) are skipped
// here: the vet protocol hands the tool one compilation unit at a
// time, and a liveness or reachability verdict over a single unit
// would be wrong, not merely weaker. Run the standalone driver
// (`go run ./cmd/pimlint ./...`) to get them.
func VetMain(args []string, analyzers []*analysis.Analyzer) bool {
	unitSafe := make([]*analysis.Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		if !a.WholeProgram {
			unitSafe = append(unitSafe, a)
		}
	}
	analyzers = unitSafe
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		// No pass-through flags are supported; tell go vet so.
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		vetUnit(args[0], analyzers)
		os.Exit(0)
	}
	return false
}

// printVersion implements -V=full: a "version devel" line whose
// buildID is the content hash of the executable, so the go command
// reruns analyses when the tool itself changes.
func printVersion() {
	name := "pimlint"
	exe, err := os.Executable()
	if err == nil {
		if f, err2 := os.Open(exe); err2 == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
			return
		}
	}
	fmt.Printf("%s version devel buildID=unknown\n", name)
}

func vetUnit(cfgFile string, analyzers []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}
	if len(cfg.GoFiles) == 0 {
		fatal(fmt.Errorf("package %s has no Go files", cfg.ImportPath))
	}

	fset := token.NewFileSet()
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImp.Import(path)
	})

	pkg, err := typecheck(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			os.Exit(0)
		}
		fatal(err)
	}

	// The suite is fact-free, so the vetx output (the "facts" this unit
	// exports for dependents) is always empty; it still must exist for
	// the go command's caching.
	writeVetx(cfg)
	if cfg.VetxOnly {
		os.Exit(0)
	}

	findings, err := Run(fset, []*Package{pkg}, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Posn, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func writeVetx(cfg vetConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pimlint: %v\n", err)
	os.Exit(1)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
