package annot

import (
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

//pimlint:lockorder — fsync under the lock is the durability contract
func a() {}

func b() { _ = 0 } //pimlint:lockorder

func c() {} // unrelated comment

//pimlint:detached
func d() {}
`

func TestSet(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSet("pimlint:lockorder")
	s.AddFile(fset, f)

	line := func(l int) token.Position {
		return token.Position{Filename: "x.go", Line: l}
	}

	// Annotation on the line above func a (line 4).
	e, ok := s.At(line(4))
	if !ok {
		t.Fatalf("expected annotation covering line 4")
	}
	if want := "fsync under the lock is the durability contract"; e.Justification != want {
		t.Errorf("justification = %q, want %q", e.Justification, want)
	}

	// Trailing annotation on func b's own line (line 6), bare.
	e, ok = s.At(line(6))
	if !ok {
		t.Fatalf("expected annotation covering line 6")
	}
	if e.Justification != "" {
		t.Errorf("justification = %q, want empty", e.Justification)
	}

	// Unrelated comment and a different marker do not cover.
	if s.Covers(line(8)) {
		t.Errorf("line 8 should not be covered")
	}
	if s.Covers(line(11)) {
		t.Errorf("pimlint:detached must not satisfy the lockorder marker")
	}

	bare := s.Bare()
	if len(bare) != 1 {
		t.Fatalf("Bare() = %d entries, want 1", len(bare))
	}
	if posn := fset.Position(bare[0].Pos); posn.Line != 6 {
		t.Errorf("bare annotation at line %d, want 6", posn.Line)
	}
}
