package annot

import (
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

//pimlint:lockorder — fsync under the lock is the durability contract
func a() {}

func b() { _ = 0 } //pimlint:lockorder

func c() {} // unrelated comment

//pimlint:detached
func d() {}
`

func TestSet(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSet("pimlint:lockorder")
	s.AddFile(fset, f)

	line := func(l int) token.Position {
		return token.Position{Filename: "x.go", Line: l}
	}

	// Annotation on the line above func a (line 4).
	e, ok := s.At(line(4))
	if !ok {
		t.Fatalf("expected annotation covering line 4")
	}
	if want := "fsync under the lock is the durability contract"; e.Justification != want {
		t.Errorf("justification = %q, want %q", e.Justification, want)
	}

	// Trailing annotation on func b's own line (line 6), bare.
	e, ok = s.At(line(6))
	if !ok {
		t.Fatalf("expected annotation covering line 6")
	}
	if e.Justification != "" {
		t.Errorf("justification = %q, want empty", e.Justification)
	}

	// Unrelated comment and a different marker do not cover.
	if s.Covers(line(8)) {
		t.Errorf("line 8 should not be covered")
	}
	if s.Covers(line(11)) {
		t.Errorf("pimlint:detached must not satisfy the lockorder marker")
	}

	bare := s.Bare()
	if len(bare) != 1 {
		t.Fatalf("Bare() = %d entries, want 1", len(bare))
	}
	if posn := fset.Position(bare[0].Pos); posn.Line != 6 {
		t.Errorf("bare annotation at line %d, want 6", posn.Line)
	}
}

const nondetSrc = `package p

//pimlint:nondet — manifest provenance, excluded from digests
func a() {
	_ = 0
}

func b() {
	//pimlint:nondet
	_ = 1
}

func c() { _ = 2 } /*pimlint:nondet*/

//pimlint:nondet: colon separator also trims
func d() {}
`

// TestNondetScoping pins the pimlint:nondet contract: a justification
// is mandatory (a bare marker is itself a finding, and still
// suppresses nothing beyond its own lines), the annotation covers only
// its own line and the next, and both separator styles trim.
func TestNondetScoping(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "n.go", nondetSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSet("pimlint:nondet")
	s.AddFile(fset, f)

	line := func(l int) token.Position {
		return token.Position{Filename: "n.go", Line: l}
	}

	// The justified annotation covers its own line and the next, not
	// the rest of the function body.
	e, ok := s.At(line(4))
	if !ok {
		t.Fatal("annotation above func a not found")
	}
	if want := "manifest provenance, excluded from digests"; e.Justification != want {
		t.Errorf("justification = %q, want %q", e.Justification, want)
	}
	if s.Covers(line(5)) {
		t.Error("annotation must not leak past the line below it (line 5)")
	}

	// The bare marker inside func b still covers its lines — the
	// missing justification is reported separately via Bare().
	if !s.Covers(line(10)) {
		t.Error("bare annotation should still cover the next line")
	}
	bare := s.Bare()
	if len(bare) != 2 {
		t.Fatalf("Bare() = %d entries, want 2 (line comment + block comment)", len(bare))
	}
	if posn := fset.Position(bare[0].Pos); posn.Line != 9 {
		t.Errorf("first bare annotation at line %d, want 9", posn.Line)
	}
	if posn := fset.Position(bare[1].Pos); posn.Line != 13 {
		t.Errorf("second bare annotation at line %d, want 13", posn.Line)
	}

	// A colon separator trims the same way the em-dash does.
	e, ok = s.At(line(16))
	if !ok {
		t.Fatal("annotation above func d not found")
	}
	if want := "colon separator also trims"; e.Justification != want {
		t.Errorf("justification = %q, want %q", e.Justification, want)
	}
}
