// Package annot indexes pimlint suppression annotations.
//
// The concurrency analyzers (lockorder, ctxflow, goorphan) share one
// escape-hatch convention: a //pimlint:<marker> comment on the flagged
// line or the line above suppresses the diagnostic, and the comment
// must carry a justification — the annotation is an audited claim, and
// a bare marker is itself a finding. This package factors the scanning
// and lookup out of the analyzers so the convention cannot drift
// between them.
package annot

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Entry is one annotation occurrence.
type Entry struct {
	// Pos is the comment's position, for reporting bare markers.
	Pos token.Pos
	// Justification is the text following the marker, trimmed of
	// punctuation; empty when the author gave no reason.
	Justification string
}

// Set indexes every occurrence of one marker by file and line.
type Set struct {
	marker string
	files  map[string]map[int]Entry
}

// NewSet returns an empty index for marker (e.g. "pimlint:lockorder").
func NewSet(marker string) *Set {
	return &Set{marker: marker, files: make(map[string]map[int]Entry)}
}

// Marker returns the marker this set scans for.
func (s *Set) Marker() string { return s.marker }

// AddFile scans one file's comments for the marker. The annotation is
// indexed at the comment's last line, so both a trailing comment and a
// comment on the line above the flagged construct cover it (see At).
func (s *Set) AddFile(fset *token.FileSet, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			i := strings.Index(c.Text, s.marker)
			if i < 0 {
				continue
			}
			just := c.Text[i+len(s.marker):]
			just = strings.TrimSuffix(strings.TrimSpace(just), "*/")
			just = strings.TrimSpace(strings.TrimLeft(just, ":—–- \t"))
			posn := fset.Position(c.End())
			lines := s.files[posn.Filename]
			if lines == nil {
				lines = make(map[int]Entry)
				s.files[posn.Filename] = lines
			}
			lines[posn.Line] = Entry{Pos: c.Pos(), Justification: just}
		}
	}
}

// At returns the annotation covering posn: one on the same line or on
// the line directly above (the same convention //pimlint:coldpath
// uses).
func (s *Set) At(posn token.Position) (Entry, bool) {
	lines := s.files[posn.Filename]
	if lines == nil {
		return Entry{}, false
	}
	if e, ok := lines[posn.Line]; ok {
		return e, true
	}
	e, ok := lines[posn.Line-1]
	return e, ok
}

// Covers reports whether posn carries the annotation, justified or not.
func (s *Set) Covers(posn token.Position) bool {
	_, ok := s.At(posn)
	return ok
}

// Bare returns every occurrence with an empty justification, in
// position order. Each is a finding in its own right: the escape
// hatches buy suppression only together with a reason.
func (s *Set) Bare() []Entry {
	var out []Entry
	for _, lines := range s.files {
		for _, e := range lines {
			if e.Justification == "" {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
