// Package callgraph resolves a conservative static call graph from
// go/types information, without any x/tools dependency — matching the
// self-contained design of the rest of the pimlint suite.
//
// The graph covers the packages fed to a Builder (the analysis targets).
// Three kinds of edges are resolved:
//
//   - direct calls to package-level functions;
//   - method calls on concrete receivers (the usual case in the
//     simulator's tick path);
//   - interface method calls, expanded to every concrete method in the
//     analyzed packages whose receiver type implements the interface
//     (declared-interface method sets). This is the conservative
//     over-approximation that keeps reachability sound for the
//     scheduler-policy pattern (sched.Policy, sched.View).
//
// Nodes and edges are keyed by types.Func FullName strings rather than
// object identity: the driver typechecks each target package from
// source while its dependencies load from compiler export data, so the
// same function is represented by distinct *types.Func objects in
// different packages' type information. Names are stable across that
// boundary; object pointers are not.
//
// Calls through plain function values (not method values, not
// interfaces) are not resolved; the hotalloc analyzer compensates by
// flagging closure creation in hot code, so an unresolved function
// value cannot smuggle an allocation into the hot path unnoticed.
//
// Edges whose call site sits on a line carrying a skip annotation
// (//pimlint:coldpath) are not added: annotated call sites are the
// audited cold branches of hot functions (setup, sampling epochs,
// panic messages), and pruning them is what gives the annotation its
// reachability meaning.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Node is one function or method in the graph, with its declaration
// retained so analyzers can inspect the body of reachable functions.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl // nil for functions only seen through calls
	File *ast.File     // file containing Decl
	Pkg  *types.Package
	Info *types.Info // types info of the declaring package

	calls map[string]bool // callee FullNames
}

// Builder accumulates packages and produces a Graph.
type Builder struct {
	nodes map[string]*Node // FullName -> node
	// ifaceCalls are call sites on interface methods, resolved in
	// Finish once every named type has been seen.
	ifaceCalls []ifaceCall
	// named collects every defined type in the analyzed packages, the
	// candidate receiver set for interface resolution.
	named []*types.Named
	// skipLine reports whether a call site position is annotated as
	// cold (optional; nil skips nothing).
	skipLine func(token.Position) bool
}

type ifaceCall struct {
	caller *Node
	iface  *types.Interface
	method *types.Func
}

// NewBuilder returns an empty builder. skipLine, when non-nil, is
// consulted with each call site's position; a true return drops the
// edge (the //pimlint:coldpath contract).
func NewBuilder(skipLine func(token.Position) bool) *Builder {
	return &Builder{
		nodes:    make(map[string]*Node),
		skipLine: skipLine,
	}
}

// AddPackage feeds one typechecked package into the graph: its
// functions become nodes, its defined types become interface-resolution
// candidates, and every call site becomes an edge (interface calls are
// deferred to Finish).
func (b *Builder) AddPackage(fset *token.FileSet, pkg *types.Package, files []*ast.File, info *types.Info) {
	// Collect defined types for the interface method-set resolution.
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			if n, ok := tn.Type().(*types.Named); ok {
				b.named = append(b.named, n)
			}
		}
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := b.node(obj)
			node.Decl = fd
			node.File = file
			node.Pkg = pkg
			node.Info = info
			b.addEdges(fset, node, fd.Body, info)
		}
	}
}

func (b *Builder) node(fn *types.Func) *Node {
	name := fn.FullName()
	n := b.nodes[name]
	if n == nil {
		n = &Node{Func: fn, calls: make(map[string]bool)}
		b.nodes[name] = n
	}
	return n
}

// addEdges walks one function body recording call edges. Function
// literals defined inside the body are attributed to the enclosing
// declared function: reaching the function reaches its closures.
func (b *Builder) addEdges(fset *token.FileSet, caller *Node, body ast.Node, info *types.Info) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b.skipLine != nil && b.skipLine(fset.Position(call.Pos())) {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				caller.calls[fn.FullName()] = true
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[fun]
			if !ok {
				// Qualified identifier (pkg.Func).
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
					caller.calls[fn.FullName()] = true
				}
				return true
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return true
			}
			if types.IsInterface(sel.Recv()) {
				b.ifaceCalls = append(b.ifaceCalls, ifaceCall{
					caller: caller,
					iface:  sel.Recv().Underlying().(*types.Interface),
					method: fn,
				})
				return true
			}
			caller.calls[fn.FullName()] = true
		}
		return true
	})
}

// Graph is the resolved call graph.
type Graph struct {
	nodes map[string]*Node
}

// Finish resolves the deferred interface calls against the collected
// type set and returns the graph.
func (b *Builder) Finish() *Graph {
	for _, ic := range b.ifaceCalls {
		name := ic.method.Name()
		for _, named := range b.named {
			if types.IsInterface(named.Underlying()) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, ic.iface) && !types.Implements(ptr, ic.iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, ic.method.Pkg(), name)
			if m, ok := obj.(*types.Func); ok {
				ic.caller.calls[m.FullName()] = true
			}
		}
		// The interface method itself is also a node target, so roots
		// expressed as interface methods resolve too.
		ic.caller.calls[ic.method.FullName()] = true
	}
	return &Graph{nodes: b.nodes}
}

// Lookup returns the node whose types.Func FullName matches id, e.g.
// "(*repro/internal/memctrl.Controller).Tick" or
// "repro/internal/sim.GPUAndPIMSMs"; nil when absent.
func (g *Graph) Lookup(id string) []*Node {
	if n := g.nodes[id]; n != nil {
		return []*Node{n}
	}
	return nil
}

// Reachable computes the set of functions reachable from roots, keyed
// by FullName, excluding functions for which prune returns true (prune
// may be nil). Pruned functions are neither visited nor expanded.
func (g *Graph) Reachable(roots []*Node, prune func(*Node) bool) map[string]*Node {
	reached := make(map[string]*Node)
	var stack []*Node
	push := func(n *Node) {
		if n == nil || reached[n.Func.FullName()] != nil {
			return
		}
		if prune != nil && prune(n) {
			return
		}
		reached[n.Func.FullName()] = n
		stack = append(stack, n)
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range n.sortedCalls() {
			push(g.nodes[callee])
		}
	}
	return reached
}

// sortedCalls returns the callee names in a stable order so traversal
// and diagnostics are deterministic run to run.
func (n *Node) sortedCalls() []string {
	out := make([]string, 0, len(n.calls))
	for name := range n.calls {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Calls reports whether the node has a recorded edge to fn (tests).
func (n *Node) Calls(fn *types.Func) bool { return n.calls[fn.FullName()] }

// CallNames returns the node's callee FullNames in a stable order. It
// includes edges to functions outside the analyzed set (standard
// library calls), which have no Node of their own — the concurrency
// analyzers match those by name (e.g. "(*os.File).Sync").
func (n *Node) CallNames() []string { return n.sortedCalls() }
