package pimsim

// This file holds one testing.B benchmark per table/figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment harness at
// a reduced scale and reports the headline quantities as custom metrics
// (b.ReportMetric), so `go test -bench=. -benchmem` regenerates every
// artifact in one pass. cmd/pimsweep and cmd/pimllm print the full tables
// for larger kernel sets.

import (
	"os"
	"testing"
)

const benchScale = 0.2

func benchRunner(b *testing.B) *Runner {
	b.Helper()
	cfg := ScaledConfig()
	cfg.MaxGPUCycles = 2_000_000
	// PIMSIM_ENGINE=tick re-times every figure on the per-cycle reference
	// engine, so the event-engine speedup can be measured from one binary.
	if s := os.Getenv("PIMSIM_ENGINE"); s != "" {
		eng, err := ParseEngine(s)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Engine = eng
	}
	r := NewRunner(cfg, benchScale)
	r.Parallel = 4
	return r
}

// BenchmarkTable1_ConfigValidation covers Table I: building and
// validating the full paper configuration.
func BenchmarkTable1_ConfigValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := PaperConfig()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_Characterization regenerates Fig. 4's box statistics:
// interconnect/DRAM arrival rates, BLP and RBHR for GPU-all, GPU-few and
// PIM kernel groups.
func BenchmarkFig4_Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		c, err := r.Characterize([]string{"G4", "G6", "G10", "G15", "G17"}, []string{"P1", "P4"})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(c.MCRate["PIM"].Median, "pim-mcrate-med")
			b.ReportMetric(c.BLP["PIM"].Median, "pim-blp-med")
			b.ReportMetric(c.RBHR["PIM"].Median, "pim-rbhr-med")
		}
	}
}

// BenchmarkFig5_CoRunImpact regenerates Fig. 5: the suite's average
// speedup on the co-execution SM share against each co-runner.
func BenchmarkFig5_CoRunImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		c, err := r.CoRun([]string{"G8", "G13", "G18"}, []string{"G4", "P1"})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(c.AvgSpeedup["none"], "speedup-none")
			b.ReportMetric(c.AvgSpeedup["G4"], "speedup-vs-G4")
			b.ReportMetric(c.AvgSpeedup["P1"], "speedup-vs-P1")
		}
	}
}

func benchSweep(b *testing.B, policies []string) *Sweep {
	b.Helper()
	r := benchRunner(b)
	s, err := r.RunSweep(DefaultGPUKernels(), DefaultPIMKernels(), policies, []VCMode{VC1, VC2})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig6_MEMArrivalRate regenerates Fig. 6: the GPU kernels' MC
// arrival rate under PIM contention, normalized to standalone, per policy
// and interconnect configuration.
func BenchmarkFig6_MEMArrivalRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSweep(b, []string{"fcfs", "mem-first", "fr-fcfs", "f3fs"})
		a := s.ArrivalRates()
		if i == b.N-1 {
			b.ReportMetric(a.PolicyAvg[VC1]["mem-first"], "memfirst-vc1")
			b.ReportMetric(a.PolicyAvg[VC2]["mem-first"], "memfirst-vc2")
			b.ReportMetric(a.PolicyAvg[VC1]["fr-fcfs"], "frfcfs-vc1")
		}
	}
}

// BenchmarkFig8_FairnessThroughput regenerates Fig. 8: average fairness
// index and system throughput per policy under VC1 and VC2.
func BenchmarkFig8_FairnessThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSweep(b, []string{"fcfs", "fr-fcfs", "fr-rr-fcfs", "f3fs"})
		f := s.FairnessThroughput()
		if i == b.N-1 {
			b.ReportMetric(f.AvgFairness[VC1]["fr-rr-fcfs"], "frrr-fi-vc1")
			b.ReportMetric(f.AvgFairness[VC2]["f3fs"], "f3fs-fi-vc2")
			b.ReportMetric(f.AvgThroughput[VC2]["f3fs"], "f3fs-st-vc2")
		}
	}
}

// BenchmarkFig10_SwitchOverheads regenerates Fig. 10: mode switches
// normalized to FCFS, additional MEM conflicts per switch and MEM drain
// latency per switch.
func BenchmarkFig10_SwitchOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSweep(b, []string{"fcfs", "fr-fcfs", "fr-rr-fcfs", "f3fs"})
		o, err := s.SwitchOverheads()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(o.SwitchesVsFCFS[VC1]["f3fs"], "f3fs-sw-vs-fcfs")
			b.ReportMetric(o.Conflicts[VC1]["fr-fcfs"], "frfcfs-conf/sw")
			b.ReportMetric(o.Drain[VC1]["fr-fcfs"], "frfcfs-drain/sw")
		}
	}
}

// BenchmarkFig11_LLMSpeedup regenerates Fig. 11: the collaborative LLM
// speedup for the key policies under both interconnect configurations.
func BenchmarkFig11_LLMSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		res, err := r.CollaborativeSweep(
			[]string{"fr-fcfs", "gather-issue", "fr-rr-fcfs", "f3fs"},
			[]VCMode{VC1, VC2})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range res {
				if c.Policy == "f3fs" {
					b.ReportMetric(c.Speedup, "f3fs-"+c.Mode.String())
				}
			}
		}
	}
}

// BenchmarkFig13_IntensityExtremes regenerates Fig. 13: fairness and
// throughput for the compute-intensive and memory-intensive Rodinia
// extremes.
func BenchmarkFig13_IntensityExtremes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		s, err := r.RunSweep([]string{"G10", "G6", "G17"}, []string{"P1"},
			[]string{"fr-rr-fcfs", "f3fs"}, []VCMode{VC2})
		if err != nil {
			b.Fatal(err)
		}
		is := s.IntensitySlice()
		if i == b.N-1 {
			b.ReportMetric(is.Fairness[VC2]["f3fs"]["G10"], "f3fs-fi-G10")
			b.ReportMetric(is.Fairness[VC2]["f3fs"]["G6"], "f3fs-fi-G6")
		}
	}
}

// BenchmarkFig14a_Ablation regenerates Fig. 14a: the incremental impact
// of F3FS's components over FR-FCFS-Cap.
func BenchmarkFig14a_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		stages, err := r.Ablation([]string{"G8", "G17"}, "P2")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(stages[0].Fairness, "stage0-fi")
			b.ReportMetric(stages[len(stages)-1].LLMSpeedup, "asym-llm")
		}
	}
}

// BenchmarkFig14b_QueueSensitivity regenerates Fig. 14b: F3FS under VC2
// across interconnect queue sizes.
func BenchmarkFig14b_QueueSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		pts, err := r.QueueSensitivity([]string{"G8"}, []string{"P2"}, []int{256, 512, 1024})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Throughput, "st-q"+itoa(p.QueueSize))
			}
		}
	}
}

// BenchmarkCapSensitivity regenerates the Sec. VII-B CAP sweep.
func BenchmarkCapSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		pts, err := r.CapSensitivity([]string{"G8"}, []string{"P2"}, []int{64, 256}, VC2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(pts) == 2 {
			b.ReportMetric(pts[0].Fairness, "fi-cap64")
			b.ReportMetric(pts[1].Fairness, "fi-cap256")
		}
	}
}

// BenchmarkPrioritySweep regenerates the Sec. VII future-work study:
// process priorities realized as asymmetric F3FS CAPs.
func BenchmarkPrioritySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		pts, err := r.PrioritySweep([]string{"G8"}, []string{"P2"},
			[][2]int{{1, 2}, {2, 1}}, 512, VC2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(pts) == 2 {
			b.ReportMetric(pts[0].GPUSpeedup, "gpu-spd-1:2")
			b.ReportMetric(pts[1].GPUSpeedup, "gpu-spd-2:1")
		}
	}
}

// BenchmarkDualRowBuffer regenerates the NeuPIMs-style dual-row-buffer
// comparison (extension): switch-induced conflicts must vanish.
func BenchmarkDualRowBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		pts, err := r.DualBufferAblation("G8", "P2", []string{"fcfs", "f3fs"}, VC2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(pts) == 2 {
			b.ReportMetric(pts[0].Throughput, "fcfs-shared-st")
			b.ReportMetric(pts[0].DualThroughput, "fcfs-dual-st")
			b.ReportMetric(pts[1].DualConflictsPerSwitch, "f3fs-dual-conf")
		}
	}
}

// BenchmarkPagePolicyAblation compares the open-page baseline against the
// closed-page extension knob under the proposed system: how much of the
// result rests on row-buffer locality.
func BenchmarkPagePolicyAblation(b *testing.B) {
	run := func(page PagePolicy) float64 {
		cfg := ScaledConfig()
		cfg.MaxGPUCycles = 2_000_000
		cfg.Memory.Page = page
		r := NewRunner(cfg, benchScale)
		pair, err := r.Competitive("G17", "P1", "f3fs", VC2)
		if err != nil {
			b.Fatal(err)
		}
		return pair.Throughput
	}
	for i := 0; i < b.N; i++ {
		open := run(PageOpen)
		closed := run(PageClosed)
		if i == b.N-1 {
			b.ReportMetric(open, "st-open-page")
			b.ReportMetric(closed, "st-closed-page")
		}
	}
}

// BenchmarkEnergySweep regenerates the per-policy energy comparison
// (extension).
func BenchmarkEnergySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		pts, err := r.EnergySweep("G8", "P2", []string{"fcfs", "f3fs"}, VC2, DefaultHBMEnergy())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(pts) == 2 {
			b.ReportMetric(pts[0].PerRequestNJ, "fcfs-nj/req")
			b.ReportMetric(pts[1].PerRequestNJ, "f3fs-nj/req")
		}
	}
}

// BenchmarkBlissThreshold regenerates the Sec. VI-A blacklist threshold
// sweep.
func BenchmarkBlissThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		pts, err := r.BlissSweep([]string{"G8"}, []string{"P2"}, []int{2, 8}, VC1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(pts) == 2 {
			b.ReportMetric(pts[0].Throughput, "st-th2")
			b.ReportMetric(pts[1].Throughput, "st-th8")
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
