// Command pimserve exposes the simulator as a service: an HTTP/JSON
// daemon running simulation requests on a bounded worker pool with a
// priority queue, admission control, a content-addressed result cache,
// and (with -store) a crash-safe persistent backing store the cache
// warm-loads from after a restart. See docs/ARCHITECTURE.md ("Serving:
// pimserve" and "Persistence & degraded mode") for the API and the
// durability contract.
//
// Usage:
//
//	pimserve -addr 127.0.0.1:8731 -workers 8 -cache 4096 -store /var/lib/pimserve
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8731", "listen address")
		workers     = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 4096, "result cache entries")
		runTimeout  = flag.Duration("run-timeout", 5*time.Minute, "per-simulation timeout")
		jobTimeout  = flag.Duration("job-timeout", 10*time.Minute, "per-job timeout ceiling")
		maxScale    = flag.Float64("max-scale", 1.0, "largest accepted workload scale")
		maxJobs     = flag.Int("max-jobs", 16384, "retained finished job records")
		sampleEvery = flag.Uint64("sample-interval", 2048, "progress sampler epoch (GPU cycles)")

		queueIA   = flag.Int("queue-interactive", 256, "interactive admission-queue depth (429 beyond)")
		queueBulk = flag.Int("queue-bulk", 1024, "bulk admission-queue depth (429 beyond)")

		storeDir     = flag.String("store", "", "persistent result store directory (empty = memory-only)")
		storeMax     = flag.Int64("store-max-bytes", 256<<20, "store disk quota; exceeding it degrades to memory-only")
		storeCompact = flag.Int("store-compact-every", 512, "journal records between snapshot compactions")
		storeNoSync  = flag.Bool("store-no-sync", false, "skip per-record fsync (faster, last results may be lost to a crash)")

		drainGrace = flag.Duration("drain-grace", 500*time.Millisecond, "pause between readiness flipping false and the listener closing")
	)
	flag.Parse()

	srv, err := serve.New(serve.Options{
		Workers:             *workers,
		CacheEntries:        *cacheSize,
		RunTimeout:          *runTimeout,
		JobTimeout:          *jobTimeout,
		MaxScale:            *maxScale,
		MaxJobs:             *maxJobs,
		SampleInterval:      *sampleEvery,
		MaxQueueInteractive: *queueIA,
		MaxQueueBulk:        *queueBulk,
		StoreDir:            *storeDir,
		StoreMaxBytes:       *storeMax,
		StoreCompactEvery:   *storeCompact,
		StoreNoSync:         *storeNoSync,
	})
	if err != nil {
		log.Fatalf("pimserve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pimserve: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	done := make(chan error, 1)
	// Process-lifetime acceptor: Serve returns when Shutdown below
	// closes the listener, and the buffered channel lets the goroutine
	// exit even if the signal path wins the select.
	//pimlint:detached — acceptor loop lives for the process; hs.Shutdown unblocks Serve and main exits behind it
	go func() { done <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "pimserve: listening on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pimserve: %v, shutting down\n", sig)
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("pimserve: %v", err)
		}
	}

	// Ordered drain: readiness flips false FIRST (load balancers stop
	// routing, SSE streams get their terminal event), then — after a
	// short grace so in-flight health probes observe it — the listener
	// stops accepting and in-flight requests complete, then the worker
	// pool and store shut down (Close compacts the journal).
	srv.BeginDrain()
	time.Sleep(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("pimserve: http shutdown: %v", err)
	}
	srv.Close()
}
