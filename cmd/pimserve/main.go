// Command pimserve exposes the simulator as a service: an HTTP/JSON
// daemon running simulation requests on a bounded worker pool with a
// priority queue and a content-addressed result cache. See
// docs/ARCHITECTURE.md ("Serving: pimserve") for the API.
//
// Usage:
//
//	pimserve -addr 127.0.0.1:8731 -workers 8 -cache 4096
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8731", "listen address")
		workers     = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 4096, "result cache entries")
		runTimeout  = flag.Duration("run-timeout", 5*time.Minute, "per-simulation timeout")
		jobTimeout  = flag.Duration("job-timeout", 10*time.Minute, "per-job timeout ceiling")
		maxScale    = flag.Float64("max-scale", 1.0, "largest accepted workload scale")
		maxJobs     = flag.Int("max-jobs", 16384, "retained finished job records")
		sampleEvery = flag.Uint64("sample-interval", 2048, "progress sampler epoch (GPU cycles)")
	)
	flag.Parse()

	srv := serve.New(serve.Options{
		Workers:        *workers,
		CacheEntries:   *cacheSize,
		RunTimeout:     *runTimeout,
		JobTimeout:     *jobTimeout,
		MaxScale:       *maxScale,
		MaxJobs:        *maxJobs,
		SampleInterval: *sampleEvery,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pimserve: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "pimserve: listening on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pimserve: %v, shutting down\n", sig)
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("pimserve: %v", err)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("pimserve: http shutdown: %v", err)
	}
	srv.Close()
}
