// Command pimlint is the repository's custom static-analysis suite: a
// multichecker enforcing the simulator's determinism and nil-safe
// handle invariants.
//
// Analyzers:
//
//	detmap     no range-over-map in deterministic packages
//	detclock   no wall clock / global rand / env reads there either
//	nilhandle  exported methods on registered handle types start with
//	           a nil-receiver guard
//	cyclesafe  cycle/tick counters are 64-bit and never narrowed
//	nextevent  NextEvent keeps the (now uint64) uint64 scheduler
//	           contract and its result is never narrowed
//	hotalloc   no allocation-causing constructs reachable from the
//	           per-cycle hot-path roots (whole-program)
//	telemlive  telemetry metric fields are registered and written
//	           (whole-program)
//	cfglive    exported config fields are read by simulator code
//	           (whole-program)
//	lockorder  no lock-order cycles or blocking operations under held
//	           locks in the concurrency packages (whole-program)
//	ctxflow    blocking channel operations reachable from the service
//	           worker roots are cancellable (whole-program)
//	goorphan   goroutines in service code are WaitGroup-tracked or
//	           carry a justified //pimlint:detached (whole-program)
//	atomicmix  fields accessed through sync/atomic are never also
//	           accessed plainly outside init (whole-program)
//	detflow    nondeterministic values (wall clock, unseeded rand, map
//	           order, scheduler reads) must not flow into digest /
//	           journal / figure-telemetry sinks (whole-program)
//	lifecycle  files, timers, tickers, response bodies and cancel
//	           funcs created in service code are released on all
//	           paths (whole-program)
//	errsink    durability errors (fsync, Write, journal append) are
//	           never discarded outside audited best-effort sites
//	           (whole-program)
//
// Usage:
//
//	go run ./cmd/pimlint ./...            # standalone, from repo root
//	go run ./cmd/pimlint -json ./...      # findings as JSON on stdout
//	go vet -vettool=$(which pimlint) ./...  # as a vet tool
//
// The whole-program analyzers need every target package in one
// invocation, so they run only in standalone mode; the per-unit vet
// protocol skips them.
//
// Configuration comes from pimlint.yaml at the repository root (see
// tools/pimlint/lintcfg); compiled-in defaults match that file. Exit
// status is 0 when clean, 1 when any analyzer reports a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"

	"repro/tools/pimlint/analysis"
	"repro/tools/pimlint/analyzers/atomicmix"
	"repro/tools/pimlint/analyzers/cfglive"
	"repro/tools/pimlint/analyzers/ctxflow"
	"repro/tools/pimlint/analyzers/cyclesafe"
	"repro/tools/pimlint/analyzers/detclock"
	"repro/tools/pimlint/analyzers/detflow"
	"repro/tools/pimlint/analyzers/detmap"
	"repro/tools/pimlint/analyzers/errsink"
	"repro/tools/pimlint/analyzers/goorphan"
	"repro/tools/pimlint/analyzers/hotalloc"
	"repro/tools/pimlint/analyzers/lifecycle"
	"repro/tools/pimlint/analyzers/lockorder"
	"repro/tools/pimlint/analyzers/nextevent"
	"repro/tools/pimlint/analyzers/nilhandle"
	"repro/tools/pimlint/analyzers/telemlive"
	"repro/tools/pimlint/driver"
	"repro/tools/pimlint/lintcfg"
)

func analyzers(cfg *lintcfg.Config) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmap.New(cfg),
		detclock.New(cfg),
		nilhandle.New(cfg),
		cyclesafe.New(cfg),
		nextevent.New(cfg),
		hotalloc.New(cfg),
		telemlive.New(cfg),
		cfglive.New(cfg),
		lockorder.New(cfg),
		ctxflow.New(cfg),
		goorphan.New(cfg),
		atomicmix.New(cfg),
		detflow.New(cfg),
		lifecycle.New(cfg),
		errsink.New(cfg),
	}
}

// jsonFinding is the machine-readable finding shape emitted by -json,
// consumed by the CI problem matcher and any editor integration.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	// The vet protocol (-V=full / -flags / unit.cfg) must be answered
	// before ordinary flag parsing. Unit configs resolve pimlint.yaml
	// from the analyzed package's directory at analysis time, so the
	// vet path loads per-unit config lazily inside the closure-built
	// analyzers; standalone resolves once from the working directory.
	if len(os.Args) == 2 {
		dir, _ := os.Getwd()
		cfg, err := lintcfg.Find(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimlint: %v\n", err)
			os.Exit(1)
		}
		if driver.VetMain(os.Args[1:], analyzers(cfg)) {
			return
		}
	}

	configPath := flag.String("config", "", "path to pimlint.yaml (default: search upward from the working directory)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout instead of text on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pimlint [-config pimlint.yaml] [-json] [packages]\n\n"+
			"Runs the determinism and nil-safety analyzers over the named\n"+
			"package patterns (default ./...). Also speaks the go vet\n"+
			"-vettool protocol when handed a unit .cfg file.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var cfg *lintcfg.Config
	var err error
	if *configPath != "" {
		data, rerr := os.ReadFile(*configPath)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "pimlint: %v\n", rerr)
			os.Exit(1)
		}
		cfg, err = lintcfg.Parse(string(data))
	} else {
		dir, _ := os.Getwd()
		cfg, err = lintcfg.Find(dir)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimlint: %v\n", err)
		os.Exit(1)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := driver.Load(fset, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimlint: %v\n", err)
		os.Exit(1)
	}
	findings, err := driver.Run(fset, pkgs, analyzers(cfg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimlint: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Posn.Filename,
				Line:     f.Posn.Line,
				Column:   f.Posn.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "pimlint: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pimlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
