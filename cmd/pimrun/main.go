// Command pimrun simulates a single GPU/PIM kernel combination under one
// scheduling policy and interconnect configuration and prints the
// resulting metrics.
//
// Usage:
//
//	pimrun -gpu G8 -pim P1 -policy f3fs -vc 2 [-scale 0.25] [-full]
//
// -full selects the paper's full Table I configuration (32 channels, 80
// SMs) instead of the laptop-scale default.
package main

import (
	"flag"
	"fmt"
	"os"

	pimsim "repro"
	"repro/internal/profiling"
)

func main() {
	var (
		gpuID     = flag.String("gpu", "G8", "GPU kernel (G1..G20 or name)")
		pimID     = flag.String("pim", "P1", "PIM kernel (P1..P9 or name)")
		policy    = flag.String("policy", "f3fs", "scheduling policy")
		vc        = flag.Int("vc", 1, "interconnect config: 1 (shared) or 2 (split)")
		scale     = flag.Float64("scale", 0.25, "workload scale factor")
		full      = flag.Bool("full", false, "use the full Table I configuration")
		memCap    = flag.Int("mem-cap", 0, "F3FS MEM CAP override")
		pimCap    = flag.Int("pim-cap", 0, "F3FS PIM CAP override")
		faultsStr = flag.String("faults", "", "fault schedule, e.g. seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000")
		engineStr = flag.String("engine", "event", "simulation core: event (skip-ahead) or tick (reference per-cycle loop)")
		runTO     = flag.Duration("run-timeout", 0, "per-simulation wall-clock budget (0 = unbounded)")
		telOut    = flag.String("telemetry-out", "", "write the run's telemetry capture (JSONL) to this file")
		pprofD    = flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	)
	flag.Parse()

	if *pprofD != "" {
		stop, err := profiling.Start(*pprofD)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimrun:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "pimrun:", err)
			}
		}()
	}
	if *telOut != "" {
		pimsim.EnableTelemetry(true)
	}

	cfg := pimsim.ScaledConfig()
	if *full {
		cfg = pimsim.PaperConfig()
	}
	if *memCap > 0 {
		cfg.Sched.F3FSMemCap = *memCap
	}
	if *pimCap > 0 {
		cfg.Sched.F3FSPIMCap = *pimCap
	}
	if *faultsStr != "" {
		fs, err := pimsim.ParseFaultSchedule(*faultsStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimrun:", err)
			os.Exit(1)
		}
		cfg.Faults = fs
	}
	eng, err := pimsim.ParseEngine(*engineStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimrun:", err)
		os.Exit(1)
	}
	cfg.Engine = eng
	mode := pimsim.VC1
	if *vc == 2 {
		mode = pimsim.VC2
	}

	r := pimsim.NewRunner(cfg, *scale)
	r.RunTimeout = *runTO
	pair, err := r.Competitive(*gpuID, *pimID, *policy, mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimrun:", err)
		os.Exit(1)
	}
	fmt.Printf("combination     : %s x %s\n", pair.GPUID, pair.PIMID)
	fmt.Printf("policy / vc     : %s / %s\n", pair.Policy, pair.Mode)
	fmt.Printf("GPU speedup     : %.3f\n", pair.GPUSpeedup)
	fmt.Printf("PIM speedup     : %.3f\n", pair.PIMSpeedup)
	fmt.Printf("fairness index  : %.3f\n", pair.Fairness)
	fmt.Printf("sys throughput  : %.3f\n", pair.Throughput)
	fmt.Printf("MEM arrival norm: %.3f\n", pair.MemArrivalNorm)
	fmt.Printf("mode switches   : %d\n", pair.Switches)
	fmt.Printf("avg queue occ   : MEM %.1f / PIM %.1f\n", pair.AvgMemQ, pair.AvgPIMQ)
	fmt.Printf("conflicts/switch: %.2f\n", pair.ConflictsPerSwitch)
	fmt.Printf("drain/switch    : %.1f DRAM cycles\n", pair.DrainPerSwitch)
	if pair.Aborted {
		fmt.Println("NOTE: run aborted (starvation); partial progress extrapolated")
	}
	if fc := pair.Faults; fc != nil {
		fmt.Printf("faults injected : %d DRAM retries (%d cycles), %d NoC stalls (%d cycles), %d throttled cycles\n",
			fc.DRAMRetries, fc.DRAMRetryCycles, fc.NoCLinkStalls, fc.NoCLinkStallCycles, fc.ThrottledCycles)
	}
	if pair.Manifest != nil {
		fmt.Printf("manifest        : %s\n", pair.Manifest.Summary())
	}
	if *telOut != "" {
		if err := writeTelemetry(*telOut, pair); err != nil {
			fmt.Fprintln(os.Stderr, "pimrun:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry       : %s\n", *telOut)
	}
}

func writeTelemetry(path string, pair pimsim.Pair) error {
	if pair.Telemetry == nil {
		return fmt.Errorf("no telemetry collected")
	}
	return pimsim.WriteTelemetryFile(path, pair.Manifest, pair.Telemetry.Registry, pair.Telemetry.Sampler.Snapshots())
}
