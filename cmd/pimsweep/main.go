// Command pimsweep regenerates the paper's competitive-scenario figures:
//
//	-fig 4    memory access characterization (Fig. 4)
//	-fig 5    co-runner impact on the Rodinia suite (Fig. 5)
//	-fig 6    normalized MEM arrival rates per policy (Fig. 6)
//	-fig 8    fairness index and system throughput (Fig. 8)
//	-fig 10   mode switches and switch overheads (Fig. 10)
//	-fig 13   compute- vs memory-intensive extremes (Fig. 13)
//	-fig 14a  F3FS component ablation (Fig. 14a)
//	-fig 14b  interconnect queue size sensitivity (Fig. 14b)
//	-fig cap  F3FS CAP sensitivity (Sec. VII-B)
//	-fig bliss BLISS blacklist threshold sweep (Sec. VI-A)
//	-fig priority  process priorities as asymmetric CAPs (Sec. VII future work)
//
// By default a reduced kernel subset runs in seconds; -all sweeps the
// full 20 x 9 combination space and -full additionally uses the Table I
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	pimsim "repro"
	"repro/internal/profiling"
)

func main() {
	var (
		fig       = flag.String("fig", "8", "figure to regenerate (4,5,6,8,10,13,14a,14b,cap,bliss)")
		all       = flag.Bool("all", false, "sweep all 20 GPU x 9 PIM kernels")
		full      = flag.Bool("full", false, "use the full Table I configuration")
		scale     = flag.Float64("scale", 0.25, "workload scale factor")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
		policies  = flag.String("policies", "", "comma-separated policy subset (default: all nine)")
		faultsStr = flag.String("faults", "", "fault schedule, e.g. seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000")
		engineStr = flag.String("engine", "event", "simulation core: event (skip-ahead) or tick (reference per-cycle loop)")
		runTO     = flag.Duration("run-timeout", 0, "per-simulation wall-clock budget (0 = unbounded)")
		journalF  = flag.String("journal", "", "checkpoint competitive pairs in this journal file")
		resume    = flag.Bool("resume", true, "resume from the journal; -resume=false starts fresh")
		telOut    = flag.String("telemetry-out", "", "write per-pair telemetry captures (JSONL) into this directory")
		pprofD    = flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	)
	flag.Parse()

	if *pprofD != "" {
		stop, err := profiling.Start(*pprofD)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimsweep:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "pimsweep:", err)
			}
		}()
	}
	if *telOut != "" {
		pimsim.EnableTelemetry(true)
	}

	cfg := pimsim.ScaledConfig()
	if *full {
		cfg = pimsim.PaperConfig()
	} else {
		// Trickle-starved combinations otherwise run to the full cycle
		// budget; 2.5M cycles is plenty for a stable extrapolation at
		// quick-sweep scales.
		cfg.MaxGPUCycles = 2_500_000
	}
	if *faultsStr != "" {
		fs, err := pimsim.ParseFaultSchedule(*faultsStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimsweep:", err)
			os.Exit(1)
		}
		cfg.Faults = fs
		fmt.Printf("fault schedule: %s\n", fs)
	}
	eng, err := pimsim.ParseEngine(*engineStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimsweep:", err)
		os.Exit(1)
	}
	cfg.Engine = eng
	r := pimsim.NewRunner(cfg, *scale)
	r.Parallel = *parallel
	r.TelemetryDir = *telOut
	r.RunTimeout = *runTO
	if *journalF != "" {
		if !*resume {
			if err := os.Remove(*journalF); err != nil && !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, "pimsweep:", err)
				os.Exit(1)
			}
		}
		j, err := pimsim.OpenJournal(*journalF, cfg, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimsweep:", err)
			os.Exit(1)
		}
		r.Journal = j
	}

	gpus, pims := pimsim.DefaultGPUKernels(), pimsim.DefaultPIMKernels()
	if *all {
		gpus, pims = pimsim.AllGPUKernels(), pimsim.AllPIMKernels()
	}
	pols := pimsim.Policies()
	if *policies != "" {
		pols = strings.Split(*policies, ",")
	}
	modes := []pimsim.VCMode{pimsim.VC1, pimsim.VC2}

	start := time.Now()
	switch *fig {
	case "4":
		var c *pimsim.Characterization
		c, err = r.Characterize(gpus, pims)
		if err == nil {
			fmt.Println("Fig. 4: memory access characteristics (standalone, FR-FCFS)")
			fmt.Print(c.Table())
		}
	case "5":
		coRunners := []string{"G4", "G6", "G15", "G17", "P1"}
		var c *pimsim.CoRunImpact
		c, err = r.CoRun(gpus, coRunners)
		if err == nil {
			fmt.Println("Fig. 5: suite speedup on the co-execution SM share vs co-runner")
			fmt.Print(c.Table())
		}
	case "6", "8", "10", "13":
		if *fig == "13" && !*all {
			gpus = []string{"G10", "G6", "G11", "G17", "G19"}
		}
		var sweep *pimsim.Sweep
		sweep, err = r.RunSweep(gpus, pims, pols, modes)
		if err != nil {
			break
		}
		switch *fig {
		case "6":
			fmt.Println("Fig. 6: MEM arrival rate at the MC, normalized to standalone")
			fmt.Print(sweep.ArrivalRates().Table(modes))
		case "8":
			fmt.Println("Fig. 8: fairness index and system throughput (avg and worst case)")
			fmt.Print(sweep.FairnessThroughput().Table(modes))
		case "10":
			var so *pimsim.SwitchOverheads
			so, err = sweep.SwitchOverheads()
			if err == nil {
				fmt.Println("Fig. 10: switches vs FCFS (geo-mean), conflicts/switch, drain/switch")
				fmt.Print(so.Table(modes))
			}
		case "13":
			is := sweep.IntensitySlice()
			fmt.Println("Fig. 13 (VC1): intensity extremes")
			fmt.Print(is.Table(pimsim.VC1))
			fmt.Println("Fig. 13 (VC2): intensity extremes")
			fmt.Print(is.Table(pimsim.VC2))
		}
	case "14a":
		var stages []pimsim.AblationStage
		stages, err = r.Ablation(gpus, "P2")
		if err == nil {
			fmt.Println("Fig. 14a: F3FS component ablation (VC2, P2 + LLM)")
			fmt.Print(pimsim.AblationTable(stages))
		}
	case "14b":
		var pts []pimsim.QueuePoint
		pts, err = r.QueueSensitivity(gpus, pims, []int{256, 512, 1024})
		if err == nil {
			fmt.Println("Fig. 14b: F3FS sensitivity to interconnect queue size (VC2)")
			fmt.Print(pimsim.QueueTable(pts))
		}
	case "cap":
		var pts []pimsim.CapPoint
		pts, err = r.CapSensitivity(gpus, pims, []int{32, 64, 128, 256, 512}, pimsim.VC2)
		if err == nil {
			fmt.Println("F3FS CAP sensitivity (VC2, symmetric caps)")
			fmt.Print(pimsim.CapTable(pts))
		}
	case "bliss":
		var pts []pimsim.BlissPoint
		pts, err = r.BlissSweep(gpus, pims, []int{2, 4, 8, 16}, pimsim.VC1)
		if err == nil {
			fmt.Println("BLISS blacklist threshold sweep (VC1)")
			fmt.Print(pimsim.BlissTable(pts))
		}
	case "priority":
		var pts []pimsim.PriorityPoint
		pts, err = r.PrioritySweep(gpus, pims,
			[][2]int{{1, 4}, {1, 2}, {1, 1}, {2, 1}, {4, 1}}, 512, pimsim.VC2)
		if err == nil {
			fmt.Println("Process priorities as asymmetric F3FS CAPs (Sec. VII future work, VC2)")
			fmt.Print(pimsim.PriorityTable(pts))
		}
	case "energy":
		var pts []pimsim.EnergyPoint
		pts, err = r.EnergySweep(gpus[0], pims[0], pols, pimsim.VC2, pimsim.DefaultHBMEnergy())
		if err == nil {
			fmt.Printf("Energy per policy on %s x %s (extension; VC2, HBM-class coefficients)\n", gpus[0], pims[0])
			fmt.Print(pimsim.EnergyTable(pts))
		}
	case "dual":
		var pts []pimsim.DualBufferPoint
		pts, err = r.DualBufferAblation(gpus[0], pims[0],
			[]string{"fcfs", "fr-fcfs", "fr-rr-fcfs", "f3fs"}, pimsim.VC2)
		if err == nil {
			fmt.Printf("NeuPIMs-style dual row buffer vs shared buffer on %s x %s (extension; VC2)\n", gpus[0], pims[0])
			fmt.Print(pimsim.DualBufferTable(pts))
		}
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimsweep:", err)
		os.Exit(1)
	}
	fmt.Printf("(%d GPU x %d PIM kernels, scale %.2f, %s)\n", len(gpus), len(pims), *scale, time.Since(start).Round(time.Millisecond))
}
