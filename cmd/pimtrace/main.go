// Command pimtrace runs a short co-execution and dumps the memory
// controller event trace of one channel — enqueues, bank commands,
// lockstep PIM commands, mode-switch drains and refreshes — the
// cycle-level view Figs. 9 and 12 reason about.
//
// Usage:
//
//	pimtrace -gpu G8 -pim P1 -policy f3fs -vc 2 -channel 0 -events 200
package main

import (
	"flag"
	"fmt"
	"os"

	pimsim "repro"
)

func main() {
	var (
		gpuID   = flag.String("gpu", "G8", "GPU kernel")
		pimID   = flag.String("pim", "P1", "PIM kernel")
		policy  = flag.String("policy", "f3fs", "scheduling policy")
		vc      = flag.Int("vc", 2, "interconnect config: 1 or 2")
		channel = flag.Int("channel", 0, "channel to trace")
		events  = flag.Int("events", 200, "events to retain (most recent)")
		scale   = flag.Float64("scale", 0.05, "workload scale factor")
	)
	flag.Parse()

	cfg := pimsim.ScaledConfig()
	if *vc == 2 {
		cfg.NoC.Mode = pimsim.VC2
	}
	if *channel < 0 || *channel >= cfg.Memory.Channels {
		fmt.Fprintf(os.Stderr, "pimtrace: channel %d out of range [0,%d)\n", *channel, cfg.Memory.Channels)
		os.Exit(1)
	}
	gProf, err := pimsim.GPUProfileByID(*gpuID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimtrace:", err)
		os.Exit(1)
	}
	pProf, err := pimsim.PIMProfileByID(*pimID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimtrace:", err)
		os.Exit(1)
	}
	gpuSMs, pimSMs := pimsim.GPUAndPIMSMs(cfg)
	sys, err := pimsim.NewSystem(cfg, *policy, []pimsim.KernelDesc{
		{GPU: &gProf, SMs: gpuSMs, Scale: *scale},
		{PIM: &pProf, SMs: pimSMs, Scale: *scale, Base: 1 << 30},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimtrace:", err)
		os.Exit(1)
	}
	tr := sys.EnableTrace(*channel, *events)
	res, err := sys.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimtrace:", err)
		os.Exit(1)
	}
	fmt.Printf("# %s x %s, %s, %s, channel %d — last %d events of %d GPU cycles\n",
		*gpuID, *pimID, *policy, cfg.NoC.Mode, *channel, tr.Len(), res.GPUCycles)
	fmt.Print(tr.Dump())
	fmt.Println("# event totals:")
	for kind, n := range tr.CountByKind() {
		fmt.Printf("#   %-13s %d\n", kind, n)
	}
}
