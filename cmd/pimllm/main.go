// Command pimllm regenerates Fig. 11: the speedup of a GPT-3-6.7B-like
// decoder layer overlapping QKV generation (GPU) with multi-head
// attention (PIM), relative to sequential execution, under every
// scheduling policy and both interconnect configurations. F3FS uses the
// paper's tuned CAPs (256/128 under VC1, 64/64 under VC2).
//
// Usage:
//
//	pimllm [-scale 0.25] [-full] [-policies f3fs,fr-fcfs]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	pimsim "repro"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.25, "workload scale factor")
		full      = flag.Bool("full", false, "use the full Table I configuration")
		policies  = flag.String("policies", "", "comma-separated policy subset (default: all nine)")
		faultsStr = flag.String("faults", "", "fault schedule, e.g. seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000")
		runTO     = flag.Duration("run-timeout", 0, "per-simulation wall-clock budget (0 = unbounded)")
	)
	flag.Parse()

	cfg := pimsim.ScaledConfig()
	if *full {
		cfg = pimsim.PaperConfig()
	} else {
		cfg.MaxGPUCycles = 2_500_000
	}
	if *faultsStr != "" {
		fs, err := pimsim.ParseFaultSchedule(*faultsStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimllm:", err)
			os.Exit(1)
		}
		cfg.Faults = fs
		fmt.Printf("fault schedule: %s\n", fs)
	}
	r := pimsim.NewRunner(cfg, *scale)
	r.RunTimeout = *runTO

	pols := pimsim.Policies()
	if *policies != "" {
		pols = strings.Split(*policies, ",")
	}
	results, err := r.CollaborativeSweep(pols, []pimsim.VCMode{pimsim.VC1, pimsim.VC2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimllm:", err)
		os.Exit(1)
	}
	fmt.Println("Fig. 11: LLM speedup vs sequential QKV + MHA execution")
	fmt.Print(pimsim.CollabTable(results))
}
