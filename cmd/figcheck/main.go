// Command figcheck compares a regenerated figure table against a golden
// file with per-value tolerances, for the CI golden-figure smoke job.
//
// Usage:
//
//	figcheck -golden testdata/golden/fig8_all180.txt -got /tmp/fig8.txt [-rtol 0.02] [-atol 0.005]
//
// Both files are parsed as label-plus-numeric-columns tables: a data row
// is any line whose first field is a label and whose remaining fields
// all parse as floats. Header lines, captions ("Fig. ..."), and footers
// ("(20 GPU x ...)") are ignored. Rows are matched by label; every
// golden row must be present with the same column count, and each value
// must satisfy |got-want| <= atol + rtol*|want|. The simulator is
// deterministic, so the default tolerances flag any unintended model
// drift while leaving room for cosmetic rounding changes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

type row struct {
	label string
	vals  []float64
}

func main() {
	var (
		golden = flag.String("golden", "", "golden table file")
		got    = flag.String("got", "", "regenerated table file")
		rtol   = flag.Float64("rtol", 0.02, "relative tolerance")
		atol   = flag.Float64("atol", 0.005, "absolute tolerance")
	)
	flag.Parse()
	if *golden == "" || *got == "" {
		fmt.Fprintln(os.Stderr, "figcheck: -golden and -got are required")
		os.Exit(2)
	}

	want, err := parseTable(*golden)
	if err != nil {
		fatal(err)
	}
	have, err := parseTable(*got)
	if err != nil {
		fatal(err)
	}
	if len(want) == 0 {
		fatal(fmt.Errorf("%s: no data rows found", *golden))
	}

	haveByLabel := make(map[string]row, len(have))
	for _, r := range have {
		haveByLabel[r.label] = r
	}

	failures := 0
	for _, w := range want {
		h, ok := haveByLabel[w.label]
		if !ok {
			fmt.Fprintf(os.Stderr, "figcheck: row %q missing from %s\n", w.label, *got)
			failures++
			continue
		}
		if len(h.vals) != len(w.vals) {
			fmt.Fprintf(os.Stderr, "figcheck: row %q has %d columns, want %d\n", w.label, len(h.vals), len(w.vals))
			failures++
			continue
		}
		for i := range w.vals {
			diff := math.Abs(h.vals[i] - w.vals[i])
			if diff > *atol+*rtol*math.Abs(w.vals[i]) {
				fmt.Fprintf(os.Stderr, "figcheck: row %q col %d: got %g, want %g (diff %g > tol)\n",
					w.label, i, h.vals[i], w.vals[i], diff)
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "figcheck: %d mismatches\n", failures)
		os.Exit(1)
	}
	fmt.Printf("figcheck: %d rows match within rtol=%g atol=%g\n", len(want), *rtol, *atol)
}

// parseTable extracts the data rows of a figure table: label followed by
// all-numeric columns.
func parseTable(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []row
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		vals := make([]float64, 0, len(fields)-1)
		numeric := true
		for _, fld := range fields[1:] {
			v, err := strconv.ParseFloat(fld, 64)
			if err != nil {
				numeric = false
				break
			}
			vals = append(vals, v)
		}
		if !numeric {
			continue
		}
		rows = append(rows, row{label: fields[0], vals: vals})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figcheck:", err)
	os.Exit(1)
}
