// Command pimload fires a reproducible mixed load (hot duplicates, cold
// unique configs, interactive and bulk priorities) at a running pimserve
// instance and reports throughput, cache effectiveness and result
// consistency. CI's serve-smoke gate runs the same checks in-process;
// this binary exists for poking at a live daemon.
//
// Usage:
//
//	pimload -url http://127.0.0.1:8731 -n 600 -c 24 -dup 0.95
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/serve/loadgen"
)

func main() {
	short := loadgen.Short()
	var (
		baseURL = flag.String("url", "http://127.0.0.1:8731", "pimserve base URL")
		n       = flag.Int("n", short.Requests, "total requests")
		c       = flag.Int("c", short.Concurrency, "client concurrency")
		dup     = flag.Float64("dup", short.DupFraction, "duplicate (hot-set) fraction")
		hot     = flag.Int("hot", short.HotSet, "distinct hot configurations")
		bulk    = flag.Float64("bulk", short.BulkFraction, "bulk-priority fraction")
		scale   = flag.Float64("scale", short.Scale, "workload scale per request")
		cycles  = flag.Uint64("max-gpu-cycles", short.MaxGPUCycles, "per-request cycle bound (0 = server default)")
		seed    = flag.Int64("seed", short.Seed, "schedule seed")
		retries = flag.Int("retries", short.MaxRetries, "per-request retries on 429/503 (honors Retry-After, exponential backoff)")
		minHit  = flag.Float64("min-hit-rate", -1, "fail below this cache hit rate (<0 = no check)")
	)
	flag.Parse()

	p := loadgen.Profile{
		Requests:     *n,
		Concurrency:  *c,
		DupFraction:  *dup,
		HotSet:       *hot,
		BulkFraction: *bulk,
		Scale:        *scale,
		MaxGPUCycles: *cycles,
		TimeoutMS:    short.TimeoutMS,
		Seed:         *seed,
		MaxRetries:   *retries,
	}
	rep, err := loadgen.Run(context.Background(), nil, *baseURL, p)
	if err != nil {
		log.Fatalf("pimload: %v", err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)

	switch {
	case rep.Failed > 0:
		log.Fatalf("pimload: %d requests failed", rep.Failed)
	case rep.Mismatches > 0:
		log.Fatalf("pimload: %d digests returned non-identical results", rep.Mismatches)
	case *minHit >= 0 && rep.HitRate < *minHit:
		log.Fatalf("pimload: cache hit rate %.3f below required %.3f", rep.HitRate, *minHit)
	}
	fmt.Fprintf(os.Stderr, "pimload: ok — %d requests, %.1f rps, hit rate %.3f\n",
		rep.Succeeded, rep.RPS, rep.HitRate)
}
