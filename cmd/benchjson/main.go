// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark results can be archived, diffed,
// and charted without re-parsing the text format downstream.
//
// Usage:
//
//	go test -bench . -benchmem . | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench_output.txt
//
// Standard units (ns/op, B/op, allocs/op) map to named fields; every
// other unit — including the simulator's custom b.ReportMetric series
// like pim-blp-med — lands in the per-benchmark "metrics" object keyed
// by unit. Header lines (goos, goarch, pkg, cpu) are preserved under
// "env". Output is deterministic: benchmarks keep input order and JSON
// object keys are sorted by encoding/json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// envKeys are the `go test` header lines worth preserving.
var envKeys = map[string]bool{"goos": true, "goarch": true, "pkg": true, "cpu": true}

// Parse reads `go test -bench` output and returns the structured
// report. Lines that are neither headers nor benchmark results (PASS,
// ok, FAIL, test logs) are skipped.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if key, val, ok := strings.Cut(line, ": "); ok && envKeys[key] {
			if rep.Env == nil {
				rep.Env = make(map[string]string)
			}
			rep.Env[key] = strings.TrimSpace(val)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." test-name log line, not a result
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", b.Name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = ptr(v)
			case "allocs/op":
				b.AllocsPerOp = ptr(v)
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func ptr(v float64) *float64 { return &v }

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	rep, err := Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
