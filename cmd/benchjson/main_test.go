package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig4_Characterization 	       2	 477880894 ns/op	        16.00 pim-blp-med	      1586 pim-mcrate-med	53428432 B/op	  759580 allocs/op
BenchmarkTickZero-8            	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	5.799s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env["goos"] != "linux" || rep.Env["pkg"] != "repro" {
		t.Errorf("env = %v", rep.Env)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	fig4 := rep.Benchmarks[0]
	if fig4.Name != "BenchmarkFig4_Characterization" || fig4.Iterations != 2 {
		t.Errorf("fig4 header = %+v", fig4)
	}
	if fig4.NsPerOp != 477880894 || *fig4.BytesPerOp != 53428432 || *fig4.AllocsPerOp != 759580 {
		t.Errorf("fig4 standard units = %+v", fig4)
	}
	if fig4.Metrics["pim-blp-med"] != 16 || fig4.Metrics["pim-mcrate-med"] != 1586 {
		t.Errorf("fig4 metrics = %v", fig4.Metrics)
	}
	zero := rep.Benchmarks[1]
	if *zero.AllocsPerOp != 0 || *zero.BytesPerOp != 0 {
		t.Errorf("explicit zeros must be preserved, got %+v", zero)
	}
	if zero.Metrics != nil {
		t.Errorf("no custom metrics expected, got %v", zero.Metrics)
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX 10 abc ns/op\n"))
	if err == nil {
		t.Fatal("malformed value accepted")
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkX\n--- BENCH: BenchmarkX-8\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from log noise, want 0", len(rep.Benchmarks))
	}
}
