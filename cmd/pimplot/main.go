// Command pimplot runs the Fig. 8 competitive sweep and the Fig. 11
// collaborative sweep and writes machine-readable CSVs plus
// self-contained SVG bar charts — the reproduction's analogue of the
// paper artifact's plotting scripts.
//
// Usage:
//
//	pimplot -out results/ [-scale 0.25] [-all] [-parallel 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	pimsim "repro"
)

func main() {
	var (
		out      = flag.String("out", "results", "output directory")
		scale    = flag.Float64("scale", 0.25, "workload scale factor")
		all      = flag.Bool("all", false, "sweep all 20 GPU x 9 PIM kernels")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	cfg := pimsim.ScaledConfig()
	r := pimsim.NewRunner(cfg, *scale)
	r.Parallel = *parallel

	gpus, pims := pimsim.DefaultGPUKernels(), pimsim.DefaultPIMKernels()
	if *all {
		gpus, pims = pimsim.AllGPUKernels(), pimsim.AllPIMKernels()
	}
	modes := []pimsim.VCMode{pimsim.VC1, pimsim.VC2}

	fmt.Println("running competitive sweep (Fig. 8 data)...")
	sweep, err := r.RunSweep(gpus, pims, pimsim.Policies(), modes)
	if err != nil {
		fatal(err)
	}
	write(*out, "competitive.csv", pimsim.SweepCSV(sweep))
	if data, err := pimsim.SweepJSON(sweep); err == nil {
		write(*out, "competitive.json", string(data))
	} else {
		fatal(err)
	}
	ft := sweep.FairnessThroughput()
	write(*out, "fig8.svg", pimsim.FairnessThroughputBars(ft, modes).SVG())

	fmt.Println("running collaborative sweep (Fig. 11 data)...")
	collab, err := r.CollaborativeSweep(pimsim.Policies(), modes)
	if err != nil {
		fatal(err)
	}
	write(*out, "collaborative.csv", pimsim.CollabCSV(collab))
	write(*out, "fig11.svg", pimsim.CollabBars(collab).SVG())

	fmt.Println("running characterization (Fig. 4 data)...")
	char, err := r.Characterize(gpus, pims)
	if err != nil {
		fatal(err)
	}
	write(*out, "characterization.csv", pimsim.CharacterizationCSV(char))

	fmt.Println("done:", *out)
}

func write(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("  wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimplot:", err)
	os.Exit(1)
}
