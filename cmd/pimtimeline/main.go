// Command pimtimeline samples a co-execution over time and prints the
// per-interval service rates and queue occupancies — the time-resolved
// view of the congestion story in Fig. 7: under VC1 the PIM queue floods
// while MEM service collapses; under VC2 both progress.
//
// Usage:
//
//	pimtimeline -gpu G8 -pim P1 -policy fr-fcfs -vc 1 -interval 2000
//
// Output is CSV: cycle, per-app service rate (requests per kcycle over
// the interval), cumulative switches, average MEM/PIM queue occupancy.
package main

import (
	"flag"
	"fmt"
	"os"

	pimsim "repro"
)

func main() {
	var (
		gpuID    = flag.String("gpu", "G8", "GPU kernel")
		pimID    = flag.String("pim", "P1", "PIM kernel")
		policy   = flag.String("policy", "fr-fcfs", "scheduling policy")
		vc       = flag.Int("vc", 1, "interconnect config: 1 or 2")
		interval = flag.Uint64("interval", 2000, "sampling interval in GPU cycles")
		scale    = flag.Float64("scale", 0.15, "workload scale factor")
	)
	flag.Parse()

	cfg := pimsim.ScaledConfig()
	if *vc == 2 {
		cfg.NoC.Mode = pimsim.VC2
	}
	gProf, err := pimsim.GPUProfileByID(*gpuID)
	if err != nil {
		fatal(err)
	}
	pProf, err := pimsim.PIMProfileByID(*pimID)
	if err != nil {
		fatal(err)
	}
	gpuSMs, pimSMs := pimsim.GPUAndPIMSMs(cfg)
	sys, err := pimsim.NewSystem(cfg, *policy, []pimsim.KernelDesc{
		{GPU: &gProf, SMs: gpuSMs, Scale: *scale},
		{PIM: &pProf, SMs: pimSMs, Scale: *scale, Base: 1 << 30},
	})
	if err != nil {
		fatal(err)
	}
	sys.EnableSampling(*interval)
	res, err := sys.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# %s x %s under %s / %s\n", *gpuID, *pimID, *policy, cfg.NoC.Mode)
	fmt.Println("cycle,mem_rate,pim_rate,switches,memq,pimq")
	var prev pimsim.SimSample
	for i, s := range res.Samples {
		dt := float64(s.GPUCycle)
		var dMem, dPIM int
		if i > 0 {
			dt = float64(s.GPUCycle - prev.GPUCycle)
			dMem = s.Completed[0] - prev.Completed[0]
			dPIM = s.Completed[1] - prev.Completed[1]
		} else {
			dMem, dPIM = s.Completed[0], s.Completed[1]
		}
		fmt.Printf("%d,%.2f,%.2f,%d,%.1f,%.1f\n",
			s.GPUCycle, 1000*float64(dMem)/dt, 1000*float64(dPIM)/dt, s.Switches, s.MemQ, s.PIMQ)
		prev = s
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimtimeline:", err)
	os.Exit(1)
}
