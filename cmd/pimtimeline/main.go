// Command pimtimeline renders a co-execution timeline — the
// time-resolved view of the congestion story in Fig. 7: under VC1 the
// PIM queue floods while MEM service collapses; under VC2 both progress.
//
// Two data sources:
//
//	pimtimeline -gpu G8 -pim P1 -policy fr-fcfs -vc 1 -interval 2000
//	pimtimeline -in capture.jsonl
//
// Without -in it runs the simulation itself, collecting telemetry; with
// -in it renders a JSONL capture previously written by pimrun
// -telemetry-out (or pimsweep/pimcampaign's per-pair captures). Output
// is CSV: cycle, per-app service rate (requests per kcycle over the
// interval), cumulative switches, average MEM/PIM queue occupancy.
package main

import (
	"flag"
	"fmt"
	"os"

	pimsim "repro"
)

func main() {
	var (
		in       = flag.String("in", "", "render a telemetry capture (JSONL) instead of simulating")
		gpuID    = flag.String("gpu", "G8", "GPU kernel")
		pimID    = flag.String("pim", "P1", "PIM kernel")
		policy   = flag.String("policy", "fr-fcfs", "scheduling policy")
		vc       = flag.Int("vc", 1, "interconnect config: 1 or 2")
		interval = flag.Uint64("interval", 2000, "sampling interval in GPU cycles")
		scale    = flag.Float64("scale", 0.15, "workload scale factor")
	)
	flag.Parse()

	if *in != "" {
		if err := renderFile(*in); err != nil {
			fatal(err)
		}
		return
	}

	cfg := pimsim.ScaledConfig()
	if *vc == 2 {
		cfg.NoC.Mode = pimsim.VC2
	}
	gProf, err := pimsim.GPUProfileByID(*gpuID)
	if err != nil {
		fatal(err)
	}
	pProf, err := pimsim.PIMProfileByID(*pimID)
	if err != nil {
		fatal(err)
	}
	gpuSMs, pimSMs := pimsim.GPUAndPIMSMs(cfg)
	sys, err := pimsim.NewSystem(cfg, *policy, []pimsim.KernelDesc{
		{GPU: &gProf, SMs: gpuSMs, Scale: *scale},
		{PIM: &pProf, SMs: pimSMs, Scale: *scale, Base: 1 << 30},
	})
	if err != nil {
		fatal(err)
	}
	sys.EnableTelemetry(*interval, 0)
	res, err := sys.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# %s x %s under %s / %s\n", *gpuID, *pimID, *policy, cfg.NoC.Mode)
	render(res.Manifest, res.Telemetry.Sampler.Snapshots())
}

// renderFile renders a JSONL capture written by pimrun -telemetry-out.
func renderFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, _, samples, err := pimsim.ReadTelemetryJSONL(f)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("%s: capture holds no samples", path)
	}
	render(m, samples)
	return nil
}

// render prints the timeline CSV: per-epoch service rates from adjacent
// samples' cumulative app completions, plus queue state.
func render(m *pimsim.TelemetryManifest, samples []pimsim.TelemetrySnapshot) {
	if m != nil {
		fmt.Printf("# %s\n", m.Summary())
	}
	fmt.Println("cycle,mem_rate,pim_rate,switches,memq,pimq")
	var prev pimsim.TelemetrySnapshot
	for i, s := range samples {
		dt := float64(s.GPUCycle)
		if i > 0 {
			dt = float64(s.GPUCycle - prev.GPUCycle)
		}
		var rates [2]float64
		for app := 0; app < len(s.Apps) && app < 2; app++ {
			done := s.Apps[app].Completed
			if i > 0 {
				done -= prev.Apps[app].Completed
			}
			if dt > 0 {
				rates[app] = 1000 * float64(done) / dt
			}
		}
		var switches uint64
		var memQ, pimQ float64
		for _, ch := range s.Channels {
			switches += ch.Switches
			memQ += float64(ch.MemQ)
			pimQ += float64(ch.PIMQ)
		}
		if n := float64(len(s.Channels)); n > 0 {
			memQ /= n
			pimQ /= n
		}
		fmt.Printf("%d,%.2f,%.2f,%d,%.1f,%.1f\n",
			s.GPUCycle, rates[0], rates[1], switches, memQ, pimQ)
		prev = s
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimtimeline:", err)
	os.Exit(1)
}
