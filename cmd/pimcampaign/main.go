// Command pimcampaign runs the paper's full evaluation campaign — every
// (GPU, PIM, policy, VC) combination — writing one JSON result file per
// combination. Progress is checkpointed in a journal (out/journal.jsonl),
// so an interrupted campaign resumes where it left off: Ctrl-C cancels
// cleanly mid-flight, and the next invocation re-runs only failed or
// missing combinations. This mirrors the paper's artifact, whose 3258
// GPGPU-Sim runs take two weeks and are managed the same way; here the
// scaled configuration finishes in minutes and the full Table I machine
// (-full) in hours.
//
// Usage:
//
//	pimcampaign -out campaign/ [-scale 0.2] [-full] [-parallel 8]
//	            [-policies f3fs,fr-rr-fcfs] [-gpus G1,G2] [-pims P1]
//	            [-faults seed=7,dram=0.002:12] [-run-timeout 10m]
//	            [-resume=false]
//
// A combination that panics or exceeds -run-timeout is quarantined: its
// structured error lands in <pair>.error.json, the rest of the campaign
// completes, and resuming retries it. Each result file is a
// report.PairRecord; `jq -s` over the directory reconstructs the full
// dataset.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	pimsim "repro"
	"repro/internal/profiling"
)

func main() {
	var (
		out       = flag.String("out", "campaign", "output directory (one JSON per combination)")
		scale     = flag.Float64("scale", 0.2, "workload scale factor")
		full      = flag.Bool("full", false, "use the full Table I configuration")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
		policies  = flag.String("policies", "", "comma-separated policy subset (default: all nine)")
		gpus      = flag.String("gpus", "", "comma-separated GPU kernel subset (default: all twenty)")
		pims      = flag.String("pims", "", "comma-separated PIM kernel subset (default: all nine)")
		faultsStr = flag.String("faults", "", "fault schedule, e.g. seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000")
		engineStr = flag.String("engine", "event", "simulation core: event (skip-ahead) or tick (reference per-cycle loop)")
		runTO     = flag.Duration("run-timeout", 0, "per-simulation wall-clock budget (0 = unbounded)")
		resume    = flag.Bool("resume", true, "resume from the journal; -resume=false starts fresh")
		haltAfter = flag.Int("halt-after", 0, "stop cleanly after N results (testing hook for resume)")
		telOut    = flag.String("telemetry-out", "", "write per-pair telemetry captures (JSONL) into this directory")
		pprofD    = flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	)
	flag.Parse()

	if *pprofD != "" {
		stop, err := profiling.Start(*pprofD)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "pimcampaign:", err)
			}
		}()
	}
	if *telOut != "" {
		pimsim.EnableTelemetry(true)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	cfg := pimsim.ScaledConfig()
	if *full {
		cfg = pimsim.PaperConfig()
	} else {
		cfg.MaxGPUCycles = 2_500_000
	}
	if *faultsStr != "" {
		fs, err := pimsim.ParseFaultSchedule(*faultsStr)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = fs
		fmt.Printf("campaign: fault schedule %s\n", fs)
	}
	eng, err := pimsim.ParseEngine(*engineStr)
	if err != nil {
		fatal(err)
	}
	cfg.Engine = eng

	journalPath := filepath.Join(*out, "journal.jsonl")
	if !*resume {
		if err := os.Remove(journalPath); err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
	}
	journal, err := pimsim.OpenJournal(journalPath, cfg, *scale)
	if err != nil {
		fatal(err)
	}

	r := pimsim.NewRunner(cfg, *scale)
	r.Parallel = 1 // parallelism handled here, per combination
	r.TelemetryDir = *telOut
	r.RunTimeout = *runTO
	r.Journal = journal

	gpuIDs := pimsim.AllGPUKernels()
	if *gpus != "" {
		gpuIDs = strings.Split(*gpus, ",")
	}
	pimIDs := pimsim.AllPIMKernels()
	if *pims != "" {
		pimIDs = strings.Split(*pims, ",")
	}
	pols := pimsim.Policies()
	if *policies != "" {
		pols = strings.Split(*policies, ",")
	}
	modes := []pimsim.VCMode{pimsim.VC1, pimsim.VC2}

	// Ctrl-C / SIGTERM cancels in-flight simulations; the journal keeps
	// everything finished so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	type job struct {
		gpu, pim, policy string
		mode             pimsim.VCMode
	}
	var jobs []job
	skipped := 0
	for _, mode := range modes {
		for _, policy := range pols {
			for _, g := range gpuIDs {
				for _, p := range pimIDs {
					if pair, ok := r.Journal.LookupDone(pimsim.PairKey(g, p, policy, mode)); ok {
						skipped++
						// Backfill a result file deleted out from under
						// the journal.
						path := resultPath(*out, g, p, policy, mode)
						if _, err := os.Stat(path); os.IsNotExist(err) {
							if err := writeResult(path, pair); err != nil {
								fatal(err)
							}
						}
						continue
					}
					jobs = append(jobs, job{g, p, policy, mode})
				}
			}
		}
	}
	fmt.Printf("campaign: %d combinations to run, %d already done\n", len(jobs), skipped)

	// Pre-warm the standalone baselines serially (shared cache).
	for _, g := range gpuIDs {
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		if _, err := r.StandaloneGPU(g); err != nil {
			fatal(err)
		}
	}
	for _, p := range pimIDs {
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		if _, err := r.StandalonePIM(p); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	haltCtx, halt := context.WithCancel(ctx)
	defer halt()
	var mu sync.Mutex
	var done, failed int
	halted := false
	sem := make(chan struct{}, max(1, *parallel))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			select {
			case <-haltCtx.Done():
				return
			case sem <- struct{}{}:
			}
			defer func() { <-sem }()
			pair, err := r.CompetitiveCtx(haltCtx, j.gpu, j.pim, j.policy, j.mode)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				var re *pimsim.RunError
				if errors.As(err, &re) && re.Kind != "canceled" {
					// Quarantined: journaled as failed, error bundle on
					// disk, campaign goes on.
					failed++
					fmt.Fprintf(os.Stderr, "  FAIL %s x %s %s/%s: %v\n", j.gpu, j.pim, j.policy, j.mode, err)
					if werr := writeErrorFile(*out, j.gpu, j.pim, j.policy, j.mode, re); werr != nil {
						fmt.Fprintln(os.Stderr, "  error file:", werr)
					}
					return
				}
				if errors.Is(err, context.Canceled) || (re != nil && re.Kind == "canceled") {
					return // shutdown in progress; resume re-runs it
				}
				failed++
				fmt.Fprintf(os.Stderr, "  FAIL %s x %s %s/%s: %v\n", j.gpu, j.pim, j.policy, j.mode, err)
				return
			}
			if err := writeResult(resultPath(*out, j.gpu, j.pim, j.policy, j.mode), pair); err != nil {
				failed++
				fmt.Fprintln(os.Stderr, "  write:", err)
				return
			}
			done++
			if done%50 == 0 {
				fmt.Printf("  %d/%d (%s)\n", done, len(jobs), time.Since(start).Round(time.Second))
			}
			if *haltAfter > 0 && done >= *haltAfter && !halted {
				halted = true
				fmt.Printf("campaign: halting after %d results (requested)\n", done)
				halt()
			}
		}(j)
	}
	wg.Wait()
	fmt.Printf("campaign complete: %d written, %d failed, %s\n", done, failed, time.Since(start).Round(time.Second))
	if halted {
		return // clean test-hook stop; journal holds progress
	}
	if err := ctx.Err(); err != nil {
		fmt.Println("campaign interrupted; rerun to resume from the journal")
		os.Exit(130)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func resultPath(dir, gpu, pim, policy string, mode pimsim.VCMode) string {
	return filepath.Join(dir, fmt.Sprintf("%s_%s_%s_%s.json", gpu, pim, policy, mode))
}

func writeResult(path string, pair pimsim.Pair) error {
	rec := pimsim.PairRecord{
		VC: pair.Mode.String(), Policy: pair.Policy, GPU: pair.GPUID, PIM: pair.PIMID,
		GPUSpeedup: pair.GPUSpeedup, PIMSpeedup: pair.PIMSpeedup,
		Fairness: pair.Fairness, Throughput: pair.Throughput,
		MemArrivalNorm: pair.MemArrivalNorm, Switches: pair.Switches,
		ConflictsPerSwitch: pair.ConflictsPerSwitch,
		DrainPerSwitch:     pair.DrainPerSwitch, Aborted: pair.Aborted,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return pimsim.WriteFileAtomic(path, data, 0o644)
}

func writeErrorFile(dir, gpu, pim, policy string, mode pimsim.VCMode, re *pimsim.RunError) error {
	data, err := json.MarshalIndent(re, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%s_%s_%s.error.json", gpu, pim, policy, mode)
	return pimsim.WriteFileAtomic(filepath.Join(dir, name), data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimcampaign:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
