// Command pimcampaign runs the paper's full evaluation campaign — every
// (GPU, PIM, policy, VC) combination — writing one JSON result file per
// combination and skipping combinations whose file already exists, so an
// interrupted campaign resumes where it left off. This mirrors the
// paper's artifact, whose 3258 GPGPU-Sim runs take two weeks and are
// managed the same way; here the scaled configuration finishes in
// minutes and the full Table I machine (-full) in hours.
//
// Usage:
//
//	pimcampaign -out campaign/ [-scale 0.2] [-full] [-parallel 8]
//	            [-policies f3fs,fr-rr-fcfs] [-gpus G1,G2] [-pims P1]
//
// Each result file is a report.PairRecord; `jq -s` over the directory
// reconstructs the full dataset.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	pimsim "repro"
	"repro/internal/profiling"
)

func main() {
	var (
		out      = flag.String("out", "campaign", "output directory (one JSON per combination)")
		scale    = flag.Float64("scale", 0.2, "workload scale factor")
		full     = flag.Bool("full", false, "use the full Table I configuration")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
		policies = flag.String("policies", "", "comma-separated policy subset (default: all nine)")
		gpus     = flag.String("gpus", "", "comma-separated GPU kernel subset (default: all twenty)")
		pims     = flag.String("pims", "", "comma-separated PIM kernel subset (default: all nine)")
		telOut   = flag.String("telemetry-out", "", "write per-pair telemetry captures (JSONL) into this directory")
		pprofD   = flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	)
	flag.Parse()

	if *pprofD != "" {
		stop, err := profiling.Start(*pprofD)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "pimcampaign:", err)
			}
		}()
	}
	if *telOut != "" {
		pimsim.EnableTelemetry(true)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	cfg := pimsim.ScaledConfig()
	if *full {
		cfg = pimsim.PaperConfig()
	} else {
		cfg.MaxGPUCycles = 2_500_000
	}
	r := pimsim.NewRunner(cfg, *scale)
	r.Parallel = 1 // parallelism handled here, per combination
	r.TelemetryDir = *telOut

	gpuIDs := pimsim.AllGPUKernels()
	if *gpus != "" {
		gpuIDs = strings.Split(*gpus, ",")
	}
	pimIDs := pimsim.AllPIMKernels()
	if *pims != "" {
		pimIDs = strings.Split(*pims, ",")
	}
	pols := pimsim.Policies()
	if *policies != "" {
		pols = strings.Split(*policies, ",")
	}
	modes := []pimsim.VCMode{pimsim.VC1, pimsim.VC2}

	type job struct {
		gpu, pim, policy string
		mode             pimsim.VCMode
	}
	var jobs []job
	skipped := 0
	for _, mode := range modes {
		for _, policy := range pols {
			for _, g := range gpuIDs {
				for _, p := range pimIDs {
					if _, err := os.Stat(resultPath(*out, g, p, policy, mode)); err == nil {
						skipped++
						continue // already done: resume support
					}
					jobs = append(jobs, job{g, p, policy, mode})
				}
			}
		}
	}
	fmt.Printf("campaign: %d combinations to run, %d already done\n", len(jobs), skipped)

	// Pre-warm the standalone baselines serially (shared cache).
	for _, g := range gpuIDs {
		if _, err := r.StandaloneGPU(g); err != nil {
			fatal(err)
		}
	}
	for _, p := range pimIDs {
		if _, err := r.StandalonePIM(p); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	var mu sync.Mutex
	var done, failed int
	sem := make(chan struct{}, max(1, *parallel))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pair, err := r.Competitive(j.gpu, j.pim, j.policy, j.mode)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "  FAIL %s x %s %s/%s: %v\n", j.gpu, j.pim, j.policy, j.mode, err)
				return
			}
			rec := pimsim.PairRecord{
				VC: j.mode.String(), Policy: j.policy, GPU: j.gpu, PIM: j.pim,
				GPUSpeedup: pair.GPUSpeedup, PIMSpeedup: pair.PIMSpeedup,
				Fairness: pair.Fairness, Throughput: pair.Throughput,
				MemArrivalNorm: pair.MemArrivalNorm, Switches: pair.Switches,
				ConflictsPerSwitch: pair.ConflictsPerSwitch,
				DrainPerSwitch:     pair.DrainPerSwitch, Aborted: pair.Aborted,
			}
			data, err := json.MarshalIndent(rec, "", "  ")
			if err != nil {
				failed++
				return
			}
			if err := os.WriteFile(resultPath(*out, j.gpu, j.pim, j.policy, j.mode), data, 0o644); err != nil {
				failed++
				fmt.Fprintln(os.Stderr, "  write:", err)
				return
			}
			done++
			if done%50 == 0 {
				fmt.Printf("  %d/%d (%s)\n", done, len(jobs), time.Since(start).Round(time.Second))
			}
		}(j)
	}
	wg.Wait()
	fmt.Printf("campaign complete: %d written, %d failed, %s\n", done, failed, time.Since(start).Round(time.Second))
	if failed > 0 {
		os.Exit(1)
	}
}

func resultPath(dir, gpu, pim, policy string, mode pimsim.VCMode) string {
	return filepath.Join(dir, fmt.Sprintf("%s_%s_%s_%s.json", gpu, pim, policy, mode))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimcampaign:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
