package pimsim

import (
	"strings"
	"testing"
)

// These tests exercise the public facade exactly the way a downstream
// user would; the heavy behavioral coverage lives in the internal
// packages.

func TestConfigsValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Error(err)
	}
	if err := ScaledConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestPoliciesListAndConstruction(t *testing.T) {
	pols := Policies()
	if len(pols) != 9 {
		t.Fatalf("%d policies, want 9", len(pols))
	}
	cfg := ScaledConfig()
	for _, name := range pols {
		if NewPolicy(name, cfg) == nil {
			t.Errorf("NewPolicy(%q) = nil", name)
		}
	}
	if NewPolicy("bogus", cfg) != nil {
		t.Error("bogus policy constructed")
	}
	// Mutating the returned slice must not corrupt the registry.
	pols[0] = "corrupted"
	if Policies()[0] != "fcfs" {
		t.Error("Policies() exposes internal state")
	}
}

func TestProfileTables(t *testing.T) {
	if len(GPUProfiles()) != 20 || len(PIMProfiles()) != 9 {
		t.Fatalf("profile tables: %d GPU, %d PIM", len(GPUProfiles()), len(PIMProfiles()))
	}
	if _, err := GPUProfileByID("G1"); err != nil {
		t.Error(err)
	}
	if _, err := PIMProfileByID("P9"); err != nil {
		t.Error(err)
	}
}

func TestKernelLists(t *testing.T) {
	if got := AllGPUKernels(); len(got) != 20 || got[0] != "G1" {
		t.Errorf("AllGPUKernels: %v", got)
	}
	if got := AllPIMKernels(); len(got) != 9 || got[8] != "P9" {
		t.Errorf("AllPIMKernels: %v", got)
	}
	if len(DefaultGPUKernels()) == 0 || len(DefaultPIMKernels()) == 0 {
		t.Error("empty default kernel subsets")
	}
}

func TestProposedConfiguration(t *testing.T) {
	cfg := ScaledConfig()
	policy := Proposed(&cfg)
	if policy != "f3fs" || cfg.NoC.Mode != VC2 {
		t.Errorf("Proposed: policy %q mode %v", policy, cfg.NoC.Mode)
	}
}

func TestEndToEndThroughFacade(t *testing.T) {
	cfg := ScaledConfig()
	cfg.MaxGPUCycles = 2_000_000
	gpuProf, err := GPUProfileByID("G8")
	if err != nil {
		t.Fatal(err)
	}
	pimProf, err := PIMProfileByID("P1")
	if err != nil {
		t.Fatal(err)
	}
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	sys, err := NewSystem(cfg, Proposed(&cfg), []KernelDesc{
		{GPU: &gpuProf, SMs: gpuSMs, Scale: 0.2},
		{PIM: &pimProf, SMs: pimSMs, Scale: 0.2, Base: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Kernels {
		if !k.Finished {
			t.Errorf("kernel %s unfinished", k.Label)
		}
	}
	if _, err := sys.Run(); err == nil {
		t.Error("System must be single-use")
	}
}

func TestMetricHelpers(t *testing.T) {
	if got := FairnessIndex(0.5, 1.0); got != 0.5 {
		t.Errorf("FairnessIndex = %v", got)
	}
	if got := SystemThroughput(0.5, 1.0); got != 1.5 {
		t.Errorf("SystemThroughput = %v", got)
	}
}

func TestRunnerFacade(t *testing.T) {
	cfg := ScaledConfig()
	cfg.MaxGPUCycles = 2_000_000
	r := NewRunner(cfg, 0.15)
	pair, err := r.Competitive("G8", "P2", "f3fs", VC2)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Throughput <= 0 {
		t.Errorf("throughput %v", pair.Throughput)
	}
}

func TestLLMModelFacade(t *testing.T) {
	m := GPT3Like()
	if m.Batch != 128 {
		t.Errorf("batch %d", m.Batch)
	}
	cfg := ScaledConfig()
	qkv, mha := m.Scenario(cfg, 0.2)
	if qkv.GPU == nil || mha.PIM == nil {
		t.Error("scenario descriptors malformed")
	}
}

func TestTableRenderers(t *testing.T) {
	if !strings.Contains(AblationTable([]AblationStage{{Name: "x"}}), "x") {
		t.Error("AblationTable missing row")
	}
	if !strings.Contains(QueueTable([]QueuePoint{{QueueSize: 256}}), "256") {
		t.Error("QueueTable missing row")
	}
	if !strings.Contains(CapTable([]CapPoint{{MemCap: 64, PIMCap: 32}}), "64") {
		t.Error("CapTable missing row")
	}
	if !strings.Contains(BlissTable([]BlissPoint{{Threshold: 4}}), "4") {
		t.Error("BlissTable missing row")
	}
	if !strings.Contains(CollabTable([]CollabResult{{Policy: "f3fs"}}), "f3fs") {
		t.Error("CollabTable missing row")
	}
}
