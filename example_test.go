package pimsim_test

import (
	"fmt"

	pimsim "repro"
)

// The fairness index of Eq. 1 compares the two kernels' speedups under
// contention; 1 is perfectly fair, 0 is starvation.
func ExampleFairnessIndex() {
	fmt.Printf("%.2f\n", pimsim.FairnessIndex(0.8, 0.4))
	fmt.Printf("%.2f\n", pimsim.FairnessIndex(0.6, 0.6))
	fmt.Printf("%.2f\n", pimsim.FairnessIndex(0.9, 0.0))
	// Output:
	// 0.50
	// 1.00
	// 0.00
}

// System throughput is the sum of kernel speedups.
func ExampleSystemThroughput() {
	fmt.Printf("%.2f\n", pimsim.SystemThroughput(0.45, 0.54))
	// Output: 0.99
}

// CapsForPriorities turns process priorities into asymmetric F3FS CAPs
// (the paper's future-work direction), rounded to register-file multiples.
func ExampleCapsForPriorities() {
	mem, pim := pimsim.CapsForPriorities(3, 1, 512, 8)
	fmt.Println(mem, pim)
	// Output: 384 128
}

// Policies lists the nine evaluated schedulers in paper order.
func ExamplePolicies() {
	for _, name := range pimsim.Policies()[:3] {
		fmt.Println(name)
	}
	// Output:
	// fcfs
	// mem-first
	// pim-first
}

// Proposed configures the paper's full proposal in place.
func ExampleProposed() {
	cfg := pimsim.ScaledConfig()
	policy := pimsim.Proposed(&cfg)
	fmt.Println(policy, cfg.NoC.Mode)
	// Output: f3fs VC2
}
