// Competitive multi-tenancy: a memory-intensive GPU kernel (kmeans, G11)
// shares the machine with a PIM STREAM kernel — the paper's worst-case
// interference pattern. The example sweeps every scheduling policy under
// both interconnect configurations and prints the fairness/throughput
// trade-off each policy strikes, plus the denial-of-service signal
// (the GPU kernel's request arrival rate at the memory controller,
// normalized to running alone).
//
//	go run ./examples/competitive
package main

import (
	"fmt"
	"log"

	pimsim "repro"
)

func main() {
	cfg := pimsim.ScaledConfig()
	runner := pimsim.NewRunner(cfg, 0.25)

	const gpuKernel, pimKernel = "G11", "P3" // kmeans vs STREAM-Daxpy

	fmt.Printf("%s co-executing with %s\n\n", gpuKernel, pimKernel)
	fmt.Printf("%-14s %-4s %8s %8s %8s %8s %10s\n",
		"policy", "vc", "gpu-spd", "pim-spd", "FI", "ST", "mem-arrive")
	for _, mode := range []pimsim.VCMode{pimsim.VC1, pimsim.VC2} {
		for _, policy := range pimsim.Policies() {
			pair, err := runner.Competitive(gpuKernel, pimKernel, policy, mode)
			if err != nil {
				log.Fatal(err)
			}
			note := ""
			if pair.Aborted {
				note = "  (starved)"
			}
			fmt.Printf("%-14s %-4s %8.3f %8.3f %8.3f %8.3f %10.3f%s\n",
				policy, mode, pair.GPUSpeedup, pair.PIMSpeedup,
				pair.Fairness, pair.Throughput, pair.MemArrivalNorm, note)
		}
		fmt.Println()
	}
	fmt.Println("FI = fairness index (Eq. 1), ST = system throughput,")
	fmt.Println("mem-arrive = GPU kernel's MC arrival rate vs standalone (Fig. 6).")
}
