// Multi-tenant sharing with energy accounting: three tenants — two GPU
// kernels (an irregular graph workload and a stencil) and one PIM STREAM
// kernel — share the machine. The example reports per-tenant progress,
// the memory controller's switching behavior, and an energy estimate of
// the run (a library extension; the paper evaluates performance only).
//
//	go run ./examples/tenancy
package main

import (
	"fmt"
	"log"

	pimsim "repro"
)

func main() {
	cfg := pimsim.ScaledConfig()
	policy := pimsim.Proposed(&cfg) // VC2 + F3FS

	bfs, err := pimsim.GPUProfileByID("G3")
	if err != nil {
		log.Fatal(err)
	}
	hotspot, err := pimsim.GPUProfileByID("G8")
	if err != nil {
		log.Fatal(err)
	}
	stream, err := pimsim.PIMProfileByID("P1")
	if err != nil {
		log.Fatal(err)
	}

	// Partition the SMs by hand: the PIM kernel keeps its reserved SMs,
	// the two GPU tenants split the rest.
	gpuSMs, pimSMs := pimsim.GPUAndPIMSMs(cfg)
	half := len(gpuSMs) / 2
	descs := []pimsim.KernelDesc{
		{GPU: &bfs, SMs: gpuSMs[:half], Scale: 0.2},
		{GPU: &hotspot, SMs: gpuSMs[half:], Scale: 0.2, Base: 256 << 20},
		{PIM: &stream, SMs: pimSMs, Scale: 0.2, Base: 1 << 30},
	}

	sys, err := pimsim.NewSystem(cfg, policy, descs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("three tenants under %s + %s, %d GPU cycles\n\n", cfg.NoC.Mode, policy, res.GPUCycles)
	fmt.Printf("%-18s %10s %10s %8s\n", "tenant", "finish", "requests", "runs")
	for _, k := range res.Kernels {
		fmt.Printf("%-18s %10d %10d %8d\n", k.Label, k.FirstFinish, k.Total, k.Runs)
	}

	tc := res.Stats.TotalChannel()
	fmt.Printf("\nmemory system: %d switches, RBHR %.3f, PIM locality %.3f\n",
		tc.Switches, tc.RBHR(),
		float64(tc.PIMRowHits)/float64(tc.PIMRowHits+tc.PIMRowMisses))

	em := pimsim.DefaultHBMEnergy()
	b := em.Estimate(res.Stats, cfg.Memory.Banks, cfg.Memory.Channels, cfg.Memory.ClockMHz)
	fmt.Printf("\nenergy estimate (extension, HBM-class coefficients):\n  %s\n", b)
	fmt.Printf("  %.1f nJ per serviced request\n",
		em.PerRequestNJ(res.Stats, cfg.Memory.Banks, cfg.Memory.Channels, cfg.Memory.ClockMHz))
}
