// Quickstart: simulate one competitive GPU/PIM pair under the paper's
// proposal (VC2 interconnect + F3FS scheduling) and under the strongest
// fairness baseline (VC1 + FR-RR-FCFS), and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pimsim "repro"
)

func main() {
	// The scaled configuration keeps Table I's timing, queue sizes and
	// SM/channel ratios but shrinks the system so this finishes in
	// about a second. Use pimsim.PaperConfig() for the full machine.
	cfg := pimsim.ScaledConfig()
	runner := pimsim.NewRunner(cfg, 0.25)

	// hotspot (G8) sharing the machine with STREAM-Add (P1).
	baseline, err := runner.Competitive("G8", "P1", "fr-rr-fcfs", pimsim.VC1)
	if err != nil {
		log.Fatal(err)
	}
	proposed, err := runner.Competitive("G8", "P1", "f3fs", pimsim.VC2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hotspot (G8) co-executing with STREAM-Add (P1)")
	fmt.Printf("%-26s %8s %8s %10s\n", "configuration", "FI", "ST", "switches")
	fmt.Printf("%-26s %8.3f %8.3f %10d\n", "VC1 + fr-rr-fcfs (base)", baseline.Fairness, baseline.Throughput, baseline.Switches)
	fmt.Printf("%-26s %8.3f %8.3f %10d\n", "VC2 + f3fs (proposed)", proposed.Fairness, proposed.Throughput, proposed.Switches)
	fmt.Printf("\nfairness %+.1f%%, throughput %+.1f%%, %.0fx fewer mode switches\n",
		100*(proposed.Fairness/baseline.Fairness-1),
		100*(proposed.Throughput/baseline.Throughput-1),
		float64(baseline.Switches)/float64(proposed.Switches))
}
