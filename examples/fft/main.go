// Custom collaborative scenario: a Pimacolaba-style FFT (related work of
// the paper) that splits butterfly stages between the GPU and the PIM
// units. This example shows how to build collaborative workloads beyond
// the built-in LLM scenario: define custom kernel profiles, run each
// stage alone for the sequential baseline, then overlap them and compare
// scheduling policies.
//
//	go run ./examples/fft
package main

import (
	"fmt"
	"log"

	pimsim "repro"
)

// gpuStages models the host-side FFT work: strided butterfly passes with
// decent row locality and moderate L2 reuse (twiddle factors).
func gpuStages() pimsim.GPUProfile {
	return pimsim.GPUProfile{
		ID: "FFT-G", Name: "fft-butterfly-gpu",
		Desc:      "host butterfly stages",
		Requests:  120000,
		Interval:  2,
		Streams:   4,
		Locality:  0.7,
		Reuse:     0.45,
		Footprint: 64 << 20,
		ReadFrac:  0.6, // butterflies read and write in place
	}
}

// pimStages models the in-memory FFT work: row-resident point-wise
// twiddle multiplies executed by the PIM SIMD units.
func pimStages() pimsim.PIMProfile {
	return pimsim.PIMProfile{
		ID: "FFT-P", Name: "fft-twiddle-pim",
		Desc: "in-memory twiddle multiply stages",
		Segments: []pimsim.PIMSegment{
			{Op: pimsim.PIMLoadOp, Ops: 8},     // load stage input
			{Op: pimsim.PIMComputeOp, Ops: 16}, // complex multiply-accumulate
			{Op: pimsim.PIMStoreOp, Ops: 8},    // store stage output
		},
		Blocks: 220,
	}
}

func main() {
	cfg := pimsim.ScaledConfig()
	gpuSMs, pimSMs := pimsim.GPUAndPIMSMs(cfg)
	gProf, pProf := gpuStages(), pimStages()
	const scale = 0.25

	runOnce := func(mode pimsim.VCMode, policy string, descs []pimsim.KernelDesc) *pimsim.Result {
		c := cfg
		c.NoC.Mode = mode
		sys, err := pimsim.NewSystem(c, policy, descs)
		if err != nil {
			log.Fatal(err)
		}
		sys.SetRunOnce(true)
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Sequential baseline: each half runs alone.
	gAlone := runOnce(pimsim.VC1, "fr-fcfs", []pimsim.KernelDesc{
		{GPU: &gProf, SMs: gpuSMs, Scale: scale},
	}).Kernels[0].FirstFinish
	pAlone := runOnce(pimsim.VC1, "fr-fcfs", []pimsim.KernelDesc{
		{PIM: &pProf, SMs: pimSMs, Scale: scale, Base: 1 << 30},
	}).Kernels[0].FirstFinish
	seq := gAlone + pAlone
	longer := max(gAlone, pAlone)

	fmt.Printf("FFT host/PIM collaboration (Pimacolaba-style)\n")
	fmt.Printf("sequential: GPU %d + PIM %d = %d cycles; ideal overlap %.3f\n\n",
		gAlone, pAlone, seq, float64(seq)/float64(longer))
	fmt.Printf("%-14s %-4s %8s\n", "policy", "vc", "speedup")
	for _, mode := range []pimsim.VCMode{pimsim.VC1, pimsim.VC2} {
		for _, policy := range []string{"fr-fcfs", "gather-issue", "fr-rr-fcfs", "f3fs"} {
			res := runOnce(mode, policy, []pimsim.KernelDesc{
				{GPU: &gProf, SMs: gpuSMs, Scale: scale},
				{PIM: &pProf, SMs: pimSMs, Scale: scale, Base: 1 << 30},
			})
			fmt.Printf("%-14s %-4s %8.3f\n", policy, mode, float64(seq)/float64(res.GPUCycles))
		}
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
