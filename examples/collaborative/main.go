// Collaborative execution: a GPT-3-like decoder layer overlaps QKV
// generation (GPU GEMMs) with multi-head attention (PIM GEMV + softmax),
// as in AttAcc/NeuPIMs. This example shows F3FS's runtime tunability —
// the asymmetric CAPs of Sec. VII — by sweeping MEM/PIM CAP pairs and
// reporting the resulting end-to-end speedup over sequential execution.
//
//	go run ./examples/collaborative
package main

import (
	"fmt"
	"log"

	pimsim "repro"
)

func main() {
	cfg := pimsim.ScaledConfig()
	runner := pimsim.NewRunner(cfg, 0.25)

	fmt.Println("GPT-3-6.7B-like layer: QKV generation (GPU) || multi-head attention (PIM)")
	fmt.Println()

	// Reference points: the best baseline in each interconnect
	// configuration per the paper (G&I under VC1, FR-FCFS under VC2).
	for _, ref := range []struct {
		policy string
		mode   pimsim.VCMode
	}{
		{"gather-issue", pimsim.VC1},
		{"fr-fcfs", pimsim.VC2},
	} {
		res, err := runner.Collaborative(ref.policy, ref.mode, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %-14s %s: speedup %.3f (ideal %.3f)\n",
			ref.policy, res.Mode, res.Speedup, res.Ideal)
	}
	fmt.Println()

	// F3FS CAP tuning: higher CAPs favor throughput; lowering the PIM
	// CAP below the MEM CAP favors the slower (GPU) kernel.
	fmt.Printf("%-4s %12s %8s\n", "vc", "mem/pim cap", "speedup")
	for _, mode := range []pimsim.VCMode{pimsim.VC1, pimsim.VC2} {
		for _, caps := range [][2]int{{64, 64}, {256, 256}, {256, 128}, {512, 256}, {512, 512}} {
			res, err := runner.Collaborative("f3fs", mode, caps[0], caps[1])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-4s %6d/%-5d %8.3f\n", mode, caps[0], caps[1], res.Speedup)
		}
	}
	fmt.Println()
	fmt.Println("Speedup is concurrent vs sequential execution; 'ideal' is perfect")
	fmt.Println("overlap (sequential time / longer stage alone).")
}
