// Custom scheduling policy: the simulator's policy interface is public,
// so new memory-controller mode-switching policies can be plugged in
// without touching the simulator. This example implements a simple
// time-slice policy — alternate MEM and PIM modes on a fixed DRAM-cycle
// quantum — wires it into a co-execution, and compares it against F3FS.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	pimsim "repro"
)

// timeSlice alternates modes on a fixed quantum, a textbook fair-share
// design. It ignores row locality entirely, which is exactly why the
// paper's locality-aware F3FS beats this kind of scheme on throughput.
type timeSlice struct {
	Quantum    uint64
	sliceStart uint64
	haveStart  bool
}

func (p *timeSlice) Name() string { return "time-slice" }

func (p *timeSlice) DesiredMode(v pimsim.SchedView) pimsim.SchedMode {
	if !p.haveStart {
		p.sliceStart = v.Now()
		p.haveStart = true
	}
	cur := v.Mode()
	// Nothing to do in the current mode: follow the work immediately.
	curLen, otherLen := v.MemQLen(), v.PIMQLen()
	if cur == pimsim.ModePIM {
		curLen, otherLen = otherLen, curLen
	}
	if curLen == 0 && otherLen > 0 {
		return cur.Other()
	}
	// Quantum expired and the other side has work: rotate.
	if v.Now()-p.sliceStart >= p.Quantum && otherLen > 0 {
		return cur.Other()
	}
	return cur
}

func (p *timeSlice) MemRowHitsAllowed(pimsim.SchedView) bool         { return true }
func (p *timeSlice) MemConflictServiceAllowed(pimsim.SchedView) bool { return true }
func (p *timeSlice) OnIssue(pimsim.SchedView, pimsim.IssueInfo)      {}
func (p *timeSlice) OnSwitch(v pimsim.SchedView, _ pimsim.SchedMode) {
	p.sliceStart = v.Now()
}
func (p *timeSlice) Reset() { p.haveStart = false }

func main() {
	cfg := pimsim.ScaledConfig()
	cfg.NoC.Mode = pimsim.VC2

	gpuProf, err := pimsim.GPUProfileByID("G17") // pathfinder: locality-sensitive
	if err != nil {
		log.Fatal(err)
	}
	pimProf, err := pimsim.PIMProfileByID("P1")
	if err != nil {
		log.Fatal(err)
	}
	gpuSMs, pimSMs := pimsim.GPUAndPIMSMs(cfg)
	descs := []pimsim.KernelDesc{
		{GPU: &gpuProf, SMs: gpuSMs, Scale: 0.25},
		{PIM: &pimProf, SMs: pimSMs, Scale: 0.25, Base: 1 << 30},
	}

	run := func(label string, factory pimsim.PolicyFactory) {
		sys, err := pimsim.NewSystemWithFactory(cfg, factory, descs)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		tc := res.Stats.TotalChannel()
		fmt.Printf("%-22s total %8d cycles, switches %6d, RBHR %.3f\n",
			label, res.GPUCycles, tc.Switches, tc.RBHR())
	}

	for _, q := range []uint64{100, 1000, 10000} {
		q := q
		run(fmt.Sprintf("time-slice (q=%d)", q), func() pimsim.Policy {
			return &timeSlice{Quantum: q}
		})
	}
	run("f3fs (256/256)", func() pimsim.Policy { return pimsim.NewF3FS(256, 256) })
}
