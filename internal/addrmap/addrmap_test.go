package addrmap

import (
	"testing"
	"testing/quick"
)

func paperGeometry(t *testing.T) Geometry {
	t.Helper()
	g, err := NewGeometry(32, 16, 8192, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeometryBitWidths(t *testing.T) {
	g := paperGeometry(t)
	// Table I map: 13 row bits, 4 bank bits (3+1), 6 column bits (3+3),
	// 5 channel bits, 5 offset bits.
	if g.rowBits != 13 {
		t.Errorf("row bits = %d, want 13", g.rowBits)
	}
	if g.bankHighBits+g.bankLowBits != 4 {
		t.Errorf("bank bits = %d, want 4", g.bankHighBits+g.bankLowBits)
	}
	if g.colHighBits+g.colLowBits != 6 {
		t.Errorf("column bits = %d, want 6", g.colHighBits+g.colLowBits)
	}
	if g.channelBits != 5 {
		t.Errorf("channel bits = %d, want 5", g.channelBits)
	}
	if g.offsetBits != 5 {
		t.Errorf("offset bits = %d, want 5", g.offsetBits)
	}
}

func TestGeometrySizes(t *testing.T) {
	g := paperGeometry(t)
	if got := g.RowBytes(); got != 2048 {
		t.Errorf("row bytes = %d, want 2048 (64 cols x 32 B)", got)
	}
	// 32 channels x 16 banks x 8192 rows x 2 KB = 8 GiB.
	if got := g.TotalBytes(); got != 8<<30 {
		t.Errorf("total bytes = %d, want %d", got, uint64(8<<30))
	}
}

func TestGeometryRejectsNonPowerOfTwo(t *testing.T) {
	cases := [][5]int{
		{31, 16, 8192, 64, 32},
		{32, 15, 8192, 64, 32},
		{32, 16, 8191, 64, 32},
		{32, 16, 8192, 63, 32},
		{32, 16, 8192, 64, 33},
		{0, 16, 8192, 64, 32},
	}
	for _, c := range cases {
		if _, err := NewGeometry(c[0], c[1], c[2], c[3], c[4]); err == nil {
			t.Errorf("NewGeometry(%v) accepted invalid dimensions", c)
		}
	}
}

func TestInterleavedRoundTrip(t *testing.T) {
	g := paperGeometry(t)
	m := NewInterleaved(g)
	f := func(raw uint64) bool {
		addr := (raw % g.TotalBytes()) &^ uint64(g.AccessBytes-1)
		c := m.Decode(addr)
		if c.Channel < 0 || c.Channel >= g.Channels ||
			c.Bank < 0 || c.Bank >= g.Banks ||
			int(c.Row) >= g.Rows || int(c.Col) >= g.Columns {
			return false
		}
		return m.Encode(c) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedEncodeDecodeRoundTrip(t *testing.T) {
	g := paperGeometry(t)
	m := NewInterleaved(g)
	f := func(ch, bank, row, col uint16) bool {
		c := Coord{
			Channel: int(ch) % g.Channels,
			Bank:    int(bank) % g.Banks,
			Row:     uint32(int(row) % g.Rows),
			Col:     uint32(int(col) % g.Columns),
		}
		return m.Decode(m.Encode(c)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedSequentialStride(t *testing.T) {
	g := paperGeometry(t)
	m := NewInterleaved(g)
	// Consecutive 32 B accesses walk the 3 low column bits first (8
	// accesses in the same channel/row), then move to the next channel.
	base := m.Decode(0)
	for i := 1; i < 8; i++ {
		c := m.Decode(uint64(i * 32))
		if c.Channel != base.Channel || c.Row != base.Row || c.Bank != base.Bank {
			t.Fatalf("access %d left the row: %+v vs %+v", i, c, base)
		}
		if c.Col != uint32(i) {
			t.Fatalf("access %d column = %d, want %d", i, c.Col, i)
		}
	}
	c := m.Decode(8 * 32)
	if c.Channel != base.Channel+1 {
		t.Errorf("9th access channel = %d, want %d (channel interleave)", c.Channel, base.Channel+1)
	}
}

func TestInterleavedChannelCoverage(t *testing.T) {
	g := paperGeometry(t)
	m := NewInterleaved(g)
	seen := make(map[int]bool)
	for i := 0; i < 8*g.Channels; i++ {
		seen[m.Decode(uint64(i*32)).Channel] = true
	}
	if len(seen) != g.Channels {
		t.Errorf("sequential sweep touched %d channels, want %d", len(seen), g.Channels)
	}
}

func TestIPolyRoundTripAndSpread(t *testing.T) {
	g := paperGeometry(t)
	m := NewIPoly(g)
	f := func(ch, bank, row, col uint16) bool {
		c := Coord{
			Channel: int(ch) % g.Channels,
			Bank:    int(bank) % g.Banks,
			Row:     uint32(int(row) % g.Rows),
			Col:     uint32(int(col) % g.Columns),
		}
		return m.Decode(m.Encode(c)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// A large power-of-two stride maps all accesses to one channel under
	// the regular map; the hashed map must spread them.
	reg := NewInterleaved(g)
	stride := uint64(1) << 20
	regSeen, polySeen := map[int]bool{}, map[int]bool{}
	for i := 0; i < 64; i++ {
		regSeen[reg.Decode(uint64(i)*stride).Channel] = true
		polySeen[m.Decode(uint64(i)*stride).Channel] = true
	}
	if len(polySeen) <= len(regSeen) {
		t.Errorf("I-poly spread %d channels, regular %d; want hashed > regular", len(polySeen), len(regSeen))
	}
}

func TestDecodeDifferentAddressesDiffer(t *testing.T) {
	g := paperGeometry(t)
	m := NewInterleaved(g)
	a := m.Decode(0)
	b := m.Decode(32)
	if a == b {
		t.Error("distinct aligned addresses decoded to the same coordinate")
	}
}
