// Package addrmap slices physical addresses into DRAM coordinates
// (channel, bank, row, column) according to the address map in Table I of
// the paper:
//
//	RRRR.RRRRRRRR.RBBBCCCB.DDDDDCCC   (MSB ... LSB, above the burst offset)
//	Key: R=Row, B=Bank, C=Column, D=Channel
//
// Reading the map from the least-significant end, above the 5 offset bits
// of a 32 B access (16 B bus x burst length 2):
//
//	bits [0,3)  column low   (CCC)
//	bits [3,8)  channel      (DDDDD)       -> 32 channels
//	bit  [8]    bank low     (B)
//	bits [9,12) column high  (CCC)
//	bits [12,15) bank high   (BBB)         -> 16 banks
//	bits [15,28) row         (R x 13)
//
// The low column bits sit directly above the offset so that consecutive
// 32 B accesses first stride across columns of one row, then across
// channels — the "more regular scheme" the paper adopts in favor of
// pseudo-random I-poly mapping to facilitate PIM programming. An I-poly
// style hashed mapper is also provided for completeness.
package addrmap

import "fmt"

// Coord is the decoded location of an access.
type Coord struct {
	Channel int
	Bank    int
	Row     uint32
	Col     uint32
}

// Mapper converts between byte addresses and DRAM coordinates.
type Mapper interface {
	// Decode slices addr into its coordinates.
	Decode(addr uint64) Coord
	// Encode is the inverse of Decode for in-range coordinates.
	Encode(c Coord) uint64
	// Geometry reports the sizes the mapper was built for.
	Geometry() Geometry
}

// Geometry captures the dimensions of the memory system an address map
// covers.
type Geometry struct {
	Channels     int // number of HBM channels
	Banks        int // banks per channel
	Rows         int // rows per bank
	Columns      int // access-granularity columns per row
	AccessBytes  int // bytes per access (bus width x burst length)
	offsetBits   uint
	colLowBits   uint
	channelBits  uint
	bankLowBits  uint
	colHighBits  uint
	bankHighBits uint
	rowBits      uint
}

// RowBytes returns the size of one DRAM row in bytes.
func (g Geometry) RowBytes() uint64 { return uint64(g.Columns) * uint64(g.AccessBytes) }

// ChannelBytes returns the capacity of one channel in bytes.
func (g Geometry) ChannelBytes() uint64 {
	return uint64(g.Rows) * uint64(g.Banks) * g.RowBytes()
}

// TotalBytes returns the capacity of the whole memory in bytes.
func (g Geometry) TotalBytes() uint64 { return uint64(g.Channels) * g.ChannelBytes() }

func log2(n int) (uint, error) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("addrmap: %d is not a positive power of two", n)
	}
	var b uint
	for m := n; m > 1; m >>= 1 {
		b++
	}
	return b, nil
}

// NewGeometry validates the dimensions and derives the bit widths. All
// dimensions must be powers of two. The paper's column bits split 3/3
// around the bank-low bit; for other column counts the low field keeps
// three bits (or fewer, if the total is smaller) and the remainder goes to
// the high field.
func NewGeometry(channels, banks, rows, columns, accessBytes int) (Geometry, error) {
	g := Geometry{Channels: channels, Banks: banks, Rows: rows, Columns: columns, AccessBytes: accessBytes}
	var err error
	if g.offsetBits, err = log2(accessBytes); err != nil {
		return g, fmt.Errorf("access bytes: %w", err)
	}
	if g.channelBits, err = log2(channels); err != nil {
		return g, fmt.Errorf("channels: %w", err)
	}
	bankBits, err := log2(banks)
	if err != nil {
		return g, fmt.Errorf("banks: %w", err)
	}
	colBits, err := log2(columns)
	if err != nil {
		return g, fmt.Errorf("columns: %w", err)
	}
	if g.rowBits, err = log2(rows); err != nil {
		return g, fmt.Errorf("rows: %w", err)
	}
	g.colLowBits = 3
	if colBits < 3 {
		g.colLowBits = colBits
	}
	g.colHighBits = colBits - g.colLowBits
	g.bankLowBits = 1
	if bankBits < 1 {
		g.bankLowBits = bankBits
	}
	g.bankHighBits = bankBits - g.bankLowBits
	return g, nil
}

// Interleaved is the paper's regular address map (Table I). The zero value
// is not usable; construct with NewInterleaved.
type Interleaved struct {
	g Geometry
}

// NewInterleaved builds the Table I address map for the given geometry.
func NewInterleaved(g Geometry) *Interleaved { return &Interleaved{g: g} }

// Decode implements Mapper.
func (m *Interleaved) Decode(addr uint64) Coord {
	g := m.g
	a := addr >> g.offsetBits
	take := func(bits uint) uint64 {
		v := a & ((1 << bits) - 1)
		a >>= bits
		return v
	}
	colLow := take(g.colLowBits)
	channel := take(g.channelBits)
	bankLow := take(g.bankLowBits)
	colHigh := take(g.colHighBits)
	bankHigh := take(g.bankHighBits)
	row := take(g.rowBits)
	return Coord{
		Channel: int(channel),
		Bank:    int(bankHigh<<g.bankLowBits | bankLow),
		Row:     uint32(row),
		Col:     uint32(colHigh<<g.colLowBits | colLow),
	}
}

// Encode implements Mapper.
func (m *Interleaved) Encode(c Coord) uint64 {
	g := m.g
	var a uint64
	var shift uint
	put := func(v uint64, bits uint) {
		a |= (v & ((1 << bits) - 1)) << shift
		shift += bits
	}
	put(uint64(c.Col), g.colLowBits)
	put(uint64(c.Channel), g.channelBits)
	put(uint64(c.Bank), g.bankLowBits)
	put(uint64(c.Col)>>g.colLowBits, g.colHighBits)
	put(uint64(c.Bank)>>g.bankLowBits, g.bankHighBits)
	put(uint64(c.Row), g.rowBits)
	return a << g.offsetBits
}

// Geometry implements Mapper.
func (m *Interleaved) Geometry() Geometry { return m.g }

// IPoly is a pseudo-randomly interleaved mapper in the spirit of Rau's
// I-poly scheme: the channel index is the XOR-fold of the address above
// the offset, which decorrelates channel selection from strided access
// patterns. The paper turns this scheme OFF for PIM programmability
// (Sec. III-B); it is provided so that the cost of the regular map can be
// measured.
type IPoly struct {
	g Geometry
}

// NewIPoly builds the hashed mapper for the given geometry.
func NewIPoly(g Geometry) *IPoly { return &IPoly{g: g} }

// Decode implements Mapper. Coordinates other than the channel follow the
// regular map so that row/bank locality properties stay comparable.
func (m *IPoly) Decode(addr uint64) Coord {
	g := m.g
	base := (&Interleaved{g: g}).Decode(addr)
	if g.channelBits == 0 {
		return base // single channel: nothing to fold (and a 0-bit shift would not terminate)
	}
	// XOR-fold everything above the offset into channelBits bits.
	a := addr >> g.offsetBits
	var h uint64
	for a != 0 {
		h ^= a & ((1 << g.channelBits) - 1)
		a >>= g.channelBits
	}
	base.Channel = int(h)
	return base
}

// Encode implements Mapper. The hash is not invertible in general, so
// Encode reconstructs an address whose non-channel coordinates match and
// whose hashed channel equals c.Channel by searching the channel field.
// It is intended for tests and generators, not hot paths.
func (m *IPoly) Encode(c Coord) uint64 {
	inner := &Interleaved{g: m.g}
	for ch := 0; ch < m.g.Channels; ch++ {
		cand := c
		cand.Channel = ch
		addr := inner.Encode(cand)
		if m.Decode(addr).Channel == c.Channel {
			return addr
		}
	}
	// Unreachable for power-of-two geometries: XOR-folding is a
	// bijection over the channel field for fixed remaining bits.
	panic("addrmap: IPoly.Encode found no preimage")
}

// Geometry implements Mapper.
func (m *IPoly) Geometry() Geometry { return m.g }
