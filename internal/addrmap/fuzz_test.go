package addrmap

import "testing"

// fuzzGeometries are the power-of-two shapes the fuzz target exercises:
// the paper's Table I machine, a minimal corner, and an asymmetric mix
// that forces the column/bank split fields apart.
var fuzzGeometries = []struct {
	name                                        string
	channels, banks, rows, columns, accessBytes int
}{
	{"table1", 8, 16, 16384, 64, 32},
	{"tiny", 1, 2, 4, 4, 8},
	{"asymmetric", 4, 8, 1024, 128, 64},
}

// FuzzAddrMap feeds arbitrary addresses through both mappers and checks
// the invariants any address map must satisfy:
//
//   - Decode always lands inside the geometry (channel/bank/row/column
//     ranges);
//   - for the regular map, Encode(Decode(addr)) round-trips the
//     in-range part of the address (addr reduced modulo TotalBytes and
//     aligned to AccessBytes);
//   - for both mappers, Decode(Encode(c)) round-trips the decoded
//     coordinate — each mapper is a bijection on its coordinate space.
//     (IPoly's channel hash folds address bits beyond the capacity, so
//     full address round-trip is not part of its contract.)
//
// Its first run found a real bug: IPoly.Decode spun forever on any
// nonzero address when channels == 1 (a 0-bit fold shift).
func FuzzAddrMap(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(0xFFFF_FFFF_FFFF_FFFF))
	f.Add(uint64(512 << 20))
	f.Add(uint64(0xDEAD_BEEF_CAFE))

	f.Fuzz(func(t *testing.T, addr uint64) {
		for _, gg := range fuzzGeometries {
			g, err := NewGeometry(gg.channels, gg.banks, gg.rows, gg.columns, gg.accessBytes)
			if err != nil {
				t.Fatalf("%s: %v", gg.name, err)
			}
			inRange := addr % g.TotalBytes() &^ (uint64(g.AccessBytes) - 1)
			for _, m := range []Mapper{NewInterleaved(g), NewIPoly(g)} {
				c := m.Decode(addr)
				if c.Channel < 0 || c.Channel >= g.Channels {
					t.Fatalf("%s/%T: Decode(%#x) channel %d out of [0,%d)", gg.name, m, addr, c.Channel, g.Channels)
				}
				if c.Bank < 0 || c.Bank >= g.Banks {
					t.Fatalf("%s/%T: Decode(%#x) bank %d out of [0,%d)", gg.name, m, addr, c.Bank, g.Banks)
				}
				if uint64(c.Row) >= uint64(g.Rows) {
					t.Fatalf("%s/%T: Decode(%#x) row %d out of [0,%d)", gg.name, m, addr, c.Row, g.Rows)
				}
				if uint64(c.Col) >= uint64(g.Columns) {
					t.Fatalf("%s/%T: Decode(%#x) col %d out of [0,%d)", gg.name, m, addr, c.Col, g.Columns)
				}
				if c2 := m.Decode(m.Encode(c)); c2 != c {
					t.Fatalf("%s/%T: coordinate round-trip %+v -> %+v via %#x", gg.name, m, c, c2, m.Encode(c))
				}
			}
			il := NewInterleaved(g)
			if got := il.Encode(il.Decode(addr)); got != inRange {
				t.Fatalf("%s/Interleaved: Encode(Decode(%#x)) = %#x, want %#x", gg.name, addr, got, inRange)
			}
		}
	})
}
