// Package invariant provides build-tag-gated runtime assertions for the
// simulator's deterministic core.
//
// Assertions compile to nothing in ordinary builds: Enabled is a false
// constant, so call sites written as
//
//	if invariant.Enabled {
//		invariant.Assert(cond, "format", args...)
//	}
//
// are dead code the compiler removes entirely — the hot path pays zero
// cycles. Building or testing with `-tags simdebug` flips Enabled to
// true and turns every violated assertion into a panic carrying the
// formatted message, so CI's simdebug job catches conservation and
// bound violations at the cycle they occur rather than as a corrupted
// statistic thousands of cycles later.
//
// Assert itself also consults Enabled, so an unguarded call is safe —
// just not free, since its arguments are then always evaluated.
package invariant

import "fmt"

// Assert panics with the formatted message when cond is false and the
// simdebug build tag is set; otherwise it is a no-op.
func Assert(cond bool, format string, args ...any) {
	if !Enabled || cond {
		return
	}
	panic("invariant violated: " + fmt.Sprintf(format, args...))
}
