//go:build !simdebug

package invariant

// Enabled reports whether assertions are compiled in; without the
// simdebug build tag every assertion is dead code.
const Enabled = false
