//go:build simdebug

package invariant

// Enabled reports whether assertions are compiled in (simdebug builds).
const Enabled = true
