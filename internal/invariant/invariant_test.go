package invariant

import "testing"

// TestAssert pins the tag-dependent contract: with simdebug a false
// condition panics with the formatted message, without it Assert is a
// no-op. The test adapts to whichever build it finds itself in, so both
// `go test` and `go test -tags simdebug` exercise their own half.
func TestAssert(t *testing.T) {
	Assert(true, "a true condition never panics (tag %v)", Enabled)

	defer func() {
		r := recover()
		if Enabled && r == nil {
			t.Fatal("simdebug build: false assertion did not panic")
		}
		if !Enabled && r != nil {
			t.Fatalf("release build: assertion panicked: %v", r)
		}
		if Enabled {
			want := "invariant violated: queue 65 over bound 64"
			if r != want {
				t.Fatalf("panic = %q, want %q", r, want)
			}
		}
	}()
	Assert(false, "queue %d over bound %d", 65, 64)
}
