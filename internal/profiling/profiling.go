// Package profiling captures CPU and heap profiles for the CLIs'
// -pprof flag.
package profiling

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into dir/cpu.pprof (creating dir). The
// returned stop function ends the CPU profile and writes a heap profile
// to dir/heap.pprof; call it exactly once, typically via defer.
func Start(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer heap.Close()
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(heap); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		return heap.Close()
	}, nil
}
