package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: EvColumn})
	r.SetFilter(func(Event) bool { return true })
	if r.Len() != 0 || r.Events() != nil || r.Dump() != "" {
		t.Error("nil recorder leaked state")
	}
}

func TestChronologicalOrder(t *testing.T) {
	r := New(10)
	for i := uint64(1); i <= 5; i++ {
		r.Record(Event{Cycle: i, Kind: EvColumn})
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != uint64(i+1) {
			t.Fatalf("order broken at %d: %v", i, e.Cycle)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := New(3)
	for i := uint64(1); i <= 7; i++ {
		r.Record(Event{Cycle: i})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].Cycle != 5 || evs[2].Cycle != 7 {
		t.Errorf("kept %v..%v, want 5..7", evs[0].Cycle, evs[2].Cycle)
	}
}

func TestFilter(t *testing.T) {
	r := New(10)
	r.SetFilter(func(e Event) bool { return e.Kind == EvSwitchDone })
	r.Record(Event{Kind: EvColumn})
	r.Record(Event{Kind: EvSwitchDone})
	r.Record(Event{Kind: EvEnqueue})
	if r.Len() != 1 {
		t.Errorf("filter retained %d, want 1", r.Len())
	}
}

func TestCountByKind(t *testing.T) {
	r := New(10)
	r.Record(Event{Kind: EvColumn})
	r.Record(Event{Kind: EvColumn})
	r.Record(Event{Kind: EvRefresh})
	counts := r.CountByKind()
	if counts[EvColumn] != 2 || counts[EvRefresh] != 1 {
		t.Errorf("counts: %v", counts)
	}
}

func TestEventRendering(t *testing.T) {
	e := Event{Cycle: 42, Kind: EvColumn, Channel: 3, Bank: 7, Row: 99, ReqID: 5, Note: "READ"}
	s := e.String()
	for _, want := range []string{"42", "ch3", "col", "b7", "row99", "req#5", "READ"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
	broadcast := Event{Kind: EvPIMOp, Bank: -1}
	if !strings.Contains(broadcast.String(), "b--") {
		t.Error("broadcast bank not rendered as b--")
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := EvEnqueue; k <= EvComplete; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestRingNeverExceedsCapacity is the recorder's core property.
func TestRingNeverExceedsCapacity(t *testing.T) {
	f := func(capacity uint8, n uint16) bool {
		c := int(capacity%32) + 1
		r := New(c)
		for i := 0; i < int(n%2048); i++ {
			r.Record(Event{Cycle: uint64(i)})
		}
		if r.Len() > c {
			return false
		}
		evs := r.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Cycle != evs[i-1].Cycle+1 {
				return false // order or continuity broken
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
