// Package trace records memory-controller event streams for debugging
// and for the cycle-level inspection that simulator users of GPGPU-Sim
// rely on. Recording is per channel, bounded (a ring buffer), and cheap
// enough to leave compiled in: a nil *Recorder disables all cost except
// one pointer test.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies a recorded event.
type Kind uint8

const (
	// EvEnqueue: a request entered the MEM or PIM queue.
	EvEnqueue Kind = iota
	// EvActivate/EvPrecharge/EvColumn: MEM-mode bank commands.
	EvActivate
	EvPrecharge
	EvColumn
	// EvPIMPrechargeAll/EvPIMActivateAll/EvPIMOp: PIM-mode broadcast
	// commands.
	EvPIMPrechargeAll
	EvPIMActivateAll
	EvPIMOp
	// EvSwitchStart/EvSwitchDone: mode-switch drain boundaries.
	EvSwitchStart
	EvSwitchDone
	// EvRefresh: an all-bank refresh issued.
	EvRefresh
	// EvComplete: a request finished at the DRAM.
	EvComplete
)

var kindNames = [...]string{
	"enqueue", "act", "pre", "col",
	"pim-pre-all", "pim-act-all", "pim-op",
	"switch-start", "switch-done", "refresh", "complete",
}

// String returns the event mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded controller event.
type Event struct {
	// Cycle is the DRAM cycle of the event.
	Cycle uint64
	// Kind classifies it.
	Kind Kind
	// Channel is the controller's channel index.
	Channel int
	// Bank/Row qualify bank commands (Bank is -1 for broadcast).
	Bank int
	Row  uint32
	// ReqID is the request involved (0 when not request-bound).
	ReqID uint64
	// Note carries extra context ("MEM->PIM", "READ", ...).
	Note string
}

// String renders the event as one trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10d ch%-2d %-13s", e.Cycle, e.Channel, e.Kind)
	if e.Bank >= 0 {
		fmt.Fprintf(&b, " b%-2d", e.Bank)
	} else {
		b.WriteString(" b--")
	}
	fmt.Fprintf(&b, " row%-6d", e.Row)
	if e.ReqID != 0 {
		fmt.Fprintf(&b, " req#%-8d", e.ReqID)
	}
	if e.Note != "" {
		b.WriteByte(' ')
		b.WriteString(e.Note)
	}
	return b.String()
}

// Recorder is a bounded event log. The zero value is unusable; build
// with New. A nil *Recorder is a valid no-op target for every method.
type Recorder struct {
	events []Event
	next   int
	filled bool
	filter func(Event) bool
}

// New builds a recorder keeping the most recent capacity events.
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{events: make([]Event, capacity)}
}

// SetFilter installs a predicate; events it rejects are dropped. A nil
// predicate records everything.
func (r *Recorder) SetFilter(f func(Event) bool) {
	if r == nil {
		return
	}
	r.filter = f
}

// Record appends an event, evicting the oldest once full.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.filter != nil && !r.filter(e) {
		return
	}
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.filled {
		return len(r.events)
	}
	return r.next
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.filled {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump renders all retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
