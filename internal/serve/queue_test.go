package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func testJob(id string, class Class) *Job {
	return &Job{ID: id, Class: class, done: make(chan struct{})}
}

func TestQueuePriorityAndFIFO(t *testing.T) {
	q := newQueue(telemetry.NewRegistry(), [2]int{})
	q.Push(testJob("b1", ClassBulk))
	q.Push(testJob("i1", ClassInteractive))
	q.Push(testJob("b2", ClassBulk))
	q.Push(testJob("i2", ClassInteractive))

	// Strict priority between classes, FIFO within a class.
	want := []string{"i1", "i2", "b1", "b2"}
	for _, id := range want {
		j, ok := q.Pop()
		if !ok || j.ID != id {
			t.Fatalf("Pop = %v/%v, want %s", j, ok, id)
		}
	}
	if i, b := q.Depths(); i != 0 || b != 0 {
		t.Fatalf("depths = %d/%d after drain", i, b)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(telemetry.NewRegistry(), [2]int{})
	q.Push(testJob("j1", ClassInteractive))
	q.Push(testJob("j2", ClassBulk))
	q.Close()

	if err := q.Push(testJob("late", ClassInteractive)); err != errQueueClosed {
		t.Fatalf("Push after Close = %v, want errQueueClosed", err)
	}
	// Close drains: queued jobs still come out, then ok=false forever.
	for _, id := range []string{"j1", "j2"} {
		j, ok := q.Pop()
		if !ok || j.ID != id {
			t.Fatalf("drain Pop = %v/%v, want %s", j, ok, id)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop reported ok on a closed empty queue")
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newQueue(telemetry.NewRegistry(), [2]int{})
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("blocked Pop returned a job from an empty closed queue")
	}
}

// TestQueueConcurrent pushes from many producers while consumers drain,
// checking nothing is lost or duplicated.
func TestQueueConcurrent(t *testing.T) {
	q := newQueue(telemetry.NewRegistry(), [2]int{})
	const producers, perProducer = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				cls := ClassInteractive
				if i%2 == 0 {
					cls = ClassBulk
				}
				q.Push(testJob(fmt.Sprintf("p%d-%d", p, i), cls))
			}
		}(p)
	}

	seen := make(chan string, producers*perProducer)
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				j, ok := q.Pop()
				if !ok {
					return
				}
				seen <- j.ID
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	close(seen)

	got := map[string]bool{}
	for id := range seen {
		if got[id] {
			t.Fatalf("job %s dequeued twice", id)
		}
		got[id] = true
	}
	if len(got) != producers*perProducer {
		t.Fatalf("dequeued %d jobs, want %d", len(got), producers*perProducer)
	}
}

// TestJobFIFOCompaction pushes/pops enough to trigger the amortized
// head compaction and checks order is preserved across it.
func TestJobFIFOCompaction(t *testing.T) {
	var f jobFIFO
	next := 0
	popped := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 30; i++ {
			f.push(testJob(fmt.Sprintf("%d", next), ClassInteractive))
			next++
		}
		for i := 0; i < 25; i++ {
			j := f.pop()
			if j == nil {
				t.Fatalf("pop %d returned nil with %d queued", popped, f.len())
			}
			if want := fmt.Sprintf("%d", popped); j.ID != want {
				t.Fatalf("pop %d = %s, want %s", popped, j.ID, want)
			}
			popped++
		}
	}
	for f.len() > 0 {
		j := f.pop()
		if want := fmt.Sprintf("%d", popped); j.ID != want {
			t.Fatalf("tail pop %d = %s, want %s", popped, j.ID, want)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d, pushed %d", popped, next)
	}
	if f.pop() != nil {
		t.Fatal("pop on empty fifo returned a job")
	}
}
