package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// waitReady polls the server's readiness until it flips true (the warm
// load runs in the background even with persistence disabled).
func waitReady(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerPersistenceWarmStart is the in-process half of the chaos
// gate: results computed before a (graceful) restart must be served
// byte-identically from the warm cache afterwards, with the warm-start
// counters reflecting it.
func TestServerPersistenceWarmStart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, StoreDir: dir}

	srv1, hs1 := newTestServer(t, opts)
	waitReady(t, srv1)
	v1, code := postSimulate(t, hs1.URL, testRequest(), true)
	if code != http.StatusOK || v1.Status != StatusDone {
		t.Fatalf("first run: status %d view %+v", code, v1)
	}
	m := srv1.MetricsSnapshot()
	if !m.Store.Enabled || m.Store.Persisted != 1 || m.Store.Entries != 1 {
		t.Fatalf("store stats after first run: %+v", m.Store)
	}
	hs1.Close()
	srv1.Close()

	// Restart over the same directory: the result must come back cached
	// from the warm load, byte-identical, without recomputing.
	srv2, hs2 := newTestServer(t, opts)
	waitReady(t, srv2)
	v2, code := postSimulate(t, hs2.URL, testRequest(), true)
	if code != http.StatusOK || v2.Status != StatusDone {
		t.Fatalf("warm run: status %d view %+v", code, v2)
	}
	if !v2.Cached {
		t.Fatalf("warm run not served from cache: %+v", v2)
	}
	if string(v1.Result) != string(v2.Result) {
		t.Fatalf("warm result differs from original:\n%s\n%s", v1.Result, v2.Result)
	}

	m = srv2.MetricsSnapshot()
	if m.Store.Replayed != 1 || m.Cache.WarmLoaded != 1 {
		t.Fatalf("warm load stats: store %+v cache %+v", m.Store, m.Cache)
	}
	if m.Cache.WarmHits != 1 || m.Cache.WarmHitRate <= 0 {
		t.Fatalf("warm hit stats: %+v", m.Cache)
	}
	if m.Cache.Misses != 0 {
		t.Fatalf("warm start recomputed: %+v", m.Cache)
	}
}

// TestServerReadinessLifecycle pins the liveness/readiness split:
// /readyz is 503 before the warm load and again once draining begins,
// while /healthz stays 200 throughout.
func TestServerReadinessLifecycle(t *testing.T) {
	// Warming semantics, checked on a hand-built server so the window is
	// deterministic (the real warm load closes ready almost instantly).
	warming := &Server{ready: make(chan struct{}), drain: make(chan struct{})}
	if warming.Ready() {
		t.Fatal("Ready() true before the warm load completed")
	}

	srv, hs := newTestServer(t, Options{Workers: 1})
	waitReady(t, srv)

	getStatus := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	if code, body := getStatus("/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("/readyz while up: %d %v", code, body)
	}
	if code, body := getStatus("/healthz"); code != http.StatusOK || body["degraded"] != false {
		t.Fatalf("/healthz while up: %d %v", code, body)
	}

	// Drain flips readiness false while liveness stays up — the ordering
	// cmd/pimserve relies on (BeginDrain before the listener closes).
	srv.BeginDrain()
	if code, body := getStatus("/readyz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("/readyz while draining: %d %v", code, body)
	}
	if code, _ := getStatus("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining: %d", code)
	}
	if srv.Ready() {
		t.Fatal("Ready() true while draining")
	}
}

// TestServerOverloadSheds verifies admission control: beyond the
// per-class queue bound, submits are refused with 429 and a positive
// Retry-After instead of queueing unboundedly, and the shed counter
// appears in /metrics.
func TestServerOverloadSheds(t *testing.T) {
	srv, hs := newTestServer(t, Options{Workers: 1, MaxQueueBulk: 1, MaxQueueInteractive: 1})
	waitReady(t, srv)

	slow := func(seed int64) Request {
		return Request{GPU: "G8", PIM: "P1", Policy: "fcfs", Full: true, Seed: seed, Priority: PriorityBulk}
	}

	// Occupy the single worker, then wait until the queue is empty again
	// so the next submits deterministically land in the admission queue.
	if _, code := postSimulate(t, hs.URL, slow(9001), false); code != http.StatusAccepted {
		t.Fatalf("first slow job: status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := srv.MetricsSnapshot()
		if m.Workers.Busy == 1 && m.Queue.BulkDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never picked up the slow job: %+v", m.Queue)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Second job fills the class's one queue slot.
	if _, code := postSimulate(t, hs.URL, slow(9002), false); code != http.StatusAccepted {
		t.Fatalf("queued job: status %d", code)
	}

	// Third job is shed: 429 plus a parseable, positive Retry-After.
	body, _ := json.Marshal(slow(9003))
	resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	m := srv.MetricsSnapshot()
	if m.Queue.ShedBulk != 1 || m.Queue.ShedInteractive != 0 {
		t.Fatalf("shed counters = %d/%d, want 1 bulk", m.Queue.ShedBulk, m.Queue.ShedInteractive)
	}
}

// TestServerDrainStreamTerminal verifies an SSE stream open across
// BeginDrain ends with an explicit terminal event (shutdown or done),
// never a mid-stream EOF.
func TestServerDrainStreamTerminal(t *testing.T) {
	srv, hs := newTestServer(t, Options{Workers: 1, StreamInterval: 10 * time.Millisecond})
	waitReady(t, srv)

	big := Request{GPU: "G8", PIM: "P1", Policy: "fcfs", Full: true, Seed: 7001}
	view, code := postSimulate(t, hs.URL, big, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)

	// Read one progress event, then begin the drain mid-stream.
	events := make(chan string, 16)
	go func() {
		defer close(events)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") {
				events <- strings.TrimPrefix(line, "event: ")
			}
		}
	}()
	select {
	case ev := <-events:
		if ev != "job" {
			t.Fatalf("first stream event %q, want job", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no stream event before drain")
	}
	srv.BeginDrain()

	last := ""
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				if last != "shutdown" && last != "done" {
					t.Fatalf("stream ended after %q, want a terminal shutdown/done event", last)
				}
				if err := sc.Err(); err != nil {
					t.Fatalf("stream read: %v", err)
				}
				return
			}
			last = ev
		case <-deadline:
			t.Fatal("stream did not terminate after BeginDrain")
		}
	}
}

// TestServerMetricsExposeRobustness asserts the robustness fields ride
// the public /metrics JSON: readiness, degraded flag, per-class shed
// counts, and the store's replay/skip/compaction counters.
func TestServerMetricsExposeRobustness(t *testing.T) {
	srv, hs := newTestServer(t, Options{Workers: 1, StoreDir: t.TempDir()})
	waitReady(t, srv)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics payload: %v", err)
	}

	for _, key := range []string{"ready", "degraded", "queue", "cache", "store"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	queue, _ := m["queue"].(map[string]any)
	for _, key := range []string{"shed_interactive", "shed_bulk"} {
		if _, ok := queue[key]; !ok {
			t.Errorf("metrics queue missing %q", key)
		}
	}
	cache, _ := m["cache"].(map[string]any)
	for _, key := range []string{"warm_loaded", "warm_hits", "warm_hit_rate"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("metrics cache missing %q", key)
		}
	}
	st, _ := m["store"].(map[string]any)
	for _, key := range []string{"enabled", "entries", "bytes", "replayed",
		"skipped_corrupt", "skipped_verify", "persisted", "compactions", "degraded"} {
		if _, ok := st[key]; !ok {
			t.Errorf("metrics store missing %q", key)
		}
	}
	if st["enabled"] != true {
		t.Errorf("store.enabled = %v, want true with StoreDir set", st["enabled"])
	}
	if m["ready"] != true {
		t.Errorf("ready = %v, want true", m["ready"])
	}
}
