package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testRequest is a fast competitive cell for handler tests.
func testRequest() Request {
	return Request{
		GPU:          "G8",
		PIM:          "P1",
		Policy:       "fcfs",
		Scale:        0.02,
		MaxGPUCycles: 2_000_000,
	}
}

func postSimulate(t *testing.T, url string, req Request, wait bool) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	u := url + "/v1/simulate"
	if wait {
		u += "?wait=1"
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return view, resp.StatusCode
}

func getJob(t *testing.T, url, id string) (JobView, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
	}
	return view, resp.StatusCode
}

func waitTerminal(t *testing.T, url, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		view, code := getJob(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		switch view.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return view
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal status", id)
	return JobView{}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func TestServerSimulateAndCache(t *testing.T) {
	srv, hs := newTestServer(t, Options{Workers: 2})

	// Cold request computes.
	v1, code := postSimulate(t, hs.URL, testRequest(), true)
	if code != http.StatusOK {
		t.Fatalf("POST status %d", code)
	}
	if v1.Status != StatusDone || v1.Cached || len(v1.Result) == 0 {
		t.Fatalf("first run: %+v", v1)
	}
	var res Result
	if err := json.Unmarshal(v1.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.Competitive == nil || res.Digest != v1.Digest {
		t.Fatalf("result = %+v, want competitive metrics under digest %s", res, v1.Digest)
	}

	// The identical request is served from the cache, byte-identical.
	v2, _ := postSimulate(t, hs.URL, testRequest(), true)
	if v2.Status != StatusDone || !v2.Cached {
		t.Fatalf("duplicate run not cached: %+v", v2)
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatalf("cache hit returned different bytes:\n%s\n%s", v1.Result, v2.Result)
	}

	// An alias spelling shares the digest and therefore the cache entry.
	alias := testRequest()
	alias.GPU, alias.Policy, alias.Engine = "g8", "FCFS", "tick"
	v3, _ := postSimulate(t, hs.URL, alias, true)
	if v3.Digest != v1.Digest || !v3.Cached || !bytes.Equal(v1.Result, v3.Result) {
		t.Fatalf("alias request missed the cache: digest %s vs %s, cached %v", v3.Digest, v1.Digest, v3.Cached)
	}

	m := srv.MetricsSnapshot()
	if m.Cache.Misses != 1 || m.Cache.Hits+m.Cache.Joins != 2 {
		t.Fatalf("cache stats = %+v, want 1 miss / 2 served", m.Cache)
	}
	if m.Jobs.Done != 3 || m.Jobs.Cached != 2 {
		t.Fatalf("job stats = %+v", m.Jobs)
	}
}

// TestServerEvictionRecompute forces eviction with a single-entry cache
// and checks a recomputed result is byte-identical to the first run —
// the determinism property the cache design rests on, measured through
// the full service path.
func TestServerEvictionRecompute(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 2, CacheEntries: 1})

	reqA := testRequest()
	reqB := testRequest()
	reqB.Policy = "fr-fcfs"

	v1, _ := postSimulate(t, hs.URL, reqA, true)
	if v1.Status != StatusDone {
		t.Fatalf("run A: %+v", v1)
	}
	vB, _ := postSimulate(t, hs.URL, reqB, true)
	if vB.Status != StatusDone {
		t.Fatalf("run B: %+v", vB)
	}
	// B evicted A; the same request now recomputes from scratch.
	v2, _ := postSimulate(t, hs.URL, reqA, true)
	if v2.Status != StatusDone || v2.Cached {
		t.Fatalf("run A after eviction: %+v, want a fresh computation", v2)
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatalf("recomputed result differs from the original:\n%s\n%s", v1.Result, v2.Result)
	}
}

func TestServerStandaloneKinds(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 2})
	for _, req := range []Request{
		{Kind: KindStandaloneGPU, GPU: "G8", Scale: 0.02, MaxGPUCycles: 2_000_000},
		{Kind: KindStandalonePIM, PIM: "P1", Scale: 0.02, MaxGPUCycles: 2_000_000},
	} {
		v, code := postSimulate(t, hs.URL, req, true)
		if code != http.StatusOK || v.Status != StatusDone {
			t.Fatalf("%s: status %d view %+v", req.Kind, code, v)
		}
		var res Result
		if err := json.Unmarshal(v.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Standalone == nil || res.Standalone.Cycles == 0 {
			t.Fatalf("%s: result %+v, want standalone cycles", req.Kind, res)
		}
	}
}

func TestServerAsyncAndStream(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1, StreamInterval: 10 * time.Millisecond})

	req := testRequest()
	req.Seed = 4242 // private digest so the cache cannot short-circuit
	view, code := postSimulate(t, hs.URL, req, false)
	if code != http.StatusAccepted {
		t.Fatalf("async POST status %d", code)
	}
	if view.Status != StatusQueued && view.Status != StatusRunning && view.Status != StatusDone {
		t.Fatalf("async view: %+v", view)
	}

	// The SSE stream must end with a done event carrying the result.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var events, doneEvents int
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events++
			if event == "done" {
				doneEvents++
			}
		case strings.HasPrefix(line, "data: ") && event == "done":
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if doneEvents != 1 {
		t.Fatalf("saw %d done events in %d events, want exactly 1", doneEvents, events)
	}
	var final JobView
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatalf("done event payload: %v", err)
	}
	if final.Status != StatusDone || len(final.Result) == 0 {
		t.Fatalf("final stream view: %+v", final)
	}
}

func TestServerCancelJob(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})

	// A paper-scale cell runs for far longer than this test; cancel must
	// cut it short (queued or mid-simulation) without caching anything.
	big := Request{GPU: "G8", PIM: "P1", Policy: "fcfs", Full: true, Seed: 1001}
	victim, code := postSimulate(t, hs.URL, big, false)
	if code != http.StatusAccepted {
		t.Fatalf("big POST status %d", code)
	}
	resp, err := newDeleteRequest(hs.URL + "/v1/jobs/" + victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp != http.StatusOK {
		t.Fatalf("DELETE status %d", resp)
	}
	if v := waitTerminal(t, hs.URL, victim.ID); v.Status != StatusCanceled {
		t.Fatalf("canceled job reached %q: %s", v.Status, v.Error)
	}

	// The worker freed by the cancellation still serves new jobs, and
	// the abandoned digest recomputes instead of replaying the failure.
	after := testRequest()
	after.Seed = 1002
	if v, _ := postSimulate(t, hs.URL, after, true); v.Status != StatusDone {
		t.Fatalf("post-cancel job reached %q: %s", v.Status, v.Error)
	}
}

func newDeleteRequest(url string) (int, error) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func TestServerRejects(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1, MaxScale: 0.1})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{`, http.StatusBadRequest},
		{"unknown-field", `{"gpu":"G8","pim":"P1","policy":"fcfs","warp":9}`, http.StatusBadRequest},
		{"bad-policy", `{"gpu":"G8","pim":"P1","policy":"magic"}`, http.StatusBadRequest},
		{"over-scale", `{"gpu":"G8","pim":"P1","policy":"fcfs","scale":0.5}`, http.StatusBadRequest},
		{"bad-priority", `{"gpu":"G8","pim":"P1","policy":"fcfs","priority":"urgent"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if _, code := getJob(t, hs.URL, "j-99999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	var m Metrics
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Errorf("metrics payload: %v", err)
	}
	if m.Workers.Total != 1 {
		t.Errorf("metrics workers = %+v", m.Workers)
	}
}

// TestServerCloseMarksQueuedJobs verifies shutdown drains the queue:
// jobs still queued when Close runs end as canceled, not stuck.
func TestServerCloseMarksQueuedJobs(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var jobs []*Job
	for i := 0; i < 4; i++ {
		req := testRequest()
		req.Seed = int64(2000 + i)
		c := mustCanon(t, req)
		j := srv.newJob(c, ClassBulk, 0)
		entry, out := srv.cache.Lookup(j.Digest)
		if out != OutcomeMiss {
			t.Fatalf("job %d: outcome %v", i, out)
		}
		j.entry = entry
		if err := srv.q.Push(j); err != nil {
			t.Fatalf("push %d failed: %v", i, err)
		}
		jobs = append(jobs, j)
	}

	srv.Close()
	for i, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %d not terminal after Close", i)
		}
		v := j.View(false)
		if v.Status != StatusCanceled && v.Status != StatusDone {
			t.Fatalf("job %d status %q after Close", i, v.Status)
		}
	}
}
