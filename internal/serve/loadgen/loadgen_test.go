package loadgen

import (
	"reflect"
	"testing"

	"repro/internal/serve"
)

// TestBuildScheduleDeterministic: the schedule is a pure function of the
// profile, so repeated builds are identical — the property that makes
// load runs comparable across machines and CI runs.
func TestBuildScheduleDeterministic(t *testing.T) {
	p := Short()
	a := BuildSchedule(p)
	b := BuildSchedule(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BuildSchedule is not deterministic for a fixed profile")
	}

	p2 := p
	p2.Seed++
	c := BuildSchedule(p2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("BuildSchedule ignores the profile seed")
	}
}

func TestBuildScheduleShape(t *testing.T) {
	p := Short()
	reqs := BuildSchedule(p)
	if len(reqs) != p.Requests {
		t.Fatalf("schedule has %d requests, want %d", len(reqs), p.Requests)
	}

	var cold, bulk int
	digests := map[string]bool{}
	for i, r := range reqs {
		if r.Seed != 0 {
			cold++
		}
		if r.Priority == serve.PriorityBulk {
			bulk++
		}
		c, err := serve.Canonicalize(r)
		if err != nil {
			t.Fatalf("request %d does not canonicalize: %v", i, err)
		}
		digests[c.Digest()] = true
	}

	// Roughly DupFraction of requests duplicate the hot set; the rest
	// carry unique seeds. Allow generous slack around the expectation.
	wantCold := float64(p.Requests) * (1 - p.DupFraction)
	if float64(cold) < wantCold*0.4 || float64(cold) > wantCold*2.5 {
		t.Errorf("%d cold requests, expected about %.0f", cold, wantCold)
	}
	if bulk == 0 || bulk == p.Requests {
		t.Errorf("bulk mix degenerate: %d of %d", bulk, p.Requests)
	}
	// Unique digests = hot set + one per cold request.
	if want := p.HotSet + cold; len(digests) != want {
		t.Errorf("%d unique digests, want %d (hot %d + cold %d)", len(digests), want, p.HotSet, cold)
	}
}
