package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/serve"
)

// TestBuildScheduleDeterministic: the schedule is a pure function of the
// profile, so repeated builds are identical — the property that makes
// load runs comparable across machines and CI runs.
func TestBuildScheduleDeterministic(t *testing.T) {
	p := Short()
	a := BuildSchedule(p)
	b := BuildSchedule(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BuildSchedule is not deterministic for a fixed profile")
	}

	p2 := p
	p2.Seed++
	c := BuildSchedule(p2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("BuildSchedule ignores the profile seed")
	}
}

func TestBuildScheduleShape(t *testing.T) {
	p := Short()
	reqs := BuildSchedule(p)
	if len(reqs) != p.Requests {
		t.Fatalf("schedule has %d requests, want %d", len(reqs), p.Requests)
	}

	var cold, bulk int
	digests := map[string]bool{}
	for i, r := range reqs {
		if r.Seed != 0 {
			cold++
		}
		if r.Priority == serve.PriorityBulk {
			bulk++
		}
		c, err := serve.Canonicalize(r)
		if err != nil {
			t.Fatalf("request %d does not canonicalize: %v", i, err)
		}
		digests[c.Digest()] = true
	}

	// Roughly DupFraction of requests duplicate the hot set; the rest
	// carry unique seeds. Allow generous slack around the expectation.
	wantCold := float64(p.Requests) * (1 - p.DupFraction)
	if float64(cold) < wantCold*0.4 || float64(cold) > wantCold*2.5 {
		t.Errorf("%d cold requests, expected about %.0f", cold, wantCold)
	}
	if bulk == 0 || bulk == p.Requests {
		t.Errorf("bulk mix degenerate: %d of %d", bulk, p.Requests)
	}
	// Unique digests = hot set + one per cold request.
	if want := p.HotSet + cold; len(digests) != want {
		t.Errorf("%d unique digests, want %d (hot %d + cold %d)", len(digests), want, p.HotSet, cold)
	}
}

// TestRunRetriesSheddedRequests stands up a stub server that sheds the
// first attempt of every submit with 429 and serves the retry, then
// checks Run recovers every request and accounts the retries — the
// client half of the admission-control contract.
func TestRunRetriesSheddedRequests(t *testing.T) {
	var attempts int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			fmt.Fprint(w, `{"cache":{"hit_rate":1}}`)
			return
		}
		if atomic.AddInt64(&attempts, 1)%2 == 1 {
			w.Header().Set("Retry-After", "0") // unparseable-as-positive: pure backoff
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"serve: queue full"}`)
			return
		}
		fmt.Fprint(w, `{"id":"j-1","status":"done","digest":"d1","result":{"ok":true}}`)
	}))
	defer hs.Close()

	p := Profile{Requests: 3, Concurrency: 1, HotSet: 1, Scale: 0.02, MaxRetries: 2, Seed: 7}
	rep, err := Run(context.Background(), nil, hs.URL, p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed != 0 || rep.Succeeded != p.Requests {
		t.Fatalf("report %+v, want every shed request recovered by retry", rep)
	}
	if rep.Retries != p.Requests {
		t.Fatalf("retries = %d, want %d (one per request)", rep.Retries, p.Requests)
	}
}

// TestRunRetriesExhausted: with retries disabled a shed request is a
// failure, not an infinite loop.
func TestRunRetriesExhausted(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			fmt.Fprint(w, `{"cache":{"hit_rate":0}}`)
			return
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"serve: queue full"}`)
	}))
	defer hs.Close()

	p := Profile{Requests: 2, Concurrency: 1, HotSet: 1, Scale: 0.02, MaxRetries: 0, Seed: 7}
	rep, err := Run(context.Background(), nil, hs.URL, p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed != p.Requests || rep.Retries != 0 {
		t.Fatalf("report %+v, want every request failed without retries", rep)
	}
}
