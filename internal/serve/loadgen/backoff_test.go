package loadgen

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestPostCancelDuringBackoff pins the stoppable-timer backoff: a shed
// request parks the worker for the server's Retry-After (30s here), and
// canceling the run must end the wait immediately instead of sleeping
// it out — the ctxflow discipline, checked at runtime.
func TestPostCancelDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	_, _, err := post(ctx, srv.Client(), srv.URL,
		serve.Request{Kind: serve.KindCompetitive}, 3, rand.New(rand.NewSource(1)))
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("post returned nil error after cancellation mid-backoff")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("post took %v to notice cancellation; the backoff must race ctx.Done()", elapsed)
	}
}
