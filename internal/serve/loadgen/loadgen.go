// Package loadgen drives a pimserve instance with a reproducible mixed
// workload — hot duplicates, cold unique configs, interactive and bulk
// priorities — and checks the service invariants the CI gate enforces:
// no failures, byte-identical results per digest across cache hits and
// misses, and a cache hit rate matching the duplicate fraction.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/serve"
)

// Profile shapes a load run. The schedule it generates is a pure
// function of the profile (all randomness flows from Seed), so two runs
// against equivalent servers issue the same requests in the same order.
type Profile struct {
	// Requests is the total request count.
	Requests int
	// Concurrency is the number of client goroutines.
	Concurrency int
	// DupFraction in [0,1] is the fraction of requests drawn from the
	// hot set (duplicates of each other); the rest get unique seeds.
	DupFraction float64
	// HotSet bounds the number of distinct hot configurations.
	HotSet int
	// BulkFraction in [0,1] is the fraction submitted at bulk priority.
	BulkFraction float64
	// Scale is the workload scale of every request.
	Scale float64
	// MaxGPUCycles bounds each simulation (0 = server-side default).
	MaxGPUCycles uint64
	// TimeoutMS is the per-job timeout sent with each request.
	TimeoutMS int64
	// Seed drives the schedule's RNG.
	Seed int64
	// MaxRetries bounds per-request retries on 429/503 responses and
	// transport errors. Retries honor the server's Retry-After header
	// when present and otherwise back off exponentially with jitter
	// (seeded per worker, so schedules stay reproducible).
	MaxRetries int
}

// Short returns the CI smoke profile: small enough to finish in tens of
// seconds under -race, large enough to exercise dedup, priorities and
// eviction-free steady state.
func Short() Profile {
	return Profile{
		Requests:     600,
		Concurrency:  24,
		DupFraction:  0.95,
		HotSet:       12,
		BulkFraction: 0.3,
		Scale:        0.02,
		MaxGPUCycles: 2_500_000,
		TimeoutMS:    120_000,
		Seed:         1,
		MaxRetries:   3,
	}
}

func (p Profile) withDefaults() Profile {
	if p.Requests <= 0 {
		p.Requests = 100
	}
	if p.Concurrency <= 0 {
		p.Concurrency = 8
	}
	if p.HotSet <= 0 {
		p.HotSet = 8
	}
	if p.Scale <= 0 {
		p.Scale = 0.02
	}
	return p
}

// hot configuration space the generator draws from.
var (
	hotGPUs     = []string{"G4", "G8", "G17"}
	hotPIMs     = []string{"P1", "P2"}
	hotPolicies = []string{"fcfs", "fr-fcfs", "f3fs"}
	hotModes    = []string{"VC1", "VC2"}
)

// BuildSchedule expands a profile into its deterministic request list.
// Requests[i] is identical across calls with the same profile.
func BuildSchedule(p Profile) []serve.Request {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	hot := make([]serve.Request, 0, p.HotSet)
	for i := 0; len(hot) < p.HotSet; i++ {
		hot = append(hot, serve.Request{
			Kind:         serve.KindCompetitive,
			GPU:          hotGPUs[i%len(hotGPUs)],
			PIM:          hotPIMs[(i/len(hotGPUs))%len(hotPIMs)],
			Policy:       hotPolicies[(i/(len(hotGPUs)*len(hotPIMs)))%len(hotPolicies)],
			Mode:         hotModes[(i/(len(hotGPUs)*len(hotPIMs)*len(hotPolicies)))%len(hotModes)],
			Scale:        p.Scale,
			MaxGPUCycles: p.MaxGPUCycles,
			TimeoutMS:    p.TimeoutMS,
		})
	}

	reqs := make([]serve.Request, p.Requests)
	for i := range reqs {
		if rng.Float64() < p.DupFraction {
			reqs[i] = hot[rng.Intn(len(hot))]
		} else {
			// Cold request: a hot shape with a unique seed, so it costs
			// the same to simulate but can never share a digest.
			r := hot[rng.Intn(len(hot))]
			r.Seed = 1000 + int64(i)
			reqs[i] = r
		}
		if rng.Float64() < p.BulkFraction {
			reqs[i].Priority = serve.PriorityBulk
		} else {
			reqs[i].Priority = serve.PriorityInteractive
		}
	}
	return reqs
}

// Report summarizes a load run.
type Report struct {
	Requests      int `json:"requests"`
	Succeeded     int `json:"succeeded"`
	Failed        int `json:"failed"`
	CacheServed   int `json:"cache_served"`
	UniqueDigests int `json:"unique_digests"`
	// Mismatches counts digests whose responses were not byte-identical
	// across all requests that produced them — always 0 on a healthy
	// deterministic server.
	Mismatches int `json:"mismatches"`
	// Retries counts requests re-sent after a 429/503 or transport
	// error; a request that eventually succeeds counts as Succeeded.
	Retries int           `json:"retries"`
	Elapsed time.Duration `json:"elapsed_ns"`
	RPS     float64       `json:"rps"`
	// HitRate is the server-reported cache hit rate after the run.
	HitRate float64 `json:"hit_rate"`
	// Errors holds the first few failure messages for diagnosis.
	Errors []string `json:"errors,omitempty"`
}

// Run fires the profile's schedule at baseURL with p.Concurrency client
// goroutines, each POSTing /v1/simulate?wait=1, and cross-checks every
// response against all other responses for the same digest.
func Run(ctx context.Context, client *http.Client, baseURL string, p Profile) (Report, error) {
	p = p.withDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	reqs := BuildSchedule(p)

	var (
		mu       sync.Mutex
		rep      Report
		byDigest = map[string][]byte{}
		mismatch = map[string]bool{}
	)
	rep.Requests = len(reqs)

	work := make(chan serve.Request)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < p.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker jitter source: retries stay reproducible without
			// the workers contending on one locked RNG.
			rng := rand.New(rand.NewSource(p.Seed<<16 + int64(w)))
			for req := range work {
				view, retries, err := post(ctx, client, baseURL, req, p.MaxRetries, rng)
				mu.Lock()
				rep.Retries += retries
				switch {
				case err != nil:
					rep.Failed++
					if len(rep.Errors) < 5 {
						rep.Errors = append(rep.Errors, err.Error())
					}
				case view.Status != "done":
					rep.Failed++
					if len(rep.Errors) < 5 {
						rep.Errors = append(rep.Errors,
							fmt.Sprintf("job %s: status %s: %s", view.ID, view.Status, view.Error))
					}
				default:
					rep.Succeeded++
					if view.Cached {
						rep.CacheServed++
					}
					if prev, ok := byDigest[view.Digest]; !ok {
						byDigest[view.Digest] = view.Result
					} else if !bytes.Equal(prev, view.Result) {
						mismatch[view.Digest] = true
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	for _, req := range reqs {
		select {
		case work <- req:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return rep, ctx.Err()
		}
	}
	close(work)
	wg.Wait()

	rep.Elapsed = time.Since(start)
	rep.UniqueDigests = len(byDigest)
	rep.Mismatches = len(mismatch)
	if s := rep.Elapsed.Seconds(); s > 0 {
		rep.RPS = float64(rep.Succeeded) / s
	}

	var metrics serve.Metrics
	if err := getJSON(ctx, client, baseURL+"/metrics", &metrics); err != nil {
		return rep, fmt.Errorf("loadgen: fetch metrics: %w", err)
	}
	rep.HitRate = metrics.Cache.HitRate
	return rep, nil
}

// post submits one request, retrying up to maxRetries times on shed
// (429) and unavailable (503) responses and on transport errors. The
// wait between attempts is exponential with jitter, raised to the
// server's Retry-After when it sends one. Returns the retry count it
// spent alongside the final outcome.
func post(ctx context.Context, client *http.Client, baseURL string, req serve.Request, maxRetries int, rng *rand.Rand) (serve.JobView, int, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		view, retryAfter, err := postOnce(ctx, client, baseURL, req)
		if err == nil {
			return view, attempt, nil
		}
		lastErr = err
		if retryAfter < 0 || attempt >= maxRetries || ctx.Err() != nil {
			return serve.JobView{}, attempt, lastErr
		}
		// Exponential backoff with full jitter, floored at the server's
		// Retry-After hint so shed clients never hammer early.
		backoff := time.Duration(100<<attempt) * time.Millisecond
		if backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
		delay := time.Duration(rng.Int63n(int64(backoff) + 1))
		if retryAfter > delay {
			delay = retryAfter
		}
		// A stoppable timer rather than time.After: a canceled run exits
		// the backoff immediately and releases the timer, instead of
		// leaving a Retry-After-sized timer (seconds) live per worker.
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return serve.JobView{}, attempt, ctx.Err()
		}
	}
}

// postOnce performs a single submit. A negative retryAfter means the
// failure is not retryable; zero means retryable with no server hint.
func postOnce(ctx context.Context, client *http.Client, baseURL string, req serve.Request) (view serve.JobView, retryAfter time.Duration, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobView{}, -1, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v1/simulate?wait=1", bytes.NewReader(body))
	if err != nil {
		return serve.JobView{}, -1, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		// Transport errors (connection refused mid-restart, reset) are
		// retryable unless the context itself is done.
		if ctx.Err() != nil {
			return serve.JobView{}, -1, err
		}
		return serve.JobView{}, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.JobView{}, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("POST /v1/simulate: %s: %s", resp.Status, bytes.TrimSpace(data))
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			after := time.Duration(0)
			if sec, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && sec > 0 {
				after = time.Duration(sec) * time.Second
			}
			return serve.JobView{}, after, err
		default:
			return serve.JobView{}, -1, err
		}
	}
	if err := json.Unmarshal(data, &view); err != nil {
		return serve.JobView{}, -1, err
	}
	return view, -1, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
