// Package loadgen drives a pimserve instance with a reproducible mixed
// workload — hot duplicates, cold unique configs, interactive and bulk
// priorities — and checks the service invariants the CI gate enforces:
// no failures, byte-identical results per digest across cache hits and
// misses, and a cache hit rate matching the duplicate fraction.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// Profile shapes a load run. The schedule it generates is a pure
// function of the profile (all randomness flows from Seed), so two runs
// against equivalent servers issue the same requests in the same order.
type Profile struct {
	// Requests is the total request count.
	Requests int
	// Concurrency is the number of client goroutines.
	Concurrency int
	// DupFraction in [0,1] is the fraction of requests drawn from the
	// hot set (duplicates of each other); the rest get unique seeds.
	DupFraction float64
	// HotSet bounds the number of distinct hot configurations.
	HotSet int
	// BulkFraction in [0,1] is the fraction submitted at bulk priority.
	BulkFraction float64
	// Scale is the workload scale of every request.
	Scale float64
	// MaxGPUCycles bounds each simulation (0 = server-side default).
	MaxGPUCycles uint64
	// TimeoutMS is the per-job timeout sent with each request.
	TimeoutMS int64
	// Seed drives the schedule's RNG.
	Seed int64
}

// Short returns the CI smoke profile: small enough to finish in tens of
// seconds under -race, large enough to exercise dedup, priorities and
// eviction-free steady state.
func Short() Profile {
	return Profile{
		Requests:     600,
		Concurrency:  24,
		DupFraction:  0.95,
		HotSet:       12,
		BulkFraction: 0.3,
		Scale:        0.02,
		MaxGPUCycles: 2_500_000,
		TimeoutMS:    120_000,
		Seed:         1,
	}
}

func (p Profile) withDefaults() Profile {
	if p.Requests <= 0 {
		p.Requests = 100
	}
	if p.Concurrency <= 0 {
		p.Concurrency = 8
	}
	if p.HotSet <= 0 {
		p.HotSet = 8
	}
	if p.Scale <= 0 {
		p.Scale = 0.02
	}
	return p
}

// hot configuration space the generator draws from.
var (
	hotGPUs     = []string{"G4", "G8", "G17"}
	hotPIMs     = []string{"P1", "P2"}
	hotPolicies = []string{"fcfs", "fr-fcfs", "f3fs"}
	hotModes    = []string{"VC1", "VC2"}
)

// BuildSchedule expands a profile into its deterministic request list.
// Requests[i] is identical across calls with the same profile.
func BuildSchedule(p Profile) []serve.Request {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	hot := make([]serve.Request, 0, p.HotSet)
	for i := 0; len(hot) < p.HotSet; i++ {
		hot = append(hot, serve.Request{
			Kind:         serve.KindCompetitive,
			GPU:          hotGPUs[i%len(hotGPUs)],
			PIM:          hotPIMs[(i/len(hotGPUs))%len(hotPIMs)],
			Policy:       hotPolicies[(i/(len(hotGPUs)*len(hotPIMs)))%len(hotPolicies)],
			Mode:         hotModes[(i/(len(hotGPUs)*len(hotPIMs)*len(hotPolicies)))%len(hotModes)],
			Scale:        p.Scale,
			MaxGPUCycles: p.MaxGPUCycles,
			TimeoutMS:    p.TimeoutMS,
		})
	}

	reqs := make([]serve.Request, p.Requests)
	for i := range reqs {
		if rng.Float64() < p.DupFraction {
			reqs[i] = hot[rng.Intn(len(hot))]
		} else {
			// Cold request: a hot shape with a unique seed, so it costs
			// the same to simulate but can never share a digest.
			r := hot[rng.Intn(len(hot))]
			r.Seed = 1000 + int64(i)
			reqs[i] = r
		}
		if rng.Float64() < p.BulkFraction {
			reqs[i].Priority = serve.PriorityBulk
		} else {
			reqs[i].Priority = serve.PriorityInteractive
		}
	}
	return reqs
}

// Report summarizes a load run.
type Report struct {
	Requests      int `json:"requests"`
	Succeeded     int `json:"succeeded"`
	Failed        int `json:"failed"`
	CacheServed   int `json:"cache_served"`
	UniqueDigests int `json:"unique_digests"`
	// Mismatches counts digests whose responses were not byte-identical
	// across all requests that produced them — always 0 on a healthy
	// deterministic server.
	Mismatches int           `json:"mismatches"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	RPS        float64       `json:"rps"`
	// HitRate is the server-reported cache hit rate after the run.
	HitRate float64 `json:"hit_rate"`
	// Errors holds the first few failure messages for diagnosis.
	Errors []string `json:"errors,omitempty"`
}

// Run fires the profile's schedule at baseURL with p.Concurrency client
// goroutines, each POSTing /v1/simulate?wait=1, and cross-checks every
// response against all other responses for the same digest.
func Run(ctx context.Context, client *http.Client, baseURL string, p Profile) (Report, error) {
	p = p.withDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	reqs := BuildSchedule(p)

	var (
		mu       sync.Mutex
		rep      Report
		byDigest = map[string][]byte{}
		mismatch = map[string]bool{}
	)
	rep.Requests = len(reqs)

	work := make(chan serve.Request)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < p.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				view, err := post(ctx, client, baseURL, req)
				mu.Lock()
				switch {
				case err != nil:
					rep.Failed++
					if len(rep.Errors) < 5 {
						rep.Errors = append(rep.Errors, err.Error())
					}
				case view.Status != "done":
					rep.Failed++
					if len(rep.Errors) < 5 {
						rep.Errors = append(rep.Errors,
							fmt.Sprintf("job %s: status %s: %s", view.ID, view.Status, view.Error))
					}
				default:
					rep.Succeeded++
					if view.Cached {
						rep.CacheServed++
					}
					if prev, ok := byDigest[view.Digest]; !ok {
						byDigest[view.Digest] = view.Result
					} else if !bytes.Equal(prev, view.Result) {
						mismatch[view.Digest] = true
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, req := range reqs {
		select {
		case work <- req:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return rep, ctx.Err()
		}
	}
	close(work)
	wg.Wait()

	rep.Elapsed = time.Since(start)
	rep.UniqueDigests = len(byDigest)
	rep.Mismatches = len(mismatch)
	if s := rep.Elapsed.Seconds(); s > 0 {
		rep.RPS = float64(rep.Succeeded) / s
	}

	var metrics serve.Metrics
	if err := getJSON(ctx, client, baseURL+"/metrics", &metrics); err != nil {
		return rep, fmt.Errorf("loadgen: fetch metrics: %w", err)
	}
	rep.HitRate = metrics.Cache.HitRate
	return rep, nil
}

func post(ctx context.Context, client *http.Client, baseURL string, req serve.Request) (serve.JobView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobView{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v1/simulate?wait=1", bytes.NewReader(body))
	if err != nil {
		return serve.JobView{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return serve.JobView{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.JobView{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return serve.JobView{}, fmt.Errorf("POST /v1/simulate: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var view serve.JobView
	if err := json.Unmarshal(data, &view); err != nil {
		return serve.JobView{}, err
	}
	return view, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
