package serve_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

// TestServeSmoke is the CI load/serve gate (make serve-smoke): boot a
// real pimserve over loopback, fire the short mixed-load profile at it,
// and assert the service invariants —
//
//   - every request succeeds;
//   - responses for one digest are byte-identical whether they came
//     from a fresh simulation, a single-flight join, or a cache hit;
//   - the cache hit rate reflects the duplicate fraction (>= 0.90 on a
//     95%-duplicate stream);
//   - graceful shutdown leaks no goroutines.
//
// It runs under -race in CI, which is what makes the "zero
// cross-request state leakage" claim a checked property instead of a
// design intention.
func TestServeSmoke(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv, err := serve.New(serve.Options{})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())

	p := loadgen.Short()
	if testing.Short() {
		p.Requests = 150
		p.Concurrency = 12
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	client := &http.Client{Timeout: 3 * time.Minute}
	rep, err := loadgen.Run(ctx, client, hs.URL, p)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	t.Logf("loadgen: %d requests in %v (%.1f rps), %d unique digests, hit rate %.3f",
		rep.Succeeded, rep.Elapsed.Round(time.Millisecond), rep.RPS, rep.UniqueDigests, rep.HitRate)

	if rep.Failed > 0 {
		t.Fatalf("%d requests failed: %v", rep.Failed, rep.Errors)
	}
	if rep.Succeeded != rep.Requests {
		t.Fatalf("succeeded %d of %d", rep.Succeeded, rep.Requests)
	}
	if rep.Mismatches > 0 {
		t.Fatalf("%d digests returned non-identical bytes across requests", rep.Mismatches)
	}
	if rep.UniqueDigests < p.HotSet {
		t.Fatalf("only %d unique digests, expected at least the %d-entry hot set",
			rep.UniqueDigests, p.HotSet)
	}
	// Single-flight plus an eviction-free cache must serve every
	// duplicate from one computation: the achieved hit rate equals the
	// schedule's ideal (1 - unique/requests) exactly. The full profile's
	// ideal clears the ISSUE bar of 0.90 on its 95%-duplicate stream;
	// the -short profile is too small for 0.90 to be attainable, so it
	// is held to its own (lower) ideal instead.
	ideal := 1 - float64(rep.UniqueDigests)/float64(rep.Requests)
	if rep.HitRate < ideal-1e-9 {
		t.Fatalf("cache hit rate %.4f below the schedule ideal %.4f: duplicates recomputed",
			rep.HitRate, ideal)
	}
	if !testing.Short() && rep.HitRate < 0.90 {
		t.Fatalf("cache hit rate %.3f below 0.90 on a %.0f%%-duplicate stream",
			rep.HitRate, p.DupFraction*100)
	}

	// Graceful shutdown: HTTP first, then the worker pool; afterwards
	// the goroutine count must settle back to the baseline (plus slack
	// for the HTTP client's idle machinery).
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := hs.Config.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	hs.Close()
	srv.Close()
	client.CloseIdleConnections()

	const slack = 4
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after shutdown: %d goroutines, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
