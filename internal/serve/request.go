// Package serve implements pimserve, the simulation-as-a-service layer:
// an HTTP/JSON daemon that runs simulation requests from many concurrent
// clients on a bounded worker pool over the deterministic kernel, with a
// two-class priority queue (interactive single-cell probes ahead of bulk
// sweep traffic) and a content-addressed result cache.
//
// The cache is keyed by the digest of the *canonical* form of a request:
// every field is resolved to its effective value (defaults filled in,
// aliases normalized, irrelevant knobs elided), so two requests that mean
// the same simulation share one digest — and, because the simulator is
// deterministic (docs/DETERMINISM.md), may legally share one result.
// Duplicate in-flight requests are single-flighted onto one computation.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/workload"
)

// Request kinds: a contended co-execution cell or a standalone baseline.
const (
	KindCompetitive   = "competitive"
	KindStandaloneGPU = "standalone-gpu"
	KindStandalonePIM = "standalone-pim"
)

// Priority classes of the job queue. Interactive requests (single-cell
// probes from a user poking at the figure space) are always dequeued
// ahead of bulk requests (campaign/sweep traffic).
const (
	PriorityInteractive = "interactive"
	PriorityBulk        = "bulk"
)

// Request is the POST /v1/simulate body. Every simulation-identity field
// is optional except the kernel/policy identity its kind requires;
// omitted fields take the documented defaults, so sparse and fully
// spelled-out requests for the same simulation canonicalize identically.
type Request struct {
	// Kind selects the simulation: "competitive" (default; needs GPU,
	// PIM and Policy), "standalone-gpu" (needs GPU) or "standalone-pim"
	// (needs PIM).
	Kind string `json:"kind,omitempty"`
	// GPU and PIM name kernels by ID ("G8", "P1", case-insensitive) or
	// benchmark name ("streamcluster").
	GPU string `json:"gpu,omitempty"`
	PIM string `json:"pim,omitempty"`
	// Policy is the scheduling policy ("f3fs", ...; case-insensitive).
	Policy string `json:"policy,omitempty"`
	// Mode is the interconnect configuration: "VC1" (default) or "VC2",
	// case-insensitive.
	Mode string `json:"mode,omitempty"`
	// Scale shrinks every kernel uniformly; <= 0 means 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Engine selects the simulation core ("event" default, "tick").
	// The cores are proven bit-identical (docs/DETERMINISM.md), so the
	// engine does NOT enter the content digest.
	Engine string `json:"engine,omitempty"`
	// Seed overrides the workload randomness base (0 = config default).
	Seed int64 `json:"seed,omitempty"`
	// MaxGPUCycles overrides the convergence bound (0 = config default).
	MaxGPUCycles uint64 `json:"max_gpu_cycles,omitempty"`
	// MemCap and PIMCap override the F3FS per-mode bypass caps
	// (0 = config default).
	MemCap int `json:"mem_cap,omitempty"`
	PIMCap int `json:"pim_cap,omitempty"`
	// Faults is a fault schedule in the CLI syntax, e.g.
	// "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000".
	Faults string `json:"faults,omitempty"`
	// Full selects the full Table I configuration instead of the scaled
	// one.
	Full bool `json:"full,omitempty"`

	// Service fields — they shape how the job is handled, not what is
	// simulated, and are excluded from the content digest.

	// Priority is "interactive" (default) or "bulk".
	Priority string `json:"priority,omitempty"`
	// TimeoutMS bounds this job's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Canonical is the fully-resolved identity of a simulation: request
// aliases and defaults collapse into one value here, and its JSON
// encoding (struct fields in declaration order — stable) is what the
// content digest hashes.
type Canonical struct {
	Kind   string  `json:"kind"`
	GPUID  string  `json:"gpu,omitempty"`
	PIMID  string  `json:"pim,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Mode   string  `json:"mode"`
	Scale  float64 `json:"scale"`
	// Cfg is the complete resolved configuration (seed, caps, fault
	// schedule, cycle budget, VC mode, ...). Cfg.Engine is forced to the
	// zero value: the two cores are bit-identical by the differential
	// gate, so engine choice must not split the cache.
	Cfg config.Config `json:"config"`

	// Engine is the core the job actually runs on — an execution detail
	// kept out of the digest (json:"-").
	Engine config.Engine `json:"-"`
}

// VCMode returns the resolved interconnect mode.
func (c Canonical) VCMode() config.VCMode {
	if c.Mode == "VC2" {
		return config.VC2
	}
	return config.VC1
}

// Digest returns the content address of the canonical request: the
// SHA-256 of its JSON encoding, in hex.
func (c Canonical) Digest() string {
	data, err := json.Marshal(c)
	if err != nil {
		// Canonical is a closed struct of marshalable fields; this is
		// unreachable, but never panic a serving daemon over it.
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// resolveKernelID maps a case-insensitive kernel ID or benchmark name to
// the canonical profile ID.
func resolveKernelID(raw string, gpu bool) (string, error) {
	id := strings.TrimSpace(raw)
	if gpu {
		p, err := workload.GPUProfileByID(id)
		if err != nil {
			p, err = workload.GPUProfileByID(strings.ToUpper(id))
		}
		if err != nil {
			return "", err
		}
		return p.ID, nil
	}
	p, err := workload.PIMProfileByID(id)
	if err != nil {
		p, err = workload.PIMProfileByID(strings.ToUpper(id))
	}
	if err != nil {
		return "", err
	}
	return p.ID, nil
}

// Canonicalize resolves a request into its canonical form, validating
// every field. Service fields (Priority, TimeoutMS) are ignored here.
func Canonicalize(req Request) (Canonical, error) {
	var c Canonical

	switch strings.ToLower(strings.TrimSpace(req.Kind)) {
	case "", KindCompetitive:
		c.Kind = KindCompetitive
	case KindStandaloneGPU:
		c.Kind = KindStandaloneGPU
	case KindStandalonePIM:
		c.Kind = KindStandalonePIM
	default:
		return Canonical{}, fmt.Errorf("serve: unknown kind %q (want %s, %s or %s)",
			req.Kind, KindCompetitive, KindStandaloneGPU, KindStandalonePIM)
	}

	var err error
	if c.Kind == KindCompetitive || c.Kind == KindStandaloneGPU {
		if strings.TrimSpace(req.GPU) == "" {
			return Canonical{}, fmt.Errorf("serve: kind %s requires a gpu kernel", c.Kind)
		}
		if c.GPUID, err = resolveKernelID(req.GPU, true); err != nil {
			return Canonical{}, fmt.Errorf("serve: %w", err)
		}
	}
	if c.Kind == KindCompetitive || c.Kind == KindStandalonePIM {
		if strings.TrimSpace(req.PIM) == "" {
			return Canonical{}, fmt.Errorf("serve: kind %s requires a pim kernel", c.Kind)
		}
		if c.PIMID, err = resolveKernelID(req.PIM, false); err != nil {
			return Canonical{}, fmt.Errorf("serve: %w", err)
		}
	}

	cfg := config.Scaled()
	if req.Full {
		cfg = config.Paper()
	}

	// Policy and interconnect mode matter only for the contended run;
	// standalone baselines always measure under FR-FCFS on VC1 (the
	// runner's definition), so those knobs are elided from the identity.
	if c.Kind == KindCompetitive {
		pol := strings.ToLower(strings.TrimSpace(req.Policy))
		if pol == "" {
			return Canonical{}, fmt.Errorf("serve: kind %s requires a policy", c.Kind)
		}
		if core.Factory(pol, cfg.Sched) == nil {
			return Canonical{}, fmt.Errorf("serve: unknown policy %q", req.Policy)
		}
		c.Policy = pol
		switch strings.ToUpper(strings.TrimSpace(req.Mode)) {
		case "", "VC1":
			c.Mode = "VC1"
		case "VC2":
			c.Mode = "VC2"
		default:
			return Canonical{}, fmt.Errorf("serve: unknown mode %q (want VC1 or VC2)", req.Mode)
		}
	} else {
		c.Mode = "VC1"
	}
	cfg.NoC.Mode = c.VCMode()

	c.Scale = req.Scale
	if c.Scale <= 0 {
		c.Scale = 1
	}

	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	if req.MaxGPUCycles > 0 {
		cfg.MaxGPUCycles = req.MaxGPUCycles
	}
	if req.MemCap > 0 {
		cfg.Sched.F3FSMemCap = req.MemCap
	}
	if req.PIMCap > 0 {
		cfg.Sched.F3FSPIMCap = req.PIMCap
	}
	if strings.TrimSpace(req.Faults) != "" {
		fs, err := faults.ParseSchedule(req.Faults)
		if err != nil {
			return Canonical{}, fmt.Errorf("serve: %w", err)
		}
		// Schedule seed 0 inherits the config seed at run time; resolve
		// that alias now so "seed=0,..." and "seed=<cfg seed>,..." share
		// a digest.
		if fs.Active() && fs.Seed == 0 {
			fs.Seed = cfg.Seed
		}
		cfg.Faults = fs
	}

	if c.Engine, err = config.ParseEngine(strings.ToLower(strings.TrimSpace(req.Engine))); err != nil {
		return Canonical{}, fmt.Errorf("serve: %w", err)
	}
	// The digest hashes the engine-free identity; Run uses c.Engine.
	cfg.Engine = config.EngineEvent

	if err := cfg.Validate(); err != nil {
		return Canonical{}, fmt.Errorf("serve: %w", err)
	}
	c.Cfg = cfg
	return c, nil
}

// ParseClass maps a request priority string to a queue class.
func ParseClass(priority string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(priority)) {
	case "", PriorityInteractive:
		return ClassInteractive, nil
	case PriorityBulk:
		return ClassBulk, nil
	default:
		return ClassInteractive, fmt.Errorf("serve: unknown priority %q (want %s or %s)",
			priority, PriorityInteractive, PriorityBulk)
	}
}
