package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve/store"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options configure a Server; zero values pick the documented defaults.
type Options struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// CacheEntries bounds the completed-result cache (default 4096).
	CacheEntries int
	// RunTimeout bounds each individual simulation inside a job,
	// reusing the campaign hardening (default 5m).
	RunTimeout time.Duration
	// JobTimeout bounds a whole job — queue wait plus every simulation
	// it needs (default 10m). Requests may shorten it per job.
	JobTimeout time.Duration
	// MaxScale rejects requests asking for larger workloads (default 1.0).
	MaxScale float64
	// MaxJobs bounds retained finished job records (default 16384).
	MaxJobs int
	// SampleInterval is the telemetry epoch, in GPU cycles, of the
	// per-job progress sampler (default 2048).
	SampleInterval uint64
	// StreamInterval is the SSE progress cadence (default 100ms).
	StreamInterval time.Duration

	// MaxQueueInteractive and MaxQueueBulk bound the per-class admission
	// queue depth (defaults 256 and 1024). A submit beyond the bound is
	// shed with HTTP 429 + Retry-After instead of queueing unboundedly.
	MaxQueueInteractive int
	MaxQueueBulk        int

	// StoreDir enables the persistent result store (internal/serve/
	// store): the cache warm-loads from it at boot and every computed
	// result is journaled before its waiters are released. Empty keeps
	// the cache memory-only.
	StoreDir string
	// StoreMaxBytes bounds the store's disk use (default 256 MiB); when
	// exceeded even after compaction the store degrades to memory-only.
	StoreMaxBytes int64
	// StoreCompactEvery folds the journal into the snapshot after this
	// many appended records (default 512).
	StoreCompactEvery int
	// StoreNoSync disables the per-record fsync (throughput over
	// durability of the latest results; the chaos gate runs with fsync
	// on).
	StoreNoSync bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = 5 * time.Minute
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.MaxScale <= 0 {
		o.MaxScale = 1.0
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 16384
	}
	if o.StreamInterval <= 0 {
		o.StreamInterval = 100 * time.Millisecond
	}
	if o.MaxQueueInteractive <= 0 {
		o.MaxQueueInteractive = 256
	}
	if o.MaxQueueBulk <= 0 {
		o.MaxQueueBulk = 1024
	}
	return o
}

// Server is the pimserve core: a bounded worker pool draining the
// priority queue, the content-addressed result cache, and the job
// registry. Wrap Handler in an http.Server (cmd/pimserve does) or an
// httptest server.
type Server struct {
	opts  Options
	cache *Cache
	q     *queue
	store *store.Store // nil when persistence is disabled

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// ready closes once the warm load from the persistent store has
	// completed and the worker pool is up; /readyz reports 503 until
	// then. drain closes when shutdown begins (BeginDrain), flipping
	// readiness false BEFORE the listener stops accepting.
	ready     chan struct{}
	drain     chan struct{}
	drainOnce sync.Once

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job IDs in completion order, for retention
	seq      uint64
	closed   bool

	reg          *telemetry.Registry
	jobsCreated  *telemetry.Counter
	jobsDone     *telemetry.Counter
	jobsFailed   *telemetry.Counter
	jobsCanceled *telemetry.Counter
	jobsCached   *telemetry.Counter
	workersBusy  *telemetry.Gauge
	start        time.Time
}

// New builds a Server: it opens the persistent store (when configured),
// then warm-loads the cache and starts the worker pool in the
// background — Ready()/readyz report when that completed. Close
// releases it. The returned error covers environmental failures only
// (store directory not creatable/readable); damaged store contents
// degrade, they never fail New.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	reg := telemetry.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   opts,
		cache:  NewCache(opts.CacheEntries, reg),
		q:      newQueue(reg, [2]int{ClassInteractive: opts.MaxQueueInteractive, ClassBulk: opts.MaxQueueBulk}),
		ctx:    ctx,
		cancel: cancel,
		ready:  make(chan struct{}),
		drain:  make(chan struct{}),
		jobs:   make(map[string]*Job),

		reg:          reg,
		jobsCreated:  reg.Counter("serve/jobs_created"),
		jobsDone:     reg.Counter("serve/jobs_done"),
		jobsFailed:   reg.Counter("serve/jobs_failed"),
		jobsCanceled: reg.Counter("serve/jobs_canceled"),
		jobsCached:   reg.Counter("serve/jobs_cached"),
		workersBusy:  reg.Gauge("serve/workers_busy"),
		start:        time.Now(),
	}
	if opts.StoreDir != "" {
		st, err := store.Open(store.Options{
			Dir:          opts.StoreDir,
			MaxBytes:     opts.StoreMaxBytes,
			CompactEvery: opts.StoreCompactEvery,
			Sync:         !opts.StoreNoSync,
		})
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = st
	}
	s.wg.Add(1)
	go s.warmLoad()
	return s, nil
}

// warmLoad seeds the cache from the persistent store, then opens
// readiness and starts the worker pool. Workers deliberately start
// after seeding: no job can compute (and journal a duplicate of) a
// digest the store is about to warm in.
func (s *Server) warmLoad() {
	defer s.wg.Done()
	if s.store != nil {
		s.store.Each(func(r store.Record) {
			s.cache.Seed(r.Digest, r.Result)
		})
	}
	close(s.ready)
	s.mu.Lock()
	if !s.closed {
		// s.wg is never zero here (warmLoad's own count), so Add during a
		// concurrent Close.Wait is safe.
		for i := 0; i < s.opts.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	s.mu.Unlock()
}

// Ready reports whether the server finished warm-loading and has not
// begun draining — the /readyz answer.
func (s *Server) Ready() bool {
	select {
	case <-s.drain:
		return false
	default:
	}
	select {
	case <-s.ready:
		return true
	default:
		return false
	}
}

// BeginDrain flips readiness false and delivers a terminal "shutdown"
// event to in-flight SSE streams. Call it BEFORE stopping the listener
// so load balancers stop routing new work while in-flight requests
// still complete; Close calls it implicitly. Safe to call repeatedly.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// Close stops the server: flips readiness, cancels every job context,
// drains the queue (queued jobs finish as canceled), waits for the
// workers and join waiters to exit, and compacts + closes the
// persistent store. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return
	}
	s.BeginDrain()
	s.cancel()
	s.q.Close()
	s.wg.Wait()
	// If Close ran before warmLoad started the workers, queued jobs have
	// no one to mark them terminal: drain them here.
	for {
		j, ok := s.q.Pop()
		if !ok {
			break
		}
		s.cache.Abandon(j.entry, errQueueClosed)
		s.finishJob(j, nil, false, context.Canceled)
	}
	if s.store != nil {
		s.store.Close()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.Pop()
		if !ok {
			return
		}
		s.workersBusy.Add(1)
		s.runJob(j)
		s.workersBusy.Add(-1)
	}
}

// runJob executes an owned (cache-miss) job and resolves its cache
// entry.
func (s *Server) runJob(j *Job) {
	if err := j.ctx.Err(); err != nil {
		// Canceled or timed out while queued.
		s.cache.Abandon(j.entry, err)
		s.finishJob(j, nil, false, err)
		return
	}
	j.setRunning("")
	data, err := s.execute(j)
	if err != nil {
		s.cache.Abandon(j.entry, err)
		s.finishJob(j, nil, false, err)
		return
	}
	// Persist BEFORE releasing waiters: once any client sees this result
	// as done, a restarted daemon must be able to serve the same bytes
	// from its warm cache (the chaos gate's zero accepted-then-lost
	// invariant). A persistence failure degrades the store to
	// memory-only; serving continues.
	if s.store != nil {
		if canon, merr := json.Marshal(j.Canon); merr == nil {
			s.store.Put(j.Digest, canon, data)
		}
	}
	s.cache.Fulfill(j.entry, data)
	s.finishJob(j, data, false, nil)
}

// execute runs the simulations a job needs through a job-private
// experiment runner (no state shared across requests beyond the result
// cache) and returns the canonical result bytes.
func (s *Server) execute(j *Job) ([]byte, error) {
	c := j.Canon
	cfg := c.Cfg
	cfg.Engine = c.Engine
	r := experiments.NewRunner(cfg, c.Scale)
	r.RunTimeout = s.opts.RunTimeout
	r.Observe = func(what string, sys *sim.System) {
		j.setStage(what)
		// A small ring is plenty: the stream only reads the latest epoch.
		j.setCollector(sys.EnableTelemetry(s.opts.SampleInterval, 64))
	}

	res := Result{
		Digest: j.Digest,
		Kind:   c.Kind,
		GPU:    c.GPUID,
		PIM:    c.PIMID,
		Policy: c.Policy,
		Mode:   c.Mode,
		Scale:  c.Scale,
	}
	switch c.Kind {
	case KindCompetitive:
		pair, err := r.CompetitiveCtx(j.ctx, c.GPUID, c.PIMID, c.Policy, c.VCMode())
		if err != nil {
			return nil, err
		}
		res.Competitive = &CompetitiveResult{
			GPUSpeedup:         pair.GPUSpeedup,
			PIMSpeedup:         pair.PIMSpeedup,
			Fairness:           pair.Fairness,
			Throughput:         pair.Throughput,
			MemArrivalNorm:     pair.MemArrivalNorm,
			Switches:           pair.Switches,
			ConflictsPerSwitch: pair.ConflictsPerSwitch,
			DrainPerSwitch:     pair.DrainPerSwitch,
			AvgMemQ:            pair.AvgMemQ,
			AvgPIMQ:            pair.AvgPIMQ,
			Aborted:            pair.Aborted,
			Faults:             pair.Faults,
		}
	case KindStandaloneGPU:
		st, err := r.StandaloneGPUCtx(j.ctx, c.GPUID)
		if err != nil {
			return nil, err
		}
		res.Standalone = &StandaloneResult{
			Cycles: st.Cycles, NoCRate: st.NoCRate, MCRate: st.MCRate, BLP: st.BLP, RBHR: st.RBHR,
		}
	case KindStandalonePIM:
		st, err := r.StandalonePIMCtx(j.ctx, c.PIMID)
		if err != nil {
			return nil, err
		}
		res.Standalone = &StandaloneResult{
			Cycles: st.Cycles, NoCRate: st.NoCRate, MCRate: st.MCRate, BLP: st.BLP, RBHR: st.RBHR,
		}
	default:
		return nil, fmt.Errorf("serve: unhandled kind %q", c.Kind)
	}
	return json.Marshal(res)
}

// finishJob records a job's terminal state, counts it, and applies the
// finished-job retention bound.
func (s *Server) finishJob(j *Job, result []byte, cached bool, err error) {
	switch {
	case err == nil:
		j.finish(StatusDone, result, cached, "")
		s.jobsDone.Inc()
		if cached {
			s.jobsCached.Inc()
		}
	case errors.Is(err, context.Canceled):
		j.finish(StatusCanceled, nil, false, err.Error())
		s.jobsCanceled.Inc()
	default:
		j.finish(StatusFailed, nil, false, err.Error())
		s.jobsFailed.Inc()
	}

	s.mu.Lock()
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.opts.MaxJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

// newJob registers a job for a canonicalized request.
func (s *Server) newJob(c Canonical, class Class, timeout time.Duration) *Job {
	if timeout <= 0 || timeout > s.opts.JobTimeout {
		timeout = s.opts.JobTimeout
	}
	ctx, cancel := context.WithTimeout(s.ctx, timeout)
	j := &Job{
		Class:   class,
		Canon:   c,
		Digest:  c.Digest(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  StatusQueued,
		created: time.Now(),
	}
	s.mu.Lock()
	s.seq++
	j.ID = fmt.Sprintf("j-%08d", s.seq)
	s.jobs[j.ID] = j
	s.mu.Unlock()
	s.jobsCreated.Inc()
	return j
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the HTTP API:
//
//	POST   /v1/simulate            submit a request (?wait=1 blocks)
//	GET    /v1/jobs/{id}           job status and result
//	GET    /v1/jobs/{id}/stream    SSE progress stream
//	DELETE /v1/jobs/{id}           cancel a job
//	GET    /healthz                liveness (process up; degraded flag)
//	GET    /readyz                 readiness (warm load done, not draining)
//	GET    /metrics                service metrics (also /v1/metrics)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//pimlint:besteffort — HTTP reply, not durable state: an encode failure here means the client vanished, and the result is already persisted
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	canon, err := Canonicalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if canon.Scale > s.opts.MaxScale {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: scale %.3f exceeds the server limit %.3f", canon.Scale, s.opts.MaxScale))
		return
	}
	class, err := ParseClass(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.ctx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: shutting down"))
		return
	}

	j := s.newJob(canon, class, time.Duration(req.TimeoutMS)*time.Millisecond)
	entry, outcome := s.cache.Lookup(j.Digest)
	switch outcome {
	case OutcomeHit:
		j.setRunning("")
		s.finishJob(j, entry.Result(), true, nil)
	case OutcomeJoin:
		// Ride the in-flight computation without occupying a worker.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			data, err := entry.Wait(j.ctx)
			if err == nil {
				j.setRunning("")
			}
			s.finishJob(j, data, err == nil, err)
		}()
	case OutcomeMiss:
		j.entry = entry
		if err := s.q.Push(j); err != nil {
			s.cache.Abandon(entry, err)
			s.finishJob(j, nil, false, context.Canceled)
			if errors.Is(err, errQueueFull) {
				// Shed load instead of queueing unboundedly: tell the
				// client when the backlog should have moved.
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
				writeError(w, http.StatusTooManyRequests, err)
				return
			}
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
	}

	wait := r.URL.Query().Get("wait")
	if wait == "1" || strings.EqualFold(wait, "true") {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
		writeJSON(w, http.StatusOK, j.View(true))
		return
	}
	writeJSON(w, http.StatusAccepted, j.View(true))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, j.View(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.View(false))
}

// handleStream serves an SSE progress stream: a "job" event with the
// current view every StreamInterval while the job runs, then one final
// "done" event carrying the full view (result included) when it reaches
// a terminal status.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	if !send("job", j.View(false)) {
		return
	}
	ticker := time.NewTicker(s.opts.StreamInterval)
	defer ticker.Stop()
	for {
		select {
		case <-j.Done():
			send("done", j.View(true))
			return
		case <-r.Context().Done():
			return
		case <-s.drain:
			// Drain delivers a terminal event, never a mid-stream EOF:
			// prefer the job's own terminal view if it just finished,
			// otherwise say explicitly that the server is going away.
			select {
			case <-j.Done():
				send("done", j.View(true))
			default:
				send("shutdown", j.View(false))
			}
			return
		case <-ticker.C:
			if !send("job", j.View(false)) {
				return
			}
		}
	}
}

// retryAfterSeconds estimates when a shed client should retry: one
// second per queued-jobs-per-worker, clamped to [1, 30]. Deliberately
// coarse — its job is to spread the retry wave, not to predict latency.
func (s *Server) retryAfterSeconds() int {
	ia, bulk := s.q.Depths()
	sec := 1 + (ia+bulk)/s.opts.Workers
	if sec > 30 {
		sec = 30
	}
	return sec
}

// Degraded reports whether the persistent store has fallen back to
// memory-only mode (always false when persistence is disabled).
func (s *Server) Degraded() bool {
	return s.store != nil && s.store.Degraded()
}

// handleHealth is LIVENESS: 200 as long as the process can answer,
// including while draining — kubelet-style probes must not kill a
// daemon that is finishing in-flight work. The degraded flag rides
// along so operators see persistence failures here too.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"degraded": s.Degraded(),
	})
}

// handleReady is READINESS: false until the warm load from the
// persistent store completes, and false again as soon as shutdown
// begins (BeginDrain runs before the listener stops accepting).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.drain:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	default:
	}
	select {
	case <-s.ready:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ready",
			"degraded": s.Degraded(),
		})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "warming"})
	}
}

// Metrics is the GET /metrics payload (see docs/ARCHITECTURE.md,
// "Observability"): cache effectiveness, queue backlog by class, worker
// utilization and job outcomes, all backed by internal/telemetry
// instruments.
type Metrics struct {
	UptimeMS int64 `json:"uptime_ms"`
	// Ready mirrors /readyz; Degraded mirrors the persistent store's
	// memory-only fallback flag (false when persistence is disabled).
	Ready    bool `json:"ready"`
	Degraded bool `json:"degraded"`

	Workers struct {
		Total int   `json:"total"`
		Busy  int64 `json:"busy"`
	} `json:"workers"`

	Queue struct {
		InteractiveDepth int    `json:"interactive_depth"`
		BulkDepth        int    `json:"bulk_depth"`
		Enqueued         uint64 `json:"enqueued"`
		Dequeued         uint64 `json:"dequeued"`
		// ShedInteractive/ShedBulk count submits refused with 429
		// because the class was at its admission limit.
		ShedInteractive uint64 `json:"shed_interactive"`
		ShedBulk        uint64 `json:"shed_bulk"`
	} `json:"queue"`

	Cache CacheStats `json:"cache"`

	// Store reports the persistent backing store (replay/skip/compaction
	// counters, disk use, degraded reason); Enabled false means the
	// daemon runs memory-only by configuration.
	Store struct {
		Enabled bool `json:"enabled"`
		store.Stats
	} `json:"store"`

	Jobs struct {
		Created  uint64 `json:"created"`
		Done     uint64 `json:"done"`
		Failed   uint64 `json:"failed"`
		Canceled uint64 `json:"canceled"`
		Cached   uint64 `json:"cached"`
	} `json:"jobs"`
}

// MetricsSnapshot assembles the current metrics (also used by tests and
// the load generator directly).
func (s *Server) MetricsSnapshot() Metrics {
	var m Metrics
	m.UptimeMS = time.Since(s.start).Milliseconds()
	m.Ready = s.Ready()
	m.Degraded = s.Degraded()
	m.Workers.Total = s.opts.Workers
	m.Workers.Busy = s.workersBusy.Value()
	m.Queue.InteractiveDepth, m.Queue.BulkDepth = s.q.Depths()
	m.Queue.Enqueued = s.q.enqueued.Value()
	m.Queue.Dequeued = s.q.dequeued.Value()
	m.Queue.ShedInteractive, m.Queue.ShedBulk = s.q.Shed()
	m.Cache = s.cache.Stats()
	if s.store != nil {
		m.Store.Enabled = true
		m.Store.Stats = s.store.Stats()
	}
	m.Jobs.Created = s.jobsCreated.Value()
	m.Jobs.Done = s.jobsDone.Value()
	m.Jobs.Failed = s.jobsFailed.Value()
	m.Jobs.Canceled = s.jobsCanceled.Value()
	m.Jobs.Cached = s.jobsCached.Value()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}
