package serve

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/telemetry"
)

// Cache is the content-addressed result cache with single-flight
// deduplication: one entry per canonical-request digest, holding either
// an in-flight computation (waiters block on it) or the finished result
// bytes. Completed entries are bounded by an LRU of max entries;
// in-flight entries are never evicted.
//
// Caching results by config digest is sound because the simulator is
// deterministic: identical canonical configs produce bit-identical
// results (the double-run determinism gate and the tick/event
// differential gate in docs/DETERMINISM.md are the standing proof).
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*Entry
	lru     *list.List // completed entries, most recently used at front

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	joins     *telemetry.Counter
	evictions *telemetry.Counter
	warmed    *telemetry.Counter
	warmHits  *telemetry.Counter
}

// Entry is one cache cell. The owner (the Lookup caller that got
// OutcomeMiss) resolves it exactly once with Fulfill or Abandon; everyone
// else waits on it.
type Entry struct {
	digest string
	done   chan struct{}
	result []byte
	err    error
	elem   *list.Element
	// warm marks an entry seeded from the persistent store at boot
	// rather than computed in this process's lifetime.
	warm bool
}

// Outcome classifies a cache lookup.
type Outcome int

const (
	// OutcomeMiss means the caller owns a fresh in-flight entry and MUST
	// resolve it with Fulfill or Abandon.
	OutcomeMiss Outcome = iota
	// OutcomeHit means the entry's result is ready.
	OutcomeHit
	// OutcomeJoin means another request is computing this digest; wait
	// on the entry.
	OutcomeJoin
)

// NewCache builds a cache bounded to max completed entries (<= 0 picks
// 4096), registering its counters in reg.
func NewCache(max int, reg *telemetry.Registry) *Cache {
	if max <= 0 {
		max = 4096
	}
	return &Cache{
		max:       max,
		entries:   make(map[string]*Entry),
		lru:       list.New(),
		hits:      reg.Counter("serve/cache_hits"),
		misses:    reg.Counter("serve/cache_misses"),
		joins:     reg.Counter("serve/cache_joins"),
		evictions: reg.Counter("serve/cache_evictions"),
		warmed:    reg.Counter("serve/cache_warm_loaded"),
		warmHits:  reg.Counter("serve/cache_warm_hits"),
	}
}

// Seed inserts a completed entry loaded from the persistent store. It
// refuses digests already present (completed or in flight: a miss that
// raced ahead of the warm load and is already computing wins —
// determinism makes the recomputation byte-identical, so nothing is
// lost but the cycles).
// Seeded entries join the LRU like any other completed entry and count
// toward the bound.
func (c *Cache) Seed(digest string, result []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[digest]; exists {
		return false
	}
	e := &Entry{digest: digest, done: make(chan struct{}), result: result, warm: true}
	close(e.done)
	c.entries[digest] = e
	e.elem = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*Entry).digest)
		c.evictions.Inc()
	}
	c.warmed.Inc()
	return true
}

// Lookup returns the entry for digest and how the caller relates to it:
// ready (hit), in flight (join), or newly created and owned (miss).
func (c *Cache) Lookup(digest string) (*Entry, Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[digest]; e != nil {
		select {
		case <-e.done:
			// A resolved entry still in the map is always a fulfilled
			// one: Abandon removes the entry before closing done.
			c.hits.Inc()
			if e.warm {
				c.warmHits.Inc()
			}
			c.lru.MoveToFront(e.elem)
			return e, OutcomeHit
		default:
			c.joins.Inc()
			return e, OutcomeJoin
		}
	}
	e := &Entry{digest: digest, done: make(chan struct{})}
	c.entries[digest] = e
	c.misses.Inc()
	return e, OutcomeMiss
}

// Fulfill resolves an owned entry with its result bytes, inserts it into
// the LRU, and evicts the oldest completed entries beyond the bound.
func (c *Cache) Fulfill(e *Entry, result []byte) {
	c.mu.Lock()
	e.result = result
	e.elem = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*Entry).digest)
		c.evictions.Inc()
	}
	c.mu.Unlock()
	close(e.done)
}

// Abandon resolves an owned entry with an error and forgets it, so the
// next request for the same digest recomputes instead of caching the
// failure. Waiters joined to the entry receive err.
func (c *Cache) Abandon(e *Entry, err error) {
	c.mu.Lock()
	if c.entries[e.digest] == e {
		delete(c.entries, e.digest)
	}
	e.err = err
	c.mu.Unlock()
	close(e.done)
}

// Wait blocks until the entry resolves or ctx is done, returning the
// result bytes or the resolution/context error.
func (e *Entry) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-e.done:
		return e.result, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns a ready entry's bytes (call only after OutcomeHit or a
// successful Wait).
func (e *Entry) Result() []byte { return e.result }

// CacheStats is a point-in-time cache summary.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Joins     uint64 `json:"joins"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Inflight  int    `json:"inflight"`
	// HitRate counts both ready hits and single-flight joins as served
	// from the cache: neither ran a new simulation.
	HitRate float64 `json:"hit_rate"`
	// WarmLoaded counts entries seeded from the persistent store at
	// boot; WarmHits counts lookups served by them, and WarmHitRate is
	// WarmHits over all lookups — the warm-start effectiveness the
	// chaos-recovery gate asserts on.
	WarmLoaded  uint64  `json:"warm_loaded"`
	WarmHits    uint64  `json:"warm_hits"`
	WarmHitRate float64 `json:"warm_hit_rate"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	completed := c.lru.Len()
	inflight := len(c.entries) - completed
	c.mu.Unlock()
	s := CacheStats{
		Hits:       c.hits.Value(),
		Misses:     c.misses.Value(),
		Joins:      c.joins.Value(),
		Evictions:  c.evictions.Value(),
		Entries:    completed,
		Inflight:   inflight,
		WarmLoaded: c.warmed.Value(),
		WarmHits:   c.warmHits.Value(),
	}
	if total := s.Hits + s.Misses + s.Joins; total > 0 {
		s.HitRate = float64(s.Hits+s.Joins) / float64(total)
		s.WarmHitRate = float64(s.WarmHits) / float64(total)
	}
	return s
}
