package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Job is one accepted simulate request moving through the service.
type Job struct {
	ID     string
	Digest string
	Class  Class
	Canon  Canonical

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// entry is the owned cache cell when this job is the single-flight
	// owner (nil for hits and joins).
	entry *Entry

	mu        sync.Mutex
	status    string
	stage     string
	cached    bool
	result    []byte
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	collector *telemetry.Collector
}

// Done exposes the completion channel (closed when the job reaches a
// terminal status).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel cancels the job's context; the terminal status is recorded by
// whoever is driving the job when it observes the cancellation.
func (j *Job) Cancel() { j.cancel() }

func (j *Job) setRunning(stage string) {
	j.mu.Lock()
	j.status = StatusRunning
	j.stage = stage
	j.started = time.Now()
	j.mu.Unlock()
}

// setStage records the current run phase ("standalone-gpu",
// "competitive", ...); it is the Runner.Observe callback's view.
func (j *Job) setStage(stage string) {
	j.mu.Lock()
	j.stage = stage
	j.mu.Unlock()
}

func (j *Job) setCollector(c *telemetry.Collector) {
	j.mu.Lock()
	j.collector = c
	j.mu.Unlock()
}

// finish records a terminal status exactly once and closes Done.
func (j *Job) finish(status string, result []byte, cached bool, errMsg string) {
	j.mu.Lock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.stage = ""
	j.result = result
	j.cached = cached
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context's resources
	close(j.done)
}

// Progress is the live view of a running job, fed by the telemetry epoch
// sampler of the simulation currently executing for it.
type Progress struct {
	// Stage is the run phase ("standalone-gpu", "standalone-pim",
	// "competitive").
	Stage string `json:"stage,omitempty"`
	// GPUCycle/DRAMCycle are the latest sampled simulation clocks.
	GPUCycle  uint64 `json:"gpu_cycle,omitempty"`
	DRAMCycle uint64 `json:"dram_cycle,omitempty"`
	// Completed counts serviced requests per application.
	Completed []uint64 `json:"completed,omitempty"`
}

// JobView is the JSON rendering of a job.
type JobView struct {
	ID       string          `json:"id"`
	Digest   string          `json:"digest"`
	Kind     string          `json:"kind"`
	Priority string          `json:"priority"`
	Status   string          `json:"status"`
	Cached   bool            `json:"cached"`
	Error    string          `json:"error,omitempty"`
	QueuedMS int64           `json:"queued_ms"`
	RunMS    int64           `json:"run_ms,omitempty"`
	Progress *Progress       `json:"progress,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// View snapshots the job; includeResult controls whether the (possibly
// large) result payload rides along.
func (j *Job) View(includeResult bool) JobView {
	j.mu.Lock()
	v := JobView{
		ID:       j.ID,
		Digest:   j.Digest,
		Kind:     j.Canon.Kind,
		Priority: j.Class.String(),
		Status:   j.status,
		Cached:   j.cached,
		Error:    j.errMsg,
	}
	started, finished := j.started, j.finished
	created := j.created
	stage := j.stage
	collector := j.collector
	if includeResult && j.result != nil {
		v.Result = json.RawMessage(j.result)
	}
	j.mu.Unlock()

	switch {
	case started.IsZero():
		v.QueuedMS = time.Since(created).Milliseconds()
	default:
		v.QueuedMS = started.Sub(created).Milliseconds()
		if finished.IsZero() {
			v.RunMS = time.Since(started).Milliseconds()
		} else {
			v.RunMS = finished.Sub(started).Milliseconds()
		}
	}
	if v.Status == StatusRunning {
		p := &Progress{Stage: stage}
		var sampler *telemetry.Sampler
		if collector != nil {
			sampler = collector.Sampler
		}
		if snap, ok := sampler.Last(); ok {
			p.GPUCycle = snap.GPUCycle
			p.DRAMCycle = snap.DRAMCycle
			p.Completed = make([]uint64, len(snap.Apps))
			for i := range snap.Apps {
				p.Completed[i] = snap.Apps[i].Completed
			}
		}
		v.Progress = p
	}
	return v
}

// Result is the deterministic payload of one simulation: everything in
// it derives from the simulated system alone (no wall clock, no
// provenance), so identical canonical configs yield byte-identical
// encodings — the property the content-addressed cache leans on and the
// load generator asserts.
type Result struct {
	Digest string  `json:"digest"`
	Kind   string  `json:"kind"`
	GPU    string  `json:"gpu,omitempty"`
	PIM    string  `json:"pim,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Mode   string  `json:"mode"`
	Scale  float64 `json:"scale"`

	Competitive *CompetitiveResult `json:"competitive,omitempty"`
	Standalone  *StandaloneResult  `json:"standalone,omitempty"`
}

// CompetitiveResult carries the paper's per-cell metrics (Sec. III-C,
// Figs. 6-10): speedups, fairness/throughput, arrival-rate degradation,
// mode-switch overheads and controller queue occupancies.
type CompetitiveResult struct {
	GPUSpeedup         float64        `json:"gpu_speedup"`
	PIMSpeedup         float64        `json:"pim_speedup"`
	Fairness           float64        `json:"fairness"`
	Throughput         float64        `json:"throughput"`
	MemArrivalNorm     float64        `json:"mem_arrival_norm"`
	Switches           uint64         `json:"switches"`
	ConflictsPerSwitch float64        `json:"conflicts_per_switch"`
	DrainPerSwitch     float64        `json:"drain_per_switch"`
	AvgMemQ            float64        `json:"avg_memq"`
	AvgPIMQ            float64        `json:"avg_pimq"`
	Aborted            bool           `json:"aborted"`
	Faults             *faults.Counts `json:"faults,omitempty"`
}

// StandaloneResult carries a kernel-alone baseline (Fig. 4).
type StandaloneResult struct {
	Cycles  uint64  `json:"cycles"`
	NoCRate float64 `json:"noc_rate"`
	MCRate  float64 `json:"mc_rate"`
	BLP     float64 `json:"blp"`
	RBHR    float64 `json:"rbhr"`
}
