package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func mustCanon(t *testing.T, req Request) Canonical {
	t.Helper()
	c, err := Canonicalize(req)
	if err != nil {
		t.Fatalf("Canonicalize(%+v): %v", req, err)
	}
	return c
}

func digestOf(t *testing.T, req Request) string {
	t.Helper()
	return mustCanon(t, req).Digest()
}

// TestDigestFieldOrderInvariant shuffles the JSON field order of a
// fully spelled-out request body and checks every permutation decodes
// and canonicalizes to one digest — the wire form's layout must never
// leak into the content address.
func TestDigestFieldOrderInvariant(t *testing.T) {
	fields := []string{
		`"kind":"competitive"`,
		`"gpu":"G8"`,
		`"pim":"P1"`,
		`"policy":"f3fs"`,
		`"mode":"VC2"`,
		`"scale":0.05`,
		`"seed":7`,
		`"max_gpu_cycles":1000000`,
		`"faults":"dram=0.002:12"`,
	}
	rng := rand.New(rand.NewSource(1))
	var want string
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(fields))
		parts := make([]string, len(fields))
		for i, p := range perm {
			parts[i] = fields[p]
		}
		body := "{" + strings.Join(parts, ",") + "}"
		var req Request
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("decode %s: %v", body, err)
		}
		d := digestOf(t, req)
		if trial == 0 {
			want = d
			continue
		}
		if d != want {
			t.Fatalf("permutation %d: digest %s != %s\nbody: %s", trial, d, want, body)
		}
	}
}

// TestDigestDefaultElision: a sparse request and one spelling out every
// default explicitly mean the same simulation and must share a digest.
func TestDigestDefaultElision(t *testing.T) {
	sparse := Request{GPU: "G8", PIM: "P1", Policy: "f3fs"}
	spelled := Request{
		Kind:   KindCompetitive,
		GPU:    "G8",
		PIM:    "P1",
		Policy: "f3fs",
		Mode:   "VC1",
		Scale:  1.0,
		Engine: "event",
	}
	if d1, d2 := digestOf(t, sparse), digestOf(t, spelled); d1 != d2 {
		t.Fatalf("sparse digest %s != spelled-out digest %s", d1, d2)
	}
}

// TestDigestAliases: spellings that resolve to the same simulation —
// case variants, benchmark names for IDs, either engine, fault-schedule
// seed inheritance — must collapse onto one digest.
func TestDigestAliases(t *testing.T) {
	base := Request{GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1"}
	baseDigest := digestOf(t, base)

	baseCanon := mustCanon(t, base)
	cfgSeed := baseCanon.Cfg.Seed

	aliases := []Request{
		{GPU: "g8", PIM: "p1", Policy: "F3FS", Mode: "vc1"},
		{Kind: "Competitive", GPU: "G8", PIM: "P1", Policy: "f3fs"},
		{GPU: "G8", PIM: "P1", Policy: "f3fs", Engine: "tick"},
		{GPU: "G8", PIM: "P1", Policy: "f3fs", Engine: "event"},
		{GPU: "G8", PIM: "P1", Policy: "f3fs", Seed: cfgSeed},
		{GPU: "G8", PIM: "P1", Policy: "f3fs", Scale: 1.0},
	}
	for i, alias := range aliases {
		if d := digestOf(t, alias); d != baseDigest {
			t.Errorf("alias %d (%+v): digest %s, want %s", i, alias, d, baseDigest)
		}
	}

	// Fault schedules: seed=0 inherits the config seed, so writing the
	// config seed explicitly is the same schedule.
	f1 := digestOf(t, Request{GPU: "G8", PIM: "P1", Policy: "f3fs", Faults: "dram=0.002:12"})
	f2 := digestOf(t, Request{GPU: "G8", PIM: "P1", Policy: "f3fs",
		Faults: fmt.Sprintf("seed=%d,dram=0.002:12", cfgSeed)})
	if f1 != f2 {
		t.Errorf("fault seed inheritance: digest %s != %s", f1, f2)
	}

	// Service fields never enter the digest.
	s1 := digestOf(t, Request{GPU: "G8", PIM: "P1", Policy: "f3fs", Priority: PriorityBulk, TimeoutMS: 5})
	if s1 != baseDigest {
		t.Errorf("service fields changed the digest: %s != %s", s1, baseDigest)
	}
}

// TestDigestSemanticChanges: any change that alters what is simulated
// must change the digest. Builds a set of semantically distinct requests
// and asserts their digests are pairwise distinct (and distinct from
// the base).
func TestDigestSemanticChanges(t *testing.T) {
	base := Request{GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1"}
	variants := map[string]Request{
		"policy":   {GPU: "G8", PIM: "P1", Policy: "fcfs", Mode: "VC1"},
		"mode":     {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC2"},
		"gpu":      {GPU: "G4", PIM: "P1", Policy: "f3fs", Mode: "VC1"},
		"pim":      {GPU: "G8", PIM: "P2", Policy: "f3fs", Mode: "VC1"},
		"scale":    {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1", Scale: 0.5},
		"seed":     {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1", Seed: 99},
		"cycles":   {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1", MaxGPUCycles: 12345},
		"mem_cap":  {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1", MemCap: 64},
		"pim_cap":  {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1", PIMCap: 64},
		"faults":   {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1", Faults: "dram=0.002:12"},
		"full":     {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC1", Full: true},
		"kind-gpu": {Kind: KindStandaloneGPU, GPU: "G8"},
		"kind-pim": {Kind: KindStandalonePIM, PIM: "P1"},
	}
	seen := map[string]string{digestOf(t, base): "base"}
	for name, req := range variants {
		d := digestOf(t, req)
		if prev, dup := seen[d]; dup {
			t.Errorf("variant %q collides with %q on digest %s", name, prev, d)
		}
		seen[d] = name
	}
}

// TestDigestStandaloneElision: knobs that do not affect a standalone
// baseline (policy, interconnect mode of the contended run) are elided
// from its identity.
func TestDigestStandaloneElision(t *testing.T) {
	d1 := digestOf(t, Request{Kind: KindStandaloneGPU, GPU: "G8"})
	d2 := digestOf(t, Request{Kind: KindStandaloneGPU, GPU: "G8", Policy: "f3fs", Mode: "VC2"})
	if d1 != d2 {
		t.Fatalf("standalone identity depends on contended-run knobs: %s != %s", d1, d2)
	}
}

// TestCanonicalizeRejects covers the validation errors.
func TestCanonicalizeRejects(t *testing.T) {
	bad := map[string]Request{
		"kind":       {Kind: "nope", GPU: "G8", PIM: "P1", Policy: "f3fs"},
		"no-gpu":     {PIM: "P1", Policy: "f3fs"},
		"no-pim":     {GPU: "G8", Policy: "f3fs"},
		"no-policy":  {GPU: "G8", PIM: "P1"},
		"gpu-id":     {GPU: "G999", PIM: "P1", Policy: "f3fs"},
		"pim-id":     {GPU: "G8", PIM: "P999", Policy: "f3fs"},
		"policy-val": {GPU: "G8", PIM: "P1", Policy: "magic"},
		"mode":       {GPU: "G8", PIM: "P1", Policy: "f3fs", Mode: "VC3"},
		"engine":     {GPU: "G8", PIM: "P1", Policy: "f3fs", Engine: "quantum"},
		"faults":     {GPU: "G8", PIM: "P1", Policy: "f3fs", Faults: "dram=oops"},
	}
	for name, req := range bad {
		if _, err := Canonicalize(req); err == nil {
			t.Errorf("%s: Canonicalize(%+v) accepted an invalid request", name, req)
		}
	}
	if _, err := ParseClass("urgent"); err == nil {
		t.Error("ParseClass accepted an unknown priority")
	}
}

// TestDigestShape: digests are full 64-hex-char SHA-256 strings.
func TestDigestShape(t *testing.T) {
	d := digestOf(t, Request{GPU: "G8", PIM: "P1", Policy: "f3fs"})
	if len(d) != 64 {
		t.Fatalf("digest %q has length %d, want 64", d, len(d))
	}
	for _, r := range d {
		if !strings.ContainsRune("0123456789abcdef", r) {
			t.Fatalf("digest %q contains non-hex rune %q", d, r)
		}
	}
}
