package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestChaosRecovery is the chaos-recovery CI gate (make chaos-smoke): a
// real pimserve process is driven through the crash cycle the
// persistent store exists for —
//
//  1. serve a mixed load with persistence on, recording every response;
//  2. hard-kill the daemon (SIGKILL, no drain) with jobs still in
//     flight, so the journal can end mid-record;
//  3. corrupt the journal tail deliberately on top of that;
//  4. restart over the same directory and assert: readiness waits for
//     the warm load, every response accepted before the kill comes back
//     byte-identical from the warm cache (zero accepted-then-lost, zero
//     recomputation), and the corrupt tail was skipped — counted in
//     /metrics, never fatal.
//
// The gate runs the daemon binary itself (not an in-process server) so
// the kill is a true process death, fsync'd journal and all.
func TestChaosRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gate builds and kills the real daemon; skipped in -short")
	}
	bin := buildPimserve(t)
	dir := t.TempDir()

	// Phase 1: populate. Distinct fast requests, all waited on — every
	// response here was "accepted": the daemon answered done.
	d1 := startPimserve(t, bin, dir)
	waitHTTPReady(t, d1.url)
	accepted := map[string]serve.JobView{} // digest -> first response
	for seed := int64(100); seed < 104; seed++ {
		v := chaosSimulate(t, d1.url, seed, true)
		if v.Status != serve.StatusDone || len(v.Result) == 0 {
			t.Fatalf("seed %d: %+v", seed, v)
		}
		accepted[v.Digest] = v
	}
	// Leave work in flight so the kill lands mid-activity (and possibly
	// mid-journal-write), then SIGKILL — no drain, no journal close.
	for seed := int64(200); seed < 202; seed++ {
		chaosSimulate(t, d1.url, seed, false)
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = d1.cmd.Wait()

	// Phase 2: damage the journal tail on top of whatever the kill left:
	// a record cut off mid-bytes, exactly what a crash during append
	// produces.
	journal := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open journal for corruption: %v", err)
	}
	if _, err := f.WriteString(`{"digest":"deadbeef","canon":{"cut":`); err != nil {
		t.Fatalf("corrupt journal: %v", err)
	}
	f.Close()

	// Phase 3: restart over the same directory and verify recovery.
	d2 := startPimserve(t, bin, dir)
	waitHTTPReady(t, d2.url)

	for seed := int64(100); seed < 104; seed++ {
		v := chaosSimulate(t, d2.url, seed, true)
		before, ok := accepted[v.Digest]
		if !ok {
			t.Fatalf("seed %d: digest %s not in the accepted set", seed, v.Digest)
		}
		if v.Status != serve.StatusDone || !v.Cached {
			t.Fatalf("seed %d after restart: %+v, want a warm cache hit", seed, v)
		}
		if !bytes.Equal(before.Result, v.Result) {
			t.Fatalf("seed %d: response differs across the crash:\n%s\n%s", seed, before.Result, v.Result)
		}
	}

	var m serve.Metrics
	getChaosJSON(t, d2.url+"/metrics", &m)
	if !m.Store.Enabled || m.Store.Replayed < len(accepted) {
		t.Fatalf("store replayed %d of %d accepted results: %+v", m.Store.Replayed, len(accepted), m.Store)
	}
	if m.Store.SkippedCorrupt < 1 {
		t.Fatalf("corrupt journal tail not counted: %+v", m.Store)
	}
	if m.Store.Degraded {
		t.Fatalf("recovery must not degrade the store: %+v", m.Store)
	}
	if m.Cache.WarmHits < uint64(len(accepted)) || m.Cache.Misses != 0 {
		t.Fatalf("accepted results recomputed after restart: %+v", m.Cache)
	}
	if m.Cache.WarmHitRate <= 0 {
		t.Fatalf("warm hit rate not reported: %+v", m.Cache)
	}

	// The survivor shuts down gracefully (drain, compact, exit 0).
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- d2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		_ = d2.cmd.Process.Kill()
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
}

// buildPimserve compiles the daemon, honoring a prebuilt PIMSERVE_BIN
// (the Makefile's chaos-smoke target sets it to avoid a double build).
func buildPimserve(t *testing.T) string {
	t.Helper()
	if bin := os.Getenv("PIMSERVE_BIN"); bin != "" {
		return bin
	}
	bin := filepath.Join(t.TempDir(), "pimserve")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/pimserve")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build pimserve: %v\n%s", err, out)
	}
	return bin
}

type chaosDaemon struct {
	cmd *exec.Cmd
	url string
}

// startPimserve launches the daemon on an ephemeral port with
// persistence in dir and returns once it prints its listen address.
func startPimserve(t *testing.T, bin, dir string) *chaosDaemon {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-store", dir,
		"-drain-grace", "10ms",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start pimserve: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				urlc <- strings.TrimSpace(addr)
			}
		}
	}()
	select {
	case url := <-urlc:
		return &chaosDaemon{cmd: cmd, url: url}
	case <-time.After(30 * time.Second):
		t.Fatal("pimserve never announced its listen address")
		return nil
	}
}

// waitHTTPReady polls /readyz until the daemon reports ready — i.e.
// until the warm load completed.
func waitHTTPReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon never became ready")
}

// chaosSimulate submits the gate's standard fast request shape with a
// distinguishing seed.
func chaosSimulate(t *testing.T, url string, seed int64, wait bool) serve.JobView {
	t.Helper()
	req := serve.Request{
		GPU: "G8", PIM: "P1", Policy: "fcfs",
		Scale: 0.02, MaxGPUCycles: 2_000_000, Seed: seed,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	u := url + "/v1/simulate"
	if wait {
		u += "?wait=1"
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		data, _ := json.Marshal(resp.Header)
		t.Fatalf("POST status %d (%s)", resp.StatusCode, data)
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	return view
}

func getChaosJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(fmt.Errorf("decode %s: %w", url, err))
	}
}
