package serve

import (
	"errors"
	"sync"

	"repro/internal/telemetry"
)

// Push failure modes: a full class sheds load (HTTP 429 + Retry-After
// upstream), a closed queue means shutdown (HTTP 503).
var (
	errQueueFull   = errors.New("serve: queue full")
	errQueueClosed = errors.New("serve: shutting down")
)

// Class is a job's priority class.
type Class int

const (
	// ClassInteractive jobs (single-cell probes) always dequeue ahead of
	// bulk traffic.
	ClassInteractive Class = iota
	// ClassBulk jobs (sweep/campaign traffic) run when no interactive
	// work is queued.
	ClassBulk
)

// String names the class as the API spells it.
func (c Class) String() string {
	if c == ClassBulk {
		return PriorityBulk
	}
	return PriorityInteractive
}

// jobFIFO is an amortized O(1) pop-front queue.
type jobFIFO struct {
	buf  []*Job
	head int
}

func (f *jobFIFO) push(j *Job) { f.buf = append(f.buf, j) }

func (f *jobFIFO) pop() *Job {
	if f.head == len(f.buf) {
		return nil
	}
	j := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 > len(f.buf) {
		f.buf = append(f.buf[:0], f.buf[f.head:]...)
		f.head = 0
	}
	return j
}

func (f *jobFIFO) len() int { return len(f.buf) - f.head }

// queue is the two-class priority job queue feeding the worker pool:
// strict priority between classes, FIFO within a class, and a bounded
// per-class admission depth — beyond it Push sheds the job instead of
// queueing unboundedly. Close switches it to drain mode — Pop keeps
// returning queued jobs until empty, then reports closed — so shutdown
// marks every queued job instead of leaking it.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	cls    [2]jobFIFO
	limit  [2]int

	enqueued *telemetry.Counter
	dequeued *telemetry.Counter
	shed     [2]*telemetry.Counter
	depth    [2]*telemetry.Gauge
}

func newQueue(reg *telemetry.Registry, limits [2]int) *queue {
	q := &queue{
		limit:    limits,
		enqueued: reg.Counter("serve/queue_enqueued"),
		dequeued: reg.Counter("serve/queue_dequeued"),
		shed: [2]*telemetry.Counter{
			reg.Counter("serve/queue_shed_interactive"),
			reg.Counter("serve/queue_shed_bulk"),
		},
		depth: [2]*telemetry.Gauge{
			reg.Gauge("serve/queue_interactive_depth"),
			reg.Gauge("serve/queue_bulk_depth"),
		},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job. It fails with errQueueFull when the job's class
// is at its admission limit (the caller sheds with 429 + Retry-After)
// and errQueueClosed after Close.
func (q *queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if lim := q.limit[j.Class]; lim > 0 && q.cls[j.Class].len() >= lim {
		q.shed[j.Class].Inc()
		return errQueueFull
	}
	q.cls[j.Class].push(j)
	q.enqueued.Inc()
	q.depth[j.Class].Set(int64(q.cls[j.Class].len()))
	q.cond.Signal()
	return nil
}

// Shed returns the per-class shed-request counts.
func (q *queue) Shed() (interactive, bulk uint64) {
	return q.shed[ClassInteractive].Value(), q.shed[ClassBulk].Value()
}

// Pop blocks for the next job, interactive first. After Close it drains
// the remaining jobs and then reports ok == false.
func (q *queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for cls := range q.cls {
			if j := q.cls[cls].pop(); j != nil {
				q.dequeued.Inc()
				q.depth[cls].Set(int64(q.cls[cls].len()))
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		// Cond.Wait atomically releases q.mu while asleep and reacquires
		// it on wake — the lock is not actually held across the block,
		// and Close broadcasts under the same condition, so Pop cannot
		// miss the shutdown wake.
		//pimlint:lockorder — sync.Cond contract: Wait releases q.mu while blocked; Close broadcasts the wake
		q.cond.Wait()
	}
}

// Close stops accepting jobs and wakes every blocked Pop.
func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Depths returns the instantaneous per-class backlog.
func (q *queue) Depths() (interactive, bulk int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cls[ClassInteractive].len(), q.cls[ClassBulk].len()
}
