package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// mkRecord builds a self-consistent record: digest = SHA-256(canon),
// sum = SHA-256(result) — exactly what serve persists.
func mkRecord(i int) (digest string, canon json.RawMessage, result []byte) {
	canon = json.RawMessage(fmt.Sprintf(`{"kind":"competitive","seed":%d}`, i))
	result = []byte(fmt.Sprintf(`{"digest":"ignored","cycles":%d}`, 1000+i))
	return sum256(canon), canon, result
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStorePutReloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: true})
	want := map[string][]byte{}
	for i := 0; i < 5; i++ {
		d, c, r := mkRecord(i)
		if !s.Put(d, c, r) {
			t.Fatalf("Put %d refused", i)
		}
		want[d] = r
	}
	// Duplicate Put is a no-op, not a second journal record.
	d0, c0, r0 := mkRecord(0)
	if s.Put(d0, c0, r0) {
		t.Fatal("duplicate Put persisted again")
	}
	st := s.Stats()
	if st.Persisted != 5 || st.Entries != 5 || st.Degraded {
		t.Fatalf("stats = %+v", st)
	}
	// No Close: simulate a hard kill. The journal was fsync'd per Put.
	s2 := openTest(t, dir, Options{Sync: true})
	st2 := s2.Stats()
	if st2.Replayed != 5 || st2.SkippedCorrupt != 0 || st2.SkippedVerify != 0 {
		t.Fatalf("reload stats = %+v", st2)
	}
	got := 0
	s2.Each(func(r Record) {
		if !bytes.Equal(want[r.Digest], r.Result) {
			t.Fatalf("record %s bytes differ after reload", r.Digest)
		}
		got++
	})
	if got != 5 {
		t.Fatalf("Each visited %d records", got)
	}
}

// TestStoreCorruption is the table-driven damage matrix the ISSUE
// requires: every form of file damage loads cleanly, drops only the
// damaged records, and counts what it dropped.
func TestStoreCorruption(t *testing.T) {
	seed := func(t *testing.T, dir string) (digests []string) {
		s := openTest(t, dir, Options{Sync: true})
		for i := 0; i < 3; i++ {
			d, c, r := mkRecord(i)
			if !s.Put(d, c, r) {
				t.Fatalf("seed Put %d", i)
			}
			digests = append(digests, d)
		}
		// No Close — journal only, no snapshot, like a killed daemon.
		return digests
	}

	cases := []struct {
		name        string
		damage      func(t *testing.T, dir string)
		wantEntries int
		wantCorrupt int
		wantVerify  int
	}{
		{
			name: "truncated-tail-entry",
			damage: func(t *testing.T, dir string) {
				path := filepath.Join(dir, "journal.jsonl")
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				f.WriteString(`{"digest":"abcd","canon":{"k":1},"sum":"12`)
				f.Close()
			},
			wantEntries: 3,
			wantCorrupt: 1,
		},
		{
			name: "bit-flipped-response-body",
			damage: func(t *testing.T, dir string) {
				path := filepath.Join(dir, "journal.jsonl")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				// Flip one byte inside the last record's base64 result
				// payload: the line still parses, the checksum must catch
				// it.
				idx := bytes.LastIndex(data, []byte(`"result":"`))
				if idx < 0 {
					t.Fatal("no result field found")
				}
				i := idx + len(`"result":"`) + 2
				switch data[i] {
				case 'A':
					data[i] = 'B'
				default:
					data[i] = 'A'
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantEntries: 2,
			wantVerify:  1,
		},
		{
			name: "empty-journal-file",
			damage: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantEntries: 0,
		},
		{
			name: "garbage-line-then-good-tail",
			damage: func(t *testing.T, dir string) {
				// WAL semantics: a corrupt middle line must not take the
				// records after it down with it.
				path := filepath.Join(dir, "journal.jsonl")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				lines := bytes.SplitAfter(data, []byte("\n"))
				if len(lines) < 4 {
					t.Fatalf("journal has %d lines", len(lines))
				}
				lines[2] = []byte("!! not json !!\n") // second record
				if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantEntries: 2,
			wantCorrupt: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			digests := seed(t, dir)
			tc.damage(t, dir)
			s := openTest(t, dir, Options{Sync: true})
			st := s.Stats()
			if st.Entries != tc.wantEntries || st.SkippedCorrupt != tc.wantCorrupt || st.SkippedVerify != tc.wantVerify {
				t.Fatalf("stats = %+v, want entries=%d corrupt=%d verify=%d",
					st, tc.wantEntries, tc.wantCorrupt, tc.wantVerify)
			}
			if st.Degraded {
				t.Fatalf("damage degraded the store: %+v", st)
			}
			// Surviving records are the originals, byte-identical.
			s.Each(func(r Record) {
				if err := r.Verify(); err != nil {
					t.Fatalf("loaded record fails verify: %v", err)
				}
			})
			// The store keeps accepting writes after damage recovery.
			d, c, r := mkRecord(99)
			if !s.Put(d, c, r) {
				t.Fatal("post-recovery Put refused")
			}
			_ = digests
		})
	}
}

// TestStoreSnapshotJournalOrdering pins the replay order: snapshot
// first, then journal, with journal records overriding (and duplicates
// deduplicating, not double-counting).
func TestStoreSnapshotJournalOrdering(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: true})
	var digests []string
	for i := 0; i < 4; i++ {
		d, c, r := mkRecord(i)
		s.Put(d, c, r)
		digests = append(digests, d)
	}
	s.Compact() // 4 records now live in the snapshot
	d4, c4, r4 := mkRecord(4)
	s.Put(d4, c4, r4) // lives only in the journal
	digests = append(digests, d4)
	st := s.Stats()
	if st.Compactions != 1 {
		t.Fatalf("stats = %+v, want 1 compaction", st)
	}
	// Hard kill (no Close), reload: snapshot + journal union.
	s2 := openTest(t, dir, Options{Sync: true})
	if got := s2.Len(); got != 5 {
		t.Fatalf("reloaded %d records, want 5", got)
	}
	var order []string
	s2.Each(func(r Record) { order = append(order, r.Digest) })
	for i, d := range digests {
		if order[i] != d {
			t.Fatalf("replay order[%d] = %s, want %s (snapshot before journal)", i, order[i], d)
		}
	}
}

// TestStoreCompactionThreshold checks automatic compaction folds the
// journal into the snapshot and that nothing is lost across it.
func TestStoreCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: false, CompactEvery: 3})
	for i := 0; i < 7; i++ {
		d, c, r := mkRecord(i)
		s.Put(d, c, r)
	}
	st := s.Stats()
	if st.Compactions != 2 { // after records 3 and 6
		t.Fatalf("compactions = %d, want 2 (stats %+v)", st.Compactions, st)
	}
	s.Close() // third compaction
	s2 := openTest(t, dir, Options{Sync: false, CompactEvery: 3})
	if s2.Len() != 7 {
		t.Fatalf("reloaded %d records, want 7", s2.Len())
	}
	// After Close-compaction the journal is a bare header.
	data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(bytes.TrimSpace(data), []byte("\n")); n != 0 {
		t.Fatalf("journal not reset after Close: %d extra lines", n)
	}
}

// TestStoreQuotaDegrades fills a tiny quota and checks the store sheds
// persistence (memory-only) instead of erroring, and that a reload
// still serves everything that made it to disk.
func TestStoreQuotaDegrades(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: false, MaxBytes: 600})
	persisted := 0
	for i := 0; i < 50; i++ {
		d, c, r := mkRecord(i)
		if s.Put(d, c, r) {
			persisted++
		}
	}
	st := s.Stats()
	if !st.Degraded || st.DegradedReason == "" {
		t.Fatalf("tiny quota did not degrade: %+v", st)
	}
	if persisted == 0 || st.Dropped == 0 {
		t.Fatalf("persisted=%d dropped=%d, want both nonzero", persisted, st.Dropped)
	}
	// Degraded Puts are no-ops, not errors; the store still answers.
	if s.Len() < persisted {
		t.Fatalf("Len %d < persisted %d", s.Len(), persisted)
	}
	s2 := openTest(t, dir, Options{Sync: false, MaxBytes: 1 << 20})
	if s2.Len() != persisted || s2.Degraded() {
		t.Fatalf("reload: %d records (want %d), degraded=%v", s2.Len(), persisted, s2.Degraded())
	}
}

// TestStorePutRefusesInconsistentRecord: bytes that do not hash to
// their digest are never persisted (a restart would drop them anyway).
func TestStorePutRefusesInconsistentRecord(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	_, c, r := mkRecord(1)
	if s.Put("00deadbeef", c, r) {
		t.Fatal("Put accepted a digest that does not match its canon bytes")
	}
	if st := s.Stats(); st.Dropped != 1 || st.Persisted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStoreSchemaMismatchDiscards: a journal from a different schema
// version is discarded wholesale, not misread.
func TestStoreSchemaMismatchDiscards(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	d, c, r := mkRecord(1)
	rec := Record{Digest: d, Canon: c, Sum: sum256(r), Result: r}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.Encode(header{Schema: "pimserve-store/v999"})
	enc.Encode(rec)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if s.Len() != 0 {
		t.Fatalf("replayed %d records from a foreign schema", s.Len())
	}
}
