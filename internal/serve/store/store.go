// Package store is the durable backing of the pimserve result cache: a
// content-addressed map from canonical-request digest to response bytes
// that survives process death.
//
// On disk a store is two JSONL files built on internal/journal:
//
//   - snapshot.jsonl — the compacted state, rewritten atomically (temp
//     file + rename, fsync'd) by Compact;
//   - journal.jsonl — the append-only write-ahead log of records Put
//     since the last compaction, fsync'd per record when Sync is on.
//
// Open replays the snapshot first, then the journal (newer records win,
// though by construction any duplicate carries identical bytes — the
// simulator is deterministic). Every record is re-verified on load:
// the digest must equal SHA-256(canonical config bytes) and the stored
// response checksum must equal SHA-256(response bytes). A record that
// fails either check — bit rot, a torn write, a hand-edited file — is
// dropped and counted, never trusted and never fatal. A truncated
// trailing journal line (the process was killed mid-append) is likewise
// skipped with a counter.
//
// The store degrades instead of failing: when an append errors or the
// disk quota is exhausted even after compaction, it flips to memory-only
// mode — Put becomes a counted no-op, serving continues, and the
// degraded flag surfaces in /healthz and /metrics.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/journal"
)

// Schema versions the on-disk format; bump on incompatible change.
const Schema = "pimserve-store/v1"

type header struct {
	Schema string `json:"schema"`
}

// Record is one persisted result: the canonical config (exact bytes the
// digest hashes), the response, and the response checksum.
type Record struct {
	Digest string          `json:"digest"`
	Canon  json.RawMessage `json:"canon"`
	Sum    string          `json:"sum"`
	Result []byte          `json:"result"`
}

// Options shape a store; zero values pick the documented defaults.
type Options struct {
	// Dir is the store directory (created if absent). Required.
	Dir string
	// MaxBytes bounds snapshot + journal disk use (default 256 MiB).
	// When a Put would exceed it the store compacts; if still over, it
	// degrades to memory-only mode.
	MaxBytes int64
	// CompactEvery triggers compaction after this many journal records
	// (default 512).
	CompactEvery int
	// Sync fsyncs the journal on every Put (default on via serve; turn
	// off only for throwaway stores — an unsynced record can be lost to
	// a hard kill).
	Sync bool
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 512
	}
	return o
}

// Stats is a point-in-time store summary; serve folds it into /metrics.
type Stats struct {
	// Entries and Bytes describe the live store.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Replayed counts records warm-loaded at Open (snapshot + journal,
	// after dedup); SkippedCorrupt counts undecodable lines and
	// SkippedVerify records whose digest or checksum failed
	// re-verification.
	Replayed       int `json:"replayed"`
	SkippedCorrupt int `json:"skipped_corrupt"`
	SkippedVerify  int `json:"skipped_verify"`
	// Persisted and Dropped count Puts since Open: appended durably vs
	// discarded (quota exhausted or degraded mode).
	Persisted uint64 `json:"persisted"`
	Dropped   uint64 `json:"dropped"`
	// Compactions counts snapshot rewrites since Open.
	Compactions uint64 `json:"compactions"`
	// Degraded is set once persistence has failed (append error or
	// quota); the store serves from memory only from then on.
	Degraded bool `json:"degraded"`
	// DegradedReason is the first failure that flipped Degraded.
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// Store is the persistent result store. Safe for concurrent use.
type Store struct {
	opts         Options
	snapshotPath string
	journalPath  string

	mu            sync.Mutex
	records       map[string]Record
	order         []string // insertion order, for deterministic compaction
	app           *journal.Appender
	snapshotBytes int64
	sinceCompact  int
	stats         Stats
}

// sum256 is the store's checksum: hex SHA-256, the same primitive the
// serve digest uses, so verification needs no serve import.
func sum256(data []byte) string {
	s := sha256.Sum256(data)
	return hex.EncodeToString(s[:])
}

// Verify checks a record's internal consistency: the digest must be the
// content address of the canonical config bytes and the checksum must
// match the response bytes.
func (r Record) Verify() error {
	if r.Digest == "" || len(r.Result) == 0 {
		return fmt.Errorf("store: empty record")
	}
	if got := sum256(r.Canon); got != r.Digest {
		return fmt.Errorf("store: digest mismatch: record %s, canon hashes to %s", r.Digest, got)
	}
	if got := sum256(r.Result); got != r.Sum {
		return fmt.Errorf("store: checksum mismatch for %s", r.Digest)
	}
	return nil
}

// Open loads (or initializes) the store in opts.Dir, replaying the
// snapshot and then the journal with full re-verification. It never
// fails on damaged records — only on environmental errors (directory
// not creatable, files unreadable).
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		opts:         opts,
		snapshotPath: filepath.Join(opts.Dir, "snapshot.jsonl"),
		journalPath:  filepath.Join(opts.Dir, "journal.jsonl"),
		records:      make(map[string]Record),
	}

	// Replay order matters: snapshot (older) first, journal (newer)
	// second, so a record present in both resolves to the journaled one.
	for _, path := range []string{s.snapshotPath, s.journalPath} {
		rep, err := journal.Scan(path, s.matchHeader, s.replay, false)
		if err != nil {
			return nil, err
		}
		s.stats.SkippedCorrupt += rep.Skipped
		if !rep.HeaderMatched {
			// A foreign-schema (or headerless) file would swallow fresh
			// appends behind a header the next load rejects: reset it to
			// this schema before writing anything after it.
			if st, statErr := os.Stat(path); statErr == nil && st.Size() > 0 {
				if err := journal.Rewrite(path, header{Schema: Schema}, nil); err != nil {
					return nil, fmt.Errorf("store: reset %s: %w", filepath.Base(path), err)
				}
			}
		}
	}
	s.stats.Replayed = len(s.records)

	if st, err := os.Stat(s.snapshotPath); err == nil {
		s.snapshotBytes = st.Size()
	}
	app, err := journal.OpenAppender(s.journalPath, header{Schema: Schema}, opts.Sync)
	if err != nil {
		// The directory exists but the journal cannot be opened for
		// writing (permissions, read-only mount): serve memory-only.
		s.degradeLocked("open journal: " + err.Error())
		return s, nil
	}
	s.app = app
	s.refreshSizeLocked()
	return s, nil
}

func (s *Store) matchHeader(line []byte) bool {
	var h header
	return json.Unmarshal(line, &h) == nil && h.Schema == Schema
}

// replay loads one journal/snapshot line, re-verifying it; damaged
// records are skipped (journal.Scan counts the ErrCorrupt returns, and
// verification failures are counted separately here).
func (s *Store) replay(line []byte) error {
	var r Record
	if json.Unmarshal(line, &r) != nil {
		return journal.ErrCorrupt
	}
	if err := r.Verify(); err != nil {
		s.stats.SkippedVerify++
		return nil // counted as a verification drop, not as corrupt
	}
	if _, seen := s.records[r.Digest]; !seen {
		s.order = append(s.order, r.Digest)
	}
	s.records[r.Digest] = r
	return nil
}

// Each returns the live records in deterministic (insertion) order —
// the warm-load iteration the serve cache seeds from.
func (s *Store) Each(fn func(Record)) {
	s.mu.Lock()
	digests := append([]string(nil), s.order...)
	recs := make([]Record, 0, len(digests))
	for _, d := range digests {
		recs = append(recs, s.records[d])
	}
	s.mu.Unlock()
	for _, r := range recs {
		fn(r)
	}
}

// Len returns the live record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Put persists one result. The record is durable (fsync'd, with Sync
// on) when Put returns true; false means the store dropped it — already
// present, over quota, or degraded — and serving continues memory-only
// for this record. Put never returns an error: persistence failures
// degrade the store instead of failing the job that computed the
// result.
func (s *Store) Put(digest string, canon json.RawMessage, result []byte) bool {
	r := Record{Digest: digest, Canon: canon, Sum: sum256(result), Result: result}
	if err := r.Verify(); err != nil {
		// The caller handed us bytes that do not hash to their digest;
		// never persist what a restart would refuse to load.
		s.mu.Lock()
		s.stats.Dropped++
		s.mu.Unlock()
		return false
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.Degraded {
		s.stats.Dropped++
		return false
	}
	if _, seen := s.records[digest]; seen {
		return false // identical by determinism; nothing to write
	}

	// Disk quota: estimate the appended line, compact if it would bust
	// the bound (dedup + dropping the double-counted journal usually
	// shrinks), and degrade if it still does not fit.
	// Everything below — quota check, compaction, journal append — runs
	// under s.mu on purpose: an off-lock append could interleave with a
	// concurrent compaction's journal reset and lose an acknowledged
	// record. The lock hierarchy is one-way (Store.mu -> Appender.mu,
	// never back), so the held fsyncs stall writers but cannot deadlock.
	line := int64(len(digest)+len(canon)+len(result)*4/3) + 128
	if s.sizeLocked()+line > s.opts.MaxBytes {
		//pimlint:lockorder — quota compaction must see the same record set the append below extends
		s.compactLocked()
		if s.sizeLocked()+line > s.opts.MaxBytes {
			s.degradeLocked(fmt.Sprintf("disk quota: %d bytes used of %d", s.sizeLocked(), s.opts.MaxBytes))
			s.stats.Dropped++
			return false
		}
	}

	//pimlint:lockorder — persist-before-fulfill: the fsync'd append must serialize with compaction under s.mu or a record can be lost to a concurrent journal reset
	if err := s.app.Append(r); err != nil {
		s.degradeLocked("append: " + err.Error())
		s.stats.Dropped++
		return false
	}
	s.records[digest] = r
	s.order = append(s.order, digest)
	s.stats.Persisted++
	s.sinceCompact++
	if s.sinceCompact >= s.opts.CompactEvery {
		//pimlint:lockorder — periodic compaction snapshots the record set it just extended; same serialization argument as above
		s.compactLocked()
	}
	s.refreshSizeLocked()
	return true
}

// Compact folds the journal into a fresh snapshot: the full record set
// is rewritten atomically to snapshot.jsonl, then the journal is reset
// to a bare header. A kill between the two steps only leaves records
// present in both files — replay dedup makes that harmless.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//pimlint:lockorder — snapshot rewrite + journal reset must be atomic w.r.t. Put; s.mu leads only to Appender.mu
	s.compactLocked()
}

func (s *Store) compactLocked() {
	if s.stats.Degraded {
		return
	}
	err := journal.Rewrite(s.snapshotPath, header{Schema: Schema}, func(enc *json.Encoder) error {
		for _, d := range s.order {
			if err := enc.Encode(s.records[d]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		s.degradeLocked("compact snapshot: " + err.Error())
		return
	}
	// Snapshot is durable; now the journal may be emptied.
	if s.app != nil {
		//pimlint:besteffort — every journaled record is already folded into the fsync'd snapshot; a close failure cannot lose acknowledged data
		s.app.Close()
		s.app = nil
	}
	if err := journal.Rewrite(s.journalPath, header{Schema: Schema}, nil); err != nil {
		s.degradeLocked("compact journal reset: " + err.Error())
		return
	}
	app, err := journal.OpenAppender(s.journalPath, header{Schema: Schema}, s.opts.Sync)
	if err != nil {
		s.degradeLocked("compact reopen: " + err.Error())
		return
	}
	s.app = app
	s.sinceCompact = 0
	s.stats.Compactions++
	if st, err := os.Stat(s.snapshotPath); err == nil {
		s.snapshotBytes = st.Size()
	}
	s.refreshSizeLocked()
}

func (s *Store) degradeLocked(reason string) {
	if s.stats.Degraded {
		return
	}
	s.stats.Degraded = true
	s.stats.DegradedReason = reason
	if s.app != nil {
		//pimlint:besteffort — best-effort teardown on the way into degraded memory-only mode; the store already stopped promising durability
		s.app.Close()
		s.app = nil
	}
}

func (s *Store) sizeLocked() int64 {
	sz := s.snapshotBytes
	if s.app != nil {
		sz += s.app.Size()
	}
	return sz
}

func (s *Store) refreshSizeLocked() {
	s.stats.Bytes = s.sizeLocked()
	s.stats.Entries = len(s.records)
}

// Degraded reports whether persistence has failed and the store is
// memory-only.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Degraded
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshSizeLocked()
	return s.stats
}

// Close compacts once (folding the journal into the snapshot so the
// next Open replays one clean file) and releases the journal handle.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//pimlint:lockorder — final compaction must exclude concurrent Puts while the journal handle is torn down
	s.compactLocked()
	if s.app != nil {
		//pimlint:besteffort — compactLocked just folded the journal into the fsync'd snapshot (or degraded the store); the handle holds no unpersisted data
		s.app.Close()
		s.app = nil
	}
}
