package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestCacheMissHitJoin(t *testing.T) {
	c := NewCache(8, telemetry.NewRegistry())

	e, out := c.Lookup("d1")
	if out != OutcomeMiss {
		t.Fatalf("first lookup: outcome %v, want miss", out)
	}

	// A second lookup while in flight joins.
	e2, out := c.Lookup("d1")
	if out != OutcomeJoin || e2 != e {
		t.Fatalf("in-flight lookup: outcome %v entry match %v, want join on same entry", out, e2 == e)
	}

	c.Fulfill(e, []byte("r1"))
	if data, err := e2.Wait(context.Background()); err != nil || string(data) != "r1" {
		t.Fatalf("joined Wait = %q, %v", data, err)
	}

	e3, out := c.Lookup("d1")
	if out != OutcomeHit || string(e3.Result()) != "r1" {
		t.Fatalf("post-fulfill lookup: outcome %v result %q", out, e3.Result())
	}

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Joins != 1 || s.Entries != 1 || s.Inflight != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if want := 2.0 / 3.0; s.HitRate < want-1e-9 || s.HitRate > want+1e-9 {
		t.Fatalf("hit rate %v, want %v", s.HitRate, want)
	}
}

func TestCacheAbandonIsNotCached(t *testing.T) {
	c := NewCache(8, telemetry.NewRegistry())
	e, _ := c.Lookup("d1")

	errs := make(chan error, 1)
	go func() {
		_, err := e.Wait(context.Background())
		errs <- err
	}()
	boom := errors.New("boom")
	c.Abandon(e, boom)
	if err := <-errs; !errors.Is(err, boom) {
		t.Fatalf("joined waiter got %v, want %v", err, boom)
	}

	// The failure was not cached: the next lookup owns a fresh entry.
	e2, out := c.Lookup("d1")
	if out != OutcomeMiss || e2 == e {
		t.Fatalf("lookup after abandon: outcome %v fresh %v, want a fresh miss", out, e2 != e)
	}
	c.Fulfill(e2, []byte("ok"))
	if _, out := c.Lookup("d1"); out != OutcomeHit {
		t.Fatalf("lookup after recompute: outcome %v, want hit", out)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2, telemetry.NewRegistry())
	for i := 0; i < 3; i++ {
		e, out := c.Lookup(fmt.Sprintf("d%d", i))
		if out != OutcomeMiss {
			t.Fatalf("d%d: outcome %v", i, out)
		}
		c.Fulfill(e, []byte{byte(i)})
	}
	// d0 is the LRU victim; d1 and d2 survive.
	if _, out := c.Lookup("d0"); out != OutcomeMiss {
		t.Fatalf("d0 survived eviction (outcome %v)", out)
	}
	// That miss created an in-flight entry; resolve it.
	c.Abandon(c.entries["d0"], errors.New("unused"))
	if _, out := c.Lookup("d1"); out != OutcomeHit {
		t.Fatalf("d1 evicted early (outcome %v)", out)
	}
	if _, out := c.Lookup("d2"); out != OutcomeHit {
		t.Fatalf("d2 evicted early (outcome %v)", out)
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", s)
	}
}

func TestCacheWaitHonorsContext(t *testing.T) {
	c := NewCache(2, telemetry.NewRegistry())
	e, _ := c.Lookup("d1")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := e.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on unresolved entry = %v, want deadline exceeded", err)
	}
	c.Abandon(e, errors.New("cleanup"))
}

// TestCacheSingleFlightConcurrent hammers one digest from many
// goroutines: exactly one owns the computation, everyone converges on
// the same bytes.
func TestCacheSingleFlightConcurrent(t *testing.T) {
	c := NewCache(8, telemetry.NewRegistry())
	const n = 64
	var owners int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, out := c.Lookup("hot")
			switch out {
			case OutcomeMiss:
				mu.Lock()
				owners++
				mu.Unlock()
				time.Sleep(time.Millisecond) // widen the in-flight window
				c.Fulfill(e, []byte("value"))
				results[i] = e.Result()
			default:
				data, err := e.Wait(context.Background())
				if err != nil {
					t.Errorf("waiter %d: %v", i, err)
					return
				}
				results[i] = data
			}
		}(i)
	}
	wg.Wait()
	if owners != 1 {
		t.Fatalf("%d owners for one digest, want exactly 1", owners)
	}
	for i, r := range results {
		if string(r) != "value" {
			t.Fatalf("goroutine %d saw %q", i, r)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits+s.Joins != n-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+joins", s, n-1)
	}
}
