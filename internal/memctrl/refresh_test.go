package memctrl

import (
	"testing"

	"repro/internal/config"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/stats"
)

// TestControllerServicesRefresh: with the supplemental refresh model
// enabled, the controller drains, closes banks, refreshes on schedule,
// and still completes its request stream.
func TestControllerServicesRefresh(t *testing.T) {
	cfg := config.Paper()
	cfg.Memory.Timing.TREFI = 300
	cfg.Memory.Timing.TRFC = 60
	var st stats.Channel
	var done captured
	c := New(0, cfg, sched.NewFRFCFS(), &st, done.fn)

	// Feed a steady trickle of MEM reads across 2000 cycles. Bank and
	// row derive from the injection slot counter, not the cycle counter
	// (cyclesafe: cycle values must never be narrowed).
	fed, slot := 0, 0
	for now := uint64(0); now < 2000; now++ {
		if now%20 == 0 {
			if c.CanAccept(request.MemRead) {
				c.Enqueue(memReq(0, slot%16, uint32(slot/5), 0, false))
				fed++
			}
			slot++
		}
		c.Tick(now)
	}
	// Let the tail drain.
	for now := uint64(2000); now < 2500; now++ {
		c.Tick(now)
	}
	if st.Refreshes < 5 {
		t.Errorf("refreshes = %d over 2500 cycles at tREFI=300, want >= 5", st.Refreshes)
	}
	if len(done.reqs) != fed {
		t.Errorf("completed %d of %d requests with refresh enabled", len(done.reqs), fed)
	}
}

// TestRefreshInterruptsPIMMode: refreshes must also preempt PIM
// servicing.
func TestRefreshInterruptsPIMMode(t *testing.T) {
	cfg := config.Paper()
	cfg.Memory.Timing.TREFI = 200
	cfg.Memory.Timing.TRFC = 60
	var st stats.Channel
	var done captured
	c := New(0, cfg, sched.NewPIMFirst(), &st, done.fn)
	total := 0
	block := 0
	for now := uint64(0); now < 3000; now++ {
		if now%10 == 0 && c.CanAccept(request.PIMOp) {
			c.Enqueue(pimReq(0, uint32(block%64), block, 0, request.PIMLoad))
			block++
			total++
		}
		c.Tick(now)
	}
	// Each single-op block pays a broadcast PRE+ACT (~26 cycles), so the
	// backlog needs a long drain window.
	for now := uint64(3000); now < 9000 && c.Pending(); now++ {
		c.Tick(now)
	}
	if st.Refreshes < 10 {
		t.Errorf("refreshes = %d, want >= 10", st.Refreshes)
	}
	if len(done.reqs) != total {
		t.Errorf("completed %d of %d PIM ops with refresh enabled", len(done.reqs), total)
	}
}
