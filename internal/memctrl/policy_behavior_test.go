package memctrl

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/stats"
)

// These tests run each scheduling policy on one controller with a canned
// mixed MEM/PIM backlog and assert the policy's service-order signature —
// the end-to-end behavior the policy unit tests cannot see.

// mixedBacklog enqueues 6 MEM reads (two rows on bank 0, one on bank 1)
// and two PIM blocks (rows 9 and 10, 4 ops each), PIM first so the PIM
// requests are older.
func mixedBacklog(c *Controller) (mems, pims []*request.Request) {
	for blk, row := range []uint32{9, 10} {
		for op := 0; op < 4; op++ {
			r := pimReq(0, row, blk, op%8, request.PIMLoad)
			c.Enqueue(r)
			pims = append(pims, r)
		}
	}
	for i := 0; i < 3; i++ {
		r := memReq(0, 0, 5, uint32(i), false)
		c.Enqueue(r)
		mems = append(mems, r)
	}
	for i := 0; i < 2; i++ {
		r := memReq(0, 0, 6, uint32(i), false)
		c.Enqueue(r)
		mems = append(mems, r)
	}
	r := memReq(0, 1, 7, 0, false)
	c.Enqueue(r)
	mems = append(mems, r)
	return mems, pims
}

func runPolicy(t *testing.T, policy sched.Policy) (order []*request.Request, st stats.Channel) {
	t.Helper()
	var done captured
	cfg := config.Paper()
	c := New(0, cfg, policy, &st, done.fn)
	mems, pims := mixedBacklog(c)
	for now := uint64(0); now < 3000 && len(done.reqs) < len(mems)+len(pims); now++ {
		c.Tick(now)
	}
	if len(done.reqs) != len(mems)+len(pims) {
		t.Fatalf("%s: completed %d of %d", policy.Name(), len(done.reqs), len(mems)+len(pims))
	}
	return done.reqs, st
}

func splitKinds(order []*request.Request) (firstMem, firstPIM, lastMem, lastPIM int) {
	firstMem, firstPIM = -1, -1
	for i, r := range order {
		if r.Kind == request.PIMOp {
			if firstPIM < 0 {
				firstPIM = i
			}
			lastPIM = i
		} else {
			if firstMem < 0 {
				firstMem = i
			}
			lastMem = i
		}
	}
	return firstMem, firstPIM, lastMem, lastPIM
}

func TestBehaviorFCFSStrictArrivalOrder(t *testing.T) {
	order, _ := runPolicy(t, sched.NewFCFS())
	for i := 1; i < len(order); i++ {
		if order[i].SeqNo < order[i-1].SeqNo {
			t.Fatalf("FCFS reordered: %v before %v", order[i-1], order[i])
		}
	}
}

func TestBehaviorMemFirstServesAllMEMFirst(t *testing.T) {
	order, _ := runPolicy(t, sched.NewMemFirst())
	_, firstPIM, lastMem, _ := splitKinds(order)
	if firstPIM < lastMem {
		t.Fatalf("MEM-First served a PIM op (pos %d) before the last MEM (pos %d)", firstPIM, lastMem)
	}
}

func TestBehaviorPIMFirstServesAllPIMFirst(t *testing.T) {
	order, _ := runPolicy(t, sched.NewPIMFirst())
	firstMem, _, _, lastPIM := splitKinds(order)
	if firstMem < lastPIM {
		t.Fatalf("PIM-First served a MEM request (pos %d) before the last PIM op (pos %d)", firstMem, lastPIM)
	}
}

func TestBehaviorFRFCFSServesOlderPIMAtConflictPoints(t *testing.T) {
	// PIM requests are older; FR-FCFS starts in MEM mode with no open
	// rows, so every bank conflicts and the controller must switch to
	// PIM immediately (conflict bits + older other-mode requests).
	order, st := runPolicy(t, sched.NewFRFCFS())
	if order[0].Kind != request.PIMOp {
		t.Fatalf("FR-FCFS first service %v, want the older PIM stream", order[0])
	}
	if st.Switches == 0 {
		t.Fatal("FR-FCFS never switched")
	}
}

func TestBehaviorF3FSFinishesCurrentModeFirst(t *testing.T) {
	// F3FS starts in MEM mode; with CAPs far above the backlog it must
	// drain every MEM request before touching the (older!) PIM queue —
	// current mode first.
	order, st := runPolicy(t, core.NewF3FS(256, 256))
	_, firstPIM, lastMem, _ := splitKinds(order)
	if firstPIM < lastMem {
		t.Fatalf("F3FS left MEM mode early (PIM at %d, last MEM at %d)", firstPIM, lastMem)
	}
	if st.Switches != 1 {
		t.Errorf("F3FS switches = %d, want exactly 1 (MEM backlog, then PIM backlog)", st.Switches)
	}
}

func TestBehaviorF3FSCapBoundsBypasses(t *testing.T) {
	// With a MEM CAP of 2, F3FS may serve at most 2 MEM requests past
	// the older PIM queue before switching.
	order, _ := runPolicy(t, core.NewF3FS(2, 256))
	memsBeforePIM := 0
	for _, r := range order {
		if r.Kind == request.PIMOp {
			break
		}
		memsBeforePIM++
	}
	if memsBeforePIM > 2 {
		t.Fatalf("F3FS served %d MEM requests past its CAP of 2", memsBeforePIM)
	}
}

func TestBehaviorFRRRAlternatesService(t *testing.T) {
	// FR-RR must interleave: at least two transitions between kinds in
	// the completion order (MEM rows 5->6 conflict hands over, PIM
	// block boundary hands back).
	order, st := runPolicy(t, sched.NewFRRRFCFS())
	transitions := 0
	for i := 1; i < len(order); i++ {
		if (order[i].Kind == request.PIMOp) != (order[i-1].Kind == request.PIMOp) {
			transitions++
		}
	}
	if transitions < 2 {
		t.Fatalf("FR-RR transitions = %d, want interleaving (completions: %v)", transitions, order)
	}
	if st.Switches < 2 {
		t.Errorf("FR-RR switches = %d", st.Switches)
	}
}

func TestBehaviorGatherIssueBelowWatermark(t *testing.T) {
	// 8 queued PIM ops sit below the high watermark (56): G&I serves
	// MEM first and lets PIM trickle only when MEM is empty.
	order, _ := runPolicy(t, sched.NewGatherIssue(56, 32))
	_, firstPIM, lastMem, _ := splitKinds(order)
	if firstPIM < lastMem {
		t.Fatalf("G&I served PIM (pos %d) before MEM drained (pos %d) below the watermark", firstPIM, lastMem)
	}
}

func TestBehaviorGatherIssueHighWatermarkDrains(t *testing.T) {
	// Fill the PIM queue to the high watermark: G&I must switch to PIM
	// and drain to the low watermark before resuming MEM.
	var done captured
	var st stats.Channel
	cfg := config.Paper()
	c := New(0, cfg, sched.NewGatherIssue(56, 32), &st, done.fn)
	for i := 0; i < 56; i++ {
		c.Enqueue(pimReq(0, uint32(9+i/8), i/8, i%8, request.PIMLoad))
	}
	m := memReq(0, 0, 5, 0, false)
	c.Enqueue(m)
	for now := uint64(0); now < 500 && len(done.reqs) < 25; now++ {
		c.Tick(now)
	}
	// The first ~24 completions (draining 56 -> 32) must all be PIM.
	for i, r := range done.reqs {
		if i < 24 && r.Kind != request.PIMOp {
			t.Fatalf("G&I completion %d is %v during the gather drain", i, r)
		}
	}
}

func TestBehaviorBLISSBreaksPIMStreaks(t *testing.T) {
	// BLISS with threshold 4 must not let the older 8-op PIM backlog
	// run to completion before MEM gets service.
	order, _ := runPolicy(t, sched.NewBLISS(4, 100000))
	_, _, _, lastPIM := splitKinds(order)
	firstMem := -1
	for i, r := range order {
		if r.Kind != request.PIMOp {
			firstMem = i
			break
		}
	}
	if firstMem < 0 || firstMem > lastPIM {
		t.Fatalf("BLISS never interleaved MEM into the PIM stream (first MEM at %d, last PIM at %d)", firstMem, lastPIM)
	}
}

func TestBehaviorSMSBatchQuantum(t *testing.T) {
	// A 4-request batch policy must alternate in groups no larger than
	// its batch size once both queues are loaded.
	order, st := runPolicy(t, sched.NewSMSBatch(4))
	run := 1
	for i := 1; i < len(order); i++ {
		if (order[i].Kind == request.PIMOp) == (order[i-1].Kind == request.PIMOp) {
			run++
			if run > 4+1 { // +1 tolerance: a drain-boundary request may slip in
				t.Fatalf("sms-batch run of %d same-kind services exceeds batch 4", run)
			}
		} else {
			run = 1
		}
	}
	if st.Switches < 2 {
		t.Errorf("sms-batch switches = %d", st.Switches)
	}
}
