package memctrl

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/stats"
)

// These tests pin the controller's NextEvent contract in isolation:
//
//  1. Lower bound: NextEvent(now) > now, always.
//  2. Skip safety: ticking only at NextEvent cycles (plus enqueue wakes,
//     exactly as the event engine does) leaves every observable —
//     statistics, queue lengths, completion order and timing — bit-
//     identical to ticking every cycle. Equality of the per-cycle twin
//     and the event-gated twin is precisely the statement that ticking
//     any cycle strictly before NextEvent is a no-op on controller state.
//
// The throttle variant regression-pins the fuzzer-found miss where a
// DesiredMode mismatch inside an upcoming throttle window returned the
// window end, sleeping past an in-flight completion.

type arrival struct {
	pim   bool
	bank  int
	row   uint32
	col   uint32
	write bool
	block int
	entry int
}

func (a arrival) make() *request.Request {
	if a.pim {
		return pimReq(0, a.row, a.block, a.entry, request.PIMLoad)
	}
	return memReq(0, a.bank, a.row, a.col, a.write)
}

// buildScript scatters MEM arrivals and ordered PIM blocks over n cycles.
func buildScript(n uint64, banks int, seed int64) map[uint64][]arrival {
	rng := rand.New(rand.NewSource(seed))
	script := make(map[uint64][]arrival)
	pimIdx := 0
	for now := uint64(1); now < n; now++ {
		if rng.Float64() < 0.03 {
			script[now] = append(script[now], arrival{
				bank:  rng.Intn(banks),
				row:   uint32(rng.Intn(24)),
				col:   uint32(rng.Intn(64)),
				write: rng.Float64() < 0.3,
			})
		}
		if rng.Float64() < 0.004 {
			// One full PIM block: 8 entries, sequential block numbers
			// (lockstep execution requires in-order blocks).
			blk := pimIdx / 8 * 8
			for k := 0; k < 8; k++ {
				script[now] = append(script[now], arrival{
					pim: true, row: uint32(9 + (pimIdx/8)%16),
					block: blk / 8, entry: pimIdx % 8,
				})
				pimIdx++
			}
		}
	}
	return script
}

func runNextEventEquivalence(t *testing.T, fs faults.Schedule, seed int64) {
	t.Helper()
	const n = 40_000
	cfg := config.Paper()
	script := buildScript(n, cfg.Memory.Banks, seed)

	stA, stB := &stats.Channel{}, &stats.Channel{}
	doneA, doneB := &captured{}, &captured{}
	a := New(0, cfg, sched.NewFRFCFS(), stA, doneA.fn)
	b := New(0, cfg, sched.NewFRFCFS(), stB, doneB.fn)
	if fs != (faults.Schedule{}) {
		a.SetFaults(faults.NewInjector(fs, 1, 0))
		b.SetFaults(faults.NewInjector(fs, 1, 0))
	}

	bNext := uint64(0)
	for now := uint64(1); now < n; now++ {
		wake := false
		for _, spec := range script[now] {
			ra, rb := spec.make(), spec.make()
			rb.ID = ra.ID // the two streams share IDs for comparison
			ca, cb := a.CanAccept(ra.Kind), b.CanAccept(rb.Kind)
			if ca != cb {
				t.Fatalf("cycle %d: CanAccept diverged: per-cycle %v, event %v", now, ca, cb)
			}
			if !ca {
				continue
			}
			a.Enqueue(ra)
			b.SyncTo(now - 1) // the event engine closes accounting before stamping arrivals
			b.Enqueue(rb)
			wake = true
		}
		a.Tick(now)
		if wake || bNext <= now {
			b.Tick(now)
			bNext = b.NextEvent(now)
			if bNext <= now {
				t.Fatalf("NextEvent(%d) = %d: not strictly after now", now, bNext)
			}
		}
	}
	a.SyncTo(n - 1)
	b.SyncTo(n - 1)

	if !reflect.DeepEqual(stA, stB) {
		t.Errorf("statistics diverged:\n per-cycle %+v\n event     %+v", stA, stB)
	}
	am, ap := a.QueueLens()
	bm, bp := b.QueueLens()
	if am != bm || ap != bp {
		t.Errorf("queue lengths diverged: per-cycle (%d,%d), event (%d,%d)", am, ap, bm, bp)
	}
	if len(doneA.reqs) != len(doneB.reqs) {
		t.Fatalf("completion counts diverged: per-cycle %d, event %d", len(doneA.reqs), len(doneB.reqs))
	}
	for i := range doneA.reqs {
		if doneA.reqs[i].ID != doneB.reqs[i].ID || doneA.times[i] != doneB.times[i] {
			t.Fatalf("completion %d diverged: per-cycle req#%d@%d, event req#%d@%d",
				i, doneA.reqs[i].ID, doneA.times[i], doneB.reqs[i].ID, doneB.times[i])
		}
	}
}

func TestNextEventEquivalenceClean(t *testing.T) {
	runNextEventEquivalence(t, faults.Schedule{}, 1)
}

func TestNextEventEquivalenceThrottled(t *testing.T) {
	// Windows short enough that several mode switches land inside or
	// adjacent to one — the configuration class the fuzzer's
	// counterexample came from.
	runNextEventEquivalence(t, faults.Schedule{
		Seed: 7, ThrottlePeriod: 3_000, ThrottleWindow: 400,
	}, 2)
}
