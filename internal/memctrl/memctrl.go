// Package memctrl implements the per-channel memory controller of Fig. 1:
// separate MEM and PIM queues (64 entries each in Table I), an arbiter
// that switches between MEM and PIM modes under a pluggable scheduling
// policy, an FR-FCFS engine within MEM mode, FCFS execution of PIM
// requests, and the mode-switch drain semantics of Fig. 9 — a MEM->PIM
// switch stalls new issue and waits for every in-flight MEM request to
// complete, accumulating bank idle time that the statistics record as
// drain latency.
package memctrl

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/invariant"
	"repro/internal/pim"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// CompletionFunc is invoked when a request finishes at the DRAM (data
// returned for reads, write recovery elapsed for writes, lockstep op
// executed for PIM). now is the DRAM cycle of completion.
type CompletionFunc func(req *request.Request, now uint64)

type inflight struct {
	req    *request.Request
	doneAt uint64
}

// Controller is one channel's memory controller.
type Controller struct {
	channelID int
	mem       config.Memory
	ch        *dram.Channel
	units     *pim.Units
	policy    sched.Policy
	st        *stats.Channel
	complete  CompletionFunc

	memQ []*request.Request
	pimQ []*request.Request
	seq  uint64

	mode       sched.Mode
	switching  bool
	target     sched.Mode
	drainStart uint64

	inflight []inflight
	now      uint64

	// acct is the last DRAM cycle whose per-cycle accounting (queue
	// occupancy sums, mode residency, DRAM activity, throttle counts)
	// has been applied. The event engine leaves the controller unticked
	// across cycles it has proven quiescent; Tick and SyncTo close the
	// gap in closed form before acting, so the accounting a per-cycle
	// run accumulates is reproduced bit-identically.
	acct uint64

	// vw is the policy-facing view, built once at construction: view is
	// a value type, so converting it to sched.View at every policy call
	// would box an allocation onto the per-cycle path (hotalloc).
	vw sched.View

	tr *trace.Recorder // nil = tracing off

	// Telemetry handles; nil when telemetry is off (their methods no-op
	// on nil receivers, so the hot path pays only the calls).
	tmMemMode   *telemetry.Counter
	tmPIMMode   *telemetry.Counter
	tmDrain     *telemetry.Counter
	tmDrainHist *telemetry.Histogram

	// Fault injector handle; nil (the default) means no injection.
	flt *faults.Injector

	// Per-bank FR-FCFS index: bankQ[b] holds the MEM queue's requests to
	// bank b in arrival (SeqNo) order, so the per-bank "oldest" candidate
	// is a head read instead of a full-queue scan. candHit[b] caches the
	// bank's oldest row-hit request; it is valid while hitKnown[b] is set
	// AND the bank's DRAM row epoch still equals hitEpoch[b] — any row
	// transition or removal of the cached request forces a rescan of that
	// bank's (short) list. candList is the scratch candidate slice.
	bankQ    [][]*request.Request
	candHit  []*request.Request
	hitKnown []bool
	hitEpoch []uint64
	candList []*request.Request

	// cons backs the simdebug request-conservation assertion; untouched
	// in release builds (see invariants.go).
	cons conservation
}

// New builds a controller for one channel. st and complete may be nil.
func New(channelID int, cfg config.Config, policy sched.Policy, st *stats.Channel, complete CompletionFunc) *Controller {
	c := &Controller{
		channelID: channelID,
		mem:       cfg.Memory,
		ch:        dram.NewChannel(cfg.Memory, cfg.PIM, st),
		units:     pim.NewUnits(cfg.Memory, cfg.PIM),
		policy:    policy,
		st:        st,
		complete:  complete,
		memQ:      make([]*request.Request, 0, cfg.Memory.MemQSize),
		pimQ:      make([]*request.Request, 0, cfg.Memory.PIMQSize),
		mode:      sched.ModeMEM,
		bankQ:     make([][]*request.Request, cfg.Memory.Banks),
		candHit:   make([]*request.Request, cfg.Memory.Banks),
		hitKnown:  make([]bool, cfg.Memory.Banks),
		hitEpoch:  make([]uint64, cfg.Memory.Banks),
		candList:  make([]*request.Request, 0, cfg.Memory.Banks),
		// Every queued request can be in flight at once, so sizing the
		// buffer to both queues keeps Tick append-only after warmup.
		inflight: make([]inflight, 0, cfg.Memory.MemQSize+cfg.Memory.PIMQSize),
	}
	// Worst case every queued MEM request targets one bank, so each bank
	// list is sized to the whole queue to keep Enqueue append-only.
	for b := range c.bankQ {
		c.bankQ[b] = make([]*request.Request, 0, cfg.Memory.MemQSize)
	}
	c.vw = view{c}
	return c
}

// Channel exposes the DRAM timing model (tests and detailed probes).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// SetTrace installs an event recorder (nil disables tracing).
func (c *Controller) SetTrace(tr *trace.Recorder) { c.tr = tr }

// SetTelemetry installs this channel's telemetry handles (nil disables)
// and forwards the DRAM command counters to the timing model.
func (c *Controller) SetTelemetry(tm *telemetry.ChannelMetrics) {
	if tm == nil {
		c.tmMemMode, c.tmPIMMode, c.tmDrain, c.tmDrainHist = nil, nil, nil, nil
		c.ch.SetTelemetry(nil)
		return
	}
	c.tmMemMode = tm.MemModeCycles
	c.tmPIMMode = tm.PIMModeCycles
	c.tmDrain = tm.DrainCycles
	c.tmDrainHist = tm.DrainLatency
	c.ch.SetTelemetry(tm)
}

// SetFaults attaches the run's fault injector (nil disables injection)
// and forwards it to the DRAM timing model for CAS retries.
func (c *Controller) SetFaults(inj *faults.Injector) {
	c.flt = inj
	c.ch.SetFaults(inj, c.channelID)
}

// Trace returns the installed recorder, if any.
func (c *Controller) Trace() *trace.Recorder { return c.tr }

func (c *Controller) record(kind trace.Kind, bank int, row uint32, reqID uint64, note string) {
	if c.tr == nil {
		return
	}
	c.tr.Record(trace.Event{
		Cycle: c.now, Kind: kind, Channel: c.channelID,
		Bank: bank, Row: row, ReqID: reqID, Note: note,
	})
}

// Units exposes the PIM functional units.
func (c *Controller) Units() *pim.Units { return c.units }

// Mode returns the currently serviced mode.
func (c *Controller) Mode() sched.Mode { return c.mode }

// Switching reports whether a drain toward a mode switch is in progress.
func (c *Controller) Switching() bool { return c.switching }

// Policy returns the installed scheduling policy.
func (c *Controller) Policy() sched.Policy { return c.policy }

// CanAccept reports whether a request of the given kind has queue space.
func (c *Controller) CanAccept(kind request.Kind) bool {
	if kind == request.PIMOp {
		return len(c.pimQ) < c.mem.PIMQSize
	}
	return len(c.memQ) < c.mem.MemQSize
}

// Enqueue admits a request, stamping its controller arrival order (the
// age used by F3FS) and arrival cycle. It returns false without side
// effects when the corresponding queue is full.
func (c *Controller) Enqueue(req *request.Request) bool {
	if !c.CanAccept(req.Kind) {
		return false
	}
	req.SeqNo = c.seq
	c.seq++
	req.ArriveMCCycle = c.now
	req.RowClassified = false
	if req.Kind == request.PIMOp {
		c.pimQ = append(c.pimQ, req)
	} else {
		c.memQ = append(c.memQ, req)
		b := req.Bank
		c.bankQ[b] = append(c.bankQ[b], req)
		// A still-valid "no row hit in this bank" cache entry can be
		// upgraded in place: the arrival is younger than everything
		// cached, so it becomes the oldest hit only if none existed.
		if c.hitKnown[b] && c.hitEpoch[b] == c.ch.RowEpoch(b) &&
			c.candHit[b] == nil && c.ch.IsRowHit(b, req.Row) {
			c.candHit[b] = req
		}
	}
	c.record(trace.EvEnqueue, req.Bank, req.Row, req.ID, req.Kind.String())
	if invariant.Enabled {
		c.cons.enqueued++
	}
	return true
}

// QueueLens returns the current MEM and PIM queue occupancies.
func (c *Controller) QueueLens() (mem, pim int) { return len(c.memQ), len(c.pimQ) }

// Pending reports whether any work remains queued or in flight.
func (c *Controller) Pending() bool {
	return len(c.memQ) > 0 || len(c.pimQ) > 0 || len(c.inflight) > 0
}

// --- next-event scheduling -------------------------------------------------

const never = ^uint64(0)

// syncRange applies the per-cycle accounting Tick performs for every
// DRAM cycle in [from, to], in closed form, under the event engine's
// guarantee that the controller was quiescent across the range: no
// enqueue, no completion, no command issue, no arbitration change. All
// quantities are linear in the cycle count with frozen coefficients, so
// the result is bit-identical to ticking each cycle.
func (c *Controller) syncRange(from, to uint64) {
	if to < from {
		return
	}
	d := to - from + 1
	c.ch.SyncActivity(from, to)
	if c.st != nil {
		c.st.MemQOccupancySum += d * uint64(len(c.memQ))
		c.st.PIMQOccupancySum += d * uint64(len(c.pimQ))
		c.st.SampledCycles += d
	}
	if c.switching {
		c.tmDrain.Add(d)
	} else if c.mode == sched.ModeMEM {
		c.tmMemMode.Add(d)
	} else {
		c.tmPIMMode.Add(d)
	}
	if c.flt != nil {
		c.flt.ThrottledRange(c.channelID, from, to)
	}
}

// SyncTo closes the controller's deferred accounting through DRAM cycle
// now and stamps its clock, without running the command engines. The
// event engine calls it before enqueuing into a skipped controller (so
// ArriveMCCycle and trace timestamps match the per-cycle engine, whose
// drain stage runs with the clock one behind the tick) and before
// reading statistics or telemetry mid-run. A no-op for cycles already
// accounted.
func (c *Controller) SyncTo(now uint64) {
	if now <= c.acct {
		return
	}
	c.syncRange(c.acct+1, now)
	c.acct = now
	c.now = now
}

// NextEvent returns the earliest DRAM cycle strictly after now at which
// Tick could change controller, DRAM, policy, or statistics state beyond
// the closed-form accounting SyncTo reproduces. It must be called when
// the controller's clock is at now (immediately after Tick(now) or
// SyncTo(now)); the sim must additionally wake the controller whenever it
// enqueues a request. Waking earlier than necessary is harmless — Tick
// is exact at every cycle — but waking late would diverge from the
// per-cycle engine, a contract pinned by the differential harness and
// the FuzzNextEvent fuzzer.
func (c *Controller) NextEvent(now uint64) uint64 {
	next := never
	// In-flight completions run before the throttle gate, so they are
	// not deferred by throttle windows.
	for i := range c.inflight {
		if at := c.inflight[i].doneAt; at < next {
			next = at
		}
	}
	// The result is floored at now+1, so once any bound reaches the
	// floor the remaining (more expensive) stages cannot lower it —
	// return immediately. In bus-saturated phases a completion is due
	// nearly every cycle, making this the common exit.
	if next <= now+1 {
		return now + 1
	}
	// Refresh outranks arbitration; while a deadline is due the
	// controller precharges/refreshes across consecutive cycles, so tick
	// them all rather than modeling the (bounded) sequence.
	if at := c.ch.RefreshAt(); at > 0 {
		if at <= now {
			return now + 1
		}
		if at < next {
			next = at
		}
	}
	if next <= now+1 {
		return now + 1
	}
	// Inside a throttle window the per-cycle engine consults nothing
	// past the gate (in particular not the policy, whose evaluation can
	// carry side effects like BLISS's clear clock). Tick through the
	// window rather than model it.
	if c.flt != nil && c.flt.Throttled(c.channelID, now) {
		return now + 1
	}
	if !c.switching {
		// Tick calls the policy's DesiredMode before OnIssue, so a
		// decision input mutated by this cycle's issue (an exhausted
		// bypass cap, an emptied queue) flips the desired mode only at
		// the next arbitration — which the per-cycle engine reaches at
		// the next unthrottled cycle. Policies are required to be
		// idempotent for frozen inputs, so the extra evaluation here is
		// equivalence-safe.
		if c.policy.DesiredMode(c.vw) != c.mode {
			// The switch starts at the next unthrottled cycle, but
			// completions (already folded into next) run before the
			// throttle gate — a window must not defer their wake.
			if at := c.flt.NextUnthrottled(c.channelID, now+1); at < next {
				next = at
			}
			if next <= now {
				return now + 1
			}
			return next
		}
		// Time-sensitive policies (BLISS's blacklist clear) re-decide on
		// a clock deadline even with frozen queues. The per-cycle engine
		// consults the policy only on unthrottled cycles.
		if ts, ok := c.policy.(sched.TimeSensitive); ok {
			at := c.flt.NextUnthrottled(c.channelID, ts.NextPolicyEvent(now))
			if at < next {
				next = at
			}
		}
		if next <= now+1 {
			return now + 1
		}
		if at := c.nextIssueAt(); at < next {
			next = at
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// nextIssueAt returns the earliest cycle the current mode's issue engine
// could act on its frozen queue and row-buffer state, gated by throttle
// windows (which block new issue but not completions). It mirrors
// issueMEM/issuePIM: the minimum over exactly the command-legality
// deadlines those engines test. never means no queued request can make
// progress until an enqueue, completion, or mode change.
func (c *Controller) nextIssueAt() uint64 {
	at := never
	if c.mode == sched.ModeMEM {
		if len(c.memQ) == 0 {
			return never
		}
		rowHits := c.policy.MemRowHitsAllowed(c.vw)
		conflictsOK := c.policy.MemConflictServiceAllowed(c.vw)
		cands := c.memCandidates(rowHits)
		for _, r := range cands {
			if t := c.ch.NextColumnAt(r.Bank, r.Row, r.IsWrite()); t < at {
				at = t
			}
		}
		if conflictsOK {
			for _, r := range cands {
				if c.ch.IsRowHit(r.Bank, r.Row) {
					continue // waiting on tCCD or the data bus, not prep
				}
				state, openRow := c.ch.State(r.Bank)
				var t uint64 = never
				switch {
				case state == dram.Closed:
					t = c.ch.NextActivateAt(r.Bank)
				case state == dram.Open && openRow != r.Row:
					t = c.ch.NextPrechargeAt(r.Bank)
				}
				if t < at {
					at = t
				}
			}
		}
	} else {
		if len(c.pimQ) == 0 {
			return never
		}
		head := c.pimQ[0]
		switch {
		case c.ch.PIMRowOpen(head.Row):
			at = c.ch.NextPIMOpAt(head.Row)
		case c.ch.NeedsPIMPrecharge():
			at = c.ch.NextPIMPrechargeAllAt()
		default:
			at = c.ch.NextPIMActivateAllAt()
		}
	}
	if at == never {
		return never
	}
	return c.flt.NextUnthrottled(c.channelID, at)
}

// --- sched.View ----------------------------------------------------------

type view struct{ c *Controller }

func (v view) Now() uint64      { return v.c.now }
func (v view) Mode() sched.Mode { return v.c.mode }
func (v view) MemQLen() int     { return len(v.c.memQ) }
func (v view) PIMQLen() int     { return len(v.c.pimQ) }

func (v view) OldestOverall() (sched.Mode, bool) {
	c := v.c
	switch {
	case len(c.memQ) == 0 && len(c.pimQ) == 0:
		return sched.ModeMEM, false
	case len(c.memQ) == 0:
		return sched.ModePIM, true
	case len(c.pimQ) == 0:
		return sched.ModeMEM, true
	case c.memQ[0].SeqNo < c.pimQ[0].SeqNo:
		return sched.ModeMEM, true
	default:
		return sched.ModePIM, true
	}
}

func (v view) MemRowHitAvailable() bool {
	for bank := range v.c.bankQ {
		if len(v.c.bankQ[bank]) > 0 && v.c.hitFor(bank) != nil {
			return true
		}
	}
	return false
}

func (v view) PIMHeadRowOpen() bool {
	c := v.c
	return len(c.pimQ) > 0 && c.ch.PIMRowOpen(c.pimQ[0].Row)
}

// View returns the policy-facing view of the controller (exposed for
// policy unit tests).
func (c *Controller) View() sched.View { return c.vw }

// --- tick ----------------------------------------------------------------

// Tick advances the controller by one DRAM cycle: completes in-flight
// requests, arbitrates the mode (starting or finishing a drain), and
// issues at most one DRAM command.
func (c *Controller) Tick(now uint64) {
	if c.acct+1 < now {
		c.syncRange(c.acct+1, now-1)
	}
	c.acct = now
	c.now = now
	c.ch.Tick(now)
	if c.st != nil {
		c.st.MemQOccupancySum += uint64(len(c.memQ))
		c.st.PIMQOccupancySum += uint64(len(c.pimQ))
		c.st.SampledCycles++
	}
	// Mode residency: drain cycles count toward the mode being drained
	// from, but are also tracked separately.
	if c.switching {
		c.tmDrain.Inc()
	} else if c.mode == sched.ModeMEM {
		c.tmMemMode.Inc()
	} else {
		c.tmPIMMode.Inc()
	}
	c.completeInflight(now)
	if invariant.Enabled {
		c.checkInvariants() //pimlint:coldpath — simdebug builds only
	}
	if c.flt != nil && c.flt.ThrottledTick(c.channelID, now) {
		// Throttle window: in-flight requests drained above, but no
		// refresh handling, arbitration, or new command issue.
		return
	}
	if c.ch.RefreshDue(now) {
		// All-bank refresh outranks mode arbitration: stall new issue,
		// drain in-flight requests, close every bank and refresh.
		if !c.drained() {
			return
		}
		if c.ch.AnyBankOpen() {
			if c.ch.CanPrechargeAllBanks(now) {
				c.ch.RefreshPrechargeAll(now)
			}
			return
		}
		if c.ch.CanRefresh(now) {
			c.ch.Refresh(now)
			c.record(trace.EvRefresh, -1, 0, 0, "")
		}
		return
	}
	c.arbitrate(now)
	if c.switching {
		if !c.drained() {
			return // draining: no new issue in any mode
		}
		c.finishSwitch(now)
	}
	if c.mode == sched.ModeMEM {
		c.issueMEM(now)
	} else {
		c.issuePIM(now)
	}
}

func (c *Controller) completeInflight(now uint64) {
	kept := c.inflight[:0]
	for _, f := range c.inflight {
		if f.doneAt <= now {
			c.record(trace.EvComplete, f.req.Bank, f.req.Row, f.req.ID, "")
			if invariant.Enabled {
				c.cons.completed++
			}
			if c.complete != nil {
				c.complete(f.req, now)
			}
		} else {
			kept = append(kept, f)
		}
	}
	c.inflight = kept
}

func (c *Controller) drained() bool { return len(c.inflight) == 0 }

func (c *Controller) arbitrate(now uint64) {
	if c.switching {
		return // committed to the latched target
	}
	desired := c.policy.DesiredMode(c.vw)
	if desired == c.mode {
		return
	}
	c.switching = true
	c.target = desired
	c.drainStart = now
	if c.tr != nil {
		// Note strings are built only under an attached recorder;
		// tracing is a debug facility, not part of the measured path.
		c.record(trace.EvSwitchStart, -1, 0, 0, c.mode.String()+"->"+desired.String()) //pimlint:coldpath
	}
}

func (c *Controller) finishSwitch(now uint64) {
	from := c.mode
	c.mode = c.target
	c.switching = false
	if c.st != nil {
		c.st.Switches++
		if from == sched.ModeMEM && c.mode == sched.ModePIM {
			c.st.MemToPIMSwitches++
			c.st.DrainLatencySum += now - c.drainStart
		}
	}
	c.tmDrainHist.Observe(float64(now - c.drainStart))
	c.policy.OnSwitch(c.vw, c.mode)
	if c.tr != nil {
		c.record(trace.EvSwitchDone, -1, 0, 0, from.String()+"->"+c.mode.String()) //pimlint:coldpath
	}
}

// --- MEM mode: FR-FCFS engine ----------------------------------------------

// hitFor returns bank's oldest row-hit MEM request (nil when none),
// rescanning the bank's arrival-ordered list only when the cached answer
// has been invalidated — by a row-buffer transition (epoch mismatch) or
// by removal of the cached request (hitKnown cleared).
func (c *Controller) hitFor(bank int) *request.Request {
	if c.hitKnown[bank] && c.hitEpoch[bank] == c.ch.RowEpoch(bank) {
		return c.candHit[bank]
	}
	var hit *request.Request
	for _, r := range c.bankQ[bank] {
		if c.ch.IsRowHit(bank, r.Row) {
			hit = r
			break
		}
	}
	c.candHit[bank] = hit
	c.hitKnown[bank] = true
	c.hitEpoch[bank] = c.ch.RowEpoch(bank)
	return hit
}

// memCandidates computes, per bank, the request the engine would service
// next: the oldest row hit when row hits are allowed, otherwise the oldest
// request for that bank. When rowHitsAllowed is false the engine is in
// strict oldest-first territory and only the globally oldest MEM request
// is a candidate. The returned slice is scratch storage valid until the
// next call.
func (c *Controller) memCandidates(rowHitsAllowed bool) []*request.Request {
	if len(c.memQ) == 0 {
		return nil
	}
	c.candList = c.candList[:0]
	if !rowHitsAllowed {
		c.candList = append(c.candList, c.memQ[0])
		return c.candList
	}
	for bank := range c.bankQ {
		if len(c.bankQ[bank]) == 0 {
			continue
		}
		if h := c.hitFor(bank); h != nil {
			c.candList = append(c.candList, h)
		} else {
			c.candList = append(c.candList, c.bankQ[bank][0])
		}
	}
	return c.candList
}

// classifyMem records a MEM request's hit/miss classification exactly once.
func (c *Controller) classifyMem(r *request.Request, hit bool) {
	if r.RowClassified {
		return
	}
	r.RowClassified = true
	r.WasRowHit = hit
	if hit {
		c.ch.NoteRowHit()
	} else {
		c.ch.NoteRowMiss(r.Bank)
	}
}

// issueMEM issues at most one DRAM command for the MEM queue, following
// the priority (1) column command for the oldest serviceable row-hit
// candidate, (2) activate/precharge preparation for the oldest
// non-hitting candidate, subject to the policy's bypass and
// conflict-service gates. When conflict service is disallowed (the
// FR-FCFS conflict-bit stall), non-hitting banks idle until the policy
// switches modes.
func (c *Controller) issueMEM(now uint64) {
	if len(c.memQ) == 0 {
		return
	}
	v := c.vw
	rowHits := c.policy.MemRowHitsAllowed(v)
	conflictsOK := c.policy.MemConflictServiceAllowed(v)
	cands := c.memCandidates(rowHits)

	// 1) Oldest candidate with an issuable column command.
	var col *request.Request
	for _, r := range cands {
		if c.ch.CanColumn(r.Bank, r.Row, r.IsWrite(), now) {
			if col == nil || r.SeqNo < col.SeqNo {
				col = r
			}
		}
	}
	if col != nil {
		c.classifyMem(col, true)
		var done uint64
		if c.mem.Page == config.PageClosed {
			done = c.ch.ColumnAP(col.Bank, col.Row, col.IsWrite(), now)
		} else {
			done = c.ch.Column(col.Bank, col.Row, col.IsWrite(), now)
		}
		c.record(trace.EvColumn, col.Bank, col.Row, col.ID, col.Kind.String())
		c.removeMem(col)
		c.inflight = append(c.inflight, inflight{req: col, doneAt: done})
		c.notifyIssue(v, col, col.WasRowHit)
		return
	}

	if !conflictsOK {
		return // conflicted banks stall awaiting a mode switch
	}

	// 2) Bank preparation for the oldest candidate that misses.
	var prep *request.Request
	for _, r := range cands {
		if c.ch.IsRowHit(r.Bank, r.Row) {
			continue // row open; waiting on tCCD or the data bus
		}
		if prep == nil || r.SeqNo < prep.SeqNo {
			prep = r
		}
	}
	if prep == nil {
		return
	}
	state, openRow := c.ch.State(prep.Bank)
	switch {
	case state == dram.Closed && c.ch.CanActivate(prep.Bank, now):
		c.classifyMem(prep, false)
		c.ch.Activate(prep.Bank, prep.Row, now)
		c.record(trace.EvActivate, prep.Bank, prep.Row, prep.ID, "")
	case state == dram.Open && openRow != prep.Row && c.ch.CanPrecharge(prep.Bank, now):
		c.classifyMem(prep, false)
		c.ch.Precharge(prep.Bank, now)
		c.record(trace.EvPrecharge, prep.Bank, openRow, prep.ID, "")
	}
}

func (c *Controller) removeMem(r *request.Request) {
	bq := c.bankQ[r.Bank]
	for i, q := range bq {
		if q == r {
			copy(bq[i:], bq[i+1:])
			bq[len(bq)-1] = nil
			c.bankQ[r.Bank] = bq[:len(bq)-1]
			break
		}
	}
	if c.candHit[r.Bank] == r {
		c.hitKnown[r.Bank] = false // next-oldest hit needs a rescan
	}
	for i, q := range c.memQ {
		if q == r {
			// Shift down in place: append(c.memQ[:i], rest...) reads as
			// the same operation but is a cross-slice append the
			// allocation lint can't prove in-place.
			copy(c.memQ[i:], c.memQ[i+1:])
			c.memQ[len(c.memQ)-1] = nil
			c.memQ = c.memQ[:len(c.memQ)-1]
			return
		}
	}
	panic(fmt.Sprintf("memctrl: request %v not in MEM queue", r)) //pimlint:coldpath
}

// --- PIM mode: FCFS lockstep engine ------------------------------------------

// issuePIM services the head of the PIM queue: a lockstep op when the
// all-bank row is open, otherwise broadcast precharge/activate to open the
// head's row. A head request first observed with its row closed (a block
// boundary) is classified as a lockstep miss.
func (c *Controller) issuePIM(now uint64) {
	if len(c.pimQ) == 0 {
		return
	}
	head := c.pimQ[0]
	v := c.vw
	if c.ch.PIMRowOpen(head.Row) {
		if !c.ch.CanPIMOp(head.Row, now) {
			return
		}
		hit := !head.RowClassified // never saw a row change for this op
		head.RowClassified = true
		head.WasRowHit = hit
		if err := c.units.Execute(head.PIM); err != nil {
			panic(fmt.Sprintf("memctrl: channel %d: %v", c.channelID, err)) //pimlint:coldpath
		}
		done := c.ch.PIMOp(head.Row, hit, now)
		c.record(trace.EvPIMOp, -1, head.Row, head.ID, head.PIM.Op.String())
		// Head removal by shift keeps the queue anchored to its
		// preallocated backing array; c.pimQ = c.pimQ[1:] would walk
		// the slice forward and shrink its capacity until the next
		// Enqueue reallocates.
		copy(c.pimQ, c.pimQ[1:])
		c.pimQ[len(c.pimQ)-1] = nil
		c.pimQ = c.pimQ[:len(c.pimQ)-1]
		c.inflight = append(c.inflight, inflight{req: head, doneAt: done})
		c.notifyIssue(v, head, hit)
		return
	}
	head.RowClassified = true // row change observed: lockstep miss
	if c.ch.NeedsPIMPrecharge() {
		if c.ch.CanPIMPrechargeAll(now) {
			c.ch.PIMPrechargeAll(now)
			c.record(trace.EvPIMPrechargeAll, -1, 0, head.ID, "")
		}
		return
	}
	if c.ch.CanPIMActivateAll(now) {
		c.ch.PIMActivateAll(head.Row, now)
		c.record(trace.EvPIMActivateAll, -1, head.Row, head.ID, "")
	}
}

func (c *Controller) notifyIssue(v sched.View, r *request.Request, rowHit bool) {
	info := sched.IssueInfo{RowHit: rowHit}
	if r.Kind == request.PIMOp {
		info.Mode = sched.ModePIM
		info.BypassedOlderOtherMode = len(c.memQ) > 0 && c.memQ[0].SeqNo < r.SeqNo
		// PIM executes FCFS, so same-mode bypass is impossible.
	} else {
		info.Mode = sched.ModeMEM
		info.BypassedOlderOtherMode = len(c.pimQ) > 0 && c.pimQ[0].SeqNo < r.SeqNo
		info.BypassedOlderSameMode = len(c.memQ) > 0 && c.memQ[0].SeqNo < r.SeqNo
	}
	c.policy.OnIssue(v, info)
}

// Reset clears queues, in-flight state and policy counters for a fresh
// kernel launch while keeping DRAM timing state (rows stay open, as they
// would on hardware).
func (c *Controller) Reset() {
	c.memQ = c.memQ[:0]
	c.pimQ = c.pimQ[:0]
	c.inflight = c.inflight[:0]
	for b := range c.bankQ {
		c.bankQ[b] = c.bankQ[b][:0]
		c.hitKnown[b] = false
	}
	c.cons = conservation{} // dropped work must not trip conservation

	c.switching = false
	c.policy.Reset()
	c.units.Reset()
}
