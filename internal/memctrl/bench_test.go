package memctrl

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/stats"
)

// BenchmarkControllerTickMEM measures the per-DRAM-cycle cost of a
// controller saturated with MEM traffic under FR-FCFS — the simulator's
// hottest path.
func BenchmarkControllerTickMEM(b *testing.B) {
	cfg := config.Paper()
	var st stats.Channel
	c := New(0, cfg, sched.NewFRFCFS(), &st, nil)
	rng := rand.New(rand.NewSource(1))
	var id uint64
	refill := func() {
		for c.CanAccept(request.MemRead) {
			id++
			c.Enqueue(&request.Request{
				ID: id, Kind: request.MemRead,
				Bank: rng.Intn(cfg.Memory.Banks), Row: uint32(rng.Intn(64)),
			})
		}
	}
	refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(uint64(i))
		if i%32 == 0 {
			refill()
		}
	}
}

// BenchmarkControllerTickPIM measures the lockstep PIM path.
func BenchmarkControllerTickPIM(b *testing.B) {
	cfg := config.Paper()
	var st stats.Channel
	c := New(0, cfg, sched.NewPIMFirst(), &st, nil)
	var id uint64
	block := 0
	refill := func() {
		for c.CanAccept(request.PIMOp) {
			id++
			c.Enqueue(&request.Request{
				ID: id, Kind: request.PIMOp, Row: uint32(block % 64),
				PIM: &request.PIMInfo{Op: request.PIMLoad, RFEntry: int(id % 8), Block: block},
			})
			if id%24 == 0 {
				block++
			}
		}
	}
	refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(uint64(i))
		if i%64 == 0 {
			refill()
		}
	}
}

// BenchmarkControllerTickMixed measures MEM/PIM contention with mode
// switching under F3FS-like competitive conditions (FR-FCFS here to stay
// within this package).
func BenchmarkControllerTickMixed(b *testing.B) {
	cfg := config.Paper()
	var st stats.Channel
	c := New(0, cfg, sched.NewFRRRFCFS(), &st, nil)
	rng := rand.New(rand.NewSource(2))
	var id uint64
	block := 0
	refill := func() {
		for c.CanAccept(request.MemRead) {
			id++
			c.Enqueue(&request.Request{ID: id, Kind: request.MemRead,
				Bank: rng.Intn(cfg.Memory.Banks), Row: uint32(rng.Intn(64))})
		}
		for c.CanAccept(request.PIMOp) {
			id++
			c.Enqueue(&request.Request{ID: id, Kind: request.PIMOp, Row: uint32(block % 64),
				PIM: &request.PIMInfo{Op: request.PIMLoad, RFEntry: int(id % 8), Block: block}})
			if id%24 == 0 {
				block++
			}
		}
	}
	refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(uint64(i))
		if i%64 == 0 {
			refill()
		}
	}
}
