package memctrl

import (
	"testing"

	"repro/internal/config"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/stats"
)

var reqID uint64

func memReq(ch, bank int, row uint32, col uint32, write bool) *request.Request {
	reqID++
	kind := request.MemRead
	if write {
		kind = request.MemWrite
	}
	return &request.Request{ID: reqID, Kind: kind, Channel: ch, Bank: bank, Row: row, Col: col}
}

func pimReq(ch int, row uint32, block, entry int, op request.PIMOpKind) *request.Request {
	reqID++
	return &request.Request{
		ID: reqID, Kind: request.PIMOp, Channel: ch, Row: row,
		PIM: &request.PIMInfo{Op: op, RFEntry: entry, Block: block},
	}
}

type captured struct {
	reqs  []*request.Request
	times []uint64
}

func (c *captured) fn(r *request.Request, now uint64) {
	c.reqs = append(c.reqs, r)
	c.times = append(c.times, now)
}

func newCtl(policy sched.Policy, st *stats.Channel, done *captured) *Controller {
	cfg := config.Paper()
	var cb CompletionFunc
	if done != nil {
		cb = done.fn
	}
	return New(0, cfg, policy, st, cb)
}

func runCycles(c *Controller, from, to uint64) uint64 {
	for now := from; now < to; now++ {
		c.Tick(now)
	}
	return to
}

func TestEnqueueAssignsMonotonicAges(t *testing.T) {
	c := newCtl(sched.NewFRFCFS(), nil, nil)
	a := memReq(0, 0, 1, 0, false)
	b := pimReq(0, 2, 0, 0, request.PIMLoad)
	if !c.Enqueue(a) || !c.Enqueue(b) {
		t.Fatal("enqueue failed")
	}
	if a.SeqNo >= b.SeqNo {
		t.Errorf("ages not monotonic: %d then %d", a.SeqNo, b.SeqNo)
	}
}

func TestQueueCapacityEnforced(t *testing.T) {
	c := newCtl(sched.NewFRFCFS(), nil, nil)
	cfg := config.Paper()
	for i := 0; i < cfg.Memory.MemQSize; i++ {
		if !c.Enqueue(memReq(0, i%16, 1, 0, false)) {
			t.Fatalf("enqueue %d refused below capacity", i)
		}
	}
	if c.Enqueue(memReq(0, 0, 1, 0, false)) {
		t.Error("MEM queue accepted past capacity")
	}
	if !c.CanAccept(request.PIMOp) {
		t.Error("full MEM queue blocked PIM intake (queues are separate)")
	}
}

func TestMemReadCompletes(t *testing.T) {
	var done captured
	c := newCtl(sched.NewFRFCFS(), nil, &done)
	r := memReq(0, 3, 7, 1, false)
	c.Enqueue(r)
	runCycles(c, 0, 100)
	if len(done.reqs) != 1 || done.reqs[0] != r {
		t.Fatalf("completions = %v", done.reqs)
	}
	// ACT at ~0, column at tRCD=12, data at +tCL+burst: ~25 cycles.
	if done.times[0] < 12 || done.times[0] > 40 {
		t.Errorf("read completed at %d, expected ~25", done.times[0])
	}
}

func TestRowHitBypassesOlderConflict(t *testing.T) {
	var st stats.Channel
	c := newCtl(sched.NewFRFCFS(), &st, nil)
	// Open row 5 via the first request, then queue a conflicting row 6
	// (older) and another row 5 access (younger).
	c.Enqueue(memReq(0, 0, 5, 0, false))
	runCycles(c, 0, 30) // row 5 open, first request done
	older := memReq(0, 0, 6, 0, false)
	younger := memReq(0, 0, 5, 1, false)
	var done captured
	c.complete = done.fn
	c.Enqueue(older)
	c.Enqueue(younger)
	runCycles(c, 30, 120)
	if len(done.reqs) != 2 {
		t.Fatalf("completed %d of 2", len(done.reqs))
	}
	if done.reqs[0] != younger {
		t.Error("FR-FCFS did not let the row hit bypass the older conflict")
	}
	// Classification: the opener and the row-6 conflict are misses, the
	// bypassing row-5 access is the only hit.
	if st.RowHits != 1 || st.RowMisses != 2 {
		t.Errorf("hit/miss classification: hits=%d misses=%d, want 1/2", st.RowHits, st.RowMisses)
	}
}

func TestFCFSServesInArrivalOrder(t *testing.T) {
	var done captured
	c := newCtl(sched.NewFCFS(), nil, &done)
	c.Enqueue(memReq(0, 0, 5, 0, false))
	runCycles(c, 0, 30)
	older := memReq(0, 0, 6, 0, false)
	younger := memReq(0, 0, 5, 1, false)
	c.complete = done.fn
	done = captured{}
	c.Enqueue(older)
	c.Enqueue(younger)
	runCycles(c, 30, 150)
	if len(done.reqs) != 2 {
		t.Fatalf("completed %d of 2", len(done.reqs))
	}
	if done.reqs[0] != older {
		t.Error("FCFS reordered requests")
	}
}

func TestPIMExecutionFCFSAndLockstep(t *testing.T) {
	var st stats.Channel
	var done captured
	c := newCtl(sched.NewPIMFirst(), &st, &done)
	// One block: 3 ops to row 9, then a block boundary to row 10.
	c.Enqueue(pimReq(0, 9, 0, 0, request.PIMLoad))
	c.Enqueue(pimReq(0, 9, 0, 1, request.PIMLoad))
	c.Enqueue(pimReq(0, 9, 0, 0, request.PIMStore))
	c.Enqueue(pimReq(0, 10, 1, 0, request.PIMLoad))
	runCycles(c, 0, 200)
	if len(done.reqs) != 4 {
		t.Fatalf("completed %d of 4 PIM ops", len(done.reqs))
	}
	if st.PIMOps != 4 {
		t.Errorf("PIM ops = %d", st.PIMOps)
	}
	if st.PIMRowMisses != 2 {
		t.Errorf("lockstep misses = %d, want 2 (rows 9 and 10)", st.PIMRowMisses)
	}
	if st.PIMRowHits != 2 {
		t.Errorf("lockstep hits = %d, want 2", st.PIMRowHits)
	}
	if c.Units().Loads != 3 || c.Units().Stores != 1 {
		t.Errorf("FU counters: loads=%d stores=%d", c.Units().Loads, c.Units().Stores)
	}
}

func TestModeSwitchDrainsInFlightMEM(t *testing.T) {
	var st stats.Channel
	var done captured
	c := newCtl(sched.NewFCFS(), &st, &done)
	// A MEM request then a PIM request: FCFS switches after the MEM
	// request, but only once it has fully completed.
	m := memReq(0, 0, 5, 0, false)
	p := pimReq(0, 9, 0, 0, request.PIMLoad)
	c.Enqueue(m)
	c.Enqueue(p)
	runCycles(c, 0, 200)
	if len(done.reqs) != 2 {
		t.Fatalf("completed %d of 2", len(done.reqs))
	}
	if done.reqs[0] != m || done.reqs[1] != p {
		t.Error("completion order wrong across a mode switch")
	}
	if st.MemToPIMSwitches != 1 {
		t.Errorf("MEM->PIM switches = %d, want 1", st.MemToPIMSwitches)
	}
	if st.Switches == 0 {
		t.Error("no switches recorded")
	}
}

func TestDrainLatencyAccounted(t *testing.T) {
	var st stats.Channel
	c := newCtl(sched.NewFCFS(), &st, nil)
	m := memReq(0, 0, 5, 0, true) // write: long recovery -> long drain
	c.Enqueue(m)
	// Let the write issue, then enqueue PIM to trigger a switch while
	// the write is in flight.
	runCycles(c, 0, 14)
	c.Enqueue(pimReq(0, 9, 0, 0, request.PIMLoad))
	runCycles(c, 14, 200)
	if st.MemToPIMSwitches != 1 {
		t.Fatalf("switches = %d", st.MemToPIMSwitches)
	}
	if st.DrainLatencySum == 0 {
		t.Error("drain latency not accounted for an in-flight write")
	}
}

func TestPostSwitchConflictsCounted(t *testing.T) {
	var st stats.Channel
	var done captured
	c := newCtl(sched.NewFCFS(), &st, &done)
	// MEM opens row 5; PIM phase moves all banks to row 9; MEM returns
	// to row 5 -> post-switch conflict.
	c.Enqueue(memReq(0, 0, 5, 0, false))
	runCycles(c, 0, 40)
	c.Enqueue(pimReq(0, 9, 0, 0, request.PIMLoad))
	runCycles(c, 40, 140)
	c.Enqueue(memReq(0, 0, 5, 1, false))
	runCycles(c, 140, 300)
	if len(done.reqs) != 3 {
		t.Fatalf("completed %d of 3", len(done.reqs))
	}
	if st.PostSwitchConflicts != 1 {
		t.Errorf("post-switch conflicts = %d, want 1", st.PostSwitchConflicts)
	}
}

func TestViewReportsOldestAndOccupancy(t *testing.T) {
	c := newCtl(sched.NewFRFCFS(), nil, nil)
	v := c.View()
	if _, ok := v.OldestOverall(); ok {
		t.Error("empty controller reported an oldest request")
	}
	c.Enqueue(pimReq(0, 1, 0, 0, request.PIMLoad))
	c.Enqueue(memReq(0, 0, 1, 0, false))
	if m, ok := v.OldestOverall(); !ok || m != sched.ModePIM {
		t.Errorf("oldest = %v/%v, want PIM/true", m, ok)
	}
	if v.MemQLen() != 1 || v.PIMQLen() != 1 {
		t.Errorf("queue lens = %d/%d", v.MemQLen(), v.PIMQLen())
	}
}

func TestBypassReportingToPolicy(t *testing.T) {
	rec := &recordingPolicy{}
	c := newCtl(rec, nil, nil)
	// Older PIM request waits while MEM is serviced: the MEM issue must
	// report BypassedOlderOtherMode (the F3FS cap event).
	c.Enqueue(pimReq(0, 9, 0, 0, request.PIMLoad))
	c.Enqueue(memReq(0, 0, 5, 0, false))
	runCycles(c, 0, 60)
	found := false
	for _, info := range rec.issues {
		if info.Mode == sched.ModeMEM && info.BypassedOlderOtherMode {
			found = true
		}
	}
	if !found {
		t.Error("MEM issue over older PIM request not reported as a bypass")
	}
}

// recordingPolicy pins the controller in MEM mode and records issues.
type recordingPolicy struct {
	issues   []sched.IssueInfo
	switches int
}

func (p *recordingPolicy) Name() string                              { return "recording" }
func (p *recordingPolicy) DesiredMode(sched.View) sched.Mode         { return sched.ModeMEM }
func (p *recordingPolicy) MemRowHitsAllowed(sched.View) bool         { return true }
func (p *recordingPolicy) MemConflictServiceAllowed(sched.View) bool { return true }
func (p *recordingPolicy) OnIssue(_ sched.View, i sched.IssueInfo)   { p.issues = append(p.issues, i) }
func (p *recordingPolicy) OnSwitch(sched.View, sched.Mode)           { p.switches++ }
func (p *recordingPolicy) Reset()                                    {}

func TestBLPAcrossBanksInMemMode(t *testing.T) {
	var st stats.Channel
	var done captured
	c := newCtl(sched.NewFRFCFS(), &st, &done)
	for b := 0; b < 8; b++ {
		c.Enqueue(memReq(0, b, 1, 0, false))
	}
	runCycles(c, 0, 300)
	if len(done.reqs) != 8 {
		t.Fatalf("completed %d of 8", len(done.reqs))
	}
	if blp := st.BLP(); blp < 1.5 {
		t.Errorf("BLP = %.2f across 8 banks, want > 1.5 (overlapped activates)", blp)
	}
}

func TestResetClearsQueues(t *testing.T) {
	c := newCtl(sched.NewFRFCFS(), nil, nil)
	c.Enqueue(memReq(0, 0, 1, 0, false))
	c.Enqueue(pimReq(0, 1, 0, 0, request.PIMLoad))
	c.Reset()
	if c.Pending() {
		t.Error("controller pending after Reset")
	}
}
