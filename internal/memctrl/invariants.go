package memctrl

import "repro/internal/invariant"

// Debug-build conservation counters. They are ordinary fields (two
// words per controller), but every update and check sits behind
// `if invariant.Enabled`, so release builds never touch them.
type conservation struct {
	enqueued  uint64 // requests admitted by Enqueue
	completed uint64 // requests retired by completeInflight
}

// checkInvariants validates the per-channel structural invariants at a
// cycle boundary (called from Tick in simdebug builds):
//
//   - request conservation: every admitted request is either queued,
//     in flight, or completed — nothing is duplicated or dropped;
//   - queue bounds: occupancy never exceeds the configured MEM/PIM
//     queue capacities (Table I sizes);
//   - drain discipline: while a mode switch is draining, the inflight
//     set is the only place work may remain for the outgoing mode's
//     issue engine to wait on.
func (c *Controller) checkInvariants() {
	queued := uint64(len(c.memQ) + len(c.pimQ))
	inFlight := uint64(len(c.inflight))
	invariant.Assert(c.cons.enqueued == c.cons.completed+queued+inFlight,
		"memctrl ch%d cycle %d: request conservation broken: enqueued=%d completed=%d queued=%d inflight=%d",
		c.channelID, c.now, c.cons.enqueued, c.cons.completed, queued, inFlight)
	invariant.Assert(len(c.memQ) <= c.mem.MemQSize,
		"memctrl ch%d cycle %d: MEM queue %d over bound %d",
		c.channelID, c.now, len(c.memQ), c.mem.MemQSize)
	invariant.Assert(len(c.pimQ) <= c.mem.PIMQSize,
		"memctrl ch%d cycle %d: PIM queue %d over bound %d",
		c.channelID, c.now, len(c.pimQ), c.mem.PIMQSize)
	invariant.Assert(!c.switching || c.target != c.mode,
		"memctrl ch%d cycle %d: draining toward the current mode %v",
		c.channelID, c.now, c.mode)
}
