package memctrl

import (
	"testing"

	"repro/internal/config"
	"repro/internal/invariant"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// tickAllocs drives a controller saturated with mixed MEM/PIM traffic
// into steady state and returns the average allocations per Tick. The
// request population is built once and recycled through the completion
// callback, so the measured loop performs only controller work.
func tickAllocs(t *testing.T, tm *telemetry.ChannelMetrics) float64 {
	t.Helper()
	cfg := config.Paper()
	var st stats.Channel
	free := make([]*request.Request, 0, cfg.Memory.MemQSize+cfg.Memory.PIMQSize)
	c := New(0, cfg, sched.NewFRRRFCFS(), &st, func(r *request.Request, _ uint64) {
		free = append(free, r)
	})
	c.SetTelemetry(tm)
	for i := 0; i < cap(free); i++ {
		r := &request.Request{ID: uint64(i + 1)}
		if i%3 == 0 {
			r.Kind = request.PIMOp
			r.Row = uint32(i % 64)
			r.PIM = &request.PIMInfo{Op: request.PIMLoad, RFEntry: i % 8, Block: i / 24}
		} else {
			r.Kind = request.MemRead
			r.Bank = i % cfg.Memory.Banks
			r.Row = uint32((i * 7) % 64)
		}
		free = append(free, r)
	}
	// The PIM units require non-decreasing block numbers, so recycled
	// PIM requests get a fresh block on every enqueue.
	blockSeq := 0
	refill := func() {
		for i := 0; i < len(free); {
			if free[i].Kind == request.PIMOp {
				blockSeq++
				free[i].PIM.Block = blockSeq
			}
			if c.Enqueue(free[i]) {
				free[i] = free[len(free)-1]
				free[len(free)-1] = nil
				free = free[:len(free)-1]
			} else {
				i++
			}
		}
	}
	now := uint64(0)
	tick := func() {
		refill()
		now++
		c.Tick(now)
	}
	// Warm up past one-time growth (inflight buffer, candidate lists,
	// the first mode switches) before measuring.
	for i := 0; i < 4096; i++ {
		tick()
	}
	return testing.AllocsPerRun(512, tick)
}

// TestTickZeroAlloc locks in the hot-path allocation contract
// (docs/PERFORMANCE.md): in steady state Controller.Tick allocates
// nothing, with telemetry detached and attached alike. The hotalloc
// analyzer proves the property statically; this test catches the
// dynamic escapes it cannot see (slice growth, capacity walks).
func TestTickZeroAlloc(t *testing.T) {
	if invariant.Enabled {
		t.Skip("simdebug build: per-cycle invariant checks allocate by design")
	}
	if avg := tickAllocs(t, nil); avg != 0 {
		t.Errorf("Tick with telemetry detached: %v allocs/op, want 0", avg)
	}
	col := telemetry.NewCollector(1, 0, 0)
	if avg := tickAllocs(t, col.Channel(0)); avg != 0 {
		t.Errorf("Tick with telemetry attached: %v allocs/op, want 0", avg)
	}
}
