// Package config collects every architectural parameter of the simulated
// PIM-enabled GPU system. Paper() reproduces Table I of the paper exactly;
// Scaled() is a reduced configuration with identical structure that lets
// the full experiment sweeps finish in minutes on a laptop.
package config

import (
	"fmt"

	"repro/internal/faults"
)

// GPU holds the host-processor parameters (Table I, top half).
type GPU struct {
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// CoreClockMHz is the SM clock. The interconnect and L2 run in this
	// domain.
	CoreClockMHz int
	// PIMSMs is the number of SMs a PIM kernel occupies to saturate the
	// memory interface (8 in the paper: 4 warps per SM, one warp per
	// channel across 32 channels). GPU kernels in co-execution get
	// NumSMs-PIMSMs.
	PIMSMs int
	// MaxOutstanding is the per-SM limit on in-flight MEM loads (an
	// MSHR-style window).
	MaxOutstanding int
	// InjectQueue is the per-SM interconnect injection buffer, in
	// requests per virtual channel.
	InjectQueue int
	// ResponseLatency is the fixed GPU-cycle latency of the return path
	// from L2/MC back to the SM. The paper's congestion story is about
	// the request path; the response network is modeled as contention
	// free.
	ResponseLatency int
}

// DRAMTiming holds the HBM timing parameters in DRAM cycles. The first
// block reproduces Table I exactly; the second block are supplemental
// JEDEC-style constraints the paper does not list (bus turnaround and
// refresh) — they default to disabled/zero so the Table I behavior is the
// baseline, and can be enabled for sensitivity studies.
type DRAMTiming struct {
	TCCDS int // column-to-column, different bank group
	TCCDL int // column-to-column, same bank group
	TRRD  int // activate-to-activate, different banks
	TRCD  int // activate-to-column
	TRP   int // precharge-to-activate
	TRAS  int // activate-to-precharge
	TCL   int // read column-to-data
	TWL   int // write column-to-data
	TWR   int // end of write data to precharge
	TRTP  int // read-to-precharge (tRTPL)

	// TWTR delays a read column command after the end of write data
	// (write-to-read turnaround); TRTW delays a write column command
	// after a read command. Zero disables each (Table I baseline).
	TWTR int
	TRTW int
	// TREFI is the all-bank refresh interval and TRFC the refresh
	// cycle time. TREFI == 0 disables refresh (Table I baseline).
	TREFI int
	TRFC  int
	// TFAW is the rolling four-activate window: at most four per-bank
	// activates may issue in any TFAW cycles. Zero disables it
	// (Table I baseline). Broadcast PIM activation is exempt, like
	// tRRD (dedicated PIM-mode command bandwidth).
	TFAW int
}

// AddressMap selects the physical-to-DRAM address mapping scheme.
type AddressMap int

const (
	// MapInterleaved is the regular Table I scheme the paper adopts to
	// facilitate PIM programming (each warp pins to one channel).
	MapInterleaved AddressMap = iota
	// MapIPoly is pseudo-random I-poly channel interleaving (Rau), the
	// GPU default the paper turned OFF (Sec. III-B); provided so the
	// cost of the regular map can be measured.
	MapIPoly
)

// String names the mapping scheme.
func (m AddressMap) String() string {
	if m == MapIPoly {
		return "ipoly"
	}
	return "interleaved"
}

// PagePolicy selects how the MEM-mode engine manages row buffers.
type PagePolicy int

const (
	// PageOpen leaves rows open after a column access, betting on row
	// locality (the policy every configuration in the paper uses).
	PageOpen PagePolicy = iota
	// PageClosed auto-precharges after every column access, an
	// extension knob for measuring how much of the paper's results
	// depend on row-buffer locality.
	PageClosed
)

// String names the policy.
func (p PagePolicy) String() string {
	if p == PageClosed {
		return "closed-page"
	}
	return "open-page"
}

// Memory holds the memory-system parameters (Table I, bottom half).
type Memory struct {
	Channels    int // HBM channels
	Banks       int // banks per channel
	BankGroups  int // bank groups per channel (tCCDl applies within one)
	Rows        int // rows per bank
	Columns     int // access-granularity columns per row
	BusWidthB   int // data bus width in bytes
	BurstLength int // beats per access
	ClockMHz    int // DRAM command clock
	MemQSize    int // memory-controller MEM queue entries
	PIMQSize    int // memory-controller PIM queue entries
	Mapping     AddressMap
	Page        PagePolicy
	Timing      DRAMTiming
}

// AccessBytes returns the bytes moved per request (bus width x burst).
func (m Memory) AccessBytes() int { return m.BusWidthB * m.BurstLength }

// PIM holds the processing-in-memory parameters.
type PIM struct {
	// FUsPerChannel is the number of PIM functional units per channel;
	// each FU is shared by Banks/FUsPerChannel banks (2 in the paper).
	FUsPerChannel int
	// RFSize is the register-file entries per FU; each bank of the pair
	// receives RFSize/2 entries (8 of 16 in the paper).
	RFSize int
	// OpCycles is the DRAM-cycle occupancy of one lockstep PIM
	// operation across all banks (defaults to tCCDl).
	OpCycles int
	// DualRowBuffer gives PIM its own per-bank row buffer, the NeuPIMs
	// architecture the paper's related work discusses: PIM broadcast
	// activity no longer displaces MEM's open rows (and vice versa), so
	// the "additional MEM conflicts per switch" of Fig. 10b vanish.
	// MEM and PIM execution stays mutually exclusive; only row-buffer
	// state is duplicated. Off by default (F3FS makes no such
	// assumption).
	DualRowBuffer bool
}

// RFPerBank returns the register-file entries available to one bank.
func (p PIM) RFPerBank() int { return p.RFSize / 2 }

// VCMode selects the interconnect configuration of Sec. V.
type VCMode int

const (
	// VC1 is the baseline: MEM and PIM requests share every queue from
	// the SMs to the memory controller (Fig. 7a).
	VC1 VCMode = iota
	// VC2 adds a separate virtual channel for PIM requests; each shared
	// queue is split in half so total buffering matches VC1 (Fig. 7b).
	VC2
)

// String returns "VC1" or "VC2".
func (m VCMode) String() string {
	if m == VC2 {
		return "VC2"
	}
	return "VC1"
}

// Engine selects the simulation-loop implementation. Both engines are
// cycle-accurate and produce bit-identical results (pinned by the
// differential harness in internal/sim); they differ only in how they
// spend host time.
type Engine int

const (
	// EngineEvent (the default) is the next-event skip-ahead core: each
	// component reports the earliest cycle its state can change
	// (NextEvent) and is only ticked at those cycles, with per-cycle
	// accounting applied in closed form over the skipped ranges.
	EngineEvent Engine = iota
	// EngineTick is the original reference loop that advances every
	// component on every cycle. It exists as the equivalence oracle and
	// as a fallback (-engine=tick).
	EngineTick
)

// String returns "event" or "tick".
func (e Engine) String() string {
	if e == EngineTick {
		return "tick"
	}
	return "event"
}

// ParseEngine parses the -engine CLI value ("tick" or "event").
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "event", "":
		return EngineEvent, nil
	case "tick":
		return EngineTick, nil
	default:
		return EngineEvent, fmt.Errorf("config: unknown engine %q (want tick or event)", s)
	}
}

// NoC holds the interconnect parameters.
type NoC struct {
	// Mode selects the shared (VC1) or split (VC2) configuration.
	Mode VCMode
	// BufferSize is the per-channel request buffering between the
	// interconnect and the L2, and between the L2 and the memory
	// controller, in requests (512 in Table I; Fig. 14b sweeps
	// 256..1024). Under VC2 each of the two virtual-channel queues gets
	// half.
	BufferSize int
	// ChannelsPerCycle is how many requests one memory-side port
	// accepts per GPU cycle (crossbar output bandwidth).
	ChannelsPerCycle int
}

// Cache holds the cache-hierarchy parameters. The L2 is sliced per
// channel; each SM additionally has a private L1D. MEM requests are
// filtered by both levels while PIM requests (cache-streaming stores)
// bypass the entire hierarchy (Sec. III-A).
type Cache struct {
	// TotalBytes is the aggregate L2 capacity (6 MB in Table I).
	TotalBytes int
	// LineBytes is the line size; the simulator uses the access
	// granularity so one request is one line.
	LineBytes int
	// Ways is the set associativity of each slice.
	Ways int
	// MSHRs is the per-slice limit on outstanding misses.
	MSHRs int
	// HitLatency is the GPU-cycle latency of an L2 hit.
	HitLatency int

	// L1Bytes is the per-SM L1D capacity (32 KB in Table I; 0 disables
	// the L1 and injects raw SM traffic into the interconnect).
	L1Bytes int
	// L1Ways/L1MSHRs/L1HitLatency configure the L1D slices.
	L1Ways       int
	L1MSHRs      int
	L1HitLatency int
}

// SliceBytes returns the capacity of one per-channel slice.
func (c Cache) SliceBytes(channels int) int { return c.TotalBytes / channels }

// Sched holds the scheduling-policy knobs shared across policies.
type Sched struct {
	// FRFCFSCap is the row-hit bypass cap for FR-FCFS-Cap (32 in the
	// paper, "set empirically").
	FRFCFSCap int
	// BlissThreshold is the consecutive-request blacklist threshold (4).
	BlissThreshold int
	// BlissClearInterval is the blacklist clearing period in DRAM
	// cycles ("every few thousand cycles").
	BlissClearInterval int
	// GIHighWatermark and GILowWatermark are the Gather&Issue PIM queue
	// occupancy thresholds (56 and 32).
	GIHighWatermark int
	GILowWatermark  int
	// F3FSMemCap and F3FSPIMCap are the per-mode bypass caps of F3FS.
	// Competitive co-execution uses symmetric caps (256/256);
	// collaborative tuning may set them asymmetrically (Sec. VII-B).
	F3FSMemCap int
	F3FSPIMCap int
}

// Config is the complete system configuration.
type Config struct {
	GPU    GPU
	Memory Memory
	PIM    PIM
	NoC    NoC
	Cache  Cache
	Sched  Sched
	// Seed is the base seed for all workload randomness; runs with the
	// same Config and workloads are bit-identical.
	Seed int64
	// MaxGPUCycles aborts a simulation that fails to converge.
	MaxGPUCycles uint64
	// Faults is the optional transient-fault schedule (internal/faults).
	// The zero value disables injection and keeps runs bit-identical to a
	// fault-free build; a schedule with Seed 0 inherits Config.Seed.
	Faults faults.Schedule
	// Engine selects the simulation loop. The zero value is EngineEvent
	// (skip-ahead); EngineTick selects the cycle-by-cycle reference loop.
	// Results are bit-identical either way.
	Engine Engine
}

// Paper returns the full Table I configuration.
func Paper() Config {
	return Config{
		GPU: GPU{
			NumSMs:          80,
			CoreClockMHz:    1132,
			PIMSMs:          8,
			MaxOutstanding:  64,
			InjectQueue:     16,
			ResponseLatency: 60,
		},
		Memory: Memory{
			Channels:    32,
			Banks:       16,
			BankGroups:  4,
			Rows:        8192, // 13 row bits per Table I's address map
			Columns:     64,   // 2 KB row / 32 B access
			BusWidthB:   16,
			BurstLength: 2,
			ClockMHz:    850,
			MemQSize:    64,
			PIMQSize:    64,
			Timing: DRAMTiming{
				TCCDS: 1, TCCDL: 2, TRRD: 3, TRCD: 12, TRP: 12,
				TRAS: 28, TCL: 12, TWL: 2, TWR: 10, TRTP: 3,
			},
		},
		PIM: PIM{
			FUsPerChannel: 8,
			RFSize:        16,
			OpCycles:      2,
		},
		NoC: NoC{
			Mode:             VC1,
			BufferSize:       512,
			ChannelsPerCycle: 1,
		},
		Cache: Cache{
			TotalBytes:   6 << 20,
			LineBytes:    32,
			Ways:         16,
			MSHRs:        48,
			HitLatency:   30,
			L1Bytes:      32 << 10,
			L1Ways:       8,
			L1MSHRs:      64,
			L1HitLatency: 10,
		},
		Sched: Sched{
			FRFCFSCap:          32,
			BlissThreshold:     4,
			BlissClearInterval: 4000,
			GIHighWatermark:    56,
			GILowWatermark:     32,
			F3FSMemCap:         256,
			F3FSPIMCap:         256,
		},
		Seed:         1,
		MaxGPUCycles: 500_000_000,
	}
}

// Scaled returns a reduced configuration used by the test suite and the
// default benchmark sweeps: 8 channels instead of 32 and 20 SMs instead of
// 80, with the SM/channel and PIM-SM ratios of the paper preserved
// (PIMSMs = Channels/4 warps at 4 warps per SM). All timing parameters,
// queue depths, and policy knobs are unchanged from Paper().
func Scaled() Config {
	c := Paper()
	c.GPU.NumSMs = 20
	c.GPU.PIMSMs = 2 // 8 warps -> one per channel across 8 channels
	c.Memory.Channels = 8
	c.Memory.Rows = 4096
	c.Cache.TotalBytes = 1536 << 10 // keep 192 KB per slice, as in Paper()
	c.MaxGPUCycles = 6_000_000
	return c
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated invariant.
func (c Config) Validate() error {
	switch {
	case c.Engine != EngineEvent && c.Engine != EngineTick:
		return fmt.Errorf("config: unknown engine %d (want EngineEvent or EngineTick)", c.Engine)
	case c.GPU.NumSMs <= 0:
		return fmt.Errorf("config: NumSMs must be positive, got %d", c.GPU.NumSMs)
	case c.GPU.PIMSMs <= 0 || c.GPU.PIMSMs >= c.GPU.NumSMs:
		return fmt.Errorf("config: PIMSMs must be in (0, NumSMs), got %d", c.GPU.PIMSMs)
	case c.Memory.Channels <= 0 || c.Memory.Channels&(c.Memory.Channels-1) != 0:
		return fmt.Errorf("config: Channels must be a positive power of two, got %d", c.Memory.Channels)
	case c.Memory.Banks <= 0 || c.Memory.Banks&(c.Memory.Banks-1) != 0:
		return fmt.Errorf("config: Banks must be a positive power of two, got %d", c.Memory.Banks)
	case c.Memory.BankGroups <= 0 || c.Memory.Banks%c.Memory.BankGroups != 0:
		return fmt.Errorf("config: BankGroups must divide Banks, got %d/%d", c.Memory.BankGroups, c.Memory.Banks)
	case c.PIM.FUsPerChannel <= 0 || c.Memory.Banks%c.PIM.FUsPerChannel != 0:
		return fmt.Errorf("config: FUsPerChannel must divide Banks, got %d/%d", c.PIM.FUsPerChannel, c.Memory.Banks)
	case c.PIM.RFSize <= 0 || c.PIM.RFSize%2 != 0:
		return fmt.Errorf("config: RFSize must be positive and even, got %d", c.PIM.RFSize)
	case c.Memory.MemQSize <= 0 || c.Memory.PIMQSize <= 0:
		return fmt.Errorf("config: queue sizes must be positive, got MEM %d PIM %d", c.Memory.MemQSize, c.Memory.PIMQSize)
	case c.NoC.BufferSize < 2:
		return fmt.Errorf("config: NoC buffer must hold at least 2 requests, got %d", c.NoC.BufferSize)
	case c.Cache.TotalBytes%c.Memory.Channels != 0:
		return fmt.Errorf("config: L2 capacity %d not divisible across %d channels", c.Cache.TotalBytes, c.Memory.Channels)
	case c.Cache.L1Bytes > 0 && (c.Cache.L1Ways <= 0 || c.Cache.L1MSHRs <= 0 || c.Cache.L1HitLatency < 0):
		return fmt.Errorf("config: L1 enabled but ways/MSHRs/latency invalid (%d/%d/%d)",
			c.Cache.L1Ways, c.Cache.L1MSHRs, c.Cache.L1HitLatency)
	case c.GPU.CoreClockMHz <= 0 || c.Memory.ClockMHz <= 0:
		return fmt.Errorf("config: clocks must be positive")
	case c.Sched.GILowWatermark >= c.Sched.GIHighWatermark:
		return fmt.Errorf("config: G&I low watermark %d must be below high %d", c.Sched.GILowWatermark, c.Sched.GIHighWatermark)
	case c.Sched.F3FSMemCap <= 0 || c.Sched.F3FSPIMCap <= 0:
		return fmt.Errorf("config: F3FS caps must be positive")
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// PerVCBuffer returns the depth of each interconnect queue given the VC
// mode: the full buffer under VC1, half under VC2 (Sec. V-A keeps total
// queue size equal across configurations).
func (c Config) PerVCBuffer() int {
	if c.NoC.Mode == VC2 {
		return c.NoC.BufferSize / 2
	}
	return c.NoC.BufferSize
}

// GPUSMsInCoExecution returns the SMs available to the GPU kernel when a
// PIM kernel occupies its reserved SMs.
func (c Config) GPUSMsInCoExecution() int { return c.GPU.NumSMs - c.GPU.PIMSMs }
