package config

import "testing"

// TestPaperMatchesTableI pins every Table I parameter so accidental edits
// to the paper configuration fail loudly.
func TestPaperMatchesTableI(t *testing.T) {
	c := Paper()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"SMs", c.GPU.NumSMs, 80},
		{"core clock MHz", c.GPU.CoreClockMHz, 1132},
		{"PIM SMs", c.GPU.PIMSMs, 8},
		{"channels", c.Memory.Channels, 32},
		{"banks", c.Memory.Banks, 16},
		{"DRAM clock MHz", c.Memory.ClockMHz, 850},
		{"bus width B", c.Memory.BusWidthB, 16},
		{"burst length", c.Memory.BurstLength, 2},
		{"MEM-Q size", c.Memory.MemQSize, 64},
		{"PIM-Q size", c.Memory.PIMQSize, 64},
		{"NoC buffer", c.NoC.BufferSize, 512},
		{"PIM FUs/channel", c.PIM.FUsPerChannel, 8},
		{"PIM RF size", c.PIM.RFSize, 16},
		{"L2 bytes", c.Cache.TotalBytes, 6 << 20},
		{"tCCDs", c.Memory.Timing.TCCDS, 1},
		{"tCCDl", c.Memory.Timing.TCCDL, 2},
		{"tRRD", c.Memory.Timing.TRRD, 3},
		{"tRCD", c.Memory.Timing.TRCD, 12},
		{"tRP", c.Memory.Timing.TRP, 12},
		{"tRAS", c.Memory.Timing.TRAS, 28},
		{"tCL", c.Memory.Timing.TCL, 12},
		{"tWL", c.Memory.Timing.TWL, 2},
		{"tWR", c.Memory.Timing.TWR, 10},
		{"tRTP", c.Memory.Timing.TRTP, 3},
		{"FR-FCFS-Cap CAP", c.Sched.FRFCFSCap, 32},
		{"BLISS threshold", c.Sched.BlissThreshold, 4},
		{"G&I high", c.Sched.GIHighWatermark, 56},
		{"G&I low", c.Sched.GILowWatermark, 32},
		{"F3FS MEM cap", c.Sched.F3FSMemCap, 256},
		{"F3FS PIM cap", c.Sched.F3FSPIMCap, 256},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	if got := c.Memory.AccessBytes(); got != 32 {
		t.Errorf("access bytes = %d, want 32", got)
	}
	if got := c.PIM.RFPerBank(); got != 8 {
		t.Errorf("RF per bank = %d, want 8 (8 of 16 entries per bank)", got)
	}
}

func TestPaperAndScaledValidate(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Errorf("Paper(): %v", err)
	}
	if err := Scaled().Validate(); err != nil {
		t.Errorf("Scaled(): %v", err)
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	p, s := Paper(), Scaled()
	// One PIM warp per channel: PIMSMs*4 warps == channels.
	if s.GPU.PIMSMs*4 != s.Memory.Channels {
		t.Errorf("scaled: %d PIM SMs x 4 warps != %d channels", s.GPU.PIMSMs, s.Memory.Channels)
	}
	// Same per-slice L2 capacity.
	if p.Cache.SliceBytes(p.Memory.Channels) != s.Cache.SliceBytes(s.Memory.Channels) {
		t.Errorf("slice bytes differ: paper %d, scaled %d",
			p.Cache.SliceBytes(p.Memory.Channels), s.Cache.SliceBytes(s.Memory.Channels))
	}
	// Timing and policy knobs unchanged.
	if p.Memory.Timing != s.Memory.Timing {
		t.Error("scaled config changed DRAM timing")
	}
	if p.Sched != s.Sched {
		t.Error("scaled config changed scheduling knobs")
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	breakers := []struct {
		name  string
		mutat func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.GPU.NumSMs = 0 }},
		{"PIM SMs >= SMs", func(c *Config) { c.GPU.PIMSMs = c.GPU.NumSMs }},
		{"channels not pow2", func(c *Config) { c.Memory.Channels = 12 }},
		{"banks not pow2", func(c *Config) { c.Memory.Banks = 10 }},
		{"bank groups mismatch", func(c *Config) { c.Memory.BankGroups = 3 }},
		{"FUs mismatch", func(c *Config) { c.PIM.FUsPerChannel = 5 }},
		{"odd RF", func(c *Config) { c.PIM.RFSize = 15 }},
		{"zero MEM-Q", func(c *Config) { c.Memory.MemQSize = 0 }},
		{"tiny NoC buffer", func(c *Config) { c.NoC.BufferSize = 1 }},
		{"L2 not divisible", func(c *Config) { c.Cache.TotalBytes = 6<<20 + 1 }},
		{"G&I watermarks inverted", func(c *Config) { c.Sched.GILowWatermark = 99 }},
		{"zero F3FS cap", func(c *Config) { c.Sched.F3FSMemCap = 0 }},
	}
	for _, b := range breakers {
		c := Paper()
		b.mutat(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken config", b.name)
		}
	}
}

func TestPerVCBuffer(t *testing.T) {
	c := Paper()
	if got := c.PerVCBuffer(); got != 512 {
		t.Errorf("VC1 per-VC buffer = %d, want 512", got)
	}
	c.NoC.Mode = VC2
	if got := c.PerVCBuffer(); got != 256 {
		t.Errorf("VC2 per-VC buffer = %d, want 256 (total held equal)", got)
	}
}

func TestVCModeString(t *testing.T) {
	if VC1.String() != "VC1" || VC2.String() != "VC2" {
		t.Errorf("VCMode strings: %q %q", VC1, VC2)
	}
}

func TestEnumStrings(t *testing.T) {
	if MapInterleaved.String() != "interleaved" || MapIPoly.String() != "ipoly" {
		t.Error("AddressMap strings wrong")
	}
	if PageOpen.String() != "open-page" || PageClosed.String() != "closed-page" {
		t.Error("PagePolicy strings wrong")
	}
}

func TestL1ValidationAndDefaults(t *testing.T) {
	c := Paper()
	if c.Cache.L1Bytes != 32<<10 {
		t.Errorf("L1 = %d, want Table I's 32 KB", c.Cache.L1Bytes)
	}
	c.Cache.L1Ways = 0
	if err := c.Validate(); err == nil {
		t.Error("L1 enabled with zero ways accepted")
	}
	// Disabling the L1 entirely is valid (raw-traffic configuration).
	c = Paper()
	c.Cache.L1Bytes = 0
	c.Cache.L1Ways = 0
	if err := c.Validate(); err != nil {
		t.Errorf("L1-disabled config rejected: %v", err)
	}
}

func TestGPUSMsInCoExecution(t *testing.T) {
	if got := Paper().GPUSMsInCoExecution(); got != 72 {
		t.Errorf("co-execution GPU SMs = %d, want 72", got)
	}
}
