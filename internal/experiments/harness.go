package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// runID labels one simulation for diagnostics; the zero value is a
// standalone/ancillary run with no pair identity.
type runID struct {
	GPUID, PIMID string
	Policy       string
	Mode         string
	What         string // "competitive", "standalone-gpu", ...
}

// RunError is the structured failure of one simulation run: what was
// being run, how it failed (Kind), and a diagnostic bundle — config
// hash, seed, the cycle the run died at, and the controllers' queue
// state — so a campaign can report and journal the failure instead of
// crashing the process. It marshals to JSON for campaign error files.
type RunError struct {
	// Identity of the run.
	GPUID  string `json:"gpu_id,omitempty"`
	PIMID  string `json:"pim_id,omitempty"`
	Policy string `json:"policy,omitempty"`
	Mode   string `json:"mode,omitempty"`
	What   string `json:"what,omitempty"`

	// Kind classifies the failure: "panic", "timeout" (per-run deadline
	// expired), "canceled" (campaign-level cancellation), or "error".
	Kind string `json:"kind"`

	// Diagnostic bundle.
	ConfigHash string              `json:"config_hash"`
	Seed       int64               `json:"seed"`
	GPUCycle   uint64              `json:"gpu_cycle"`
	DRAMCycle  uint64              `json:"dram_cycle"`
	Queues     []sim.QueueSnapshot `json:"queues,omitempty"`

	// Message is the human-readable cause; PanicValue and Stack are set
	// for Kind "panic".
	Message    string `json:"message"`
	PanicValue string `json:"panic_value,omitempty"`
	Stack      string `json:"stack,omitempty"`

	err error
}

func (e *RunError) Error() string {
	id := e.What
	if e.GPUID != "" || e.PIMID != "" {
		id = fmt.Sprintf("%sx%s/%s/%s", e.GPUID, e.PIMID, e.Policy, e.Mode)
	}
	return fmt.Sprintf("experiments: run %s failed (%s at GPU cycle %d): %s", id, e.Kind, e.GPUCycle, e.Message)
}

// Unwrap exposes the underlying cause, so errors.Is(err,
// context.DeadlineExceeded) and friends work through a RunError.
func (e *RunError) Unwrap() error { return e.err }

// runSystem executes one built System under the runner's resilience
// policy: the context bounds the run (plus a per-run deadline when
// RunTimeout is set), and any outcome other than a completed simulation
// — a panic anywhere inside the cycle loop, a deadline expiry, a
// cancellation — comes back as a structured *RunError carrying the
// diagnostic bundle instead of unwinding the process.
func (r *Runner) runSystem(ctx context.Context, cfg config.Config, sys *sim.System, id runID) (res *sim.Result, err error) {
	if r.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.RunTimeout)
		defer cancel()
	}
	mkErr := func(kind, msg string, cause error) *RunError {
		gpuCycle, dramCycle, queues := sys.Diagnostics()
		return &RunError{
			GPUID: id.GPUID, PIMID: id.PIMID, Policy: id.Policy, Mode: id.Mode, What: id.What,
			Kind:       kind,
			ConfigHash: telemetry.HashConfig(cfg),
			Seed:       cfg.Seed,
			GPUCycle:   gpuCycle,
			DRAMCycle:  dramCycle,
			Queues:     queues,
			Message:    msg,
			err:        cause,
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			re := mkErr("panic", fmt.Sprint(rec), nil)
			re.PanicValue = fmt.Sprint(rec)
			re.Stack = string(debug.Stack())
			res, err = nil, re
		}
	}()
	if r.Observe != nil {
		r.Observe(id.What, sys)
	}
	res, err = sys.RunContext(ctx)
	if err != nil {
		var ie *sim.ErrInterrupted
		if errors.As(err, &ie) {
			kind := "canceled"
			if errors.Is(ie.Err, context.DeadlineExceeded) {
				kind = "timeout"
			}
			re := mkErr(kind, err.Error(), err)
			re.Queues = ie.Queues // the interrupt point's snapshot
			return nil, re
		}
		return nil, mkErr("error", err.Error(), err)
	}
	return res, nil
}
