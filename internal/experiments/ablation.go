package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationStage is one bar of Fig. 14a.
type AblationStage struct {
	// Name identifies the design point.
	Name string
	// Fairness and Throughput are competitive metrics for the target
	// PIM kernel averaged across GPU kernels; MemShare is the MEM
	// fraction of throughput.
	Fairness, Throughput, MemShare float64
	// LLMSpeedup is the collaborative metric.
	LLMSpeedup float64
}

// Ablation reproduces Fig. 14a: the incremental impact of F3FS's three
// components over FR-FCFS-Cap, measured on one PIM kernel (P2 in the
// paper, averaged across GPU kernels) and on the LLM, under VC2.
//
// Stages: (0) FR-FCFS-Cap baseline; (1) the CAP counts current-mode
// bypasses instead of row hits; (2) current-mode-first arbitration
// (= F3FS, symmetric CAPs); (3) asymmetric CAPs (256/128).
func (r *Runner) Ablation(gpuIDs []string, pimID string) ([]AblationStage, error) {
	type stage struct {
		name    string
		factory func(cfg config.Config) sched.PolicyFactory
		memCap  int
		pimCap  int
	}
	stages := []stage{
		{
			name: "fr-fcfs-cap",
			factory: func(cfg config.Config) sched.PolicyFactory {
				return func() sched.Policy { return sched.NewFRFCFSCap(cfg.Sched.FRFCFSCap) }
			},
		},
		{
			name: "+mode-cap",
			factory: func(cfg config.Config) sched.PolicyFactory {
				return func() sched.Policy { return core.NewModeCapFRFCFS(cfg.Sched.F3FSMemCap) }
			},
		},
		{
			name: "+current-mode-first",
			factory: func(cfg config.Config) sched.PolicyFactory {
				return func() sched.Policy { return core.NewF3FS(cfg.Sched.F3FSMemCap, cfg.Sched.F3FSPIMCap) }
			},
		},
		{
			name: "+asymmetric-caps",
			factory: func(cfg config.Config) sched.PolicyFactory {
				return func() sched.Policy { return core.NewF3FS(256, 128) }
			},
			memCap: 256, pimCap: 128,
		},
	}

	var out []AblationStage
	for _, st := range stages {
		cfg := r.baseCfg(config.VC2)
		var fis, sts, memShares []float64
		for _, g := range gpuIDs {
			pair, err := r.competitiveWithFactory(g, pimID, st.factory(cfg), config.VC2)
			if err != nil {
				return nil, err
			}
			fis = append(fis, pair.Fairness)
			sts = append(sts, pair.Throughput)
			if pair.Throughput > 0 {
				memShares = append(memShares, pair.GPUSpeedup/pair.Throughput)
			}
		}
		collab, err := r.collaborativeWithFactory(st.factory(cfg), config.VC2)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationStage{
			Name:       st.name,
			Fairness:   stats.Mean(fis),
			Throughput: stats.Mean(sts),
			MemShare:   stats.Mean(memShares),
			LLMSpeedup: collab.Speedup,
		})
	}
	return out, nil
}

// competitiveWithFactory is Competitive with an explicit policy factory
// (used by the ablation's intermediate design points).
func (r *Runner) competitiveWithFactory(gpuID, pimID string, factory sched.PolicyFactory, mode config.VCMode) (Pair, error) {
	gAlone, err := r.StandaloneGPU(gpuID)
	if err != nil {
		return Pair{}, err
	}
	pAlone, err := r.StandalonePIM(pimID)
	if err != nil {
		return Pair{}, err
	}
	gProf, err := workload.GPUProfileByID(gpuID)
	if err != nil {
		return Pair{}, err
	}
	pProf, err := workload.PIMProfileByID(pimID)
	if err != nil {
		return Pair{}, err
	}
	cfg := r.baseCfg(mode)
	gpuSMs, pimSMs := sim.GPUAndPIMSMs(cfg)
	sys, err := sim.New(cfg, factory, []sim.KernelDesc{
		{GPU: &gProf, SMs: gpuSMs, Scale: r.Scale},
		{PIM: &pProf, SMs: pimSMs, Scale: r.Scale, Base: 1 << 30},
	})
	if err != nil {
		return Pair{}, err
	}
	res, err := sys.Run()
	if err != nil {
		return Pair{}, err
	}
	p := Pair{
		GPUID: gpuID, PIMID: pimID, Mode: mode,
		GPUSpeedup: speedup(gAlone.Cycles, res.Kernels[0].EstFinish),
		PIMSpeedup: speedup(pAlone.Cycles, res.Kernels[1].EstFinish),
		Aborted:    res.Aborted,
	}
	p.Fairness = stats.FairnessIndex(p.GPUSpeedup, p.PIMSpeedup)
	p.Throughput = stats.SystemThroughput(p.GPUSpeedup, p.PIMSpeedup)
	return p, nil
}

// collaborativeWithFactory runs the LLM scenario under an explicit
// factory.
func (r *Runner) collaborativeWithFactory(factory sched.PolicyFactory, mode config.VCMode) (CollabResult, error) {
	qkvAlone, mhaAlone, err := r.llmStandalone()
	if err != nil {
		return CollabResult{}, err
	}
	seq := qkvAlone + mhaAlone
	cfg := r.baseCfg(mode)
	model := llm.GPT3Like()
	qkvDesc, mhaDesc := model.Scenario(cfg, r.Scale)
	sys, err := sim.New(cfg, factory, []sim.KernelDesc{qkvDesc, mhaDesc})
	if err != nil {
		return CollabResult{}, err
	}
	sys.SetRunOnce(true)
	res, err := sys.Run()
	if err != nil {
		return CollabResult{}, err
	}
	out := CollabResult{Mode: mode, QKVCycles: qkvAlone, MHACycles: mhaAlone, ConcurrentCycles: res.GPUCycles, Aborted: res.Aborted}
	if res.GPUCycles > 0 && !res.Aborted {
		out.Speedup = float64(seq) / float64(res.GPUCycles)
	}
	return out, nil
}

// AblationTable renders Fig. 14a.
func AblationTable(stages []AblationStage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s %9s %8s\n", "stage", "FI", "ST", "MEM-shr", "LLM")
	for _, s := range stages {
		fmt.Fprintf(&b, "%-22s %8.3f %8.3f %9.3f %8.3f\n", s.Name, s.Fairness, s.Throughput, s.MemShare, s.LLMSpeedup)
	}
	return b.String()
}

// QueuePoint is one bar of Fig. 14b.
type QueuePoint struct {
	QueueSize            int
	Fairness, Throughput float64
}

// QueueSensitivity reproduces Fig. 14b: F3FS under VC2 with the
// interconnect queue size swept from half to double the baseline.
func (r *Runner) QueueSensitivity(gpuIDs, pimIDs []string, sizes []int) ([]QueuePoint, error) {
	var out []QueuePoint
	for _, size := range sizes {
		sub := NewRunner(r.Cfg, r.Scale)
		sub.Parallel = r.Parallel
		sub.Cfg.NoC.BufferSize = size
		var fis, sts []float64
		for _, g := range gpuIDs {
			for _, p := range pimIDs {
				pair, err := sub.Competitive(g, p, "f3fs", config.VC2)
				if err != nil {
					return nil, err
				}
				fis = append(fis, pair.Fairness)
				sts = append(sts, pair.Throughput)
			}
		}
		out = append(out, QueuePoint{QueueSize: size, Fairness: stats.Mean(fis), Throughput: stats.Mean(sts)})
	}
	return out, nil
}

// QueueTable renders Fig. 14b.
func QueueTable(points []QueuePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s\n", "queue", "FI", "ST")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %8.3f %8.3f\n", p.QueueSize, p.Fairness, p.Throughput)
	}
	return b.String()
}

// CapPoint is one point of the Sec. VII-B CAP sensitivity study.
type CapPoint struct {
	MemCap, PIMCap       int
	Fairness, Throughput float64
	LLMSpeedup           float64
}

// CapSensitivity sweeps F3FS CAPs: symmetric values for the competitive
// metrics, and the same values asymmetrically halved on PIM for the LLM.
func (r *Runner) CapSensitivity(gpuIDs, pimIDs []string, caps []int, mode config.VCMode) ([]CapPoint, error) {
	var out []CapPoint
	for _, c := range caps {
		cfg := r.baseCfg(mode)
		cfg.Sched.F3FSMemCap = c
		cfg.Sched.F3FSPIMCap = c
		sub := NewRunner(cfg, r.Scale)
		sub.Parallel = r.Parallel
		var fis, sts []float64
		for _, g := range gpuIDs {
			for _, p := range pimIDs {
				pair, err := sub.Competitive(g, p, "f3fs", mode)
				if err != nil {
					return nil, err
				}
				fis = append(fis, pair.Fairness)
				sts = append(sts, pair.Throughput)
			}
		}
		collab, err := sub.Collaborative("f3fs", mode, c, c)
		if err != nil {
			return nil, err
		}
		out = append(out, CapPoint{
			MemCap: c, PIMCap: c,
			Fairness: stats.Mean(fis), Throughput: stats.Mean(sts),
			LLMSpeedup: collab.Speedup,
		})
	}
	return out, nil
}

// CapTable renders the CAP sensitivity study.
func CapTable(points []CapPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "cap", "FI", "ST", "LLM")
	for _, p := range points {
		fmt.Fprintf(&b, "%5d/%-6d %8.3f %8.3f %8.3f\n", p.MemCap, p.PIMCap, p.Fairness, p.Throughput, p.LLMSpeedup)
	}
	return b.String()
}

// DualBufferPoint compares one policy with and without the NeuPIMs-style
// dual row buffer (related-work extension): the dual buffer removes the
// switch-induced row conflicts of Fig. 9/10b without any scheduling
// change, isolating how much of a policy's cost is locality destruction
// versus queueing.
type DualBufferPoint struct {
	Policy                 string
	Fairness, Throughput   float64
	ConflictsPerSwitch     float64
	DualFairness           float64
	DualThroughput         float64
	DualConflictsPerSwitch float64
}

// DualBufferAblation runs the given kernel pair under each policy, with
// the shared row buffer (paper baseline) and with the dual buffer.
func (r *Runner) DualBufferAblation(gpuID, pimID string, policies []string, mode config.VCMode) ([]DualBufferPoint, error) {
	var out []DualBufferPoint
	for _, policy := range policies {
		base, err := r.Competitive(gpuID, pimID, policy, mode)
		if err != nil {
			return nil, err
		}
		dualCfg := r.Cfg
		dualCfg.PIM.DualRowBuffer = true
		sub := NewRunner(dualCfg, r.Scale)
		sub.Parallel = r.Parallel
		dual, err := sub.Competitive(gpuID, pimID, policy, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, DualBufferPoint{
			Policy:                 policy,
			Fairness:               base.Fairness,
			Throughput:             base.Throughput,
			ConflictsPerSwitch:     base.ConflictsPerSwitch,
			DualFairness:           dual.Fairness,
			DualThroughput:         dual.Throughput,
			DualConflictsPerSwitch: dual.ConflictsPerSwitch,
		})
	}
	return out, nil
}

// DualBufferTable renders the comparison.
func DualBufferTable(points []DualBufferPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %8s %8s | %8s %8s %8s\n",
		"policy", "FI", "ST", "conf/sw", "dual-FI", "dual-ST", "conf/sw")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.2f | %8.3f %8.3f %8.2f\n",
			p.Policy, p.Fairness, p.Throughput, p.ConflictsPerSwitch,
			p.DualFairness, p.DualThroughput, p.DualConflictsPerSwitch)
	}
	return b.String()
}

// BlissPoint is one point of the Sec. VI-A blacklist threshold sweep.
type BlissPoint struct {
	Threshold            int
	Fairness, Throughput float64
}

// BlissSweep sweeps the BLISS blacklist threshold (the paper notes BLISS
// performs best with a low threshold, converging toward FR-FCFS).
func (r *Runner) BlissSweep(gpuIDs, pimIDs []string, thresholds []int, mode config.VCMode) ([]BlissPoint, error) {
	var out []BlissPoint
	for _, th := range thresholds {
		cfg := r.baseCfg(mode)
		cfg.Sched.BlissThreshold = th
		sub := NewRunner(cfg, r.Scale)
		sub.Parallel = r.Parallel
		var fis, sts []float64
		for _, g := range gpuIDs {
			for _, p := range pimIDs {
				pair, err := sub.Competitive(g, p, "bliss", mode)
				if err != nil {
					return nil, err
				}
				fis = append(fis, pair.Fairness)
				sts = append(sts, pair.Throughput)
			}
		}
		out = append(out, BlissPoint{Threshold: th, Fairness: stats.Mean(fis), Throughput: stats.Mean(sts)})
	}
	return out, nil
}

// BlissTable renders the threshold sweep.
func BlissTable(points []BlissPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s\n", "threshold", "FI", "ST")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %8.3f %8.3f\n", p.Threshold, p.Fairness, p.Throughput)
	}
	return b.String()
}
