package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/stats"
)

// Sweep is a full competitive sweep: every (GPU, PIM, policy, VC)
// combination's Pair metrics.
type Sweep struct {
	Policies []string
	Modes    []config.VCMode
	GPUIDs   []string
	PIMIDs   []string
	// Pairs[mode][policy][gpu][pim]
	Pairs map[config.VCMode]map[string]map[string]map[string]Pair
	// Failed maps PairKey -> the structured failure of combinations that
	// panicked or timed out; the rest of the sweep still completes.
	Failed map[string]*RunError
}

// RunSweep executes the competitive cross product (Figs. 6, 8, 10, 13
// all reduce this sweep differently).
func (r *Runner) RunSweep(gpuIDs, pimIDs, policies []string, modes []config.VCMode) (*Sweep, error) {
	return r.RunSweepCtx(context.Background(), gpuIDs, pimIDs, policies, modes)
}

// RunSweepCtx is RunSweep under a campaign context. A combination that
// fails with a *RunError (panic, per-run timeout) is recorded in
// Sweep.Failed — and in the runner's Journal, when attached — while the
// remaining combinations still run. Cancelling ctx stops the sweep and
// returns the partial Sweep alongside the context's error.
func (r *Runner) RunSweepCtx(ctx context.Context, gpuIDs, pimIDs, policies []string, modes []config.VCMode) (*Sweep, error) {
	s := &Sweep{
		Policies: policies,
		Modes:    modes,
		GPUIDs:   gpuIDs,
		PIMIDs:   pimIDs,
		Pairs:    map[config.VCMode]map[string]map[string]map[string]Pair{},
		Failed:   map[string]*RunError{},
	}
	// Pre-warm the standalone caches serially so parallel workers only
	// read them.
	for _, g := range gpuIDs {
		if err := ctx.Err(); err != nil {
			return s, err
		}
		if _, err := r.StandaloneGPU(g); err != nil {
			return nil, err
		}
	}
	for _, p := range pimIDs {
		if err := ctx.Err(); err != nil {
			return s, err
		}
		if _, err := r.StandalonePIM(p); err != nil {
			return nil, err
		}
	}
	var mu sync.Mutex
	for _, mode := range modes {
		s.Pairs[mode] = map[string]map[string]map[string]Pair{}
		for _, policy := range policies {
			s.Pairs[mode][policy] = map[string]map[string]Pair{}
			for _, g := range gpuIDs {
				s.Pairs[mode][policy][g] = map[string]Pair{}
			}
			mode, policy := mode, policy
			err := r.forEachPairCtx(ctx, gpuIDs, pimIDs, func(g, p string) error {
				pair, err := r.CompetitiveCtx(ctx, g, p, policy, mode)
				if err != nil {
					var re *RunError
					if errors.As(err, &re) && re.Kind != "canceled" {
						// Quarantine the failure; the sweep goes on.
						mu.Lock()
						s.Failed[PairKey(g, p, policy, mode)] = re
						mu.Unlock()
						return nil
					}
					return err
				}
				mu.Lock()
				s.Pairs[mode][policy][g][p] = pair
				mu.Unlock()
				return nil
			})
			if err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// collect returns every pair of one (mode, policy) slice.
func (s *Sweep) collect(mode config.VCMode, policy string) []Pair {
	var out []Pair
	for _, g := range s.GPUIDs {
		for _, p := range s.PIMIDs {
			out = append(out, s.Pairs[mode][policy][g][p])
		}
	}
	return out
}

// ArrivalRates reduces the sweep to Fig. 6: per policy and GPU kernel,
// the MEM request arrival rate at the memory controller under contention
// normalized to standalone, averaged across PIM kernels.
type ArrivalRates struct {
	Policies []string
	GPUIDs   []string
	// Norm[mode][policy][gpu] is the normalized arrival rate.
	Norm map[config.VCMode]map[string]map[string]float64
	// PolicyAvg[mode][policy] averages across GPU kernels.
	PolicyAvg map[config.VCMode]map[string]float64
}

// ArrivalRates computes the Fig. 6 reduction.
func (s *Sweep) ArrivalRates() *ArrivalRates {
	a := &ArrivalRates{
		Policies:  s.Policies,
		GPUIDs:    s.GPUIDs,
		Norm:      map[config.VCMode]map[string]map[string]float64{},
		PolicyAvg: map[config.VCMode]map[string]float64{},
	}
	for _, mode := range s.Modes {
		a.Norm[mode] = map[string]map[string]float64{}
		a.PolicyAvg[mode] = map[string]float64{}
		for _, policy := range s.Policies {
			a.Norm[mode][policy] = map[string]float64{}
			var all []float64
			for _, g := range s.GPUIDs {
				var xs []float64
				for _, p := range s.PIMIDs {
					xs = append(xs, s.Pairs[mode][policy][g][p].MemArrivalNorm)
				}
				v := stats.Mean(xs)
				a.Norm[mode][policy][g] = v
				all = append(all, v)
			}
			a.PolicyAvg[mode][policy] = stats.Mean(all)
		}
	}
	return a
}

// Table renders Fig. 6's reduction.
func (a *ArrivalRates) Table(modes []config.VCMode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "policy")
	for _, m := range modes {
		fmt.Fprintf(&b, " %8s", m)
	}
	b.WriteByte('\n')
	for _, p := range a.Policies {
		fmt.Fprintf(&b, "%-14s", p)
		for _, m := range modes {
			fmt.Fprintf(&b, " %8.3f", a.PolicyAvg[m][p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FairnessThroughput reduces the sweep to Fig. 8: per PIM kernel (and on
// average), the fairness index and system throughput of each policy,
// averaged across GPU kernels. The MEM/PIM speedup split of Fig. 8b is
// retained.
type FairnessThroughput struct {
	Policies []string
	PIMIDs   []string
	// Fairness[mode][policy][pim], Throughput likewise;
	// MemShare is the MEM fraction of throughput (Fig. 8b shading).
	Fairness   map[config.VCMode]map[string]map[string]float64
	Throughput map[config.VCMode]map[string]map[string]float64
	MemShare   map[config.VCMode]map[string]map[string]float64
	// AvgFairness/AvgThroughput[mode][policy] average across PIM kernels.
	AvgFairness   map[config.VCMode]map[string]float64
	AvgThroughput map[config.VCMode]map[string]float64
	// WorstFairness/WorstThroughput[mode][policy] are the minima across
	// all combinations (the paper's worst-case comparison).
	WorstFairness   map[config.VCMode]map[string]float64
	WorstThroughput map[config.VCMode]map[string]float64
}

// FairnessThroughput computes the Fig. 8 reduction.
func (s *Sweep) FairnessThroughput() *FairnessThroughput {
	f := &FairnessThroughput{
		Policies:        s.Policies,
		PIMIDs:          s.PIMIDs,
		Fairness:        map[config.VCMode]map[string]map[string]float64{},
		Throughput:      map[config.VCMode]map[string]map[string]float64{},
		MemShare:        map[config.VCMode]map[string]map[string]float64{},
		AvgFairness:     map[config.VCMode]map[string]float64{},
		AvgThroughput:   map[config.VCMode]map[string]float64{},
		WorstFairness:   map[config.VCMode]map[string]float64{},
		WorstThroughput: map[config.VCMode]map[string]float64{},
	}
	for _, mode := range s.Modes {
		f.Fairness[mode] = map[string]map[string]float64{}
		f.Throughput[mode] = map[string]map[string]float64{}
		f.MemShare[mode] = map[string]map[string]float64{}
		f.AvgFairness[mode] = map[string]float64{}
		f.AvgThroughput[mode] = map[string]float64{}
		f.WorstFairness[mode] = map[string]float64{}
		f.WorstThroughput[mode] = map[string]float64{}
		for _, policy := range s.Policies {
			f.Fairness[mode][policy] = map[string]float64{}
			f.Throughput[mode][policy] = map[string]float64{}
			f.MemShare[mode][policy] = map[string]float64{}
			worstFI, worstST := 2.0, 1e18
			var avgFI, avgST []float64
			for _, p := range s.PIMIDs {
				var fi, st, mem []float64
				for _, g := range s.GPUIDs {
					pair := s.Pairs[mode][policy][g][p]
					fi = append(fi, pair.Fairness)
					st = append(st, pair.Throughput)
					if pair.Throughput > 0 {
						mem = append(mem, pair.GPUSpeedup/pair.Throughput)
					}
					if pair.Fairness < worstFI {
						worstFI = pair.Fairness
					}
					if pair.Throughput < worstST {
						worstST = pair.Throughput
					}
				}
				f.Fairness[mode][policy][p] = stats.Mean(fi)
				f.Throughput[mode][policy][p] = stats.Mean(st)
				f.MemShare[mode][policy][p] = stats.Mean(mem)
				avgFI = append(avgFI, stats.Mean(fi))
				avgST = append(avgST, stats.Mean(st))
			}
			f.AvgFairness[mode][policy] = stats.Mean(avgFI)
			f.AvgThroughput[mode][policy] = stats.Mean(avgST)
			f.WorstFairness[mode][policy] = worstFI
			f.WorstThroughput[mode][policy] = worstST
		}
	}
	return f
}

// Table renders the Fig. 8 averages.
func (f *FairnessThroughput) Table(modes []config.VCMode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "policy")
	for _, m := range modes {
		fmt.Fprintf(&b, " %8s %8s %9s %9s", "FI/"+m.String(), "ST/"+m.String(), "wFI/"+m.String(), "wST/"+m.String())
	}
	b.WriteByte('\n')
	for _, p := range f.Policies {
		fmt.Fprintf(&b, "%-14s", p)
		for _, m := range modes {
			fmt.Fprintf(&b, " %8.3f %8.3f %9.3f %9.3f",
				f.AvgFairness[m][p], f.AvgThroughput[m][p], f.WorstFairness[m][p], f.WorstThroughput[m][p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SwitchOverheads reduces the sweep to Fig. 10: per policy, the number of
// mode switches normalized to FCFS (geometric mean across combinations,
// Fig. 10a), the additional MEM conflicts per switch (Fig. 10b) and the
// MEM drain latency per switch in DRAM cycles (Fig. 10c), both arithmetic
// means.
type SwitchOverheads struct {
	Policies []string
	// SwitchesVsFCFS[mode][policy] is the Fig. 10a geo-mean ratio.
	SwitchesVsFCFS map[config.VCMode]map[string]float64
	// Conflicts and Drain are the Fig. 10b/10c means.
	Conflicts map[config.VCMode]map[string]float64
	Drain     map[config.VCMode]map[string]float64
}

// SwitchOverheads computes the Fig. 10 reduction. The sweep must include
// the "fcfs" policy for normalization.
func (s *Sweep) SwitchOverheads() (*SwitchOverheads, error) {
	hasFCFS := false
	for _, p := range s.Policies {
		if p == "fcfs" {
			hasFCFS = true
		}
	}
	if !hasFCFS {
		return nil, fmt.Errorf("experiments: Fig. 10 normalization requires the fcfs policy in the sweep")
	}
	o := &SwitchOverheads{
		Policies:       s.Policies,
		SwitchesVsFCFS: map[config.VCMode]map[string]float64{},
		Conflicts:      map[config.VCMode]map[string]float64{},
		Drain:          map[config.VCMode]map[string]float64{},
	}
	for _, mode := range s.Modes {
		o.SwitchesVsFCFS[mode] = map[string]float64{}
		o.Conflicts[mode] = map[string]float64{}
		o.Drain[mode] = map[string]float64{}
		for _, policy := range s.Policies {
			var ratios, conflicts, drains []float64
			for _, g := range s.GPUIDs {
				for _, p := range s.PIMIDs {
					pair := s.Pairs[mode][policy][g][p]
					base := s.Pairs[mode]["fcfs"][g][p]
					if base.Switches > 0 {
						ratios = append(ratios, float64(pair.Switches)/float64(base.Switches))
					}
					conflicts = append(conflicts, pair.ConflictsPerSwitch)
					drains = append(drains, pair.DrainPerSwitch)
				}
			}
			o.SwitchesVsFCFS[mode][policy] = stats.GeoMean(ratios)
			o.Conflicts[mode][policy] = stats.Mean(conflicts)
			o.Drain[mode][policy] = stats.Mean(drains)
		}
	}
	return o, nil
}

// Table renders the Fig. 10 reduction.
func (o *SwitchOverheads) Table(modes []config.VCMode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "policy")
	for _, m := range modes {
		fmt.Fprintf(&b, " %10s %10s %10s", "sw/"+m.String(), "conf/"+m.String(), "drain/"+m.String())
	}
	b.WriteByte('\n')
	for _, p := range o.Policies {
		fmt.Fprintf(&b, "%-14s", p)
		for _, m := range modes {
			fmt.Fprintf(&b, " %10.3f %10.2f %10.1f", o.SwitchesVsFCFS[m][p], o.Conflicts[m][p], o.Drain[m][p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// IntensitySlice reduces a sweep to Fig. 13: per GPU kernel (the paper
// uses the compute-intensive G10 and memory-intensive G6, G11, G17, G19),
// fairness and throughput averaged across PIM kernels.
type IntensitySlice struct {
	Policies []string
	GPUIDs   []string
	// Fairness/Throughput[mode][policy][gpu].
	Fairness   map[config.VCMode]map[string]map[string]float64
	Throughput map[config.VCMode]map[string]map[string]float64
}

// IntensitySlice computes the Fig. 13 reduction (the orthogonal slice of
// Fig. 8).
func (s *Sweep) IntensitySlice() *IntensitySlice {
	out := &IntensitySlice{
		Policies:   s.Policies,
		GPUIDs:     s.GPUIDs,
		Fairness:   map[config.VCMode]map[string]map[string]float64{},
		Throughput: map[config.VCMode]map[string]map[string]float64{},
	}
	for _, mode := range s.Modes {
		out.Fairness[mode] = map[string]map[string]float64{}
		out.Throughput[mode] = map[string]map[string]float64{}
		for _, policy := range s.Policies {
			out.Fairness[mode][policy] = map[string]float64{}
			out.Throughput[mode][policy] = map[string]float64{}
			for _, g := range s.GPUIDs {
				var fi, st []float64
				for _, p := range s.PIMIDs {
					pair := s.Pairs[mode][policy][g][p]
					fi = append(fi, pair.Fairness)
					st = append(st, pair.Throughput)
				}
				out.Fairness[mode][policy][g] = stats.Mean(fi)
				out.Throughput[mode][policy][g] = stats.Mean(st)
			}
		}
	}
	return out
}

// Table renders the Fig. 13 slice for one mode.
func (i *IntensitySlice) Table(mode config.VCMode) string {
	var b strings.Builder
	gpus := append([]string(nil), i.GPUIDs...)
	sort.Strings(gpus)
	fmt.Fprintf(&b, "%-14s", "policy")
	for _, g := range gpus {
		fmt.Fprintf(&b, " %7s-FI %7s-ST", g, g)
	}
	b.WriteByte('\n')
	for _, p := range i.Policies {
		fmt.Fprintf(&b, "%-14s", p)
		for _, g := range gpus {
			fmt.Fprintf(&b, " %10.3f %10.3f", i.Fairness[mode][p][g], i.Throughput[mode][p][g])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
