package experiments

import (
	"testing"

	"repro/internal/config"
	"repro/internal/energy"
)

func energyModel() energy.Model { return energy.DefaultHBM() }

func quickRunner() *Runner {
	cfg := config.Scaled()
	cfg.MaxGPUCycles = 2_000_000
	r := NewRunner(cfg, 0.25)
	r.Parallel = 4
	return r
}

func TestStandaloneCaching(t *testing.T) {
	r := quickRunner()
	a, err := r.StandaloneGPU("G8")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.StandaloneGPU("G8")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("standalone result not cached deterministically")
	}
	if a.Cycles == 0 {
		t.Error("standalone run recorded zero cycles")
	}
}

func TestCompetitivePairMetrics(t *testing.T) {
	r := quickRunner()
	p, err := r.Competitive("G8", "P2", "f3fs", config.VC2)
	if err != nil {
		t.Fatal(err)
	}
	if p.GPUSpeedup <= 0 || p.PIMSpeedup <= 0 {
		t.Fatalf("speedups: %+v", p)
	}
	if p.GPUSpeedup > 1.2 || p.PIMSpeedup > 1.2 {
		t.Errorf("contended speedups exceed standalone: %+v", p)
	}
	if p.Fairness <= 0 || p.Fairness > 1 {
		t.Errorf("fairness out of range: %v", p.Fairness)
	}
	if p.Throughput <= 0 || p.Throughput > 2.2 {
		t.Errorf("throughput out of range: %v", p.Throughput)
	}
}

func TestCharacterizationShape(t *testing.T) {
	r := quickRunner()
	c, err := r.Characterize([]string{"G4", "G10", "G15"}, []string{"P1"})
	if err != nil {
		t.Fatal(err)
	}
	// PIM executes on all banks in lockstep: its BLP must dominate the
	// GPU groups (Fig. 4c shows a single bar at the bank count).
	pimBLP := c.BLP["PIM"].Median
	if pimBLP < 12 {
		t.Errorf("PIM median BLP = %.1f, want near 16", pimBLP)
	}
	// The compute-intensive G10 must sit at the bottom of the MC rate
	// range; the DRAM-heavy G15 at the top.
	groupAll := c.Groups[0]
	if c.PerKernel[groupAll]["G15"].MCRate <= c.PerKernel[groupAll]["G10"].MCRate {
		t.Error("G15 (nn) should out-rate G10 (huffman) at the MC")
	}
	if c.Table() == "" {
		t.Error("empty table")
	}
}

func TestCollaborativeQKVIsLongerStage(t *testing.T) {
	r := quickRunner()
	qkv, mha, err := r.llmStandalone()
	if err != nil {
		t.Fatal(err)
	}
	if qkv <= mha {
		t.Errorf("QKV (%d) must be the longer stage vs MHA (%d), per Sec. VI-B", qkv, mha)
	}
}

func TestCollaborativeSpeedupBounds(t *testing.T) {
	r := quickRunner()
	res, err := r.Collaborative("f3fs", config.VC2, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 0 {
		t.Fatalf("no speedup measured: %+v", res)
	}
	if res.Speedup > res.Ideal+0.05 {
		t.Errorf("speedup %.3f exceeds ideal %.3f", res.Speedup, res.Ideal)
	}
}

func TestSweepAndReductions(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep takes a second; skipped in -short mode")
	}
	r := quickRunner()
	sweep, err := r.RunSweep([]string{"G8"}, []string{"P2"},
		[]string{"fcfs", "fr-fcfs", "fr-rr-fcfs", "f3fs"},
		[]config.VCMode{config.VC1, config.VC2})
	if err != nil {
		t.Fatal(err)
	}
	ft := sweep.FairnessThroughput()
	for _, mode := range sweep.Modes {
		for _, policy := range sweep.Policies {
			if ft.AvgThroughput[mode][policy] <= 0 {
				t.Errorf("%s/%s: zero throughput", policy, mode)
			}
		}
	}
	so, err := sweep.SwitchOverheads()
	if err != nil {
		t.Fatal(err)
	}
	// FCFS normalizes to itself.
	if got := so.SwitchesVsFCFS[config.VC1]["fcfs"]; got < 0.99 || got > 1.01 {
		t.Errorf("FCFS self-normalization = %v", got)
	}
	// F3FS's whole point: far fewer switches than FCFS (Fig. 10a).
	if got := so.SwitchesVsFCFS[config.VC2]["f3fs"]; got >= 0.5 {
		t.Errorf("F3FS switches/FCFS = %.3f, want < 0.5", got)
	}
	ar := sweep.ArrivalRates()
	if ar.PolicyAvg[config.VC1]["fr-fcfs"] <= 0 {
		t.Error("zero arrival rate in Fig. 6 reduction")
	}
	is := sweep.IntensitySlice()
	if is.Fairness[config.VC2]["f3fs"]["G8"] <= 0 {
		t.Error("zero fairness in Fig. 13 slice")
	}
	for _, s := range []string{ft.Table(sweep.Modes), so.Table(sweep.Modes), ar.Table(sweep.Modes), is.Table(config.VC2)} {
		if s == "" {
			t.Error("empty rendering")
		}
	}
}

func TestSwitchOverheadsRequiresFCFS(t *testing.T) {
	s := &Sweep{Policies: []string{"f3fs"}}
	if _, err := s.SwitchOverheads(); err == nil {
		t.Error("missing fcfs accepted")
	}
}

func TestQueueSensitivityRuns(t *testing.T) {
	r := quickRunner()
	pts, err := r.QueueSensitivity([]string{"G8"}, []string{"P2"}, []int{256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Throughput <= 0 {
		t.Fatalf("queue sensitivity: %+v", pts)
	}
}

func TestPrioritySweepShiftsService(t *testing.T) {
	r := quickRunner()
	pts, err := r.PrioritySweep([]string{"G8"}, []string{"P2"},
		[][2]int{{1, 4}, {1, 1}, {4, 1}}, 512, config.VC2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Raising the MEM priority must not reduce the GPU kernel's speedup
	// share.
	share := func(p PriorityPoint) float64 {
		if p.Throughput == 0 {
			return 0
		}
		return p.GPUSpeedup / p.Throughput
	}
	if share(pts[2]) < share(pts[0]) {
		t.Errorf("GPU share fell as MEM priority rose: %.3f (1:4) -> %.3f (4:1)",
			share(pts[0]), share(pts[2]))
	}
	if PriorityTable(pts) == "" {
		t.Error("empty table")
	}
}

func TestEnergySweep(t *testing.T) {
	r := quickRunner()
	pts, err := r.EnergySweep("G8", "P2", []string{"fcfs", "f3fs"}, config.VC2, energyModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.TotalUJ <= 0 || p.PerRequestNJ <= 0 {
			t.Errorf("%s: degenerate energy %+v", p.Policy, p)
		}
	}
	// FCFS thrashes rows relative to F3FS on the same work: it must not
	// be cheaper per request.
	if pts[0].PerRequestNJ < pts[1].PerRequestNJ {
		t.Errorf("fcfs %.2f nJ/req cheaper than f3fs %.2f", pts[0].PerRequestNJ, pts[1].PerRequestNJ)
	}
	if EnergyTable(pts) == "" {
		t.Error("empty table")
	}
	if _, err := r.EnergySweep("G8", "P2", []string{"nope"}, config.VC2, energyModel()); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestDualBufferAblation(t *testing.T) {
	r := quickRunner()
	pts, err := r.DualBufferAblation("G8", "P2", []string{"fcfs", "f3fs"}, config.VC2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// The dual buffer's whole effect: switch-induced conflicts
		// disappear.
		if p.DualConflictsPerSwitch != 0 {
			t.Errorf("%s: dual-buffer conflicts/switch = %v, want 0", p.Policy, p.DualConflictsPerSwitch)
		}
		if p.ConflictsPerSwitch == 0 {
			t.Errorf("%s: shared-buffer conflicts/switch = 0; scenario too gentle", p.Policy)
		}
	}
	// The frequent switcher (FCFS) must gain more throughput from the
	// dual buffer than the rare switcher (F3FS).
	gain := func(p DualBufferPoint) float64 { return p.DualThroughput - p.Throughput }
	if gain(pts[0]) <= gain(pts[1]) {
		t.Errorf("fcfs gain %.3f not above f3fs gain %.3f", gain(pts[0]), gain(pts[1]))
	}
	if DualBufferTable(pts) == "" {
		t.Error("empty table")
	}
}

func TestUnknownKernelAndPolicyErrors(t *testing.T) {
	r := quickRunner()
	if _, err := r.Competitive("G99", "P1", "f3fs", config.VC1); err == nil {
		t.Error("unknown GPU kernel accepted")
	}
	if _, err := r.Competitive("G8", "P99", "f3fs", config.VC1); err == nil {
		t.Error("unknown PIM kernel accepted")
	}
	if _, err := r.Competitive("G8", "P1", "nope", config.VC1); err == nil {
		t.Error("unknown policy accepted")
	}
}
