package experiments

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/telemetry"
)

// TestStandaloneSingleFlight hammers the baseline caches from many
// goroutines at once — the Parallel > 1 regime of cmd/pimsweep. Run
// under -race this is the proof that the single-flight cells are safe;
// the value checks prove every caller observes the one shared result.
func TestStandaloneSingleFlight(t *testing.T) {
	r := quickRunner()
	const callers = 8
	gpu := make([]Standalone, callers)
	pim := make([]Standalone, callers)
	errs := make([]error, 2*callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gpu[i], errs[2*i] = r.StandaloneGPUOn("G8", r.Cfg.GPU.NumSMs)
			pim[i], errs[2*i+1] = r.StandalonePIM("P2")
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < callers; i++ {
		if gpu[i] != gpu[0] {
			t.Fatalf("caller %d saw a different GPU baseline: %+v vs %+v", i, gpu[i], gpu[0])
		}
		if pim[i] != pim[0] {
			t.Fatalf("caller %d saw a different PIM baseline: %+v vs %+v", i, pim[i], pim[0])
		}
	}
	if gpu[0].Cycles == 0 || pim[0].Cycles == 0 {
		t.Fatalf("degenerate baselines: gpu %+v, pim %+v", gpu[0], pim[0])
	}
}

// TestCompetitiveTelemetryDir checks the sweep-side capture path: with
// the global switch on and TelemetryDir set, Competitive must leave one
// readable JSONL file per pair.
func TestCompetitiveTelemetryDir(t *testing.T) {
	telemetry.Enable(true)
	defer telemetry.Enable(false)
	r := quickRunner()
	r.TelemetryDir = t.TempDir()
	p, err := r.Competitive("G8", "P2", "f3fs", config.VC2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Telemetry == nil || p.Manifest == nil {
		t.Fatal("pair carries no telemetry despite the global switch")
	}
	path := filepath.Join(r.TelemetryDir, "G8_P2_f3fs_VC2.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, metrics, samples, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Policy != "f3fs" || m.VCMode != "VC2" {
		t.Fatalf("manifest round-trip: %+v", m)
	}
	if len(metrics) == 0 || len(samples) == 0 {
		t.Fatalf("capture has %d metrics, %d samples", len(metrics), len(samples))
	}
}
