package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// BoxStats is a box-and-whisker summary (Fig. 4's presentation).
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

func boxOf(xs []float64) BoxStats {
	q, ok := stats.QuartilesOf(xs)
	if !ok {
		return BoxStats{} // empty group: render a degenerate box
	}
	return BoxStats{Min: q.Min, Q1: q.Q1, Median: q.Median, Q3: q.Q3, Max: q.Max}
}

// Characterization reproduces Fig. 4: the memory access characteristics
// of the Rodinia suite on all SMs (GPU-80 in the paper) and on the PIM SM
// count (GPU-8), and of the PIM kernels, under FR-FCFS.
type Characterization struct {
	// Groups are "GPU-<all>", "GPU-<few>", "PIM".
	Groups []string
	// NoCRate, MCRate, BLP, RBHR are per-group box summaries in
	// requests/kcycle (rates) and absolute units.
	NoCRate, MCRate, BLP, RBHR map[string]BoxStats
	// PerKernel keeps the raw values for downstream analysis, keyed by
	// group then kernel ID.
	PerKernel map[string]map[string]Standalone
}

// Characterize runs the Fig. 4 characterization for the given kernels.
func (r *Runner) Characterize(gpuIDs, pimIDs []string) (*Characterization, error) {
	few := r.Cfg.GPU.PIMSMs
	all := r.Cfg.GPU.NumSMs
	groupAll := fmt.Sprintf("GPU-%d", all)
	groupFew := fmt.Sprintf("GPU-%d", few)
	c := &Characterization{
		Groups:    []string{groupAll, groupFew, "PIM"},
		NoCRate:   map[string]BoxStats{},
		MCRate:    map[string]BoxStats{},
		BLP:       map[string]BoxStats{},
		RBHR:      map[string]BoxStats{},
		PerKernel: map[string]map[string]Standalone{groupAll: {}, groupFew: {}, "PIM": {}},
	}
	for _, id := range gpuIDs {
		sAll, err := r.StandaloneGPUOn(id, all)
		if err != nil {
			return nil, err
		}
		sFew, err := r.StandaloneGPUOn(id, few)
		if err != nil {
			return nil, err
		}
		c.PerKernel[groupAll][id] = sAll
		c.PerKernel[groupFew][id] = sFew
	}
	for _, id := range pimIDs {
		s, err := r.StandalonePIM(id)
		if err != nil {
			return nil, err
		}
		c.PerKernel["PIM"][id] = s
	}
	for group, kernels := range c.PerKernel {
		var noc, mc, blp, rbhr []float64
		for _, s := range kernels {
			noc = append(noc, s.NoCRate)
			mc = append(mc, s.MCRate)
			blp = append(blp, s.BLP)
			rbhr = append(rbhr, s.RBHR)
		}
		if len(noc) == 0 {
			continue
		}
		c.NoCRate[group] = boxOf(noc)
		c.MCRate[group] = boxOf(mc)
		c.BLP[group] = boxOf(blp)
		c.RBHR[group] = boxOf(rbhr)
	}
	return c, nil
}

// Table renders the characterization as aligned text.
func (c *Characterization) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %8s %8s %8s %8s %8s\n", "group", "metric", "min", "q1", "median", "q3", "max")
	row := func(group, metric string, bs BoxStats) {
		fmt.Fprintf(&b, "%-10s %-10s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			group, metric, bs.Min, bs.Q1, bs.Median, bs.Q3, bs.Max)
	}
	for _, g := range c.Groups {
		row(g, "noc-rate", c.NoCRate[g])
		row(g, "mc-rate", c.MCRate[g])
		row(g, "blp", c.BLP[g])
		row(g, "rbhr", c.RBHR[g])
	}
	return b.String()
}

// CoRunImpact reproduces Fig. 5: the average speedup of a set of GPU
// kernels on the co-execution SM share, alone and against each co-runner
// (memory-intensive GPU kernels or a PIM kernel on the reserved SMs),
// normalized to running alone on all SMs.
type CoRunImpact struct {
	// CoRunners orders the columns: "none" then each co-runner ID.
	CoRunners []string
	// AvgSpeedup maps co-runner -> mean speedup of the suite.
	AvgSpeedup map[string]float64
	// PerKernel maps co-runner -> suite kernel -> speedup.
	PerKernel map[string]map[string]float64
}

// CoRun runs the Fig. 5 experiment: suite kernels on NumSMs-PIMSMs SMs,
// against co-runners on the remaining SMs. A co-runner ID starting with
// "P" is a PIM kernel; "none" (or "") measures reduced-SM impact alone.
func (r *Runner) CoRun(suite []string, coRunners []string) (*CoRunImpact, error) {
	out := &CoRunImpact{
		CoRunners:  append([]string{"none"}, coRunners...),
		AvgSpeedup: map[string]float64{},
		PerKernel:  map[string]map[string]float64{},
	}
	gpuSMsN := r.Cfg.GPU.NumSMs - r.Cfg.GPU.PIMSMs
	var mu sync.Mutex
	for _, co := range out.CoRunners {
		out.PerKernel[co] = map[string]float64{}
		co := co
		err := r.forEachPair(suite, []string{"x"}, func(id, _ string) error {
			alone, err := r.StandaloneGPU(id)
			if err != nil {
				return err
			}
			var sp float64
			if co == "none" {
				reduced, err := r.StandaloneGPUOn(id, gpuSMsN)
				if err != nil {
					return err
				}
				sp = speedup(alone.Cycles, reduced.Cycles)
			} else {
				sp, err = r.coRunSpeedup(id, co)
				if err != nil {
					return err
				}
			}
			mu.Lock()
			out.PerKernel[co][id] = sp
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		var xs []float64
		for _, v := range out.PerKernel[co] {
			xs = append(xs, v)
		}
		out.AvgSpeedup[co] = stats.Mean(xs)
	}
	return out, nil
}

// coRunSpeedup runs suite kernel id on the GPU share against co-runner
// co on the reserved SMs and returns id's speedup vs alone-on-all-SMs.
func (r *Runner) coRunSpeedup(id, co string) (float64, error) {
	alone, err := r.StandaloneGPU(id)
	if err != nil {
		return 0, err
	}
	cfg := r.baseCfg(config.VC1)
	gpuSMs, pimSMs := sim.GPUAndPIMSMs(cfg)
	prof, err := workload.GPUProfileByID(id)
	if err != nil {
		return 0, err
	}
	descs := []sim.KernelDesc{{GPU: &prof, SMs: gpuSMs, Scale: r.Scale}}
	if strings.HasPrefix(co, "P") {
		coProf, err := workload.PIMProfileByID(co)
		if err != nil {
			return 0, err
		}
		descs = append(descs, sim.KernelDesc{PIM: &coProf, SMs: pimSMs, Scale: r.Scale, Base: 1 << 30})
	} else {
		coProf, err := workload.GPUProfileByID(co)
		if err != nil {
			return 0, err
		}
		descs = append(descs, sim.KernelDesc{GPU: &coProf, SMs: pimSMs, Scale: r.Scale, Base: 1 << 30})
	}
	sys, err := sim.New(cfg, core.Factory("fr-fcfs", cfg.Sched), descs)
	if err != nil {
		return 0, err
	}
	res, err := sys.Run()
	if err != nil {
		return 0, err
	}
	return speedup(alone.Cycles, res.Kernels[0].EstFinish), nil
}

// Table renders the co-run impact as aligned text.
func (c *CoRunImpact) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s\n", "co-runner", "avg speedup")
	for _, co := range c.CoRunners {
		fmt.Fprintf(&b, "%-10s %12.3f\n", co, c.AvgSpeedup[co])
	}
	return b.String()
}
