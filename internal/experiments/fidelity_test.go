package experiments

import (
	"testing"

	"repro/internal/config"
)

// These tests pin the qualitative relations the paper's characterization
// establishes (Sec. IV) — the calibration targets of the synthetic
// workload profiles. They run a moderate number of simulations; -short
// skips them.

func TestFig4Relations(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization fidelity test skipped in -short mode")
	}
	r := quickRunner()
	c, err := r.Characterize([]string{"G4", "G6", "G11", "G15", "G17", "G19", "G10"}, []string{"P1", "P2", "P4"})
	if err != nil {
		t.Fatal(err)
	}
	groupAll, groupFew := c.Groups[0], c.Groups[1]

	// (1) PIM kernels out-inject the same SM count running Rodinia
	// ("3.95x higher arrival rate into the interconnect than GPU-8").
	// The ratio is compressed on this substrate — the profile-driven SM
	// model sustains more memory-level parallelism per SM than
	// GPGPU-Sim's Rodinia kernels — so only the direction is pinned.
	pimNoC := c.NoCRate["PIM"].Median
	fewNoC := c.NoCRate[groupFew].Median
	if pimNoC < 1.2*fewNoC {
		t.Errorf("PIM NoC rate %.1f not above GPU-few %.1f", pimNoC, fewNoC)
	}

	// (2) PIM requests bypass the L2, so at the memory controller PIM
	// outpaces even the full-GPU configuration ("2.07x GPU-80").
	pimMC := c.MCRate["PIM"].Median
	allMC := c.MCRate[groupAll].Median
	if pimMC < allMC {
		t.Errorf("PIM MC rate %.1f below GPU-all %.1f (L2 filtering should invert this)", pimMC, allMC)
	}

	// (3) All-bank lockstep execution: PIM BLP pinned at the bank count
	// with "a single bar" (no spread).
	if c.BLP["PIM"].Min < 14 {
		t.Errorf("PIM BLP min %.1f, want ~16 across all PIM kernels", c.BLP["PIM"].Min)
	}

	// (4) PIM row locality is uniformly high (block structure).
	if c.RBHR["PIM"].Min < 0.8 {
		t.Errorf("PIM locality min %.2f, want > 0.8", c.RBHR["PIM"].Min)
	}

	// (5) Named extremes within the GPU-all group.
	per := c.PerKernel[groupAll]
	if per["G17"].RBHR <= per["G6"].RBHR {
		t.Errorf("G17 RBHR %.2f <= G6 %.2f (pathfinder should lead, gaussian trail)",
			per["G17"].RBHR, per["G6"].RBHR)
	}
	if per["G6"].BLP <= per["G10"].BLP {
		t.Errorf("G6 BLP %.2f <= G10 %.2f (gaussian is the BLP extreme)",
			per["G6"].BLP, per["G10"].BLP)
	}
	if per["G10"].MCRate >= per["G15"].MCRate {
		t.Errorf("compute-bound G10 MC rate %.1f >= nn's %.1f", per["G10"].MCRate, per["G15"].MCRate)
	}
	// (6) G19 is interconnect-heavy but L2-filtered: its NoC rate is
	// high while its DRAM rate drops well below it.
	if per["G19"].MCRate > 0.55*per["G19"].NoCRate {
		t.Errorf("G19 not L2-filtered: MC %.1f vs NoC %.1f", per["G19"].MCRate, per["G19"].NoCRate)
	}
}

// TestHeadlineProposalBeatsBaseline pins the paper's summary claim: the
// proposed system (VC2 + F3FS) improves both fairness and throughput over
// the single-VC interconnect with the fairest baseline (FR-RR-FCFS).
func TestHeadlineProposalBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("headline fidelity test skipped in -short mode")
	}
	r := quickRunner()
	var baseFI, baseST, propFI, propST []float64
	for _, g := range []string{"G8", "G17"} {
		for _, p := range []string{"P1", "P2"} {
			base, err := r.Competitive(g, p, "fr-rr-fcfs", config.VC1)
			if err != nil {
				t.Fatal(err)
			}
			prop, err := r.Competitive(g, p, "f3fs", config.VC2)
			if err != nil {
				t.Fatal(err)
			}
			baseFI = append(baseFI, base.Fairness)
			baseST = append(baseST, base.Throughput)
			propFI = append(propFI, prop.Fairness)
			propST = append(propST, prop.Throughput)
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(propFI) <= mean(baseFI) {
		t.Errorf("proposal fairness %.3f not above baseline %.3f", mean(propFI), mean(baseFI))
	}
	if mean(propST) <= mean(baseST) {
		t.Errorf("proposal throughput %.3f not above baseline %.3f", mean(propST), mean(baseST))
	}
}

func TestFig5CoRunRelations(t *testing.T) {
	if testing.Short() {
		t.Skip("co-run fidelity test skipped in -short mode")
	}
	r := quickRunner()
	c, err := r.CoRun([]string{"G8", "G13", "G18"}, []string{"G15", "P1"})
	if err != nil {
		t.Fatal(err)
	}
	// Losing SMs alone costs something but not much.
	none := c.AvgSpeedup["none"]
	if none >= 1.01 || none < 0.5 {
		t.Errorf("reduced-SM speedup %.2f out of plausible range", none)
	}
	// The PIM co-runner hurts the suite more than the worst GPU
	// co-runner (Fig. 5: 60% slowdown vs worst-case 30%).
	if c.AvgSpeedup["P1"] >= c.AvgSpeedup["G15"] {
		t.Errorf("PIM co-runner (%.3f) should hurt more than GPU co-runner (%.3f)",
			c.AvgSpeedup["P1"], c.AvgSpeedup["G15"])
	}
}

// TestITSAndWEISDevolveIntoStaticPriority reproduces the related-work
// claim of Sec. VIII: "ITS and WEIS … would devolve into MEM/PIM-First
// depending on their priority order". Under a saturating PIM co-runner,
// ITS's smaller-backlog preference tracks MEM-First and WEIS's
// attained-bandwidth preference tracks PIM-First.
func TestITSAndWEISDevolveIntoStaticPriority(t *testing.T) {
	if testing.Short() {
		t.Skip("devolution fidelity test skipped in -short mode")
	}
	r := quickRunner()
	get := func(policy string) Pair {
		p, err := r.Competitive("G8", "P1", policy, config.VC2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	its, memFirst := get("its"), get("mem-first")
	weis, pimFirst := get("weis"), get("pim-first")
	closeTo := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d < 0.15
	}
	if !closeTo(its.GPUSpeedup, memFirst.GPUSpeedup) || !closeTo(its.PIMSpeedup, memFirst.PIMSpeedup) {
		t.Errorf("ITS (%.2f/%.2f) did not devolve to MEM-First (%.2f/%.2f)",
			its.GPUSpeedup, its.PIMSpeedup, memFirst.GPUSpeedup, memFirst.PIMSpeedup)
	}
	if !closeTo(weis.GPUSpeedup, pimFirst.GPUSpeedup) || !closeTo(weis.PIMSpeedup, pimFirst.PIMSpeedup) {
		t.Errorf("WEIS (%.2f/%.2f) did not devolve to PIM-First (%.2f/%.2f)",
			weis.GPUSpeedup, weis.PIMSpeedup, pimFirst.GPUSpeedup, pimFirst.PIMSpeedup)
	}
}

func TestFig6VC2HelpsMemFirstMost(t *testing.T) {
	if testing.Short() {
		t.Skip("arrival-rate fidelity test skipped in -short mode")
	}
	r := quickRunner()
	sweep, err := r.RunSweep([]string{"G4", "G8", "G17"}, []string{"P1"},
		[]string{"mem-first", "fr-fcfs"}, []config.VCMode{config.VC1, config.VC2})
	if err != nil {
		t.Fatal(err)
	}
	a := sweep.ArrivalRates()
	// Sec. V-A: VC2 unblocks MEM requests stalled behind PIM in the
	// shared interconnect; MEM-First recovers the most of its
	// standalone arrival rate ("its average degradation reducing from
	// 68% to 9%" — the best absolute recovery in Fig. 6b).
	gainMemFirst := a.PolicyAvg[config.VC2]["mem-first"] / a.PolicyAvg[config.VC1]["mem-first"]
	gainFRFCFS := a.PolicyAvg[config.VC2]["fr-fcfs"] / a.PolicyAvg[config.VC1]["fr-fcfs"]
	if gainMemFirst <= 1.0 || gainFRFCFS <= 1.0 {
		t.Errorf("VC2 did not improve arrival rates: mem-first %.2f, fr-fcfs %.2f", gainMemFirst, gainFRFCFS)
	}
	if a.PolicyAvg[config.VC2]["mem-first"] <= a.PolicyAvg[config.VC2]["fr-fcfs"] {
		t.Errorf("MEM-First VC2 recovery %.3f not the highest (fr-fcfs %.3f)",
			a.PolicyAvg[config.VC2]["mem-first"], a.PolicyAvg[config.VC2]["fr-fcfs"])
	}
}
