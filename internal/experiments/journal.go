package experiments

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// JournalSchema versions the checkpoint format; bump on incompatible
// change.
const JournalSchema = "pimsim-journal/v1"

// PairKey is the canonical journal key of one competitive combination.
func PairKey(gpuID, pimID, policy string, mode config.VCMode) string {
	return fmt.Sprintf("%s_%s_%s_%s", gpuID, pimID, policy, mode)
}

type journalHeader struct {
	Schema     string  `json:"schema"`
	ConfigHash string  `json:"config_hash"`
	Scale      float64 `json:"scale"`
}

// JournalEntry is one journaled run outcome: a completed Pair or a
// structured failure.
type JournalEntry struct {
	Key    string    `json:"key"`
	Status string    `json:"status"` // "done" or "failed"
	Pair   *Pair     `json:"pair,omitempty"`
	Error  *RunError `json:"error,omitempty"`
}

// Journal checkpoints a campaign's completed pairs so an interrupted
// sweep resumes where it left off. The on-disk format is JSONL — a
// header identifying the config (hash + scale) followed by one entry per
// finished or failed pair — rewritten atomically (internal/journal's
// checkpoint discipline: temp file + rename, fsync'd) on every record,
// so a kill at any instant leaves either the previous or the new
// complete journal. Safe for concurrent use by parallel workers.
type Journal struct {
	mu      sync.Mutex
	path    string
	header  journalHeader
	entries map[string]JournalEntry
	order   []string
}

// OpenJournal loads (or initializes) the journal at path for a campaign
// over the given config and scale. Existing entries are kept only when
// the header matches this campaign's config hash and scale — a journal
// from a different config (including a different fault schedule, which
// changes the hash) is discarded rather than trusted. A truncated or
// corrupt trailing line is tolerated: entries before it survive.
func OpenJournal(path string, cfg config.Config, scale float64) (*Journal, error) {
	j := &Journal{
		path: path,
		header: journalHeader{
			Schema:     JournalSchema,
			ConfigHash: telemetry.HashConfig(cfg),
			Scale:      scale,
		},
		entries: make(map[string]JournalEntry),
	}
	matchHeader := func(line []byte) bool {
		var h journalHeader
		return json.Unmarshal(line, &h) == nil && h == j.header
	}
	replay := func(line []byte) error {
		var e JournalEntry
		if json.Unmarshal(line, &e) != nil || e.Key == "" {
			return journal.ErrCorrupt // truncated tail — keep what parsed
		}
		if _, seen := j.entries[e.Key]; !seen {
			j.order = append(j.order, e.Key)
		}
		j.entries[e.Key] = e
		return nil
	}
	// Checkpoint semantics: the file is rewritten whole, so nothing after
	// a damaged line is trustworthy — stop there (stopAtCorrupt).
	if _, err := journal.Scan(path, matchHeader, replay, true); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return j, nil
}

// LookupDone returns the journaled Pair of a completed combination.
// Failed and missing combinations return ok=false, so resume re-runs
// exactly those.
func (j *Journal) LookupDone(key string) (Pair, bool) {
	if j == nil {
		return Pair{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok || e.Status != "done" || e.Pair == nil {
		return Pair{}, false
	}
	return *e.Pair, true
}

// DoneCount returns how many combinations are journaled as completed.
func (j *Journal) DoneCount() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Status == "done" {
			n++
		}
	}
	return n
}

// RecordDone journals a completed pair. The pair's live telemetry
// collector is stripped (it does not serialize; per-pair JSONL captures
// are written separately), so a resumed campaign reproduces the numeric
// results exactly — JSON round-trips float64 losslessly — minus the
// in-memory telemetry handle.
func (j *Journal) RecordDone(key string, p Pair) error {
	if j == nil {
		return nil
	}
	p.Telemetry = nil
	return j.record(JournalEntry{Key: key, Status: "done", Pair: &p})
}

// RecordFailed journals a structured per-run failure; resume retries the
// combination.
func (j *Journal) RecordFailed(key string, re *RunError) error {
	if j == nil {
		return nil
	}
	return j.record(JournalEntry{Key: key, Status: "failed", Error: re})
}

func (j *Journal) record(e JournalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, seen := j.entries[e.Key]; !seen {
		j.order = append(j.order, e.Key)
	}
	j.entries[e.Key] = e

	// The atomic checkpoint rewrite (tmp+fsync+rename) runs under j.mu
	// on purpose: it serializes with the entry-map updates above so a
	// checkpoint is always a consistent snapshot, and a resumed
	// campaign never reads a half-applied state. j.mu leads to no
	// other lock.
	//pimlint:lockorder — checkpoint rewrite must serialize with entry updates under j.mu for consistent resume snapshots
	err := journal.Rewrite(j.path, j.header, func(enc *json.Encoder) error { //pimlint:nondet — journaled entries carry the run Manifest (wall-time provenance); result digests and resumed figure data read only the deterministic Pair fields
		for _, key := range j.order {
			entry := j.entries[key]
			if err := enc.Encode(entry); err != nil {
				return fmt.Errorf("experiments: journal entry %s: %w", key, err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("experiments: journal write: %w", err)
	}
	return nil
}
