package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// These tests pin the forEachPairCtx worker-pool contract the ctxflow
// and goorphan analyzers assume: workers are WaitGroup-joined, the
// dispatcher's send races ctx.Done() so cancellation never deadlocks
// it, and a real run error is preferred over the cancellations it may
// have caused.

func TestForEachPairCtxAllPairs(t *testing.T) {
	r := &Runner{Parallel: 3}
	var mu sync.Mutex
	got := map[string]bool{}
	err := r.forEachPairCtx(context.Background(), []string{"g1", "g2", "g3"}, []string{"p1", "p2"},
		func(g, p string) error {
			mu.Lock()
			got[g+"/"+p] = true
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("ran %d pairs, want 6: %v", len(got), got)
	}
}

func TestForEachPairCtxErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &Runner{Parallel: 2}
	boom := errors.New("boom")
	var once sync.Once
	err := r.forEachPairCtx(ctx, []string{"g1", "g2"}, []string{"p1", "p2"},
		func(g, p string) error {
			var first bool
			once.Do(func() { first = true })
			if first {
				cancel() // the failure also cancels the sweep
				return boom
			}
			return ctx.Err()
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the run error to win over the cancellations it caused", err)
	}
}

func TestForEachPairCtxCancelReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &Runner{Parallel: 2}
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- r.forEachPairCtx(ctx, []string{"a", "b"}, []string{"c", "d"},
			func(g, p string) error {
				started <- struct{}{}
				<-release
				return nil
			})
	}()
	// Both workers are mid-job, so the dispatcher is blocked handing
	// over job three; cancellation must unblock it.
	<-started
	<-started
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("forEachPairCtx did not return after cancellation")
	}
	// The undispatched jobs must not have run.
	close(started)
	n := 2
	for range started {
		n++
	}
	if n > 3 {
		t.Fatalf("%d jobs ran after two pre-cancel starts; cancellation should stop dispatch", n)
	}
}
