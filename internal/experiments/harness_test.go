package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// buildCompetitiveSystem assembles the same contended System that
// Competitive would run, so harness tests can drive runSystem directly.
func buildCompetitiveSystem(t *testing.T, r *Runner, factory sched.PolicyFactory, mode config.VCMode) (config.Config, *sim.System) {
	t.Helper()
	gProf, err := workload.GPUProfileByID("G8")
	if err != nil {
		t.Fatal(err)
	}
	pProf, err := workload.PIMProfileByID("P1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.baseCfg(mode)
	gpuSMs, pimSMs := sim.GPUAndPIMSMs(cfg)
	sys, err := sim.New(cfg, factory, []sim.KernelDesc{
		{GPU: &gProf, SMs: gpuSMs, Scale: r.Scale},
		{PIM: &pProf, SMs: pimSMs, Scale: r.Scale, Base: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg, sys
}

// TestRunTimeoutSurfacesAsRunError checks the per-run deadline: a
// RunTimeout far shorter than the simulation yields a structured
// *RunError of kind "timeout" carrying the diagnostic bundle, and the
// deadline cause stays reachable through errors.Is.
func TestRunTimeoutSurfacesAsRunError(t *testing.T) {
	r := quickRunner()
	r.RunTimeout = time.Millisecond
	cfg, sys := buildCompetitiveSystem(t, r, core.Factory("f3fs", r.Cfg.Sched), config.VC1)
	_, err := r.runSystem(context.Background(), cfg, sys, runID{
		GPUID: "G8", PIMID: "P1", Policy: "f3fs", Mode: "VC1", What: "competitive",
	})
	if err == nil {
		t.Fatal("1ms deadline did not interrupt the run")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("timeout surfaced as %T, want *RunError: %v", err, err)
	}
	if re.Kind != "timeout" {
		t.Fatalf("kind = %q, want timeout (%v)", re.Kind, re)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("RunError does not unwrap to context.DeadlineExceeded")
	}
	if re.GPUID != "G8" || re.PIMID != "P1" || re.Policy != "f3fs" || re.What != "competitive" {
		t.Fatalf("run identity lost: %+v", re)
	}
	if re.ConfigHash == "" || len(re.Queues) == 0 {
		t.Fatalf("diagnostic bundle incomplete: hash=%q queues=%d", re.ConfigHash, len(re.Queues))
	}
	if !strings.Contains(re.Error(), "timeout") {
		t.Fatalf("Error() does not mention the kind: %s", re.Error())
	}
}

// panicPolicy blows up after a fixed number of DesiredMode calls,
// modelling a latent scheduling bug deep inside the cycle loop.
type panicPolicy struct{ calls int }

func (p *panicPolicy) Name() string { return "panic-after" }
func (p *panicPolicy) DesiredMode(sched.View) sched.Mode {
	p.calls++
	if p.calls > 5000 {
		panic("injected policy bug")
	}
	return sched.ModeMEM
}
func (p *panicPolicy) MemRowHitsAllowed(sched.View) bool         { return true }
func (p *panicPolicy) MemConflictServiceAllowed(sched.View) bool { return true }
func (p *panicPolicy) OnIssue(sched.View, sched.IssueInfo)       {}
func (p *panicPolicy) OnSwitch(sched.View, sched.Mode)           {}
func (p *panicPolicy) Reset()                                    {}

// TestPanicRecoveredAsRunError checks that a panic inside the cycle loop
// does not unwind the campaign: it comes back as a *RunError of kind
// "panic" with the panic value and a stack trace.
func TestPanicRecoveredAsRunError(t *testing.T) {
	r := quickRunner()
	// Pin the per-cycle engine: panicPolicy counts DesiredMode calls, so it
	// needs the tick engine's every-cycle policy cadence to reach its
	// threshold. (A call-counting policy is not idempotent, which the event
	// engine's quiescence analysis assumes; the subject here is the
	// harness's panic recovery, not scheduling.)
	r.Cfg.Engine = config.EngineTick
	cfg, sys := buildCompetitiveSystem(t, r, func() sched.Policy { return &panicPolicy{} }, config.VC1)
	_, err := r.runSystem(context.Background(), cfg, sys, runID{
		GPUID: "G8", PIMID: "P1", Policy: "panic-after", Mode: "VC1", What: "competitive",
	})
	if err == nil {
		t.Fatal("panicking policy produced no error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("panic surfaced as %T, want *RunError: %v", err, err)
	}
	if re.Kind != "panic" {
		t.Fatalf("kind = %q, want panic", re.Kind)
	}
	if re.PanicValue != "injected policy bug" {
		t.Fatalf("panic value lost: %q", re.PanicValue)
	}
	if !strings.Contains(re.Stack, "panicPolicy") {
		t.Fatal("stack trace does not reach the panic site")
	}
	if len(re.Queues) == 0 {
		t.Fatal("panic diagnostics carry no queue snapshot")
	}
}

// TestJournalRoundTrip writes done and failed entries, reopens the
// journal, and checks resume semantics: done pairs come back value-equal,
// failed and missing pairs report not-done so they re-run.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	cfg := config.Scaled()

	j, err := OpenJournal(path, cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	doneKey := PairKey("G8", "P1", "f3fs", config.VC1)
	failKey := PairKey("G8", "P2", "f3fs", config.VC1)
	want := Pair{
		GPUID: "G8", PIMID: "P1", Policy: "f3fs", Mode: config.VC1,
		GPUSpeedup: 0.8071523, PIMSpeedup: 0.33381, Fairness: 0.413575,
		Throughput: 1.1409623, Switches: 1234, AvgMemQ: 17.25,
	}
	if err := j.RecordDone(doneKey, want); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordFailed(failKey, &RunError{
		GPUID: "G8", PIMID: "P2", Policy: "f3fs", Mode: "VC1",
		Kind: "timeout", Message: "deadline",
	}); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := j2.LookupDone(doneKey)
	if !ok {
		t.Fatal("done entry lost across reopen")
	}
	// JSON round-trips float64 exactly, so resumed numbers are identical.
	if got != want {
		t.Fatalf("journaled pair drifted:\n got %+v\nwant %+v", got, want)
	}
	if _, ok := j2.LookupDone(failKey); ok {
		t.Fatal("failed entry reported as done; resume would skip it")
	}
	if _, ok := j2.LookupDone(PairKey("G17", "P1", "f3fs", config.VC1)); ok {
		t.Fatal("missing entry reported as done")
	}
	if n := j2.DoneCount(); n != 1 {
		t.Fatalf("DoneCount = %d, want 1", n)
	}
}

// TestJournalHeaderMismatchDiscards checks a journal written for one
// config is never trusted for another: a changed seed (or fault
// schedule — both change the config hash) or scale starts fresh.
func TestJournalHeaderMismatchDiscards(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	cfg := config.Scaled()
	j, err := OpenJournal(path, cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	key := PairKey("G8", "P1", "fcfs", config.VC1)
	if err := j.RecordDone(key, Pair{GPUID: "G8", PIMID: "P1"}); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Seed = cfg.Seed + 1
	j2, err := OpenJournal(path, other, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j2.LookupDone(key); ok {
		t.Fatal("journal for a different config was trusted")
	}

	j3, err := OpenJournal(path, cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j3.LookupDone(key); ok {
		t.Fatal("journal for a different scale was trusted")
	}

	// And the matching campaign still sees its entry.
	j4, err := OpenJournal(path, cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j4.LookupDone(key); !ok {
		t.Fatal("matching reopen lost the entry")
	}
}

// TestJournalTruncatedTailTolerated simulates a kill mid-append from a
// pre-atomic writer: entries before the torn line must survive.
func TestJournalTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	cfg := config.Scaled()
	j, err := OpenJournal(path, cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	key := PairKey("G8", "P1", "fcfs", config.VC1)
	if err := j.RecordDone(key, Pair{GPUID: "G8", PIMID: "P1"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"G17_P1_fcfs_VC1","status":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j2.LookupDone(key); !ok {
		t.Fatal("intact prefix entry lost to a torn tail")
	}
	if _, ok := j2.LookupDone(PairKey("G17", "P1", "fcfs", config.VC1)); ok {
		t.Fatal("torn entry was resurrected")
	}
}

// sweepNumbers flattens the metrics a campaign reports, for exact
// comparison between an uninterrupted run and a cancel-then-resume run.
func sweepNumbers(s *Sweep) map[string][5]float64 {
	out := map[string][5]float64{}
	for _, mode := range s.Modes {
		for _, policy := range s.Policies {
			for _, g := range s.GPUIDs {
				for _, p := range s.PIMIDs {
					pair := s.Pairs[mode][policy][g][p]
					out[PairKey(g, p, policy, mode)] = [5]float64{
						pair.GPUSpeedup, pair.PIMSpeedup, pair.Fairness,
						pair.Throughput, float64(pair.Switches),
					}
				}
			}
		}
	}
	return out
}

// TestSweepCancelAndResume is the campaign-hardening end-to-end: a
// parallel sweep is cancelled mid-flight, must return promptly without
// leaking worker goroutines, and a resumed campaign over the same
// journal must finish the remaining pairs and reproduce the exact
// numbers of an uninterrupted run.
func TestSweepCancelAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep test")
	}
	gpuIDs := []string{"G8"}
	pimIDs := []string{"P1", "P2"}
	policies := []string{"fcfs", "f3fs"}
	modes := []config.VCMode{config.VC1}
	cfg := quickRunner().Cfg
	scale := 0.25

	// Uninterrupted reference campaign (no journal).
	ref := NewRunner(cfg, scale)
	ref.Parallel = 4
	refSweep, err := ref.RunSweep(gpuIDs, pimIDs, policies, modes)
	if err != nil {
		t.Fatal(err)
	}
	refNums := sweepNumbers(refSweep)

	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(journalPath, cfg, scale)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	interrupted := NewRunner(cfg, scale)
	interrupted.Parallel = 4
	interrupted.Journal = j

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var sweepErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, sweepErr = interrupted.RunSweepCtx(ctx, gpuIDs, pimIDs, policies, modes)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	returned := make(chan struct{})
	go func() { wg.Wait(); close(returned) }()
	select {
	case <-returned:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return within 30s")
	}
	if !errors.Is(sweepErr, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", sweepErr)
	}
	if n := j.DoneCount(); n >= len(gpuIDs)*len(pimIDs)*len(policies)*len(modes) {
		t.Fatalf("cancellation landed after the whole sweep finished (%d done); nothing left to resume", n)
	}

	// All in-flight simulations must have wound down, not leaked.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked by cancelled sweep: %d before, %d after", before, n)
	}

	// Resume in a fresh runner (fresh process, conceptually): reopen the
	// journal and run the same campaign to completion.
	j2, err := OpenJournal(journalPath, cfg, scale)
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewRunner(cfg, scale)
	resumed.Parallel = 4
	resumed.Journal = j2
	resSweep, err := resumed.RunSweep(gpuIDs, pimIDs, policies, modes)
	if err != nil {
		t.Fatal(err)
	}
	resNums := sweepNumbers(resSweep)
	if len(resNums) != len(refNums) {
		t.Fatalf("resumed sweep covers %d pairs, reference %d", len(resNums), len(refNums))
	}
	for key, want := range refNums {
		if got := resNums[key]; got != want {
			t.Fatalf("resumed %s = %v, want %v (resume must be bit-identical)", key, got, want)
		}
	}
	if n := j2.DoneCount(); n != len(refNums) {
		t.Fatalf("journal records %d done after resume, want %d", n, len(refNums))
	}
}

// TestSweepQuarantinesFailedPairs checks a failing combination does not
// abort the campaign: with a per-run timeout tripping every contended
// run, the sweep completes, reports each failure in Failed, and journals
// them as failed (so resume retries).
func TestSweepQuarantinesFailedPairs(t *testing.T) {
	cfg := quickRunner().Cfg
	r := NewRunner(cfg, 0.25)
	r.Parallel = 2
	j, err := OpenJournal(filepath.Join(t.TempDir(), "journal.jsonl"), cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	r.Journal = j

	// Warm the standalones unbounded, then bound contended runs so
	// tightly every one times out.
	if _, err := r.StandaloneGPU("G8"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"P1", "P2"} {
		if _, err := r.StandalonePIM(p); err != nil {
			t.Fatal(err)
		}
	}
	r.RunTimeout = time.Millisecond

	s, err := r.RunSweep([]string{"G8"}, []string{"P1", "P2"}, []string{"f3fs"}, []config.VCMode{config.VC1})
	if err != nil {
		t.Fatalf("sweep aborted instead of quarantining failures: %v", err)
	}
	if len(s.Failed) != 2 {
		t.Fatalf("Failed records %d combinations, want 2: %+v", len(s.Failed), s.Failed)
	}
	for key, re := range s.Failed {
		if re.Kind != "timeout" {
			t.Fatalf("%s failed with kind %q, want timeout", key, re.Kind)
		}
	}
	if n := j.DoneCount(); n != 0 {
		t.Fatalf("journal counts %d done, want 0", n)
	}
	// Resume with a sane timeout: the failed pairs re-run and complete.
	j2, err := OpenJournal(j.path, cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(cfg, 0.25)
	r2.Parallel = 2
	r2.Journal = j2
	s2, err := r2.RunSweep([]string{"G8"}, []string{"P1", "P2"}, []string{"f3fs"}, []config.VCMode{config.VC1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Failed) != 0 {
		t.Fatalf("resume left failures: %+v", s2.Failed)
	}
	if n := j2.DoneCount(); n != 2 {
		t.Fatalf("resume journaled %d done, want 2", n)
	}
}
