package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sched"
	"repro/internal/sim"
)

// CollabResult is one policy's outcome in the Fig. 11 collaborative
// scenario.
type CollabResult struct {
	Policy string
	Mode   config.VCMode
	// Speedup is concurrent vs sequential execution of QKV generation
	// and multi-head attention.
	Speedup float64
	// Ideal is the perfect-overlap bound: sequential time over the
	// longer kernel's standalone time.
	Ideal float64
	// QKVCycles/MHACycles/ConcurrentCycles are the raw times.
	QKVCycles, MHACycles, ConcurrentCycles uint64
	// Aborted marks starved runs.
	Aborted bool
}

// llmStandalone measures each LLM stage running alone (RunOnce), caching
// the result on the runner. Concurrent callers share one computation
// (single-flight via the cell's once).
func (r *Runner) llmStandalone() (uint64, uint64, error) {
	r.llm.once.Do(func() {
		r.llm.qkv, r.llm.mha, r.llm.err = r.computeLLMStandalone()
	})
	return r.llm.qkv, r.llm.mha, r.llm.err
}

func (r *Runner) computeLLMStandalone() (qkv, mha uint64, err error) {
	cfg := r.baseCfg(config.VC1)
	model := llm.GPT3Like()
	qkvDesc, mhaDesc := model.Scenario(cfg, r.Scale)

	runOne := func(desc sim.KernelDesc) (uint64, error) {
		sys, err := sim.New(cfg, core.Factory("fr-fcfs", cfg.Sched), []sim.KernelDesc{desc})
		if err != nil {
			return 0, err
		}
		sys.SetRunOnce(true)
		res, err := r.runSystem(context.Background(), cfg, sys, runID{What: "llm-standalone"})
		if err != nil {
			return 0, err
		}
		if !res.Kernels[0].Finished {
			return 0, fmt.Errorf("experiments: standalone LLM stage %s did not finish", res.Kernels[0].Label)
		}
		return res.Kernels[0].FirstFinish, nil
	}
	if qkv, err = runOne(qkvDesc); err != nil {
		return 0, 0, err
	}
	if mha, err = runOne(mhaDesc); err != nil {
		return 0, 0, err
	}
	return qkv, mha, nil
}

// Collaborative runs the Fig. 11 LLM scenario under one policy and VC
// mode. memCap/pimCap override the F3FS CAPs when policy == "f3fs" and
// both are positive (the paper uses 256/128 under VC1 and 64/64 under
// VC2); other policies ignore them.
func (r *Runner) Collaborative(policy string, mode config.VCMode, memCap, pimCap int) (CollabResult, error) {
	qkvAlone, mhaAlone, err := r.llmStandalone()
	if err != nil {
		return CollabResult{}, err
	}
	seq := qkvAlone + mhaAlone
	longer := qkvAlone
	if mhaAlone > longer {
		longer = mhaAlone
	}

	cfg := r.baseCfg(mode)
	if memCap > 0 && pimCap > 0 {
		cfg.Sched.F3FSMemCap = memCap
		cfg.Sched.F3FSPIMCap = pimCap
	}
	var factory sched.PolicyFactory
	if policy == "mode-cap-fr-fcfs" {
		factory = func() sched.Policy { return core.NewModeCapFRFCFS(cfg.Sched.F3FSMemCap) }
	} else {
		factory = core.Factory(policy, cfg.Sched)
	}
	if factory == nil {
		return CollabResult{}, fmt.Errorf("experiments: unknown policy %q", policy)
	}
	model := llm.GPT3Like()
	qkvDesc, mhaDesc := model.Scenario(cfg, r.Scale)
	sys, err := sim.New(cfg, factory, []sim.KernelDesc{qkvDesc, mhaDesc})
	if err != nil {
		return CollabResult{}, err
	}
	sys.SetRunOnce(true)
	res, err := r.runSystem(context.Background(), cfg, sys, runID{
		Policy: policy, Mode: mode.String(), What: "collaborative",
	})
	if err != nil {
		return CollabResult{}, err
	}
	conc := res.GPUCycles
	out := CollabResult{
		Policy: policy, Mode: mode,
		QKVCycles: qkvAlone, MHACycles: mhaAlone, ConcurrentCycles: conc,
		Ideal:   float64(seq) / float64(longer),
		Aborted: res.Aborted,
	}
	if res.Aborted {
		// A starved stage never finished; use the extrapolated finish
		// of the slower kernel when available.
		worst := uint64(0)
		for _, k := range res.Kernels {
			if k.EstFinish == 0 {
				worst = 0
				break
			}
			if k.EstFinish > worst {
				worst = k.EstFinish
			}
		}
		conc = worst
		out.ConcurrentCycles = conc
	}
	if conc > 0 {
		out.Speedup = float64(seq) / float64(conc)
	}
	return out, nil
}

// CollaborativeSweep runs Fig. 11 across policies and modes, applying
// F3FS CAPs tuned by this repository's own sensitivity study (512/512
// under VC1, 512/256 under VC2 — run `pimsweep -fig cap` to reproduce).
// The paper's absolute values (256/128 and 64/64) came from a sensitivity
// study on its GPGPU-Sim substrate; the tuning *principles* transfer
// (throughput favors high CAPs, and capping PIM below MEM favors the
// slower MEM-side kernel), the saturation points do not. See
// EXPERIMENTS.md.
func (r *Runner) CollaborativeSweep(policies []string, modes []config.VCMode) ([]CollabResult, error) {
	var out []CollabResult
	for _, mode := range modes {
		for _, policy := range policies {
			memCap, pimCap := 0, 0
			if policy == "f3fs" {
				if mode == config.VC1 {
					memCap, pimCap = 512, 512
				} else {
					memCap, pimCap = 512, 256
				}
			}
			res, err := r.Collaborative(policy, mode, memCap, pimCap)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// CollabTable renders Fig. 11's results.
func CollabTable(results []CollabResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-4s %8s %8s\n", "policy", "vc", "speedup", "ideal")
	for _, res := range results {
		fmt.Fprintf(&b, "%-18s %-4s %8.3f %8.3f\n", res.Policy, res.Mode, res.Speedup, res.Ideal)
	}
	return b.String()
}
