// Package experiments contains one harness per table/figure of the
// paper's evaluation (the per-experiment index in DESIGN.md maps each
// harness to its figure). Every harness runs real simulations through
// internal/sim and reduces them to the quantities the paper plots:
// fairness index and system throughput (Fig. 8, 13), normalized MEM
// arrival rates (Fig. 6), mode-switch counts and overheads (Fig. 10),
// LLM speedups (Fig. 11), the F3FS component ablation (Fig. 14a) and the
// interconnect queue sensitivity (Fig. 14b).
package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Runner executes simulations at a fixed configuration and scale, caching
// the standalone baselines that speedups are normalized against
// (Sec. III-C: execution time alone on all SMs for GPU kernels and on the
// PIM SMs for PIM kernels).
type Runner struct {
	// Cfg is the base configuration; harnesses override the VC mode and
	// scheduler knobs per run.
	Cfg config.Config
	// Scale shrinks every kernel uniformly (1.0 = profile defaults).
	Scale float64
	// Parallel bounds concurrent simulations (defaults to 1; sweeps in
	// cmd/pimsweep raise it).
	Parallel int
	// TelemetryDir, when non-empty and telemetry collection is enabled
	// (telemetry.Enable), makes every Competitive run write its JSONL
	// capture (manifest + metrics + time series) to one file per pair in
	// that directory.
	TelemetryDir string
	// RunTimeout bounds each simulation's wall time (0 = unbounded); a
	// run that exceeds it comes back as a *RunError of kind "timeout"
	// instead of hanging the sweep.
	RunTimeout time.Duration
	// Journal, when non-nil, checkpoints every finished or failed
	// competitive pair so an interrupted campaign resumes where it left
	// off: CompetitiveCtx returns journaled "done" pairs without
	// re-simulating.
	Journal *Journal
	// Observe, when non-nil, receives every System the runner builds,
	// immediately before it runs, labeled with the run's role
	// ("competitive", "standalone-gpu", "standalone-pim", ...). pimserve
	// uses it to attach per-job telemetry for progress streaming. The
	// callback must not retain sys past the run and must be safe for
	// concurrent calls when Parallel > 1.
	Observe func(what string, sys *sim.System)

	// Standalone baselines are cached in single-flight cells: the first
	// caller for a key computes inside the cell's once while later
	// callers block on it, so Parallel > 1 sweeps never compute the same
	// baseline twice (the mutex only guards the cell maps).
	mu       sync.Mutex
	aloneGPU map[gpuKey]*standaloneCell
	alonePIM map[string]*standaloneCell
	llm      llmCell
}

type gpuKey struct {
	id  string
	sms int
}

type standaloneCell struct {
	once sync.Once
	s    Standalone
	err  error
}

type llmCell struct {
	once     sync.Once
	qkv, mha uint64
	err      error
}

// Standalone summarizes a kernel running alone.
type Standalone struct {
	// Cycles is the first-run completion time in GPU cycles.
	Cycles uint64
	// NoCRate and MCRate are arrival rates in requests per kilo-GPU-
	// cycle (Fig. 4a/4b).
	NoCRate, MCRate float64
	// BLP and RBHR are the DRAM utilization characteristics (Fig. 4c/4d).
	BLP, RBHR float64
}

// NewRunner builds a runner. scale <= 0 defaults to 1.
func NewRunner(cfg config.Config, scale float64) *Runner {
	if scale <= 0 {
		scale = 1
	}
	return &Runner{
		Cfg:      cfg,
		Scale:    scale,
		Parallel: 1,
		aloneGPU: make(map[gpuKey]*standaloneCell),
		alonePIM: make(map[string]*standaloneCell),
	}
}

func (r *Runner) baseCfg(mode config.VCMode) config.Config {
	cfg := r.Cfg
	cfg.NoC.Mode = mode
	return cfg
}

func standaloneFrom(res *sim.Result, app int, pim bool) Standalone {
	tc := res.Stats.TotalChannel()
	s := Standalone{
		Cycles:  res.Kernels[app].FirstFinish,
		NoCRate: res.Stats.NoCArrivalRate(app),
		MCRate:  res.Stats.MCArrivalRate(app),
		BLP:     tc.BLP(),
		RBHR:    tc.RBHR(),
	}
	if pim {
		total := tc.PIMRowHits + tc.PIMRowMisses
		if total > 0 {
			s.RBHR = float64(tc.PIMRowHits) / float64(total)
		}
	}
	return s
}

// gpuCell returns (creating on first use) the single-flight cell for GPU
// kernel id on n SMs.
func (r *Runner) gpuCell(id string, n int) *standaloneCell {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aloneGPU == nil {
		r.aloneGPU = make(map[gpuKey]*standaloneCell)
	}
	k := gpuKey{id: id, sms: n}
	c := r.aloneGPU[k]
	if c == nil {
		c = &standaloneCell{}
		r.aloneGPU[k] = c
	}
	return c
}

func (r *Runner) pimCell(id string) *standaloneCell {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.alonePIM == nil {
		r.alonePIM = make(map[string]*standaloneCell)
	}
	c := r.alonePIM[id]
	if c == nil {
		c = &standaloneCell{}
		r.alonePIM[id] = c
	}
	return c
}

// dropGPUCell forgets a single-flight baseline cell (if the map still
// holds that exact cell), so a computation that died on a context
// cancellation or deadline does not poison the cache for later callers.
func (r *Runner) dropGPUCell(id string, n int, c *standaloneCell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := gpuKey{id: id, sms: n}
	if r.aloneGPU[k] == c {
		delete(r.aloneGPU, k)
	}
}

func (r *Runner) dropPIMCell(id string, c *standaloneCell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.alonePIM[id] == c {
		delete(r.alonePIM, id)
	}
}

// ctxErrLike reports whether err stems from a cancellation or deadline
// (directly or through a RunError/ErrInterrupted chain).
func ctxErrLike(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// StandaloneGPU runs (and caches) GPU kernel id alone on every SM.
func (r *Runner) StandaloneGPU(id string) (Standalone, error) {
	return r.StandaloneGPUOn(id, r.Cfg.GPU.NumSMs)
}

// StandaloneGPUCtx is StandaloneGPU bounded by ctx; a run interrupted by
// the context surfaces the cancellation and is retried by later callers
// instead of staying cached as a failure.
func (r *Runner) StandaloneGPUCtx(ctx context.Context, id string) (Standalone, error) {
	return r.standaloneGPUOnCtx(ctx, id, r.Cfg.GPU.NumSMs)
}

// StandaloneGPUOn runs (and caches) GPU kernel id alone on n SMs (the
// GPU-8 and 72-SM configurations of Figs. 4 and 5). Concurrent callers
// for the same (id, n) share one computation.
func (r *Runner) StandaloneGPUOn(id string, n int) (Standalone, error) {
	return r.standaloneGPUOnCtx(context.Background(), id, n)
}

func (r *Runner) standaloneGPUOnCtx(ctx context.Context, id string, n int) (Standalone, error) {
	c := r.gpuCell(id, n)
	c.once.Do(func() {
		c.s, c.err = r.computeStandaloneGPU(ctx, id, n)
	})
	if c.err != nil && ctxErrLike(c.err) {
		r.dropGPUCell(id, n, c)
	}
	return c.s, c.err
}

func (r *Runner) computeStandaloneGPU(ctx context.Context, id string, n int) (Standalone, error) {
	prof, err := workload.GPUProfileByID(id)
	if err != nil {
		return Standalone{}, err
	}
	cfg := r.baseCfg(config.VC1)
	sys, err := sim.New(cfg, core.Factory("fr-fcfs", cfg.Sched), []sim.KernelDesc{
		{GPU: &prof, SMs: sim.SomeSMs(cfg, n), Scale: r.Scale},
	})
	if err != nil {
		return Standalone{}, err
	}
	res, err := r.runSystem(ctx, cfg, sys, runID{GPUID: id, What: "standalone-gpu"})
	if err != nil {
		return Standalone{}, err
	}
	if !res.Kernels[0].Finished {
		return Standalone{}, fmt.Errorf("experiments: standalone %s on %d SMs did not finish", id, n)
	}
	return standaloneFrom(res, 0, false), nil
}

// StandalonePIM runs (and caches) PIM kernel id alone on the PIM SMs.
// Concurrent callers for the same id share one computation.
func (r *Runner) StandalonePIM(id string) (Standalone, error) {
	return r.StandalonePIMCtx(context.Background(), id)
}

// StandalonePIMCtx is StandalonePIM bounded by ctx; a run interrupted by
// the context surfaces the cancellation and is retried by later callers.
func (r *Runner) StandalonePIMCtx(ctx context.Context, id string) (Standalone, error) {
	c := r.pimCell(id)
	c.once.Do(func() {
		c.s, c.err = r.computeStandalonePIM(ctx, id)
	})
	if c.err != nil && ctxErrLike(c.err) {
		r.dropPIMCell(id, c)
	}
	return c.s, c.err
}

func (r *Runner) computeStandalonePIM(ctx context.Context, id string) (Standalone, error) {
	prof, err := workload.PIMProfileByID(id)
	if err != nil {
		return Standalone{}, err
	}
	cfg := r.baseCfg(config.VC1)
	_, pimSMs := sim.GPUAndPIMSMs(cfg)
	sys, err := sim.New(cfg, core.Factory("fr-fcfs", cfg.Sched), []sim.KernelDesc{
		{PIM: &prof, SMs: pimSMs, Scale: r.Scale, Base: 1 << 30},
	})
	if err != nil {
		return Standalone{}, err
	}
	res, err := r.runSystem(ctx, cfg, sys, runID{PIMID: id, What: "standalone-pim"})
	if err != nil {
		return Standalone{}, err
	}
	if !res.Kernels[0].Finished {
		return Standalone{}, fmt.Errorf("experiments: standalone %s did not finish", id)
	}
	return standaloneFrom(res, 0, true), nil
}

// Pair is the outcome of one competitive co-execution.
type Pair struct {
	GPUID, PIMID string
	Policy       string
	Mode         config.VCMode

	// GPUSpeedup and PIMSpeedup follow Sec. III-C (alone / contended;
	// partial progress is linearly extrapolated, total starvation is 0).
	GPUSpeedup, PIMSpeedup float64
	// Fairness is Eq. 1; Throughput the speedup sum.
	Fairness, Throughput float64

	// MemArrivalNorm is the GPU kernel's MC arrival rate under
	// contention normalized to standalone (Fig. 6).
	MemArrivalNorm float64

	// Switches, ConflictsPerSwitch and DrainPerSwitch are the Fig. 10
	// overheads (totals across channels; drain in DRAM cycles).
	Switches           uint64
	ConflictsPerSwitch float64
	DrainPerSwitch     float64

	// AvgMemQ and AvgPIMQ are the average controller queue occupancies
	// per channel (the Fig. 7 congestion signal).
	AvgMemQ, AvgPIMQ float64

	// Aborted marks runs that starved before both kernels finished.
	Aborted bool

	// Manifest identifies the underlying contended run (always set).
	Manifest *telemetry.Manifest
	// Telemetry carries the run's metrics registry and sample ring when
	// telemetry collection was enabled (nil otherwise). It is stripped
	// before journaling.
	Telemetry *telemetry.Collector `json:"-"`
	// Faults counts the injected fault events of the contended run (nil
	// when no fault schedule was active).
	Faults *faults.Counts
}

func speedup(alone uint64, contended uint64) float64 {
	if contended == 0 {
		return 0
	}
	return float64(alone) / float64(contended)
}

// Competitive runs GPU kernel gpuID against PIM kernel pimID under the
// given policy and interconnect mode, returning the paper's metrics.
func (r *Runner) Competitive(gpuID, pimID, policy string, mode config.VCMode) (Pair, error) {
	return r.CompetitiveCtx(context.Background(), gpuID, pimID, policy, mode)
}

// CompetitiveCtx is Competitive under a campaign context: the contended
// run is cancelled with the context (and bounded by RunTimeout), panics
// and deadline expiries surface as a *RunError (journaled as "failed"
// when a Journal is attached), and combinations the Journal already
// records as "done" return their checkpointed Pair without simulating.
func (r *Runner) CompetitiveCtx(ctx context.Context, gpuID, pimID, policy string, mode config.VCMode) (Pair, error) {
	key := PairKey(gpuID, pimID, policy, mode)
	if p, ok := r.Journal.LookupDone(key); ok {
		return p, nil
	}
	if err := ctx.Err(); err != nil {
		return Pair{}, err
	}
	gAlone, err := r.StandaloneGPUCtx(ctx, gpuID)
	if err != nil {
		return Pair{}, err
	}
	pAlone, err := r.StandalonePIMCtx(ctx, pimID)
	if err != nil {
		return Pair{}, err
	}
	gProf, err := workload.GPUProfileByID(gpuID)
	if err != nil {
		return Pair{}, err
	}
	pProf, err := workload.PIMProfileByID(pimID)
	if err != nil {
		return Pair{}, err
	}
	cfg := r.baseCfg(mode)
	factory := core.Factory(policy, cfg.Sched)
	if factory == nil {
		return Pair{}, fmt.Errorf("experiments: unknown policy %q", policy)
	}
	gpuSMs, pimSMs := sim.GPUAndPIMSMs(cfg)
	sys, err := sim.New(cfg, factory, []sim.KernelDesc{
		{GPU: &gProf, SMs: gpuSMs, Scale: r.Scale},
		{PIM: &pProf, SMs: pimSMs, Scale: r.Scale, Base: 1 << 30},
	})
	if err != nil {
		return Pair{}, err
	}
	res, err := r.runSystem(ctx, cfg, sys, runID{
		GPUID: gpuID, PIMID: pimID, Policy: policy, Mode: mode.String(), What: "competitive",
	})
	if err != nil {
		var re *RunError
		if errors.As(err, &re) && re.Kind != "canceled" {
			// Journal the structured failure (cancellations are campaign
			// shutdowns, not run outcomes; resume simply re-runs them).
			if jerr := r.Journal.RecordFailed(key, re); jerr != nil {
				return Pair{}, jerr
			}
		}
		return Pair{}, err
	}
	tc := res.Stats.TotalChannel()
	p := Pair{
		GPUID: gpuID, PIMID: pimID, Policy: policy, Mode: mode,
		GPUSpeedup:         speedup(gAlone.Cycles, res.Kernels[0].EstFinish),
		PIMSpeedup:         speedup(pAlone.Cycles, res.Kernels[1].EstFinish),
		Switches:           tc.Switches,
		ConflictsPerSwitch: tc.ConflictsPerSwitch(),
		DrainPerSwitch:     tc.DrainPerSwitch(),
		// Summing occupancy and samples across channels yields the
		// per-channel per-cycle average directly.
		AvgMemQ: tc.AvgMemQ(),
		AvgPIMQ: tc.AvgPIMQ(),
		Aborted: res.Aborted,
	}
	p.Fairness = stats.FairnessIndex(p.GPUSpeedup, p.PIMSpeedup)
	p.Throughput = stats.SystemThroughput(p.GPUSpeedup, p.PIMSpeedup)
	if gAlone.MCRate > 0 {
		p.MemArrivalNorm = res.Stats.MCArrivalRate(0) / gAlone.MCRate
	}
	if res.Manifest != nil {
		res.Manifest.Policy = policy
		res.Manifest.VCMode = mode.String()
		res.Manifest.Scale = r.Scale
	}
	p.Manifest = res.Manifest
	p.Telemetry = res.Telemetry
	p.Faults = res.Faults
	if r.TelemetryDir != "" && res.Telemetry != nil {
		if err := r.writePairTelemetry(&p); err != nil {
			return Pair{}, err
		}
	}
	if err := r.Journal.RecordDone(key, p); err != nil {
		return Pair{}, err
	}
	return p, nil
}

// writePairTelemetry dumps one pair's JSONL capture into TelemetryDir,
// atomically (temp file + rename) so a killed campaign never leaves a
// truncated capture.
func (r *Runner) writePairTelemetry(p *Pair) error {
	if err := os.MkdirAll(r.TelemetryDir, 0o755); err != nil {
		return fmt.Errorf("experiments: telemetry dir: %w", err)
	}
	name := fmt.Sprintf("%s_%s_%s_%s.jsonl", p.GPUID, p.PIMID, p.Policy, p.Mode)
	var buf bytes.Buffer
	//pimlint:nondet — the manifest is provenance (wall time, host, git revision) written beside the capture; it is excluded from result digests and never feeds figure series
	if err := telemetry.WriteJSONL(&buf, p.Manifest, p.Telemetry.Registry, p.Telemetry.Sampler.Snapshots()); err != nil {
		return fmt.Errorf("experiments: write telemetry: %w", err)
	}
	if err := telemetry.WriteFileAtomic(filepath.Join(r.TelemetryDir, name), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("experiments: telemetry file: %w", err)
	}
	return nil
}

// DefaultGPUKernels and DefaultPIMKernels are the quick-sweep subsets
// used by tests and benchmarks; cmd/pimsweep -full runs all 20 x 9.
var (
	DefaultGPUKernels = []string{"G4", "G8", "G17"}
	DefaultPIMKernels = []string{"P1", "P2"}
)

// AllGPUKernels returns G1..G20.
func AllGPUKernels() []string {
	ids := make([]string, 0, 20)
	for _, p := range workload.GPUProfiles() {
		ids = append(ids, p.ID)
	}
	return ids
}

// AllPIMKernels returns P1..P9.
func AllPIMKernels() []string {
	ids := make([]string, 0, 9)
	for _, p := range workload.PIMProfiles() {
		ids = append(ids, p.ID)
	}
	return ids
}

// forEachPair runs fn over the cross product, optionally in parallel, and
// collects results in deterministic order.
func (r *Runner) forEachPair(gpuIDs, pimIDs []string, fn func(g, p string) error) error {
	return r.forEachPairCtx(context.Background(), gpuIDs, pimIDs, fn)
}

// forEachPairCtx is forEachPair under a cancellable context: once ctx is
// done no new job starts (in-flight jobs observe ctx through their own
// simulation loops) and the context's error is reported.
func (r *Runner) forEachPairCtx(ctx context.Context, gpuIDs, pimIDs []string, fn func(g, p string) error) error {
	workers := r.Parallel
	if workers < 1 {
		workers = 1
	}
	type job struct{ g, p string }
	jobs := make([]job, 0, len(gpuIDs)*len(pimIDs))
	for _, g := range gpuIDs {
		for _, p := range pimIDs {
			jobs = append(jobs, job{g, p})
		}
	}
	if workers == 1 {
		for _, j := range jobs {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(j.g, j.p); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Errors are collected under a mutex rather than a results channel:
	// every worker send stays non-blocking no matter when the consumer
	// runs, and a real run error is preferred over the cancellations it
	// may have caused.
	var (
		mu     sync.Mutex
		runErr error // first non-cancellation error
		ctxErr error // first cancellation
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			return
		}
		if runErr == nil {
			runErr = err
		}
	}
	jobc := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobc {
				if err := ctx.Err(); err != nil {
					record(err)
					continue
				}
				record(fn(j.g, j.p))
			}
		}()
	}
dispatch:
	for _, j := range jobs {
		select {
		case jobc <- j:
		case <-ctx.Done():
			record(ctx.Err())
			break dispatch
		}
	}
	close(jobc)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if runErr != nil {
		return runErr
	}
	return ctxErr
}
