package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// EnergyPoint is one policy's energy outcome on a fixed workload pair —
// a library extension (the paper evaluates performance only): because
// the work done is identical across policies, differences isolate the
// scheduling policy's energy cost (extra activates from lost locality,
// extra broadcast row swaps from frequent switching).
type EnergyPoint struct {
	Policy string
	// TotalUJ is the total energy in microjoules; PerRequestNJ the
	// average nanojoules per serviced request.
	TotalUJ      float64
	PerRequestNJ float64
	// RowMisses and PIMRowMisses drive the activate energy.
	RowMisses, PIMRowMisses uint64
	Breakdown               energy.Breakdown
}

// EnergySweep co-runs one GPU/PIM pair under each policy and estimates
// the DRAM+PIM energy of each run with the given model.
func (r *Runner) EnergySweep(gpuID, pimID string, policies []string, mode config.VCMode, m energy.Model) ([]EnergyPoint, error) {
	gProf, err := workload.GPUProfileByID(gpuID)
	if err != nil {
		return nil, err
	}
	pProf, err := workload.PIMProfileByID(pimID)
	if err != nil {
		return nil, err
	}
	var out []EnergyPoint
	for _, policy := range policies {
		cfg := r.baseCfg(mode)
		factory := core.Factory(policy, cfg.Sched)
		if factory == nil {
			return nil, fmt.Errorf("experiments: unknown policy %q", policy)
		}
		gpuSMs, pimSMs := sim.GPUAndPIMSMs(cfg)
		sys, err := sim.New(cfg, factory, []sim.KernelDesc{
			{GPU: &gProf, SMs: gpuSMs, Scale: r.Scale},
			{PIM: &pProf, SMs: pimSMs, Scale: r.Scale, Base: 1 << 30},
		})
		if err != nil {
			return nil, err
		}
		res, err := sys.Run()
		if err != nil {
			return nil, err
		}
		b := m.Estimate(res.Stats, cfg.Memory.Banks, cfg.Memory.Channels, cfg.Memory.ClockMHz)
		tc := res.Stats.TotalChannel()
		out = append(out, EnergyPoint{
			Policy:       policy,
			TotalUJ:      b.Total() / 1000,
			PerRequestNJ: m.PerRequestNJ(res.Stats, cfg.Memory.Banks, cfg.Memory.Channels, cfg.Memory.ClockMHz),
			RowMisses:    tc.RowMisses,
			PIMRowMisses: tc.PIMRowMisses,
			Breakdown:    b,
		})
	}
	return out, nil
}

// EnergyTable renders the energy comparison.
func EnergyTable(points []EnergyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s\n", "policy", "total-uJ", "nJ/req", "mem-miss", "pim-miss")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %10.1f %10.2f %10d %10d\n",
			p.Policy, p.TotalUJ, p.PerRequestNJ, p.RowMisses, p.PIMRowMisses)
	}
	return b.String()
}
