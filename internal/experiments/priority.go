package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
)

// PriorityPoint is one point of the process-priority study: the Sec. VII
// future-work direction where system software encodes competitive process
// priorities as asymmetric F3FS CAPs.
type PriorityPoint struct {
	MemPriority, PIMPriority int
	MemCap, PIMCap           int
	GPUSpeedup, PIMSpeedup   float64
	Fairness, Throughput     float64
}

// PrioritySweep runs one GPU/PIM pair under F3FS with CAPs derived from
// each priority ratio (core.CapsForPriorities over the given budget),
// averaged across the supplied kernel pairs.
func (r *Runner) PrioritySweep(gpuIDs, pimIDs []string, ratios [][2]int, budget int, mode config.VCMode) ([]PriorityPoint, error) {
	rf := r.Cfg.PIM.RFPerBank()
	var out []PriorityPoint
	for _, ratio := range ratios {
		memCap, pimCap := core.CapsForPriorities(ratio[0], ratio[1], budget, rf)
		factory := func() sched.Policy { return core.NewF3FS(memCap, pimCap) }
		var gs, ps, fis, sts []float64
		for _, g := range gpuIDs {
			for _, p := range pimIDs {
				pair, err := r.competitiveWithFactory(g, p, factory, mode)
				if err != nil {
					return nil, err
				}
				gs = append(gs, pair.GPUSpeedup)
				ps = append(ps, pair.PIMSpeedup)
				fis = append(fis, pair.Fairness)
				sts = append(sts, pair.Throughput)
			}
		}
		out = append(out, PriorityPoint{
			MemPriority: ratio[0], PIMPriority: ratio[1],
			MemCap: memCap, PIMCap: pimCap,
			GPUSpeedup: stats.Mean(gs), PIMSpeedup: stats.Mean(ps),
			Fairness: stats.Mean(fis), Throughput: stats.Mean(sts),
		})
	}
	return out, nil
}

// PriorityTable renders the priority study.
func PriorityTable(points []PriorityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %9s %9s %8s %8s\n", "mem:pim", "caps", "gpu-spd", "pim-spd", "FI", "ST")
	for _, p := range points {
		fmt.Fprintf(&b, "%4d:%-5d %5d/%-6d %9.3f %9.3f %8.3f %8.3f\n",
			p.MemPriority, p.PIMPriority, p.MemCap, p.PIMCap,
			p.GPUSpeedup, p.PIMSpeedup, p.Fairness, p.Throughput)
	}
	return b.String()
}
