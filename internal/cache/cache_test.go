package cache

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/request"
)

var cid uint64

func rd(addr uint64) *request.Request {
	cid++
	return &request.Request{ID: cid, Kind: request.MemRead, Addr: addr}
}

func wr(addr uint64) *request.Request {
	cid++
	return &request.Request{ID: cid, Kind: request.MemWrite, Addr: addr}
}

func newSlice() *Slice {
	cfg := config.Paper().Cache
	return NewSlice(cfg, 192<<10) // one paper slice: 6 MB / 32 channels
}

func TestColdMissThenHit(t *testing.T) {
	s := newSlice()
	r := rd(0x1000)
	res, fw := s.Access(r, 10)
	if res != Miss {
		t.Fatalf("cold access = %v, want miss", res)
	}
	if len(fw) != 1 || fw[0] != r {
		t.Fatalf("forwards = %v", fw)
	}
	if got := s.Fill(r); len(got) != 1 || got[0] != r {
		t.Fatalf("fill completed %v", got)
	}
	if res, _ := s.Access(rd(0x1000), 10); res != Hit {
		t.Errorf("second access = %v, want hit", res)
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("hits=%d misses=%d", s.Hits, s.Misses)
	}
}

func TestMSHRMerging(t *testing.T) {
	s := newSlice()
	a, b, c := rd(0x2000), rd(0x2000), rd(0x2008) // same 32 B line
	if res, _ := s.Access(a, 10); res != Miss {
		t.Fatal("first access should miss")
	}
	if res, _ := s.Access(b, 10); res != Merged {
		t.Error("same-line access did not merge")
	}
	if res, _ := s.Access(c, 10); res != Merged {
		t.Error("same-line different-offset access did not merge")
	}
	done := s.Fill(a)
	if len(done) != 3 {
		t.Fatalf("fill released %d, want 3", len(done))
	}
	if s.MSHRsInUse() != 0 {
		t.Error("MSHR leaked")
	}
}

func TestMSHRCapacityBlocks(t *testing.T) {
	cfg := config.Paper().Cache
	cfg.MSHRs = 2
	s := NewSlice(cfg, 192<<10)
	s.Access(rd(0x0), 10)
	s.Access(rd(0x10000), 10)
	if res, _ := s.Access(rd(0x20000), 10); res != Blocked {
		t.Errorf("access with full MSHRs = %v, want blocked", res)
	}
}

func TestDownstreamSpaceBlocks(t *testing.T) {
	s := newSlice()
	if res, _ := s.Access(rd(0x0), 0); res != Blocked {
		t.Errorf("miss with no downstream space = %v, want blocked", res)
	}
	// Still serviceable later.
	if res, _ := s.Access(rd(0x0), 1); res != Miss {
		t.Error("retry after space freed did not miss-allocate")
	}
}

func TestWriteAllocateAndDirtyWriteback(t *testing.T) {
	s := newSlice()
	w := wr(0x3000)
	res, fw := s.Access(w, 10)
	if res != Miss || len(fw) != 1 {
		t.Fatalf("store miss: res=%v forwards=%d", res, len(fw))
	}
	s.Fill(w)
	// Evict the dirty line by filling the set: same set = same index
	// bits. Set count is 384; stride by lineBytes*sets to stay in set.
	setStride := uint64(32 * s.Sets())
	evictions := 0
	for i := 1; i <= 16; i++ {
		r := rd(0x3000 + uint64(i)*setStride)
		res, fw := s.Access(r, 10)
		if res != Miss {
			t.Fatalf("fill-set access %d = %v", i, res)
		}
		for _, f := range fw {
			if f.Synthetic {
				evictions++
				if f.Kind != request.MemWrite {
					t.Error("writeback is not a write")
				}
				if f.Addr != 0x3000 {
					t.Errorf("writeback addr %#x, want 0x3000", f.Addr)
				}
			}
		}
		s.Fill(r)
	}
	if evictions != 1 {
		t.Errorf("dirty evictions = %d, want exactly 1", evictions)
	}
	if s.Writebacks != 1 {
		t.Errorf("writeback counter = %d", s.Writebacks)
	}
}

func TestWritebackNeedsTwoDownstreamSlots(t *testing.T) {
	s := newSlice()
	w := wr(0x4000)
	s.Access(w, 10)
	s.Fill(w)
	setStride := uint64(32 * s.Sets())
	// Fill the set so the dirty line is the LRU victim.
	for i := 1; i < 16; i++ {
		r := rd(0x4000 + uint64(i)*setStride)
		s.Access(r, 10)
		s.Fill(r)
	}
	// Touch the dirty line is NOT needed; next miss evicts LRU = 0x4000.
	victim := rd(0x4000 + 16*setStride)
	if res, _ := s.Access(victim, 1); res != Blocked {
		t.Error("miss with dirty eviction accepted with 1 downstream slot")
	}
	if res, fw := s.Access(victim, 2); res != Miss || len(fw) != 2 {
		t.Errorf("miss with dirty eviction: res=%v forwards=%d, want miss/2", res, len(fw))
	}
}

func TestLRUReplacement(t *testing.T) {
	s := newSlice()
	setStride := uint64(32 * s.Sets())
	// Fill a set with 16 lines; touch line 0 again; allocate a 17th:
	// the victim must not be line 0.
	var lines []*request.Request
	for i := 0; i < 16; i++ {
		r := rd(uint64(i) * setStride)
		s.Access(r, 10)
		s.Fill(r)
		lines = append(lines, r)
	}
	if res, _ := s.Access(rd(0), 10); res != Hit {
		t.Fatal("line 0 should hit")
	}
	n := rd(16 * setStride)
	s.Access(n, 10)
	s.Fill(n)
	if res, _ := s.Access(rd(0), 10); res != Hit {
		t.Error("LRU evicted the most-recently-used line")
	}
	if res, _ := s.Access(rd(1*setStride), 10); res != Miss {
		t.Error("LRU kept the least-recently-used line")
	}
}

func TestPIMRequestPanics(t *testing.T) {
	s := newSlice()
	defer func() {
		if recover() == nil {
			t.Error("PIM request accepted by the L2 (must bypass)")
		}
	}()
	cid++
	s.Access(&request.Request{ID: cid, Kind: request.PIMOp}, 10)
}

func TestFillUnknownPanics(t *testing.T) {
	s := newSlice()
	defer func() {
		if recover() == nil {
			t.Error("fill for unknown fetch accepted")
		}
	}()
	s.Fill(rd(0x5000))
}

// TestRandomizedCoherence drives the slice with a random mix and checks
// the accounting invariants: every miss eventually fills, MSHRs drain,
// hits+misses+merged = accesses.
func TestRandomizedCoherence(t *testing.T) {
	s := newSlice()
	rng := rand.New(rand.NewSource(11))
	outstanding := map[*request.Request]bool{}
	var accesses, hits, misses, merged uint64
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1<<22)) &^ 31
		var r *request.Request
		if rng.Intn(4) == 0 {
			r = wr(addr)
		} else {
			r = rd(addr)
		}
		res, fw := s.Access(r, 1000)
		accesses++
		switch res {
		case Hit:
			hits++
		case Miss:
			misses++
			outstanding[fw[0]] = true
		case Merged:
			merged++
		case Blocked:
			accesses--
		}
		// Randomly fill an outstanding fetch.
		if len(outstanding) > 0 && rng.Intn(3) == 0 {
			for p := range outstanding {
				s.Fill(p)
				delete(outstanding, p)
				break
			}
		}
	}
	for p := range outstanding {
		s.Fill(p)
		delete(outstanding, p)
	}
	if s.MSHRsInUse() != 0 {
		t.Errorf("MSHRs leaked: %d", s.MSHRsInUse())
	}
	if s.Hits != hits || s.Misses != misses || s.MergedCount != merged {
		t.Errorf("counter mismatch: %d/%d/%d vs %d/%d/%d",
			s.Hits, s.Misses, s.MergedCount, hits, misses, merged)
	}
	if hits+misses+merged != accesses {
		t.Errorf("accesses %d != hits %d + misses %d + merged %d", accesses, hits, misses, merged)
	}
}
