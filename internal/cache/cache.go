// Package cache implements the per-channel L2 slice. MEM requests are
// filtered by the slice (hits complete locally; misses are fetched from
// DRAM through MSHRs with same-line merging); PIM requests never enter the
// cache — they are cache-streaming stores that bypass all caches and are
// forwarded straight to the memory controller (Sec. III-A).
//
// The slice is set-associative with LRU replacement and write-back,
// write-allocate semantics: dirty victims generate writeback requests that
// add to the channel's DRAM write traffic.
package cache

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/request"
)

// AccessResult classifies the outcome of presenting a request to the
// slice.
type AccessResult int

const (
	// Hit means the line was present; the request completes after the
	// hit latency with no DRAM traffic.
	Hit AccessResult = iota
	// Miss means the request was forwarded to DRAM (and possibly a
	// dirty victim writeback alongside it).
	Miss
	// Merged means the line is already being fetched; the request
	// piggybacks on the existing MSHR and completes at fill time.
	Merged
	// Blocked means the slice cannot take the request this cycle (MSHRs
	// exhausted, the set fully pending, or insufficient downstream
	// queue space); the caller must retry later. Blocked intake is the
	// backpressure that propagates into the interconnect.
	Blocked
)

// String names the result.
func (r AccessResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Merged:
		return "merged"
	case Blocked:
		return "blocked"
	}
	return fmt.Sprintf("AccessResult(%d)", int(r))
}

type line struct {
	tag      uint64
	valid    bool // filled and usable
	pending  bool // allocated, fetch in flight
	dirty    bool
	lastUsed uint64
}

type mshr struct {
	lineAddr uint64
	primary  *request.Request
	merged   []*request.Request
	dirty    bool // a merged store will mark the line dirty at fill
}

// Slice is one channel's L2 slice.
type Slice struct {
	cfg      config.Cache
	sets     int
	ways     int
	lineMask uint64
	lines    [][]line
	mshrs    map[uint64]*mshr
	mshrCap  int
	useClock uint64

	// Hits, Misses, MergedCount and Writebacks are aggregate counters.
	Hits, Misses, MergedCount, Writebacks uint64
}

// NewSlice builds a slice of sliceBytes capacity.
func NewSlice(cfg config.Cache, sliceBytes int) *Slice {
	ways := cfg.Ways
	setBytes := cfg.LineBytes * ways
	sets := sliceBytes / setBytes
	if sets < 1 {
		sets = 1
	}
	s := &Slice{
		cfg:      cfg,
		sets:     sets,
		ways:     ways,
		lineMask: ^uint64(cfg.LineBytes - 1),
		lines:    make([][]line, sets),
		mshrs:    make(map[uint64]*mshr, cfg.MSHRs),
		mshrCap:  cfg.MSHRs,
	}
	for i := range s.lines {
		s.lines[i] = make([]line, ways)
	}
	return s
}

// Sets returns the number of sets in the slice.
func (s *Slice) Sets() int { return s.sets }

// MSHRsInUse returns the number of outstanding fetches.
func (s *Slice) MSHRsInUse() int { return len(s.mshrs) }

func (s *Slice) lineAddr(addr uint64) uint64 { return addr & s.lineMask }

func (s *Slice) setOf(lineAddr uint64) int {
	return int((lineAddr / uint64(s.cfg.LineBytes)) % uint64(s.sets))
}

func (s *Slice) find(lineAddr uint64) *line {
	set := s.lines[s.setOf(lineAddr)]
	for i := range set {
		if set[i].tag == lineAddr && (set[i].valid || set[i].pending) {
			return &set[i]
		}
	}
	return nil
}

// Access presents a MEM request to the slice. downstreamSpace is the free
// capacity of the L2->DRAM queue's MEM virtual channel; a miss needs one
// slot for the fetch and, when it evicts a dirty victim, a second for the
// writeback. On Miss, forwards holds the requests to push downstream (the
// original request first, then an optional synthetic writeback).
func (s *Slice) Access(r *request.Request, downstreamSpace int) (res AccessResult, forwards []*request.Request) {
	if r.Kind == request.PIMOp {
		panic("cache: PIM request presented to L2 slice")
	}
	la := s.lineAddr(r.Addr)
	s.useClock++

	if ln := s.find(la); ln != nil {
		if ln.valid {
			ln.lastUsed = s.useClock
			if r.Kind == request.MemWrite {
				ln.dirty = true
			}
			s.Hits++
			return Hit, nil
		}
		// Pending: merge into the MSHR.
		m := s.mshrs[la]
		if m == nil {
			panic("cache: pending line without MSHR")
		}
		m.merged = append(m.merged, r)
		if r.Kind == request.MemWrite {
			m.dirty = true
		}
		s.MergedCount++
		return Merged, nil
	}

	// Miss path.
	if len(s.mshrs) >= s.mshrCap {
		return Blocked, nil
	}
	set := s.lines[s.setOf(la)]
	victim := -1
	for i := range set {
		if set[i].pending {
			continue
		}
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].lastUsed < set[victim].lastUsed {
			victim = i
		}
	}
	if victim < 0 {
		return Blocked, nil // whole set pending
	}
	need := 1
	evictDirty := set[victim].valid && set[victim].dirty
	if evictDirty {
		need = 2
	}
	if downstreamSpace < need {
		return Blocked, nil
	}
	if evictDirty {
		wb := &request.Request{
			Kind:      request.MemWrite,
			Addr:      set[victim].tag,
			SM:        r.SM,
			App:       r.App,
			Synthetic: true,
		}
		forwards = append(forwards, wb)
		s.Writebacks++
	}
	set[victim] = line{tag: la, pending: true, lastUsed: s.useClock}
	s.mshrs[la] = &mshr{
		lineAddr: la,
		primary:  r,
		dirty:    r.Kind == request.MemWrite,
	}
	s.Misses++
	// The primary fetch goes downstream as a read regardless of the
	// request kind (write-allocate fetches the line first).
	forwards = append([]*request.Request{r}, forwards...)
	return Miss, forwards
}

// Fill completes the fetch for the primary request r: the line becomes
// valid (dirty if any merged store touched it) and every request that
// waited on the MSHR — the primary plus merges — is returned for response
// delivery. Fill panics if r does not correspond to an outstanding fetch.
func (s *Slice) Fill(r *request.Request) (completed []*request.Request) {
	la := s.lineAddr(r.Addr)
	m := s.mshrs[la]
	if m == nil || m.primary != r {
		panic(fmt.Sprintf("cache: fill for unknown fetch %v", r))
	}
	delete(s.mshrs, la)
	ln := s.find(la)
	if ln == nil || !ln.pending {
		panic("cache: fill without pending line")
	}
	ln.pending = false
	ln.valid = true
	ln.dirty = m.dirty
	ln.lastUsed = s.useClock
	completed = append(completed, m.primary)
	completed = append(completed, m.merged...)
	return completed
}
