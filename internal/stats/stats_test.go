package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFairnessIndexEquation1(t *testing.T) {
	cases := []struct {
		s1, s2, want float64
	}{
		{1, 1, 1},
		{0.5, 1, 0.5},
		{1, 0.5, 0.5},
		{0.9, 0.3, 1.0 / 3.0},
		{0, 1, 0},  // starvation
		{1, 0, 0},  // starvation
		{-1, 1, 0}, // never completed
	}
	for _, c := range cases {
		if got := FairnessIndex(c.s1, c.s2); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FairnessIndex(%v,%v) = %v, want %v", c.s1, c.s2, got, c.want)
		}
	}
}

func TestFairnessIndexProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		fi := FairnessIndex(a, b)
		if fi < 0 || fi > 1 {
			return false
		}
		// Symmetry.
		return fi == FairnessIndex(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSystemThroughput(t *testing.T) {
	if got := SystemThroughput(0.6, 0.8); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("ST = %v, want 1.4", got)
	}
	if got := SystemThroughput(0.6, -1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("ST with invalid speedup = %v, want 0.6", got)
	}
	if got := SystemThroughput(); got != 0 {
		t.Errorf("empty ST = %v, want 0", got)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	// Non-positive entries ignored, as in Fig. 10a's normalization.
	if got := GeoMean([]float64{1, 4, 0, -2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean with zeros = %v, want 2", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Errorf("GeoMean all non-positive = %v, want 0", got)
	}
}

func TestQuartiles(t *testing.T) {
	q, ok := QuartilesOf([]float64{1, 2, 3, 4, 5})
	if !ok {
		t.Fatal("QuartilesOf reported an empty sample")
	}
	if q.Min != 1 || q.Max != 5 || q.Median != 3 || q.Q1 != 2 || q.Q3 != 4 {
		t.Errorf("QuartilesOf = %+v", q)
	}
	// Single element: everything collapses.
	q, ok = QuartilesOf([]float64{7})
	if !ok || q.Min != 7 || q.Q1 != 7 || q.Median != 7 || q.Q3 != 7 || q.Max != 7 {
		t.Errorf("single-element quartiles should all equal the element, got %+v", q)
	}
}

func TestQuartilesDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	QuartilesOf(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestQuartilesEmptyIsDefined(t *testing.T) {
	q, ok := QuartilesOf(nil)
	if ok {
		t.Error("QuartilesOf(nil) reported ok")
	}
	if q != (Quartiles{}) {
		t.Errorf("empty sample should yield zero Quartiles, got %+v", q)
	}
}

func TestChannelDerivedMetrics(t *testing.T) {
	c := Channel{RowHits: 75, RowMisses: 25, ActiveCycles: 10, BankBusySum: 85,
		MemToPIMSwitches: 4, DrainLatencySum: 48, Switches: 8, PostSwitchConflicts: 16}
	if got := c.RBHR(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("RBHR = %v, want 0.75", got)
	}
	if got := c.BLP(); math.Abs(got-8.5) > 1e-12 {
		t.Errorf("BLP = %v, want 8.5", got)
	}
	if got := c.DrainPerSwitch(); math.Abs(got-12) > 1e-12 {
		t.Errorf("drain/switch = %v, want 12", got)
	}
	if got := c.ConflictsPerSwitch(); math.Abs(got-2) > 1e-12 {
		t.Errorf("conflicts/switch = %v, want 2", got)
	}
	var zero Channel
	if zero.RBHR() != 0 || zero.BLP() != 0 || zero.DrainPerSwitch() != 0 || zero.ConflictsPerSwitch() != 0 {
		t.Error("zero-value channel metrics must be 0, not NaN")
	}
}

func TestAvgQueueOccupancy(t *testing.T) {
	c := Channel{MemQOccupancySum: 300, PIMQOccupancySum: 640, SampledCycles: 10}
	if got := c.AvgMemQ(); got != 30 {
		t.Errorf("AvgMemQ = %v, want 30", got)
	}
	if got := c.AvgPIMQ(); got != 64 {
		t.Errorf("AvgPIMQ = %v, want 64", got)
	}
	var zero Channel
	if zero.AvgMemQ() != 0 || zero.AvgPIMQ() != 0 {
		t.Error("zero-sample occupancy must be 0, not NaN")
	}
}

func TestTotalChannelSums(t *testing.T) {
	s := New(2, 3)
	for i := range s.Channels {
		s.Channels[i].MemReads = uint64(i + 1)
		s.Channels[i].PIMOps = 10
		s.Channels[i].Switches = 2
	}
	tot := s.TotalChannel()
	if tot.MemReads != 6 || tot.PIMOps != 30 || tot.Switches != 6 {
		t.Errorf("TotalChannel = %+v", tot)
	}
}

func TestArrivalRates(t *testing.T) {
	s := New(2, 1)
	s.GPUCycles = 2000
	s.Apps[0].NoCInjected = 4000
	s.Apps[1].MCArrived = 1000
	if got := s.NoCArrivalRate(0); math.Abs(got-2000) > 1e-9 {
		t.Errorf("NoC rate = %v, want 2000 req/kcycle", got)
	}
	if got := s.MCArrivalRate(1); math.Abs(got-500) > 1e-9 {
		t.Errorf("MC rate = %v, want 500 req/kcycle", got)
	}
	var empty Sim
	if empty.NoCArrivalRate(0) != 0 {
		t.Error("zero-cycle arrival rate must be 0")
	}
}

func TestArrivalRateZeroCycles(t *testing.T) {
	s := New(1, 1)
	if s.NoCArrivalRate(0) != 0 || s.MCArrivalRate(0) != 0 {
		t.Error("rates with zero cycles should be 0")
	}
}

func TestSummaryRenders(t *testing.T) {
	s := New(1, 1)
	s.Channels[0].MemReads = 5
	if got := s.Summary(); got == "" {
		t.Error("empty summary")
	}
}
