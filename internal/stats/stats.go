// Package stats accumulates the measurements the paper reports: request
// arrival rates into the interconnect and the DRAM, bank-level parallelism
// (BLP), row-buffer hit rate (RBHR), mode-switch counts and overheads, and
// the system-level fairness and throughput metrics of Eyerman & Eeckhout
// used in Figs. 8, 10, 11, 13 and 14.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// App accumulates per-application (per-kernel) counters.
type App struct {
	// NoCInjected counts requests this app injected into the
	// interconnect (Fig. 4a's arrival rate numerator).
	NoCInjected uint64
	// MCArrived counts requests that reached the memory controller
	// queues (Fig. 4b / Fig. 6 numerator).
	MCArrived uint64
	// Completed counts requests fully serviced.
	Completed uint64
	// StallCycles counts GPU cycles the app's SMs were ready to inject
	// but the interconnect refused (backpressure denial of service).
	StallCycles uint64
}

// Channel accumulates per-memory-channel counters.
type Channel struct {
	// MemReads/MemWrites/PIMOps count issued column commands / PIM ops.
	MemReads  uint64
	MemWrites uint64
	PIMOps    uint64

	// RowHits/RowMisses classify MEM column commands by whether the
	// target row was already open.
	RowHits   uint64
	RowMisses uint64
	// PIMRowHits/PIMRowMisses do the same for lockstep PIM ops (a miss
	// means the all-bank row had to be re-activated).
	PIMRowHits   uint64
	PIMRowMisses uint64

	// Switches counts mode transitions; MemToPIMSwitches is the subset
	// with MEM-drain overheads.
	Switches         uint64
	MemToPIMSwitches uint64
	// DrainLatencySum accumulates the DRAM cycles each MEM->PIM switch
	// spent draining in-flight MEM requests (Fig. 10c numerator).
	DrainLatencySum uint64
	// PostSwitchConflicts counts MEM row misses on banks whose open row
	// was disturbed while the controller was in PIM mode — the
	// "additional MEM conflicts per switch" of Fig. 10b.
	PostSwitchConflicts uint64

	// ActiveCycles counts DRAM cycles with at least one bank busy;
	// BankBusySum accumulates the number of busy banks over those
	// cycles. BLP = BankBusySum / ActiveCycles (Fig. 4c is measured in
	// active DRAM cycles).
	ActiveCycles uint64
	BankBusySum  uint64

	// MemQOccupancySum/PIMQOccupancySum accumulate queue occupancy per
	// DRAM cycle for average-occupancy reporting.
	MemQOccupancySum uint64
	PIMQOccupancySum uint64
	SampledCycles    uint64

	// Refreshes counts all-bank refresh commands (0 unless the
	// supplemental refresh model is enabled).
	Refreshes uint64
}

// Sim is the complete measurement record of one simulation run.
type Sim struct {
	// GPUCycles and DRAMCycles are the run lengths in each clock
	// domain.
	GPUCycles  uint64
	DRAMCycles uint64
	// Apps holds per-application counters, indexed by app ID.
	Apps []App
	// Channels holds per-channel counters.
	Channels []Channel
	// KernelFinishGPU[app] is the GPU cycle of the app's first kernel
	// completion (0 if it never completed).
	KernelFinishGPU []uint64
}

// New allocates a Sim for the given number of apps and channels.
func New(apps, channels int) *Sim {
	return &Sim{
		Apps:            make([]App, apps),
		Channels:        make([]Channel, channels),
		KernelFinishGPU: make([]uint64, apps),
	}
}

// TotalChannel sums the per-channel counters.
func (s *Sim) TotalChannel() Channel {
	var t Channel
	for i := range s.Channels {
		c := &s.Channels[i]
		t.MemReads += c.MemReads
		t.MemWrites += c.MemWrites
		t.PIMOps += c.PIMOps
		t.RowHits += c.RowHits
		t.RowMisses += c.RowMisses
		t.PIMRowHits += c.PIMRowHits
		t.PIMRowMisses += c.PIMRowMisses
		t.Switches += c.Switches
		t.MemToPIMSwitches += c.MemToPIMSwitches
		t.DrainLatencySum += c.DrainLatencySum
		t.PostSwitchConflicts += c.PostSwitchConflicts
		t.ActiveCycles += c.ActiveCycles
		t.BankBusySum += c.BankBusySum
		t.MemQOccupancySum += c.MemQOccupancySum
		t.PIMQOccupancySum += c.PIMQOccupancySum
		t.SampledCycles += c.SampledCycles
		t.Refreshes += c.Refreshes
	}
	return t
}

// RBHR returns the MEM row-buffer hit rate, or 0 when no MEM commands
// issued.
func (c Channel) RBHR() float64 {
	total := c.RowHits + c.RowMisses
	if total == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(total)
}

// BLP returns the average bank-level parallelism over active DRAM cycles.
func (c Channel) BLP() float64 {
	if c.ActiveCycles == 0 {
		return 0
	}
	return float64(c.BankBusySum) / float64(c.ActiveCycles)
}

// DrainPerSwitch returns the average MEM-drain latency per MEM->PIM switch
// in DRAM cycles (Fig. 10c).
func (c Channel) DrainPerSwitch() float64 {
	if c.MemToPIMSwitches == 0 {
		return 0
	}
	return float64(c.DrainLatencySum) / float64(c.MemToPIMSwitches)
}

// ConflictsPerSwitch returns the average additional MEM conflicts per
// switch (Fig. 10b).
func (c Channel) ConflictsPerSwitch() float64 {
	if c.Switches == 0 {
		return 0
	}
	return float64(c.PostSwitchConflicts) / float64(c.Switches)
}

// AvgMemQ returns the average MEM queue occupancy over the sampled DRAM
// cycles (the congestion signal of Fig. 7).
func (c Channel) AvgMemQ() float64 {
	if c.SampledCycles == 0 {
		return 0
	}
	return float64(c.MemQOccupancySum) / float64(c.SampledCycles)
}

// AvgPIMQ returns the average PIM queue occupancy.
func (c Channel) AvgPIMQ() float64 {
	if c.SampledCycles == 0 {
		return 0
	}
	return float64(c.PIMQOccupancySum) / float64(c.SampledCycles)
}

// NoCArrivalRate returns an app's interconnect request arrival rate in
// requests per kilo-GPU-cycle (Fig. 4a's unit up to scaling).
func (s *Sim) NoCArrivalRate(app int) float64 {
	if s.GPUCycles == 0 {
		return 0
	}
	return 1000 * float64(s.Apps[app].NoCInjected) / float64(s.GPUCycles)
}

// MCArrivalRate returns an app's DRAM request arrival rate in requests per
// kilo-GPU-cycle (Figs. 4b and 6).
func (s *Sim) MCArrivalRate(app int) float64 {
	if s.GPUCycles == 0 {
		return 0
	}
	return 1000 * float64(s.Apps[app].MCArrived) / float64(s.GPUCycles)
}

// FairnessIndex implements Eq. 1: min(s1/s2, s2/s1). It is 1 for perfectly
// equal speedups and approaches 0 under starvation. A non-positive speedup
// (a kernel that never completed) yields 0.
func FairnessIndex(speedup1, speedup2 float64) float64 {
	if speedup1 <= 0 || speedup2 <= 0 {
		return 0
	}
	return math.Min(speedup1/speedup2, speedup2/speedup1)
}

// SystemThroughput is the sum of per-kernel speedups (Sec. III-C).
func SystemThroughput(speedups ...float64) float64 {
	var t float64
	for _, s := range speedups {
		if s > 0 {
			t += s
		}
	}
	return t
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries
// the way the paper's Fig. 10a normalization does. It returns 0 when no
// positive entries exist.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Quartiles is a five-number summary: the min, 25th, 50th, 75th
// percentile and max of a sample, matching the box-and-whisker summaries
// of Fig. 4.
type Quartiles struct {
	Min, Q1, Median, Q3, Max float64
}

// QuartilesOf computes the five-number summary of xs. The second return
// is false for an empty sample (the Quartiles are then all zero), so
// callers decide how to render missing data instead of panicking.
func QuartilesOf(xs []float64) (Quartiles, bool) {
	if len(xs) == 0 {
		return Quartiles{}, false
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		if len(sorted) == 1 {
			return sorted[0]
		}
		pos := p * float64(len(sorted)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(sorted) {
			return sorted[len(sorted)-1]
		}
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	return Quartiles{
		Min:    sorted[0],
		Q1:     at(0.25),
		Median: at(0.5),
		Q3:     at(0.75),
		Max:    sorted[len(sorted)-1],
	}, true
}

// Summary renders the headline counters for debugging.
func (s *Sim) Summary() string {
	t := s.TotalChannel()
	return fmt.Sprintf(
		"gpu=%d dram=%d reads=%d writes=%d pim=%d rbhr=%.3f blp=%.2f switches=%d",
		s.GPUCycles, s.DRAMCycles, t.MemReads, t.MemWrites, t.PIMOps,
		t.RBHR(), t.BLP(), t.Switches)
}
