package energy

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func sampleStats() *stats.Sim {
	s := stats.New(2, 2)
	s.DRAMCycles = 850_000 // 1 ms at 850 MHz
	s.Channels[0] = stats.Channel{
		MemReads: 1000, MemWrites: 500,
		RowHits: 1200, RowMisses: 300,
		PIMOps: 2000, PIMRowHits: 1900, PIMRowMisses: 100,
		Refreshes: 10,
	}
	return s
}

func TestBreakdownComponents(t *testing.T) {
	m := DefaultHBM()
	b := m.Estimate(sampleStats(), 16, 2, 850)
	if b.ReadNJ != 1000*m.ReadPJ/1000 {
		t.Errorf("read energy %v", b.ReadNJ)
	}
	if b.WriteNJ != 500*m.WritePJ/1000 {
		t.Errorf("write energy %v", b.WriteNJ)
	}
	wantAct := 300 * (m.ActPJ + m.PrePJ) / 1000
	if math.Abs(b.ActivateNJ-wantAct) > 1e-9 {
		t.Errorf("activate energy %v, want %v", b.ActivateNJ, wantAct)
	}
	wantPIM := 2000 * 16 * m.PIMOpBankPJ / 1000
	if math.Abs(b.PIMOpNJ-wantPIM) > 1e-9 {
		t.Errorf("pim energy %v, want %v", b.PIMOpNJ, wantPIM)
	}
	// Broadcast row swap pays per bank.
	wantSwap := 100 * 16 * (m.ActPJ + m.PrePJ) / 1000
	if math.Abs(b.PIMRowSwapNJ-wantSwap) > 1e-9 {
		t.Errorf("pim swap energy %v, want %v", b.PIMRowSwapNJ, wantSwap)
	}
	if b.RefreshNJ != 10*m.RefreshPJ/1000 {
		t.Errorf("refresh energy %v", b.RefreshNJ)
	}
	// Background: 50 mW x 1 ms x 2 channels = 100 uJ = 1e5 nJ.
	if math.Abs(b.BackgroundNJ-1e5) > 1 {
		t.Errorf("background energy %v nJ, want 1e5", b.BackgroundNJ)
	}
	if b.Total() <= b.BackgroundNJ {
		t.Error("total not accumulating dynamic components")
	}
}

func TestZeroCyclesNoBackground(t *testing.T) {
	m := DefaultHBM()
	s := stats.New(1, 1)
	b := m.Estimate(s, 16, 1, 850)
	if b.Total() != 0 {
		t.Errorf("empty run energy %v", b.Total())
	}
	if m.PerRequestNJ(s, 16, 1, 850) != 0 {
		t.Error("per-request energy of empty run not 0")
	}
}

func TestPerRequestEnergy(t *testing.T) {
	m := DefaultHBM()
	s := sampleStats()
	got := m.PerRequestNJ(s, 16, 2, 850)
	want := m.Estimate(s, 16, 2, 850).Total() / float64(1000+500+2000)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("per-request %v, want %v", got, want)
	}
}

// TestPIMEnergyAdvantage documents why the defaults are shaped the way
// they are: a lockstep PIM op touching a DRAM word in place must cost
// less than reading the same word out to the host.
func TestPIMEnergyAdvantage(t *testing.T) {
	m := DefaultHBM()
	perPIMWord := m.PIMOpBankPJ
	perHostRead := m.ReadPJ
	if perPIMWord >= perHostRead {
		t.Errorf("PIM word op %v pJ >= host read %v pJ; defeats PIM's premise", perPIMWord, perHostRead)
	}
}

func TestBreakdownString(t *testing.T) {
	b := DefaultHBM().Estimate(sampleStats(), 16, 2, 850)
	if b.String() == "" {
		t.Error("empty rendering")
	}
}
