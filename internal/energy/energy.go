// Package energy estimates DRAM and PIM energy from simulation
// statistics. The paper reports performance only; this extension exists
// because the PIM literature it builds on (Newton, HBM-PIM, AiM) argues
// for PIM largely on energy grounds, and a reproduction library should
// let users ask that question of the same runs.
//
// The model is event-based: each command class carries a per-event energy
// and idle background power accrues per channel. Default coefficients are
// HBM-class ballpark figures (documented per field); absolute joules are
// only as good as the coefficients, but *comparisons* across policies on
// identical workloads are meaningful because the event counts come from
// the cycle-level model.
package energy

import (
	"fmt"

	"repro/internal/stats"
)

// Model holds per-event energies in picojoules and background power.
type Model struct {
	// ActPJ/PrePJ are per-bank activate/precharge energies; a broadcast
	// (all-bank) PIM activate pays Banks x ActPJ.
	ActPJ, PrePJ float64
	// ReadPJ/WritePJ are per column access (one 32 B burst) including
	// I/O energy off the stack.
	ReadPJ, WritePJ float64
	// PIMOpBankPJ is the per-bank energy of one lockstep PIM operation:
	// a row-local DRAM word access plus the SIMD ALU — far cheaper per
	// bit than moving the word to the host, which is PIM's point.
	PIMOpBankPJ float64
	// RefreshPJ is per all-bank REFab command.
	RefreshPJ float64
	// BackgroundMW is static power per channel in milliwatts.
	BackgroundMW float64
}

// DefaultHBM returns HBM2-class ballpark coefficients.
func DefaultHBM() Model {
	return Model{
		ActPJ:        800,
		PrePJ:        400,
		ReadPJ:       500,
		WritePJ:      550,
		PIMOpBankPJ:  65,
		RefreshPJ:    4000,
		BackgroundMW: 50,
	}
}

// Breakdown is an energy estimate in nanojoules by component.
type Breakdown struct {
	ActivateNJ   float64 // MEM activates + precharges (from row misses)
	ReadNJ       float64
	WriteNJ      float64
	PIMOpNJ      float64
	PIMRowSwapNJ float64 // broadcast precharge+activate at block boundaries
	RefreshNJ    float64
	BackgroundNJ float64
}

// Total returns the sum in nanojoules.
func (b Breakdown) Total() float64 {
	return b.ActivateNJ + b.ReadNJ + b.WriteNJ + b.PIMOpNJ + b.PIMRowSwapNJ + b.RefreshNJ + b.BackgroundNJ
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("act %.1f + rd %.1f + wr %.1f + pim %.1f + pimswap %.1f + ref %.1f + bg %.1f = %.1f nJ",
		b.ActivateNJ, b.ReadNJ, b.WriteNJ, b.PIMOpNJ, b.PIMRowSwapNJ, b.RefreshNJ, b.BackgroundNJ, b.Total())
}

// Estimate converts a run's statistics into an energy breakdown. banks is
// the per-channel bank count (broadcast commands pay per bank); dramMHz
// converts background power over the run's DRAM cycles.
func (m Model) Estimate(s *stats.Sim, banks, channels, dramMHz int) Breakdown {
	t := s.TotalChannel()
	var b Breakdown
	// Each MEM row miss implies one activate and (almost always) one
	// precharge of the previous row.
	b.ActivateNJ = float64(t.RowMisses) * (m.ActPJ + m.PrePJ) / 1000
	b.ReadNJ = float64(t.MemReads) * m.ReadPJ / 1000
	b.WriteNJ = float64(t.MemWrites) * m.WritePJ / 1000
	b.PIMOpNJ = float64(t.PIMOps) * float64(banks) * m.PIMOpBankPJ / 1000
	// Each lockstep row change is a broadcast precharge + activate on
	// every bank.
	b.PIMRowSwapNJ = float64(t.PIMRowMisses) * float64(banks) * (m.ActPJ + m.PrePJ) / 1000
	b.RefreshNJ = float64(t.Refreshes) * m.RefreshPJ / 1000
	if dramMHz > 0 {
		seconds := float64(s.DRAMCycles) / (float64(dramMHz) * 1e6)
		b.BackgroundNJ = m.BackgroundMW * 1e-3 * seconds * float64(channels) * 1e9
	}
	return b
}

// PerRequestNJ returns average energy per serviced request (MEM accesses
// plus PIM ops), a rough efficiency figure of merit.
func (m Model) PerRequestNJ(s *stats.Sim, banks, channels, dramMHz int) float64 {
	t := s.TotalChannel()
	n := t.MemReads + t.MemWrites + t.PIMOps
	if n == 0 {
		return 0
	}
	return m.Estimate(s, banks, channels, dramMHz).Total() / float64(n)
}
