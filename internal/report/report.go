// Package report renders experiment results into machine-readable CSV
// and self-contained SVG bar charts — the reproduction's analogue of the
// paper artifact's matplotlib scripts, built on the standard library
// only.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/experiments"
)

// csvEscape quotes a field when needed.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func csvRow(fields ...string) string {
	escaped := make([]string, len(fields))
	for i, f := range fields {
		escaped[i] = csvEscape(f)
	}
	return strings.Join(escaped, ",") + "\n"
}

// SweepCSV flattens a competitive sweep into one CSV row per
// (mode, policy, gpu, pim) combination.
func SweepCSV(s *experiments.Sweep) string {
	var b strings.Builder
	b.WriteString(csvRow("vc", "policy", "gpu", "pim",
		"gpu_speedup", "pim_speedup", "fairness", "throughput",
		"mem_arrival_norm", "switches", "conflicts_per_switch", "drain_per_switch", "aborted"))
	for _, mode := range s.Modes {
		for _, policy := range s.Policies {
			for _, g := range s.GPUIDs {
				for _, p := range s.PIMIDs {
					pair := s.Pairs[mode][policy][g][p]
					b.WriteString(csvRow(
						mode.String(), policy, g, p,
						fmt.Sprintf("%.6f", pair.GPUSpeedup),
						fmt.Sprintf("%.6f", pair.PIMSpeedup),
						fmt.Sprintf("%.6f", pair.Fairness),
						fmt.Sprintf("%.6f", pair.Throughput),
						fmt.Sprintf("%.6f", pair.MemArrivalNorm),
						fmt.Sprintf("%d", pair.Switches),
						fmt.Sprintf("%.4f", pair.ConflictsPerSwitch),
						fmt.Sprintf("%.2f", pair.DrainPerSwitch),
						fmt.Sprintf("%v", pair.Aborted),
					))
				}
			}
		}
	}
	return b.String()
}

// CollabCSV flattens Fig. 11 results.
func CollabCSV(results []experiments.CollabResult) string {
	var b strings.Builder
	b.WriteString(csvRow("vc", "policy", "speedup", "ideal", "qkv_cycles", "mha_cycles", "concurrent_cycles", "aborted"))
	for _, r := range results {
		b.WriteString(csvRow(
			r.Mode.String(), r.Policy,
			fmt.Sprintf("%.6f", r.Speedup),
			fmt.Sprintf("%.6f", r.Ideal),
			fmt.Sprintf("%d", r.QKVCycles),
			fmt.Sprintf("%d", r.MHACycles),
			fmt.Sprintf("%d", r.ConcurrentCycles),
			fmt.Sprintf("%v", r.Aborted),
		))
	}
	return b.String()
}

// CharacterizationCSV flattens Fig. 4 per-kernel measurements.
func CharacterizationCSV(c *experiments.Characterization) string {
	var b strings.Builder
	b.WriteString(csvRow("group", "kernel", "noc_rate", "mc_rate", "blp", "rbhr", "cycles"))
	groups := make([]string, 0, len(c.PerKernel))
	for g := range c.PerKernel {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		kernels := make([]string, 0, len(c.PerKernel[g]))
		for k := range c.PerKernel[g] {
			kernels = append(kernels, k)
		}
		sort.Strings(kernels)
		for _, k := range kernels {
			s := c.PerKernel[g][k]
			b.WriteString(csvRow(g, k,
				fmt.Sprintf("%.4f", s.NoCRate),
				fmt.Sprintf("%.4f", s.MCRate),
				fmt.Sprintf("%.4f", s.BLP),
				fmt.Sprintf("%.4f", s.RBHR),
				fmt.Sprintf("%d", s.Cycles),
			))
		}
	}
	return b.String()
}

// FairnessThroughputBars builds the Fig. 8-style grouped bar chart data
// from a sweep reduction: one group per policy, one bar per (metric,
// mode).
func FairnessThroughputBars(ft *experiments.FairnessThroughput, modes []config.VCMode) BarChart {
	chart := BarChart{
		Title:  "Fairness index and system throughput by policy (Fig. 8)",
		YLabel: "index / speedup sum",
	}
	for _, policy := range ft.Policies {
		g := BarGroup{Label: policy}
		for _, m := range modes {
			g.Bars = append(g.Bars,
				Bar{Label: "FI/" + m.String(), Value: ft.AvgFairness[m][policy]},
				Bar{Label: "ST/" + m.String(), Value: ft.AvgThroughput[m][policy]},
			)
		}
		chart.Groups = append(chart.Groups, g)
	}
	return chart
}

// CollabBars builds the Fig. 11-style chart.
func CollabBars(results []experiments.CollabResult) BarChart {
	chart := BarChart{
		Title:  "LLM speedup vs sequential execution (Fig. 11)",
		YLabel: "speedup",
	}
	byPolicy := map[string]*BarGroup{}
	var order []string
	for _, r := range results {
		g, ok := byPolicy[r.Policy]
		if !ok {
			order = append(order, r.Policy)
			g = &BarGroup{Label: r.Policy}
			byPolicy[r.Policy] = g
		}
		g.Bars = append(g.Bars, Bar{Label: r.Mode.String(), Value: r.Speedup})
	}
	for _, p := range order {
		chart.Groups = append(chart.Groups, *byPolicy[p])
	}
	return chart
}
