package report

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one bar of a grouped bar chart.
type Bar struct {
	// Label names the bar within its group ("FI/VC1").
	Label string
	// Value is the bar height; negative values are clamped to zero.
	Value float64
}

// BarGroup is one labeled cluster of bars ("f3fs").
type BarGroup struct {
	Label string
	Bars  []Bar
}

// BarChart is a grouped bar chart rendered as a self-contained SVG.
type BarChart struct {
	Title  string
	YLabel string
	Groups []BarGroup
}

// barPalette cycles across the bars of a group.
var barPalette = []string{"#4878a8", "#e49444", "#5fa05a", "#d1605e", "#857aab", "#937860"}

// SVG renders the chart. The output is deterministic for a given chart.
func (c BarChart) SVG() string {
	const (
		width      = 960
		height     = 480
		marginL    = 70
		marginR    = 30
		marginT    = 50
		marginB    = 110
		plotW      = width - marginL - marginR
		plotH      = height - marginT - marginB
		groupGap   = 18.0
		legendYOff = 18
	)
	maxVal := 0.0
	maxBars := 0
	for _, g := range c.Groups {
		if len(g.Bars) > maxBars {
			maxBars = len(g.Bars)
		}
		for _, b := range g.Bars {
			if b.Value > maxVal {
				maxVal = b.Value
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	// Round the axis top up to a tidy step.
	step := math.Pow(10, math.Floor(math.Log10(maxVal)))
	for maxVal/step > 5 {
		step *= 2
	}
	axisTop := math.Ceil(maxVal/step) * step

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n", width/2, xmlEscape(c.Title))
	fmt.Fprintf(&b, `<text x="18" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(c.YLabel))

	// Gridlines and y-axis labels.
	for v := 0.0; v <= axisTop+1e-9; v += step {
		y := float64(marginT) + float64(plotH)*(1-v/axisTop)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.2g</text>`+"\n", marginL-6, y+4, v)
	}

	if len(c.Groups) > 0 {
		groupW := (float64(plotW) - groupGap*float64(len(c.Groups))) / float64(len(c.Groups))
		barW := groupW / math.Max(1, float64(maxBars))
		for gi, g := range c.Groups {
			gx := float64(marginL) + groupGap/2 + float64(gi)*(groupW+groupGap)
			for bi, bar := range g.Bars {
				v := math.Max(0, bar.Value)
				h := float64(plotH) * v / axisTop
				x := gx + float64(bi)*barW
				y := float64(marginT) + float64(plotH) - h
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s = %.4f</title></rect>`+"\n",
					x, y, math.Max(1, barW-2), h, barPalette[bi%len(barPalette)],
					xmlEscape(g.Label), xmlEscape(bar.Label), bar.Value)
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="end" transform="rotate(-40 %.1f %d)">%s</text>`+"\n",
				gx+groupW/2, marginT+plotH+16, gx+groupW/2, marginT+plotH+16, xmlEscape(g.Label))
		}
		// Legend from the first group's bar labels.
		lx := marginL
		for bi, bar := range c.Groups[0].Bars {
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
				lx, height-marginB+legendYOff+46, barPalette[bi%len(barPalette)])
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
				lx+16, height-marginB+legendYOff+56, xmlEscape(bar.Label))
			lx += 20 + 9*len(bar.Label)
		}
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, marginT+plotH, width-marginR, marginT+plotH)
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
