package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/experiments"
)

func sampleSweep() *experiments.Sweep {
	s := &experiments.Sweep{
		Policies: []string{"f3fs"},
		Modes:    []config.VCMode{config.VC1},
		GPUIDs:   []string{"G8"},
		PIMIDs:   []string{"P1"},
		Pairs:    map[config.VCMode]map[string]map[string]map[string]experiments.Pair{},
	}
	s.Pairs[config.VC1] = map[string]map[string]map[string]experiments.Pair{
		"f3fs": {"G8": {"P1": experiments.Pair{
			GPUID: "G8", PIMID: "P1", Policy: "f3fs", Mode: config.VC1,
			GPUSpeedup: 0.5, PIMSpeedup: 0.7, Fairness: 0.714, Throughput: 1.2,
			MemArrivalNorm: 0.8, Switches: 42, ConflictsPerSwitch: 1.5, DrainPerSwitch: 12.0,
		}}},
	}
	return s
}

func TestSweepCSV(t *testing.T) {
	csv := SweepCSV(sampleSweep())
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "vc,policy,gpu,pim") {
		t.Errorf("header: %s", lines[0])
	}
	for _, want := range []string{"VC1", "f3fs", "G8", "P1", "0.714", "42"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("row missing %q: %s", want, lines[1])
		}
	}
}

func TestCollabCSV(t *testing.T) {
	csv := CollabCSV([]experiments.CollabResult{{
		Policy: "f3fs", Mode: config.VC2, Speedup: 0.99, Ideal: 1.6,
		QKVCycles: 100, MHACycles: 50, ConcurrentCycles: 120,
	}})
	if !strings.Contains(csv, "f3fs") || !strings.Contains(csv, "VC2") {
		t.Errorf("csv: %s", csv)
	}
}

func TestCSVEscaping(t *testing.T) {
	if got := csvEscape(`plain`); got != "plain" {
		t.Errorf("plain escaped: %q", got)
	}
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Errorf("comma: %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Errorf("quotes: %q", got)
	}
}

func TestSweepJSON(t *testing.T) {
	data, err := SweepJSON(sampleSweep())
	if err != nil {
		t.Fatal(err)
	}
	var records []PairRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(records) != 1 || records[0].Policy != "f3fs" || records[0].Fairness != 0.714 {
		t.Errorf("records: %+v", records)
	}
}

func TestCollabJSON(t *testing.T) {
	data, err := CollabJSON([]experiments.CollabResult{{Policy: "f3fs", Mode: config.VC2, Speedup: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	var records []CollabRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].VC != "VC2" {
		t.Errorf("records: %+v", records)
	}
}

func TestCharacterizationCSV(t *testing.T) {
	c := &experiments.Characterization{
		PerKernel: map[string]map[string]experiments.Standalone{
			"PIM": {"P1": {Cycles: 1000, NoCRate: 1.5, MCRate: 1.5, BLP: 16, RBHR: 0.9}},
		},
	}
	csv := CharacterizationCSV(c)
	if !strings.Contains(csv, "P1") || !strings.Contains(csv, "16.0000") {
		t.Errorf("csv: %s", csv)
	}
}

func TestBarChartSVG(t *testing.T) {
	chart := BarChart{
		Title:  "test <chart>",
		YLabel: "value",
		Groups: []BarGroup{
			{Label: "a", Bars: []Bar{{Label: "x", Value: 1.0}, {Label: "y", Value: 0.5}}},
			{Label: "b", Bars: []Bar{{Label: "x", Value: 2.0}, {Label: "y", Value: -1}}},
		},
	}
	svg := chart.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if !strings.Contains(svg, "&lt;chart&gt;") {
		t.Error("title not XML-escaped")
	}
	if strings.Count(svg, "<rect") < 5 { // background + 4 bars
		t.Error("missing bar rects")
	}
	// Determinism.
	if svg != chart.SVG() {
		t.Error("SVG rendering not deterministic")
	}
}

func TestEmptyChartStillRenders(t *testing.T) {
	svg := BarChart{Title: "empty"}.SVG()
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("empty chart did not render")
	}
}

func TestFairnessThroughputBars(t *testing.T) {
	ft := sampleSweep().FairnessThroughput()
	chart := FairnessThroughputBars(ft, []config.VCMode{config.VC1})
	if len(chart.Groups) != 1 || len(chart.Groups[0].Bars) != 2 {
		t.Fatalf("chart shape: %+v", chart)
	}
	if chart.Groups[0].Bars[0].Value != 0.714 {
		t.Errorf("FI bar = %v", chart.Groups[0].Bars[0].Value)
	}
}

func TestCollabBars(t *testing.T) {
	chart := CollabBars([]experiments.CollabResult{
		{Policy: "f3fs", Mode: config.VC1, Speedup: 0.9},
		{Policy: "f3fs", Mode: config.VC2, Speedup: 1.0},
		{Policy: "fcfs", Mode: config.VC1, Speedup: 0.3},
	})
	if len(chart.Groups) != 2 {
		t.Fatalf("groups = %d", len(chart.Groups))
	}
	if len(chart.Groups[0].Bars) != 2 {
		t.Errorf("f3fs bars = %d", len(chart.Groups[0].Bars))
	}
}
