package report

import (
	"encoding/json"

	"repro/internal/experiments"
)

// PairRecord flattens one competitive result for machine consumption.
type PairRecord struct {
	VC                 string  `json:"vc"`
	Policy             string  `json:"policy"`
	GPU                string  `json:"gpu"`
	PIM                string  `json:"pim"`
	GPUSpeedup         float64 `json:"gpu_speedup"`
	PIMSpeedup         float64 `json:"pim_speedup"`
	Fairness           float64 `json:"fairness"`
	Throughput         float64 `json:"throughput"`
	MemArrivalNorm     float64 `json:"mem_arrival_norm"`
	Switches           uint64  `json:"switches"`
	ConflictsPerSwitch float64 `json:"conflicts_per_switch"`
	DrainPerSwitch     float64 `json:"drain_per_switch"`
	Aborted            bool    `json:"aborted"`
}

// SweepRecords flattens a sweep into one record per combination, in
// deterministic (mode, policy, gpu, pim) order.
func SweepRecords(s *experiments.Sweep) []PairRecord {
	var out []PairRecord
	for _, mode := range s.Modes {
		for _, policy := range s.Policies {
			for _, g := range s.GPUIDs {
				for _, p := range s.PIMIDs {
					pair := s.Pairs[mode][policy][g][p]
					out = append(out, PairRecord{
						VC: mode.String(), Policy: policy, GPU: g, PIM: p,
						GPUSpeedup: pair.GPUSpeedup, PIMSpeedup: pair.PIMSpeedup,
						Fairness: pair.Fairness, Throughput: pair.Throughput,
						MemArrivalNorm:     pair.MemArrivalNorm,
						Switches:           pair.Switches,
						ConflictsPerSwitch: pair.ConflictsPerSwitch,
						DrainPerSwitch:     pair.DrainPerSwitch,
						Aborted:            pair.Aborted,
					})
				}
			}
		}
	}
	return out
}

// SweepJSON marshals the flattened sweep with indentation.
func SweepJSON(s *experiments.Sweep) ([]byte, error) {
	return json.MarshalIndent(SweepRecords(s), "", "  ")
}

// CollabRecord flattens one collaborative result.
type CollabRecord struct {
	VC               string  `json:"vc"`
	Policy           string  `json:"policy"`
	Speedup          float64 `json:"speedup"`
	Ideal            float64 `json:"ideal"`
	QKVCycles        uint64  `json:"qkv_cycles"`
	MHACycles        uint64  `json:"mha_cycles"`
	ConcurrentCycles uint64  `json:"concurrent_cycles"`
	Aborted          bool    `json:"aborted"`
}

// CollabJSON marshals Fig. 11 results with indentation.
func CollabJSON(results []experiments.CollabResult) ([]byte, error) {
	records := make([]CollabRecord, 0, len(results))
	for _, r := range results {
		records = append(records, CollabRecord{
			VC: r.Mode.String(), Policy: r.Policy,
			Speedup: r.Speedup, Ideal: r.Ideal,
			QKVCycles: r.QKVCycles, MHACycles: r.MHACycles,
			ConcurrentCycles: r.ConcurrentCycles, Aborted: r.Aborted,
		})
	}
	return json.MarshalIndent(records, "", "  ")
}
