package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

// resultDigest hashes every schedule- and host-independent field of a
// Result: the full stats record, per-kernel outcomes, cycle counts, the
// sampling timeline, fault totals, and the telemetry registry + sample
// ring. The Manifest is deliberately excluded — it carries wall-clock
// and process-cost fields that legitimately differ between runs.
func resultDigest(t *testing.T, res *Result) string {
	t.Helper()
	h := sha256.New()
	enc := json.NewEncoder(h)
	parts := []any{
		res.Stats, res.Kernels, res.GPUCycles, res.DRAMCycles,
		res.Aborted, res.Samples, res.Faults,
	}
	if res.Telemetry != nil {
		parts = append(parts, res.Telemetry.Registry.Export(), res.Telemetry.Sampler.Snapshots())
	}
	for _, v := range parts {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// determinismDigest builds a fresh System from cfg (Systems are
// single-use), runs it with sampling and telemetry attached, and
// returns the result digest.
func determinismDigest(t *testing.T, cfg config.Config) string {
	t.Helper()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	descs := []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.1),
		pimDesc(t, "P1", pimSMs, 0.1),
	}
	sys, err := New(cfg, core.Factory("f3fs", cfg.Sched), descs)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableSampling(500)
	sys.EnableTelemetry(512, 0)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return resultDigest(t, res)
}

// TestDeterminismDoubleRun is the repository's determinism contract as
// a regression test: the same (config, seed) run twice must produce
// byte-identical results and telemetry. Run under -race in CI, this
// also shakes out any unsynchronized state that could make the pair
// diverge.
func TestDeterminismDoubleRun(t *testing.T) {
	cfg := testCfg()
	cfg.NoC.Mode = config.VC2
	first := determinismDigest(t, cfg)
	second := determinismDigest(t, cfg)
	if first != second {
		t.Fatalf("identical configs diverged:\n first %s\nsecond %s", first, second)
	}
}

// TestDeterminismDoubleRunWithFaults extends the contract to an active
// fault schedule: injection draws from seeded splitmix64 streams, so a
// faulty run must be exactly as reproducible as a clean one.
func TestDeterminismDoubleRunWithFaults(t *testing.T) {
	cfg := faultCfg()
	cfg.Faults.Seed = 99
	first := determinismDigest(t, cfg)
	second := determinismDigest(t, cfg)
	if first != second {
		t.Fatalf("identical faulty configs diverged:\n first %s\nsecond %s", first, second)
	}
}

// TestDeterminism2x2Engines widens the contract across the engine axis:
// for each fault condition, running the per-cycle loop twice and the
// skip-ahead loop twice must yield one identical digest across all four
// runs. Engine choice is a performance knob, never an observable one.
// Run under -race in CI like the double-run tests above.
func TestDeterminism2x2Engines(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() config.Config
	}{
		{"clean", func() config.Config {
			cfg := testCfg()
			cfg.NoC.Mode = config.VC2
			return cfg
		}},
		{"faulty", func() config.Config {
			cfg := faultCfg()
			cfg.Faults.Seed = 99
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want string
			for _, eng := range []config.Engine{config.EngineTick, config.EngineEvent} {
				for rep := 0; rep < 2; rep++ {
					cfg := tc.cfg()
					cfg.Engine = eng
					got := determinismDigest(t, cfg)
					if want == "" {
						want = got
					} else if got != want {
						t.Fatalf("engine=%v rep=%d digest %s != %s", eng, rep, got, want)
					}
				}
			}
		})
	}
}
