package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

func testCfg() config.Config {
	cfg := config.Scaled()
	cfg.MaxGPUCycles = 3_000_000
	return cfg
}

func gpuDesc(t *testing.T, id string, sms []int, scale float64) KernelDesc {
	t.Helper()
	p, err := workload.GPUProfileByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return KernelDesc{GPU: &p, SMs: sms, Scale: scale}
}

func pimDesc(t *testing.T, id string, sms []int, scale float64) KernelDesc {
	t.Helper()
	p, err := workload.PIMProfileByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return KernelDesc{PIM: &p, SMs: sms, Scale: scale, Base: 512 << 20}
}

func mustRun(t *testing.T, cfg config.Config, policy string, descs []KernelDesc) *Result {
	t.Helper()
	sys, err := New(cfg, core.Factory(policy, cfg.Sched), descs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStandaloneGPUKernelCompletes(t *testing.T) {
	cfg := testCfg()
	res := mustRun(t, cfg, "fr-fcfs", []KernelDesc{gpuDesc(t, "G8", AllSMs(cfg), 0.3)})
	if res.Aborted {
		t.Fatalf("standalone GPU run aborted: %+v", res.Kernels[0])
	}
	k := res.Kernels[0]
	if !k.Finished {
		t.Fatalf("kernel did not finish: %+v", k)
	}
	if k.Completed != k.Total {
		t.Fatalf("completed %d of %d", k.Completed, k.Total)
	}
	t.Logf("G8 standalone: %d requests in %d GPU cycles (%.1f req/kcycle), RBHR %.2f",
		k.Total, k.FirstFinish, res.Stats.MCArrivalRate(0), res.Stats.TotalChannel().RBHR())
}

func TestStandalonePIMKernelCompletes(t *testing.T) {
	cfg := testCfg()
	_, pimSMs := GPUAndPIMSMs(cfg)
	res := mustRun(t, cfg, "fr-fcfs", []KernelDesc{pimDesc(t, "P1", pimSMs, 0.3)})
	if res.Aborted {
		t.Fatalf("standalone PIM run aborted: %+v", res.Kernels[0])
	}
	k := res.Kernels[0]
	if !k.Finished {
		t.Fatalf("kernel did not finish: %+v", k)
	}
	tc := res.Stats.TotalChannel()
	if tc.PIMOps == 0 {
		t.Fatal("no PIM ops executed")
	}
	// All-bank lockstep execution: BLP must equal the bank count.
	if blp := tc.BLP(); blp < float64(cfg.Memory.Banks)*0.9 {
		t.Errorf("PIM BLP = %.2f, want close to %d", blp, cfg.Memory.Banks)
	}
	// Block structure yields high lockstep row locality.
	pimLoc := float64(tc.PIMRowHits) / float64(tc.PIMRowHits+tc.PIMRowMisses)
	if pimLoc < 0.8 {
		t.Errorf("PIM row locality = %.3f, want > 0.8", pimLoc)
	}
	t.Logf("P1 standalone: %d ops in %d GPU cycles, locality %.3f", k.Total, k.FirstFinish, pimLoc)
}

func TestCompetitiveCoExecutionCompletes(t *testing.T) {
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	for _, policy := range []string{"fcfs", "fr-fcfs", "fr-rr-fcfs", "f3fs"} {
		t.Run(policy, func(t *testing.T) {
			res := mustRun(t, cfg, policy, []KernelDesc{
				gpuDesc(t, "G8", gpuSMs, 0.3),
				pimDesc(t, "P2", pimSMs, 0.3),
			})
			for _, k := range res.Kernels {
				if !k.Finished {
					t.Errorf("%s: kernel %s did not finish (completed %d/%d, aborted=%v)",
						policy, k.Label, k.Completed, k.Total, res.Aborted)
				}
			}
			tc := res.Stats.TotalChannel()
			if tc.Switches == 0 {
				t.Errorf("%s: no mode switches in co-execution", policy)
			}
			t.Logf("%s: gpu=%d cycles, switches=%d, drain/switch=%.1f",
				policy, res.GPUCycles, tc.Switches, tc.DrainPerSwitch())
		})
	}
}

func TestL1FiltersTraffic(t *testing.T) {
	base := testCfg()
	run := func(l1 bool) *Result {
		cfg := base
		if !l1 {
			cfg.Cache.L1Bytes = 0
		}
		return mustRun(t, cfg, "fr-fcfs", []KernelDesc{gpuDesc(t, "G8", AllSMs(cfg), 0.2)})
	}
	with := run(true)
	without := run(false)
	if !with.Kernels[0].Finished || !without.Kernels[0].Finished {
		t.Fatal("runs did not finish")
	}
	// Same kernel work, but the L1 absorbs reuse before the NoC.
	if with.Stats.Apps[0].NoCInjected >= without.Stats.Apps[0].NoCInjected {
		t.Errorf("L1 did not filter interconnect traffic: %d vs %d",
			with.Stats.Apps[0].NoCInjected, without.Stats.Apps[0].NoCInjected)
	}
	// Completion accounting is preserved in both configurations.
	for _, res := range []*Result{with, without} {
		if res.Kernels[0].Completed != res.Kernels[0].Total {
			t.Errorf("completed %d of %d", res.Kernels[0].Completed, res.Kernels[0].Total)
		}
	}
}

// TestL1WritebackThroughL2DoesNotLeak reproduces the MSHR-leak scenario:
// a write-heavy kernel whose dirty L1 evictions miss in the L2 must still
// complete every request (the L1 writeback becomes an L2 fetch primary
// whose completion must fill the L2).
func TestL1WritebackThroughL2DoesNotLeak(t *testing.T) {
	cfg := testCfg()
	p, err := workload.GPUProfileByID("G5") // 60% reads: heavy store traffic
	if err != nil {
		t.Fatal(err)
	}
	p.Reuse = 0.6 // churn the L1 with re-written lines
	res := mustRun(t, cfg, "fr-fcfs", []KernelDesc{{GPU: &p, SMs: AllSMs(cfg), Scale: 0.3}})
	k := res.Kernels[0]
	if !k.Finished || k.Completed != k.Total {
		t.Fatalf("write-heavy kernel leaked requests: %d of %d (aborted=%v)",
			k.Completed, k.Total, res.Aborted)
	}
}

func TestSamplingTimeline(t *testing.T) {
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	sys, err := New(cfg, core.Factory("fr-fcfs", cfg.Sched), []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.1),
		pimDesc(t, "P1", pimSMs, 0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableSampling(1000)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 2 {
		t.Fatalf("samples = %d over %d cycles", len(res.Samples), res.GPUCycles)
	}
	for i, s := range res.Samples {
		if s.GPUCycle%1000 != 0 {
			t.Errorf("sample %d at off-interval cycle %d", i, s.GPUCycle)
		}
		if len(s.Completed) != 2 {
			t.Fatalf("sample %d has %d apps", i, len(s.Completed))
		}
		if i > 0 {
			prev := res.Samples[i-1]
			if s.GPUCycle <= prev.GPUCycle {
				t.Error("samples not monotonic in time")
			}
			if s.Completed[0] < prev.Completed[0] || s.Completed[1] < prev.Completed[1] {
				// Restarts reset per-run counters; cumulative app
				// completion in Stats must still be monotonic, but
				// the per-kernel counter may drop at a relaunch.
				// Only flag drops without a restart nearby.
				continue
			}
			if s.Switches < prev.Switches {
				t.Error("switch counter went backwards")
			}
		}
		if s.MemQ < 0 || s.PIMQ < 0 {
			t.Error("negative queue occupancy")
		}
	}
}

func TestIPolyMappingRuns(t *testing.T) {
	cfg := testCfg()
	cfg.Memory.Mapping = config.MapIPoly
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	res := mustRun(t, cfg, "fr-fcfs", []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.1),
		pimDesc(t, "P2", pimSMs, 0.1),
	})
	for _, k := range res.Kernels {
		if !k.Finished {
			t.Errorf("kernel %s unfinished under I-poly mapping", k.Label)
		}
	}
	// PIM warps still pin to their channels (the generator inverts the
	// hash), so lockstep execution stays per channel.
	if res.Stats.TotalChannel().PIMOps == 0 {
		t.Error("no PIM ops under I-poly mapping")
	}
}

func TestVC2ReducesMEMDenialUnderPIMFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("PIM-flood comparison takes seconds; skipped in -short mode")
	}
	base := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(base)
	run := func(mode config.VCMode) *Result {
		cfg := base
		cfg.NoC.Mode = mode
		return mustRun(t, cfg, "mem-first", []KernelDesc{
			gpuDesc(t, "G8", gpuSMs, 0.25),
			pimDesc(t, "P1", pimSMs, 0.25),
		})
	}
	vc1 := run(config.VC1)
	vc2 := run(config.VC2)
	// MEM-First suffers most from PIM head-of-line blocking under VC1;
	// VC2 should raise the GPU kernel's MC arrival rate (Fig. 6).
	r1 := vc1.Stats.MCArrivalRate(0)
	r2 := vc2.Stats.MCArrivalRate(0)
	t.Logf("MEM arrival rate: VC1 %.2f, VC2 %.2f req/kcycle", r1, r2)
	if r2 <= r1 {
		t.Errorf("VC2 did not improve MEM arrival rate: VC1 %.2f >= VC2 %.2f", r1, r2)
	}
}
