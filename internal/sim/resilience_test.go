package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sched"
)

func faultCfg() config.Config {
	cfg := testCfg()
	cfg.Faults = faults.Schedule{
		DRAMRetryProb:   0.002,
		DRAMRetryCycles: 12,
		NoCStallProb:    0.001,
		NoCStallCycles:  24,
		ThrottlePeriod:  40_000,
		ThrottleWindow:  2_000,
	}
	return cfg
}

// TestZeroFaultScheduleBitIdentical pins that a zero fault schedule (and
// one that only names a seed) leaves runs bit-identical to a build with
// no fault subsystem at all: the golden competitive cycle counts of the
// telemetry-era pins must not move.
func TestZeroFaultScheduleBitIdentical(t *testing.T) {
	cfg := testCfg()
	cfg.NoC.Mode = config.VC2
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	descs := []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.3),
		pimDesc(t, "P1", pimSMs, 0.3),
	}

	base := mustRun(t, cfg, "f3fs", descs)
	if base.Faults != nil {
		t.Fatal("zero schedule must not attach fault counts")
	}

	// The fault-free golden cycle counts themselves are pinned by
	// golden_test.go; here we pin that carrying a Faults field — even a
	// seed-only one — does not perturb the simulation.
	seeded := cfg
	seeded.Faults = faults.Schedule{Seed: 12345} // seed alone: inactive
	res := mustRun(t, seeded, "f3fs", descs)
	bsw, rsw := base.Stats.TotalChannel().Switches, res.Stats.TotalChannel().Switches
	if res.GPUCycles != base.GPUCycles || rsw != bsw {
		t.Fatalf("seed-only schedule moved the run: %d/%d vs %d/%d",
			res.GPUCycles, rsw, base.GPUCycles, bsw)
	}
}

// TestFaultScheduleDeterministic pins that a nonzero schedule both
// perturbs the run and reproduces it exactly under the same seed.
func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := faultCfg()
	cfg.NoC.Mode = config.VC2
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	descs := []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.3),
		pimDesc(t, "P1", pimSMs, 0.3),
	}

	clean := cfg
	clean.Faults = faults.Schedule{}
	base := mustRun(t, clean, "f3fs", descs)

	a := mustRun(t, cfg, "f3fs", descs)
	b := mustRun(t, cfg, "f3fs", descs)
	if a.GPUCycles != b.GPUCycles || a.Stats.TotalChannel().Switches != b.Stats.TotalChannel().Switches {
		t.Fatalf("same schedule diverged: %d/%d vs %d/%d",
			a.GPUCycles, a.Stats.TotalChannel().Switches, b.GPUCycles, b.Stats.TotalChannel().Switches)
	}
	if a.Faults == nil {
		t.Fatal("active schedule must attach fault counts")
	}
	if *a.Faults != *b.Faults {
		t.Fatalf("fault counts diverged: %+v vs %+v", *a.Faults, *b.Faults)
	}
	if a.Faults.DRAMRetries == 0 || a.Faults.ThrottledCycles == 0 || a.Faults.NoCLinkStalls == 0 {
		t.Fatalf("expected every fault class to fire, got %+v", *a.Faults)
	}
	if a.GPUCycles == base.GPUCycles {
		t.Fatal("faulty run matched the fault-free cycle count; injection had no effect")
	}

	// A different fault seed is a different (but still complete) run.
	cfg2 := cfg
	cfg2.Faults.Seed = 777
	c := mustRun(t, cfg2, "f3fs", descs)
	if c.GPUCycles == a.GPUCycles && *c.Faults == *a.Faults {
		t.Fatal("changing the fault seed changed nothing")
	}
}

// starvePolicy never leaves MEM mode, starving any PIM kernel.
type starvePolicy struct{}

func (starvePolicy) Name() string                              { return "starve-pim" }
func (starvePolicy) DesiredMode(sched.View) sched.Mode         { return sched.ModeMEM }
func (starvePolicy) MemRowHitsAllowed(sched.View) bool         { return true }
func (starvePolicy) MemConflictServiceAllowed(sched.View) bool { return true }
func (starvePolicy) OnIssue(sched.View, sched.IssueInfo)       {}
func (starvePolicy) OnSwitch(sched.View, sched.Mode)           {}
func (starvePolicy) Reset()                                    {}

// TestStarvationReturnsTypedError crafts a stall — a policy that never
// services PIM mode beside a PIM kernel — and checks the abort surfaces
// as a typed ErrStarved embedding queue state and a final snapshot.
func TestStarvationReturnsTypedError(t *testing.T) {
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	descs := []KernelDesc{
		gpuDesc(t, "G17", gpuSMs, 0.2),
		pimDesc(t, "P1", pimSMs, 0.2),
	}
	sys, err := New(cfg, func() sched.Policy { return starvePolicy{} }, descs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("starved run not marked aborted")
	}
	st := res.Starved
	if st == nil {
		t.Fatal("aborted-by-starvation run carries no ErrStarved")
	}
	if st.GPUCycle == 0 || st.GPUCycle != res.GPUCycles {
		t.Fatalf("ErrStarved cycle %d disagrees with run length %d", st.GPUCycle, res.GPUCycles)
	}
	if st.Window == 0 || st.GPUCycle-st.LastProgress <= st.Window {
		t.Fatalf("starvation window bookkeeping off: %+v", st)
	}
	if len(st.Queues) != cfg.Memory.Channels {
		t.Fatalf("queue snapshot covers %d channels, want %d", len(st.Queues), cfg.Memory.Channels)
	}
	pimQueued := 0
	for _, q := range st.Queues {
		if q.Mode != "MEM" {
			t.Fatalf("starve policy left channel %d in mode %s", q.Channel, q.Mode)
		}
		pimQueued += q.PIMQ
	}
	if pimQueued == 0 {
		t.Fatal("starved PIM kernel has nothing queued at the controllers")
	}
	if st.Snapshot.GPUCycle != res.GPUCycles || len(st.Snapshot.Channels) != cfg.Memory.Channels {
		t.Fatalf("embedded snapshot malformed: cycle %d, %d channels", st.Snapshot.GPUCycle, len(st.Snapshot.Channels))
	}
	if got := st.Error(); got == "" {
		t.Fatal("empty Error() string")
	}
	// The starved PIM kernel must show zero progress. (Under VC1 its
	// parked requests also head-of-line-block the GPU kernel — the
	// paper's denial-of-service mechanism — so the whole system wedges.)
	if res.Kernels[1].Completed != 0 {
		t.Fatalf("unexpected progress split: %+v", res.Kernels)
	}
}

// TestRunContextCancellation checks both pre-cancelled contexts and
// deadlines expiring mid-run surface as *ErrInterrupted.
func TestRunContextCancellation(t *testing.T) {
	cfg := testCfg()
	descs := []KernelDesc{gpuDesc(t, "G8", AllSMs(cfg), 0.3)}

	sys, err := New(cfg, core.Factory("fr-fcfs", cfg.Sched), descs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sys.RunContext(ctx)
	if res != nil {
		t.Fatal("cancelled run returned a Result")
	}
	var ie *ErrInterrupted
	if !errors.As(err, &ie) {
		t.Fatalf("want *ErrInterrupted, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	if len(ie.Queues) != cfg.Memory.Channels {
		t.Fatalf("interrupt snapshot covers %d channels", len(ie.Queues))
	}

	sys2, err := New(cfg, core.Factory("fr-fcfs", cfg.Sched), descs)
	if err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done() // the deadline has lapsed before the run starts
	_, err = sys2.RunContext(dctx)
	if !errors.As(err, &ie) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline-exceeded *ErrInterrupted, got %v", err)
	}

	// A System that was interrupted stays single-use.
	if _, err := sys.RunContext(context.Background()); err == nil {
		t.Fatal("re-running an interrupted System should fail")
	}
}
