package sim

import (
	"fmt"

	"repro/internal/telemetry"
)

// QueueSnapshot is one channel's controller state at the moment a run
// was interrupted, starved, or crashed — the per-channel core of the
// diagnostic bundle harnesses attach to structured run errors.
type QueueSnapshot struct {
	Channel   int    `json:"channel"`
	MemQ      int    `json:"memq"`
	PIMQ      int    `json:"pimq"`
	Mode      string `json:"mode"`
	Switching bool   `json:"switching"`
}

func (s *System) queueSnapshots() []QueueSnapshot {
	qs := make([]QueueSnapshot, len(s.mcs))
	for ch, mc := range s.mcs {
		m, p := mc.QueueLens()
		qs[ch] = QueueSnapshot{
			Channel:   ch,
			MemQ:      m,
			PIMQ:      p,
			Mode:      mc.Mode().String(),
			Switching: mc.Switching(),
		}
	}
	return qs
}

// Diagnostics reports the system's current position and queue state.
// Harnesses call it after recovering a panic or observing a timeout to
// build a *RunError; it is safe at any point of a run.
func (s *System) Diagnostics() (gpuCycle, dramCycle uint64, queues []QueueSnapshot) {
	return s.gpuCycle, s.dramCycle, s.queueSnapshots()
}

// ErrStarved reports that a run made no first-run progress for a whole
// detection window — the starvation/deadlock abort of Sec. VI's
// denial-of-service cases. It is attached to Result.Starved (the run
// still returns a Result with Aborted set, so fairness-0 data points
// stay analyzable) and embeds the final telemetry snapshot and queue
// state for post-mortems.
type ErrStarved struct {
	// GPUCycle is where the run aborted; LastProgress the last cycle any
	// unfinished kernel completed a request; Window the detection window.
	GPUCycle     uint64 `json:"gpu_cycle"`
	LastProgress uint64 `json:"last_progress"`
	Window       uint64 `json:"window"`
	// Queues is the per-channel controller state at abort.
	Queues []QueueSnapshot `json:"queues"`
	// Snapshot is the final telemetry sample (zero-valued metric fields
	// when telemetry was disabled).
	Snapshot telemetry.Snapshot `json:"snapshot"`
}

func (e *ErrStarved) Error() string {
	return fmt.Sprintf("sim: starved at GPU cycle %d (no progress since %d, window %d)",
		e.GPUCycle, e.LastProgress, e.Window)
}

// ErrInterrupted reports that RunContext stopped early because its
// context was cancelled or its deadline expired. Unwrap yields the
// context's error so callers can errors.Is against context.Canceled or
// context.DeadlineExceeded.
type ErrInterrupted struct {
	GPUCycle  uint64          `json:"gpu_cycle"`
	DRAMCycle uint64          `json:"dram_cycle"`
	Queues    []QueueSnapshot `json:"queues"`
	Err       error           `json:"-"`
}

func (e *ErrInterrupted) Error() string {
	return fmt.Sprintf("sim: interrupted at GPU cycle %d: %v", e.GPUCycle, e.Err)
}

func (e *ErrInterrupted) Unwrap() error { return e.Err }
