package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// telemetryRun builds a small co-execution with an attached collector
// and runs it.
func telemetryRun(t *testing.T, interval uint64) (*Result, *telemetry.Collector) {
	t.Helper()
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	sys, err := New(cfg, core.Factory("fr-fcfs", cfg.Sched), []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.05),
		pimDesc(t, "P1", pimSMs, 0.05),
	})
	if err != nil {
		t.Fatal(err)
	}
	col := sys.EnableTelemetry(interval, 0)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, col
}

// TestTelemetrySamplerMatchesStats cross-checks the epoch sampler against
// the simulator's own accumulators: the last snapshot's cumulative
// occupancy sums must equal a prefix of the final stats.Channel values,
// and per-epoch averages reconstructed from adjacent snapshots must use
// exactly the cycles the controller sampled.
func TestTelemetrySamplerMatchesStats(t *testing.T) {
	res, col := telemetryRun(t, 512)
	snaps := col.Sampler.Snapshots()
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots at interval 512 over %d cycles", len(snaps), res.GPUCycles)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].GPUCycle <= snaps[i-1].GPUCycle {
			t.Fatalf("snapshots out of order: %d then %d", snaps[i-1].GPUCycle, snaps[i].GPUCycle)
		}
		for ch := range snaps[i].Channels {
			cur, prev := snaps[i].Channels[ch], snaps[i-1].Channels[ch]
			if cur.SampledCycles < prev.SampledCycles ||
				cur.MemQOccupancySum < prev.MemQOccupancySum ||
				cur.PIMQOccupancySum < prev.PIMQOccupancySum {
				t.Fatalf("channel %d accumulators regressed between snapshots", ch)
			}
			// Hand-compute the epoch's average MEM queue occupancy; it
			// must be bounded by the queue capacity.
			dc := cur.SampledCycles - prev.SampledCycles
			if dc > 0 {
				avg := float64(cur.MemQOccupancySum-prev.MemQOccupancySum) / float64(dc)
				if avg < 0 || avg > 256 {
					t.Fatalf("implausible epoch avg MEM occupancy %g", avg)
				}
			}
		}
	}
	// The final stats continue past the last snapshot, never the reverse.
	last := snaps[len(snaps)-1]
	for ch := range last.Channels {
		st := &res.Stats.Channels[ch]
		if last.Channels[ch].SampledCycles > st.SampledCycles {
			t.Fatalf("channel %d: snapshot sampled %d cycles, final stats only %d",
				ch, last.Channels[ch].SampledCycles, st.SampledCycles)
		}
		if last.Channels[ch].MemQOccupancySum > st.MemQOccupancySum {
			t.Fatalf("channel %d: snapshot occupancy sum exceeds final stats", ch)
		}
	}
}

// TestTelemetryModeResidency checks the controller-side instrumentation:
// every sampled DRAM cycle is attributed to exactly one of MEM service,
// PIM service, or draining, so the three residency counters partition
// stats.Channel.SampledCycles.
func TestTelemetryModeResidency(t *testing.T) {
	res, col := telemetryRun(t, 2048)
	for ch := range res.Stats.Channels {
		cm := col.Channel(ch)
		got := cm.MemModeCycles.Value() + cm.PIMModeCycles.Value() + cm.DrainCycles.Value()
		want := res.Stats.Channels[ch].SampledCycles
		if got != want {
			t.Fatalf("channel %d: residency %d != sampled cycles %d", ch, got, want)
		}
		if cm.PIMModeCycles.Value() == 0 {
			t.Fatalf("channel %d: no PIM-mode residency despite a PIM kernel", ch)
		}
	}
	// Drain latency observations must agree with the switch count: every
	// finished switch records one observation.
	for ch := range res.Stats.Channels {
		if got, want := col.Channel(ch).DrainLatency.Count(), res.Stats.Channels[ch].Switches; got != want {
			t.Fatalf("channel %d: %d drain observations, %d switches", ch, got, want)
		}
	}
}

// TestTelemetryManifestAttached checks that every run carries a manifest
// whose simulation fields match the result.
func TestTelemetryManifestAttached(t *testing.T) {
	res, col := telemetryRun(t, 4096)
	m := res.Manifest
	if m == nil {
		t.Fatal("no manifest on result")
	}
	if m.GPUCycles != res.GPUCycles || m.DRAMCycles != res.DRAMCycles || m.Aborted != res.Aborted {
		t.Fatalf("manifest run outcome %+v mismatches result (%d, %d, %v)",
			m, res.GPUCycles, res.DRAMCycles, res.Aborted)
	}
	cfg := testCfg()
	if m.Channels != cfg.Memory.Channels || m.SMs != cfg.GPU.NumSMs || m.Seed != cfg.Seed {
		t.Fatalf("manifest machine shape %+v mismatches config", m)
	}
	if len(m.Kernels) != 2 {
		t.Fatalf("manifest kernels = %v", m.Kernels)
	}
	if m.ConfigHash == "" || m.ConfigHash == "unhashable" {
		t.Fatalf("config hash = %q", m.ConfigHash)
	}
	if m.SampleInterval != 4096 || m.Samples != len(col.Sampler.Snapshots()) {
		t.Fatalf("manifest sampling fields %d/%d", m.SampleInterval, m.Samples)
	}
	if res.Telemetry != col {
		t.Fatal("result does not carry the collector")
	}
}

// TestTelemetryDoesNotPerturbSimulation runs the same system with and
// without a collector: cycle counts and per-channel counters must be
// bit-identical (telemetry observes, never steers).
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	descs := func() []KernelDesc {
		return []KernelDesc{
			gpuDesc(t, "G8", gpuSMs, 0.05),
			pimDesc(t, "P1", pimSMs, 0.05),
		}
	}
	plain := mustRun(t, cfg, "fr-fcfs", descs())
	res, _ := telemetryRun(t, 512)
	if plain.GPUCycles != res.GPUCycles || plain.DRAMCycles != res.DRAMCycles {
		t.Fatalf("telemetry changed the run: %d/%d vs %d/%d",
			plain.GPUCycles, plain.DRAMCycles, res.GPUCycles, res.DRAMCycles)
	}
	for ch := range plain.Stats.Channels {
		a, b := plain.Stats.Channels[ch], res.Stats.Channels[ch]
		if a != b {
			t.Fatalf("channel %d stats diverged with telemetry on", ch)
		}
	}
}

// TestTelemetryGlobalSwitch verifies New auto-attaches a collector while
// the process-wide switch is on.
func TestTelemetryGlobalSwitch(t *testing.T) {
	telemetry.Enable(true)
	defer telemetry.Enable(false)
	cfg := testCfg()
	gpuSMs, _ := GPUAndPIMSMs(cfg)
	sys, err := New(cfg, core.Factory("fr-fcfs", cfg.Sched), []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.02),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("no collector despite telemetry.Enable(true)")
	}
	if len(res.Telemetry.Sampler.Snapshots()) == 0 {
		t.Fatal("no snapshots recorded")
	}
	if res.Manifest.HeapAllocBytes == 0 {
		t.Fatal("manifest allocation counters empty while enabled")
	}
}
