package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"hash"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/workload"
)

func workloadGPU(id string) (*workload.GPUProfile, error) {
	p, err := workload.GPUProfileByID(id)
	if err != nil {
		return nil, err
	}
	return &p, nil
}

func workloadPIM(id string) (*workload.PIMProfile, error) {
	p, err := workload.PIMProfileByID(id)
	if err != nil {
		return nil, err
	}
	return &p, nil
}

// FuzzNextEvent drives the equivalence contract with randomized request
// streams and fault schedules: for any workload the fuzzer can construct,
// the skip-ahead engine must never jump past a cycle at which the
// per-cycle engine's observable state changes. The check is per-epoch,
// not merely final: both engines sample telemetry on a fine epoch grid,
// and every epoch's digest must match — a jump that skipped a state
// change would desynchronize the first epoch containing it.
func FuzzNextEvent(f *testing.F) {
	// Seed corpus spanning the workload classes: MEM-only, PIM-only,
	// mixed, each policy family, both VC modes, clean and faulty.
	f.Add(uint8(0), uint8(0), uint8(0), false, int64(1), uint8(0), int64(0))
	f.Add(uint8(1), uint8(255), uint8(1), true, int64(7), uint8(0), int64(0))
	f.Add(uint8(255), uint8(1), uint8(2), false, int64(3), uint8(9), int64(42))
	f.Add(uint8(2), uint8(2), uint8(3), true, int64(11), uint8(255), int64(5))
	f.Add(uint8(3), uint8(1), uint8(4), true, int64(2), uint8(37), int64(99))

	gpuIDs := []string{"G4", "G8", "G13", "G17"}
	pimIDs := []string{"P1", "P2"}
	policies := []string{"fcfs", "fr-fcfs", "fr-rr-fcfs", "mem-first", "f3fs"}

	f.Fuzz(func(t *testing.T, gpuSel, pimSel, polSel uint8, vc2 bool, seed int64, faultSel uint8, faultSeed int64) {
		cfg := config.Scaled()
		// Bound each case: the fuzzer explores breadth, not length.
		cfg.MaxGPUCycles = 120_000
		if vc2 {
			cfg.NoC.Mode = config.VC2
		}
		// Derive a bounded fault schedule from the selector; 0 keeps the
		// run clean.
		if faultSel > 0 {
			cfg.Faults = faults.Schedule{
				Seed:            faultSeed,
				DRAMRetryProb:   float64(faultSel&0x3) / 500,
				DRAMRetryCycles: 8 + int64(faultSel&0xF),
				NoCStallProb:    float64((faultSel>>2)&0x3) / 1000,
				NoCStallCycles:  16 + int64(faultSel&0x7),
				ThrottlePeriod:  uint64(20_000 + 1000*int(faultSel>>4)),
				ThrottleWindow:  uint64(500 + 100*int(faultSel&0xF)),
			}
		}
		policy := policies[int(polSel)%len(policies)]

		// gpuSel/pimSel == 0 drops that kernel (PIM-only / MEM-only
		// runs); at least one kernel always remains.
		var descs func(cfg config.Config) []KernelDesc
		descs = func(cfg config.Config) []KernelDesc {
			gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
			var out []KernelDesc
			if gpuSel != 0 || pimSel == 0 {
				p, err := workloadGPU(gpuIDs[int(gpuSel)%len(gpuIDs)])
				if err != nil {
					t.Fatal(err)
				}
				sms := gpuSMs
				if pimSel == 0 {
					sms = AllSMs(cfg)
				}
				out = append(out, KernelDesc{GPU: p, SMs: sms, Scale: 0.04, Seed: seed})
			}
			if pimSel != 0 {
				p, err := workloadPIM(pimIDs[int(pimSel)%len(pimIDs)])
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, KernelDesc{PIM: p, SMs: pimSMs, Scale: 0.04, Base: 512 << 20, Seed: seed})
			}
			return out
		}

		run := func(eng config.Engine) *Result {
			c := cfg
			c.Engine = eng
			sys, err := New(c, core.Factory(policy, c.Sched), descs(c))
			if err != nil {
				t.Fatal(err)
			}
			sys.EnableSampling(250)
			sys.EnableTelemetry(256, 0)
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}

		tick := run(config.EngineTick)
		event := run(config.EngineEvent)

		// Per-epoch digests: localize a divergence to the first epoch
		// whose sampled state differs.
		ts := tick.Telemetry.Sampler.Snapshots()
		es := event.Telemetry.Sampler.Snapshots()
		n := len(ts)
		if len(es) < n {
			n = len(es)
		}
		for i := 0; i < n; i++ {
			td := snapDigest(t, sha256.New(), ts[i])
			ed := snapDigest(t, sha256.New(), es[i])
			if td != ed {
				t.Fatalf("engines diverged at epoch %d (cycle %d): tick %s, event %s\n tick  %+v\n event %+v",
					i, ts[i].GPUCycle, td[:12], ed[:12], ts[i], es[i])
			}
		}
		if len(ts) != len(es) {
			t.Fatalf("epoch counts differ: tick %d, event %d", len(ts), len(es))
		}
		if td, ed := resultDigest(t, tick), resultDigest(t, event); td != ed {
			t.Fatalf("final digests diverged with identical epoch series:\n tick  %s\n event %s", td, ed)
		}
	})
}

// snapDigest hashes one telemetry snapshot.
func snapDigest(t *testing.T, h hash.Hash, v any) string {
	t.Helper()
	if err := json.NewEncoder(h).Encode(v); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}
