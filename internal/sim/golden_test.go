package sim

import (
	"testing"
)

// Golden regression tests: exact cycle counts of small canned scenarios.
// These WILL change whenever the timing model, the scheduling engines, or
// the workload generators change behavior — that is their purpose: any
// unintentional behavioral drift fails loudly, and intentional changes
// update the constants in one place.
//
// All goldens use testCfg() (Scaled config, 8 channels, 20 SMs) at scale
// 0.1 with the default seed.

func goldenRun(t *testing.T, policy string, gpuID, pimID string) *Result {
	t.Helper()
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	descs := []KernelDesc{}
	if gpuID != "" {
		descs = append(descs, gpuDesc(t, gpuID, gpuSMs, 0.1))
	}
	if pimID != "" {
		descs = append(descs, pimDesc(t, pimID, pimSMs, 0.1))
	}
	return mustRun(t, cfg, policy, descs)
}

func TestGoldenCompetitiveF3FS(t *testing.T) {
	res := goldenRun(t, "f3fs", "G8", "P1")
	const wantCycles = 9434
	if res.GPUCycles != wantCycles {
		t.Errorf("G8xP1/f3fs GPU cycles = %d, golden %d (timing model drift?)", res.GPUCycles, wantCycles)
	}
	tc := res.Stats.TotalChannel()
	const wantSwitches = 66
	if tc.Switches != wantSwitches {
		t.Errorf("switches = %d, golden %d", tc.Switches, wantSwitches)
	}
}

func TestGoldenCompetitiveFCFS(t *testing.T) {
	res := goldenRun(t, "fcfs", "G8", "P1")
	const wantCycles = 28530
	if res.GPUCycles != wantCycles {
		t.Errorf("G8xP1/fcfs GPU cycles = %d, golden %d", res.GPUCycles, wantCycles)
	}
}

func TestGoldenPIMStandalone(t *testing.T) {
	res := goldenRun(t, "fr-fcfs", "", "P4")
	const wantCycles = 6148
	if res.GPUCycles != wantCycles {
		t.Errorf("P4 standalone GPU cycles = %d, golden %d", res.GPUCycles, wantCycles)
	}
	tc := res.Stats.TotalChannel()
	if tc.PIMOps != uint64(res.Kernels[0].Total) {
		t.Errorf("PIM ops %d != total %d", tc.PIMOps, res.Kernels[0].Total)
	}
}

func TestGoldenGPUStandalone(t *testing.T) {
	cfg := testCfg()
	res := mustRun(t, cfg, "fr-fcfs", []KernelDesc{gpuDesc(t, "G17", AllSMs(cfg), 0.1)})
	const wantCycles = 1701
	if res.GPUCycles != wantCycles {
		t.Errorf("G17 standalone GPU cycles = %d, golden %d", res.GPUCycles, wantCycles)
	}
}
