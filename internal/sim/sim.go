// Package sim wires the full system of Fig. 1 and Fig. 7 together and
// runs it cycle by cycle: SMs (package gpu) inject kernel request streams
// into the crossbar (package noc), whose per-channel queues feed the L2
// slices (package cache) for MEM traffic and bypass straight to the
// L2->DRAM queues for PIM traffic; the per-channel memory controllers
// (package memctrl) arbitrate MEM/PIM modes under a scheduling policy and
// drive the DRAM timing model (package dram).
//
// Two clock domains are modeled: the SMs, crossbar and L2 run at the GPU
// core clock (1132 MHz in Table I) while the controllers and DRAM run at
// the DRAM clock (850 MHz); the L2->DRAM queues are the domain crossing.
package sim

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/addrmap"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/memctrl"
	"repro/internal/noc"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// KernelDesc describes one kernel to launch. Exactly one of GPU and PIM
// must be set.
type KernelDesc struct {
	// GPU selects a Rodinia-style MEM kernel profile.
	GPU *workload.GPUProfile
	// PIM selects a PIM kernel profile.
	PIM *workload.PIMProfile
	// SMs lists the streaming multiprocessors the kernel occupies.
	SMs []int
	// Base places the kernel's footprint in physical memory; co-running
	// kernels should use disjoint regions (MPS gives each process its
	// own address space).
	Base uint64
	// Scale multiplies the kernel's request/block count (1.0 = the
	// profile's default size).
	Scale float64
	// Seed perturbs the kernel's address randomness; 0 uses the system
	// seed.
	Seed int64
}

// KernelResult reports one kernel's outcome.
type KernelResult struct {
	// Label names the kernel ("G7/heartwall", "P1/stream-add").
	Label string
	// App is the kernel's application ID (its index in the descriptor
	// list).
	App int
	// Finished reports whether the first run completed.
	Finished bool
	// FirstFinish is the GPU cycle of first-run completion (valid when
	// Finished).
	FirstFinish uint64
	// EstFinish is FirstFinish when finished; otherwise a linear
	// extrapolation from partial progress (0 when no progress at all —
	// total starvation).
	EstFinish uint64
	// Runs, Issued and Completed describe progress.
	Runs, Issued, Completed int
	// Total is the per-run request count.
	Total int
	// StallCycles counts SM-cycles denied injection by backpressure.
	StallCycles uint64
}

// Result is the outcome of one simulation.
type Result struct {
	// Stats holds the full measurement record.
	Stats *stats.Sim
	// Kernels holds per-kernel outcomes, indexed by app ID.
	Kernels []KernelResult
	// GPUCycles and DRAMCycles are the run length.
	GPUCycles, DRAMCycles uint64
	// Aborted reports that the run hit MaxGPUCycles or made no progress
	// (starvation) before every kernel finished once.
	Aborted bool
	// Samples holds the execution timeline when EnableSampling was
	// called (nil otherwise).
	Samples []Sample
	// Manifest identifies the run (config hash, seed, revision, wall
	// time). Always attached; the allocation counters inside are filled
	// only while telemetry is enabled.
	Manifest *telemetry.Manifest
	// Telemetry carries the run's metrics registry and sample ring when
	// telemetry was enabled (nil otherwise).
	Telemetry *telemetry.Collector
	// Starved details a starvation/deadlock abort (nil otherwise); when
	// set, Aborted is true. The run still returns a Result so fairness-0
	// data points stay analyzable.
	Starved *ErrStarved
	// Faults carries the injected-fault totals when the config had an
	// active fault schedule (nil otherwise).
	Faults *faults.Counts
}

// System is one configured simulation instance. Build with New, run with
// Run; a System is single-use.
type System struct {
	cfg    config.Config
	mapper addrmap.Mapper
	st     *stats.Sim

	network *noc.Network
	l1      []*cache.Slice // per SM (nil when L1Bytes == 0)
	l2      []*cache.Slice
	l2dram  []*noc.VCQueue
	mcs     []*memctrl.Controller
	kernels []*gpu.Kernel

	gpuCycle  uint64
	dramCycle uint64
	dramAccum int

	respRing [][]*request.Request
	respIdx  int

	idSeq uint64
	ran   bool
	isPIM []bool // per app: kernel submits PIM requests

	// noRestart disables the run-in-a-loop protocol: kernels run once
	// (the collaborative scenario, where total execution time is the
	// metric and both kernels belong to one application).
	noRestart bool

	sampleEvery uint64
	samples     []Sample

	tel      *telemetry.Collector
	telEvery uint64

	// flt is the fault injector; nil (no schedule) keeps the run
	// bit-identical to a fault-free build.
	flt *faults.Injector

	// injectFn is s.inject bound once at construction; taking the method
	// value inside step would allocate a receiver-bound closure every
	// cycle (hotalloc).
	injectFn gpu.InjectFunc

	// Event-engine state (nil/zero under config.EngineTick, which runs
	// the original per-cycle reference loop). kNext[i] is the next GPU
	// cycle kernel i must tick; mcNext[ch] the next DRAM cycle controller
	// ch must tick; respCount the responses scheduled but not yet
	// delivered; nocFaulty pins the crossbar to per-cycle ticking so the
	// link-stall RNG stream stays aligned with the reference engine.
	tickEngine bool
	kNext      []uint64
	mcNext     []uint64
	respCount  int
	nocFaulty  bool
}

// Sample is one point of the optional execution timeline (see
// EnableSampling): cumulative progress and instantaneous queue state at a
// GPU cycle.
type Sample struct {
	// GPUCycle is the sampling instant.
	GPUCycle uint64
	// Completed holds each app's cumulative completed requests.
	Completed []int
	// Switches is the cumulative mode-switch count across channels.
	Switches uint64
	// MemQ and PIMQ are the average controller queue occupancies at the
	// instant.
	MemQ, PIMQ float64
}

// EnableSampling records a timeline sample every interval GPU cycles;
// Result.Samples carries them. Call before Run.
func (s *System) EnableSampling(interval uint64) {
	if interval == 0 {
		interval = 1
	}
	s.sampleEvery = interval
}

func (s *System) takeSample() {
	var sw, memQ, pimQ uint64
	for _, mc := range s.mcs {
		m, p := mc.QueueLens()
		memQ += uint64(m)
		pimQ += uint64(p)
	}
	for i := range s.st.Channels {
		sw += s.st.Channels[i].Switches
	}
	completed := make([]int, len(s.kernels))
	for i, k := range s.kernels {
		completed[i] = k.Completed()
	}
	s.samples = append(s.samples, Sample{
		GPUCycle:  s.gpuCycle,
		Completed: completed,
		Switches:  sw,
		MemQ:      float64(memQ) / float64(len(s.mcs)),
		PIMQ:      float64(pimQ) / float64(len(s.mcs)),
	})
}

// EnableTelemetry attaches a telemetry collector to the system: per-channel
// and interconnect hot-path counters plus an epoch sampler recording every
// interval GPU cycles into a ring of ringCap snapshots (zeros pick the
// package defaults). Call before Run; returns the collector (also attached
// to Result.Telemetry). New calls this automatically when the process-wide
// telemetry.Enable switch is on.
func (s *System) EnableTelemetry(interval uint64, ringCap int) *telemetry.Collector {
	s.tel = telemetry.NewCollector(len(s.mcs), interval, ringCap)
	s.telEvery = s.tel.Sampler.Interval()
	for ch, mc := range s.mcs {
		mc.SetTelemetry(s.tel.Channel(ch))
	}
	s.network.SetTelemetry(s.tel.NoC())
	s.flt.SetTelemetry(s.tel)
	return s.tel
}

// takeTelemetrySample snapshots per-channel and per-app state into the
// collector's ring.
func (s *System) takeTelemetrySample() {
	s.tel.Sampler.Record(s.buildTelemetrySnapshot())
}

// buildTelemetrySnapshot assembles one time-series point. It is nil-tel
// safe — with telemetry disabled the cumulative metric fields stay zero
// but queue state, mode, and stats-backed fields are still filled — so
// ErrStarved can embed a final snapshot from any run.
func (s *System) buildTelemetrySnapshot() telemetry.Snapshot {
	// Close every controller's deferred accounting through the current
	// DRAM cycle so occupancy sums, residency counters and SampledCycles
	// match what the per-cycle engine would have accumulated by this
	// instant (a no-op under the tick engine and for ticked controllers).
	for _, mc := range s.mcs {
		mc.SyncTo(s.dramCycle)
	}
	snap := telemetry.Snapshot{
		GPUCycle:  s.gpuCycle,
		DRAMCycle: s.dramCycle,
		Channels:  make([]telemetry.ChannelSample, len(s.mcs)),
		Apps:      make([]telemetry.AppSample, len(s.kernels)),
	}
	for ch, mc := range s.mcs {
		st := &s.st.Channels[ch]
		m, p := mc.QueueLens()
		cs := telemetry.ChannelSample{
			MemQ:             m,
			PIMQ:             p,
			Mode:             mc.Mode().String(),
			Switches:         st.Switches,
			RBHR:             st.RBHR(),
			BLP:              st.BLP(),
			MemQOccupancySum: st.MemQOccupancySum,
			PIMQOccupancySum: st.PIMQOccupancySum,
			SampledCycles:    st.SampledCycles,
		}
		if cm := s.tel.Channel(ch); cm != nil {
			cs.MemModeCycles = cm.MemModeCycles.Value()
			cs.PIMModeCycles = cm.PIMModeCycles.Value()
			cs.DrainCycles = cm.DrainCycles.Value()
		}
		snap.Channels[ch] = cs
	}
	for app, k := range s.kernels {
		// Completed comes from the stats counter, which is monotonic
		// across kernel restarts (Kernel.Completed resets per run).
		snap.Apps[app] = telemetry.AppSample{
			Injected:    s.st.Apps[app].NoCInjected,
			Arrived:     s.st.Apps[app].MCArrived,
			Completed:   s.st.Apps[app].Completed,
			StallCycles: k.StallCycles,
		}
	}
	return snap
}

// SetRunOnce disables kernel relaunching: each kernel runs exactly once
// and the simulation ends when all have finished. Competitive sweeps keep
// the default (Sec. III-B loops kernels until each completed once);
// collaborative runs measure a single overlapped execution.
func (s *System) SetRunOnce(once bool) { s.noRestart = once }

// New builds a system running the described kernels under the given
// scheduling policy factory (one policy instance per channel).
func New(cfg config.Config, policy sched.PolicyFactory, descs []KernelDesc) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(descs) == 0 {
		return nil, fmt.Errorf("sim: no kernels described")
	}
	geom, err := addrmap.NewGeometry(cfg.Memory.Channels, cfg.Memory.Banks, cfg.Memory.Rows, cfg.Memory.Columns, cfg.Memory.AccessBytes())
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	var mapper addrmap.Mapper = addrmap.NewInterleaved(geom)
	if cfg.Memory.Mapping == config.MapIPoly {
		mapper = addrmap.NewIPoly(geom)
	}
	s := &System{
		cfg:    cfg,
		mapper: mapper,
		st:     stats.New(len(descs), cfg.Memory.Channels),
	}
	s.network = noc.New(cfg)
	if cfg.Cache.L1Bytes > 0 {
		l1cfg := cfg.Cache
		l1cfg.Ways = cfg.Cache.L1Ways
		l1cfg.MSHRs = cfg.Cache.L1MSHRs
		s.l1 = make([]*cache.Slice, cfg.GPU.NumSMs)
		for sm := range s.l1 {
			s.l1[sm] = cache.NewSlice(l1cfg, cfg.Cache.L1Bytes)
		}
	}
	s.l2 = make([]*cache.Slice, cfg.Memory.Channels)
	s.l2dram = make([]*noc.VCQueue, cfg.Memory.Channels)
	s.mcs = make([]*memctrl.Controller, cfg.Memory.Channels)
	for ch := 0; ch < cfg.Memory.Channels; ch++ {
		ch := ch
		s.l2[ch] = cache.NewSlice(cfg.Cache, cfg.Cache.SliceBytes(cfg.Memory.Channels))
		s.l2dram[ch] = noc.NewVCQueue(cfg.NoC.Mode, cfg.NoC.BufferSize)
		s.mcs[ch] = memctrl.New(ch, cfg, policy(), &s.st.Channels[ch], func(r *request.Request, _ uint64) {
			s.onDRAMComplete(ch, r)
		})
	}
	// Response-path calendar: hit latency and response latency both
	// schedule into it.
	ringLen := cfg.GPU.ResponseLatency + cfg.Cache.HitLatency + 4
	s.respRing = make([][]*request.Request, ringLen)

	for app, d := range descs {
		k, err := s.buildKernel(app, d)
		if err != nil {
			return nil, err
		}
		s.kernels = append(s.kernels, k)
		s.isPIM = append(s.isPIM, d.PIM != nil)
	}
	if fs := cfg.Faults; fs.Active() {
		if fs.Seed == 0 {
			fs.Seed = cfg.Seed // faulty runs stay reproducible by default
		}
		s.flt = faults.NewInjector(fs, cfg.Memory.Channels, cfg.GPU.NumSMs)
		for _, mc := range s.mcs {
			mc.SetFaults(s.flt)
		}
		s.network.SetFaults(s.flt)
	}
	if telemetry.Enabled() {
		s.EnableTelemetry(0, 0)
	}
	s.injectFn = s.inject
	s.tickEngine = cfg.Engine == config.EngineTick
	if !s.tickEngine {
		s.kNext = make([]uint64, len(s.kernels))
		s.mcNext = make([]uint64, len(s.mcs))
		s.nocFaulty = s.flt != nil && s.flt.Schedule().NoCStallProb > 0
	}
	return s, nil
}

func (s *System) buildKernel(app int, d KernelDesc) (*gpu.Kernel, error) {
	scale := d.Scale
	if scale <= 0 {
		scale = 1
	}
	seed := d.Seed
	if seed == 0 {
		seed = s.cfg.Seed + int64(app)*31
	}
	if len(d.SMs) == 0 {
		return nil, fmt.Errorf("sim: kernel %d has no SMs", app)
	}
	switch {
	case d.GPU != nil && d.PIM == nil:
		if err := d.GPU.Validate(); err != nil {
			return nil, fmt.Errorf("sim: kernel %d: %w", app, err)
		}
		gen := workload.NewGPUGen(*d.GPU, s.mapper, d.SMs, app, d.Base, seed, scale, &s.idSeq)
		maxOut := d.GPU.MaxOutstanding
		if maxOut <= 0 {
			maxOut = s.cfg.GPU.MaxOutstanding
		}
		params := gpu.IssueParams{Interval: d.GPU.Interval, PerSlot: 1, MaxOutstanding: maxOut}
		return gpu.NewKernel(app, d.GPU.ID+"/"+d.GPU.Name, gen, d.SMs, params, seed), nil
	case d.PIM != nil && d.GPU == nil:
		if err := d.PIM.Validate(s.cfg.PIM.RFPerBank()); err != nil {
			return nil, fmt.Errorf("sim: kernel %d: %w", app, err)
		}
		warpsPerSM := s.cfg.Memory.Channels / len(d.SMs)
		gen := workload.NewPIMGen(*d.PIM, s.mapper, d.SMs, warpsPerSM, s.cfg.PIM.RFPerBank(), app, scale, &s.idSeq)
		// PIM kernels are optimized to saturate the memory interface:
		// one op per warp per cycle, throttled only by backpressure.
		params := gpu.IssueParams{Interval: 1, PerSlot: warpsPerSM, MaxOutstanding: 1 << 30}
		return gpu.NewKernel(app, d.PIM.ID+"/"+d.PIM.Name, gen, d.SMs, params, seed), nil
	default:
		return nil, fmt.Errorf("sim: kernel %d must set exactly one of GPU and PIM", app)
	}
}

// Mapper exposes the address map (tests).
func (s *System) Mapper() addrmap.Mapper { return s.mapper }

// EnableTrace installs an event recorder on one channel's memory
// controller, keeping the most recent capacity events. Call before Run;
// the recorder is returned for inspection afterwards.
func (s *System) EnableTrace(channel, capacity int) *trace.Recorder {
	tr := trace.New(capacity)
	s.mcs[channel].SetTrace(tr)
	return tr
}

// Controllers exposes the per-channel memory controllers (tests).
func (s *System) Controllers() []*memctrl.Controller { return s.mcs }

// L2 exposes the per-channel cache slices (tests).
func (s *System) L2(ch int) *cache.Slice { return s.l2[ch] }

// inject is the InjectFunc given to kernels: PIM requests go straight to
// the interconnect (cache-streaming stores bypass the hierarchy); MEM
// requests are filtered by the issuing SM's L1D when one is configured.
func (s *System) inject(smID int, r *request.Request) bool {
	if r.Kind == request.PIMOp || s.l1 == nil {
		return s.injectNoC(smID, r)
	}
	l1 := s.l1[smID]
	res, forwards := l1.Access(r, s.network.InputSpace(smID, r.Kind))
	switch res {
	case cache.Hit:
		s.scheduleResponse(r, s.cfg.Cache.L1HitLatency)
		return true
	case cache.Merged:
		return true
	case cache.Miss:
		for _, f := range forwards {
			if f.Synthetic {
				s.decodeWriteback(f)
			} else {
				f.L1Fetch = true
				f.Kind = request.MemRead // write-allocate fetch
			}
			if !s.injectNoC(smID, f) {
				panic("sim: NoC inject failed after space check")
			}
		}
		return true
	default: // cache.Blocked
		return false
	}
}

func (s *System) injectNoC(smID int, r *request.Request) bool {
	if !s.network.Inject(smID, r) {
		return false
	}
	r.InjectGPUCycle = s.gpuCycle
	if !r.Synthetic {
		s.st.Apps[r.App].NoCInjected++
	}
	return true
}

// scheduleResponse delivers r to its kernel after delay GPU cycles.
func (s *System) scheduleResponse(r *request.Request, delay int) {
	idx := (s.respIdx + delay) % len(s.respRing)
	s.respRing[idx] = append(s.respRing[idx], r)
	s.respCount++
}

func (s *System) deliverResponses() {
	due := s.respRing[s.respIdx]
	// Park the emptied slice back in the slot so its backing array is
	// reused next lap. Safe against aliasing: every scheduleResponse
	// delay is >= 1 and < len(respRing), so nothing appends to this slot
	// while due is being walked.
	s.respRing[s.respIdx] = due[:0]
	s.respCount -= len(due)
	for _, r := range due {
		s.completeForKernel(r)
	}
}

func (s *System) completeForKernel(r *request.Request) {
	if r.Synthetic {
		return
	}
	if r.L1Fetch {
		// The response fills the issuing SM's L1 and releases every
		// request that merged into the fetch's MSHR.
		r.L1Fetch = false
		for _, done := range s.l1[r.SM].Fill(r) {
			s.st.Apps[done.App].Completed++
			s.kernels[done.App].OnComplete(done, s.gpuCycle)
			s.wakeKernel(done.App)
		}
		return
	}
	s.st.Apps[r.App].Completed++
	s.kernels[r.App].OnComplete(r, s.gpuCycle)
	s.wakeKernel(r.App)
}

// wakeKernel schedules an immediate tick for a kernel that just retired a
// request: a completion can free a slot that was parked at its
// outstanding cap, which the kernel's own NextEvent deliberately ignores.
// Responses are delivered before the kernel loop of the same cycle, so
// waking at the current cycle is exact.
func (s *System) wakeKernel(app int) {
	if s.kNext != nil && s.kNext[app] > s.gpuCycle {
		s.kNext[app] = s.gpuCycle
	}
}

// onDRAMComplete routes memory-controller completions: PIM ops retire to
// their kernel, L2 fetch primaries fill the slice and release merged
// requests (a primary may itself be a synthetic L1 writeback — the fill
// must still happen or its MSHR leaks), and L2 victim writebacks vanish.
func (s *System) onDRAMComplete(ch int, r *request.Request) {
	switch {
	case r.Kind == request.PIMOp:
		s.scheduleResponse(r, 1)
	case r.L2Fetch:
		r.L2Fetch = false
		for _, done := range s.l2[ch].Fill(r) {
			if done.Synthetic {
				continue // a writeback that allocated/merged: no waiter
			}
			s.scheduleResponse(done, s.cfg.GPU.ResponseLatency)
		}
	default:
		// L2 dirty-victim writeback: no one waits for it.
	}
}

// drainNoCOutputs moves requests from the interconnect->L2 queues into the
// L2 (MEM) or the L2->DRAM queue (PIM), one request per channel per GPU
// cycle, round-robin between virtual channels under VC2.
func (s *System) drainNoCOutputs() {
	for ch := range s.l2 {
		q := s.network.Output(ch)
		if q.Len() == 0 {
			continue
		}
		order := q.ServeOrder()
		for i, vc := range order {
			if i == 1 && vc == order[0] {
				break
			}
			head := q.Peek(vc)
			if head == nil {
				continue
			}
			if head.Kind == request.PIMOp {
				if s.l2dram[ch].CanPush(request.PIMOp) {
					s.l2dram[ch].Push(q.Pop(vc))
					q.Served(vc)
					break
				}
				continue
			}
			// MEM request: present to the L2 slice.
			space := s.memVCSpace(ch)
			res, forwards := s.l2[ch].Access(head, space)
			switch res {
			case cache.Hit:
				q.Pop(vc)
				q.Served(vc)
				s.scheduleResponse(head, s.cfg.Cache.HitLatency)
			case cache.Merged:
				q.Pop(vc)
				q.Served(vc)
			case cache.Miss:
				q.Pop(vc)
				q.Served(vc)
				for i, f := range forwards {
					if i == 0 {
						// The fetch primary: a DRAM read that will
						// fill the slice, whatever kind the original
						// request was (write-allocate).
						f.L2Fetch = true
						f.Kind = request.MemRead
					} else {
						// The slice's dirty-victim writeback.
						s.decodeWriteback(f)
					}
					if !s.l2dram[ch].Push(f) {
						panic("sim: L2->DRAM push failed after space check")
					}
				}
			case cache.Blocked:
				// Leave in queue; backpressure builds upstream.
				continue
			}
			break
		}
	}
}

// memVCSpace returns the free MEM-VC capacity of channel ch's L2->DRAM
// queue.
func (s *System) memVCSpace(ch int) int {
	q := s.l2dram[ch]
	per := s.cfg.NoC.BufferSize
	if s.cfg.NoC.Mode == config.VC2 {
		per /= 2
	}
	return per - q.LenVC(noc.VCMem)
}

// decodeWriteback fills in the DRAM coordinates of a cache-generated
// writeback request.
func (s *System) decodeWriteback(r *request.Request) {
	c := s.mapper.Decode(r.Addr)
	r.Channel, r.Bank, r.Row, r.Col = c.Channel, c.Bank, c.Row, c.Col
	id := s.idSeq
	s.idSeq++
	r.ID = id
}

// drainToMCs moves requests from the L2->DRAM queues into the memory
// controller queues, one per channel per DRAM cycle, round-robin between
// VCs under VC2. Under VC1 a PIM request at the head of the shared queue
// whose controller PIM queue is full blocks the MEM requests behind it —
// the denial-of-service mechanism of Fig. 7a.
func (s *System) drainToMCs() {
	for ch, q := range s.l2dram {
		if q.Len() == 0 {
			continue
		}
		mc := s.mcs[ch]
		order := q.ServeOrder()
		for i, vc := range order {
			if i == 1 && vc == order[0] {
				break
			}
			head := q.Peek(vc)
			if head == nil {
				continue
			}
			if !mc.CanAccept(head.Kind) {
				if s.cfg.NoC.Mode == config.VC1 {
					break // head-of-line blocking in the shared queue
				}
				continue
			}
			// Close the controller's deferred accounting through the
			// previous cycle before it stamps the arrival: the drain
			// stage runs with the controller clock one behind the tick,
			// and a skipped controller's clock may be further behind
			// still. A no-op under the per-cycle engine.
			mc.SyncTo(s.dramCycle - 1)
			mc.Enqueue(q.Pop(vc))
			q.Served(vc)
			if s.mcNext != nil {
				s.mcNext[ch] = s.dramCycle // new work: tick this cycle
			}
			if !head.Synthetic {
				s.st.Apps[head.App].MCArrived++
			}
			break
		}
	}
}

// Starvation detection and cancellation cadence of RunContext: if no
// kernel still on its first run makes progress for progressWindow GPU
// cycles the run aborts as starved; both are evaluated every checkEvery
// cycles. Package-scoped because the event engine's tryJump must land on
// every checkEvery boundary so aborts happen at bit-identical cycles.
const (
	progressWindow = 400_000 // GPU cycles
	checkEvery     = 4096
)

// step advances the system by one GPU cycle. It is the per-cycle
// reference engine (config.EngineTick): every component ticks every
// cycle. The event engine (stepEvent) must stay bit-identical to it —
// the contract the differential harness pins.
func (s *System) step() {
	s.deliverResponses()
	for _, k := range s.kernels {
		k.Tick(s.gpuCycle, s.injectFn)
	}
	s.network.Tick()
	s.drainNoCOutputs()

	// DRAM clock domain: ClockMHz DRAM cycles per CoreClockMHz GPU
	// cycles, via an integer accumulator.
	s.dramAccum += s.cfg.Memory.ClockMHz
	for s.dramAccum >= s.cfg.GPU.CoreClockMHz {
		s.dramAccum -= s.cfg.GPU.CoreClockMHz
		s.dramCycle++
		s.drainToMCs()
		for _, mc := range s.mcs {
			mc.Tick(s.dramCycle)
		}
	}

	s.gpuCycle++
	s.respIdx = (s.respIdx + 1) % len(s.respRing)
	if s.sampleEvery > 0 && s.gpuCycle%s.sampleEvery == 0 {
		s.takeSample() //pimlint:coldpath — epoch-gated sampling
	}
	if s.telEvery > 0 && s.gpuCycle%s.telEvery == 0 {
		s.takeTelemetrySample() //pimlint:coldpath — epoch-gated sampling
	}
}

// stepEvent advances the system under the next-event engine
// (config.EngineEvent, the default): the same cycle skeleton as step,
// but each component is ticked only at cycles its NextEvent method (or
// an explicit wake on new work) proves it could change state, with the
// per-cycle accounting of the skipped cycles reproduced in closed form.
// When every queue in the system is quiescent, tryJump skips whole GPU
// cycles at once. Every run observable — stats, samples, telemetry,
// digests — is bit-identical to the reference engine.
func (s *System) stepEvent() {
	if s.tryJump() {
		return
	}
	if s.respCount > 0 {
		s.deliverResponses()
	}
	for i, k := range s.kernels {
		if s.kNext[i] <= s.gpuCycle {
			k.Tick(s.gpuCycle, s.injectFn)
			s.kNext[i] = k.NextEvent(s.gpuCycle)
		}
	}
	// The crossbar moves state only when input flits exist; an active
	// link-stall schedule additionally draws the per-link RNG every
	// cycle, so it forces per-cycle ticking to keep the stream aligned.
	if s.nocFaulty || s.network.InFlits() > 0 {
		s.network.Tick()
	}
	s.drainNoCOutputs()

	s.dramAccum += s.cfg.Memory.ClockMHz
	for s.dramAccum >= s.cfg.GPU.CoreClockMHz {
		s.dramAccum -= s.cfg.GPU.CoreClockMHz
		s.dramCycle++
		s.drainToMCs()
		for i, mc := range s.mcs {
			if s.mcNext[i] <= s.dramCycle {
				mc.Tick(s.dramCycle)
				s.mcNext[i] = mc.NextEvent(s.dramCycle)
			}
		}
	}

	s.gpuCycle++
	s.respIdx = (s.respIdx + 1) % len(s.respRing)
	if s.sampleEvery > 0 && s.gpuCycle%s.sampleEvery == 0 {
		s.takeSample() //pimlint:coldpath — epoch-gated sampling
	}
	if s.telEvery > 0 && s.gpuCycle%s.telEvery == 0 {
		s.takeTelemetrySample() //pimlint:coldpath — epoch-gated sampling
	}
}

// nextBoundary returns the smallest multiple of n strictly above g
// (never for n == 0). The event engine may not jump across sampling,
// telemetry, or progress-check boundaries — it lands on each and runs
// the same epilogue the per-cycle engine runs there, so epoch series and
// starvation aborts stay bit-identical.
func nextBoundary(g, n uint64) uint64 {
	if n == 0 {
		return ^uint64(0)
	}
	return (g/n + 1) * n
}

// tryJump skips ahead over GPU cycles in which nothing in the system can
// change: no response in flight, an empty interconnect, empty L2->DRAM
// queues, every kernel's next issue in the future, and every controller's
// next event beyond the DRAM cycles the jump would produce. It advances
// gpuCycle/dramCycle/the clock-domain accumulator exactly as that many
// step calls would, then runs the sampling epilogue at the landing cycle.
// Returns false (having advanced nothing) when the system is busy or the
// first actionable cycle is the current one.
func (s *System) tryJump() bool {
	if s.nocFaulty || s.network.InFlits() > 0 {
		return false
	}
	// A response due this very cycle must be delivered by a live step.
	if s.respCount > 0 && len(s.respRing[s.respIdx]) > 0 {
		return false
	}
	// Earliest GPU cycle any kernel acts, capped so the jump lands on
	// (never crosses) every epilogue boundary the per-cycle engine
	// evaluates.
	target := ^uint64(0)
	for _, at := range s.kNext {
		if at < target {
			target = at
		}
	}
	if b := nextBoundary(s.gpuCycle, s.sampleEvery); b < target {
		target = b
	}
	if b := nextBoundary(s.gpuCycle, s.telEvery); b < target {
		target = b
	}
	if b := nextBoundary(s.gpuCycle, checkEvery); b < target {
		target = b
	}
	if s.respCount > 0 {
		// Land on the cycle the earliest scheduled response is due, so
		// the live step there delivers it. Slot k of the calendar ring is
		// due k cycles from now; slot 0 was ruled out above.
		n := len(s.respRing)
		for k := 1; k < n; k++ {
			if len(s.respRing[(s.respIdx+k)%n]) > 0 {
				if c := s.gpuCycle + uint64(k); c < target {
					target = c
				}
				break
			}
		}
	}
	if s.cfg.MaxGPUCycles < target {
		target = s.cfg.MaxGPUCycles
	}
	if target <= s.gpuCycle {
		return false
	}
	for ch := range s.l2 {
		if s.network.Output(ch).Len() > 0 {
			return false
		}
	}
	for _, q := range s.l2dram {
		if q.Len() > 0 {
			return false
		}
	}
	mcMin := ^uint64(0)
	for _, at := range s.mcNext {
		if at < mcMin {
			mcMin = at
		}
	}
	// Advance the clock-domain accumulator cycle by cycle (two integer
	// ops per skipped cycle), stopping before any GPU cycle whose DRAM
	// cycle reaches a controller's next event — that cycle runs live.
	var jumped uint64
	for jumped < target-s.gpuCycle {
		acc := s.dramAccum + s.cfg.Memory.ClockMHz
		d := s.dramCycle
		ok := true
		for acc >= s.cfg.GPU.CoreClockMHz {
			if d+1 >= mcMin {
				ok = false // this GPU cycle's DRAM cycle runs live
				break
			}
			acc -= s.cfg.GPU.CoreClockMHz
			d++
		}
		if !ok {
			break
		}
		s.dramAccum, s.dramCycle = acc, d
		jumped++
	}
	if jumped == 0 {
		return false
	}
	s.gpuCycle += jumped
	s.respIdx = (s.respIdx + int(jumped%uint64(len(s.respRing)))) % len(s.respRing)
	if s.sampleEvery > 0 && s.gpuCycle%s.sampleEvery == 0 {
		s.takeSample()
	}
	if s.telEvery > 0 && s.gpuCycle%s.telEvery == 0 {
		s.takeTelemetrySample()
	}
	return true
}

// Run executes the co-execution protocol with no cancellation; see
// RunContext.
func (s *System) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the co-execution protocol of Sec. III-B: every
// kernel is launched at cycle 0 and re-launched whenever it finishes
// while any other kernel is still on its first run; the simulation ends
// when every kernel has completed at least one run (or aborts on the
// cycle limit / total lack of progress). The context is polled every few
// thousand cycles; on cancellation or deadline expiry the run stops with
// an *ErrInterrupted carrying the position and queue state (Unwrap
// yields the context's error).
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: System is single-use; build a new one")
	}
	s.ran = true
	manifest := telemetry.NewManifest(s.cfg, s.cfg.Seed, s.cfg.Memory.Channels, s.cfg.GPU.NumSMs)
	for _, k := range s.kernels {
		manifest.Kernels = append(manifest.Kernels, k.Label())
	}
	for _, k := range s.kernels {
		k.Start(0)
	}
	// Starvation detection: if no kernel still on its *first* run makes
	// progress for a whole window, the run is starved or deadlocked and
	// aborts (its fairness is 0, matching the paper's starvation
	// cases). Kernels relaunched for contention don't count as
	// progress, or a starved PIM kernel beside a looping GPU kernel
	// would spin until the cycle limit.
	lastProgress := uint64(0)
	firstRunCompleted := make([]int, len(s.kernels))
	aborted := false
	var starved *ErrStarved

	for {
		if s.allFinished() {
			break
		}
		if s.gpuCycle >= s.cfg.MaxGPUCycles {
			aborted = true
			break
		}
		if s.tickEngine {
			s.step()
		} else {
			s.stepEvent()
		}
		if s.gpuCycle%checkEvery == 0 {
			// Cancellation piggybacks on the progress-check cadence, so
			// the hot loop pays one modulo it already paid.
			if err := ctx.Err(); err != nil {
				return nil, &ErrInterrupted{
					GPUCycle:  s.gpuCycle,
					DRAMCycle: s.dramCycle,
					Queues:    s.queueSnapshots(),
					Err:       err,
				}
			}
			progressed := false
			for i, k := range s.kernels {
				if k.Finished() {
					continue
				}
				if c := k.Completed(); c != firstRunCompleted[i] {
					firstRunCompleted[i] = c
					progressed = true
				}
			}
			if progressed {
				lastProgress = s.gpuCycle
			} else if s.gpuCycle-lastProgress > progressWindow {
				aborted = true
				starved = &ErrStarved{
					GPUCycle:     s.gpuCycle,
					LastProgress: lastProgress,
					Window:       progressWindow,
					Queues:       s.queueSnapshots(),
					Snapshot:     s.buildTelemetrySnapshot(),
				}
				break
			}
		}
		// Restart kernels that finished while others still run, to
		// keep generating contention.
		if s.noRestart {
			continue
		}
		for app, k := range s.kernels {
			if k.RunDone() && !s.allFinished() {
				k.Restart(s.gpuCycle)
				if s.kNext != nil {
					s.kNext[app] = 0 // fresh slots: tick immediately
				}
				if s.isPIM[app] {
					// A fresh PIM kernel launch resets the
					// register files and the block cursor; all
					// ops of the previous run have completed
					// (RunDone), so no in-flight state is lost.
					for _, mc := range s.mcs {
						mc.Units().Reset()
					}
				}
			}
		}
	}

	// Close deferred controller accounting through the final DRAM cycle
	// before the stats are read (a no-op under the tick engine).
	for _, mc := range s.mcs {
		mc.SyncTo(s.dramCycle)
	}
	s.st.GPUCycles = s.gpuCycle
	s.st.DRAMCycles = s.dramCycle
	if s.tel != nil {
		// Close the time series with the end-of-run state, so even runs
		// shorter than one epoch produce a timeline point.
		s.takeTelemetrySample()
	}
	manifest.Finish(s.gpuCycle, s.dramCycle, aborted, runtime.NumGoroutine())
	if s.tel != nil {
		manifest.SampleInterval = s.telEvery
		manifest.Samples = len(s.tel.Sampler.Snapshots())
		manifest.SamplesDropped = s.tel.Sampler.Dropped()
	}
	res := &Result{
		Stats:      s.st,
		GPUCycles:  s.gpuCycle,
		DRAMCycles: s.dramCycle,
		Aborted:    aborted,
		Samples:    s.samples,
		Manifest:   manifest,
		Telemetry:  s.tel,
		Starved:    starved,
	}
	if s.flt != nil {
		c := s.flt.Counts()
		res.Faults = &c
	}
	for app, k := range s.kernels {
		kr := KernelResult{
			Label:       k.Label(),
			App:         app,
			Finished:    k.Finished(),
			Runs:        k.Runs(),
			Issued:      k.Issued(),
			Completed:   k.Completed(),
			Total:       k.Total(),
			StallCycles: k.StallCycles,
		}
		if k.Finished() {
			kr.FirstFinish = k.FirstFinish()
			kr.EstFinish = k.FirstFinish()
			s.st.KernelFinishGPU[app] = k.FirstFinish()
		} else if k.Completed() > 0 {
			kr.EstFinish = s.gpuCycle * uint64(k.Total()) / uint64(k.Completed())
		}
		res.Kernels = append(res.Kernels, kr)
	}
	return res, nil
}

func (s *System) allFinished() bool {
	for _, k := range s.kernels {
		if !k.Finished() {
			return false
		}
	}
	return true
}

// GPUAndPIMSMs partitions the configured SMs for co-execution: the PIM
// kernel gets the last PIMSMs SMs, the GPU kernel the rest (72 of 80 in
// the paper).
func GPUAndPIMSMs(cfg config.Config) (gpuSMs, pimSMs []int) {
	split := cfg.GPU.NumSMs - cfg.GPU.PIMSMs
	for i := 0; i < split; i++ {
		gpuSMs = append(gpuSMs, i)
	}
	for i := split; i < cfg.GPU.NumSMs; i++ {
		pimSMs = append(pimSMs, i)
	}
	return gpuSMs, pimSMs
}

// AllSMs returns every SM index (standalone GPU runs use all SMs).
func AllSMs(cfg config.Config) []int {
	sms := make([]int, cfg.GPU.NumSMs)
	for i := range sms {
		sms[i] = i
	}
	return sms
}

// SomeSMs returns the first n SM indexes (e.g. the GPU-8 configuration of
// Fig. 4).
func SomeSMs(cfg config.Config, n int) []int {
	sms := make([]int, n)
	for i := range sms {
		sms[i] = i
	}
	return sms
}
