package sim

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// The differential harness is the event engine's equivalence proof: every
// workload class the paper's figures exercise is run under both the
// per-cycle reference loop (EngineTick) and the skip-ahead loop
// (EngineEvent), and the full observable surface — stats, per-kernel
// outcomes, cycle counts, the sampling timeline, fault totals, and the
// telemetry registry and epoch series — must be bit-identical.

// diffCell is one workload in the differential matrix.
type diffCell struct {
	name   string
	policy string
	mode   config.VCMode
	gpu    string // GPU kernel ID, "" for PIM-only
	pim    string // PIM kernel ID, "" for MEM-only
	scale  float64
	faults faults.Schedule
}

// throttleOnly stresses the throttle-window gate without perturbing DRAM
// or NoC timing, so drained and frozen controller states get jumped over.
func throttleOnly() faults.Schedule {
	return faults.Schedule{ThrottlePeriod: 30_000, ThrottleWindow: 5_000}
}

// fullFaults matches the resilience suite's schedule: DRAM retries, NoC
// stalls, and throttle windows all active.
func fullFaults() faults.Schedule {
	return faults.Schedule{
		DRAMRetryProb:   0.002,
		DRAMRetryCycles: 12,
		NoCStallProb:    0.001,
		NoCStallCycles:  24,
		ThrottlePeriod:  40_000,
		ThrottleWindow:  2_000,
	}
}

func differentialMatrix() []diffCell {
	return []diffCell{
		{name: "mem-only/fr-fcfs/vc1", policy: "fr-fcfs", mode: config.VC1, gpu: "G8", scale: 0.2},
		{name: "pim-only/fr-fcfs/vc1", policy: "fr-fcfs", mode: config.VC1, pim: "P1", scale: 0.2},
		{name: "mixed/f3fs/vc1", policy: "f3fs", mode: config.VC1, gpu: "G8", pim: "P1", scale: 0.1},
		{name: "mixed/mem-first/vc2", policy: "mem-first", mode: config.VC2, gpu: "G4", pim: "P2", scale: 0.1},
		{name: "mixed/fcfs/vc2", policy: "fcfs", mode: config.VC2, gpu: "G17", pim: "P2", scale: 0.1},
		{name: "mem-only/fr-fcfs/vc1/faults", policy: "fr-fcfs", mode: config.VC1, gpu: "G8", scale: 0.2, faults: fullFaults()},
		{name: "mixed/f3fs/vc1/faults", policy: "f3fs", mode: config.VC1, gpu: "G8", pim: "P1", scale: 0.1, faults: fullFaults()},
		{name: "mixed/fr-rr-fcfs/vc2/throttle", policy: "fr-rr-fcfs", mode: config.VC2, gpu: "G8", pim: "P2", scale: 0.1, faults: throttleOnly()},
	}
}

func (c diffCell) descs(t *testing.T, cfg config.Config) []KernelDesc {
	t.Helper()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	if c.pim == "" {
		gpuSMs = AllSMs(cfg)
	}
	var descs []KernelDesc
	if c.gpu != "" {
		descs = append(descs, gpuDesc(t, c.gpu, gpuSMs, c.scale))
	}
	if c.pim != "" {
		descs = append(descs, pimDesc(t, c.pim, pimSMs, c.scale))
	}
	return descs
}

// runUnderEngine builds a fresh System (Systems are single-use) with
// sampling and telemetry attached and runs it under the given engine.
func runUnderEngine(t *testing.T, c diffCell, eng config.Engine) *Result {
	t.Helper()
	cfg := testCfg()
	cfg.NoC.Mode = c.mode
	cfg.Engine = eng
	cfg.Faults = c.faults
	sys, err := New(cfg, core.Factory(c.policy, cfg.Sched), c.descs(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableSampling(500)
	sys.EnableTelemetry(1024, 0)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareEpochSeries asserts the two engines produced the same telemetry
// time series, snapshot by snapshot, and that the event engine emitted a
// sample at every epoch boundary it crossed: consecutive snapshots must
// be exactly one interval apart even when a multi-cycle jump crossed the
// boundary.
func compareEpochSeries(t *testing.T, tick, event *Result, interval uint64) {
	t.Helper()
	ts := tick.Telemetry.Sampler.Snapshots()
	es := event.Telemetry.Sampler.Snapshots()
	if len(ts) != len(es) {
		t.Fatalf("epoch series lengths differ: tick %d, event %d", len(ts), len(es))
	}
	for i := range es {
		if es[i].GPUCycle != ts[i].GPUCycle {
			t.Fatalf("epoch %d sampled at different cycles: tick %d, event %d",
				i, ts[i].GPUCycle, es[i].GPUCycle)
		}
		// All snapshots except the terminal one (taken at run end,
		// wherever that lands) sit on consecutive epoch boundaries: a
		// multi-cycle jump must not skip one.
		if i > 0 && i < len(es)-1 && es[i].GPUCycle != es[i-1].GPUCycle+interval {
			t.Fatalf("event engine skipped an epoch boundary: snapshot %d at cycle %d follows %d (interval %d)",
				i, es[i].GPUCycle, es[i-1].GPUCycle, interval)
		}
		if i == len(es)-1 && i > 0 && es[i].GPUCycle < es[i-1].GPUCycle {
			t.Fatalf("terminal snapshot at cycle %d precedes epoch snapshot at %d",
				es[i].GPUCycle, es[i-1].GPUCycle)
		}
		if !reflect.DeepEqual(es[i], ts[i]) {
			t.Fatalf("epoch %d (cycle %d) diverged:\n tick  %+v\n event %+v",
				i, es[i].GPUCycle, ts[i], es[i])
		}
	}
	if len(es) == 0 {
		t.Fatal("no telemetry snapshots recorded")
	}
}

// compareFinalCounters asserts every telemetry registry metric agrees.
func compareFinalCounters(t *testing.T, tick, event *Result) {
	t.Helper()
	tm := tick.Telemetry.Registry.Export()
	em := event.Telemetry.Registry.Export()
	if len(tm) != len(em) {
		t.Fatalf("metric counts differ: tick %d, event %d", len(tm), len(em))
	}
	byName := make(map[string]telemetry.MetricPoint, len(tm))
	for _, p := range tm {
		byName[p.Name] = p
	}
	for _, p := range em {
		tp, ok := byName[p.Name]
		if !ok {
			t.Fatalf("event engine produced metric %q absent under tick", p.Name)
		}
		if !reflect.DeepEqual(p, tp) {
			t.Fatalf("metric %q diverged:\n tick  %+v\n event %+v", p.Name, tp, p)
		}
	}
}

// TestDifferentialTickVsEvent is the equivalence gate for the skip-ahead
// engine: for every cell of the workload matrix the two engines must
// produce bit-identical result digests, telemetry final counters, and
// epoch series.
func TestDifferentialTickVsEvent(t *testing.T) {
	for _, c := range differentialMatrix() {
		t.Run(c.name, func(t *testing.T) {
			tick := runUnderEngine(t, c, config.EngineTick)
			event := runUnderEngine(t, c, config.EngineEvent)
			td := resultDigest(t, tick)
			ed := resultDigest(t, event)
			if td != ed {
				t.Errorf("result digests diverged:\n tick  %s\n event %s", td, ed)
			}
			compareFinalCounters(t, tick, event)
			compareEpochSeries(t, tick, event, 1024)
			if tick.GPUCycles != event.GPUCycles {
				t.Errorf("GPU cycles diverged: tick %d, event %d", tick.GPUCycles, event.GPUCycles)
			}
			t.Logf("%s: %d GPU cycles, digest %s", c.name, event.GPUCycles, ed[:12])
		})
	}
}
