package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sched"
)

// TestDeterminism: identical configurations and seeds must produce
// bit-identical runs — the foundation for every speedup comparison.
func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := testCfg()
		gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
		return mustRun(t, cfg, "f3fs", []KernelDesc{
			gpuDesc(t, "G4", gpuSMs, 0.2),
			pimDesc(t, "P3", pimSMs, 0.2),
		})
	}
	a, b := run(), run()
	if a.GPUCycles != b.GPUCycles || a.DRAMCycles != b.DRAMCycles {
		t.Fatalf("cycle counts differ: %d/%d vs %d/%d", a.GPUCycles, a.DRAMCycles, b.GPUCycles, b.DRAMCycles)
	}
	for i := range a.Kernels {
		if a.Kernels[i].FirstFinish != b.Kernels[i].FirstFinish {
			t.Errorf("kernel %d finish differs: %d vs %d", i, a.Kernels[i].FirstFinish, b.Kernels[i].FirstFinish)
		}
	}
	ta, tb := a.Stats.TotalChannel(), b.Stats.TotalChannel()
	if ta != tb {
		t.Errorf("channel stats differ:\n%+v\n%+v", ta, tb)
	}
}

// TestRequestConservation: on a finished run every issued request
// completed, and the DRAM-side command counts cover the app requests
// that reached the controller.
func TestRequestConservation(t *testing.T) {
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	res := mustRun(t, cfg, "fr-fcfs", []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.2),
		pimDesc(t, "P1", pimSMs, 0.2),
	})
	for _, k := range res.Kernels {
		if !k.Finished {
			t.Fatalf("kernel %s unfinished", k.Label)
		}
		// The simulation stops the instant the last kernel finishes;
		// a kernel that was relaunched to keep generating contention
		// may be mid-run, so completed <= issued, never more.
		if k.Completed > k.Issued {
			t.Errorf("%s: %d completed exceeds %d issued", k.Label, k.Completed, k.Issued)
		}
		if k.Runs == 1 && k.Completed != k.Issued {
			t.Errorf("%s: single-run kernel left %d of %d in flight",
				k.Label, k.Issued-k.Completed, k.Issued)
		}
	}
	tc := res.Stats.TotalChannel()
	// Every completed PIM request executed at a FU exactly once; ops in
	// flight at the stopping instant may not have reported completion
	// yet, so FU ops can exceed completions only by that small margin.
	pimCompleted := res.Stats.Apps[1].Completed
	if tc.PIMOps < pimCompleted {
		t.Errorf("FU ops %d < completed PIM requests %d", tc.PIMOps, pimCompleted)
	}
	slack := uint64(cfg.Memory.Channels * cfg.Memory.PIMQSize)
	if tc.PIMOps > pimCompleted+slack {
		t.Errorf("FU ops %d exceed completions %d by more than in-flight slack", tc.PIMOps, pimCompleted)
	}
	// Each MEM request is classified exactly once, at or before its
	// column command: issued commands never exceed classifications.
	if tc.MemReads+tc.MemWrites > tc.RowHits+tc.RowMisses {
		t.Errorf("issued %d MEM commands but only %d classifications",
			tc.MemReads+tc.MemWrites, tc.RowHits+tc.RowMisses)
	}
}

// TestPIMOnlyRunNeverSwitches: with no MEM traffic the controller enters
// PIM mode once and stays.
func TestPIMOnlyRunNeverSwitches(t *testing.T) {
	cfg := testCfg()
	_, pimSMs := GPUAndPIMSMs(cfg)
	res := mustRun(t, cfg, "f3fs", []KernelDesc{pimDesc(t, "P2", pimSMs, 0.2)})
	tc := res.Stats.TotalChannel()
	if tc.Switches > uint64(cfg.Memory.Channels) {
		t.Errorf("PIM-only run switched %d times, want <= one per channel", tc.Switches)
	}
	if tc.MemReads+tc.MemWrites != 0 {
		t.Errorf("phantom MEM commands: %d", tc.MemReads+tc.MemWrites)
	}
}

// TestGPUOnlyRunHasNoPIMActivity is the mirror image.
func TestGPUOnlyRunHasNoPIMActivity(t *testing.T) {
	cfg := testCfg()
	res := mustRun(t, cfg, "f3fs", []KernelDesc{gpuDesc(t, "G3", AllSMs(cfg), 0.2)})
	tc := res.Stats.TotalChannel()
	if tc.PIMOps != 0 || tc.Switches != 0 {
		t.Errorf("GPU-only run: pim ops %d, switches %d", tc.PIMOps, tc.Switches)
	}
}

// TestMoreSMsFinishFaster: the same kernel on more SMs must not be
// slower (the basis of the Fig. 5 reduced-SM comparison).
func TestMoreSMsFinishFaster(t *testing.T) {
	cfg := testCfg()
	few := mustRun(t, cfg, "fr-fcfs", []KernelDesc{gpuDesc(t, "G7", SomeSMs(cfg, 4), 0.2)})
	many := mustRun(t, cfg, "fr-fcfs", []KernelDesc{gpuDesc(t, "G7", AllSMs(cfg), 0.2)})
	if many.Kernels[0].FirstFinish > few.Kernels[0].FirstFinish {
		t.Errorf("20 SMs (%d cycles) slower than 4 SMs (%d cycles)",
			many.Kernels[0].FirstFinish, few.Kernels[0].FirstFinish)
	}
}

// TestStarvationAborts: a policy that never grants PIM mode starves the
// PIM kernel; the run must abort instead of spinning forever, and the
// starved kernel must report zero/partial progress.
func TestStarvationAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("starvation run takes seconds; skipped in -short mode")
	}
	cfg := testCfg()
	cfg.NoC.Mode = config.VC2 // isolate starvation at the controller
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	sys, err := New(cfg, func() sched.Policy { return memOnlyPolicy{} }, []KernelDesc{
		gpuDesc(t, "G4", gpuSMs, 0.4),
		pimDesc(t, "P1", pimSMs, 0.4),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("starved run did not abort")
	}
	if res.Kernels[1].Finished {
		t.Error("PIM kernel finished under a MEM-only policy")
	}
}

// memOnlyPolicy never leaves MEM mode: an adversarial policy for
// starvation testing.
type memOnlyPolicy struct{}

func (memOnlyPolicy) Name() string                              { return "mem-only" }
func (memOnlyPolicy) DesiredMode(sched.View) sched.Mode         { return sched.ModeMEM }
func (memOnlyPolicy) MemRowHitsAllowed(sched.View) bool         { return true }
func (memOnlyPolicy) MemConflictServiceAllowed(sched.View) bool { return true }
func (memOnlyPolicy) OnIssue(sched.View, sched.IssueInfo)       {}
func (memOnlyPolicy) OnSwitch(sched.View, sched.Mode)           {}
func (memOnlyPolicy) Reset()                                    {}

// TestModeFlappingPolicyStaysCorrect: a policy that demands a switch
// every cycle exercises the drain machinery hard; the run must still
// complete with all requests conserved.
func TestModeFlappingPolicyStaysCorrect(t *testing.T) {
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	sys, err := New(cfg, func() sched.Policy { return &flappingPolicy{} }, []KernelDesc{
		gpuDesc(t, "G8", gpuSMs, 0.1),
		pimDesc(t, "P2", pimSMs, 0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Kernels {
		if !k.Finished {
			t.Errorf("kernel %s unfinished under mode flapping (aborted=%v)", k.Label, res.Aborted)
		}
	}
	if res.Stats.TotalChannel().Switches == 0 {
		t.Error("flapping policy produced no switches")
	}
}

// flappingPolicy alternates desired mode on every query while work
// exists on both sides.
type flappingPolicy struct{ last sched.Mode }

func (p *flappingPolicy) Name() string { return "flapping" }
func (p *flappingPolicy) DesiredMode(v sched.View) sched.Mode {
	if v.MemQLen() == 0 {
		return sched.ModePIM
	}
	if v.PIMQLen() == 0 {
		return sched.ModeMEM
	}
	p.last = p.last.Other()
	return p.last
}
func (p *flappingPolicy) MemRowHitsAllowed(sched.View) bool         { return true }
func (p *flappingPolicy) MemConflictServiceAllowed(sched.View) bool { return true }
func (p *flappingPolicy) OnIssue(sched.View, sched.IssueInfo)       {}
func (p *flappingPolicy) OnSwitch(sched.View, sched.Mode)           {}
func (p *flappingPolicy) Reset()                                    {}

// TestAllNinePoliciesCompleteSmallCoRun is the catch-all integration
// test: every registered policy must finish a small co-execution without
// panicking, under both interconnect configurations.
func TestAllNinePoliciesCompleteSmallCoRun(t *testing.T) {
	for _, mode := range []config.VCMode{config.VC1, config.VC2} {
		for _, policy := range core.PolicyNames {
			policy, mode := policy, mode
			t.Run(policy+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				cfg := testCfg()
				cfg.NoC.Mode = mode
				gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
				res := mustRun(t, cfg, policy, []KernelDesc{
					gpuDesc(t, "G8", gpuSMs, 0.1),
					pimDesc(t, "P1", pimSMs, 0.1),
				})
				// Starvation-prone policies may abort; that is a
				// valid outcome (fairness 0), a crash is not.
				if !res.Aborted {
					for _, k := range res.Kernels {
						if !k.Finished {
							t.Errorf("%s: kernel %s unfinished without abort", policy, k.Label)
						}
					}
				}
			})
		}
	}
}

// TestQueueOccupancyNeverExceedsCapacity samples controller queue
// occupancy statistics against Table I capacities.
func TestQueueOccupancyNeverExceedsCapacity(t *testing.T) {
	cfg := testCfg()
	gpuSMs, pimSMs := GPUAndPIMSMs(cfg)
	sys, err := New(cfg, core.Factory("fr-fcfs", cfg.Sched), []KernelDesc{
		gpuDesc(t, "G4", gpuSMs, 0.15),
		pimDesc(t, "P1", pimSMs, 0.15),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for ch, mc := range sys.Controllers() {
		mem, pim := mc.QueueLens()
		if mem > cfg.Memory.MemQSize || pim > cfg.Memory.PIMQSize {
			t.Errorf("channel %d queues %d/%d exceed capacity", ch, mem, pim)
		}
	}
}
