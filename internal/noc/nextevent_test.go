package noc

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/request"
)

// TestNextEventLowerBoundAndSkipEquivalence pins the network's NextEvent
// contract: NextEvent(now) > now, an empty crossbar with no stall
// schedule sleeps forever (arbitration pointers move only on grants, so
// ticking it is a no-op — proven here by comparing a twin that idles
// through long empty stretches against one that skips them), and any
// buffered flit or active link-stall schedule forces per-cycle ticking.
func TestNextEventLowerBoundAndSkipEquivalence(t *testing.T) {
	cfg := smallCfg(config.VC2)
	a := New(cfg) // ticked every cycle, including empty ones
	b := New(cfg) // ticked only when NextEvent says a tick can matter

	if got := a.NextEvent(0); got != ^uint64(0) {
		t.Fatalf("empty network with no stall schedule: NextEvent = %d, want never", got)
	}

	// Identical injection scripts built from fresh request objects per
	// network (requests are mutable; twins must not share them).
	rng := rand.New(rand.NewSource(17))
	type shot struct {
		sm, ch int
		pim    bool
	}
	script := make(map[uint64][]shot)
	for now := uint64(0); now < 3_000; now++ {
		// Bursts separated by long idle gaps, so the skip path is the
		// common case and the burst path still sees contention.
		if now%400 < 25 && rng.Float64() < 0.6 {
			script[now] = append(script[now], shot{
				sm: rng.Intn(cfg.GPU.NumSMs), ch: rng.Intn(cfg.Memory.Channels),
				pim: rng.Float64() < 0.3,
			})
		}
	}
	mk := func(s shot) *request.Request {
		if s.pim {
			return pim(s.ch)
		}
		return mem(s.ch)
	}

	var popsA, popsB []uint64
	drain := func(n *Network, sink *[]uint64) {
		for ch := 0; ch < cfg.Memory.Channels; ch++ {
			q := n.Output(ch)
			for _, vc := range q.ServeOrder() {
				for q.LenVC(vc) > 0 {
					*sink = append(*sink, q.Pop(vc).ID)
				}
			}
		}
	}

	bNext := uint64(0)
	for now := uint64(0); now < 3_200; now++ {
		wake := false
		for _, s := range script[now] {
			ra, rb := mk(s), mk(s)
			rb.ID = ra.ID // twins share IDs so pop order is comparable
			okA := a.Inject(s.sm, ra)
			okB := b.Inject(s.sm, rb)
			if okA != okB {
				t.Fatalf("cycle %d: Inject diverged: per-cycle %v, event %v", now, okA, okB)
			}
			wake = wake || okB
		}
		a.Tick()
		if wake || bNext <= now {
			b.Tick()
			bNext = b.NextEvent(now)
			if bNext <= now {
				t.Fatalf("NextEvent(%d) = %d, want > now", now, bNext)
			}
			if b.InFlits() > 0 && bNext != now+1 {
				t.Fatalf("cycle %d: %d flits buffered but NextEvent = %d, want now+1", now, b.InFlits(), bNext)
			}
		}
		drain(a, &popsA)
		drain(b, &popsB)
	}

	if a.InFlits() != 0 || b.InFlits() != 0 {
		t.Fatalf("flits left in flight: per-cycle %d, event %d", a.InFlits(), b.InFlits())
	}
	if len(popsA) != len(popsB) {
		t.Fatalf("delivery counts diverged: per-cycle %d, event %d", len(popsA), len(popsB))
	}
	for i := range popsA {
		if popsA[i] != popsB[i] {
			t.Fatalf("delivery %d diverged: per-cycle req#%d, event req#%d", i, popsA[i], popsB[i])
		}
	}
	if len(popsA) == 0 {
		t.Fatal("script delivered nothing; the property was not exercised")
	}
}

// TestNextEventStallScheduleForcesPerCycle pins the fault-stream
// alignment rule: with a link-stall probability the per-link RNG must
// draw every cycle, so NextEvent may never sleep even on an empty
// crossbar.
func TestNextEventStallScheduleForcesPerCycle(t *testing.T) {
	cfg := smallCfg(config.VC1)
	n := New(cfg)
	n.SetFaults(faults.NewInjector(faults.Schedule{
		Seed: 3, NoCStallProb: 0.01, NoCStallCycles: 8,
	}, cfg.Memory.Channels, cfg.Memory.Channels))

	for _, now := range []uint64{0, 1, 999, 1 << 33} {
		if got := n.NextEvent(now); got != now+1 {
			t.Fatalf("NextEvent(%d) = %d with active stall schedule, want now+1", now, got)
		}
	}
}
