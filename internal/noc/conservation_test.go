package noc

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/request"
)

// TestCrossbarConservation drives the network with random traffic and
// verifies the core transport invariants: no request is lost, duplicated,
// or delivered to the wrong channel, and per-source-per-VC order is
// preserved.
func TestCrossbarConservation(t *testing.T) {
	for _, mode := range []config.VCMode{config.VC1, config.VC2} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := smallCfg(mode)
			n := New(cfg)
			rng := rand.New(rand.NewSource(42))

			injected := map[uint64]*request.Request{}
			delivered := map[uint64]bool{}
			// Per-source order is preserved within a VC toward one
			// destination (the path is a FIFO chain); requests to
			// different channels are observed in arbitrary order.
			type key struct {
				src int
				vc  VCID
				dst int
			}
			lastSeq := map[key]uint64{}
			var seq uint64

			drain := func() {
				for ch := 0; ch < cfg.Memory.Channels; ch++ {
					q := n.Output(ch)
					for _, vc := range []VCID{VCMem, VCPim} {
						for q.LenVC(vc) > 0 {
							r := q.Pop(vc)
							if r.Channel != ch {
								t.Fatalf("request for ch%d delivered to ch%d", r.Channel, ch)
							}
							if delivered[r.ID] {
								t.Fatalf("request %d delivered twice", r.ID)
							}
							delivered[r.ID] = true
							k := key{src: r.SM, vc: vcOf(mode, r.Kind), dst: ch}
							if r.SeqNo < lastSeq[k] {
								t.Fatalf("per-source VC order violated for SM %d", r.SM)
							}
							lastSeq[k] = r.SeqNo
						}
					}
				}
			}

			for cycle := 0; cycle < 5000; cycle++ {
				sm := rng.Intn(cfg.GPU.NumSMs)
				var r *request.Request
				if rng.Intn(2) == 0 {
					r = mem(rng.Intn(cfg.Memory.Channels))
				} else {
					r = pim(rng.Intn(cfg.Memory.Channels))
				}
				r.SM = sm
				seq++
				r.SeqNo = seq // repurposed here as injection order
				if n.Inject(sm, r) {
					injected[r.ID] = r
				}
				n.Tick()
				if cycle%7 == 0 {
					drain()
				}
			}
			// Flush everything still in the network.
			for i := 0; i < 10000; i++ {
				n.Tick()
				drain()
				done := true
				for sm := 0; sm < cfg.GPU.NumSMs; sm++ {
					if n.InputLen(sm) > 0 {
						done = false
					}
				}
				if done {
					break
				}
			}
			if len(delivered) != len(injected) {
				t.Fatalf("delivered %d of %d injected", len(delivered), len(injected))
			}
		})
	}
}
