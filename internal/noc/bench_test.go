package noc

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/request"
)

func benchNetwork(b *testing.B, mode config.VCMode) {
	cfg := config.Paper()
	cfg.NoC.Mode = mode
	n := New(cfg)
	rng := rand.New(rand.NewSource(3))
	var id uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Keep ports loaded and outputs draining, as in a real run.
		for sm := 0; sm < cfg.GPU.NumSMs; sm += 4 {
			id++
			r := &request.Request{ID: id, Kind: request.MemRead, Channel: rng.Intn(cfg.Memory.Channels), SM: sm}
			n.Inject(sm, r)
		}
		n.Tick()
		for ch := 0; ch < cfg.Memory.Channels; ch++ {
			q := n.Output(ch)
			for _, vc := range []VCID{VCMem, VCPim} {
				if q.LenVC(vc) > 0 {
					q.Pop(vc)
				}
			}
		}
	}
}

// BenchmarkCrossbarTickVC1 measures full-scale (80x32) crossbar
// arbitration per GPU cycle under the shared-queue configuration.
func BenchmarkCrossbarTickVC1(b *testing.B) { benchNetwork(b, config.VC1) }

// BenchmarkCrossbarTickVC2 measures the split-VC configuration.
func BenchmarkCrossbarTickVC2(b *testing.B) { benchNetwork(b, config.VC2) }
