package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/request"
)

var nocID uint64

func mem(ch int) *request.Request {
	nocID++
	return &request.Request{ID: nocID, Kind: request.MemRead, Channel: ch}
}

func pim(ch int) *request.Request {
	nocID++
	return &request.Request{ID: nocID, Kind: request.PIMOp, Channel: ch,
		PIM: &request.PIMInfo{Op: request.PIMLoad}}
}

func smallCfg(mode config.VCMode) config.Config {
	cfg := config.Scaled()
	cfg.GPU.NumSMs = 4
	cfg.GPU.PIMSMs = 2
	cfg.Memory.Channels = 8
	cfg.NoC.Mode = mode
	cfg.NoC.BufferSize = 8
	cfg.GPU.InjectQueue = 4
	return cfg
}

func TestVCQueueCapacitySplit(t *testing.T) {
	q1 := NewVCQueue(config.VC1, 8)
	for i := 0; i < 8; i++ {
		if !q1.Push(mem(0)) {
			t.Fatalf("VC1 push %d refused", i)
		}
	}
	if q1.Push(mem(0)) {
		t.Error("VC1 accepted past capacity")
	}
	if q1.Push(pim(0)) {
		t.Error("VC1 shares one buffer; PIM must also be refused")
	}

	q2 := NewVCQueue(config.VC2, 8)
	for i := 0; i < 4; i++ {
		if !q2.Push(mem(0)) {
			t.Fatalf("VC2 MEM push %d refused", i)
		}
	}
	if q2.Push(mem(0)) {
		t.Error("VC2 MEM VC accepted past its half")
	}
	// PIM VC is independent.
	for i := 0; i < 4; i++ {
		if !q2.Push(pim(0)) {
			t.Fatalf("VC2 PIM push %d refused", i)
		}
	}
	if q2.Len() != 8 {
		t.Errorf("total = %d, want 8 (equal total buffering)", q2.Len())
	}
}

func TestVCQueueFIFOPerVC(t *testing.T) {
	q := NewVCQueue(config.VC2, 8)
	a, b := pim(0), pim(0)
	q.Push(a)
	q.Push(b)
	if q.Peek(VCPim) != a {
		t.Error("PIM VC not FIFO")
	}
	if q.Pop(VCPim) != a || q.Pop(VCPim) != b {
		t.Error("pop order wrong")
	}
}

func TestServeOrderAlternates(t *testing.T) {
	q := NewVCQueue(config.VC2, 8)
	q.Push(mem(0))
	q.Push(pim(0))
	// Last served defaults to MEM (zero value), so PIM goes first.
	if order := q.ServeOrder(); order[0] != VCPim {
		t.Errorf("first order = %v, want PIM first", order)
	}
	q.Served(VCPim)
	if order := q.ServeOrder(); order[0] != VCMem {
		t.Errorf("after PIM served, order = %v, want MEM first", order)
	}
	q.Served(VCMem)
	if order := q.ServeOrder(); order[0] != VCPim {
		t.Errorf("alternation broken: %v", order)
	}
}

func TestServeOrderSkipsEmptyVC(t *testing.T) {
	q := NewVCQueue(config.VC2, 8)
	q.Push(mem(0))
	q.Served(VCMem) // would prefer PIM next, but PIM is empty
	if order := q.ServeOrder(); order[0] != VCMem {
		t.Errorf("order = %v, want MEM (PIM has no traffic)", order)
	}
}

// TestVCQueueProperties drives a queue with a random push/pop script and
// checks the structural invariants under both VC modes.
func TestVCQueueProperties(t *testing.T) {
	if err := quick.Check(func(modeSel bool, cap8 uint8, script []uint8) bool {
		mode := config.VC1
		if modeSel {
			mode = config.VC2
		}
		capacity := int(cap8%16) + 2
		q := NewVCQueue(mode, capacity)
		perVC := capacity
		if mode == config.VC2 {
			perVC = capacity / 2
		}
		var fifo [2][]uint64
		var id uint64
		for _, op := range script {
			switch op % 3 {
			case 0, 1: // push MEM or PIM
				id++
				r := &request.Request{ID: id, Kind: request.MemRead}
				if op%3 == 1 {
					r.Kind = request.PIMOp
					r.PIM = &request.PIMInfo{}
				}
				vc := vcOf(mode, r.Kind)
				ok := q.Push(r)
				if ok != (len(fifo[vc]) < perVC) {
					return false // capacity law violated
				}
				if ok {
					fifo[vc] = append(fifo[vc], r.ID)
				}
			case 2: // pop from a VC with content
				for _, vc := range []VCID{VCMem, VCPim} {
					if len(fifo[vc]) > 0 {
						got := q.Pop(vc)
						if got.ID != fifo[vc][0] {
							return false // FIFO order violated
						}
						fifo[vc] = fifo[vc][1:]
						break
					}
				}
			}
			if q.Len() != len(fifo[0])+len(fifo[1]) {
				return false // length accounting violated
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCrossbarDeliversToTargetChannel(t *testing.T) {
	cfg := smallCfg(config.VC1)
	n := New(cfg)
	r := mem(5)
	if !n.Inject(0, r) {
		t.Fatal("inject refused")
	}
	n.Tick()
	if got := n.Output(5).Len(); got != 1 {
		t.Fatalf("channel 5 queue len = %d", got)
	}
	if n.Output(5).Peek(VCMem) != r {
		t.Error("wrong request delivered")
	}
}

func TestCrossbarOneFlitPerInputPerCycle(t *testing.T) {
	cfg := smallCfg(config.VC1)
	n := New(cfg)
	n.Inject(0, mem(1))
	n.Inject(0, mem(2))
	n.Tick()
	total := n.Output(1).Len() + n.Output(2).Len()
	if total != 1 {
		t.Errorf("input sent %d flits in one cycle, want 1", total)
	}
	n.Tick()
	total = n.Output(1).Len() + n.Output(2).Len()
	if total != 2 {
		t.Errorf("second cycle total = %d, want 2", total)
	}
}

func TestCrossbarRoundRobinFairness(t *testing.T) {
	cfg := smallCfg(config.VC1)
	n := New(cfg)
	// All four inputs target channel 0; four cycles must serve each
	// input exactly once.
	var reqs []*request.Request
	for sm := 0; sm < 4; sm++ {
		r := mem(0)
		r.SM = sm
		reqs = append(reqs, r)
		if !n.Inject(sm, r) {
			t.Fatal("inject refused")
		}
	}
	seen := map[int]bool{}
	for cycle := 0; cycle < 4; cycle++ {
		n.Tick()
	}
	q := n.Output(0)
	for q.Len() > 0 {
		seen[q.Pop(VCMem).SM] = true
	}
	if len(seen) != 4 {
		t.Errorf("round-robin served %d distinct inputs over 4 cycles, want 4", len(seen))
	}
}

// TestVC1HeadOfLineBlocking reproduces the Fig. 7a failure mode: a PIM
// request stuck at the head of a shared queue (its channel's output is
// full of PIM work) blocks a MEM request behind it even though the MEM
// request's path is free.
func TestVC1HeadOfLineBlocking(t *testing.T) {
	cfg := smallCfg(config.VC1)
	n := New(cfg)
	// Fill channel 0's output queue with PIM traffic from SM 1.
	for i := 0; i < cfg.NoC.BufferSize; i++ {
		if !n.Inject(1, pim(0)) {
			t.Fatal("prefill inject refused")
		}
		n.Tick()
	}
	if n.Output(0).Len() != cfg.NoC.BufferSize {
		t.Fatalf("prefill: output len %d", n.Output(0).Len())
	}
	// SM 0: PIM to the congested channel 0, then MEM to free channel 3.
	n.Inject(0, pim(0))
	m := mem(3)
	n.Inject(0, m)
	for i := 0; i < 10; i++ {
		n.Tick()
	}
	if n.Output(3).Len() != 0 {
		t.Error("VC1: MEM request overtook a blocked PIM head in a shared FIFO")
	}
}

// TestVC2AvoidsHeadOfLineBlocking is the same scenario under VC2: the MEM
// request rides its own virtual channel past the blocked PIM head
// (Fig. 7b).
func TestVC2AvoidsHeadOfLineBlocking(t *testing.T) {
	cfg := smallCfg(config.VC2)
	n := New(cfg)
	for i := 0; i < cfg.NoC.BufferSize/2; i++ {
		if !n.Inject(1, pim(0)) {
			t.Fatal("prefill inject refused")
		}
		n.Tick()
	}
	n.Inject(0, pim(0))
	m := mem(3)
	n.Inject(0, m)
	for i := 0; i < 10; i++ {
		n.Tick()
	}
	if n.Output(3).Len() != 1 {
		t.Error("VC2: MEM request still blocked behind PIM head")
	}
}

func TestInjectRefusedWhenPortFull(t *testing.T) {
	cfg := smallCfg(config.VC1)
	n := New(cfg)
	for i := 0; i < cfg.GPU.InjectQueue; i++ {
		if !n.Inject(0, mem(0)) {
			t.Fatalf("inject %d refused below capacity", i)
		}
	}
	if n.Inject(0, mem(0)) {
		t.Error("inject accepted past port capacity")
	}
	if n.CanInject(0, request.MemRead) {
		t.Error("CanInject true on a full port")
	}
}

func TestPerLinkVCAlternation(t *testing.T) {
	cfg := smallCfg(config.VC2)
	n := New(cfg)
	// One input holds both MEM and PIM traffic to the same channel; the
	// modified iSlip must alternate VCs on the link.
	var order []request.Kind
	n.Inject(0, pim(2))
	n.Inject(0, pim(2))
	n.Inject(0, mem(2))
	n.Inject(0, mem(2))
	for i := 0; i < 4; i++ {
		n.Tick()
		q := n.Output(2)
		for _, vc := range []VCID{VCMem, VCPim} {
			for q.LenVC(vc) > 0 {
				order = append(order, q.Pop(vc).Kind)
			}
		}
	}
	if len(order) != 4 {
		t.Fatalf("delivered %d of 4", len(order))
	}
	// Strict alternation: no kind appears twice in a row.
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Errorf("VCs not alternating: %v", order)
			break
		}
	}
}
