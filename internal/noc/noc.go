// Package noc models the interconnect between the SMs and the memory
// partitions: per-SM injection ports, a crossbar with iSlip-style
// round-robin arbitration, and the per-channel interconnect->L2 queues.
//
// Two configurations are supported (Sec. V, Fig. 7):
//
//   - VC1: MEM and PIM requests share a single FIFO per port. A burst of
//     PIM requests parked at the head of a queue denies service to the
//     MEM requests behind it — the head-of-line blocking that motivates
//     the paper's interconnect change.
//   - VC2: a separate virtual channel carries PIM requests from the SMs
//     all the way to the memory controller. Each shared queue is split in
//     half so the total buffering matches VC1, and every link arbitrates
//     between the two VCs in round-robin fashion: the arbiter records the
//     previous VC served per incoming link and switches to the other VC
//     when it has traffic (a modified iSlip).
package noc

import (
	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/request"
	"repro/internal/telemetry"
)

// VCID indexes a virtual channel within a queue.
type VCID int

const (
	// VCMem carries MEM requests (and everything under VC1).
	VCMem VCID = 0
	// VCPim carries PIM requests under VC2.
	VCPim VCID = 1
)

// vcOf returns the virtual channel a request of the given kind travels in
// under the given mode.
func vcOf(mode config.VCMode, kind request.Kind) VCID {
	if mode == config.VC2 && kind == request.PIMOp {
		return VCPim
	}
	return VCMem
}

// VCQueue is a FIFO queue that is either a single shared buffer (VC1) or
// two half-depth per-VC buffers (VC2). It is used for the SM injection
// ports, the interconnect->L2 queues, and the L2->DRAM queues.
type VCQueue struct {
	mode  config.VCMode
	capVC int
	// Each VC is a fixed-capacity ring over buf: head indexes the oldest
	// entry, n counts occupancy. A plain slice FIFO (pop = q[1:]) walks
	// its backing array forward and forces a reallocation on a later
	// push, which the per-cycle hot path cannot afford.
	buf  [2][]*request.Request
	head [2]int
	n    [2]int
	rr   VCID // VC served last by this queue's consumer
}

// NewVCQueue builds a queue with totalCap entries of buffering: one FIFO
// of totalCap under VC1, two FIFOs of totalCap/2 under VC2 ("we split
// existing interconnect queues in half to add a PIM VC, keeping the total
// queue size equal", Sec. V-A).
func NewVCQueue(mode config.VCMode, totalCap int) *VCQueue {
	capVC := totalCap
	if mode == config.VC2 {
		capVC = totalCap / 2
		if capVC < 1 {
			capVC = 1
		}
	}
	q := &VCQueue{mode: mode, capVC: capVC}
	q.buf[0] = make([]*request.Request, capVC)
	if mode == config.VC2 {
		q.buf[1] = make([]*request.Request, capVC)
	}
	return q
}

// Mode returns the queue's VC configuration.
func (q *VCQueue) Mode() config.VCMode { return q.mode }

// VCs returns how many virtual channels the queue uses.
func (q *VCQueue) VCs() int {
	if q.mode == config.VC2 {
		return 2
	}
	return 1
}

// CanPush reports whether a request of the given kind has buffer space.
func (q *VCQueue) CanPush(kind request.Kind) bool {
	return q.n[vcOf(q.mode, kind)] < q.capVC
}

// SpaceFor returns the free entries available to requests of the given
// kind.
func (q *VCQueue) SpaceFor(kind request.Kind) int {
	return q.capVC - q.n[vcOf(q.mode, kind)]
}

// Push appends the request to its VC, returning false when full.
func (q *VCQueue) Push(r *request.Request) bool {
	vc := vcOf(q.mode, r.Kind)
	if q.n[vc] >= q.capVC {
		return false
	}
	q.buf[vc][(q.head[vc]+q.n[vc])%q.capVC] = r
	q.n[vc]++
	return true
}

// Peek returns the head of the given VC, or nil when empty.
func (q *VCQueue) Peek(vc VCID) *request.Request {
	if q.n[vc] == 0 {
		return nil
	}
	return q.buf[vc][q.head[vc]]
}

// Pop removes and returns the head of the given VC; it panics when empty.
func (q *VCQueue) Pop(vc VCID) *request.Request {
	if q.n[vc] == 0 {
		panic("noc: Pop on empty VC")
	}
	r := q.buf[vc][q.head[vc]]
	q.buf[vc][q.head[vc]] = nil
	q.head[vc] = (q.head[vc] + 1) % q.capVC
	q.n[vc]--
	return r
}

// Len returns the total queued requests across VCs.
func (q *VCQueue) Len() int { return q.n[0] + q.n[1] }

// LenVC returns the occupancy of one VC.
func (q *VCQueue) LenVC(vc VCID) int { return q.n[vc] }

// ServeOrder returns the VCs in the round-robin order the consumer should
// try this cycle: the VC not served last first, provided it has traffic.
// The caller must call Served after popping.
func (q *VCQueue) ServeOrder() [2]VCID {
	if q.mode != config.VC2 {
		return [2]VCID{VCMem, VCMem}
	}
	other := VCMem
	if q.rr == VCMem {
		other = VCPim
	}
	if q.n[other] > 0 {
		return [2]VCID{other, q.rr}
	}
	return [2]VCID{q.rr, other}
}

// Served records which VC the consumer just popped from, advancing the
// round-robin state.
func (q *VCQueue) Served(vc VCID) { q.rr = vc }

// Network is the SM->memory-partition crossbar with its input ports and
// per-channel output queues (the interconnect->L2 queues of Fig. 7).
type Network struct {
	cfg      config.Config
	inputs   []*VCQueue // one per SM
	outputs  []*VCQueue // one per channel
	rrInput  []int      // per output: round-robin pointer over inputs
	lastVC   []VCID     // per input link: VC served previously
	usedThis []bool     // per input: sent a flit this cycle (scratch)

	// Telemetry handles; nil when telemetry is off (methods no-op on nil
	// receivers).
	tmInjected *telemetry.Counter
	tmRejected *telemetry.Counter

	// Fault injector handle plus the per-cycle stalled-VC scratch it
	// fills; flt nil (the default) means no injection and stallVC stays
	// nil, keeping Tick bit-identical to a fault-free run.
	flt     *faults.Injector
	stallVC []int8

	// inFlits counts requests buffered across all input ports. Tick only
	// mutates durable state (rrInput, lastVC, output queues) when it
	// grants a flit, which requires a non-empty input, so the counter
	// lets NextEvent prove an empty crossbar cycle is a no-op in O(1).
	inFlits int
}

// New builds the network for the given configuration.
func New(cfg config.Config) *Network {
	n := &Network{
		cfg:      cfg,
		inputs:   make([]*VCQueue, cfg.GPU.NumSMs),
		outputs:  make([]*VCQueue, cfg.Memory.Channels),
		rrInput:  make([]int, cfg.Memory.Channels),
		lastVC:   make([]VCID, cfg.GPU.NumSMs),
		usedThis: make([]bool, cfg.GPU.NumSMs),
	}
	for i := range n.inputs {
		n.inputs[i] = NewVCQueue(cfg.NoC.Mode, cfg.GPU.InjectQueue)
	}
	for i := range n.outputs {
		n.outputs[i] = NewVCQueue(cfg.NoC.Mode, cfg.NoC.BufferSize)
	}
	return n
}

// CanInject reports whether SM sm can inject a request of the given kind.
func (n *Network) CanInject(sm int, kind request.Kind) bool {
	return n.inputs[sm].CanPush(kind)
}

// InputSpace returns the free injection entries at SM sm for the given
// kind (the L1 miss path needs room for a fetch plus a possible
// writeback).
func (n *Network) InputSpace(sm int, kind request.Kind) int {
	return n.inputs[sm].SpaceFor(kind)
}

// Inject enqueues a request at SM sm's input port, returning false when
// the port (the request's VC under VC2) is full.
func (n *Network) Inject(sm int, r *request.Request) bool {
	if !n.inputs[sm].Push(r) {
		n.tmRejected.Inc()
		return false
	}
	n.inFlits++
	n.tmInjected.Inc()
	return true
}

// InFlits returns the requests currently buffered at the input ports.
func (n *Network) InFlits() int { return n.inFlits }

// NextEvent returns the earliest GPU cycle strictly after now at which
// Tick could change network state. With an active link-stall schedule
// the per-link RNG draws once per link per cycle, so the network must
// tick every cycle to keep the fault stream aligned; otherwise a
// crossbar with empty input ports cannot grant anything (arbitration
// pointers move only on grants) and sleeps until an injection wakes it.
func (n *Network) NextEvent(now uint64) uint64 {
	if n.inFlits > 0 || n.flt.Schedule().NoCStallProb > 0 {
		return now + 1
	}
	return ^uint64(0)
}

// SetTelemetry installs the interconnect's telemetry handles (nil
// disables them).
func (n *Network) SetTelemetry(tm *telemetry.NoCMetrics) {
	if tm == nil {
		n.tmInjected, n.tmRejected = nil, nil
		return
	}
	n.tmInjected = tm.Injected
	n.tmRejected = tm.Rejected
}

// SetFaults attaches the run's fault injector (nil disables link-stall
// injection).
func (n *Network) SetFaults(inj *faults.Injector) {
	n.flt = inj
	if inj == nil {
		n.stallVC = nil
		return
	}
	n.stallVC = make([]int8, len(n.inputs))
}

// Output returns channel ch's interconnect->L2 queue, from which the L2
// slice (MEM VC) and the PIM forwarding path drain requests.
func (n *Network) Output(ch int) *VCQueue { return n.outputs[ch] }

// InputLen returns the occupancy of SM sm's injection port (for tests and
// congestion probes).
func (n *Network) InputLen(sm int) int { return n.inputs[sm].Len() }

// Tick runs one GPU cycle of crossbar arbitration: each output port
// accepts up to ChannelsPerCycle flits, each input port sends at most one
// flit, and per-link VC selection alternates iSlip-style.
func (n *Network) Tick() {
	for i := range n.usedThis {
		n.usedThis[i] = false
	}
	if n.flt != nil {
		// Advance every link's fault stream exactly once per cycle (even
		// idle links) so the stall sequence depends only on the schedule,
		// never on traffic.
		vcs := 1
		if n.cfg.NoC.Mode == config.VC2 {
			vcs = 2
		}
		for i := range n.stallVC {
			n.stallVC[i] = n.flt.LinkTick(i, vcs)
		}
	}
	numIn := len(n.inputs)
	for out, oq := range n.outputs {
		for grant := 0; grant < n.cfg.NoC.ChannelsPerCycle; grant++ {
			granted := false
			start := n.rrInput[out]
			for k := 0; k < numIn; k++ {
				in := (start + k) % numIn
				if n.usedThis[in] {
					continue
				}
				iq := n.inputs[in]
				if iq.Len() == 0 {
					continue
				}
				if vc, ok := n.pickVC(iq, in, out, oq); ok {
					r := iq.Pop(vc)
					n.inFlits--
					if !oq.Push(r) {
						panic("noc: output accepted but push failed")
					}
					n.lastVC[in] = vc
					n.usedThis[in] = true
					n.rrInput[out] = (in + 1) % numIn
					granted = true
					break
				}
			}
			if !granted {
				break
			}
		}
	}
}

// pickVC selects which VC of input in (if any) can send its head flit to
// output out this cycle, preferring the VC not served last on the link.
func (n *Network) pickVC(iq *VCQueue, in, out int, oq *VCQueue) (VCID, bool) {
	order := [2]VCID{VCMem, VCMem}
	if n.cfg.NoC.Mode == config.VC2 {
		first := VCPim
		if n.lastVC[in] == VCPim {
			first = VCMem
		}
		if iq.LenVC(first) == 0 {
			first = n.lastVC[in]
		}
		second := VCMem
		if first == VCMem {
			second = VCPim
		}
		order = [2]VCID{first, second}
	}
	for i, vc := range order {
		if i == 1 && vc == order[0] {
			break // VC1: single channel already tried
		}
		if n.stallVC != nil && n.stallVC[in] == int8(vc) {
			continue // transient link fault blocks this VC this cycle
		}
		head := iq.Peek(vc)
		if head == nil || head.Channel != out {
			continue
		}
		if !oq.CanPush(head.Kind) {
			continue
		}
		return vc, true
	}
	return VCMem, false
}
