package faults

import (
	"testing"

	"repro/internal/telemetry"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", spec, err)
	}
	want := Schedule{
		Seed:            7,
		DRAMRetryProb:   0.002,
		DRAMRetryCycles: 12,
		NoCStallProb:    0.001,
		NoCStallCycles:  24,
		ThrottlePeriod:  40000,
		ThrottleWindow:  2000,
	}
	if s != want {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}
	if !s.Active() {
		t.Fatal("schedule should be active")
	}
	back, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if back != s {
		t.Fatalf("String round-trip lost data: %+v vs %+v", back, s)
	}
}

func TestParseScheduleEmptyAndErrors(t *testing.T) {
	s, err := ParseSchedule("")
	if err != nil || s.Active() {
		t.Fatalf("empty spec: got %+v, %v", s, err)
	}
	for _, bad := range []string{
		"dram=0.5",           // missing cycles
		"dram=2:4",           // prob > 1
		"dram=0.1:0",         // zero cycles
		"noc=-0.1:4",         // negative prob
		"throttle=100:100",   // window == period
		"throttle=0:10",      // window without period
		"bogus=1",            // unknown clause
		"seed",               // not key=value
		"throttle=abc:10",    // bad period
		"noc=0.1:whoops",     // bad cycles
		"dram=0.001:4,dram=", // malformed second clause
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) should fail", bad)
		}
	}
}

func TestZeroScheduleInactiveInjector(t *testing.T) {
	if in := NewInjector(Schedule{}, 8, 20); in != nil {
		t.Fatal("inactive schedule must yield a nil injector")
	}
	if in := NewInjector(Schedule{Seed: 42}, 8, 20); in != nil {
		t.Fatal("seed alone does not activate injection")
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if d := in.CASDelay(0); d != 0 {
		t.Fatalf("nil CASDelay = %d", d)
	}
	if in.ThrottledTick(3, 12345) {
		t.Fatal("nil ThrottledTick = true")
	}
	if vc := in.LinkTick(1, 2); vc != -1 {
		t.Fatalf("nil LinkTick = %d", vc)
	}
	in.SetTelemetry(nil)
	if c := in.Counts(); c != (Counts{}) {
		t.Fatalf("nil Counts = %+v", c)
	}
	if s := in.Schedule(); s.Active() {
		t.Fatalf("nil Schedule active: %+v", s)
	}
}

// drive pushes a fixed request pattern through an injector and returns
// the full observable fault trace.
func drive(in *Injector) (delays []uint64, throttled []bool, stalls []int8) {
	for i := 0; i < 5000; i++ {
		ch := i % 4
		delays = append(delays, in.CASDelay(ch))
		throttled = append(throttled, in.ThrottledTick(ch, uint64(i)))
		stalls = append(stalls, in.LinkTick(i%6, 2))
	}
	return
}

func TestInjectorDeterministic(t *testing.T) {
	s := Schedule{
		Seed:            99,
		DRAMRetryProb:   0.01,
		DRAMRetryCycles: 12,
		NoCStallProb:    0.005,
		NoCStallCycles:  8,
		ThrottlePeriod:  700,
		ThrottleWindow:  50,
	}
	a := NewInjector(s, 4, 6)
	b := NewInjector(s, 4, 6)
	da, ta, sa := drive(a)
	db, tb, sb := drive(b)
	for i := range da {
		if da[i] != db[i] || ta[i] != tb[i] || sa[i] != sb[i] {
			t.Fatalf("trace diverged at step %d", i)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
	c := a.Counts()
	if c.DRAMRetries == 0 || c.NoCLinkStalls == 0 || c.ThrottledCycles == 0 {
		t.Fatalf("expected some of every fault class, got %+v", c)
	}
	if c.DRAMRetryCycles != c.DRAMRetries*uint64(s.DRAMRetryCycles) {
		t.Fatalf("retry cycle accounting off: %+v", c)
	}
	if c.NoCLinkStallCycles < c.NoCLinkStalls {
		t.Fatalf("stall cycle accounting off: %+v", c)
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	s := Schedule{DRAMRetryProb: 0.05, DRAMRetryCycles: 10}
	s2 := s
	s2.Seed = 1
	a, b := NewInjector(s, 4, 6), NewInjector(s2, 4, 6)
	da, _, _ := drive(a)
	db, _, _ := drive(b)
	same := true
	for i := range da {
		if da[i] != db[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical CAS traces")
	}
}

func TestLinkStallDuration(t *testing.T) {
	// Probability 1 stalls continuously: every call returns a stalled VC
	// and events only start at stream startup or right after one ends.
	s := Schedule{NoCStallProb: 1, NoCStallCycles: 3}
	in := NewInjector(s, 1, 1)
	for i := 0; i < 9; i++ {
		if vc := in.LinkTick(0, 2); vc < 0 {
			t.Fatalf("cycle %d not stalled under prob=1", i)
		}
	}
	c := in.Counts()
	if c.NoCLinkStalls != 3 || c.NoCLinkStallCycles != 9 {
		t.Fatalf("want 3 events over 9 cycles, got %+v", c)
	}
}

func TestThrottleWindowShape(t *testing.T) {
	s := Schedule{ThrottlePeriod: 100, ThrottleWindow: 10}
	in := NewInjector(s, 2, 0)
	per := [2]uint64{}
	for now := uint64(0); now < 1000; now++ {
		for ch := 0; ch < 2; ch++ {
			if in.ThrottledTick(ch, now) {
				per[ch]++
			}
		}
	}
	// Exactly window/period of the cycles throttle, per channel.
	for ch, n := range per {
		if n != 100 {
			t.Fatalf("channel %d throttled %d/1000 cycles, want 100", ch, n)
		}
	}
	if in.Counts().ThrottledCycles != 200 {
		t.Fatalf("total throttled = %d, want 200", in.Counts().ThrottledCycles)
	}
}

func TestInjectorTelemetryExport(t *testing.T) {
	s := Schedule{
		Seed:            5,
		DRAMRetryProb:   0.05,
		DRAMRetryCycles: 7,
		NoCStallProb:    0.02,
		NoCStallCycles:  4,
		ThrottlePeriod:  300,
		ThrottleWindow:  30,
	}
	in := NewInjector(s, 4, 6)
	col := telemetry.NewCollector(4, 0, 0)
	in.SetTelemetry(col)
	drive(in)
	c := in.Counts()
	var ecc, eccCyc, thr uint64
	for ch := 0; ch < 4; ch++ {
		cm := col.Channel(ch)
		ecc += cm.ECCRetries.Value()
		eccCyc += cm.ECCRetryCycles.Value()
		thr += cm.ThrottledCycles.Value()
	}
	if ecc != c.DRAMRetries || eccCyc != c.DRAMRetryCycles || thr != c.ThrottledCycles {
		t.Fatalf("channel telemetry %d/%d/%d disagrees with counts %+v", ecc, eccCyc, thr, c)
	}
	nm := col.NoC()
	if nm.LinkStalls.Value() != c.NoCLinkStalls || nm.LinkStallCycles.Value() != c.NoCLinkStallCycles {
		t.Fatalf("noc telemetry %d/%d disagrees with counts %+v",
			nm.LinkStalls.Value(), nm.LinkStallCycles.Value(), c)
	}
	// Detaching telemetry must not break counting.
	in.SetTelemetry(nil)
	drive(in)
	if in.Counts() == c {
		t.Fatal("counts frozen after SetTelemetry(nil)")
	}
}
