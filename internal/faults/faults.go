// Package faults is a deterministic, seed-driven fault-injection layer
// for the simulated memory system. A Schedule describes the transient
// fault processes to model — DRAM read retries / ECC-correction delays
// (extra cycles added to a CAS), NoC link stalls (one virtual channel of
// an injection link blocked for N cycles), and periodic whole-channel
// throttling windows — and an Injector realizes them with independent
// splitmix64 streams per injection site, so a given (seed, schedule)
// always produces the bit-identical fault sequence regardless of host,
// goroutine scheduling, or wall clock.
//
// The simulator holds the Injector behind a nil-safe handle, mirroring
// the telemetry pattern: every query method is a no-op on a nil receiver,
// so a run without a fault schedule executes the exact instruction
// sequence it does today (pinned by TestZeroFaultScheduleBitIdentical).
//
// The package imports only the standard library and internal/telemetry,
// so internal/config can embed a Schedule without an import cycle.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// Schedule describes a deterministic fault process. The zero value
// disables all injection.
type Schedule struct {
	// Seed drives every fault stream; 0 lets the simulator substitute
	// its own config seed, so faulty runs stay reproducible by default.
	Seed int64 `json:"seed,omitempty"`

	// DRAMRetryProb is the per-column-command probability of an ECC
	// correction / read retry that adds DRAMRetryCycles DRAM cycles to
	// the command's completion (and holds the bank through them).
	DRAMRetryProb   float64 `json:"dram_retry_prob,omitempty"`
	DRAMRetryCycles int64   `json:"dram_retry_cycles,omitempty"`

	// NoCStallProb is the per-link per-GPU-cycle probability that one
	// virtual channel of an SM injection link stalls (sends nothing) for
	// NoCStallCycles cycles. Under VC1 the whole link stalls.
	NoCStallProb   float64 `json:"noc_stall_prob,omitempty"`
	NoCStallCycles int64   `json:"noc_stall_cycles,omitempty"`

	// ThrottlePeriod/ThrottleWindow define periodic whole-channel
	// throttling (e.g. thermal or refresh-management windows): every
	// ThrottlePeriod DRAM cycles each channel issues no new commands for
	// ThrottleWindow cycles, at a seed-derived per-channel phase so the
	// channels do not throttle in lockstep. Both must be positive to
	// enable; in-flight requests still complete during a window.
	ThrottlePeriod uint64 `json:"throttle_period,omitempty"`
	ThrottleWindow uint64 `json:"throttle_window,omitempty"`
}

// Active reports whether the schedule injects anything at all.
func (s Schedule) Active() bool {
	return s.DRAMRetryProb > 0 || s.NoCStallProb > 0 ||
		(s.ThrottlePeriod > 0 && s.ThrottleWindow > 0)
}

// Validate checks the schedule's internal consistency.
func (s Schedule) Validate() error {
	switch {
	case s.DRAMRetryProb < 0 || s.DRAMRetryProb > 1:
		return fmt.Errorf("faults: DRAM retry probability must be in [0,1], got %g", s.DRAMRetryProb)
	case s.DRAMRetryProb > 0 && s.DRAMRetryCycles <= 0:
		return fmt.Errorf("faults: DRAM retry needs positive extra cycles, got %d", s.DRAMRetryCycles)
	case s.NoCStallProb < 0 || s.NoCStallProb > 1:
		return fmt.Errorf("faults: NoC stall probability must be in [0,1], got %g", s.NoCStallProb)
	case s.NoCStallProb > 0 && s.NoCStallCycles <= 0:
		return fmt.Errorf("faults: NoC stall needs positive duration, got %d", s.NoCStallCycles)
	case s.ThrottleWindow > 0 && s.ThrottlePeriod == 0:
		return fmt.Errorf("faults: throttle window without a period")
	case s.ThrottlePeriod > 0 && s.ThrottleWindow >= s.ThrottlePeriod:
		return fmt.Errorf("faults: throttle window %d must be below the period %d", s.ThrottleWindow, s.ThrottlePeriod)
	}
	return nil
}

// String renders the schedule in the ParseSchedule format.
func (s Schedule) String() string {
	if !s.Active() && s.Seed == 0 {
		return ""
	}
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if s.DRAMRetryProb > 0 {
		parts = append(parts, fmt.Sprintf("dram=%g:%d", s.DRAMRetryProb, s.DRAMRetryCycles))
	}
	if s.NoCStallProb > 0 {
		parts = append(parts, fmt.Sprintf("noc=%g:%d", s.NoCStallProb, s.NoCStallCycles))
	}
	if s.ThrottlePeriod > 0 && s.ThrottleWindow > 0 {
		parts = append(parts, fmt.Sprintf("throttle=%d:%d", s.ThrottlePeriod, s.ThrottleWindow))
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the CLI fault-schedule syntax:
//
//	seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000
//
// where dram=<prob>:<extra cycles>, noc=<prob>:<stall cycles> and
// throttle=<period>:<window> (DRAM cycles). Every clause is optional; an
// empty string yields the zero (inactive) schedule.
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return Schedule{}, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: seed %q: %v", val, err)
			}
			s.Seed = n
		case "dram":
			prob, cycles, err := parseRate(val)
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: dram %q: %v", val, err)
			}
			s.DRAMRetryProb, s.DRAMRetryCycles = prob, cycles
		case "noc":
			prob, cycles, err := parseRate(val)
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: noc %q: %v", val, err)
			}
			s.NoCStallProb, s.NoCStallCycles = prob, cycles
		case "throttle":
			p, w, ok := strings.Cut(val, ":")
			if !ok {
				return Schedule{}, fmt.Errorf("faults: throttle %q wants period:window", val)
			}
			period, err := strconv.ParseUint(p, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: throttle period %q: %v", p, err)
			}
			window, err := strconv.ParseUint(w, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: throttle window %q: %v", w, err)
			}
			s.ThrottlePeriod, s.ThrottleWindow = period, window
		default:
			return Schedule{}, fmt.Errorf("faults: unknown clause %q (want seed/dram/noc/throttle)", key)
		}
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func parseRate(val string) (prob float64, cycles int64, err error) {
	p, c, ok := strings.Cut(val, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want probability:cycles")
	}
	if prob, err = strconv.ParseFloat(p, 64); err != nil {
		return 0, 0, err
	}
	if cycles, err = strconv.ParseInt(c, 10, 64); err != nil {
		return 0, 0, err
	}
	return prob, cycles, nil
}

// Counts are the cumulative injected-fault totals of one run.
type Counts struct {
	// DRAMRetries counts column commands hit by an ECC retry;
	// DRAMRetryCycles the total extra DRAM cycles they added.
	DRAMRetries     uint64 `json:"dram_retries"`
	DRAMRetryCycles uint64 `json:"dram_retry_cycles"`
	// NoCLinkStalls counts stall events; NoCLinkStallCycles the total
	// link-cycles lost to them.
	NoCLinkStalls      uint64 `json:"noc_link_stalls"`
	NoCLinkStallCycles uint64 `json:"noc_link_stall_cycles"`
	// ThrottledCycles counts channel-cycles spent inside throttle
	// windows.
	ThrottledCycles uint64 `json:"throttled_cycles"`
}

// splitmix64 is the per-site PRNG: tiny state, excellent diffusion, and
// a counter-free API (the state itself is the stream position).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a draw to [0,1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

type chanFaults struct {
	casRNG         uint64
	throttlePhase  uint64
	throttledCount uint64
}

type linkFaults struct {
	rng       uint64
	stallLeft int64
	stalledVC int8
}

// Injector realizes a Schedule over a machine shape. All query methods
// are nil-receiver safe (no faults); a non-nil Injector belongs to one
// simulation and must only be queried from its goroutine.
type Injector struct {
	sched  Schedule
	chans  []chanFaults
	links  []linkFaults
	counts Counts

	// Telemetry handles; nil when telemetry is off (their methods no-op
	// on nil receivers).
	tmECCRetries     []*telemetry.Counter
	tmECCRetryCycles []*telemetry.Counter
	tmThrottled      []*telemetry.Counter
	tmLinkStalls     *telemetry.Counter
	tmLinkStallCyc   *telemetry.Counter
}

// NewInjector builds an injector for channels memory channels and links
// SM injection links. It returns nil when the schedule is inactive, so
// callers can wire the result unconditionally.
func NewInjector(s Schedule, channels, links int) *Injector {
	if !s.Active() {
		return nil
	}
	in := &Injector{
		sched: s,
		chans: make([]chanFaults, channels),
		links: make([]linkFaults, links),
	}
	seed := uint64(s.Seed)
	for ch := range in.chans {
		// One independent stream per channel, plus a seed-derived
		// throttle phase spreading windows across channels.
		st := seed ^ (0xD1B54A32D192ED03 * uint64(ch+1))
		in.chans[ch].casRNG = splitmix64(&st)
		if s.ThrottlePeriod > 0 {
			in.chans[ch].throttlePhase = splitmix64(&st) % s.ThrottlePeriod
		}
	}
	for l := range in.links {
		st := seed ^ (0x9E6C63D0876A9A47 * uint64(l+1))
		in.links[l].rng = splitmix64(&st)
		in.links[l].stalledVC = -1
	}
	return in
}

// Schedule returns the realized schedule (zero for a nil injector).
func (in *Injector) Schedule() Schedule {
	if in == nil {
		return Schedule{}
	}
	return in.sched
}

// SetTelemetry wires the per-fault counters into a run's collector
// (nil-safe on both sides).
func (in *Injector) SetTelemetry(col *telemetry.Collector) {
	if in == nil {
		return
	}
	if col == nil {
		in.tmECCRetries, in.tmECCRetryCycles, in.tmThrottled = nil, nil, nil
		in.tmLinkStalls, in.tmLinkStallCyc = nil, nil
		return
	}
	in.tmECCRetries = make([]*telemetry.Counter, len(in.chans))
	in.tmECCRetryCycles = make([]*telemetry.Counter, len(in.chans))
	in.tmThrottled = make([]*telemetry.Counter, len(in.chans))
	for ch := range in.chans {
		cm := col.Channel(ch)
		if cm == nil {
			continue
		}
		in.tmECCRetries[ch] = cm.ECCRetries
		in.tmECCRetryCycles[ch] = cm.ECCRetryCycles
		in.tmThrottled[ch] = cm.ThrottledCycles
	}
	if nm := col.NoC(); nm != nil {
		in.tmLinkStalls = nm.LinkStalls
		in.tmLinkStallCyc = nm.LinkStallCycles
	}
}

// CASDelay returns the extra DRAM cycles an ECC retry adds to the column
// command a channel ch controller just issued (0 almost always). The
// caller must invoke it exactly once per column command so the stream
// stays aligned with the command sequence.
func (in *Injector) CASDelay(ch int) uint64 {
	if in == nil || in.sched.DRAMRetryProb <= 0 {
		return 0
	}
	cf := &in.chans[ch]
	if unit(splitmix64(&cf.casRNG)) >= in.sched.DRAMRetryProb {
		return 0
	}
	extra := uint64(in.sched.DRAMRetryCycles)
	in.counts.DRAMRetries++
	in.counts.DRAMRetryCycles += extra
	if in.tmECCRetries != nil {
		in.tmECCRetries[ch].Inc()
		in.tmECCRetryCycles[ch].Add(extra)
	}
	return extra
}

// ThrottledTick reports whether channel ch sits inside a throttle window
// at DRAM cycle now, counting the throttled cycle. Pure arithmetic on
// (now, phase) — no stream state — so callers may gate early returns on
// it freely.
func (in *Injector) ThrottledTick(ch int, now uint64) bool {
	if in == nil || in.sched.ThrottlePeriod == 0 || in.sched.ThrottleWindow == 0 {
		return false
	}
	cf := &in.chans[ch]
	if (now+cf.throttlePhase)%in.sched.ThrottlePeriod >= in.sched.ThrottleWindow {
		return false
	}
	in.counts.ThrottledCycles++
	if in.tmThrottled != nil {
		in.tmThrottled[ch].Inc()
	}
	return true
}

// throttledBelow counts cycles t in [0, n) of channel phase offset with
// (t+phase) % period < window — the prefix form of the throttle process.
func (in *Injector) throttledBelow(phase, n uint64) uint64 {
	p, w := in.sched.ThrottlePeriod, in.sched.ThrottleWindow
	x := n + phase
	full := (x / p) * w
	if r := x % p; r < w {
		full += r
	} else {
		full += w
	}
	// Subtract the cycles contributed by the phase offset itself.
	pre := (phase / p) * w
	if r := phase % p; r < w {
		pre += r
	} else {
		pre += w
	}
	return full - pre
}

// ThrottledRange applies ThrottledTick's accounting for every cycle in
// [from, to] in closed form: it adds the number of throttled cycles in
// the range to the counters exactly as per-cycle calls would. The event
// engine uses it when skipping a controller across a range it has proven
// quiescent; calling it and ticking each cycle are bit-identical.
func (in *Injector) ThrottledRange(ch int, from, to uint64) {
	if in == nil || in.sched.ThrottlePeriod == 0 || in.sched.ThrottleWindow == 0 || to < from {
		return
	}
	cf := &in.chans[ch]
	n := in.throttledBelow(cf.throttlePhase+from, to-from+1)
	if n == 0 {
		return
	}
	in.counts.ThrottledCycles += n
	if in.tmThrottled != nil {
		in.tmThrottled[ch].Add(n)
	}
}

// Throttled reports whether channel ch sits inside a throttle window at
// DRAM cycle now, without counting the cycle (the pure-query twin of
// ThrottledTick, for next-event computations).
func (in *Injector) Throttled(ch int, now uint64) bool {
	if in == nil || in.sched.ThrottlePeriod == 0 || in.sched.ThrottleWindow == 0 {
		return false
	}
	return (now+in.chans[ch].throttlePhase)%in.sched.ThrottlePeriod < in.sched.ThrottleWindow
}

// NextUnthrottled returns the earliest cycle >= now at which channel ch is
// outside its throttle window. Pure arithmetic — no stream state.
func (in *Injector) NextUnthrottled(ch int, now uint64) uint64 {
	if in == nil || in.sched.ThrottlePeriod == 0 || in.sched.ThrottleWindow == 0 {
		return now
	}
	cf := &in.chans[ch]
	r := (now + cf.throttlePhase) % in.sched.ThrottlePeriod
	if r >= in.sched.ThrottleWindow {
		return now
	}
	return now + (in.sched.ThrottleWindow - r)
}

// NextEvent returns the earliest cycle strictly after now at which the
// injector's time-driven state changes: the next throttle-window boundary
// (onset or end) of any channel, in DRAM cycles. Link-stall faults draw
// the RNG every GPU cycle, so an active NoC schedule pins the event to
// now+1 (the network must tick every cycle to keep the stream aligned).
// Nil injectors never wake.
func (in *Injector) NextEvent(now uint64) uint64 {
	if in == nil {
		return ^uint64(0)
	}
	if in.sched.NoCStallProb > 0 {
		return now + 1
	}
	if in.sched.ThrottlePeriod == 0 || in.sched.ThrottleWindow == 0 {
		return ^uint64(0)
	}
	next := ^uint64(0)
	for ch := range in.chans {
		r := (now + in.chans[ch].throttlePhase) % in.sched.ThrottlePeriod
		var at uint64
		if r < in.sched.ThrottleWindow {
			at = now + (in.sched.ThrottleWindow - r) // window end
		} else {
			at = now + (in.sched.ThrottlePeriod - r) // next onset
		}
		if at < next {
			next = at
		}
	}
	return next
}

// LinkTick advances link l by one GPU cycle and returns the virtual
// channel stalled this cycle (-1 for none). The caller must invoke it
// exactly once per link per cycle. vcs is the number of virtual channels
// on the link (1 under VC1 — the whole link stalls — or 2 under VC2).
func (in *Injector) LinkTick(l, vcs int) int8 {
	if in == nil || in.sched.NoCStallProb <= 0 {
		return -1
	}
	lf := &in.links[l]
	if lf.stallLeft > 0 {
		lf.stallLeft--
		in.counts.NoCLinkStallCycles++
		in.tmLinkStallCyc.Inc()
		return lf.stalledVC
	}
	draw := splitmix64(&lf.rng)
	if unit(draw) >= in.sched.NoCStallProb {
		lf.stalledVC = -1
		return -1
	}
	lf.stallLeft = in.sched.NoCStallCycles - 1
	lf.stalledVC = 0
	if vcs > 1 {
		lf.stalledVC = int8((draw >> 60) % uint64(vcs))
	}
	in.counts.NoCLinkStalls++
	in.counts.NoCLinkStallCycles++
	in.tmLinkStalls.Inc()
	in.tmLinkStallCyc.Inc()
	return lf.stalledVC
}

// Counts returns a snapshot of the cumulative fault totals.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}
