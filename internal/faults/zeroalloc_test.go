package faults

import "testing"

// TestNilInjectorZeroAlloc locks in the cost of a fault-free build: a
// nil Injector is the "no schedule" configuration, and its per-cycle
// queries sit on the DRAM and NoC hot paths, so they must not allocate.
func TestNilInjectorZeroAlloc(t *testing.T) {
	var in *Injector
	if avg := testing.AllocsPerRun(1000, func() {
		_ = in.CASDelay(0)
		_ = in.ThrottledTick(0, 17)
		_ = in.LinkTick(0, 2)
	}); avg != 0 {
		t.Errorf("nil injector queries: %v allocs/op, want 0", avg)
	}
}
