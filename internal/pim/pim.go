// Package pim models the functional side of the bank-level PIM units of
// Fig. 2: one functional unit (FU) per pair of banks, each FU holding a
// DRAM-word-wide SIMD ALU and a register file whose entries are split
// between the two banks it serves (8 of 16 per bank in Table I).
//
// The timing of lockstep PIM execution lives in package dram (broadcast
// precharge/activate and the all-bank op). This package enforces the
// *semantic* invariants the paper relies on for PIM correctness:
//
//   - register-file state persists across MEM/PIM mode switches
//     (Sec. II-A: "The PIM register file holds state across MEM/PIM
//     switch boundaries");
//   - blocks execute sequentially (Sec. II-B: "blocks must be executed
//     sequentially for correctness due to their dependencies");
//   - compute and store operations only consume register-file entries
//     that an earlier load or compute produced.
package pim

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/request"
)

// Units is the functional state of all PIM FUs of one channel. All banks
// execute the same op in lockstep, so a single op application updates
// every bank's register-file half identically; Units tracks them
// per bank anyway so that the register-file partitioning of Fig. 1 is
// visible and testable.
type Units struct {
	banks     int
	fus       int
	rfPerBank int

	// valid[bank][entry] reports whether the entry holds defined data.
	valid [][]bool

	// lastBlock is the highest block index executed so far; -1 before
	// the first op. Blocks may repeat ops (same index) but must never
	// go backwards.
	lastBlock int

	// Loads, Computes, Stores count executed ops by kind.
	Loads, Computes, Stores uint64
}

// NewUnits builds the FUs for one channel.
func NewUnits(mem config.Memory, p config.PIM) *Units {
	u := &Units{
		banks:     mem.Banks,
		fus:       p.FUsPerChannel,
		rfPerBank: p.RFPerBank(),
		valid:     make([][]bool, mem.Banks),
		lastBlock: -1,
	}
	for b := range u.valid {
		u.valid[b] = make([]bool, u.rfPerBank)
	}
	return u
}

// RFPerBank returns the register-file entries available to each bank.
func (u *Units) RFPerBank() int { return u.rfPerBank }

// FUs returns the number of functional units in the channel.
func (u *Units) FUs() int { return u.fus }

// BanksPerFU returns how many banks share one FU.
func (u *Units) BanksPerFU() int { return u.banks / u.fus }

// Execute applies one lockstep PIM op to every bank and validates the
// correctness invariants. It returns a descriptive error (and leaves the
// state unchanged) if the op is malformed; the memory controller treats
// such an error as a programming bug and surfaces it.
func (u *Units) Execute(info *request.PIMInfo) error {
	if info == nil {
		return fmt.Errorf("pim: op without PIM payload")
	}
	if info.RFEntry < 0 || info.RFEntry >= u.rfPerBank {
		return fmt.Errorf("pim: RF entry %d out of range [0,%d)", info.RFEntry, u.rfPerBank)
	}
	if info.Block < u.lastBlock {
		return fmt.Errorf("pim: block %d executed after block %d (sequential block ordering violated)", info.Block, u.lastBlock)
	}
	switch info.Op {
	case request.PIMLoad:
		for b := range u.valid {
			u.valid[b][info.RFEntry] = true
		}
		u.Loads++
	case request.PIMCompute:
		// A compute both reads DRAM and combines with the RF entry;
		// kernels may accumulate into a fresh entry (e.g. zero-init
		// MAC), so reading an invalid entry is legal only for the
		// entry it also defines. The conservative check used here
		// mirrors Fig. 3's pattern: compute defines its entry.
		for b := range u.valid {
			u.valid[b][info.RFEntry] = true
		}
		u.Computes++
	case request.PIMStore:
		for b := range u.valid {
			if !u.valid[b][info.RFEntry] {
				return fmt.Errorf("pim: store of undefined RF entry %d (bank %d)", info.RFEntry, b)
			}
		}
		u.Stores++
	default:
		return fmt.Errorf("pim: unknown op kind %v", info.Op)
	}
	u.lastBlock = info.Block
	return nil
}

// EntryValid reports whether the given bank's RF entry holds defined data.
// Register-file state survives mode switches by construction: nothing in
// the simulator ever clears it except Reset.
func (u *Units) EntryValid(bankIdx, entry int) bool {
	return u.valid[bankIdx][entry]
}

// Reset clears all register-file state and the block cursor, as a new
// kernel launch would.
func (u *Units) Reset() {
	for b := range u.valid {
		for e := range u.valid[b] {
			u.valid[b][e] = false
		}
	}
	u.lastBlock = -1
}

// Ops returns the total lockstep operations executed.
func (u *Units) Ops() uint64 { return u.Loads + u.Computes + u.Stores }
