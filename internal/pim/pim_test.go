package pim

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/request"
)

func newUnits() *Units {
	cfg := config.Paper()
	return NewUnits(cfg.Memory, cfg.PIM)
}

func TestGeometry(t *testing.T) {
	u := newUnits()
	if u.RFPerBank() != 8 {
		t.Errorf("RF per bank = %d, want 8", u.RFPerBank())
	}
	if u.FUs() != 8 {
		t.Errorf("FUs = %d, want 8", u.FUs())
	}
	if u.BanksPerFU() != 2 {
		t.Errorf("banks per FU = %d, want 2 (one FU per bank pair)", u.BanksPerFU())
	}
}

func TestLoadComputeStoreSequence(t *testing.T) {
	u := newUnits()
	ops := []*request.PIMInfo{
		{Op: request.PIMLoad, RFEntry: 0, Block: 0},
		{Op: request.PIMCompute, RFEntry: 0, Block: 0},
		{Op: request.PIMStore, RFEntry: 0, Block: 0},
	}
	for i, op := range ops {
		if err := u.Execute(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if u.Loads != 1 || u.Computes != 1 || u.Stores != 1 {
		t.Errorf("counters = %d/%d/%d", u.Loads, u.Computes, u.Stores)
	}
}

func TestStoreOfUndefinedEntryFails(t *testing.T) {
	u := newUnits()
	if err := u.Execute(&request.PIMInfo{Op: request.PIMStore, RFEntry: 3, Block: 0}); err == nil {
		t.Error("store of undefined RF entry accepted")
	}
}

func TestRFEntryBounds(t *testing.T) {
	u := newUnits()
	if err := u.Execute(&request.PIMInfo{Op: request.PIMLoad, RFEntry: 8, Block: 0}); err == nil {
		t.Error("RF entry 8 accepted with 8 entries per bank")
	}
	if err := u.Execute(&request.PIMInfo{Op: request.PIMLoad, RFEntry: -1, Block: 0}); err == nil {
		t.Error("negative RF entry accepted")
	}
}

func TestBlockOrderingEnforced(t *testing.T) {
	u := newUnits()
	if err := u.Execute(&request.PIMInfo{Op: request.PIMLoad, RFEntry: 0, Block: 2}); err != nil {
		t.Fatal(err)
	}
	// Same block again is fine; going backwards is not.
	if err := u.Execute(&request.PIMInfo{Op: request.PIMLoad, RFEntry: 1, Block: 2}); err != nil {
		t.Errorf("same block rejected: %v", err)
	}
	if err := u.Execute(&request.PIMInfo{Op: request.PIMLoad, RFEntry: 0, Block: 1}); err == nil {
		t.Error("backwards block accepted (sequential ordering violated)")
	}
}

func TestNilPayloadRejected(t *testing.T) {
	u := newUnits()
	if err := u.Execute(nil); err == nil {
		t.Error("nil payload accepted")
	}
}

// TestRFStatePersistsAcrossModeSwitches documents the Sec. II-A invariant:
// nothing clears the register file except an explicit Reset, so state set
// before a (simulated) MEM phase is still there after it.
func TestRFStatePersistsAcrossModeSwitches(t *testing.T) {
	u := newUnits()
	if err := u.Execute(&request.PIMInfo{Op: request.PIMLoad, RFEntry: 5, Block: 0}); err != nil {
		t.Fatal(err)
	}
	// ... MEM phase happens here: no PIM calls ...
	for b := 0; b < 16; b++ {
		if !u.EntryValid(b, 5) {
			t.Fatalf("bank %d lost RF entry 5 across a mode switch", b)
		}
	}
	if err := u.Execute(&request.PIMInfo{Op: request.PIMStore, RFEntry: 5, Block: 1}); err != nil {
		t.Errorf("store after mode switch failed: %v", err)
	}
}

func TestResetClearsEverything(t *testing.T) {
	u := newUnits()
	u.Execute(&request.PIMInfo{Op: request.PIMLoad, RFEntry: 2, Block: 7})
	u.Reset()
	if u.EntryValid(0, 2) {
		t.Error("RF entry survived Reset")
	}
	if err := u.Execute(&request.PIMInfo{Op: request.PIMLoad, RFEntry: 0, Block: 0}); err != nil {
		t.Errorf("block 0 rejected after Reset: %v", err)
	}
}

// TestLockstepProperty: any successful op defines/uses the same entry on
// every bank — bank RF states never diverge under lockstep execution.
func TestLockstepProperty(t *testing.T) {
	u := newUnits()
	block := 0
	f := func(entry uint8, kind uint8) bool {
		info := &request.PIMInfo{
			Op:      request.PIMOpKind(kind % 3),
			RFEntry: int(entry % 8),
			Block:   block,
		}
		err := u.Execute(info)
		if err != nil {
			// A failed op must leave all banks consistent too.
			info.Op = request.PIMLoad
			if e2 := u.Execute(info); e2 != nil {
				return false
			}
		}
		block++
		first := u.EntryValid(0, info.RFEntry)
		for b := 1; b < 16; b++ {
			if u.EntryValid(b, info.RFEntry) != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
