package request

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		MemRead:  "READ",
		MemWrite: "WRITE",
		PIMOp:    "PIM",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind not rendered defensively")
	}
}

func TestKindIsPIM(t *testing.T) {
	if MemRead.IsPIM() || MemWrite.IsPIM() || !PIMOp.IsPIM() {
		t.Error("IsPIM classification wrong")
	}
}

func TestPIMOpKindStrings(t *testing.T) {
	cases := map[PIMOpKind]string{
		PIMLoad:    "pim.load",
		PIMCompute: "pim.op",
		PIMStore:   "pim.store",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.HasPrefix(PIMOpKind(9).String(), "PIMOpKind(") {
		t.Error("unknown op kind not rendered defensively")
	}
}

func TestIsWrite(t *testing.T) {
	if (&Request{Kind: MemRead}).IsWrite() {
		t.Error("read classified as write")
	}
	if !(&Request{Kind: MemWrite}).IsWrite() {
		t.Error("write not classified as write")
	}
	// PIM ops are encoded as non-temporal stores by the host.
	if !(&Request{Kind: PIMOp}).IsWrite() {
		t.Error("PIM op not classified as write")
	}
}

func TestRequestString(t *testing.T) {
	mem := &Request{ID: 7, Kind: MemRead, Channel: 3, Bank: 5, Row: 42, Col: 9}
	s := mem.String()
	for _, want := range []string{"req#7", "READ", "ch3", "b5", "row42", "col9"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
	pim := &Request{ID: 8, Kind: PIMOp, Channel: 1, Row: 10,
		PIM: &PIMInfo{Op: PIMStore, RFEntry: 3, Block: 2}}
	s = pim.String()
	for _, want := range []string{"req#8", "PIM", "ch1", "row10", "blk2", "pim.store"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
}
