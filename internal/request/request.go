// Package request defines the memory request types exchanged between the
// GPU cores, the interconnect, the caches, and the memory controller.
//
// The simulator distinguishes two request classes, mirroring the paper's
// terminology: MEM requests (ordinary loads and stores issued by GPU
// kernels) and PIM requests (cache-streaming stores that encode PIM
// operations and are executed in-place by the per-bank PIM functional
// units). MEM and PIM requests cannot be serviced concurrently by a
// channel; the memory controller switches between MEM mode and PIM mode.
package request

import "fmt"

// Kind identifies what a request asks the memory system to do.
type Kind uint8

const (
	// MemRead is an ordinary load that misses in the caches and reads a
	// DRAM burst.
	MemRead Kind = iota
	// MemWrite is an ordinary store (or an L2 dirty writeback) that
	// writes a DRAM burst.
	MemWrite
	// PIMOp is a cache-streaming store encoding one PIM operation. It
	// bypasses all caches and executes on every bank of its channel in
	// lockstep while the controller is in PIM mode.
	PIMOp
)

// String returns the conventional short name for the kind.
func (k Kind) String() string {
	switch k {
	case MemRead:
		return "READ"
	case MemWrite:
		return "WRITE"
	case PIMOp:
		return "PIM"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsPIM reports whether the kind is serviced in PIM mode.
func (k Kind) IsPIM() bool { return k == PIMOp }

// PIMOpKind identifies the operation a PIM request performs at the
// functional unit. The distinction only matters for statistics and for the
// register-file correctness checks; all kinds share the same timing.
type PIMOpKind uint8

const (
	// PIMLoad copies one DRAM word per bank from the open row into the
	// PIM register file.
	PIMLoad PIMOpKind = iota
	// PIMCompute reads one DRAM word per bank, combines it with a
	// register-file entry through the SIMD ALU, and writes the result
	// back to the register file.
	PIMCompute
	// PIMStore writes one register-file entry per bank into the open
	// row.
	PIMStore
)

// String returns the mnemonic used in traces.
func (k PIMOpKind) String() string {
	switch k {
	case PIMLoad:
		return "pim.load"
	case PIMCompute:
		return "pim.op"
	case PIMStore:
		return "pim.store"
	}
	return fmt.Sprintf("PIMOpKind(%d)", uint8(k))
}

// PIMInfo carries the PIM-specific payload of a PIMOp request.
type PIMInfo struct {
	// Op is the operation performed at the functional unit.
	Op PIMOpKind
	// RFEntry is the register-file entry (per bank) the operation reads
	// or writes. Valid entries are 0..RFSizePerBank-1.
	RFEntry int
	// Block is the index of the kernel block this op belongs to. Ops of
	// the same block address the same row; blocks execute sequentially.
	Block int
}

// Request is a single memory-system transaction. One request corresponds
// to one access-granularity burst (bus width x burst length bytes) and one
// interconnect flit.
//
// Requests are created by the GPU cores, decorated with their decoded
// channel/bank/row/column coordinates by the address mapper, and threaded
// through the interconnect queues to the per-channel memory controller.
type Request struct {
	// ID is unique across the simulation and increases in creation
	// order.
	ID uint64
	// Kind is the request class.
	Kind Kind
	// Addr is the byte address of the access.
	Addr uint64

	// Decoded coordinates (filled by addrmap.Mapper.Decode).
	Channel int
	Bank    int
	Row     uint32
	Col     uint32

	// SM is the index of the issuing streaming multiprocessor.
	SM int
	// App identifies the kernel (application) that issued the request.
	// In the paper's two-tenant scenarios app 0 is the GPU kernel and
	// app 1 the PIM kernel.
	App int

	// InjectGPUCycle is the GPU cycle at which the request entered the
	// interconnect.
	InjectGPUCycle uint64
	// ArriveMCCycle is the DRAM cycle at which the request entered the
	// memory controller queues.
	ArriveMCCycle uint64
	// SeqNo is the controller-assigned age: an incrementing ID assigned
	// as the request enters the memory controller (Sec. VII). Lower is
	// older.
	SeqNo uint64

	// PIM is non-nil iff Kind == PIMOp.
	PIM *PIMInfo

	// Synthetic marks memory-system-generated traffic (L1/L2 dirty
	// writebacks). Synthetic requests occupy queues and DRAM bandwidth
	// but do not count toward kernel completion.
	Synthetic bool

	// L1Fetch marks a request that allocated an L1 MSHR on its way out
	// of the SM; its response must fill the L1 and release merged
	// requests before kernel completion accounting. L2Fetch marks an L2
	// MSHR primary the same way (a synthetic L1 writeback can be an L2
	// fetch primary, so the flags are independent of Synthetic).
	L1Fetch bool
	L2Fetch bool

	// RowClassified marks that the memory controller has already
	// recorded this request's row hit/miss classification (each request
	// is classified exactly once, on its first scheduling attempt).
	// WasRowHit holds the recorded classification.
	RowClassified bool
	WasRowHit     bool
}

// IsWrite reports whether the request writes DRAM (MemWrite or PIMOp;
// PIM ops are encoded as non-temporal stores by the host).
func (r *Request) IsWrite() bool { return r.Kind != MemRead }

// String renders a compact single-line description, useful in test
// failures and traces.
func (r *Request) String() string {
	if r.Kind == PIMOp {
		return fmt.Sprintf("req#%d %s ch%d row%d blk%d %s", r.ID, r.Kind, r.Channel, r.Row, r.PIM.Block, r.PIM.Op)
	}
	return fmt.Sprintf("req#%d %s ch%d b%d row%d col%d", r.ID, r.Kind, r.Channel, r.Bank, r.Row, r.Col)
}
