package workload

import (
	"fmt"

	"repro/internal/request"
)

// The profiles below are calibrated to the paper's characterization
// (Fig. 4, Sec. IV and Sec. VII-B), not to absolute GPGPU-Sim numbers:
//
//   - G4 (cfd) has the highest interconnect request rate;
//   - G15 (nn) has the highest DRAM request rate (almost no reuse, so the
//     L2 filters nothing);
//   - G6 (gaussian) has the highest bank-level parallelism with a poor
//     ~32% row-buffer hit rate;
//   - G17 (pathfinder) has the highest row-buffer hit rate;
//   - G10 (huffman) is the compute-intensive outlier;
//   - G11 (kmeans) sustains a very high MEM arrival rate at the memory
//     controller;
//   - G19 (srad_v2) generates heavy interconnect traffic that the L2
//     filters (small, reused working set);
//   - PIM kernels have near-uniform behavior: lockstep all-bank
//     execution (BLP = #banks) and high row locality from their block
//     structure, with STREAM-Scale (P4) the locality extreme (99%+).
//
// Request counts are sized for the Scaled() configuration so that one
// standalone run finishes in well under a second; sweeps pass a scale
// factor to shrink or grow them uniformly.

// GPUProfiles returns the twenty Rodinia kernel models of Table II,
// indexed G1..G20 in paper order.
func GPUProfiles() []GPUProfile {
	return []GPUProfile{
		{ID: "G1", Name: "b+tree", Desc: "1M keys, 10000 bundled queries", Requests: 40000, Interval: 6, Streams: 4, Locality: 0.15, Reuse: 0.35, Footprint: 8 << 20, ReadFrac: 0.95},
		{ID: "G2", Name: "backprop", Desc: "655360 input nodes", Requests: 45000, Interval: 4, Streams: 4, Locality: 0.75, Reuse: 0.30, Footprint: 16 << 20, ReadFrac: 0.70},
		{ID: "G3", Name: "bfs", Desc: "1M vertices", Requests: 45000, Interval: 3, Streams: 6, Locality: 0.10, Reuse: 0.25, Footprint: 16 << 20, ReadFrac: 0.90},
		{ID: "G4", Name: "cfd", Desc: "97K elements", Requests: 60000, Interval: 1, Streams: 6, Locality: 0.55, Reuse: 0.55, HotBytes: 96 << 10, Footprint: 8 << 20, ReadFrac: 0.80},
		{ID: "G5", Name: "dwt2d", Desc: "1024x1024 images, 5/3 transform", Requests: 40000, Interval: 5, Streams: 4, Locality: 0.70, Reuse: 0.40, Footprint: 8 << 20, ReadFrac: 0.60},
		{ID: "G6", Name: "gaussian", Desc: "2048x2048 matrix", Requests: 55000, Interval: 2, Streams: 10, Locality: 0.28, Reuse: 0.15, Footprint: 32 << 20, ReadFrac: 0.75},
		{ID: "G7", Name: "heartwall", Desc: "656x744 video, 2 frames", Requests: 15000, Interval: 40, Streams: 2, Locality: 0.60, Reuse: 0.50, Footprint: 4 << 20, ReadFrac: 0.85},
		{ID: "G8", Name: "hotspot", Desc: "2048x2048, pyramid height 4", Requests: 40000, Interval: 6, Streams: 4, Locality: 0.80, Reuse: 0.45, Footprint: 16 << 20, ReadFrac: 0.80},
		{ID: "G9", Name: "hotspot3D", Desc: "512x512x8, 10 iterations", Requests: 45000, Interval: 4, Streams: 6, Locality: 0.65, Reuse: 0.35, Footprint: 24 << 20, ReadFrac: 0.80},
		{ID: "G10", Name: "huffman", Desc: "262144 elements", Requests: 12000, Interval: 60, Streams: 2, Locality: 0.40, Reuse: 0.50, Footprint: 2 << 20, ReadFrac: 0.90},
		{ID: "G11", Name: "kmeans", Desc: "494020 points, 34 features", Requests: 60000, Interval: 1, Streams: 6, Locality: 0.70, Reuse: 0.10, Footprint: 48 << 20, ReadFrac: 0.95},
		{ID: "G12", Name: "lavaMD", Desc: "1000 boxes", Requests: 15000, Interval: 35, Streams: 3, Locality: 0.55, Reuse: 0.45, Footprint: 4 << 20, ReadFrac: 0.85},
		{ID: "G13", Name: "lud", Desc: "2048x2048 data points", Requests: 40000, Interval: 8, Streams: 4, Locality: 0.60, Reuse: 0.55, Footprint: 16 << 20, ReadFrac: 0.80},
		{ID: "G14", Name: "mummergpu", Desc: "20K ref / 50K query sequences", Requests: 45000, Interval: 4, Streams: 6, Locality: 0.08, Reuse: 0.20, Footprint: 32 << 20, ReadFrac: 0.97},
		{ID: "G15", Name: "nn", Desc: "10M hurricanes, 10 nearest neighbors", Requests: 60000, Interval: 1, Streams: 8, Locality: 0.65, Reuse: 0.02, Footprint: 64 << 20, ReadFrac: 0.98},
		{ID: "G16", Name: "nw", Desc: "2048x2048 data points", Requests: 40000, Interval: 7, Streams: 3, Locality: 0.50, Reuse: 0.35, Footprint: 16 << 20, ReadFrac: 0.75},
		{ID: "G17", Name: "pathfinder", Desc: "100000x100 grid, pyramid height 4", Requests: 55000, Interval: 2, Streams: 2, Locality: 0.96, Reuse: 0.30, Footprint: 24 << 20, ReadFrac: 0.85},
		{ID: "G18", Name: "srad_v1", Desc: "512x512, 100 iterations", Requests: 40000, Interval: 5, Streams: 4, Locality: 0.70, Reuse: 0.40, Footprint: 8 << 20, ReadFrac: 0.75},
		{ID: "G19", Name: "srad_v2", Desc: "2048x2048, 2 iterations", Requests: 60000, Interval: 1, Streams: 4, Locality: 0.85, Reuse: 0.75, HotBytes: 96 << 10, Footprint: 4 << 20, ReadFrac: 0.70},
		{ID: "G20", Name: "streamcluster", Desc: "65536 points, 256 dims", Requests: 45000, Interval: 3, Streams: 6, Locality: 0.60, Reuse: 0.30, Footprint: 32 << 20, ReadFrac: 0.90},
	}
}

// PIMProfiles returns the nine PIM kernel models of Table III, indexed
// P1..P9 in paper order. Segment shapes follow the kernels' algorithms
// under the Fig. 3 programming pattern with an 8-entry per-bank register
// file.
func PIMProfiles() []PIMProfile {
	return []PIMProfile{
		{ID: "P1", Name: "stream-add", Desc: "c = a + b, 67M elements/vector",
			Segments: []PIMSegment{{request.PIMLoad, 8}, {request.PIMCompute, 8}, {request.PIMStore, 8}}, Blocks: 400},
		{ID: "P2", Name: "stream-copy", Desc: "c = a, 67M elements/vector",
			Segments: []PIMSegment{{request.PIMLoad, 8}, {request.PIMStore, 8}}, Blocks: 500},
		{ID: "P3", Name: "stream-daxpy", Desc: "y = a*x + y, 67M elements/vector",
			Segments: []PIMSegment{{request.PIMLoad, 8}, {request.PIMCompute, 8}, {request.PIMStore, 8}}, Blocks: 400},
		{ID: "P4", Name: "stream-scale", Desc: "y = a*x, 67M elements/vector",
			Segments: []PIMSegment{{request.PIMCompute, 64}, {request.PIMStore, 64}}, Blocks: 120},
		{ID: "P5", Name: "bn-fwd", Desc: "batchnorm forward, 8M batches x 8",
			Segments: []PIMSegment{{request.PIMLoad, 8}, {request.PIMCompute, 24}, {request.PIMStore, 8}}, Blocks: 350},
		{ID: "P6", Name: "bn-bwd", Desc: "batchnorm backward, 8M batches x 8",
			Segments: []PIMSegment{{request.PIMLoad, 8}, {request.PIMCompute, 32}, {request.PIMStore, 16}}, Blocks: 300},
		{ID: "P7", Name: "fully-connected", Desc: "16x16, 262144 batches",
			Segments: []PIMSegment{{request.PIMLoad, 8}, {request.PIMCompute, 16}, {request.PIMCompute, 16}, {request.PIMStore, 8}}, Blocks: 350},
		{ID: "P8", Name: "kmeans", Desc: "1M points, 32 features",
			Segments: []PIMSegment{{request.PIMLoad, 8}, {request.PIMCompute, 8}, {request.PIMCompute, 8}, {request.PIMCompute, 8}, {request.PIMStore, 8}}, Blocks: 300},
		{ID: "P9", Name: "grim", Desc: "8M bitvectors, 32 base pairs",
			Segments: []PIMSegment{{request.PIMLoad, 8}, {request.PIMCompute, 8}}, Blocks: 500},
	}
}

// GPUProfileByID returns the profile with the given tag ("G7") or an
// error listing valid tags.
func GPUProfileByID(id string) (GPUProfile, error) {
	for _, p := range GPUProfiles() {
		if p.ID == id || p.Name == id {
			return p, nil
		}
	}
	return GPUProfile{}, fmt.Errorf("workload: unknown GPU kernel %q (want G1..G20 or a benchmark name)", id)
}

// PIMProfileByID returns the profile with the given tag ("P3") or an
// error listing valid tags.
func PIMProfileByID(id string) (PIMProfile, error) {
	for _, p := range PIMProfiles() {
		if p.ID == id || p.Name == id {
			return p, nil
		}
	}
	return PIMProfile{}, fmt.Errorf("workload: unknown PIM kernel %q (want P1..P9 or a benchmark name)", id)
}
