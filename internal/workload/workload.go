// Package workload synthesizes the memory request streams of the paper's
// benchmarks: the twenty Rodinia GPU kernels (G1-G20, Table II) and the
// nine PIM kernels (P1-P9, Table III).
//
// The original evaluation executes the CUDA binaries on GPGPU-Sim; that
// substrate is unavailable here, so each benchmark is replaced by a
// profile-driven generator calibrated to the characterization in Fig. 4
// and Sec. IV (see DESIGN.md for the substitution argument). A GPU profile
// fixes the request count, issue intensity, number of concurrent address
// streams, row locality, temporal reuse (which the L2 converts into hits),
// footprint, and read fraction; a PIM profile fixes the block structure of
// Sec. II-B — segments of row-local lockstep operations sized in multiples
// of the per-bank register file.
package workload

import (
	"math/rand"

	"repro/internal/addrmap"
	"repro/internal/request"
)

// Generator produces the request stream of one kernel, partitioned into
// slots (one slot per SM the kernel runs on). Implementations are
// deterministic for a given seed.
type Generator interface {
	// Next returns the slot's next request, or nil when the slot's
	// share of the kernel is exhausted.
	Next(slot int) *request.Request
	// Total returns the kernel's total request count across all slots.
	Total() int
	// Reset rewinds all slots for a fresh kernel launch with the given
	// seed.
	Reset(seed int64)
	// Slots returns the number of SM slots the generator was built for.
	Slots() int
}

// GPUProfile is the synthetic model of one Rodinia kernel.
type GPUProfile struct {
	// ID is the paper's tag ("G1".."G20"); Name the benchmark name.
	ID, Name string
	// Desc summarizes the paper's Table II input size.
	Desc string

	// Requests is the kernel's total MEM request count at scale 1.
	Requests int
	// Interval is the mean GPU cycles between issue slots per SM; small
	// values are memory intensive, large values compute intensive.
	Interval int
	// Streams is the number of concurrent address streams per SM; more
	// streams touch more banks concurrently (higher BLP).
	Streams int
	// Locality is the probability that a stream's next access continues
	// sequentially (32 B stride) instead of jumping, controlling the
	// DRAM row-buffer hit rate.
	Locality float64
	// Reuse is the probability that an access re-references shared
	// data; the caches convert reuse into hits. By default reuse draws
	// from the SM's ReuseWindow most recent lines (default 128 = 4 KB,
	// L1-resident). When HotBytes is set, reuse instead draws uniformly
	// from a hot region of that size at the start of the footprint —
	// sized above the per-SM L1 but within the L2, this produces the
	// "heavy interconnect traffic filtered by the L2" signature the
	// paper ascribes to G19.
	Reuse       float64
	ReuseWindow int
	HotBytes    uint64
	// Footprint is the kernel's working-set size in bytes.
	Footprint uint64
	// ReadFrac is the fraction of loads (the rest are stores).
	ReadFrac float64
	// MaxOutstanding overrides the per-SM in-flight window when > 0.
	MaxOutstanding int
}

// gpuStream is one address stream of one SM slot.
type gpuStream struct {
	cur  uint64 // current byte address (line aligned)
	base uint64 // footprint base for this kernel
}

type gpuSlot struct {
	rng     *rand.Rand
	streams []gpuStream
	history []uint64 // recent line addresses for reuse
	hIdx    int
	next    int // round-robin stream index
	left    int // requests remaining in this slot
}

// GPUGen generates a GPU kernel's MEM requests.
type GPUGen struct {
	prof    GPUProfile
	mapper  addrmap.Mapper
	app     int
	smIDs   []int
	slots   []gpuSlot
	total   int
	seed    int64
	nextID  *uint64
	history int
	base    uint64 // region base: co-running kernels get disjoint regions
	lines   uint64 // footprint size in access-granularity lines
}

// NewGPUGen builds a generator that splits prof's requests across the
// given SMs. scale multiplies the request count; base places the kernel's
// footprint (co-executing kernels under MPS have separate address spaces,
// modeled as disjoint regions); ids supplies the global request ID counter
// shared by all generators of a run.
func NewGPUGen(prof GPUProfile, m addrmap.Mapper, smIDs []int, app int, base uint64, seed int64, scale float64, ids *uint64) *GPUGen {
	total := int(float64(prof.Requests) * scale)
	if total < len(smIDs) {
		total = len(smIDs)
	}
	geom := m.Geometry()
	footprint := prof.Footprint
	if base >= geom.TotalBytes() {
		base = 0
	}
	if avail := geom.TotalBytes() - base; footprint > avail {
		footprint = avail
	}
	lines := footprint / uint64(geom.AccessBytes)
	if lines == 0 {
		lines = 1
	}
	history := prof.ReuseWindow
	if history <= 0 {
		history = 128
	}
	g := &GPUGen{
		prof:    prof,
		mapper:  m,
		app:     app,
		smIDs:   smIDs,
		total:   total,
		nextID:  ids,
		history: history,
		base:    base,
		lines:   lines,
	}
	g.Reset(seed)
	return g
}

// Slots implements Generator.
func (g *GPUGen) Slots() int { return len(g.smIDs) }

// Total implements Generator.
func (g *GPUGen) Total() int { return g.total }

// Profile returns the profile the generator was built from.
func (g *GPUGen) Profile() GPUProfile { return g.prof }

// Reset implements Generator.
func (g *GPUGen) Reset(seed int64) {
	g.seed = seed
	n := len(g.smIDs)
	g.slots = make([]gpuSlot, n)
	per := g.total / n
	extra := g.total - per*n
	geom := g.mapper.Geometry()
	for i := range g.slots {
		s := &g.slots[i]
		s.rng = rand.New(rand.NewSource(seed + int64(i)*7919))
		s.left = per
		if i < extra {
			s.left++
		}
		s.streams = make([]gpuStream, g.prof.Streams)
		for j := range s.streams {
			start := uint64(s.rng.Int63n(int64(g.lines))) * uint64(geom.AccessBytes)
			s.streams[j] = gpuStream{cur: start}
		}
		s.history = make([]uint64, 0, g.history)
	}
}

// Next implements Generator.
func (g *GPUGen) Next(slot int) *request.Request {
	s := &g.slots[slot]
	if s.left == 0 {
		return nil
	}
	s.left--
	geom := g.mapper.Geometry()

	var offset uint64
	switch {
	case g.prof.HotBytes > 0 && s.rng.Float64() < g.prof.Reuse:
		hotLines := g.prof.HotBytes / uint64(geom.AccessBytes)
		if hotLines > g.lines {
			hotLines = g.lines
		}
		offset = uint64(s.rng.Int63n(int64(hotLines))) * uint64(geom.AccessBytes)
	case g.prof.HotBytes == 0 && len(s.history) > 0 && s.rng.Float64() < g.prof.Reuse:
		offset = s.history[s.rng.Intn(len(s.history))]
	default:
		st := &s.streams[s.next]
		s.next = (s.next + 1) % len(s.streams)
		if s.rng.Float64() < g.prof.Locality {
			st.cur += uint64(geom.AccessBytes)
			if st.cur >= g.lines*uint64(geom.AccessBytes) {
				st.cur = 0
			}
		} else {
			st.cur = uint64(s.rng.Int63n(int64(g.lines))) * uint64(geom.AccessBytes)
		}
		offset = st.cur
	}
	addr := g.base + offset

	if len(s.history) < cap(s.history) {
		s.history = append(s.history, offset)
	} else {
		s.history[s.hIdx] = offset
		s.hIdx = (s.hIdx + 1) % len(s.history)
	}

	kind := request.MemRead
	if s.rng.Float64() >= g.prof.ReadFrac {
		kind = request.MemWrite
	}
	c := g.mapper.Decode(addr)
	id := *g.nextID
	*g.nextID = id + 1
	return &request.Request{
		ID:      id,
		Kind:    kind,
		Addr:    addr,
		Channel: c.Channel,
		Bank:    c.Bank,
		Row:     c.Row,
		Col:     c.Col,
		SM:      g.smIDs[slot],
		App:     g.app,
	}
}
