package workload

import "fmt"

// Validate checks a GPU profile for the invariants the generators and the
// SM model rely on, returning a descriptive error for the first
// violation. User-supplied profiles (custom kernels through the public
// API) should be validated before simulation.
func (p GPUProfile) Validate() error {
	switch {
	case p.Requests <= 0:
		return fmt.Errorf("workload: %s: Requests must be positive, got %d", p.label(), p.Requests)
	case p.Interval <= 0:
		return fmt.Errorf("workload: %s: Interval must be positive, got %d", p.label(), p.Interval)
	case p.Streams <= 0:
		return fmt.Errorf("workload: %s: Streams must be positive, got %d", p.label(), p.Streams)
	case p.Locality < 0 || p.Locality > 1:
		return fmt.Errorf("workload: %s: Locality %v outside [0,1]", p.label(), p.Locality)
	case p.Reuse < 0 || p.Reuse > 1:
		return fmt.Errorf("workload: %s: Reuse %v outside [0,1]", p.label(), p.Reuse)
	case p.ReadFrac < 0 || p.ReadFrac > 1:
		return fmt.Errorf("workload: %s: ReadFrac %v outside [0,1]", p.label(), p.ReadFrac)
	case p.Footprint == 0:
		return fmt.Errorf("workload: %s: Footprint must be positive", p.label())
	case p.MaxOutstanding < 0:
		return fmt.Errorf("workload: %s: MaxOutstanding must be non-negative, got %d", p.label(), p.MaxOutstanding)
	}
	return nil
}

func (p GPUProfile) label() string {
	if p.ID != "" {
		return p.ID
	}
	if p.Name != "" {
		return p.Name
	}
	return "(unnamed profile)"
}

// Validate checks a PIM profile: non-empty block structure with
// RF-multiple segment lengths (Sec. II-B's "multiple of the register
// file size"; rfPerBank is config.PIM.RFPerBank()).
func (p PIMProfile) Validate(rfPerBank int) error {
	if p.Blocks <= 0 {
		return fmt.Errorf("workload: %s: Blocks must be positive, got %d", p.label(), p.Blocks)
	}
	if len(p.Segments) == 0 {
		return fmt.Errorf("workload: %s: at least one segment required", p.label())
	}
	if rfPerBank <= 0 {
		return fmt.Errorf("workload: rfPerBank must be positive, got %d", rfPerBank)
	}
	for i, s := range p.Segments {
		if s.Ops <= 0 {
			return fmt.Errorf("workload: %s: segment %d has %d ops", p.label(), i, s.Ops)
		}
		if s.Ops%rfPerBank != 0 {
			return fmt.Errorf("workload: %s: segment %d ops %d not a multiple of the %d-entry per-bank RF", p.label(), i, s.Ops, rfPerBank)
		}
	}
	return nil
}

func (p PIMProfile) label() string {
	if p.ID != "" {
		return p.ID
	}
	if p.Name != "" {
		return p.Name
	}
	return "(unnamed profile)"
}
