package workload

import (
	"testing"

	"repro/internal/request"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, p := range GPUProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.ID, err)
		}
	}
	for _, p := range PIMProfiles() {
		if err := p.Validate(8); err != nil {
			t.Errorf("%s: %v", p.ID, err)
		}
	}
}

func TestGPUValidateCatchesBadFields(t *testing.T) {
	good := GPUProfiles()[0]
	cases := []struct {
		name string
		mut  func(*GPUProfile)
	}{
		{"zero requests", func(p *GPUProfile) { p.Requests = 0 }},
		{"zero interval", func(p *GPUProfile) { p.Interval = 0 }},
		{"zero streams", func(p *GPUProfile) { p.Streams = 0 }},
		{"locality > 1", func(p *GPUProfile) { p.Locality = 1.5 }},
		{"negative reuse", func(p *GPUProfile) { p.Reuse = -0.1 }},
		{"readfrac > 1", func(p *GPUProfile) { p.ReadFrac = 2 }},
		{"zero footprint", func(p *GPUProfile) { p.Footprint = 0 }},
		{"negative outstanding", func(p *GPUProfile) { p.MaxOutstanding = -1 }},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestPIMValidateCatchesBadFields(t *testing.T) {
	good := PIMProfiles()[0]
	if err := good.Validate(0); err == nil {
		t.Error("zero rfPerBank accepted")
	}
	cases := []struct {
		name string
		mut  func(*PIMProfile)
	}{
		{"zero blocks", func(p *PIMProfile) { p.Blocks = 0 }},
		{"no segments", func(p *PIMProfile) { p.Segments = nil }},
		{"zero ops", func(p *PIMProfile) {
			p.Segments = []PIMSegment{{Op: request.PIMLoad, Ops: 0}}
		}},
		{"non-RF-multiple", func(p *PIMProfile) {
			p.Segments = []PIMSegment{{Op: request.PIMLoad, Ops: 12}}
		}},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		if err := p.Validate(8); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestValidateLabelsUnnamedProfiles(t *testing.T) {
	var p GPUProfile
	if err := p.Validate(); err == nil {
		t.Fatal("zero profile accepted")
	}
}
