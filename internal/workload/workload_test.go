package workload

import (
	"testing"

	"repro/internal/addrmap"
	"repro/internal/config"
	"repro/internal/request"
)

func testMapper(t *testing.T) addrmap.Mapper {
	t.Helper()
	cfg := config.Scaled()
	g, err := addrmap.NewGeometry(cfg.Memory.Channels, cfg.Memory.Banks, cfg.Memory.Rows, cfg.Memory.Columns, cfg.Memory.AccessBytes())
	if err != nil {
		t.Fatal(err)
	}
	return addrmap.NewInterleaved(g)
}

func TestProfileTablesComplete(t *testing.T) {
	gs := GPUProfiles()
	if len(gs) != 20 {
		t.Fatalf("GPU profiles = %d, want 20 (Table II)", len(gs))
	}
	for i, p := range gs {
		want := "G" + itoa(i+1)
		if p.ID != want {
			t.Errorf("profile %d ID = %s, want %s", i, p.ID, want)
		}
		if p.Requests <= 0 || p.Interval <= 0 || p.Streams <= 0 {
			t.Errorf("%s: non-positive sizing %+v", p.ID, p)
		}
		if p.Locality < 0 || p.Locality > 1 || p.Reuse < 0 || p.Reuse > 1 || p.ReadFrac < 0 || p.ReadFrac > 1 {
			t.Errorf("%s: probability out of range", p.ID)
		}
	}
	ps := PIMProfiles()
	if len(ps) != 9 {
		t.Fatalf("PIM profiles = %d, want 9 (Table III)", len(ps))
	}
	for i, p := range ps {
		want := "P" + itoa(i+1)
		if p.ID != want {
			t.Errorf("profile %d ID = %s, want %s", i, p.ID, want)
		}
		if p.Blocks <= 0 || len(p.Segments) == 0 {
			t.Errorf("%s: empty shape", p.ID)
		}
		for _, seg := range p.Segments {
			if seg.Ops%8 != 0 {
				t.Errorf("%s: segment ops %d not a multiple of the 8-entry per-bank RF", p.ID, seg.Ops)
			}
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestProfileLookup(t *testing.T) {
	if p, err := GPUProfileByID("G6"); err != nil || p.Name != "gaussian" {
		t.Errorf("G6 lookup: %v %v", p.Name, err)
	}
	if p, err := GPUProfileByID("pathfinder"); err != nil || p.ID != "G17" {
		t.Errorf("name lookup: %v %v", p.ID, err)
	}
	if _, err := GPUProfileByID("G99"); err == nil {
		t.Error("unknown GPU ID accepted")
	}
	if p, err := PIMProfileByID("P4"); err != nil || p.Name != "stream-scale" {
		t.Errorf("P4 lookup: %v %v", p.Name, err)
	}
	if _, err := PIMProfileByID("nope"); err == nil {
		t.Error("unknown PIM ID accepted")
	}
}

func TestGPUGenProducesTotal(t *testing.T) {
	m := testMapper(t)
	p, _ := GPUProfileByID("G8")
	var ids uint64
	g := NewGPUGen(p, m, []int{0, 1, 2}, 0, 0, 1, 1.0, &ids)
	count := 0
	for slot := 0; slot < 3; slot++ {
		for g.Next(slot) != nil {
			count++
		}
	}
	if count != g.Total() {
		t.Errorf("generated %d, Total() = %d", count, g.Total())
	}
	if g.Total() != p.Requests {
		t.Errorf("Total = %d, want %d at scale 1", g.Total(), p.Requests)
	}
}

func TestGPUGenScaleAndDeterminism(t *testing.T) {
	m := testMapper(t)
	p, _ := GPUProfileByID("G3")
	var ids1, ids2 uint64
	a := NewGPUGen(p, m, []int{0}, 0, 0, 42, 0.1, &ids1)
	b := NewGPUGen(p, m, []int{0}, 0, 0, 42, 0.1, &ids2)
	if a.Total() != p.Requests/10 {
		t.Errorf("scaled total = %d, want %d", a.Total(), p.Requests/10)
	}
	for i := 0; i < a.Total(); i++ {
		ra, rb := a.Next(0), b.Next(0)
		if ra.Addr != rb.Addr || ra.Kind != rb.Kind {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGPUGenResetReproduces(t *testing.T) {
	m := testMapper(t)
	p, _ := GPUProfileByID("G1")
	var ids uint64
	g := NewGPUGen(p, m, []int{0}, 0, 0, 7, 0.05, &ids)
	var first []uint64
	for r := g.Next(0); r != nil; r = g.Next(0) {
		first = append(first, r.Addr)
	}
	g.Reset(7)
	for i := 0; ; i++ {
		r := g.Next(0)
		if r == nil {
			if i != len(first) {
				t.Fatalf("reset run length %d != %d", i, len(first))
			}
			break
		}
		if r.Addr != first[i] {
			t.Fatalf("reset not reproducible at %d", i)
		}
	}
}

func TestGPUGenDecodedCoordinatesMatchMapper(t *testing.T) {
	m := testMapper(t)
	p, _ := GPUProfileByID("G15")
	var ids uint64
	g := NewGPUGen(p, m, []int{0}, 3, 0, 9, 0.02, &ids)
	for r := g.Next(0); r != nil; r = g.Next(0) {
		c := m.Decode(r.Addr)
		if r.Channel != c.Channel || r.Bank != c.Bank || r.Row != c.Row || r.Col != c.Col {
			t.Fatalf("decoded coords mismatch for %#x", r.Addr)
		}
		if r.App != 3 {
			t.Fatal("app ID not stamped")
		}
	}
}

func TestGPUGenRespectsBase(t *testing.T) {
	m := testMapper(t)
	p, _ := GPUProfileByID("G5")
	base := uint64(256 << 20)
	var ids uint64
	g := NewGPUGen(p, m, []int{0}, 0, base, 1, 0.02, &ids)
	for r := g.Next(0); r != nil; r = g.Next(0) {
		if r.Addr < base {
			t.Fatalf("address %#x below region base %#x", r.Addr, base)
		}
	}
}

func TestHighVsLowLocalityProfiles(t *testing.T) {
	m := testMapper(t)
	var ids uint64
	seqFrac := func(id string) float64 {
		p, _ := GPUProfileByID(id)
		p.Reuse = 0   // isolate the stream behavior
		p.Streams = 1 // single stream so emitted order is stream order
		g := NewGPUGen(p, m, []int{0}, 0, 0, 5, 0.1, &ids)
		var seq, tot int
		var last uint64
		haveLast := false
		for r := g.Next(0); r != nil; r = g.Next(0) {
			if haveLast {
				tot++
				if r.Addr == last+32 || r.Addr == last {
					seq++
				}
			}
			last = r.Addr
			haveLast = true
		}
		if tot == 0 {
			return 0
		}
		return float64(seq) / float64(tot)
	}
	hi := seqFrac("G17") // locality 0.96, 2 streams
	lo := seqFrac("G14") // locality 0.08
	if hi <= lo {
		t.Errorf("G17 sequential fraction %.3f <= G14 %.3f", hi, lo)
	}
}

func TestPIMGenBlockStructure(t *testing.T) {
	m := testMapper(t)
	p, _ := PIMProfileByID("P1")
	var ids uint64
	cfg := config.Scaled()
	g := NewPIMGen(p, m, []int{0, 1}, 4, cfg.PIM.RFPerBank(), 1, 0.02, &ids)
	// Per channel: ops arrive in block order; within a segment the row
	// is constant; RF entries cycle within the per-bank RF.
	perChannel := map[int][]*request.Request{}
	for slot := 0; slot < 2; slot++ {
		for r := g.Next(slot); r != nil; r = g.Next(slot) {
			if r.Kind != request.PIMOp || r.PIM == nil {
				t.Fatal("non-PIM request from PIMGen")
			}
			perChannel[r.Channel] = append(perChannel[r.Channel], r)
		}
	}
	if len(perChannel) != cfg.Memory.Channels {
		t.Fatalf("streams for %d channels, want %d", len(perChannel), cfg.Memory.Channels)
	}
	total := 0
	for ch, reqs := range perChannel {
		total += len(reqs)
		lastBlock := -1
		for i, r := range reqs {
			if r.PIM.Block < lastBlock {
				t.Fatalf("ch%d op %d: block went backwards", ch, i)
			}
			lastBlock = r.PIM.Block
			if r.PIM.RFEntry < 0 || r.PIM.RFEntry >= 8 {
				t.Fatalf("RF entry %d out of range", r.PIM.RFEntry)
			}
		}
		// P1 block = load x8 (row A), compute x8 (row B), store x8
		// (row C): 24 ops per block, 3 distinct rows.
		if len(reqs)%24 != 0 {
			t.Errorf("ch%d: %d ops not a multiple of 24", ch, len(reqs))
		}
		rows := map[uint32]bool{}
		for _, r := range reqs[:24] {
			rows[r.Row] = true
		}
		if len(rows) != 3 {
			t.Errorf("ch%d: first block touched %d rows, want 3", ch, len(rows))
		}
	}
	if total != g.Total() {
		t.Errorf("generated %d, Total() = %d", total, g.Total())
	}
}

func TestPIMGenWarpChannelMapping(t *testing.T) {
	m := testMapper(t)
	p, _ := PIMProfileByID("P2")
	var ids uint64
	g := NewPIMGen(p, m, []int{5, 9}, 4, 8, 1, 0.02, &ids)
	// Slot 0 (SM 5) owns channels 0-3, slot 1 (SM 9) owns 4-7.
	for i := 0; i < 100; i++ {
		r := g.Next(0)
		if r == nil {
			break
		}
		if r.Channel >= 4 {
			t.Fatalf("slot 0 emitted channel %d", r.Channel)
		}
		if r.SM != 5 {
			t.Fatalf("slot 0 stamped SM %d", r.SM)
		}
	}
}

func TestPIMGenRejectsBadWarpMapping(t *testing.T) {
	m := testMapper(t)
	p, _ := PIMProfileByID("P1")
	var ids uint64
	defer func() {
		if recover() == nil {
			t.Error("mismatched SMs x warps accepted")
		}
	}()
	NewPIMGen(p, m, []int{0}, 4, 8, 1, 1, &ids) // 4 warps != 8 channels
}

func TestPIMOpsPerBlock(t *testing.T) {
	p, _ := PIMProfileByID("P1")
	if p.OpsPerBlock() != 24 {
		t.Errorf("P1 ops/block = %d, want 24", p.OpsPerBlock())
	}
	p4, _ := PIMProfileByID("P4")
	if p4.OpsPerBlock() != 128 {
		t.Errorf("P4 ops/block = %d, want 128", p4.OpsPerBlock())
	}
}

// TestPIMLocalityOrdering pins the paper's observation that STREAM-Scale
// (P4) has the highest lockstep row locality: fewer row changes per op
// than any other PIM kernel.
func TestPIMLocalityOrdering(t *testing.T) {
	rowChangesPerOp := func(p PIMProfile) float64 {
		return float64(len(p.Segments)) / float64(p.OpsPerBlock())
	}
	p4, _ := PIMProfileByID("P4")
	best := rowChangesPerOp(p4)
	for _, p := range PIMProfiles() {
		if p.ID == "P4" {
			continue
		}
		if rowChangesPerOp(p) <= best {
			t.Errorf("%s row-change rate %.4f <= P4's %.4f", p.ID, rowChangesPerOp(p), best)
		}
	}
}
