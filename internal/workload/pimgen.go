package workload

import (
	"fmt"

	"repro/internal/addrmap"
	"repro/internal/request"
)

// PIMSegment is one row-local run of lockstep operations within a block:
// Ops consecutive operations of kind Op to a single row. Ops should be a
// multiple of the per-bank register-file size ("the size of the block is
// usually a multiple of the register file size", Sec. II-B); longer
// segments raise the kernel's lockstep row locality.
type PIMSegment struct {
	Op  request.PIMOpKind
	Ops int
}

// PIMProfile is the synthetic model of one PIM kernel: the block shape
// (its segments, each to its own row) and the per-channel block count.
type PIMProfile struct {
	// ID is the paper's tag ("P1".."P9"); Name the benchmark name.
	ID, Name string
	// Desc summarizes the paper's Table III input size.
	Desc string
	// Segments is the per-block operation pattern (Fig. 3's structure).
	Segments []PIMSegment
	// Blocks is the per-channel block count at scale 1.
	Blocks int
}

// OpsPerBlock returns the lockstep operations one block performs.
func (p PIMProfile) OpsPerBlock() int {
	n := 0
	for _, s := range p.Segments {
		n += s.Ops
	}
	return n
}

// pimWarp is the request cursor of one warp, which is pinned to one
// channel by the simplified address map (Sec. III-B: "each warp maps to a
// single memory channel and each thread within a warp to a single bank").
type pimWarp struct {
	channel int
	block   int
	seg     int
	op      int
	done    bool
}

// PIMGen generates a PIM kernel's lockstep operation stream. Each SM slot
// owns WarpsPerSM warps; warp w of slot s drives channel
// s*WarpsPerSM + w. Orderlight-style ordering holds per channel because
// each warp issues its stream strictly in order and the per-channel path
// through the interconnect is a FIFO.
type PIMGen struct {
	prof      PIMProfile
	mapper    addrmap.Mapper
	app       int
	smIDs     []int
	warpsPer  int
	rfPerBank int
	blocks    int
	warps     [][]pimWarp // [slot][warp]
	rr        []int       // per-slot warp round-robin
	total     int
	nextID    *uint64
}

// NewPIMGen builds the generator. channels must equal
// len(smIDs)*warpsPerSM so every channel has exactly one warp. scale
// multiplies the per-channel block count.
func NewPIMGen(prof PIMProfile, m addrmap.Mapper, smIDs []int, warpsPerSM, rfPerBank, app int, scale float64, ids *uint64) *PIMGen {
	channels := m.Geometry().Channels
	if len(smIDs)*warpsPerSM != channels {
		panic(fmt.Sprintf("workload: %d PIM SMs x %d warps != %d channels", len(smIDs), warpsPerSM, channels))
	}
	blocks := int(float64(prof.Blocks) * scale)
	if blocks < 1 {
		blocks = 1
	}
	g := &PIMGen{
		prof:      prof,
		mapper:    m,
		app:       app,
		smIDs:     smIDs,
		warpsPer:  warpsPerSM,
		rfPerBank: rfPerBank,
		blocks:    blocks,
		total:     channels * blocks * prof.OpsPerBlock(),
		nextID:    ids,
	}
	g.Reset(0)
	return g
}

// Slots implements Generator.
func (g *PIMGen) Slots() int { return len(g.smIDs) }

// Total implements Generator.
func (g *PIMGen) Total() int { return g.total }

// Profile returns the profile the generator was built from.
func (g *PIMGen) Profile() PIMProfile { return g.prof }

// Blocks returns the per-channel block count after scaling.
func (g *PIMGen) Blocks() int { return g.blocks }

// Reset implements Generator. PIM streams are fully deterministic, so the
// seed is ignored.
func (g *PIMGen) Reset(int64) {
	g.warps = make([][]pimWarp, len(g.smIDs))
	g.rr = make([]int, len(g.smIDs))
	for s := range g.warps {
		g.warps[s] = make([]pimWarp, g.warpsPer)
		for w := range g.warps[s] {
			g.warps[s][w] = pimWarp{channel: s*g.warpsPer + w}
		}
	}
}

// Next implements Generator: round-robin across the slot's warps.
func (g *PIMGen) Next(slot int) *request.Request {
	warps := g.warps[slot]
	for k := 0; k < len(warps); k++ {
		w := &warps[(g.rr[slot]+k)%len(warps)]
		if w.done {
			continue
		}
		g.rr[slot] = (g.rr[slot] + k + 1) % len(warps)
		return g.emit(slot, w)
	}
	return nil
}

func (g *PIMGen) emit(slot int, w *pimWarp) *request.Request {
	seg := g.prof.Segments[w.seg]
	geom := g.mapper.Geometry()
	// Each segment targets its own row; rows advance deterministically
	// with the block index, wrapping within the bank.
	rowIdx := uint32((w.block*len(g.prof.Segments) + w.seg) % geom.Rows)
	col := uint32(w.op % geom.Columns)
	addr := g.mapper.Encode(addrmap.Coord{Channel: w.channel, Bank: 0, Row: rowIdx, Col: col})
	id := *g.nextID
	*g.nextID = id + 1
	req := &request.Request{
		ID:      id,
		Kind:    request.PIMOp,
		Addr:    addr,
		Channel: w.channel,
		Bank:    0, // lockstep: executes on every bank
		Row:     rowIdx,
		Col:     col,
		SM:      g.smIDs[slot],
		App:     g.app,
		PIM: &request.PIMInfo{
			Op:      seg.Op,
			RFEntry: w.op % g.rfPerBank,
			Block:   w.block,
		},
	}
	w.op++
	if w.op >= seg.Ops {
		w.op = 0
		w.seg++
		if w.seg >= len(g.prof.Segments) {
			w.seg = 0
			w.block++
			if w.block >= g.blocks {
				w.done = true
			}
		}
	}
	return req
}
