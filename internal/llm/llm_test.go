package llm

import (
	"testing"

	"repro/internal/config"
	"repro/internal/request"
)

func TestGPT3LikeShape(t *testing.T) {
	m := GPT3Like()
	if m.Batch != 128 || m.SeqLen != 1024 || m.Embed != 4096 {
		t.Errorf("model shape %+v, want 128/1024/4096 (Sec. III-B)", m)
	}
}

func TestQKVProfileIsHighLocalityGEMM(t *testing.T) {
	p := GPT3Like().QKVProfile()
	if p.Locality < 0.7 {
		t.Errorf("QKV locality %.2f; GEMM tiles should walk rows", p.Locality)
	}
	if p.Reuse < 0.3 {
		t.Errorf("QKV reuse %.2f; weights are re-referenced across the batch", p.Reuse)
	}
	if p.Requests <= 0 || p.Interval <= 0 {
		t.Errorf("degenerate sizing: %+v", p)
	}
}

func TestMHAProfileBlockShape(t *testing.T) {
	p := GPT3Like().MHAProfile()
	if len(p.Segments) < 3 {
		t.Fatalf("MHA needs load/compute/store structure, got %d segments", len(p.Segments))
	}
	if p.Segments[0].Op != request.PIMLoad {
		t.Error("MHA block must start by loading the query fragment into the RF")
	}
	if p.Segments[len(p.Segments)-1].Op != request.PIMStore {
		t.Error("MHA block must end by storing the attention output")
	}
	for _, s := range p.Segments {
		if s.Ops%8 != 0 {
			t.Errorf("segment ops %d not a multiple of the per-bank RF", s.Ops)
		}
	}
}

func TestScenarioPartitionsSMs(t *testing.T) {
	cfg := config.Scaled()
	qkv, mha := GPT3Like().Scenario(cfg, 0.5)
	if qkv.GPU == nil || mha.PIM == nil {
		t.Fatal("descriptor kinds wrong")
	}
	if len(qkv.SMs)+len(mha.SMs) != cfg.GPU.NumSMs {
		t.Errorf("SM partition %d+%d != %d", len(qkv.SMs), len(mha.SMs), cfg.GPU.NumSMs)
	}
	if len(mha.SMs) != cfg.GPU.PIMSMs {
		t.Errorf("MHA on %d SMs, want %d", len(mha.SMs), cfg.GPU.PIMSMs)
	}
	if qkv.Scale != 0.5 || mha.Scale != 0.5 {
		t.Error("scale not propagated")
	}
	// Disjoint address regions (separate allocations).
	if mha.Base == qkv.Base {
		t.Error("QKV and MHA share an address region base")
	}
}
