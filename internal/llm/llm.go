// Package llm models the collaborative scenario of Sec. III-B: a
// GPT-3-6.7B-like decoder layer that overlaps QKV generation (three GEMMs
// on the GPU SMs) with multi-head attention (GEMV + softmax on the PIM
// units), after AttAcc/NeuPIMs. The paper uses batch size 128, sequence
// length 1024 and embedding size 4096, with the KV cache loaded on
// demand.
//
// The request streams are derived from those shapes rather than executed
// functionally: QKV generation is a weight-reusing, high-locality GEMM
// stream that runs *longer* than attention, while multi-head attention
// streams the KV cache through the PIM units and submits significantly
// more memory traffic — the two properties Sec. VI-B identifies as the
// source of the collaborative scheduling problem.
package llm

import (
	"repro/internal/config"
	"repro/internal/request"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Model fixes the transformer shape. Defaults follow the paper's
// GPT-3-6.7B setup.
type Model struct {
	// Batch is the batch size (128).
	Batch int
	// SeqLen is the sequence length (1024).
	SeqLen int
	// Embed is the embedding (model) dimension (4096).
	Embed int
}

// GPT3Like returns the paper's model shape.
func GPT3Like() Model { return Model{Batch: 128, SeqLen: 1024, Embed: 4096} }

// QKVProfile returns the GPU-side kernel: three weight GEMMs back to
// back. GEMMs tile through the weight matrices, giving high row locality
// and strong L2 reuse; the kernel is compute-dense enough to be the
// longer-running stage.
func (m Model) QKVProfile() workload.GPUProfile {
	return workload.GPUProfile{
		ID:   "QKV",
		Name: "qkv-generation",
		Desc: "3x GEMM, batch x embed x embed",
		// Scaled so that QKV generation outlasts attention by roughly
		// the paper's proportions (the GPU stage is the bottleneck).
		Requests:  200000,
		Interval:  2,
		Streams:   4,
		Locality:  0.85,
		Reuse:     0.55,
		Footprint: 96 << 20,
		ReadFrac:  0.85,
	}
}

// MHAProfile returns the PIM-side kernel: per-head GEMV against the
// on-demand KV cache plus softmax. Each block loads a query fragment,
// streams KV rows through the SIMD ALUs, and stores attention outputs.
func (m Model) MHAProfile() workload.PIMProfile {
	return workload.PIMProfile{
		ID:   "MHA",
		Name: "multi-head-attention",
		Desc: "GEMV + softmax over the KV cache",
		Segments: []workload.PIMSegment{
			{Op: request.PIMLoad, Ops: 8},     // query fragment -> RF
			{Op: request.PIMCompute, Ops: 24}, // score = q . K rows
			{Op: request.PIMCompute, Ops: 24}, // weighted sum with V rows
			{Op: request.PIMStore, Ops: 8},    // attention output
		},
		Blocks: 200,
	}
}

// Scenario builds the two collaborative kernel descriptors for the given
// configuration: QKV on the GPU's share of SMs, MHA on the PIM SMs.
// scale shrinks both kernels uniformly.
func (m Model) Scenario(cfg config.Config, scale float64) (qkv, mha sim.KernelDesc) {
	gpuSMs, pimSMs := sim.GPUAndPIMSMs(cfg)
	q := m.QKVProfile()
	a := m.MHAProfile()
	qkv = sim.KernelDesc{GPU: &q, SMs: gpuSMs, Scale: scale}
	mha = sim.KernelDesc{PIM: &a, SMs: pimSMs, Scale: scale, Base: 1 << 30}
	return qkv, mha
}
