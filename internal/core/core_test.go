package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sched"
)

// fakeView mirrors the controller view for policy-level tests.
type fakeView struct {
	now        uint64
	mode       sched.Mode
	memQ, pimQ int
	oldest     sched.Mode
	hasOldest  bool
	memRowHit  bool
	pimRowOpen bool
}

func (v fakeView) Now() uint64                       { return v.now }
func (v fakeView) Mode() sched.Mode                  { return v.mode }
func (v fakeView) MemQLen() int                      { return v.memQ }
func (v fakeView) PIMQLen() int                      { return v.pimQ }
func (v fakeView) OldestOverall() (sched.Mode, bool) { return v.oldest, v.hasOldest }
func (v fakeView) MemRowHitAvailable() bool          { return v.memRowHit }
func (v fakeView) PIMHeadRowOpen() bool              { return v.pimRowOpen }

func TestF3FSStaysInCurrentModeUnderCap(t *testing.T) {
	p := NewF3FS(4, 4)
	v := fakeView{mode: sched.ModeMEM, memQ: 5, pimQ: 5, oldest: sched.ModePIM, hasOldest: true}
	// Current-mode-first: even with an older PIM request waiting, MEM
	// keeps the channel while under the cap.
	for i := 0; i < 4; i++ {
		if got := p.DesiredMode(v); got != sched.ModeMEM {
			t.Fatalf("issue %d: desired %v, want MEM (current mode first)", i, got)
		}
		p.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	}
	// Cap reached and oldest is PIM: switch.
	if got := p.DesiredMode(v); got != sched.ModePIM {
		t.Errorf("capped desired = %v, want PIM", got)
	}
}

func TestF3FSCapIgnoredWhenOldestIsCurrentMode(t *testing.T) {
	// Sec. VII-B (kmeans): reaching the CAP does not switch while the
	// oldest request still belongs to the current mode.
	p := NewF3FS(2, 2)
	v := fakeView{mode: sched.ModeMEM, memQ: 5, pimQ: 5, oldest: sched.ModeMEM, hasOldest: true}
	p.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	p.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	if got := p.DesiredMode(v); got != sched.ModeMEM {
		t.Errorf("desired = %v, want MEM (oldest is MEM)", got)
	}
	// As soon as the oldest becomes PIM, the exhausted cap triggers.
	v.oldest = sched.ModePIM
	if got := p.DesiredMode(v); got != sched.ModePIM {
		t.Errorf("desired = %v, want PIM once oldest flips", got)
	}
}

func TestF3FSSwitchResetsBypassCount(t *testing.T) {
	p := NewF3FS(2, 2)
	v := fakeView{mode: sched.ModeMEM, memQ: 5, pimQ: 5, oldest: sched.ModePIM, hasOldest: true}
	p.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	p.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	if p.Bypasses() != 2 {
		t.Fatalf("bypasses = %d, want 2", p.Bypasses())
	}
	p.OnSwitch(v, sched.ModePIM)
	if p.Bypasses() != 0 {
		t.Errorf("bypasses = %d after switch, want 0", p.Bypasses())
	}
}

func TestF3FSAsymmetricCaps(t *testing.T) {
	p := NewF3FS(1, 3) // MEM cap 1, PIM cap 3
	// MEM mode: a single bypass exhausts the MEM cap.
	vm := fakeView{mode: sched.ModeMEM, memQ: 5, pimQ: 5, oldest: sched.ModePIM, hasOldest: true}
	p.OnIssue(vm, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	if got := p.DesiredMode(vm); got != sched.ModePIM {
		t.Errorf("MEM cap 1: desired %v, want PIM", got)
	}
	p.OnSwitch(vm, sched.ModePIM)
	// PIM mode: three bypasses allowed.
	vp := fakeView{mode: sched.ModePIM, memQ: 5, pimQ: 5, oldest: sched.ModeMEM, hasOldest: true}
	for i := 0; i < 3; i++ {
		if got := p.DesiredMode(vp); got != sched.ModePIM {
			t.Fatalf("issue %d: desired %v, want PIM", i, got)
		}
		p.OnIssue(vp, sched.IssueInfo{Mode: sched.ModePIM, BypassedOlderOtherMode: true})
	}
	if got := p.DesiredMode(vp); got != sched.ModeMEM {
		t.Errorf("PIM cap 3 exhausted: desired %v, want MEM", got)
	}
}

func TestF3FSFollowsWorkWhenCurrentQueueEmpty(t *testing.T) {
	p := NewF3FS(256, 256)
	if got := p.DesiredMode(fakeView{mode: sched.ModeMEM, pimQ: 4}); got != sched.ModePIM {
		t.Errorf("desired %v, want PIM (MEM queue empty)", got)
	}
	if got := p.DesiredMode(fakeView{mode: sched.ModePIM, memQ: 4}); got != sched.ModeMEM {
		t.Errorf("desired %v, want MEM (PIM queue empty)", got)
	}
	if got := p.DesiredMode(fakeView{mode: sched.ModePIM}); got != sched.ModePIM {
		t.Errorf("desired %v, want PIM (both empty: hold)", got)
	}
}

func TestF3FSUsesFRFCFSWithinMemMode(t *testing.T) {
	p := NewF3FS(256, 256)
	v := fakeView{mode: sched.ModeMEM, memQ: 3, pimQ: 3, oldest: sched.ModePIM, hasOldest: true}
	if !p.MemRowHitsAllowed(v) {
		t.Error("F3FS must run FR-FCFS within MEM mode")
	}
	if !p.MemConflictServiceAllowed(v) {
		t.Error("F3FS services conflicts in place (current mode first)")
	}
}

func TestF3FSResetClearsState(t *testing.T) {
	p := NewF3FS(4, 4)
	v := fakeView{mode: sched.ModeMEM, memQ: 1, pimQ: 1, oldest: sched.ModePIM, hasOldest: true}
	p.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	p.Reset()
	if p.Bypasses() != 0 {
		t.Error("Reset did not clear bypass count")
	}
}

func TestPolicyRegistryCoversAllNine(t *testing.T) {
	cfg := config.Paper().Sched
	if len(PolicyNames) != 9 {
		t.Fatalf("policy registry has %d names, want 9", len(PolicyNames))
	}
	seen := map[string]bool{}
	for _, name := range PolicyNames {
		p := NewPolicy(name, cfg)
		if p == nil {
			t.Errorf("NewPolicy(%q) = nil", name)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
		if seen[name] {
			t.Errorf("duplicate policy %q", name)
		}
		seen[name] = true
	}
	if NewPolicy("no-such-policy", cfg) != nil {
		t.Error("unknown policy did not return nil")
	}
	if Factory("no-such-policy", cfg) != nil {
		t.Error("unknown factory did not return nil")
	}
}

func TestFactoryReturnsIndependentInstances(t *testing.T) {
	cfg := config.Paper().Sched
	f := Factory("f3fs", cfg)
	a := f().(*F3FS)
	b := f().(*F3FS)
	if a == b {
		t.Fatal("factory returned a shared instance")
	}
	v := fakeView{mode: sched.ModeMEM, memQ: 1, pimQ: 1, oldest: sched.ModePIM, hasOldest: true}
	a.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	if b.Bypasses() != 0 {
		t.Error("per-channel policy instances share state")
	}
}

func TestExtensionPolicies(t *testing.T) {
	cfg := config.Paper().Sched
	for _, name := range ExtensionPolicyNames {
		p := NewPolicy(name, cfg)
		if p == nil {
			t.Errorf("extension policy %q not constructible", name)
			continue
		}
		if p.Name() != name {
			t.Errorf("extension policy name %q != %q", p.Name(), name)
		}
	}
}

func TestCapsForPriorities(t *testing.T) {
	// Equal priorities split the budget evenly.
	m, p := CapsForPriorities(1, 1, 512, 8)
	if m != 256 || p != 256 {
		t.Errorf("equal priorities: %d/%d, want 256/256", m, p)
	}
	// 3:1 favors MEM proportionally, in RF multiples.
	m, p = CapsForPriorities(3, 1, 512, 8)
	if m <= p {
		t.Errorf("3:1 priorities gave %d/%d", m, p)
	}
	if m%8 != 0 || p%8 != 0 {
		t.Errorf("caps %d/%d not RF multiples", m, p)
	}
	// Degenerate inputs clamp instead of panicking or returning zero.
	m, p = CapsForPriorities(0, -5, 0, 0)
	if m < 1 || p < 1 {
		t.Errorf("degenerate inputs gave %d/%d", m, p)
	}
	// Extreme ratios still leave the loser at least one RF group.
	m, p = CapsForPriorities(1000, 1, 512, 8)
	if p < 8 {
		t.Errorf("starved the low-priority side: pim cap %d", p)
	}
}

func TestModeCapFRFCFSBehavior(t *testing.T) {
	p := NewModeCapFRFCFS(2)
	// Under the cap it behaves like FR-FCFS: stay on row hits.
	v := fakeView{mode: sched.ModeMEM, memQ: 3, pimQ: 3, oldest: sched.ModePIM, hasOldest: true, memRowHit: true}
	if p.DesiredMode(v) != sched.ModeMEM {
		t.Error("left MEM while hits remained (under cap)")
	}
	// Exhaust the mode-bypass cap: forced switch even with hits left.
	p.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	p.OnIssue(v, sched.IssueInfo{Mode: sched.ModeMEM, BypassedOlderOtherMode: true})
	if p.DesiredMode(v) != sched.ModePIM {
		t.Error("mode-bypass cap did not force a switch")
	}
	p.OnSwitch(v, sched.ModePIM)
	// Row hits are never capped (that is FR-FCFS-Cap's mechanism).
	if !p.MemRowHitsAllowed(v) {
		t.Error("row hits capped by the mode-cap stage")
	}
}

func TestProposedSetsVC2AndF3FS(t *testing.T) {
	cfg := config.Paper()
	name := Proposed(&cfg)
	if name != "f3fs" {
		t.Errorf("Proposed policy = %q, want f3fs", name)
	}
	if cfg.NoC.Mode != config.VC2 {
		t.Error("Proposed did not select the VC2 interconnect")
	}
}
