// Package core implements the paper's primary contribution:
//
//   - F3FS (First Mode-FR-FCFS, Sec. VII), a memory-controller scheduling
//     policy that adds an arbitration stage in front of FR-FCFS favoring
//     the *current* mode — priority order (1) current mode first, (2) row
//     buffer hit first, (3) oldest first — with per-mode CAPs on the
//     number of requests that may bypass an older request of the other
//     mode. Symmetric CAPs optimize competitive fairness; asymmetric CAPs
//     let collaborative applications favor their slower kernel.
//
//   - The proposed system configuration (Sec. V-A + Sec. VII): the VC2
//     interconnect (a separate virtual channel for PIM requests with the
//     total queue capacity held equal to the baseline) combined with F3FS.
//
// The remaining machinery — queues, within-mode engines, the baseline
// policies — lives in internal/sched, internal/memctrl and internal/noc;
// this package is deliberately small so the contribution is legible in
// one place.
package core

import (
	"repro/internal/config"
	"repro/internal/sched"
)

// F3FS is the First Mode-FR-FCFS policy. Age is the incrementing ID
// assigned to each request as it enters the memory controller (SeqNo);
// a "bypass" is the issue of a current-mode request while an older
// other-mode request waits. When the current mode's bypass count reaches
// its CAP and the oldest queued request belongs to the other mode, the
// controller switches; the count resets on every switch.
//
// The paper's Sec. VII-B discussion of kmeans (G11) motivates the exact
// trigger: reaching the CAP alone does not force a switch — if the oldest
// request is still from the current mode, servicing it is not a bypass and
// the controller stays put.
type F3FS struct {
	// MemCap and PIMCap are the per-mode bypass CAPs. The competitive
	// configuration uses symmetric caps (256/256, a multiple of the PIM
	// register-file size per bank to respect PIM block structure);
	// collaborative runs may set them asymmetrically (e.g. 256/128
	// under VC1).
	MemCap, PIMCap int

	bypasses int
}

// NewF3FS builds the policy with the given per-mode CAPs.
func NewF3FS(memCap, pimCap int) *F3FS {
	return &F3FS{MemCap: memCap, PIMCap: pimCap}
}

// Name implements sched.Policy.
func (*F3FS) Name() string { return "f3fs" }

func (p *F3FS) cap(m sched.Mode) int {
	if m == sched.ModePIM {
		return p.PIMCap
	}
	return p.MemCap
}

// DesiredMode implements sched.Policy: stay in the current mode while it
// has work and its bypass CAP is not exhausted against an older other-mode
// request.
func (p *F3FS) DesiredMode(v sched.View) sched.Mode {
	cur := v.Mode()
	curLen := v.MemQLen()
	otherLen := v.PIMQLen()
	if cur == sched.ModePIM {
		curLen, otherLen = otherLen, curLen
	}
	if curLen == 0 {
		if otherLen > 0 {
			return cur.Other()
		}
		return cur
	}
	if otherLen == 0 {
		return cur
	}
	if p.bypasses >= p.cap(cur) {
		if oldest, ok := v.OldestOverall(); ok && oldest != cur {
			return cur.Other()
		}
	}
	return cur
}

// MemRowHitsAllowed implements sched.Policy: within MEM mode F3FS runs
// plain FR-FCFS.
func (*F3FS) MemRowHitsAllowed(sched.View) bool { return true }

// MemConflictServiceAllowed implements sched.Policy: current-mode-first
// means conflicts in the current mode are serviced in place rather than
// stalling for a switch.
func (*F3FS) MemConflictServiceAllowed(sched.View) bool { return true }

// OnIssue implements sched.Policy: count bypasses of older other-mode
// requests.
func (p *F3FS) OnIssue(_ sched.View, info sched.IssueInfo) {
	if info.BypassedOlderOtherMode {
		p.bypasses++
	}
}

// OnSwitch implements sched.Policy: the bypass window restarts with the
// new mode.
func (p *F3FS) OnSwitch(sched.View, sched.Mode) { p.bypasses = 0 }

// Reset implements sched.Policy.
func (p *F3FS) Reset() { p.bypasses = 0 }

// Bypasses exposes the current bypass count (for tests and the hardware
// discussion in EXPERIMENTS.md).
func (p *F3FS) Bypasses() int { return p.bypasses }

var _ sched.Policy = (*F3FS)(nil)

// PolicyNames lists the nine evaluated policies in the paper's order.
var PolicyNames = []string{
	"fcfs", "mem-first", "pim-first", "fr-fcfs", "fr-fcfs-cap",
	"bliss", "fr-rr-fcfs", "gather-issue", "f3fs",
}

// ExtensionPolicyNames lists additional policies this repository
// implements beyond the paper's evaluation: the SMS-style batch scheduler
// the related work discusses, and the Fig. 14a intermediate ablation
// point.
var ExtensionPolicyNames = []string{"sms-batch", "mode-cap-fr-fcfs", "its", "weis"}

// DefaultSMSBatchSize is the batch length used when the SMS-style
// extension policy is constructed by name.
const DefaultSMSBatchSize = 32

// NewPolicy builds a fresh per-channel policy instance by name using the
// knobs in cfg. It returns nil for an unknown name.
func NewPolicy(name string, cfg config.Sched) sched.Policy {
	switch name {
	case "fcfs":
		return sched.NewFCFS()
	case "mem-first":
		return sched.NewMemFirst()
	case "pim-first":
		return sched.NewPIMFirst()
	case "fr-fcfs":
		return sched.NewFRFCFS()
	case "fr-fcfs-cap":
		return sched.NewFRFCFSCap(cfg.FRFCFSCap)
	case "bliss":
		return sched.NewBLISS(cfg.BlissThreshold, cfg.BlissClearInterval)
	case "fr-rr-fcfs":
		return sched.NewFRRRFCFS()
	case "gather-issue":
		return sched.NewGatherIssue(cfg.GIHighWatermark, cfg.GILowWatermark)
	case "f3fs":
		return NewF3FS(cfg.F3FSMemCap, cfg.F3FSPIMCap)
	case "sms-batch":
		return sched.NewSMSBatch(DefaultSMSBatchSize)
	case "mode-cap-fr-fcfs":
		return NewModeCapFRFCFS(cfg.F3FSMemCap)
	case "its":
		return sched.NewITS()
	case "weis":
		return sched.NewWEIS()
	}
	return nil
}

// Factory returns a sched.PolicyFactory for name, or nil for an unknown
// name. Each call of the factory yields an independent per-channel
// instance.
func Factory(name string, cfg config.Sched) sched.PolicyFactory {
	if NewPolicy(name, cfg) == nil {
		return nil
	}
	return func() sched.Policy { return NewPolicy(name, cfg) }
}

// Proposed mutates cfg into the paper's full proposal: the VC2
// interconnect with F3FS scheduling, using the competitive symmetric CAPs
// unless the caller overrides them afterwards. It returns the policy name
// to pass to the simulator.
func Proposed(cfg *config.Config) string {
	cfg.NoC.Mode = config.VC2
	return "f3fs"
}

// CapsForPriorities realizes the future-work direction of Sec. VII:
// system software encoding process priorities as asymmetric F3FS CAPs in
// competitive scenarios. The CAPs split a total bypass budget
// proportionally to the two priorities, each rounded to a multiple of the
// per-bank register-file size so PIM block structure is respected, and
// each at least one RF group.
//
// budget is the combined CAP (use 2x the competitive CAP, e.g. 512);
// rfPerBank is config.PIM.RFPerBank().
func CapsForPriorities(memPriority, pimPriority, budget, rfPerBank int) (memCap, pimCap int) {
	if memPriority < 1 {
		memPriority = 1
	}
	if pimPriority < 1 {
		pimPriority = 1
	}
	if rfPerBank < 1 {
		rfPerBank = 1
	}
	if budget < 2*rfPerBank {
		budget = 2 * rfPerBank
	}
	total := memPriority + pimPriority
	memCap = budget * memPriority / total
	memCap -= memCap % rfPerBank
	if memCap < rfPerBank {
		memCap = rfPerBank
	}
	pimCap = budget - memCap
	pimCap -= pimCap % rfPerBank
	if pimCap < rfPerBank {
		pimCap = rfPerBank
	}
	return memCap, pimCap
}
