package core

import "repro/internal/sched"

// ModeCapFRFCFS is the intermediate design point of the Fig. 14a
// ablation: FR-FCFS switching behavior (row hits first, conflict-bit
// stalls, switch at all-bank conflicts) with the CAP moved from row-buffer
// hits (FR-FCFS-Cap) to *requests serviced in the current mode that
// bypass an older other-mode request* — F3FS's counting — but without the
// current-mode-first arbitration stage.
type ModeCapFRFCFS struct {
	base sched.FRFCFS
	// Cap bounds same-mode bypasses of an older other-mode request.
	Cap int

	bypasses int
}

// NewModeCapFRFCFS builds the stage-1 ablation policy.
func NewModeCapFRFCFS(cap int) *ModeCapFRFCFS { return &ModeCapFRFCFS{Cap: cap} }

// Name implements sched.Policy.
func (*ModeCapFRFCFS) Name() string { return "mode-cap-fr-fcfs" }

// DesiredMode implements sched.Policy: FR-FCFS switching, plus a forced
// switch when the mode-bypass cap is exhausted against an older
// other-mode request.
func (p *ModeCapFRFCFS) DesiredMode(v sched.View) sched.Mode {
	if p.bypasses >= p.Cap {
		if oldest, ok := v.OldestOverall(); ok && oldest != v.Mode() {
			other := v.Mode().Other()
			if (other == sched.ModePIM && v.PIMQLen() > 0) || (other == sched.ModeMEM && v.MemQLen() > 0) {
				return other
			}
		}
	}
	return p.base.DesiredMode(v)
}

// MemRowHitsAllowed implements sched.Policy: unlike FR-FCFS-Cap, row hits
// are never capped — the CAP counts mode bypasses instead.
func (*ModeCapFRFCFS) MemRowHitsAllowed(sched.View) bool { return true }

// MemConflictServiceAllowed implements sched.Policy (FR-FCFS's
// conflict-bit stall).
func (p *ModeCapFRFCFS) MemConflictServiceAllowed(v sched.View) bool {
	return p.base.MemConflictServiceAllowed(v)
}

// OnIssue implements sched.Policy.
func (p *ModeCapFRFCFS) OnIssue(_ sched.View, info sched.IssueInfo) {
	if info.BypassedOlderOtherMode {
		p.bypasses++
	}
}

// OnSwitch implements sched.Policy.
func (p *ModeCapFRFCFS) OnSwitch(sched.View, sched.Mode) { p.bypasses = 0 }

// Reset implements sched.Policy.
func (p *ModeCapFRFCFS) Reset() { p.bypasses = 0 }

var _ sched.Policy = (*ModeCapFRFCFS)(nil)
