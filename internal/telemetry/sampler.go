package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// DefaultInterval is the sampling epoch in GPU cycles when the caller
// does not choose one.
const DefaultInterval = 2048

// DefaultRingCap bounds the in-memory sample ring when the caller does
// not choose a capacity. At the default interval this covers ~16M GPU
// cycles of history before the ring starts dropping the oldest epochs.
const DefaultRingCap = 8192

// ChannelSample is one channel's state at a sampling instant. Queue
// occupancies and the mode are instantaneous; the remaining fields are
// cumulative since the start of the run, so consumers can difference
// adjacent samples for per-epoch rates.
type ChannelSample struct {
	// MemQ and PIMQ are the instantaneous controller queue occupancies.
	MemQ int `json:"memq"`
	PIMQ int `json:"pimq"`
	// Mode is the mode being serviced ("MEM" or "PIM").
	Mode string `json:"mode"`
	// Switches is the cumulative mode-switch count.
	Switches uint64 `json:"switches"`
	// MemModeCycles/PIMModeCycles/DrainCycles are cumulative DRAM-cycle
	// mode residency (drain cycles overlap the mode being drained from).
	MemModeCycles uint64 `json:"mem_mode_cycles"`
	PIMModeCycles uint64 `json:"pim_mode_cycles"`
	DrainCycles   uint64 `json:"drain_cycles"`
	// RBHR and BLP are the cumulative-to-date MEM row-buffer hit rate
	// and bank-level parallelism.
	RBHR float64 `json:"rbhr"`
	BLP  float64 `json:"blp"`
	// MemQOccupancySum/PIMQOccupancySum/SampledCycles mirror the
	// per-DRAM-cycle occupancy accumulators of stats.Channel, so a
	// consumer can reconstruct exact average occupancies per epoch.
	MemQOccupancySum uint64 `json:"memq_sum"`
	PIMQOccupancySum uint64 `json:"pimq_sum"`
	SampledCycles    uint64 `json:"sampled_cycles"`
}

// AppSample is one application's cumulative progress at a sampling
// instant.
type AppSample struct {
	// Injected counts requests accepted by the interconnect.
	Injected uint64 `json:"injected"`
	// Arrived counts requests that reached a memory-controller queue.
	Arrived uint64 `json:"arrived"`
	// Completed counts fully serviced requests.
	Completed uint64 `json:"completed"`
	// StallCycles counts SM-cycles denied injection by backpressure.
	StallCycles uint64 `json:"stall_cycles"`
}

// Snapshot is one point of the run's time series.
type Snapshot struct {
	GPUCycle  uint64          `json:"gpu_cycle"`
	DRAMCycle uint64          `json:"dram_cycle"`
	Channels  []ChannelSample `json:"channels"`
	Apps      []AppSample     `json:"apps"`
}

// Sampler accumulates snapshots in a bounded ring, keeping the most
// recent capacity epochs. Safe for concurrent use (the simulator records
// from one goroutine, but exporters may read from another).
type Sampler struct {
	mu       sync.Mutex
	interval uint64
	buf      []Snapshot
	start    int // index of the oldest snapshot
	n        int // live snapshots in buf
	dropped  uint64
}

// NewSampler builds a sampler recording every interval GPU cycles with a
// ring of ringCap snapshots. Zero values select the defaults.
func NewSampler(interval uint64, ringCap int) *Sampler {
	if interval == 0 {
		interval = DefaultInterval
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Sampler{interval: interval, buf: make([]Snapshot, 0, ringCap)}
}

// Interval returns the sampling epoch in GPU cycles.
func (s *Sampler) Interval() uint64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Record appends one snapshot, evicting the oldest when the ring is
// full.
func (s *Sampler) Record(snap Snapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < cap(s.buf) {
		s.buf = append(s.buf, snap)
		s.n++
		return
	}
	s.buf[s.start] = snap
	s.start = (s.start + 1) % s.n
	s.dropped++
}

// Last returns the most recent snapshot and whether one exists. Live
// consumers (the pimserve progress stream) poll it instead of copying
// the whole ring with Snapshots.
func (s *Sampler) Last() (Snapshot, bool) {
	if s == nil {
		return Snapshot{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Snapshot{}, false
	}
	return s.buf[(s.start+s.n-1)%s.n], true
}

// Dropped returns how many snapshots were evicted by ring wraparound.
func (s *Sampler) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Snapshots returns the retained snapshots in chronological order.
func (s *Sampler) Snapshots() []Snapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(s.start+i)%s.n])
	}
	return out
}

// Record is one line of a telemetry JSONL stream: exactly one of the
// payload fields is set, discriminated by Type.
type Record struct {
	Type     string       `json:"type"` // "manifest", "sample", "metric"
	Manifest *Manifest    `json:"manifest,omitempty"`
	Sample   *Snapshot    `json:"sample,omitempty"`
	Metric   *MetricPoint `json:"metric,omitempty"`
}

// WriteJSONL streams a full telemetry capture: the manifest first (when
// non-nil), then every registry metric, then the time series in
// chronological order.
func WriteJSONL(w io.Writer, m *Manifest, reg *Registry, samples []Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if m != nil {
		if err := enc.Encode(Record{Type: "manifest", Manifest: m}); err != nil {
			return err
		}
	}
	for _, p := range reg.Export() {
		p := p
		if err := enc.Encode(Record{Type: "metric", Metric: &p}); err != nil {
			return err
		}
	}
	for i := range samples {
		if err := enc.Encode(Record{Type: "sample", Sample: &samples[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a stream produced by WriteJSONL, returning the
// manifest (nil if absent), the exported metrics, and the time series.
func ReadJSONL(r io.Reader) (*Manifest, []MetricPoint, []Snapshot, error) {
	var (
		m       *Manifest
		metrics []MetricPoint
		samples []Snapshot
	)
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, nil, fmt.Errorf("telemetry: parse JSONL: %w", err)
		}
		switch rec.Type {
		case "manifest":
			m = rec.Manifest
		case "metric":
			if rec.Metric != nil {
				metrics = append(metrics, *rec.Metric)
			}
		case "sample":
			if rec.Sample != nil {
				samples = append(samples, *rec.Sample)
			}
		default:
			// Unknown record types are skipped so the format can grow.
		}
	}
	return m, metrics, samples, nil
}

// WriteCSV flattens the time series to CSV with channel-averaged queue
// occupancies and summed per-app progress — the compact view
// cmd/pimtimeline renders.
func WriteCSV(w io.Writer, samples []Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "gpu_cycle,dram_cycle,avg_memq,avg_pimq,switches,mem_mode_cycles,pim_mode_cycles,app_completed..."); err != nil {
		return err
	}
	for _, snap := range samples {
		var memQ, pimQ float64
		var switches, memCyc, pimCyc uint64
		for _, ch := range snap.Channels {
			memQ += float64(ch.MemQ)
			pimQ += float64(ch.PIMQ)
			switches += ch.Switches
			memCyc += ch.MemModeCycles
			pimCyc += ch.PIMModeCycles
		}
		if n := float64(len(snap.Channels)); n > 0 {
			memQ /= n
			pimQ /= n
		}
		fmt.Fprintf(bw, "%d,%d,%.2f,%.2f,%d,%d,%d", snap.GPUCycle, snap.DRAMCycle, memQ, pimQ, switches, memCyc, pimCyc)
		for _, app := range snap.Apps {
			fmt.Fprintf(bw, ",%d", app.Completed)
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
