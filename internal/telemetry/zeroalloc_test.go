package telemetry

import "testing"

// TestNilHandleZeroAlloc locks in the cost model the hot path relies
// on: a detached (nil) metric handle must make every mutator a free
// no-op, or runs without telemetry would pay for the instrumentation
// anyway. The nilhandle analyzer proves the guards exist; this proves
// they are allocation-free.
func TestNilHandleZeroAlloc(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
	)
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-1)
		h.Observe(2.5)
	}); avg != 0 {
		t.Errorf("nil handle mutators: %v allocs/op, want 0", avg)
	}
}
