package telemetry

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every metric method on nil receivers — the
// disabled hot path must be a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram state")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	if r.Export() != nil {
		t.Fatal("nil registry export")
	}
	var col *Collector
	if col.Channel(0) != nil || col.NoC() != nil {
		t.Fatal("nil collector should yield nil handles")
	}
	var s *Sampler
	s.Record(Snapshot{})
	if s.Snapshots() != nil || s.Dropped() != 0 || s.Interval() != 0 {
		t.Fatal("nil sampler state")
	}
	var m *Manifest
	m.Finish(0, 0, false, 0)
	if m.Summary() != "<no manifest>" {
		t.Fatal("nil manifest summary")
	}
}

// TestRegistryConcurrency hammers get-or-create and updates from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("shared/counter").Inc()
				reg.Gauge(Name("gauge", g%4, "v")).Add(1)
				reg.Histogram("shared/hist", []float64{1, 10, 100}).Observe(float64(i % 20))
				_ = reg.Export()
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Counter("shared/counter").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Histogram("shared/hist", nil).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var gaugeSum int64
	for i := 0; i < 4; i++ {
		gaugeSum += reg.Gauge(Name("gauge", i, "v")).Value()
	}
	if gaugeSum != goroutines*perG {
		t.Fatalf("gauge sum = %d, want %d", gaugeSum, goroutines*perG)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	for _, v := range []float64{1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	bounds, counts, n, sum, min, max := h.Snapshot()
	if !reflect.DeepEqual(bounds, []float64{10, 100}) {
		t.Fatalf("bounds = %v", bounds)
	}
	// SearchFloat64s: <=10 in bucket 0, (10,100] in bucket 1, rest overflow.
	if !reflect.DeepEqual(counts, []uint64{3, 1, 1}) {
		t.Fatalf("counts = %v", counts)
	}
	if n != 5 || sum != 1066 || min != 1 || max != 1000 {
		t.Fatalf("n=%d sum=%g min=%g max=%g", n, sum, min, max)
	}
	if got := h.Mean(); got != 1066.0/5 {
		t.Fatalf("mean = %g", got)
	}
}

// TestSamplerRing checks bounded-ring semantics: the most recent ringCap
// snapshots are kept, chronological order is preserved, evictions are
// counted.
func TestSamplerRing(t *testing.T) {
	s := NewSampler(100, 4)
	if s.Interval() != 100 {
		t.Fatalf("interval = %d", s.Interval())
	}
	for i := 1; i <= 6; i++ {
		s.Record(Snapshot{GPUCycle: uint64(i * 100)})
	}
	snaps := s.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("kept %d snapshots, want 4", len(snaps))
	}
	for i, want := range []uint64{300, 400, 500, 600} {
		if snaps[i].GPUCycle != want {
			t.Fatalf("snapshot %d at cycle %d, want %d", i, snaps[i].GPUCycle, want)
		}
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped())
	}
}

func TestSamplerDefaults(t *testing.T) {
	s := NewSampler(0, 0)
	if s.Interval() != DefaultInterval {
		t.Fatalf("interval = %d, want %d", s.Interval(), DefaultInterval)
	}
}

// TestJSONLRoundTrip writes a full capture and reads it back.
func TestJSONLRoundTrip(t *testing.T) {
	m := NewManifest(struct{ A int }{7}, 42, 8, 20)
	m.Policy = "f3fs"
	m.VCMode = "VC2"
	m.Scale = 0.25
	m.Kernels = []string{"G8/hotspot", "P1/stream-add"}
	m.Finish(1000, 750, false, 3)

	reg := NewRegistry()
	reg.Counter("mc0/activates").Add(17)
	reg.Gauge("mc0/queue").Set(-3)
	reg.Histogram("mc0/drain", DrainBuckets()).Observe(12)

	samples := []Snapshot{
		{GPUCycle: 100, DRAMCycle: 75,
			Channels: []ChannelSample{{MemQ: 3, PIMQ: 60, Mode: "MEM", RBHR: 0.5}},
			Apps:     []AppSample{{Injected: 10, Completed: 5}}},
		{GPUCycle: 200, DRAMCycle: 150,
			Channels: []ChannelSample{{MemQ: 1, PIMQ: 64, Mode: "PIM", BLP: 2.5}},
			Apps:     []AppSample{{Injected: 25, Completed: 19, StallCycles: 4}}},
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, m, reg, samples); err != nil {
		t.Fatal(err)
	}
	gotM, gotMetrics, gotSamples, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m.start = time.Time{} // process-local anchor; not serialized
	if !reflect.DeepEqual(gotM, m) {
		t.Fatalf("manifest round-trip:\n got %+v\nwant %+v", gotM, m)
	}
	if !reflect.DeepEqual(gotMetrics, reg.Export()) {
		t.Fatalf("metrics round-trip:\n got %+v\nwant %+v", gotMetrics, reg.Export())
	}
	if !reflect.DeepEqual(gotSamples, samples) {
		t.Fatalf("samples round-trip:\n got %+v\nwant %+v", gotSamples, samples)
	}
}

// TestJSONLSkipsUnknownRecords keeps the format forward-compatible.
func TestJSONLSkipsUnknownRecords(t *testing.T) {
	in := bytes.NewBufferString(`{"type":"future-thing","payload":1}
{"type":"sample","sample":{"gpu_cycle":5}}
`)
	_, _, samples, err := ReadJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].GPUCycle != 5 {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestWriteCSV(t *testing.T) {
	samples := []Snapshot{{
		GPUCycle: 100, DRAMCycle: 75,
		Channels: []ChannelSample{{MemQ: 4, PIMQ: 8, Switches: 2}, {MemQ: 2, PIMQ: 6, Switches: 1}},
		Apps:     []AppSample{{Completed: 9}, {Completed: 11}},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	want := "gpu_cycle,dram_cycle,avg_memq,avg_pimq,switches,mem_mode_cycles,pim_mode_cycles,app_completed...\n" +
		"100,75,3.00,7.00,3,0,0,9,11\n"
	if buf.String() != want {
		t.Fatalf("csv:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestHashConfig(t *testing.T) {
	type cfg struct{ A, B int }
	h1 := HashConfig(cfg{1, 2})
	h2 := HashConfig(cfg{1, 2})
	h3 := HashConfig(cfg{1, 3})
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	if h1 == h3 {
		t.Fatal("hash insensitive to config change")
	}
	if len(h1) != 16 {
		t.Fatalf("hash length = %d", len(h1))
	}
	if HashConfig(make(chan int)) != "unhashable" {
		t.Fatal("unmarshalable config should hash to sentinel")
	}
}

func TestEnableSwitch(t *testing.T) {
	defer Enable(false)
	if Enabled() {
		t.Fatal("telemetry enabled by default")
	}
	Enable(true)
	if !Enabled() {
		t.Fatal("Enable(true) not visible")
	}
	Enable(false)
	if Enabled() {
		t.Fatal("Enable(false) not visible")
	}
}

func TestCollectorChannels(t *testing.T) {
	c := NewCollector(4, 256, 16)
	for ch := 0; ch < 4; ch++ {
		c.Channel(ch).MemModeCycles.Add(uint64(ch + 1))
	}
	for ch := 0; ch < 4; ch++ {
		name := Name("mc", ch, "mem_mode_cycles")
		if got := c.Registry.Counter(name).Value(); got != uint64(ch+1) {
			t.Fatalf("%s = %d, want %d", name, got, ch+1)
		}
	}
	c.NoC().Injected.Inc()
	if c.Registry.Counter("noc/injected").Value() != 1 {
		t.Fatal("noc counter not registered")
	}
	// Every handle-backed metric appears in the export.
	points := c.Registry.Export()
	kinds := map[string]int{}
	for _, p := range points {
		kinds[p.Kind]++
	}
	wantCounters := 4*9 + 4 // 9 per-channel counters + 4 noc
	if kinds["counter"] != wantCounters || kinds["histogram"] != 4 {
		t.Fatalf("export kinds = %v", kinds)
	}
}

func TestExportStableOrder(t *testing.T) {
	reg := NewRegistry()
	for i := 3; i >= 0; i-- {
		reg.Counter(fmt.Sprintf("c%d", i)).Inc()
	}
	points := reg.Export()
	for i := 1; i < len(points); i++ {
		if points[i-1].Name > points[i].Name {
			t.Fatalf("export unsorted: %s before %s", points[i-1].Name, points[i].Name)
		}
	}
}
